// Faulttolerance demonstrates the reliability half of the paper: the
// standby-sparing system keeps its (m,k)-deadlines through a permanent
// processor failure, and transient faults on main copies are absorbed by
// their backups.
//
// It kills the primary processor mid-run under each approach, then cranks
// the transient fault rate far above the paper's 10⁻⁶ to make recoveries
// visible in a short demo.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	set := repro.NewSet(
		repro.NewTask(10, 10, 3, 2, 3),
		repro.NewTask(15, 15, 4, 1, 2),
		repro.NewTask(30, 30, 6, 3, 4),
	)
	fmt.Println("task set:")
	fmt.Println(set)
	fmt.Printf("(m,k)-utilization %.2f\n\n", set.MKUtilization())

	fmt.Println("--- one permanent fault (random instant/processor per seed) ---")
	for _, a := range []repro.Approach{repro.ST, repro.DP, repro.Selective} {
		survived := 0
		const trials = 25
		var energy float64
		for seed := uint64(0); seed < trials; seed++ {
			res, err := repro.Simulate(set, a, repro.RunConfig{
				HorizonMS: 600,
				Scenario:  repro.PermanentOnly,
				Seed:      seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.MKSatisfied() {
				survived++
			}
			energy += res.ActiveEnergy()
		}
		fmt.Printf("%-15s (m,k) kept in %2d/%2d permanent-fault runs, mean active energy %.0f\n",
			a, survived, trials, energy/trials)
	}

	fmt.Println("\n--- permanent + transient faults (rate exaggerated for the demo) ---")
	for _, a := range []repro.Approach{repro.ST, repro.DP, repro.Selective} {
		res, err := repro.Simulate(set, a, repro.RunConfig{
			HorizonMS:     600,
			Scenario:      repro.PermanentAndTransient,
			Seed:          11,
			TransientRate: 0.05, // paper: 1e-6/ms; cranked up so the demo shows recoveries
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s transient faults detected: %d, backups forced to complete, (m,k) ok: %v\n",
			a, res.Counters.TransientFaults, res.MKSatisfied())
	}

	fmt.Println("\n--- anatomy of one primary-processor failure (selective) ---")
	res, err := repro.Simulate(set, repro.Selective, repro.RunConfig{
		HorizonMS:   120,
		Scenario:    repro.PermanentOnly,
		Seed:        3,
		RecordTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if pf := res.PermanentFault; pf != nil {
		fmt.Printf("permanent fault hit processor %d at %v; survivor carried the workload\n", pf.Proc, pf.At)
	}
	fmt.Printf("(m,k) satisfied: %v, misses: %d\n", res.MKSatisfied(), res.Counters.Misses)
	fmt.Print(repro.GanttChart(res))
}
