// Admission demonstrates the library's offline analyses as an admission-
// control pipeline: a stream of candidate task sets is vetted with the
// cheap necessary bound, then the analytical pattern-aware response-time
// test, then (for the admitted ones) the postponement intervals θi are
// derived and a short simulation confirms the (m,k) guarantees — the
// workflow a system integrator would run before deploying a workload on
// the standby-sparing platform.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	candidates := []struct {
		name string
		set  *repro.Set
	}{
		{"paper-motivation", repro.NewSet(
			repro.NewTask(5, 4, 3, 2, 4),
			repro.NewTask(10, 10, 3, 1, 2))},
		{"balanced-media", repro.NewSet(
			repro.NewTask(10, 10, 3, 2, 3),
			repro.NewTask(15, 15, 4, 1, 2),
			repro.NewTask(30, 30, 6, 3, 4))},
		{"overloaded", repro.NewSet(
			repro.NewTask(10, 10, 8, 3, 4),
			repro.NewTask(10, 10, 8, 3, 4))},
		{"tight-but-feasible", repro.NewSet(
			repro.NewTask(10, 10, 5, 1, 2),
			repro.NewTask(20, 20, 10, 1, 2))},
	}

	for _, c := range candidates {
		fmt.Printf("== %s ==\n%s\n", c.name, c.set)
		fmt.Printf("   utilization %.2f, (m,k)-utilization %.2f\n",
			c.set.Utilization(), c.set.MKUtilization())

		// Stage 1: necessary bound.
		if c.set.MKUtilization() > 1 {
			fmt.Println("   REJECTED: mandatory utilization exceeds one processor")
			fmt.Println()
			continue
		}
		// Stage 2: exact R-pattern schedulability (premise of Theorem 1).
		if !repro.RPatternSchedulable(c.set) {
			fmt.Println("   REJECTED: mandatory R-pattern jobs miss deadlines")
			fmt.Println()
			continue
		}
		// Stage 3: derive the runtime parameters.
		ys := repro.PromotionTimes(c.set)
		thetas, err := repro.PostponementIntervals(c.set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("   ADMITTED; derived backup parameters:")
		for i := range thetas {
			fmt.Printf("     tau%d: Y=%v, theta=%v\n", i+1, ys[i], thetas[i])
		}
		// Stage 4: confirmation run under the selective scheme.
		res, err := repro.Simulate(c.set, repro.Selective, repro.RunConfig{HorizonMS: 400})
		if err != nil {
			log.Fatal(err)
		}
		st, err := repro.Simulate(c.set, repro.ST, repro.RunConfig{HorizonMS: 400})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   confirmation: (m,k) ok=%v, energy %.0f vs ST %.0f (%.0f%% saved)\n\n",
			res.MKSatisfied(), res.ActiveEnergy(), st.ActiveEnergy(),
			100*(1-res.ActiveEnergy()/st.ActiveEnergy()))
	}
}
