// Batchrunner: evaluate many task sets through one reusable simulation
// session. A repro.Runner memoizes each set's offline analyses (pattern
// table, RTA promotion times, θ postponement) and recycles engine state,
// so a batch that revisits sets — here, every set under every approach
// and several fault seeds — pays for each analysis exactly once. Ctrl-C
// cancels the batch gracefully mid-simulation.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
)

func main() {
	// One session for the whole batch. The zero config is the
	// recommended setup: a 1024-entry analysis LRU plus a scratch pool.
	runner := repro.NewRunner(repro.RunnerConfig{})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A small portfolio of (m,k)-firm task sets to compare.
	portfolio := map[string]*repro.Set{
		"motivation": repro.NewSet(repro.NewTask(5, 4, 3, 2, 4), repro.NewTask(10, 10, 3, 1, 2)),
		"selective":  repro.NewSet(repro.NewTask(5, 2.5, 2, 2, 4), repro.NewTask(4, 4, 2, 2, 4)),
		"postpone":   repro.NewSet(repro.NewTask(10, 10, 3, 2, 3), repro.NewTask(15, 15, 8, 1, 2)),
	}

	for name, set := range portfolio {
		fmt.Printf("%s (mk-util %.2f):\n", name, set.MKUtilization())
		for _, a := range repro.Approaches() {
			// Several fault realizations per approach; each run after
			// the first reuses the set's memoized analyses.
			var energy float64
			const seeds = 5
			for seed := uint64(1); seed <= seeds; seed++ {
				res, err := runner.Simulate(ctx, set, a, repro.RunConfig{
					Scenario: repro.PermanentOnly,
					Seed:     seed,
				})
				if errors.Is(err, context.Canceled) {
					fmt.Println("interrupted — partial batch")
					return
				}
				if err != nil {
					log.Fatal(err)
				}
				energy += res.ActiveEnergy()
			}
			fmt.Printf("  %-18s mean active energy %6.1f over %d fault seeds\n",
				a, energy/seeds, seeds)
		}
	}

	st := runner.CacheStats()
	fmt.Printf("\nanalysis cache: %d hits, %d misses (%d entries)\n",
		st.Hits, st.Misses, st.Entries)
}
