// Quickstart: build a small (m,k)-firm task set, run it under all four
// scheduling approaches on the standby-sparing simulator, and compare
// active energy — the 30-second tour of the library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A video-decoder-ish task that may drop 2 of any 4 frames, plus a
	// control loop that must keep 1 of any 2 samples.
	set := repro.NewSet(
		repro.NewTask(5, 4, 3, 2, 4), // (P, D, C, m, k) in ms
		repro.NewTask(10, 10, 3, 1, 2),
	)
	fmt.Println("task set:")
	fmt.Println(set)
	fmt.Printf("total utilization %.2f, (m,k)-utilization %.2f, R-pattern schedulable: %v\n\n",
		set.Utilization(), set.MKUtilization(), repro.RPatternSchedulable(set))

	// The offline analyses behind the approaches.
	ys := repro.PromotionTimes(set)
	thetas, err := repro.PostponementIntervals(set)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ys {
		fmt.Printf("tau%d: promotion interval Y=%v, backup postponement theta=%v\n", i+1, ys[i], thetas[i])
	}
	fmt.Println()

	// Simulate one hyper period under each approach.
	for _, a := range repro.Approaches() {
		res, err := repro.Simulate(set, a, repro.RunConfig{HorizonMS: 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s active energy %5.1f units, %d/%d jobs effective, (m,k) ok: %v\n",
			res.Policy, res.ActiveEnergy(),
			res.Counters.Effective, res.Counters.Effective+res.Counters.Misses,
			res.MKSatisfied())
	}

	// And one detailed trace of the winner.
	res, err := repro.Simulate(set, repro.Selective, repro.RunConfig{HorizonMS: 20, RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(repro.GanttChart(res))
}
