// Energysweep runs a scaled-down version of the paper's Figure 6(a)
// experiment through the public API: random §V workloads swept across
// (m,k)-utilization intervals, energies normalized to MKSS-ST, and the
// headline "maximal energy reduction of selective over DP" extracted —
// all in a few seconds (the full-fidelity run lives in cmd/mkbench).
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	cfg := repro.DefaultSweepConfig(repro.NoFault)
	cfg.SetsPerInterval = 8  // paper: 20
	cfg.MaxCandidates = 2000 // paper: 5000
	cfg.Intervals = workload.Intervals(0.1, 0.8, 0.1)
	cfg.Progress = os.Stderr

	rep, err := repro.Sweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Table())

	fmt.Println("\nCSV series (for plotting):")
	fmt.Print(rep.CSV())

	gain, at := rep.MaxGain(repro.Selective, repro.DP)
	fmt.Printf("\nheadline: selective beats DP by up to %.1f%% (interval %v); the paper reports ~28%%\n",
		100*gain, at)
	fmt.Println("see EXPERIMENTS.md for the full-fidelity numbers and the fidelity discussion")
}
