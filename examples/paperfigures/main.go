// Paperfigures replays every worked example of the paper (Figures 1–5)
// and checks the reproduced energies against the numbers printed in the
// text: 15 units (Fig. 1), 12 units / −20% (Fig. 2), 20 units (Fig. 3),
// 14 units / −30% (Fig. 4), and θ1=7, θ2=4 (Fig. 5).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/timeu"
)

func check(name string, got, want float64) {
	status := "OK"
	if !timeu.ApproxEq(got, want) {
		status = "MISMATCH"
	}
	fmt.Printf("  %-55s got %5.1f, paper %5.1f   [%s]\n", name, got, want, status)
}

func main() {
	motivation := repro.NewSet(repro.NewTask(5, 4, 3, 2, 4), repro.NewTask(10, 10, 3, 1, 2))
	selectiveSet := repro.NewSet(repro.NewTask(5, 2.5, 2, 2, 4), repro.NewTask(4, 4, 2, 2, 4))

	run := func(s *repro.Set, a repro.Approach, horizon float64) *repro.Result {
		res, err := repro.Simulate(s, a, repro.RunConfig{HorizonMS: horizon, RecordTrace: true})
		if err != nil {
			log.Fatal(err)
		}
		if problems := repro.VerifyTrace(s, res); len(problems) > 0 {
			log.Fatalf("trace verification: %v", problems)
		}
		return res
	}

	fmt.Println("Motivation set: τ1=(5,4,3,2,4), τ2=(10,10,3,1,2), hyper period [0,20]")
	fig1 := run(motivation, repro.DP, 20)
	check("Fig. 1: MKSS-DP (preference-oriented, Y-procrastinated)", fig1.ActiveEnergy(), 15)
	st := run(motivation, repro.ST, 20)
	check("reference: MKSS-ST (concurrent copies)", st.ActiveEnergy(), 18)
	fig2 := run(motivation, repro.Selective, 20)
	check("Fig. 2: dynamic patterns (selective)", fig2.ActiveEnergy(), 12)
	fmt.Printf("  energy reduction Fig.2 vs Fig.1: %.0f%% (paper: 20%%)\n\n",
		100*(1-fig2.ActiveEnergy()/fig1.ActiveEnergy()))

	fmt.Println("Selective set: τ1=(5,2.5,2,2,4), τ2=(4,4,2,2,4), window [0,25]")
	fig3 := run(selectiveSet, repro.Greedy, 25)
	check("Fig. 3: greedy optional execution", fig3.ActiveEnergy(), 20)
	fig4 := run(selectiveSet, repro.Selective, 25)
	check("Fig. 4: selective optional execution", fig4.ActiveEnergy(), 14)
	fmt.Printf("  energy reduction Fig.4 vs Fig.3: %.0f%% (paper: 30%%)\n\n",
		100*(1-fig4.ActiveEnergy()/fig3.ActiveEnergy()))

	fmt.Println("Fig. 5 set: τ1=(10,10,3,2,3), τ2=(15,15,8,1,2)")
	thetas, err := repro.PostponementIntervals(repro.NewSet(
		repro.NewTask(10, 10, 3, 2, 3), repro.NewTask(15, 15, 8, 1, 2)))
	if err != nil {
		log.Fatal(err)
	}
	check("Fig. 5: theta1 (ms)", thetas[0].Millis(), 7)
	check("Fig. 5: theta2 (ms)", thetas[1].Millis(), 4)

	fmt.Println("\nFig. 2 schedule (selective on the motivation set):")
	fmt.Print(repro.GanttChart(fig2))
	fmt.Println("\nFig. 4 schedule (selective, alternating optional jobs):")
	fmt.Print(repro.GanttChart(fig4))
}
