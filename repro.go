// Package repro is the public API of this reproduction of
//
//	Linwei Niu, Dakai Zhu. "Reliable and Energy-Aware Fixed-Priority
//	(m,k)-Deadlines Enforcement with Standby-Sparing". DATE 2020.
//
// It simulates a two-processor standby-sparing real-time system running
// periodic task sets with (m,k)-firm deadlines under four fixed-priority
// scheduling approaches — the static reference MKSS-ST, the dual-priority
// baseline MKSS-DP, the greedy dynamic straw-man of §III, and the paper's
// selective scheme (Algorithm 1) — with per-processor energy accounting,
// dynamic power-down, and permanent/transient fault injection.
//
// Quick start:
//
//	set := repro.NewSet(
//	    repro.NewTask(5, 4, 3, 2, 4),   // (P, D, C, m, k) in ms
//	    repro.NewTask(10, 10, 3, 1, 2),
//	)
//	res, err := repro.Simulate(set, repro.Selective, repro.RunConfig{HorizonMS: 20})
//	fmt.Println(res.ActiveEnergy()) // 12 — Figure 2 of the paper
//
// The heavy lifting lives in the internal packages (task, pattern, rta,
// postpone, sim, core, fault, workload, experiment, trace); this package
// re-exports the surface a downstream user needs.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/postpone"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/timeu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported core types. The aliases give external code full access to
// the underlying methods without importing internal packages.
type (
	// Task is one periodic task (Pi, Di, Ci, mi, ki).
	Task = task.Task
	// Set is a priority-ordered task set.
	Set = task.Set
	// Time is a simulation instant/duration in integer microseconds.
	Time = timeu.Time
	// Approach selects a scheduling scheme.
	Approach = core.Approach
	// Result is one simulation run's outcome.
	Result = sim.Result
	// PowerModel is the energy model (P_act, P_idle, P_sleep, T_be).
	PowerModel = sim.PowerModel
	// Scenario is a fault setting (NoFault, PermanentOnly, ...).
	Scenario = fault.Scenario
	// Report is a Figure-6 sweep report.
	Report = experiment.Report
	// SweepConfig parameterizes a Figure-6 sweep.
	SweepConfig = experiment.Config
	// Counters is one run's observability counters (see internal/metrics
	// for field meanings and invariants).
	Counters = metrics.Counters
	// MetricsSink receives the engine's structured events; see
	// NewJSONLSink and NewEventCollector for the stock implementations.
	MetricsSink = metrics.Sink
	// MetricsEvent is one structured observation from the engine.
	MetricsEvent = metrics.Event
	// BenchDoc is the versioned machine-readable sweep document emitted
	// by mkbench -json (schema experiment.BenchSchema).
	BenchDoc = experiment.BenchDoc
)

// BenchSchema is the version tag of BENCH_*.json documents.
const BenchSchema = experiment.BenchSchema

// The four approaches of the paper, plus two extensions: DP-background
// (textbook dual-priority where backups also run before promotion) and
// DBP (distance-based priority — every job prioritized by its distance
// to (m,k) failure).
const (
	ST           = core.ST
	DP           = core.DP
	Greedy       = core.Greedy
	Selective    = core.Selective
	DPBackground = core.DPBackground
	DBP          = core.DBP
)

// The three fault scenarios of Figure 6.
const (
	NoFault               = fault.NoFault
	PermanentOnly         = fault.PermanentOnly
	PermanentAndTransient = fault.PermanentAndTransient
)

// Millisecond re-exports the tick count of one millisecond.
const Millisecond = timeu.Millisecond

// NewTask builds a task from millisecond-valued (P, D, C) and the (m,k)
// constraint. IDs are assigned by NewSet.
func NewTask(periodMS, deadlineMS, wcetMS float64, m, k int) Task {
	return task.New(0, periodMS, deadlineMS, wcetMS, m, k)
}

// NewSet builds a priority-ordered task set (first task = highest
// priority).
func NewSet(tasks ...Task) *Set { return task.NewSet(tasks...) }

// RunConfig parameterizes Simulate. The zero value of every field picks
// the paper's setting.
type RunConfig struct {
	// HorizonMS is the simulated duration in ms; zero uses the set's
	// (m,k)-hyperperiod capped at 2000 ms.
	HorizonMS float64
	// Scenario injects faults (default NoFault); Seed makes the fault
	// realization reproducible.
	Scenario Scenario
	Seed     uint64
	// TransientRate overrides the transient fault rate (per ms of
	// execution) when non-zero; the paper's value is 1e-6. Useful for
	// demos and sensitivity studies.
	TransientRate float64
	// Power overrides the energy model (zero value = paper defaults:
	// P_act=1, T_be=1ms).
	Power PowerModel
	// RecordTrace keeps per-segment execution history for GanttChart.
	RecordTrace bool
	// Sink, when non-nil, receives a structured event for every engine
	// transition (dispatches, settlements, cancellations, power states);
	// see NewJSONLSink. Leaving it nil costs the simulation nothing.
	Sink MetricsSink
	// Options tunes the policies (ablations); zero value is the paper.
	Options core.Options
}

// Simulate runs one task set under one approach through the process-wide
// default Runner (so repeated calls on the same set reuse its offline
// analyses). Use SimulateContext for cancellation, or a dedicated Runner
// for an isolated session.
func Simulate(s *Set, a Approach, cfg RunConfig) (*Result, error) {
	return defaultRunner.Simulate(context.Background(), s, a, cfg)
}

// SimulateContext is Simulate with cancellation: a canceled or expired
// context aborts the run at event-loop granularity with an error wrapping
// ctx.Err().
func SimulateContext(ctx context.Context, s *Set, a Approach, cfg RunConfig) (*Result, error) {
	return defaultRunner.Simulate(ctx, s, a, cfg)
}

// NewJSONLSink returns a buffered MetricsSink writing one JSON object
// per event line to w; call Flush when the run finishes. The schema is
// documented in EXPERIMENTS.md ("Observability").
func NewJSONLSink(w io.Writer) *metrics.JSONL { return metrics.NewJSONL(w) }

// NewEventCollector returns a MetricsSink that retains every event in
// memory (tests, small interactive runs).
func NewEventCollector() *metrics.Collector { return &metrics.Collector{} }

// CheckCounters verifies a finished run's counters against the
// simulator's structural identities (settlement and classification
// totals, backup bounds, busy+idle+sleep+dead = horizon per processor).
// It returns human-readable violations; nil means consistent.
func CheckCounters(r *Result) []string {
	return r.Counters.CheckInvariants(r.Horizon)
}

// GanttChart renders a traced run as an ASCII Gantt chart (one lane per
// processor, as in the paper's Figures 1–5). The run must have been
// simulated with RecordTrace.
func GanttChart(r *Result) string { return trace.Gantt{}.Render(r) }

// TraceSummary lists a traced run's execution segments, one per line.
func TraceSummary(r *Result) string { return trace.Summarize(r) }

// VerifyTrace checks structural invariants of a traced run (no
// overlapping segments, no execution outside [release, deadline], no
// WCET overrun) and returns human-readable violations (empty = clean).
func VerifyTrace(s *Set, r *Result) []string { return trace.Check(s, r) }

// Figure6 runs the paper's Figure 6 sweep for one scenario with the
// paper's parameters. Use Sweep for full control.
func Figure6(sc Scenario) (*Report, error) {
	return Sweep(experiment.DefaultConfig(sc))
}

// Sweep runs a fully customized utilization sweep through the default
// Runner. Use SweepContext for cancellation, or Runner.Sweep for an
// isolated session.
func Sweep(cfg SweepConfig) (*Report, error) {
	return defaultRunner.Sweep(context.Background(), cfg)
}

// SweepContext is Sweep with cancellation: on a canceled or expired
// context it returns the partial Report (the intervals completed so far,
// in order) and an error wrapping ctx.Err().
func SweepContext(ctx context.Context, cfg SweepConfig) (*Report, error) {
	return defaultRunner.Sweep(ctx, cfg)
}

// DefaultSweepConfig returns the paper's Figure 6 configuration for a
// scenario, ready for customization.
func DefaultSweepConfig(sc Scenario) SweepConfig { return experiment.DefaultConfig(sc) }

// PromotionTimes returns the dual-priority promotion intervals
// Yi = Di − Ri (Eq. 2), with Yi = 0 for tasks whose response time
// analysis diverges.
func PromotionTimes(s *Set) []Time { return rta.PromotionTimesSafe(s) }

// PostponementIntervals runs the offline analysis of Definitions 2–5 and
// returns the per-task backup release postponement intervals θi.
func PostponementIntervals(s *Set) ([]Time, error) {
	an, err := postpone.Compute(s, postpone.Options{Pattern: pattern.RPattern})
	if err != nil {
		return nil, err
	}
	return an.Theta, nil
}

// VerifyPostponement recomputes the θ analysis and checks, by exact
// simulation of the spare processor's backup schedule over horizonMS
// milliseconds, that every postponed backup job still meets its deadline
// (Theorem 1's backup half). It returns human-readable violations; nil
// means the postponement is safe over the horizon.
func VerifyPostponement(s *Set, horizonMS float64) ([]string, error) {
	an, err := postpone.Compute(s, postpone.Options{Pattern: pattern.RPattern})
	if err != nil {
		return nil, err
	}
	var out []string
	for _, v := range an.Verify(s, pattern.RPattern, timeu.FromMillis(horizonMS)) {
		out = append(out, v.String())
	}
	return out, nil
}

// RPatternSchedulable reports whether the set's mandatory jobs under the
// static R-pattern meet all deadlines (the premise of Theorem 1).
func RPatternSchedulable(s *Set) bool {
	return rta.SchedulableRPattern(s, pattern.RPattern, 10*timeu.Second)
}

// GenerateTaskSets draws schedulable task sets per the §V protocol with
// total (m,k)-utilization in [lo, hi).
func GenerateTaskSets(lo, hi float64, count int, seed uint64) []*Set {
	gen := workload.NewGenerator(workload.DefaultConfig(), seed)
	res := gen.GenerateInterval(workload.Interval{Lo: lo, Hi: hi}, count, 5000*count)
	return res.Sets
}

// TaskSpec / SetSpec are the JSON schema accepted by LoadSet (and the
// mksim command):
//
//	{"tasks": [{"period_ms":5, "deadline_ms":4, "wcet_ms":3, "m":2, "k":4}, ...]}
type TaskSpec struct {
	Name       string  `json:"name,omitempty"`
	PeriodMS   float64 `json:"period_ms"`
	DeadlineMS float64 `json:"deadline_ms,omitempty"` // default: period
	WCETMS     float64 `json:"wcet_ms"`
	M          int     `json:"m"`
	K          int     `json:"k"`
}

// SetSpec is the top-level JSON document.
type SetSpec struct {
	Tasks []TaskSpec `json:"tasks"`
}

// validate checks one task spec field by field, so errors point at the
// offending JSON path ("tasks[2].wcet_ms: ...") instead of surfacing as a
// post-hoc whole-set failure.
func (sp TaskSpec) validate(i int) error {
	fail := func(field, msg string) error {
		return fmt.Errorf("repro: tasks[%d].%s: %s", i, field, msg)
	}
	checkMS := func(field string, v float64) error {
		switch {
		case math.IsNaN(v):
			return fail(field, "is NaN")
		case math.IsInf(v, 0):
			return fail(field, "is infinite")
		case v < 0:
			return fail(field, fmt.Sprintf("is negative (%v)", v))
		}
		return nil
	}
	if err := checkMS("period_ms", sp.PeriodMS); err != nil {
		return err
	}
	if timeu.ApproxZero(sp.PeriodMS) {
		return fail("period_ms", "is missing or zero")
	}
	if err := checkMS("deadline_ms", sp.DeadlineMS); err != nil {
		return err
	}
	if err := checkMS("wcet_ms", sp.WCETMS); err != nil {
		return err
	}
	if timeu.ApproxZero(sp.WCETMS) {
		return fail("wcet_ms", "is missing or zero")
	}
	if sp.K <= 0 {
		return fail("k", fmt.Sprintf("must be positive, got %d", sp.K))
	}
	if sp.M <= 0 {
		return fail("m", fmt.Sprintf("must be positive, got %d", sp.M))
	}
	if sp.M > sp.K {
		return fail("m", fmt.Sprintf("exceeds k (%d > %d)", sp.M, sp.K))
	}
	return nil
}

// Set materializes the spec into a validated task set. This is the one
// decode path shared by LoadSet, the CLIs and the mkservd request
// handlers, so every consumer gets the same field-path error messages
// ("tasks[2].wcet_ms: ...") for the same malformed input.
func (spec SetSpec) Set() (*Set, error) {
	if len(spec.Tasks) == 0 {
		return nil, fmt.Errorf("repro: set has no tasks")
	}
	ts := make([]Task, len(spec.Tasks))
	for i, sp := range spec.Tasks {
		if err := sp.validate(i); err != nil {
			return nil, err
		}
		d := sp.DeadlineMS
		if timeu.ApproxZero(d) {
			d = sp.PeriodMS
		}
		ts[i] = task.New(i, sp.PeriodMS, d, sp.WCETMS, sp.M, sp.K)
		ts[i].Name = sp.Name
	}
	s := NewSet(ts...)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return s, nil
}

// LoadSet parses a JSON task-set spec, rejecting malformed fields with
// JSON-path error messages. Relational constraints spanning fields
// (deadline ≤ period, wcet ≤ deadline, priority ordering) are still
// enforced by Set.Validate as a backstop.
func LoadSet(r io.Reader) (*Set, error) {
	var spec SetSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("repro: parse set: %w", err)
	}
	return spec.Set()
}

// LoadSetFile loads a task-set spec from a file path, with "-" meaning
// standard input — the shared entry point behind every command's -set
// flag, so file, pipe and heredoc usage all funnel through LoadSet's
// validated decode path.
func LoadSetFile(path string) (*Set, error) {
	if path == "-" {
		return LoadSet(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //mklint:allow errdrop — read-only handle; a close failure cannot lose data
	return LoadSet(f)
}

// Approaches lists every implemented approach.
func Approaches() []Approach { return core.Approaches() }

// Extensions lists the registered beyond-paper policies (DPBackground,
// DBP, ...): selectable by name everywhere, excluded from the default
// Fig-6 comparison.
func Extensions() []Approach { return core.Extensions() }

// ApproachNames lists the canonical approach names ("MKSS-ST", ...), for
// flag usage strings.
func ApproachNames() []string { return core.ApproachNames() }

// ParseApproach maps a name — canonical ("MKSS-selective"), short alias
// ("st", "dp", "greedy", "selective", "dp-background"), or any case
// variant thereof — to an Approach. One canonical table (shared with
// Approach.String, MarshalText and UnmarshalText) backs every command's
// flag parsing.
func ParseApproach(name string) (Approach, error) { return core.ParseApproach(name) }

// ParseScenario maps a fault-scenario name ("none", "permanent",
// "permanent+transient"/"both", case-insensitive) to a Scenario; it is
// the shared table behind every command's -scenario flag.
func ParseScenario(name string) (Scenario, error) { return fault.ParseScenario(name) }
