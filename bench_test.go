// Benchmarks regenerating every table/figure of the paper, plus ablation
// benches for the design choices called out in DESIGN.md. Figure 6
// benches run a reduced sweep per iteration and report the figure's
// series as custom metrics (normalized energy per approach and the
// selective-over-DP gain); the full-fidelity series is produced by
// cmd/mkbench. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pattern"
	"repro/internal/workload"
)

func motivationSet() *Set {
	return NewSet(NewTask(5, 4, 3, 2, 4), NewTask(10, 10, 3, 1, 2))
}

func selectiveSet() *Set {
	return NewSet(NewTask(5, 2.5, 2, 2, 4), NewTask(4, 4, 2, 2, 4))
}

func benchWorked(b *testing.B, s *Set, a Approach, horizonMS, wantEnergy float64) {
	b.Helper()
	var energy float64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(s, a, RunConfig{HorizonMS: horizonMS})
		if err != nil {
			b.Fatal(err)
		}
		energy = res.ActiveEnergy()
	}
	if energy != wantEnergy {
		b.Fatalf("energy = %v, want %v (paper)", energy, wantEnergy)
	}
	b.ReportMetric(energy, "energy-units")
}

// BenchmarkFig1 — the DP schedule of Figure 1 (15 units in [0,20]).
func BenchmarkFig1(b *testing.B) { benchWorked(b, motivationSet(), DP, 20, 15) }

// BenchmarkFig2 — dynamic patterns on the same set (12 units).
func BenchmarkFig2(b *testing.B) { benchWorked(b, motivationSet(), Selective, 20, 12) }

// BenchmarkFig3 — greedy on the §III set (20 units in [0,25]).
func BenchmarkFig3(b *testing.B) { benchWorked(b, selectiveSet(), Greedy, 25, 20) }

// BenchmarkFig4 — selective on the §III set (14 units).
func BenchmarkFig4(b *testing.B) { benchWorked(b, selectiveSet(), Selective, 25, 14) }

// BenchmarkFig5Postponement — the offline θ analysis of Definitions 2–5.
func BenchmarkFig5Postponement(b *testing.B) {
	s := NewSet(NewTask(10, 10, 3, 2, 3), NewTask(15, 15, 8, 1, 2))
	var thetas []Time
	for i := 0; i < b.N; i++ {
		var err error
		thetas, err = PostponementIntervals(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	if thetas[0].Millis() != 7 || thetas[1].Millis() != 4 {
		b.Fatalf("theta = %v, want 7ms/4ms", thetas)
	}
}

// benchFig6 runs a reduced Figure 6 sweep per iteration and reports the
// series the paper plots: per-approach normalized energy (averaged over
// the sweep) and the maximal selective-over-DP reduction.
func benchFig6(b *testing.B, sc Scenario) {
	b.Helper()
	cfg := DefaultSweepConfig(sc)
	cfg.SetsPerInterval = 4
	cfg.MaxCandidates = 1200
	cfg.Intervals = workload.Intervals(0.2, 0.7, 0.1)
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	means := map[Approach]float64{}
	n := 0
	for _, row := range rep.Rows {
		if len(row.Sets) == 0 {
			continue
		}
		n++
		for _, a := range rep.Approaches {
			means[a] += row.NormMean[a]
		}
	}
	if n == 0 {
		b.Fatal("sweep produced no populated intervals")
	}
	b.ReportMetric(means[DP]/float64(n), "dp/st")
	b.ReportMetric(means[Selective]/float64(n), "selective/st")
	gain, _ := rep.MaxGain(Selective, DP)
	b.ReportMetric(100*gain, "max-gain-vs-dp-%")
}

// BenchmarkFig6aNoFault — Figure 6(a): energy under no faults.
func BenchmarkFig6aNoFault(b *testing.B) { benchFig6(b, NoFault) }

// BenchmarkSimulateSweepFig6a is the wall-clock-gated perf benchmark: the
// same reduced Figure 6(a) sweep as BenchmarkFig6aNoFault, under the
// BenchmarkSimulate* name prefix so scripts/benchgate.sh gates its ns/op
// against results/bench_baseline.txt (generous margin — shared runners
// are noisy; the gate exists to catch order-of-magnitude engine
// regressions that allocs/op cannot see). The optimization history behind
// the current baseline is ledgered under hypotheses/.
func BenchmarkSimulateSweepFig6a(b *testing.B) {
	b.ReportAllocs()
	benchFig6(b, NoFault)
}

// BenchmarkFig6bPermanent — Figure 6(b): one permanent fault.
func BenchmarkFig6bPermanent(b *testing.B) { benchFig6(b, PermanentOnly) }

// BenchmarkFig6cPermTransient — Figure 6(c): permanent + transient.
func BenchmarkFig6cPermTransient(b *testing.B) { benchFig6(b, PermanentAndTransient) }

// BenchmarkSelectiveDispatch backs the paper's O(n) dispatch-complexity
// claim for Algorithm 1: simulated wall time per task should scale
// roughly linearly in the number of tasks (ns/op divided by tasks is the
// metric to watch across sub-benchmarks).
func BenchmarkSelectiveDispatch(b *testing.B) {
	for _, n := range []int{5, 10, 20, 40} {
		b.Run(map[int]string{5: "n=5", 10: "n=10", 20: "n=20", 40: "n=40"}[n], func(b *testing.B) {
			tasks := make([]Task, n)
			for i := range tasks {
				// Light per-task load so the set stays schedulable as n
				// grows: C scales down with n.
				tasks[i] = NewTask(10+float64(i%7), 10+float64(i%7), 4.0/float64(n), 2, 4)
			}
			s := NewSet(tasks...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(s, Selective, RunConfig{HorizonMS: 500}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObservability guards the observability layer's hot-path cost:
// "baseline" is the plain simulation (counters only, no sink — this must
// stay indistinguishable from the pre-metrics engine), "collector" and
// "jsonl" attach the two stock sinks. Compare ns/op and allocs/op of
// baseline against the sink variants to see the cost of observation;
// baseline regressions here mean the no-sink guard broke.
func BenchmarkObservability(b *testing.B) {
	s := motivationSet()
	cfg := RunConfig{HorizonMS: 500}
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Simulate(s, Selective, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("collector", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := cfg
			cfg.Sink = NewEventCollector()
			if _, err := Simulate(s, Selective, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := cfg
			cfg.Sink = NewJSONLSink(io.Discard)
			if _, err := Simulate(s, Selective, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation benches: each reruns the reduced Figure 6(a) sweep with one
// design ingredient of Algorithm 1 changed, reporting the same metrics so
// the contribution of each ingredient is visible.

func benchAblation(b *testing.B, opts core.Options) {
	b.Helper()
	cfg := DefaultSweepConfig(fault.NoFault)
	cfg.SetsPerInterval = 4
	cfg.MaxCandidates = 1200
	cfg.Intervals = workload.Intervals(0.2, 0.7, 0.1)
	cfg.CoreOpts = opts
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var mean float64
	n := 0
	for _, row := range rep.Rows {
		if len(row.Sets) > 0 {
			mean += row.NormMean[Selective]
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(mean/float64(n), "selective/st")
	}
}

// BenchmarkAblationNoAlternation — optional jobs all on the primary
// instead of alternating (principle (ii) of Algorithm 1 disabled).
func BenchmarkAblationNoAlternation(b *testing.B) {
	benchAblation(b, core.Options{NoAlternation: true})
}

// BenchmarkAblationFDThreshold2 — select optional jobs with FD ≤ 2
// instead of exactly 1 (more eager optional execution).
func BenchmarkAblationFDThreshold2(b *testing.B) {
	benchAblation(b, core.Options{FDThreshold: 2})
}

// BenchmarkAblationThetaVsY — backups postponed by the promotion
// interval Yi instead of θi (Defs. 2–5 disabled).
func BenchmarkAblationThetaVsY(b *testing.B) {
	benchAblation(b, core.Options{UsePromotionForTheta: true})
}

// BenchmarkAblationEPattern — evenly-distributed static pattern instead
// of the deeply-red R-pattern for the baselines and the θ analysis.
func BenchmarkAblationEPattern(b *testing.B) {
	benchAblation(b, core.Options{Pattern: pattern.EPattern})
}
