package repro

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timeu"
)

// CacheStats snapshots a Runner's analysis-cache counters.
type CacheStats = analysis.CacheStats

// RunnerConfig tunes a Runner. The zero value is the recommended setup.
type RunnerConfig struct {
	// CacheEntries bounds the offline-analysis LRU: 0 means the default
	// capacity (analysis.DefaultCacheEntries); a negative value disables
	// memoization entirely (every run re-derives its analyses — the
	// pre-Runner behavior, useful for benchmarking the cache itself).
	// The disabled cache is passed down to Sweep too, so a -nocache
	// session is uncached end to end.
	CacheEntries int
}

// Runner is a reusable simulation session: it memoizes per-set offline
// analyses (R-pattern tables, RTA response/promotion times, θ intervals)
// in a size-bounded LRU and recycles engine working state through a
// scratch pool, so batches of Simulate calls and whole Sweeps avoid
// re-deriving analyses and re-allocating queues run after run.
//
// A Runner is safe for concurrent use; results are bit-for-bit identical
// to the free-function path (the caches only skip recomputation of pure
// functions of the task set). The zero-configured NewRunner is what the
// package-level Simulate/Sweep wrappers use.
type Runner struct {
	cache *analysis.Cache // in passthrough mode when memoization is disabled
	pool  *sim.ScratchPool
}

// NewRunner builds a session with the given configuration.
func NewRunner(cfg RunnerConfig) *Runner {
	return &Runner{
		cache: analysis.NewCache(cfg.CacheEntries),
		pool:  sim.NewScratchPool(),
	}
}

// Simulate runs one task set under one approach, honoring ctx at
// event-loop granularity (a canceled context aborts the run promptly
// with an error wrapping ctx.Err()).
func (r *Runner) Simulate(ctx context.Context, s *Set, a Approach, cfg RunConfig) (*Result, error) {
	var prods *analysis.Products
	if cfg.Options.Offline == nil {
		prods = r.cache.Get(s, analysis.Options{
			Pattern:        cfg.Options.Pattern,
			HyperperiodCap: cfg.Options.HyperperiodCap,
		})
	}
	scr := r.pool.Get()
	defer r.pool.Put(scr)
	return simulate(ctx, s, a, cfg, prods, scr)
}

// Sweep runs a utilization sweep through the session's cache and scratch
// pool. On cancellation it returns the partial Report (completed
// intervals, in order) together with an error wrapping ctx.Err().
func (r *Runner) Sweep(ctx context.Context, cfg SweepConfig) (*Report, error) {
	if cfg.Cache == nil {
		cfg.Cache = r.cache
	}
	if cfg.ScratchPool == nil {
		cfg.ScratchPool = r.pool
	}
	return experiment.RunContext(ctx, cfg)
}

// CacheStats reports the session's analysis-cache effectiveness. With
// memoization disabled every Get counts as a miss (Capacity is negative
// and Hits stays zero).
func (r *Runner) CacheStats() CacheStats {
	return r.cache.Stats()
}

// OfflineAnalysis is the lazily-computed, memoized bundle of offline
// products for one task set: RTA response times and convergence flags,
// promotion intervals Yi, the θ postponement analysis (Defs. 2–5), the
// static pattern table and the Theorem-1 schedulability verdict. The
// accessors compute each product at most once and are safe for
// concurrent use.
type OfflineAnalysis = analysis.Products

// Analysis returns the session's memoized offline products for s under
// the paper's analysis options (R-pattern, default hyperperiod cap),
// served from the same LRU the session's simulations share: querying an
// analysis warms the cache for later Simulate calls and vice versa.
func (r *Runner) Analysis(s *Set) *OfflineAnalysis {
	return r.cache.Get(s, analysis.Options{})
}

// defaultRunner backs the package-level convenience functions, so plain
// Simulate/Sweep callers share one process-wide session.
var defaultRunner = NewRunner(RunnerConfig{})

// simulate is the one code path every Simulate variant funnels through.
// With prods == nil and scr == nil it reproduces the standalone behavior
// exactly: fresh analyses, fresh engine state.
func simulate(ctx context.Context, s *Set, a Approach, cfg RunConfig, prods *analysis.Products, scr *sim.Scratch) (*Result, error) {
	horizon := timeu.FromMillis(cfg.HorizonMS)
	if horizon <= 0 {
		horizon = s.MKHyperperiod(2000 * timeu.Millisecond)
	}
	plan := fault.NewPlan(cfg.Scenario, horizon, stats.NewRand(cfg.Seed))
	if cfg.TransientRate > 0 {
		plan.WithTransientRate(cfg.TransientRate)
	}
	opts := cfg.Options
	if opts.Offline == nil {
		opts.Offline = prods
	}
	policy, err := core.New(a, opts)
	if err != nil {
		return nil, err
	}
	eng, err := sim.New(s, policy, sim.Config{
		Power:       cfg.Power,
		Horizon:     horizon,
		Faults:      plan,
		RecordTrace: cfg.RecordTrace,
		Sink:        cfg.Sink,
		Scratch:     scr,
	})
	if err != nil {
		return nil, err
	}
	return eng.RunContext(ctx)
}
