// Command mklint runs this repository's project-specific static analysis
// (internal/lint) over the module and reports diagnostics as
//
//	file:line: [rule] message
//
// Usage:
//
//	mklint ./...                      # whole module (the CI invocation)
//	mklint ./internal/sim/...         # one subtree
//	mklint -json lint.json ./...      # also write the JSON artifact
//	mklint -rules determinism ./...   # run a subset of rules
//	mklint -list                      # print the rule catalogue
//	mklint -scope floateq=internal/legacy/ ./...   # extra per-path scoping
//
// Suppress an intentional violation with a trailing or preceding comment:
//
//	t0 := time.Now() //mklint:allow determinism — wall-clock bench timer
//
// The rule name must exist and the reason must be non-empty; allows that
// no longer suppress anything are themselves reported as stale, so
// suppressions cannot rot silently. Exit status: 0 clean, 1 diagnostics
// found, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		jsonPath = flag.String("json", "", "write diagnostics as a JSON document to this path ('-' for stdout)")
		rules    = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list     = flag.Bool("list", false, "print the rule catalogue and exit")
		scopes   scopeFlag
	)
	flag.Var(&scopes, "scope", "rule=prefix[,prefix...] — additional paths where the rule is disabled (repeatable)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	opts, err := buildOptions(*rules, scopes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		os.Exit(2)
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts.Match, err = matcher(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		os.Exit(2)
	}

	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, opts)
	for _, d := range diags {
		fmt.Println(d)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, diags); err != nil {
			fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mklint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// buildOptions resolves the -rules subset and merges -scope additions
// over the default scope table.
func buildOptions(rules string, scopes scopeFlag) (lint.Options, error) {
	opts := lint.Options{}
	if rules != "" {
		for _, name := range strings.Split(rules, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				return opts, fmt.Errorf("unknown rule %q (try -list)", strings.TrimSpace(name))
			}
			opts.Analyzers = append(opts.Analyzers, a)
		}
	}
	if len(scopes) > 0 {
		merged := lint.DefaultScopes()
		for _, s := range scopes {
			rule, prefixes, ok := strings.Cut(s, "=")
			if !ok || lint.ByName(rule) == nil {
				return opts, fmt.Errorf("bad -scope %q: want rule=prefix[,prefix...] with a known rule", s)
			}
			for _, p := range strings.Split(prefixes, ",") {
				if p = strings.TrimSpace(p); p != "" {
					merged[rule] = append(merged[rule], p)
				}
			}
		}
		opts.Scopes = merged
	}
	return opts, nil
}

type scopeFlag []string

func (s *scopeFlag) String() string     { return strings.Join(*s, " ") }
func (s *scopeFlag) Set(v string) error { *s = append(*s, v); return nil }

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// matcher converts go-style package patterns ("./...", "./internal/sim",
// "./internal/sim/...") into a package filter over module-relative paths.
func matcher(root string, patterns []string) (func(*lint.Package) bool, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	type pat struct {
		rel  string
		tree bool
	}
	var pats []pat
	for _, raw := range patterns {
		p := pat{rel: raw}
		if rest, ok := strings.CutSuffix(p.rel, "/..."); ok {
			p.tree = true
			p.rel = rest
			if p.rel == "." || p.rel == "" {
				pats = append(pats, pat{rel: "", tree: true})
				continue
			}
		}
		abs := p.rel
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, abs)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q lies outside the module", raw)
		}
		if rel == "." {
			rel = ""
		}
		p.rel = filepath.ToSlash(rel)
		pats = append(pats, p)
	}
	return func(pkg *lint.Package) bool {
		for _, p := range pats {
			if p.tree {
				if p.rel == "" || pkg.Rel == p.rel || strings.HasPrefix(pkg.Rel, p.rel+"/") {
					return true
				}
			} else if pkg.Rel == p.rel {
				return true
			}
		}
		return false
	}, nil
}

// jsonDoc is the machine-readable diagnostics artifact CI uploads.
type jsonDoc struct {
	Schema      string            `json:"schema"`
	Count       int               `json:"count"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

func writeJSON(path string, diags []lint.Diagnostic) error {
	doc := jsonDoc{Schema: "mklint/v1", Count: len(diags), Diagnostics: diags}
	if doc.Diagnostics == nil {
		doc.Diagnostics = []lint.Diagnostic{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
