// Command mklint runs this repository's project-specific static analysis
// (internal/lint) over the module and reports diagnostics as
//
//	file:line: [rule] message
//
// Usage:
//
//	mklint ./...                      # whole module (the CI invocation)
//	mklint ./internal/sim/...         # one subtree
//	mklint -json lint.json ./...      # also write the JSON artifact
//	mklint -rules determinism ./...   # run a subset of rules
//	mklint -list                      # print the rule catalogue
//	mklint -scope floateq=internal/legacy/ ./...   # extra per-path scoping
//	mklint -scope internal/sim,internal/rta ./...  # restrict to packages
//	mklint -baseline results/lint_baseline.json ./...   # ratcheted run
//	mklint -baseline results/lint_baseline.json -update-baseline ./...
//
// -scope has two forms: "rule=prefix[,prefix...]" disables one rule under
// the given paths (repeatable, merged over the default scope table), and
// a bare comma-separated package list ("internal/sim,internal/rta")
// restricts the whole run to those packages and their subtrees, exactly
// like passing each as a ./dir/... pattern.
//
// With -baseline, findings listed in the baseline file are accepted and
// everything else fails: new findings must be fixed (or added to the
// baseline with a written justification via -update-baseline plus a
// hand-edited "why"), and baselined findings that stop firing make their
// entries stale, which also fails until the baseline is refreshed — the
// ratchet only moves toward zero.
//
// Suppress an intentional violation with a trailing or preceding comment:
//
//	t0 := time.Now() //mklint:allow determinism — wall-clock bench timer
//
// The rule name must exist and the reason must be non-empty; allows that
// no longer suppress anything are themselves reported as stale, so
// suppressions cannot rot silently.
//
// Exit status: 0 clean, 1 findings (including stale baseline entries),
// 2 usage, load or internal error. CI can therefore distinguish "the
// code has violations" from "the linter itself failed to run".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// exit codes of the mklint contract.
const (
	exitClean    = 0
	exitFindings = 1
	exitInternal = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonPath     = flag.String("json", "", "write diagnostics as a JSON document to this path ('-' for stdout)")
		rules        = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list         = flag.Bool("list", false, "print the rule catalogue and exit")
		baselinePath = flag.String("baseline", "", "accepted-findings baseline file (schema "+lint.BaselineSchema+"); new or stale findings fail")
		updateBase   = flag.Bool("update-baseline", false, "rewrite -baseline from the current findings, carrying over existing justifications")
		scopes       scopeFlag
	)
	flag.Var(&scopes, "scope", "rule=prefix[,prefix...] to disable a rule under paths, or a bare package list to restrict the run (repeatable)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *updateBase && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "mklint: -update-baseline requires -baseline")
		return exitInternal
	}

	opts, pkgScopes, err := buildOptions(*rules, scopes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		return exitInternal
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		return exitInternal
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts.Match, err = matcher(root, patterns, pkgScopes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		return exitInternal
	}

	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		return exitInternal
	}
	diags := lint.Run(prog, opts)

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, diags); err != nil {
			fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
			return exitInternal
		}
	}

	if *baselinePath == "" {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "mklint: %d diagnostic(s)\n", len(diags))
			return exitFindings
		}
		return exitClean
	}
	return applyBaseline(*baselinePath, *updateBase, diags)
}

// applyBaseline runs the ratchet (or refreshes the file with
// -update-baseline) and returns the process exit code.
func applyBaseline(path string, update bool, diags []lint.Diagnostic) int {
	if update {
		prev, err := lint.LoadBaseline(path)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
			return exitInternal
		}
		b := lint.RefreshBaseline(diags, prev)
		if err := lint.WriteBaseline(path, b); err != nil {
			fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
			return exitInternal
		}
		fmt.Printf("mklint: wrote %s with %d entr%s\n", path, len(b.Entries), plural(len(b.Entries), "y", "ies"))
		if err := b.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		}
		return exitClean
	}
	base, err := lint.LoadBaseline(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		return exitInternal
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "mklint: %v\n", err)
		return exitInternal
	}
	fresh, stale := base.Apply(diags)
	for _, d := range fresh {
		fmt.Println(d)
	}
	for _, e := range stale {
		fmt.Printf("%s: [%s] baseline entry no longer fires (%q) — remove it with -update-baseline\n", e.File, e.Rule, e.Message)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "mklint: %d new finding(s), %d stale baseline entr%s\n",
			len(fresh), len(stale), plural(len(stale), "y", "ies"))
		return exitFindings
	}
	return exitClean
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// buildOptions resolves the -rules subset and splits -scope values into
// rule=prefix disables (merged over the default scope table) and bare
// package-list restrictions.
func buildOptions(rules string, scopes scopeFlag) (lint.Options, []string, error) {
	opts := lint.Options{}
	if rules != "" {
		for _, name := range strings.Split(rules, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				return opts, nil, fmt.Errorf("unknown rule %q (try -list)", strings.TrimSpace(name))
			}
			opts.Analyzers = append(opts.Analyzers, a)
		}
	}
	var pkgScopes []string
	var merged map[string][]string
	for _, s := range scopes {
		rule, prefixes, isRuleForm := strings.Cut(s, "=")
		if !isRuleForm {
			// Bare form: a comma-separated package list restricting the run.
			for _, p := range strings.Split(s, ",") {
				if p = strings.TrimSpace(strings.TrimPrefix(p, "./")); p != "" {
					pkgScopes = append(pkgScopes, filepath.ToSlash(strings.TrimSuffix(p, "/")))
				}
			}
			continue
		}
		if lint.ByName(rule) == nil {
			return opts, nil, fmt.Errorf("bad -scope %q: unknown rule %q (try -list)", s, rule)
		}
		if merged == nil {
			merged = lint.DefaultScopes()
		}
		for _, p := range strings.Split(prefixes, ",") {
			if p = strings.TrimSpace(p); p != "" {
				merged[rule] = append(merged[rule], p)
			}
		}
	}
	if merged != nil {
		opts.Scopes = merged
	}
	return opts, pkgScopes, nil
}

type scopeFlag []string

func (s *scopeFlag) String() string     { return strings.Join(*s, " ") }
func (s *scopeFlag) Set(v string) error { *s = append(*s, v); return nil }

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// matcher converts go-style package patterns ("./...", "./internal/sim",
// "./internal/sim/...") into a package filter over module-relative paths.
// pkgScopes (from bare -scope lists) further restricts the match: a
// package must satisfy both a pattern and, when any scopes are given,
// one of the scope subtrees.
func matcher(root string, patterns, pkgScopes []string) (func(*lint.Package) bool, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	type pat struct {
		rel  string
		tree bool
	}
	var pats []pat
	for _, raw := range patterns {
		p := pat{rel: raw}
		if rest, ok := strings.CutSuffix(p.rel, "/..."); ok {
			p.tree = true
			p.rel = rest
			if p.rel == "." || p.rel == "" {
				pats = append(pats, pat{rel: "", tree: true})
				continue
			}
		}
		abs := p.rel
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, abs)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q lies outside the module", raw)
		}
		if rel == "." {
			rel = ""
		}
		p.rel = filepath.ToSlash(rel)
		pats = append(pats, p)
	}
	inTree := func(rel, prefix string) bool {
		return prefix == "" || rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return func(pkg *lint.Package) bool {
		matched := false
		for _, p := range pats {
			if p.tree && inTree(pkg.Rel, p.rel) || !p.tree && pkg.Rel == p.rel {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
		if len(pkgScopes) == 0 {
			return true
		}
		for _, s := range pkgScopes {
			if inTree(pkg.Rel, s) {
				return true
			}
		}
		return false
	}, nil
}

// jsonDoc is the machine-readable diagnostics artifact CI uploads.
type jsonDoc struct {
	Schema      string            `json:"schema"`
	Count       int               `json:"count"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

func writeJSON(path string, diags []lint.Diagnostic) error {
	doc := jsonDoc{Schema: "mklint/v1", Count: len(diags), Diagnostics: diags}
	if doc.Diagnostics == nil {
		doc.Diagnostics = []lint.Diagnostic{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
