// Command mkablate runs the ablation study behind DESIGN.md: the reduced
// Figure 6(a) sweep with one ingredient of Algorithm 1 changed at a time,
// so the contribution of each design choice is visible side by side:
//
//   - paper        — Algorithm 1 as published
//   - no-alternate — eligible optional jobs all on the primary
//   - fd<=2        — eligibility threshold raised from FD=1 to FD<=2
//   - theta=Y      — backups postponed by the promotion interval Yi
//     instead of the Defs. 2–5 interval θi
//   - e-pattern    — evenly-distributed static pattern instead of R
//   - dp-background— the DP baseline replaced by textbook dual-priority
//     (backups also run before promotion)
//
// A second mode, -ksweep, produces the Fig-7 family instead: Goossens'
// exact DBP schedulability test (rta.DBPExact) evaluated per utilization
// bucket under four initial k-sequence seeds — fresh (all-effective),
// single-miss, E-pattern-shaped, and worst (every window one miss from
// violation) — quantifying how much of DBP's schedulability is owed to
// the system starting clean.
//
// Usage:
//
//	mkablate [-sets 8] [-candidates 2000] [-seed 2020] [-lo 0.2] [-hi 0.8]
//	mkablate -ksweep [-sets 6] [-candidates 400] [...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/stats"
	"repro/internal/workload"
)

type variant struct {
	name string
	opts core.Options
	// approaches overrides the compared approaches (nil = ST/DP/selective).
	approaches []core.Approach
}

func main() {
	var (
		sets       = flag.Int("sets", 8, "schedulable sets per interval")
		candidates = flag.Int("candidates", 2000, "max candidates per interval")
		seed       = flag.Uint64("seed", 2020, "master seed")
		lo         = flag.Float64("lo", 0.2, "lowest utilization bound")
		hi         = flag.Float64("hi", 0.8, "highest utilization bound")
		harmonic   = flag.Bool("harmonic", false, "divisor-friendly periods (keeps the theta analysis exact)")
		scenario   = flag.String("scenario", "none", "fault scenario: none | permanent | permanent+transient")
		quiet      = flag.Bool("q", false, "suppress progress")
		ksweep     = flag.Bool("ksweep", false, "k-sequence sensitivity sweep (Fig-7 CSV on stdout) instead of the ablation table")
	)
	flag.Parse()

	if *ksweep {
		runKSweep(*sets, *candidates, *seed, *lo, *hi, *quiet)
		return
	}

	variants := []variant{
		{name: "paper", opts: core.Options{}},
		{name: "no-alternate", opts: core.Options{NoAlternation: true}},
		{name: "fd<=2", opts: core.Options{FDThreshold: 2}},
		{name: "theta=Y", opts: core.Options{UsePromotionForTheta: true}},
		{name: "e-pattern", opts: core.Options{Pattern: pattern.EPattern}},
		{name: "dp-background", opts: core.Options{},
			approaches: []core.Approach{core.ST, core.DPBackground, core.Selective}},
	}

	sc, err := repro.ParseScenario(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkablate: %v\n", err)
		os.Exit(2)
	}

	// All variants vary only the policy options, not the workload, so one
	// session's analysis cache serves every variant that shares Pattern.
	// SIGINT and SIGTERM both cancel gracefully (partial rows are printed).
	runner := repro.NewRunner(repro.RunnerConfig{})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("%-14s %12s %12s %14s\n", "variant", "dp/st", "selective/st", "max-gain-vs-dp")
	for _, v := range variants {
		cfg := repro.DefaultSweepConfig(sc)
		cfg.Seed = *seed
		cfg.SetsPerInterval = *sets
		cfg.MaxCandidates = *candidates
		cfg.Intervals = workload.Intervals(*lo, *hi, 0.1)
		cfg.CoreOpts = v.opts
		if *harmonic {
			wl := workload.DefaultConfig()
			wl.HarmonicPeriods = true
			cfg.Workload = wl
		}
		if v.approaches != nil {
			cfg.Approaches = v.approaches
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s...\n", v.name)
		}
		t0 := time.Now() //mklint:allow determinism — wall-clock timer for operator progress, not simulated time
		rep, err := runner.Sweep(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "mkablate: interrupted during %s — table above is incomplete\n", v.name)
			} else {
				fmt.Fprintf(os.Stderr, "mkablate: %s: %v\n", v.name, err)
			}
			os.Exit(1)
		}
		dpApproach := core.DP
		if v.approaches != nil {
			dpApproach = core.DPBackground
		}
		dpMean, selMean := sweepMeans(rep, dpApproach)
		gain, at := rep.MaxGain(core.Selective, dpApproach)
		fmt.Printf("%-14s %12.3f %12.3f %9.1f%% at %v   (%v)\n",
			v.name, dpMean, selMean, 100*gain, at,
			time.Since(t0).Round(time.Millisecond)) //mklint:allow determinism — reporting the variant's wall-clock duration
	}
}

// kseed names one initial-window shape of the k-sequence sweep.
type kseed struct {
	name string
	// row builds the Init row for an (m,k) task: outcomes recorded onto a
	// fresh all-effective window, oldest first. Nil means the fresh start.
	row func(m, k int) []bool
}

var kseeds = []kseed{
	{name: "fresh", row: nil},
	// One miss just happened; every window is otherwise clean.
	{name: "single_miss", row: func(m, k int) []bool { return []bool{false} }},
	// The evenly-distributed E-pattern realized verbatim: mandatory
	// positions effective, optional positions missed, spread across the
	// window. (The R-pattern's realization — m effectives first, then
	// the misses — is exactly the worst seed below, so it is not a
	// separate column.)
	{name: "epat", row: func(m, k int) []bool {
		row := make([]bool, k)
		for j := 1; j <= k; j++ {
			row[j-1] = pattern.Mandatory(pattern.EPattern, j, m, k)
		}
		return row
	}},
	// Worst admissible history: the m oldest outcomes effective, the k−m
	// newest missed — every task starts at distance 1.
	{name: "worst", row: func(m, k int) []bool {
		row := make([]bool, k)
		for j := 0; j < m; j++ {
			row[j] = true
		}
		return row
	}},
}

// runKSweep generates harmonic-period workloads per utilization bucket
// and reports, for each initial-k-sequence seed, the fraction the exact
// DBP test proves schedulable. Unlike the energy sweep, the candidates
// are NOT pre-filtered by the Theorem-1 R-pattern test: that filter
// guarantees survival of the synchronous all-mandatory start, which
// dominates every hostile seed and would flatten the figure — the whole
// point is to see where DBP holds beyond the static-pattern regime.
// Harmonic periods keep the hyperperiods small so the state-space walk
// closes its cycle (exact verdicts); the rare inexact verdict is counted
// by its bounded-horizon answer.
func runKSweep(sets, candidates int, seed uint64, lo, hi float64, quiet bool) {
	wl := workload.DefaultConfig()
	wl.HarmonicPeriods = true
	intervals := workload.Intervals(lo, hi, 0.1)

	fmt.Print("util_mid,sets")
	for _, ks := range kseeds {
		fmt.Print(",", ks.name)
	}
	fmt.Println()
	rng := stats.NewRand(seed)
	for i, iv := range intervals {
		if !quiet {
			fmt.Fprintf(os.Stderr, "ksweep %v...\n", iv)
		}
		gen := workload.NewGenerator(wl, seed+uint64(i))
		used := 0
		pass := make([]int, len(kseeds))
		for drawn := 0; drawn < candidates && used < sets; drawn++ {
			target := iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
			s, err := gen.Candidate(target)
			if err != nil {
				continue
			}
			if u := s.MKUtilization(); u < iv.Lo || u >= iv.Hi {
				continue
			}
			// θ always computes for a valid set (divergent tasks fall
			// back to the safe promotion interval).
			an, err := analysis.New(s, analysis.Options{}).Postponement()
			if err != nil {
				continue
			}
			used++
			for ki, ks := range kseeds {
				var init [][]bool
				if ks.row != nil {
					init = make([][]bool, s.N())
					for ti := range s.Tasks {
						init[ti] = ks.row(s.Tasks[ti].M, s.Tasks[ti].K)
					}
				}
				v := rta.DBPExact(s, rta.DBPConfig{Theta: an.Theta, Init: init})
				if v.Schedulable {
					pass[ki]++
				}
			}
		}
		fmt.Printf("%.2f,%d", iv.Mid(), used)
		for ki := range kseeds {
			frac := 0.0
			if used > 0 {
				frac = float64(pass[ki]) / float64(used)
			}
			fmt.Printf(",%.3f", frac)
		}
		fmt.Println()
	}
}

func sweepMeans(rep *repro.Report, dp core.Approach) (dpMean, selMean float64) {
	n := 0
	for _, row := range rep.Rows {
		if len(row.Sets) == 0 {
			continue
		}
		n++
		dpMean += row.NormMean[dp]
		selMean += row.NormMean[core.Selective]
	}
	if n > 0 {
		dpMean /= float64(n)
		selMean /= float64(n)
	}
	return dpMean, selMean
}
