// Command mkablate runs the ablation study behind DESIGN.md: the reduced
// Figure 6(a) sweep with one ingredient of Algorithm 1 changed at a time,
// so the contribution of each design choice is visible side by side:
//
//   - paper        — Algorithm 1 as published
//   - no-alternate — eligible optional jobs all on the primary
//   - fd<=2        — eligibility threshold raised from FD=1 to FD<=2
//   - theta=Y      — backups postponed by the promotion interval Yi
//     instead of the Defs. 2–5 interval θi
//   - e-pattern    — evenly-distributed static pattern instead of R
//   - dp-background— the DP baseline replaced by textbook dual-priority
//     (backups also run before promotion)
//
// Usage:
//
//	mkablate [-sets 8] [-candidates 2000] [-seed 2020] [-lo 0.2] [-hi 0.8]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/workload"
)

type variant struct {
	name string
	opts core.Options
	// approaches overrides the compared approaches (nil = ST/DP/selective).
	approaches []core.Approach
}

func main() {
	var (
		sets       = flag.Int("sets", 8, "schedulable sets per interval")
		candidates = flag.Int("candidates", 2000, "max candidates per interval")
		seed       = flag.Uint64("seed", 2020, "master seed")
		lo         = flag.Float64("lo", 0.2, "lowest utilization bound")
		hi         = flag.Float64("hi", 0.8, "highest utilization bound")
		harmonic   = flag.Bool("harmonic", false, "divisor-friendly periods (keeps the theta analysis exact)")
		scenario   = flag.String("scenario", "none", "fault scenario: none | permanent | permanent+transient")
		quiet      = flag.Bool("q", false, "suppress progress")
	)
	flag.Parse()

	variants := []variant{
		{name: "paper", opts: core.Options{}},
		{name: "no-alternate", opts: core.Options{NoAlternation: true}},
		{name: "fd<=2", opts: core.Options{FDThreshold: 2}},
		{name: "theta=Y", opts: core.Options{UsePromotionForTheta: true}},
		{name: "e-pattern", opts: core.Options{Pattern: pattern.EPattern}},
		{name: "dp-background", opts: core.Options{},
			approaches: []core.Approach{core.ST, core.DPBackground, core.Selective}},
	}

	sc, err := repro.ParseScenario(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkablate: %v\n", err)
		os.Exit(2)
	}

	// All variants vary only the policy options, not the workload, so one
	// session's analysis cache serves every variant that shares Pattern.
	// SIGINT and SIGTERM both cancel gracefully (partial rows are printed).
	runner := repro.NewRunner(repro.RunnerConfig{})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("%-14s %12s %12s %14s\n", "variant", "dp/st", "selective/st", "max-gain-vs-dp")
	for _, v := range variants {
		cfg := repro.DefaultSweepConfig(sc)
		cfg.Seed = *seed
		cfg.SetsPerInterval = *sets
		cfg.MaxCandidates = *candidates
		cfg.Intervals = workload.Intervals(*lo, *hi, 0.1)
		cfg.CoreOpts = v.opts
		if *harmonic {
			wl := workload.DefaultConfig()
			wl.HarmonicPeriods = true
			cfg.Workload = wl
		}
		if v.approaches != nil {
			cfg.Approaches = v.approaches
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s...\n", v.name)
		}
		t0 := time.Now() //mklint:allow determinism — wall-clock timer for operator progress, not simulated time
		rep, err := runner.Sweep(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "mkablate: interrupted during %s — table above is incomplete\n", v.name)
			} else {
				fmt.Fprintf(os.Stderr, "mkablate: %s: %v\n", v.name, err)
			}
			os.Exit(1)
		}
		dpApproach := core.DP
		if v.approaches != nil {
			dpApproach = core.DPBackground
		}
		dpMean, selMean := sweepMeans(rep, dpApproach)
		gain, at := rep.MaxGain(core.Selective, dpApproach)
		fmt.Printf("%-14s %12.3f %12.3f %9.1f%% at %v   (%v)\n",
			v.name, dpMean, selMean, 100*gain, at,
			time.Since(t0).Round(time.Millisecond)) //mklint:allow determinism — reporting the variant's wall-clock duration
	}
}

func sweepMeans(rep *repro.Report, dp core.Approach) (dpMean, selMean float64) {
	n := 0
	for _, row := range rep.Rows {
		if len(row.Sets) == 0 {
			continue
		}
		n++
		dpMean += row.NormMean[dp]
		selMean += row.NormMean[core.Selective]
	}
	if n > 0 {
		dpMean /= float64(n)
		selMean /= float64(n)
	}
	return dpMean, selMean
}
