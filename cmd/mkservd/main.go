// Command mkservd serves the simulator over HTTP/JSON: a repro.Runner
// session behind admission control, request coalescing, a persistent
// result store and graceful drain (see internal/serve).
//
// Usage:
//
//	mkservd                                  # listen on 127.0.0.1:8080
//	mkservd -addr 127.0.0.1:0 -addrfile a    # ephemeral port, written to a
//	mkservd -rate 2000 -inflight 8 -queue 128 -drain 10s
//	mkservd -store /var/lib/mkss             # results survive restarts
//	mkservd -tenant-rate 50 -tenant-burst 100 -events events.jsonl
//
// Endpoints:
//
//	POST /v1/simulate   one run (coalesced across identical requests)
//	POST /v1/sweep      utilization sweep, streamed as chunked JSONL
//	GET  /v1/estimate   closed-form analytical-twin answer (also POST);
//	                    consumes no execution slot, refine=true falls
//	                    through to the /v1/simulate path byte-identically
//	GET  /v1/analyze    offline analysis products for a task set
//	GET  /healthz       liveness, drain state, store stats, p95
//	GET  /metrics       counters and gauges, text format
//
// With -store, simulate and sweep results persist in a content-addressed
// store under the given directory: a request whose key is stored answers
// from disk — byte-identical to a live run, no execution slot — and
// misses are written back. The directory is shared-format with mkfleet
// -store, so a fleet run warms a server and vice versa.
//
// With -tenant-rate, every request is accounted against its tenant (the
// X-MK-Tenant header; "default" when absent) and a tenant exceeding its
// token-bucket quota receives a structured 429 (code "quota_exceeded")
// whose Retry-After is derived from that bucket's refill time.
//
// SIGINT/SIGTERM start the graceful drain: the listener stops accepting,
// in-flight requests get -drain to finish, and whatever remains is
// canceled (the drain summary reports how many had to be aborted).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/store"
)

type options struct {
	addr, addrFile string
	inflight       int
	queue          int
	rate           float64
	burst          int
	timeout        time.Duration
	drain          time.Duration
	cache          int
	quiet          bool

	storeDir     string
	storeCompact bool
	tenantRate   float64
	tenantBurst  int
	eventsPath   string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	flag.StringVar(&o.addrFile, "addrfile", "", "write the bound address to this file (for scripts using -addr :0)")
	flag.IntVar(&o.inflight, "inflight", 0, "max concurrently executing jobs (0 = default 4)")
	flag.IntVar(&o.queue, "queue", 0, "bounded job queue depth (0 = default 64, -1 = no queue)")
	flag.Float64Var(&o.rate, "rate", 0, "token-bucket request rate limit per second (0 = unlimited)")
	flag.IntVar(&o.burst, "burst", 0, "token bucket capacity (0 = rate)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "default per-request simulation deadline")
	flag.DurationVar(&o.drain, "drain", 5*time.Second, "graceful drain window on SIGINT/SIGTERM")
	flag.IntVar(&o.cache, "cache", 0, "analysis cache entries (0 = default, <0 = disabled)")
	flag.BoolVar(&o.quiet, "q", false, "suppress lifecycle logging")
	flag.StringVar(&o.storeDir, "store", "", "persistent result store directory (empty = no store)")
	flag.BoolVar(&o.storeCompact, "store-compact", false, "compact the store after opening it")
	flag.Float64Var(&o.tenantRate, "tenant-rate", 0, "per-tenant request quota per second (0 = no tenant quotas)")
	flag.IntVar(&o.tenantBurst, "tenant-burst", 0, "per-tenant token bucket capacity (0 = tenant-rate)")
	flag.StringVar(&o.eventsPath, "events", "", "append the JSONL event stream (store hits/misses, quota rejections) to this file")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "mkservd: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	var log io.Writer = os.Stderr
	if o.quiet {
		log = nil
	}
	cfg := serve.Config{
		Runner:           repro.NewRunner(repro.RunnerConfig{CacheEntries: o.cache}),
		MaxInFlight:      o.inflight,
		QueueDepth:       o.queue,
		RatePerSec:       o.rate,
		Burst:            o.burst,
		DefaultTimeout:   o.timeout,
		DrainWindow:      o.drain,
		TenantRatePerSec: o.tenantRate,
		TenantBurst:      o.tenantBurst,
		Log:              log,
	}
	if o.storeDir != "" {
		st, err := store.Open(o.storeDir, store.Options{Log: log})
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "mkservd: close store: %v\n", cerr)
			}
		}()
		if o.storeCompact {
			if err := st.Compact(); err != nil {
				return fmt.Errorf("compact store: %w", err)
			}
		}
		if log != nil {
			stats := st.Stats()
			fmt.Fprintf(log, "mkservd: store %s: %d keys in %d segments (%d bytes)\n",
				o.storeDir, stats.Keys, stats.Segments, stats.DiskBytes)
		}
		cfg.Store = st
	}
	if o.eventsPath != "" {
		f, err := os.OpenFile(o.eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open events file: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "mkservd: close events file: %v\n", cerr)
			}
		}()
		cfg.Events = f
	}

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := l.Addr().String()
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(bound), 0o644); err != nil {
			return err
		}
	}
	if log != nil {
		fmt.Fprintf(log, "mkservd: listening on %s\n", bound)
	}
	// SIGINT and SIGTERM both begin the graceful drain; serve.Run owns
	// the drain window and in-flight cancellation from here.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve.NewServer(cfg).Run(ctx, l)
}
