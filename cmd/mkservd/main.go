// Command mkservd serves the simulator over HTTP/JSON: a repro.Runner
// session behind admission control, request coalescing and graceful
// drain (see internal/serve).
//
// Usage:
//
//	mkservd                                  # listen on 127.0.0.1:8080
//	mkservd -addr 127.0.0.1:0 -addrfile a    # ephemeral port, written to a
//	mkservd -rate 2000 -inflight 8 -queue 128 -drain 10s
//
// Endpoints:
//
//	POST /v1/simulate   one run (coalesced across identical requests)
//	POST /v1/sweep      utilization sweep, streamed as chunked JSONL
//	GET  /v1/estimate   closed-form analytical-twin answer (also POST);
//	                    consumes no execution slot, refine=true falls
//	                    through to the /v1/simulate path byte-identically
//	GET  /v1/analyze    offline analysis products for a task set
//	GET  /healthz       liveness and drain state
//	GET  /metrics       counters and gauges, text format
//
// SIGINT/SIGTERM start the graceful drain: the listener stops accepting,
// in-flight requests get -drain to finish, and whatever remains is
// canceled (the drain summary reports how many had to be aborted).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
		addrFile = flag.String("addrfile", "", "write the bound address to this file (for scripts using -addr :0)")
		inflight = flag.Int("inflight", 0, "max concurrently executing jobs (0 = default 4)")
		queue    = flag.Int("queue", 0, "bounded job queue depth (0 = default 64, -1 = no queue)")
		rate     = flag.Float64("rate", 0, "token-bucket request rate limit per second (0 = unlimited)")
		burst    = flag.Int("burst", 0, "token bucket capacity (0 = rate)")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-request simulation deadline")
		drain    = flag.Duration("drain", 5*time.Second, "graceful drain window on SIGINT/SIGTERM")
		cache    = flag.Int("cache", 0, "analysis cache entries (0 = default, <0 = disabled)")
		quiet    = flag.Bool("q", false, "suppress lifecycle logging")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, serveConfig(*inflight, *queue, *rate, *burst, *timeout, *drain, *cache, *quiet)); err != nil {
		fmt.Fprintf(os.Stderr, "mkservd: %v\n", err)
		os.Exit(1)
	}
}

func serveConfig(inflight, queue int, rate float64, burst int, timeout, drain time.Duration, cache int, quiet bool) serve.Config {
	var log io.Writer = os.Stderr
	if quiet {
		log = nil
	}
	return serve.Config{
		Runner:         repro.NewRunner(repro.RunnerConfig{CacheEntries: cache}),
		MaxInFlight:    inflight,
		QueueDepth:     queue,
		RatePerSec:     rate,
		Burst:          burst,
		DefaultTimeout: timeout,
		DrainWindow:    drain,
		Log:            log,
	}
}

func run(addr, addrFile string, cfg serve.Config) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := l.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			return err
		}
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "mkservd: listening on %s\n", bound)
	}
	// SIGINT and SIGTERM both begin the graceful drain; serve.Run owns
	// the drain window and in-flight cancellation from here.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve.NewServer(cfg).Run(ctx, l)
}
