// Command mksim simulates one task set under one scheduling approach and
// prints the energy/QoS report (optionally with an ASCII Gantt chart).
//
// Usage:
//
//	mksim -set tasks.json -approach selective -horizon 100 -gantt
//	mksim -demo -approach dp        # the paper's §III example set
//	mksim -set tasks.json -approach selective -scenario permanent -seed 7
//
// The JSON schema:
//
//	{"tasks": [{"period_ms":5, "deadline_ms":4, "wcet_ms":3, "m":2, "k":4}]}
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		setPath   = flag.String("set", "", "path to a JSON task-set spec")
		demo      = flag.Bool("demo", false, "use the paper's §III example set instead of -set")
		approach  = flag.String("approach", "selective", "st | dp | greedy | selective | dp-background")
		horizonMS = flag.Float64("horizon", 0, "simulated ms (0 = one (m,k)-hyperperiod, capped at 2000)")
		scenario  = flag.String("scenario", "none", "fault scenario: none | permanent | permanent+transient")
		seed      = flag.Uint64("seed", 1, "fault realization seed")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		segments  = flag.Bool("segments", false, "print every execution segment")
		perTask   = flag.Bool("pertask", false, "print per-task energy/outcome attribution")
	)
	flag.Parse()
	if err := run(*setPath, *demo, *approach, *horizonMS, *scenario, *seed, *gantt || *perTask, *segments, *perTask); err != nil {
		fmt.Fprintf(os.Stderr, "mksim: %v\n", err)
		os.Exit(1)
	}
}

func run(setPath string, demo bool, approach string, horizonMS float64, scenario string, seed uint64, trace, segments, perTask bool) error {
	var s *repro.Set
	switch {
	case demo:
		s = repro.NewSet(repro.NewTask(5, 4, 3, 2, 4), repro.NewTask(10, 10, 3, 1, 2))
	case setPath != "":
		f, err := os.Open(setPath)
		if err != nil {
			return err
		}
		defer f.Close()
		s, err = repro.LoadSet(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -set FILE or -demo")
	}

	a, err := repro.ParseApproach(approach)
	if err != nil {
		return err
	}
	var sc repro.Scenario
	switch scenario {
	case "none", "":
		sc = repro.NoFault
	case "permanent":
		sc = repro.PermanentOnly
	case "permanent+transient", "both":
		sc = repro.PermanentAndTransient
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	fmt.Printf("task set (total utilization %.3f, (m,k)-utilization %.3f):\n%s\n",
		s.Utilization(), s.MKUtilization(), s)
	if !repro.RPatternSchedulable(s) {
		fmt.Println("warning: set is NOT R-pattern schedulable; (m,k)-deadlines are not guaranteed")
	}

	res, err := repro.Simulate(s, a, repro.RunConfig{
		HorizonMS:   horizonMS,
		Scenario:    sc,
		Seed:        seed,
		RecordTrace: trace || segments,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%s over %v (%s):\n", res.Policy, res.Horizon, sc)
	fmt.Printf("  active energy: %.3f   total energy (incl. idle/sleep): %.3f\n",
		res.ActiveEnergy(), res.TotalEnergy())
	for p, en := range res.PerProc {
		name := [...]string{"primary", "spare"}[p]
		fmt.Printf("  %-7s busy %v, idle %v, asleep %v, dead %v\n",
			name, en.ActiveTime, en.IdleTime, en.SleepTime, en.DeadTime)
	}
	c := res.Counters
	fmt.Printf("  jobs: %d released, %d mandatory, %d optional selected, %d skipped, %d demotions\n",
		c.Released, c.MandatoryJobs, c.OptionalSelected, c.OptionalSkipped, c.Demotions)
	fmt.Printf("  backups: %d created, %d canceled clean, %d canceled partial\n",
		c.BackupsCreated, c.BackupsCanceledClean, c.BackupsCanceledPartial)
	fmt.Printf("  outcomes: %d effective, %d misses, %d transient faults\n",
		c.Effective, c.Misses, c.TransientFaults)
	if pf := res.PermanentFault; pf != nil {
		fmt.Printf("  permanent fault: processor %d at %v\n", pf.Proc, pf.At)
	}
	fmt.Printf("  (m,k) satisfied: %v\n", res.MKSatisfied())
	if !res.MKSatisfied() {
		for i, v := range res.ViolationAt {
			if v >= 0 {
				fmt.Printf("    tau%d violates at job %d\n", i+1, v+1)
			}
		}
	}
	if trace {
		fmt.Println()
		fmt.Print(repro.GanttChart(res))
	}
	if perTask {
		fmt.Println()
		fmt.Print(res.PerTaskTable())
	}
	if segments {
		fmt.Println()
		fmt.Print(repro.TraceSummary(res))
	}
	return nil
}
