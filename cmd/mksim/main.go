// Command mksim simulates one task set under one scheduling approach and
// prints the energy/QoS report (optionally with an ASCII Gantt chart).
//
// Usage:
//
//	mksim -set tasks.json -approach selective -horizon 100 -gantt
//	mksim -demo -approach dp        # the paper's §III example set
//	mksim -set tasks.json -approach selective -scenario permanent -seed 7
//	mksim -demo -json               # machine-readable run report on stdout
//	mksim -demo -events run.jsonl   # structured event trace (JSONL)
//	mksim -demo -estimate           # analytical-twin answer, no simulation
//
// The task-set JSON schema:
//
//	{"tasks": [{"period_ms":5, "deadline_ms":4, "wcet_ms":3, "m":2, "k":4}]}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/analysis"
	"repro/internal/estimate"
	"repro/internal/serve/wire"
)

// options collects the parsed flags.
type options struct {
	setPath   string
	demo      bool
	approach  string
	horizonMS float64
	scenario  string
	seed      uint64
	gantt     bool
	segments  bool
	perTask   bool
	jsonOut   bool
	events    string
	estimate  bool
	backend   string
}

func main() {
	var o options
	flag.StringVar(&o.setPath, "set", "", "path to a JSON task-set spec (- = stdin)")
	flag.BoolVar(&o.demo, "demo", false, "use the paper's §III example set instead of -set")
	flag.StringVar(&o.approach, "approach", "selective", "st | dp | greedy | selective | dp-background")
	flag.Float64Var(&o.horizonMS, "horizon", 0, "simulated ms (0 = one (m,k)-hyperperiod, capped at 2000)")
	flag.StringVar(&o.scenario, "scenario", "none", "fault scenario: none | permanent | permanent+transient")
	flag.Uint64Var(&o.seed, "seed", 1, "fault realization seed")
	flag.BoolVar(&o.gantt, "gantt", false, "print an ASCII Gantt chart")
	flag.BoolVar(&o.segments, "segments", false, "print every execution segment")
	flag.BoolVar(&o.perTask, "pertask", false, "print per-task energy/outcome attribution")
	flag.BoolVar(&o.jsonOut, "json", false, "print a machine-readable run report (schema mkss-run/v1) instead of text")
	flag.StringVar(&o.events, "events", "", "write the structured event trace as JSONL to this file")
	flag.BoolVar(&o.estimate, "estimate", false, "answer from an estimator backend instead of simulating (closed-form twin by default)")
	flag.StringVar(&o.backend, "backend", "", "estimator backend for -estimate (default twin; see internal/estimate)")
	flag.Parse()
	// SIGINT and SIGTERM cancel the simulation gracefully: the engine
	// stops at the next event-loop check and run reports the interruption.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "mksim: interrupted — no results (single runs have no partial output)")
		} else {
			fmt.Fprintf(os.Stderr, "mksim: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	var s *repro.Set
	switch {
	case o.demo:
		s = repro.NewSet(repro.NewTask(5, 4, 3, 2, 4), repro.NewTask(10, 10, 3, 1, 2))
	case o.setPath != "":
		var err error
		if s, err = repro.LoadSetFile(o.setPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -set FILE or -demo")
	}

	a, err := repro.ParseApproach(o.approach)
	if err != nil {
		return err
	}
	sc, err := repro.ParseScenario(o.scenario)
	if err != nil {
		return err
	}

	if o.estimate {
		return runEstimate(ctx, s, a, sc, o)
	}

	schedulable := repro.RPatternSchedulable(s)
	trace := o.gantt || o.perTask
	if !o.jsonOut {
		fmt.Printf("task set (total utilization %.3f, (m,k)-utilization %.3f):\n%s\n",
			s.Utilization(), s.MKUtilization(), s)
		if !schedulable {
			fmt.Println("warning: set is NOT R-pattern schedulable; (m,k)-deadlines are not guaranteed")
		}
	}

	cfg := repro.RunConfig{
		HorizonMS:   o.horizonMS,
		Scenario:    sc,
		Seed:        o.seed,
		RecordTrace: trace || o.segments,
	}
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			return err
		}
		defer func() {
			// The events file is an output artifact: surface close
			// failures (ENOSPC, NFS flush) instead of dropping them.
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mksim: closing %s: %v\n", o.events, err)
			}
		}()
		sink := repro.NewJSONLSink(f)
		cfg.Sink = sink
		defer func() {
			if err := sink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "mksim: event sink: %v\n", err)
			}
		}()
	}

	res, err := repro.SimulateContext(ctx, s, a, cfg)
	if err != nil {
		return err
	}

	if o.jsonOut {
		return writeJSON(res, sc, o.seed, schedulable)
	}

	fmt.Printf("\n%s over %v (%s):\n", res.Policy, res.Horizon, sc)
	fmt.Printf("  active energy: %.3f   total energy (incl. idle/sleep): %.3f\n",
		res.ActiveEnergy(), res.TotalEnergy())
	for p, en := range res.PerProc {
		name := [...]string{"primary", "spare"}[p]
		fmt.Printf("  %-7s busy %v, idle %v, asleep %v, dead %v\n",
			name, en.ActiveTime, en.IdleTime, en.SleepTime, en.DeadTime)
	}
	c := res.Counters
	fmt.Printf("  jobs: %d released, %d mandatory, %d optional selected, %d skipped, %d demotions\n",
		c.Released, c.MandatoryJobs, c.OptionalSelected, c.OptionalSkipped, c.Demotions)
	fmt.Printf("  backups: %d created, %d canceled clean, %d canceled partial\n",
		c.BackupsCreated, c.BackupsCanceledClean, c.BackupsCanceledPartial)
	fmt.Printf("  outcomes: %d effective, %d misses, %d transient faults\n",
		c.Effective, c.Misses, c.TransientFaults)
	if pf := res.PermanentFault; pf != nil {
		fmt.Printf("  permanent fault: processor %d at %v\n", pf.Proc, pf.At)
	}
	fmt.Printf("  (m,k) satisfied: %v\n", res.MKSatisfied())
	if !res.MKSatisfied() {
		for i, v := range res.ViolationAt {
			if v >= 0 {
				fmt.Printf("    tau%d violates at job %d\n", i+1, v+1)
			}
		}
	}
	if trace {
		fmt.Println()
		fmt.Print(repro.GanttChart(res))
	}
	if o.perTask {
		fmt.Println()
		fmt.Print(res.PerTaskTable())
	}
	if o.segments {
		fmt.Println()
		fmt.Print(repro.TraceSummary(res))
	}
	return nil
}

// runEstimate answers the query through an estimator backend — the
// analytical twin by default: closed-form schedulability and energy with
// no discrete-event run. With -json it prints the same mkss-estimate/v1
// document GET /v1/estimate serves.
func runEstimate(ctx context.Context, s *repro.Set, a repro.Approach, sc repro.Scenario, o options) error {
	est, err := estimate.New(o.backend, repro.NewRunner(repro.RunnerConfig{}))
	if err != nil {
		return err
	}
	ans, err := est.Estimate(ctx, estimate.Request{
		Set: s, Approach: a, Scenario: sc, Seed: o.seed, HorizonMS: o.horizonMS,
	})
	if err != nil {
		return err
	}
	if o.jsonOut {
		doc := wire.EstimateDoc{
			Schema:       wire.EstimateSchema,
			Fingerprint:  analysis.Fingerprint(s),
			Backend:      ans.Backend,
			Policy:       ans.Policy,
			Scenario:     sc.String(),
			Seed:         o.seed,
			HorizonUS:    int64(ans.Horizon),
			Schedulable:  ans.Schedulable,
			ActiveEnergy: ans.ActiveEnergy,
			TotalEnergy:  ans.TotalEnergy,
			MKPredicted:  ans.MKPredicted,
			Exact:        ans.Exact,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Println(string(data))
		return err
	}
	kind := "estimated (closed-form twin)"
	if ans.Exact {
		kind = "exact (simulated through the estimator)"
	}
	fmt.Printf("%s estimate over %v (%s), backend %s — %s:\n",
		ans.Policy, ans.Horizon, sc, ans.Backend, kind)
	fmt.Printf("  R-pattern schedulable: %v   (m,k) predicted: %v\n", ans.Schedulable, ans.MKPredicted)
	fmt.Printf("  active energy: %.3f   total energy (incl. idle/sleep): %.3f\n",
		ans.ActiveEnergy, ans.TotalEnergy)
	return nil
}

// runJSON is the -json report: one simulation, machine-readable. Version
// the schema string on any incompatible change.
type runJSON struct {
	Schema        string         `json:"schema"`
	Policy        string         `json:"policy"`
	Scenario      string         `json:"scenario"`
	Seed          uint64         `json:"seed"`
	HorizonUS     int64          `json:"horizon_us"`
	Schedulable   bool           `json:"r_pattern_schedulable"`
	ActiveEnergy  float64        `json:"active_energy"`
	TotalEnergy   float64        `json:"total_energy"`
	MKSatisfied   bool           `json:"mk_satisfied"`
	ViolationAt   []int          `json:"violation_at"`
	Counters      repro.Counters `json:"counters"`
	PermanentAtUS int64          `json:"permanent_fault_at_us,omitempty"`
	PermanentProc int            `json:"permanent_fault_proc,omitempty"`
}

func writeJSON(res *repro.Result, sc repro.Scenario, seed uint64, schedulable bool) error {
	doc := runJSON{
		Schema:       "mkss-run/v1",
		Policy:       res.Policy,
		Scenario:     sc.String(),
		Seed:         seed,
		HorizonUS:    int64(res.Horizon),
		Schedulable:  schedulable,
		ActiveEnergy: res.ActiveEnergy(),
		TotalEnergy:  res.TotalEnergy(),
		MKSatisfied:  res.MKSatisfied(),
		ViolationAt:  res.ViolationAt,
		Counters:     res.Counters,
	}
	if pf := res.PermanentFault; pf != nil {
		doc.PermanentAtUS = int64(pf.At)
		doc.PermanentProc = pf.Proc
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(data))
	return err
}
