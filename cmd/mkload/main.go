// Command mkload load-tests a running mkservd: closed-loop (fixed
// concurrency) or open-loop (fixed request rate) workers hammer the
// server with a mixed request distribution and report throughput plus
// latency percentiles as a versioned mkss-bench/v1 JSON document — the
// repo's end-to-end serving benchmark (results/BENCH_serve.json).
//
// Usage:
//
//	mkload -addr 127.0.0.1:8080 -duration 5s -c 8
//	mkload -addr $A -mix simulate=0.45,estimate=0.40,analyze=0.10,sweep=0.05
//	mkload -addr $A -rate 500 -c 64 -out results/BENCH_serve.json
//
// 429 responses are counted as rejected (backpressure working), not as
// errors; coalesced responses are recognized by the X-Mkss-Coalesced
// header and store hits by X-Mkss-Store. SIGINT/SIGTERM stop the burst
// early and report what ran.
//
// -tenant stamps every request with the X-MK-Tenant header, for driving
// a server with per-tenant quotas. -distinct gives every simulate
// request a unique seed: identical requests coalesce into one
// computation server-side, so a coalescing-aware burst never builds real
// queue depth — distinct requests are how you load a server (or an
// autoscaling pool) for real.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/stats"
)

type options struct {
	addr     string
	duration time.Duration
	workers  int
	rate     float64
	mix      string
	setPath  string
	approach string
	horizon  float64
	seed     uint64
	out      string
	quiet    bool
	tenant   string
	distinct bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "mkservd address (host:port)")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "burst duration")
	flag.IntVar(&o.workers, "c", 8, "concurrent workers (closed-loop concurrency / open-loop cap)")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop request rate per second (0 = closed loop)")
	flag.StringVar(&o.mix, "mix", "simulate=1", "request mix, e.g. simulate=0.45,estimate=0.40,analyze=0.10,sweep=0.05")
	flag.StringVar(&o.setPath, "set", "", "JSON task-set spec for simulate/analyze requests (- = stdin; default: the paper's §III set)")
	flag.StringVar(&o.approach, "approach", "selective", "approach for simulate requests")
	flag.Float64Var(&o.horizon, "horizon", 20, "simulate horizon in ms")
	flag.Uint64Var(&o.seed, "seed", 1, "mix-draw seed (reproducible request sequences)")
	flag.StringVar(&o.out, "out", "", "write the mkss-bench/v1 JSON document here (default: stdout)")
	flag.BoolVar(&o.quiet, "q", false, "suppress the human-readable summary")
	flag.StringVar(&o.tenant, "tenant", "", "X-MK-Tenant header value (empty = server default tenant)")
	flag.BoolVar(&o.distinct, "distinct", false, "give every simulate request a unique seed (defeats coalescing and the store; builds real queue depth)")
	flag.Parse()
	// SIGTERM behaves like SIGINT: stop the burst, report partial results.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintf(os.Stderr, "mkload: %v\n", err)
		os.Exit(1)
	}
}

// endpointNames orders the mix endpoints for deterministic draws/output.
var endpointNames = []string{"simulate", "estimate", "analyze", "sweep"}

// parseMix parses "a=0.8,b=0.2" into normalized weights over the known
// endpoints.
func parseMix(s string) (map[string]float64, error) {
	mix := map[string]float64{}
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q must be a non-negative number", val)
		}
		known := false
		for _, e := range endpointNames {
			known = known || e == name
		}
		if !known {
			return nil, fmt.Errorf("unknown mix endpoint %q (want %s)", name, strings.Join(endpointNames, "|"))
		}
		mix[name] += w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix has no positive weight")
	}
	for k := range mix {
		mix[k] /= total
	}
	return mix, nil
}

// requestSpec is one prepared request: every invocation of an endpoint
// sends the identical payload through the shared API client, which is
// what exercises the server's coalescing and analysis cache.
type requestSpec struct {
	name string
	do   func(ctx context.Context, cl *client.Client) (client.Info, error)
}

// sample accumulates one endpoint's latencies and counts.
type sample struct {
	latencies []float64 // milliseconds
	errors    int
	rejected  int
	coalesced int
	storeHits int
}

// workerResult is one worker's private accounting (merged afterwards).
type workerResult map[string]*sample

func run(ctx context.Context, o options) error {
	mix, err := parseMix(o.mix)
	if err != nil {
		return err
	}
	specs, err := buildSpecs(o, mix)
	if err != nil {
		return err
	}
	// Cumulative weights over the fixed endpoint order make the draw
	// reproducible for a given -seed.
	var names []string
	var cum []float64
	acc := 0.0
	for _, e := range endpointNames {
		if w := mix[e]; w > 0 {
			acc += w
			names = append(names, e)
			cum = append(cum, acc)
		}
	}

	// Open loop: a pacer feeds permits at -rate; workers block on it.
	// Closed loop: the permit channel is nil and workers free-run.
	var pace chan struct{}
	bctx, cancel := context.WithTimeout(ctx, o.duration)
	defer cancel()
	if o.rate > 0 {
		pace = make(chan struct{}, o.workers)
		interval := time.Duration(float64(time.Second) / o.rate)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-bctx.Done():
					return
				case <-tick.C:
					select {
					case pace <- struct{}{}:
					default: // server saturated; drop the permit
					}
				}
			}
		}()
	}

	// No client-level retries: a load test measures the server's raw
	// behavior, so every rejection and error must surface as itself.
	cl := client.New(client.Config{Addr: o.addr, HTTPClient: &http.Client{Timeout: 60 * time.Second}, Tenant: o.tenant})
	results := make([]workerResult, o.workers)
	var wg sync.WaitGroup
	start := time.Now() //mklint:allow determinism — load-test wall clock; throughput denominator
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRand(stats.DeriveSeed(o.seed, uint64(w)))
			res := workerResult{}
			for _, n := range names {
				res[n] = &sample{}
			}
			results[w] = res
			for bctx.Err() == nil {
				if pace != nil {
					select {
					case <-pace:
					case <-bctx.Done():
						return
					}
				}
				draw := rng.Float64()
				name := names[len(names)-1]
				for i, c := range cum {
					if draw < c {
						name = names[i]
						break
					}
				}
				doRequest(bctx, cl, specs[name], res[name])
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Now().Sub(start) //mklint:allow determinism — load-test wall clock; throughput denominator

	doc := buildDoc(o, mix, results, elapsed)
	// The burst context may already be cancelled (SIGINT); snapshot the
	// server's metrics on a fresh short deadline so a partial run still
	// carries them.
	mctx, mcancel := context.WithTimeout(context.Background(), 5*time.Second)
	if snap, err := cl.Metrics(mctx); err == nil {
		doc.Server = snap
	} else {
		fmt.Fprintf(os.Stderr, "mkload: metrics snapshot: %v\n", err)
	}
	mcancel()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if o.out != "" {
		if err := os.WriteFile(o.out, data, 0o644); err != nil {
			return err
		}
	} else {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	}
	if !o.quiet {
		printSummary(os.Stderr, doc, ctx.Err() != nil)
	}
	if doc.Requests == 0 {
		return fmt.Errorf("no request succeeded against %s", o.addr)
	}
	return nil
}

// buildSpecs prepares the per-endpoint request bodies once; every
// request of an endpoint is identical, which is what exercises the
// server's coalescing and analysis cache.
func buildSpecs(o options, mix map[string]float64) (map[string]requestSpec, error) {
	var spec repro.SetSpec
	if o.setPath != "" {
		set, err := repro.LoadSetFile(o.setPath)
		if err != nil {
			return nil, err
		}
		for i := range set.Tasks {
			t := &set.Tasks[i]
			spec.Tasks = append(spec.Tasks, repro.TaskSpec{
				Name:       t.Name,
				PeriodMS:   float64(t.Period) / 1000,
				DeadlineMS: float64(t.Deadline) / 1000,
				WCETMS:     float64(t.WCET) / 1000,
				M:          t.M,
				K:          t.K,
			})
		}
	} else {
		spec = repro.SetSpec{Tasks: []repro.TaskSpec{
			{PeriodMS: 5, DeadlineMS: 4, WCETMS: 3, M: 2, K: 4},
			{PeriodMS: 10, DeadlineMS: 10, WCETMS: 3, M: 1, K: 2},
		}}
	}
	specs := map[string]requestSpec{}
	if mix["simulate"] > 0 {
		req := serve.SimulateRequest{Set: spec, Approach: o.approach, HorizonMS: o.horizon}
		// With -distinct each request draws a fresh seed, so no two
		// requests share a coalescing flight or a store key: every one is
		// real work, which is what builds the queue depth an autoscaler
		// (or a backpressure test) needs to see.
		var seq atomic.Uint64
		specs["simulate"] = requestSpec{name: "simulate", do: func(ctx context.Context, cl *client.Client) (client.Info, error) {
			r := req
			if o.distinct {
				r.Seed = o.seed + seq.Add(1)
			}
			_, info, err := cl.Simulate(ctx, r)
			return info, err
		}}
	}
	if mix["estimate"] > 0 {
		req := serve.EstimateRequest{Set: spec, Approach: o.approach, HorizonMS: o.horizon}
		specs["estimate"] = requestSpec{name: "estimate", do: func(ctx context.Context, cl *client.Client) (client.Info, error) {
			_, _, info, err := cl.Estimate(ctx, req)
			return info, err
		}}
	}
	if mix["analyze"] > 0 {
		set := spec
		specs["analyze"] = requestSpec{name: "analyze", do: func(ctx context.Context, cl *client.Client) (client.Info, error) {
			_, info, err := cl.Analyze(ctx, set)
			return info, err
		}}
	}
	if mix["sweep"] > 0 {
		req := serve.SweepRequest{SetsPerInterval: 1, MaxCandidates: 100, Lo: 0.3, Hi: 0.5}
		specs["sweep"] = requestSpec{name: "sweep", do: func(ctx context.Context, cl *client.Client) (client.Info, error) {
			return cl.SweepStream(ctx, req, nil) // drain the JSONL stream
		}}
	}
	return specs, nil
}

// doRequest issues one request and records its latency or failure.
func doRequest(ctx context.Context, cl *client.Client, spec requestSpec, res *sample) {
	t0 := time.Now() //mklint:allow determinism — per-request latency measurement is the command's purpose
	info, err := spec.do(ctx, cl)
	lat := float64(time.Now().Sub(t0)) / 1e6 //mklint:allow determinism — per-request latency measurement is the command's purpose
	if err != nil {
		var herr *client.HTTPError
		switch {
		case ctx.Err() != nil:
			// The burst ended mid-request; not the server's fault.
		case errors.As(err, &herr) && herr.Status == http.StatusTooManyRequests:
			res.rejected++ // backpressure working, not an error
		default:
			res.errors++
		}
		return
	}
	if info.Coalesced {
		res.coalesced++
	}
	if info.StoreHit {
		res.storeHits++
	}
	res.latencies = append(res.latencies, lat)
}

// latencyDoc summarizes one latency distribution in milliseconds.
type latencyDoc struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// endpointDoc is one endpoint's outcome counts and latency summary.
type endpointDoc struct {
	Requests  int        `json:"requests"`
	Errors    int        `json:"errors"`
	Rejected  int        `json:"rejected"`
	Coalesced int        `json:"coalesced"`
	StoreHits int        `json:"store_hits"`
	Latency   latencyDoc `json:"latency"`
}

// benchDoc is the versioned serving-benchmark artifact.
type benchDoc struct {
	Schema      string                 `json:"schema"` // "mkss-bench/v1"
	Bench       string                 `json:"bench"`  // "serve"
	DurationMS  float64                `json:"duration_ms"`
	Concurrency int                    `json:"concurrency"`
	RatePerSec  float64                `json:"rate_per_sec"` // 0 = closed loop
	Mix         map[string]float64     `json:"mix"`
	Requests    int                    `json:"requests"`
	Errors      int                    `json:"errors"`
	Rejected    int                    `json:"rejected"`
	Coalesced   int                    `json:"coalesced"`
	StoreHits   int                    `json:"store_hits"`
	ReqPerSec   float64                `json:"req_per_sec"`
	Latency     latencyDoc             `json:"latency"`
	Endpoints   map[string]endpointDoc `json:"endpoints"`
	Server      map[string]float64     `json:"server,omitempty"`
}

func summarize(lats []float64) latencyDoc {
	if len(lats) == 0 {
		return latencyDoc{}
	}
	sort.Float64s(lats)
	var sum float64
	for _, l := range lats {
		sum += l
	}
	q := func(p float64) float64 {
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return latencyDoc{
		Count:  len(lats),
		MeanMS: sum / float64(len(lats)),
		P50MS:  q(0.50),
		P95MS:  q(0.95),
		P99MS:  q(0.99),
		MaxMS:  lats[len(lats)-1],
	}
}

func buildDoc(o options, mix map[string]float64, results []workerResult, elapsed time.Duration) benchDoc {
	doc := benchDoc{
		Schema:      "mkss-bench/v1",
		Bench:       "serve",
		DurationMS:  float64(elapsed) / 1e6,
		Concurrency: o.workers,
		RatePerSec:  o.rate,
		Mix:         mix,
		Endpoints:   map[string]endpointDoc{},
	}
	var all []float64
	merged := map[string]*sample{}
	for _, wr := range results {
		for name, s := range wr {
			m, ok := merged[name]
			if !ok {
				m = &sample{}
				merged[name] = m
			}
			m.latencies = append(m.latencies, s.latencies...)
			m.errors += s.errors
			m.rejected += s.rejected
			m.coalesced += s.coalesced
			m.storeHits += s.storeHits
		}
	}
	for name, m := range merged {
		doc.Endpoints[name] = endpointDoc{
			Requests:  len(m.latencies),
			Errors:    m.errors,
			Rejected:  m.rejected,
			Coalesced: m.coalesced,
			StoreHits: m.storeHits,
			Latency:   summarize(append([]float64(nil), m.latencies...)),
		}
		doc.Requests += len(m.latencies)
		doc.Errors += m.errors
		doc.Rejected += m.rejected
		doc.Coalesced += m.coalesced
		doc.StoreHits += m.storeHits
		all = append(all, m.latencies...)
	}
	doc.Latency = summarize(all)
	if elapsed > 0 {
		doc.ReqPerSec = float64(doc.Requests) / (float64(elapsed) / float64(time.Second))
	}
	return doc
}

func printSummary(w io.Writer, doc benchDoc, interrupted bool) {
	note := ""
	if interrupted {
		note = "  (interrupted — partial burst)"
	}
	fmt.Fprintf(w, "mkload: %d ok, %d rejected, %d errors in %.1fs → %.0f req/s%s\n",
		doc.Requests, doc.Rejected, doc.Errors, doc.DurationMS/1000, doc.ReqPerSec, note)
	fmt.Fprintf(w, "        latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms   coalesced %d  store hits %d\n",
		doc.Latency.P50MS, doc.Latency.P95MS, doc.Latency.P99MS, doc.Latency.MaxMS, doc.Coalesced, doc.StoreHits)
	if v, ok := doc.Server["mkservd_coalesced_total"]; ok {
		fmt.Fprintf(w, "        server: coalesced_total %.0f, rejected_total %.0f, requests_total %.0f\n",
			v, doc.Server["mkservd_rejected_total"], doc.Server["mkservd_requests_total"])
	}
}
