// Command mkfleet distributes one Figure-6 utilization sweep over a
// pool of mkservd workers and merges the rows, in interval order, into
// a JSONL stream bit-identical to a single-process batch run — the
// internal/fleet coordinator behind a CLI.
//
// Usage:
//
//	mkfleet -workers 127.0.0.1:8080,127.0.0.1:8081 -scenario both
//	mkfleet -workers $A,$B -checkpoint ckpt.jsonl -out rows.jsonl
//	mkfleet -workers $A,$B -checkpoint ckpt.jsonl -resume   # only missing intervals
//	mkfleet -local -scenario both                           # in-process reference run
//	mkfleet -workers $A -store /var/lib/mkss                # cross-run result cache
//	mkfleet -elastic -min 1 -max 4 -store dir               # self-managed worker pool
//	mkfleet -pool -min 1 -max 3 -pool-addrfile a -pool-status s.json
//
// -store points at a persistent content-addressed result store (shared
// format with mkservd -store): before dispatching, every unit is probed
// against it — a warm store satisfies a whole re-run without touching a
// worker — and completed units are written back, so the cache survives
// worker churn and process restarts.
//
// -elastic replaces -workers with a self-managed pool of in-process
// workers, autoscaled between -min and -max from observed queue depth
// and p95 latency. -pool runs the same autoscaling pool standalone (no
// sweep) until SIGTERM, for driving with external load: -pool-addrfile
// receives the first worker's address, -pool-status a periodically
// rewritten pool-stats JSON.
//
// -local runs the identical sweep in-process (no workers, no HTTP)
// through the same emission path, producing the reference stream a
// distributed run must match byte for byte:
//
//	mkfleet -local -out want.jsonl && mkfleet -workers $A,$B -out got.jsonl
//	cmp want.jsonl got.jsonl
//
// A worker dying mid-unit is retried on another worker; stragglers can
// be hedged (-hedge); completed units are journaled to -checkpoint so an
// interrupted run resumes without recomputing. SIGINT/SIGTERM abort
// cleanly with the checkpoint intact.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/store"
)

type options struct {
	workers    string
	local      bool
	scenario   string
	seed       uint64
	sets       int
	candidates int
	lo, hi     float64
	approaches string

	inflight    int
	unitTimeout time.Duration
	maxFailures int
	hedge       time.Duration
	probe       time.Duration
	probeMax    time.Duration
	grace       time.Duration

	checkpoint string
	resume     bool
	out        string
	bench      string
	quiet      bool

	storeDir string

	elastic        bool
	pool           bool
	min, max       int
	poolAddrfile   string
	poolStatus     string
	workerInflight int
	workerQueue    int
	scaleInterval  time.Duration
	scaleCooldown  time.Duration
	scaleQueue     int64
}

func main() {
	var o options
	flag.StringVar(&o.workers, "workers", "", "comma-separated mkservd addresses (host:port or http://...)")
	flag.BoolVar(&o.local, "local", false, "run the sweep in-process instead (reference stream for byte-identity checks)")
	flag.StringVar(&o.scenario, "scenario", "none", "fault scenario: none|transient|permanent|both")
	flag.Uint64Var(&o.seed, "seed", 2020, "master seed")
	flag.IntVar(&o.sets, "sets", 3, "task sets per utilization interval")
	flag.IntVar(&o.candidates, "candidates", 500, "max candidate sets per interval")
	flag.Float64Var(&o.lo, "lo", 0.1, "sweep start utilization")
	flag.Float64Var(&o.hi, "hi", 1.0, "sweep end utilization")
	flag.StringVar(&o.approaches, "approaches", "st,dp,selective", "comma-separated approaches")
	flag.IntVar(&o.inflight, "inflight", 2, "max units in flight per worker")
	flag.DurationVar(&o.unitTimeout, "unit-timeout", 2*time.Minute, "per-unit attempt timeout")
	flag.IntVar(&o.maxFailures, "max-failures", 6, "per-unit failure budget before the sweep aborts")
	flag.DurationVar(&o.hedge, "hedge", 0, "duplicate a unit in flight this long onto a second worker (0 = off)")
	flag.DurationVar(&o.probe, "probe", 250*time.Millisecond, "first re-probe delay for a down worker (doubles per failure)")
	flag.DurationVar(&o.probeMax, "probe-max", 5*time.Second, "probe backoff cap")
	flag.DurationVar(&o.grace, "grace", 15*time.Second, "how long all workers may be down before the sweep fails")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "journal completed units to this JSONL file")
	flag.BoolVar(&o.resume, "resume", false, "load the checkpoint and run only the missing intervals")
	flag.StringVar(&o.out, "out", "", "write the merged JSONL stream here (default: stdout)")
	flag.StringVar(&o.bench, "bench", "", "write an mkss-bench/v1 fleet summary JSON here")
	flag.BoolVar(&o.quiet, "q", false, "suppress the human-readable summary")
	flag.StringVar(&o.storeDir, "store", "", "persistent result store directory (shared format with mkservd -store)")
	flag.BoolVar(&o.elastic, "elastic", false, "autoscale an in-process worker pool instead of using -workers")
	flag.BoolVar(&o.pool, "pool", false, "run a standalone autoscaling worker pool (no sweep) until SIGTERM")
	flag.IntVar(&o.min, "min", 1, "elastic pool lower bound")
	flag.IntVar(&o.max, "max", 4, "elastic pool upper bound")
	flag.StringVar(&o.poolAddrfile, "pool-addrfile", "", "with -pool: write the first worker's address to this file")
	flag.StringVar(&o.poolStatus, "pool-status", "", "with -pool: periodically rewrite this pool-stats JSON file")
	flag.IntVar(&o.workerInflight, "worker-inflight", 0, "elastic worker execution slots (0 = serve default)")
	flag.IntVar(&o.workerQueue, "worker-queue", 0, "elastic worker queue depth (0 = serve default)")
	flag.DurationVar(&o.scaleInterval, "scale-interval", 0, "autoscaler control-loop cadence (0 = default 2s)")
	flag.DurationVar(&o.scaleCooldown, "scale-cooldown", 0, "minimum gap between scaling operations (0 = default 30s)")
	flag.Int64Var(&o.scaleQueue, "scale-queue", 0, "queued-jobs threshold that counts a tick as busy (0 = default 4)")
	flag.Parse()
	// SIGTERM behaves like SIGINT: abort the sweep, keep the checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintf(os.Stderr, "mkfleet: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	if o.pool {
		return runPool(ctx, o)
	}
	spec := fleet.SweepSpec{
		Scenario:        o.scenario,
		Seed:            o.seed,
		SetsPerInterval: o.sets,
		MaxCandidates:   o.candidates,
		Lo:              o.lo,
		Hi:              o.hi,
		Approaches:      splitList(o.approaches),
	}

	var w *bufio.Writer
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close() //mklint:allow errdrop — the deferred close duplicates the explicit flush-and-close below
		w = bufio.NewWriter(f)
	} else {
		w = bufio.NewWriter(os.Stdout)
	}
	// Flush per line: rows arrive at interval granularity (a handful per
	// second at most), and a line-buffered stream lets consumers tail
	// progress and scripts react to rows while the sweep is still running.
	emit := func(line []byte) error {
		if _, err := w.Write(line); err != nil {
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
		return w.Flush()
	}

	var runErr error
	if o.local {
		runErr = runLocal(ctx, spec, emit)
	} else {
		runErr = runFleet(ctx, o, spec, emit)
	}
	if err := w.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// openStore opens the -store directory, if configured.
func openStore(o options) (*store.Store, error) {
	if o.storeDir == "" {
		return nil, nil
	}
	st, err := store.Open(o.storeDir, store.Options{Log: os.Stderr})
	if err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	return st, nil
}

// localSpawn builds the elastic pool's worker factory: each worker is an
// in-process mkservd on an ephemeral loopback port, tied to the pool's
// context. All workers share the one store handle, so any worker's
// computation warms every other worker.
func localSpawn(o options, st *store.Store) fleet.SpawnFunc {
	return func(ctx context.Context) (*fleet.WorkerHandle, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		s := serve.NewServer(serve.Config{
			MaxInFlight: o.workerInflight,
			QueueDepth:  o.workerQueue,
			Store:       st,
			Log:         io.Discard,
		})
		addr := l.Addr().String()
		wctx, cancel := context.WithCancel(ctx)
		done := make(chan struct{})
		go func() {
			defer close(done)
			if err := s.Run(wctx, l); err != nil {
				fmt.Fprintf(os.Stderr, "mkfleet: worker %s: %v\n", addr, err)
			}
		}()
		return &fleet.WorkerHandle{
			Addr: addr,
			Stop: func() { cancel(); <-done },
		}, nil
	}
}

// newPool builds (but does not start) the elastic pool from the flags.
func newPool(o options, st *store.Store) (*fleet.Pool, error) {
	return fleet.NewPool(fleet.PoolConfig{
		Min:          o.min,
		Max:          o.max,
		Spawn:        localSpawn(o, st),
		Interval:     o.scaleInterval,
		Cooldown:     o.scaleCooldown,
		ScaleUpQueue: o.scaleQueue,
		Log:          os.Stderr,
	})
}

// runFleet drives the coordinator against the -workers pool, or an
// elastic in-process pool with -elastic.
func runFleet(ctx context.Context, o options, spec fleet.SweepSpec, emit func([]byte) error) error {
	st, err := openStore(o)
	if err != nil {
		return err
	}
	if st != nil {
		defer func() {
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "mkfleet: close store: %v\n", cerr)
			}
		}()
	}
	workers := splitList(o.workers)
	cfg := fleet.Config{
		Workers:           workers,
		Spec:              spec,
		PerWorkerInFlight: o.inflight,
		UnitTimeout:       o.unitTimeout,
		MaxUnitFailures:   o.maxFailures,
		Hedge:             o.hedge,
		ProbeBackoff:      o.probe,
		ProbeMax:          o.probeMax,
		AllDownGrace:      o.grace,
		CheckpointPath:    o.checkpoint,
		Resume:            o.resume,
		Store:             st,
		Log:               os.Stderr,
	}
	if o.elastic {
		pool, perr := newPool(o, st)
		if perr != nil {
			return perr
		}
		if perr := pool.Start(ctx); perr != nil {
			return perr
		}
		defer pool.Stop()
		cfg.Workers = nil
		cfg.Pool = pool
	} else if len(workers) == 0 {
		return fmt.Errorf("no workers: pass -workers host:port[,host:port...], -elastic, or -local")
	}
	c, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	sum, runErr := c.Run(ctx, emit)
	if sum != nil {
		if o.bench != "" {
			if err := writeBench(o.bench, c.Spec(), len(sum.Workers), sum); err != nil {
				if runErr == nil {
					runErr = err
				} else {
					fmt.Fprintf(os.Stderr, "mkfleet: write bench: %v\n", err)
				}
			}
		}
		if !o.quiet {
			printSummary(os.Stderr, sum, runErr)
		}
	}
	return runErr
}

// runPool runs the autoscaling pool standalone: workers come up, the
// first one's address lands in -pool-addrfile for external load
// generators, and -pool-status tracks the pool's shape until SIGTERM.
func runPool(ctx context.Context, o options) error {
	st, err := openStore(o)
	if err != nil {
		return err
	}
	if st != nil {
		defer func() {
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "mkfleet: close store: %v\n", cerr)
			}
		}()
	}
	pool, err := newPool(o, st)
	if err != nil {
		return err
	}
	if err := pool.Start(ctx); err != nil {
		return err
	}
	defer pool.Stop()
	addrs := pool.Addrs()
	fmt.Fprintf(os.Stderr, "mkfleet: pool up: %d workers (min %d, max %d), first at %s\n",
		len(addrs), o.min, o.max, addrs[0])
	if o.poolAddrfile != "" {
		if err := os.WriteFile(o.poolAddrfile, []byte(addrs[0]), 0o644); err != nil {
			return err
		}
	}
	writeStatus := func() {
		if o.poolStatus == "" {
			return
		}
		if err := writeStatusFile(o.poolStatus, pool.Stats()); err != nil {
			fmt.Fprintf(os.Stderr, "mkfleet: write pool status: %v\n", err)
		}
	}
	writeStatus()
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			writeStatus()
			fmt.Fprintf(os.Stderr, "mkfleet: pool shutting down\n")
			return nil
		case <-ticker.C:
			writeStatus()
		}
	}
}

// writeStatusFile atomically replaces path with the stats JSON, so a
// polling reader never sees a torn document.
func writeStatusFile(path string, st fleet.PoolStats) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runLocal computes the reference stream in-process: one batch sweep
// over the full range, emitted through the same serve.RowLine path the
// workers use — the byte-identity baseline for a distributed run.
func runLocal(ctx context.Context, spec fleet.SweepSpec, emit func([]byte) error) error {
	sp, err := spec.Normalized()
	if err != nil {
		return err
	}
	sc, err := repro.ParseScenario(sp.Scenario)
	if err != nil {
		return err
	}
	as := make([]repro.Approach, len(sp.Approaches))
	for i, n := range sp.Approaches {
		if as[i], err = repro.ParseApproach(n); err != nil {
			return err
		}
	}
	intervals := sp.Intervals()
	start := time.Now() //mklint:allow determinism — CLI wall clock for the done line's elapsed_ms
	if err := emit(serve.MarshalLine(serve.SweepLine{
		Type: "start", Schema: serve.SweepSchema,
		Scenario: sp.Scenario, Seed: sp.Seed, Intervals: len(intervals),
	})); err != nil {
		return err
	}
	cfg := repro.DefaultSweepConfig(sc)
	cfg.Seed = sp.Seed
	cfg.SetsPerInterval = sp.SetsPerInterval
	cfg.MaxCandidates = sp.MaxCandidates
	cfg.Approaches = as
	cfg.Intervals = intervals
	rep, err := repro.SweepContext(ctx, cfg)
	if err != nil {
		return err
	}
	for _, row := range rep.Rows {
		if err := emit(serve.MarshalLine(serve.RowLine(rep.Approaches, row))); err != nil {
			return err
		}
	}
	elapsed := time.Now().Sub(start) //mklint:allow determinism — CLI wall clock for the done line's elapsed_ms
	return emit(serve.MarshalLine(serve.SweepLine{
		Type: "done", Intervals: len(intervals), ElapsedMS: float64(elapsed) / 1e6,
	}))
}

// benchDoc is the versioned fleet-benchmark artifact.
type benchDoc struct {
	Schema  string          `json:"schema"` // "mkss-bench/v1"
	Bench   string          `json:"bench"`  // "fleet"
	Workers int             `json:"workers"`
	Spec    fleet.SweepSpec `json:"spec"`
	Summary *fleet.Summary  `json:"summary"`
}

func writeBench(path string, spec fleet.SweepSpec, workers int, sum *fleet.Summary) error {
	data, err := json.MarshalIndent(benchDoc{
		Schema: "mkss-bench/v1", Bench: "fleet",
		Workers: workers, Spec: spec, Summary: sum,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printSummary(w io.Writer, sum *fleet.Summary, runErr error) {
	status := "complete"
	if runErr != nil {
		status = "FAILED"
	}
	fmt.Fprintf(w, "mkfleet: sweep %s: %d units (%d from checkpoint, %d from store), %d dispatched, %d retried, %d hedged, %d cancelled, %d failed in %.0f ms\n",
		status, sum.Units, sum.FromCheckpoint, sum.FromStore, sum.Dispatched, sum.Retried, sum.Hedged, sum.Cancelled, sum.Failed, sum.ElapsedMS)
	for _, ws := range sum.Workers {
		fmt.Fprintf(w, "         %-24s dispatched %-3d completed %-3d failed %-3d won %-3d markdowns %-3d probes %d\n",
			ws.Addr, ws.Dispatched, ws.Completed, ws.Failed, ws.Won, ws.Markdowns, ws.Probes)
	}
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
