// Command mktrace reproduces the paper's worked examples (Figures 1–5)
// as ASCII Gantt charts with exact energy accounting.
//
// Usage:
//
//	mktrace -fig 1    # Fig. 1: MKSS-DP on τ1=(5,4,3,2,4), τ2=(10,10,3,1,2)
//	mktrace -fig 2    # Fig. 2: dynamic patterns (selective) on the same set
//	mktrace -fig 3    # Fig. 3: greedy on τ1=(5,2.5,2,2,4), τ2=(4,4,2,2,4)
//	mktrace -fig 4    # Fig. 4: selective on the Fig. 3 set
//	mktrace -fig 5    # Fig. 5: backup release postponement analysis
//	mktrace -all      # everything
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro"
)

// runner is the shared session: Figures 1/2 and 3/4 reuse the same task
// sets, so the offline analyses are derived once per set. The figures'
// output is unaffected — memoization only skips recomputing pure
// functions of the set.
var runner = repro.NewRunner(repro.RunnerConfig{})

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (1-5)")
	all := flag.Bool("all", false, "reproduce every figure")
	flag.Parse()

	if !*all && (*fig < 1 || *fig > 5) {
		fmt.Fprintln(os.Stderr, "usage: mktrace -fig N   (N in 1..5), or mktrace -all")
		os.Exit(2)
	}
	figs := []int{*fig}
	if *all {
		figs = []int{1, 2, 3, 4, 5}
	}
	for _, f := range figs {
		if err := render(f); err != nil {
			fmt.Fprintf(os.Stderr, "mktrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func motivationSet() *repro.Set {
	return repro.NewSet(repro.NewTask(5, 4, 3, 2, 4), repro.NewTask(10, 10, 3, 1, 2))
}

func selectiveSet() *repro.Set {
	return repro.NewSet(repro.NewTask(5, 2.5, 2, 2, 4), repro.NewTask(4, 4, 2, 2, 4))
}

func render(fig int) error {
	switch fig {
	case 1:
		return simulate("Figure 1 — preference-oriented dual-priority (MKSS-DP), paper energy: 15 units in [0,20]",
			motivationSet(), repro.DP, 20)
	case 2:
		return simulate("Figure 2 — dynamic patterns (MKSS-selective), paper energy: 12 units in [0,20]",
			motivationSet(), repro.Selective, 20)
	case 3:
		return simulate("Figure 3 — greedy optional execution, paper energy: 20 units in [0,25]",
			selectiveSet(), repro.Greedy, 25)
	case 4:
		return simulate("Figure 4 — selective optional execution, paper energy: 14 units in [0,25]",
			selectiveSet(), repro.Selective, 25)
	case 5:
		return postponement()
	}
	return fmt.Errorf("unknown figure %d", fig)
}

func simulate(title string, s *repro.Set, a repro.Approach, horizonMS float64) error {
	fmt.Println(title)
	fmt.Println(s)
	res, err := runner.Simulate(context.Background(), s, a, repro.RunConfig{HorizonMS: horizonMS, RecordTrace: true})
	if err != nil {
		return err
	}
	fmt.Print(repro.GanttChart(res))
	fmt.Print(repro.TraceSummary(res))
	fmt.Printf("active energy: %g units   (m,k) satisfied: %v\n",
		res.ActiveEnergy(), res.MKSatisfied())
	if problems := repro.VerifyTrace(s, res); len(problems) > 0 {
		return fmt.Errorf("trace verification failed: %v", problems)
	}
	return nil
}

func postponement() error {
	fmt.Println("Figure 5 — backup release postponement (Defs. 2–5): τ1=(10,10,3,2,3), τ2=(15,15,8,1,2)")
	s := repro.NewSet(repro.NewTask(10, 10, 3, 2, 3), repro.NewTask(15, 15, 8, 1, 2))
	fmt.Println(s)
	ys := repro.PromotionTimes(s)
	thetas, err := repro.PostponementIntervals(s)
	if err != nil {
		return err
	}
	for i := range thetas {
		fmt.Printf("tau%d: promotion Y=%v, postponement theta=%v (paper: theta1=7ms, theta2=4ms)\n",
			i+1, ys[i], thetas[i])
	}
	return nil
}
