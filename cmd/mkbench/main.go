// Command mkbench regenerates the paper's evaluation (Figure 6): the
// normalized-energy-vs-(m,k)-utilization series for MKSS-ST, MKSS-DP and
// MKSS-selective under the three fault scenarios.
//
// Usage:
//
//	mkbench -fig 6a                  # no faults      (paper Fig. 6a)
//	mkbench -fig 6b                  # permanent      (paper Fig. 6b)
//	mkbench -fig 6c                  # perm+transient (paper Fig. 6c)
//	mkbench -fig all -sets 20 -csv out/   # everything, CSVs for plotting
//	mkbench -fig 6a -greedy          # include the §III greedy straw-man
//	mkbench -fig 6a -json            # also write BENCH_6a.json
//	mkbench -fig 6a -sets 3 -json -jsonout BENCH_ci.json   # CI smoke
//
// -json emits the versioned machine-readable document (schema
// "mkss-bench/v1"): the per-interval normalized-energy series plus the
// aggregated observability counters and the sweep's wall-clock time,
// suitable for tracking across commits. Reducing -sets and -candidates
// trades fidelity for speed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "6a | 6b | 6c | all")
		sets       = flag.Int("sets", 20, "schedulable sets per utilization interval")
		candidates = flag.Int("candidates", 5000, "max candidates per interval")
		seed       = flag.Uint64("seed", 2020, "master seed")
		csvDir     = flag.String("csv", "", "directory to write CSV series into (optional)")
		jsonOut    = flag.Bool("json", false, "write the versioned BENCH_<fig>.json document per figure")
		jsonPath   = flag.String("jsonout", "", "override the BENCH JSON path (single figure only; implies -json)")
		withGreedy = flag.Bool("greedy", false, "also run the §III greedy straw-man")
		loU        = flag.Float64("lo", 0.1, "lowest utilization bound")
		hiU        = flag.Float64("hi", 1.0, "highest utilization bound")
		quiet      = flag.Bool("q", false, "suppress per-interval progress")
		noCache    = flag.Bool("nocache", false, "disable the offline-analysis cache (benchmarking the cache itself)")
		cacheStats = flag.Bool("cachestats", false, "print analysis-cache hit/miss statistics after each figure")
	)
	flag.Parse()

	// One session for all figures: the same seed regenerates identical
	// task sets per figure, so the second and third sweeps hit the
	// offline-analysis cache instead of re-deriving everything. SIGINT or
	// SIGTERM cancels gracefully, printing the partial table.
	runner := repro.NewRunner(repro.RunnerConfig{CacheEntries: cacheCap(*noCache)})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scenarios := map[string]fault.Scenario{
		"6a": fault.NoFault,
		"6b": fault.PermanentOnly,
		"6c": fault.PermanentAndTransient,
	}
	var order []string
	switch *fig {
	case "all":
		order = []string{"6a", "6b", "6c"}
	case "6a", "6b", "6c":
		order = []string{*fig}
	default:
		fmt.Fprintln(os.Stderr, "usage: mkbench -fig 6a|6b|6c|all")
		os.Exit(2)
	}
	if *jsonPath != "" {
		*jsonOut = true
		if len(order) > 1 {
			fmt.Fprintln(os.Stderr, "mkbench: -jsonout needs a single figure (use -fig 6a|6b|6c)")
			os.Exit(2)
		}
	}

	for _, name := range order {
		sc := scenarios[name]
		cfg := repro.DefaultSweepConfig(sc)
		cfg.Seed = *seed
		cfg.SetsPerInterval = *sets
		cfg.MaxCandidates = *candidates
		cfg.Intervals = workload.Intervals(*loU, *hiU, 0.1)
		if *withGreedy {
			cfg.Approaches = []core.Approach{core.ST, core.DP, core.Greedy, core.Selective}
		}
		if !*quiet {
			cfg.Progress = os.Stderr
			fmt.Fprintf(os.Stderr, "--- Figure %s (%s): %d sets/interval, %d max candidates ---\n",
				name, sc, *sets, *candidates)
		}
		t0 := time.Now() //mklint:allow determinism — wall-clock sweep timer reported in BENCH JSON
		rep, err := runner.Sweep(ctx, cfg)
		interrupted := err != nil && errors.Is(err, context.Canceled)
		if err != nil && !interrupted {
			fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(t0) //mklint:allow determinism — wall-clock sweep timer reported in BENCH JSON
		if interrupted {
			// Partial results: print whatever intervals completed and
			// skip the machine-readable outputs (they would be
			// indistinguishable from a full run).
			if rep != nil && len(rep.Rows) > 0 {
				fmt.Print(rep.Table())
			}
			fmt.Printf("(figure %s interrupted after %v — partial results above: %d of %d intervals; JSON/CSV outputs skipped)\n",
				name, elapsed.Round(time.Millisecond), rowCount(rep), len(cfg.Intervals))
			os.Exit(1)
		}
		fmt.Print(rep.Table())
		fmt.Printf("(figure %s finished in %v)\n\n", name, elapsed.Round(time.Millisecond))
		if *cacheStats {
			st := runner.CacheStats()
			fmt.Fprintf(os.Stderr, "analysis cache after figure %s: %d hits, %d misses, %d evictions, %d/%d entries\n",
				name, st.Hits, st.Misses, st.Evictions, st.Entries, st.Capacity)
		}
		if *jsonOut {
			path := *jsonPath
			if path == "" {
				dir := *csvDir
				if dir == "" {
					dir = "."
				} else if err := os.MkdirAll(dir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
					os.Exit(1)
				}
				path = filepath.Join(dir, "BENCH_"+name+".json")
			}
			data, err := rep.BenchJSON(name, cfg, elapsed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, "fig"+name+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
}

// cacheCap maps the -nocache flag onto RunnerConfig.CacheEntries.
func cacheCap(noCache bool) int {
	if noCache {
		return -1
	}
	return 0
}

func rowCount(rep *repro.Report) int {
	if rep == nil {
		return 0
	}
	return len(rep.Rows)
}
