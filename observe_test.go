// Observability-layer tests at the facade level: counter invariants for
// every approach under every fault scenario, and cross-checks that the
// structured event stream agrees with the counters.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestCountersInvariantsAllApproaches runs every approach under every
// scenario on the paper's motivation set and checks the structural
// identities of the counters (including busy+idle+sleep+dead = horizon
// on each processor).
func TestCountersInvariantsAllApproaches(t *testing.T) {
	for _, a := range Approaches() {
		for _, sc := range []Scenario{NoFault, PermanentOnly, PermanentAndTransient} {
			a, sc := a, sc
			t.Run(fmt.Sprintf("%v/%v", a, sc), func(t *testing.T) {
				s := NewSet(NewTask(5, 4, 3, 2, 4), NewTask(10, 10, 3, 1, 2))
				res, err := Simulate(s, a, RunConfig{HorizonMS: 200, Scenario: sc, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				if problems := CheckCounters(res); len(problems) > 0 {
					t.Errorf("counter invariants violated:\n%s", strings.Join(problems, "\n"))
				}
				if res.Counters.Released == 0 {
					t.Error("no releases counted")
				}
				if res.Counters.Dispatches == 0 {
					t.Error("no dispatches counted")
				}
			})
		}
	}
}

// TestEventStreamMatchesCounters attaches a collector sink and verifies
// the event stream is complete: every counted transition appears as an
// event and vice versa.
func TestEventStreamMatchesCounters(t *testing.T) {
	sink := NewEventCollector()
	s := NewSet(NewTask(5, 4, 3, 2, 4), NewTask(10, 10, 3, 1, 2))
	res, err := Simulate(s, Selective, RunConfig{HorizonMS: 100, Scenario: PermanentOnly, Seed: 3, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	checks := []struct {
		kind metrics.EventKind
		want int
	}{
		{metrics.EvRelease, c.Released},
		{metrics.EvSkip, c.OptionalSkipped},
		{metrics.EvDispatch, c.Dispatches},
		{metrics.EvPreempt, c.Preemptions},
		{metrics.EvComplete, c.Completions},
		{metrics.EvSettle, c.Effective + c.Misses},
		{metrics.EvSleep, c.SleepEntries},
		{metrics.EvWake, c.Wakeups},
		{metrics.EvPermanentFault, c.PermanentFaults},
		{metrics.EvCancel, c.BackupsCanceledClean + c.BackupsCanceledPartial}, // only backups are cancelled in this setup
	}
	for _, ck := range checks {
		if got := sink.Count(ck.kind); got != ck.want {
			t.Errorf("%v events = %d, counters say %d", ck.kind, got, ck.want)
		}
	}
	// Events must be time-ordered.
	for i := 1; i < len(sink.Events); i++ {
		if sink.Events[i].T < sink.Events[i-1].T {
			t.Fatalf("event %d at %v before predecessor at %v", i, sink.Events[i].T, sink.Events[i-1].T)
		}
	}
}

// TestJSONLSinkEndToEnd simulates into a JSONL sink and re-parses every
// line, pinning the on-disk schema.
func TestJSONLSinkEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	s := NewSet(NewTask(5, 4, 3, 2, 4), NewTask(10, 10, 3, 1, 2))
	if _, err := Simulate(s, DP, RunConfig{HorizonMS: 40, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously few events: %d", len(lines))
	}
	kinds := map[string]int{}
	for i, l := range lines {
		var v struct {
			T    *int64 `json:"t_us"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, l)
		}
		if v.T == nil || v.Kind == "" {
			t.Fatalf("line %d missing t_us/kind: %s", i, l)
		}
		kinds[v.Kind]++
	}
	for _, want := range []string{"release", "admit", "dispatch", "complete", "settle", "cancel", "sleep"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in stream (kinds: %v)", want, kinds)
		}
	}
}

// TestBackupRecoveryCounted forces a main-copy transient fault and checks
// the rescue is attributed to the backup.
func TestBackupRecoveryCounted(t *testing.T) {
	s := NewSet(NewTask(5, 4, 3, 2, 4), NewTask(10, 10, 3, 1, 2))
	// A huge transient rate makes main-copy faults near-certain; the ST
	// backups then carry the jobs.
	res, err := Simulate(s, ST, RunConfig{HorizonMS: 200, Scenario: PermanentAndTransient, Seed: 11, TransientRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TransientFaults == 0 {
		t.Fatal("expected transient faults at rate 0.5/ms")
	}
	if res.Counters.BackupRecoveries == 0 {
		t.Error("transient faults struck but no backup recovery was counted")
	}
	if problems := CheckCounters(res); len(problems) > 0 {
		t.Errorf("counter invariants violated:\n%s", strings.Join(problems, "\n"))
	}
}
