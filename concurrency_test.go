// Tests for the concurrent session behavior the serving layer builds
// on: single cache admission under a thundering herd, and the stdin
// entry point of LoadSetFile shared by mkservd, mksim and mkload.
package repro

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestAnalysisCacheSingleAdmission races 64 goroutines, each with its
// own fingerprint-identical Set, through one Runner. The analysis cache
// must admit exactly one computation — one miss, 63 hits, one entry —
// and every run must produce identical results.
func TestAnalysisCacheSingleAdmission(t *testing.T) {
	r := NewRunner(RunnerConfig{})
	const n = 64
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		results [n]*Result
		errs    [n]error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine constructs its own Set: identical content,
			// distinct pointers, same fingerprint — the cache key dedupes
			// on content, not identity.
			set := NewSet(NewTask(5, 4, 3, 2, 4), NewTask(10, 10, 3, 1, 2))
			<-start
			results[i], errs[i] = r.Simulate(context.Background(), set, Selective, RunConfig{HorizonMS: 20})
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i].ActiveEnergy() != results[0].ActiveEnergy() ||
			results[i].TotalEnergy() != results[0].TotalEnergy() {
			t.Fatalf("goroutine %d diverged: active %v total %v, want %v / %v",
				i, results[i].ActiveEnergy(), results[i].TotalEnergy(),
				results[0].ActiveEnergy(), results[0].TotalEnergy())
		}
	}
	st := r.CacheStats()
	if st.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 admission", st.Misses)
	}
	if st.Hits != n-1 {
		t.Errorf("cache hits = %d, want %d", st.Hits, n-1)
	}
	if st.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", st.Entries)
	}
}

// TestLoadSetFileStdin checks the "-" path reads the spec from standard
// input, sharing the validation of the file path.
func TestLoadSetFileStdin(t *testing.T) {
	const spec = `{"tasks":[
		{"period_ms":5,"deadline_ms":4,"wcet_ms":3,"m":2,"k":4},
		{"period_ms":10,"deadline_ms":10,"wcet_ms":3,"m":1,"k":2}]}`
	f, err := os.CreateTemp(t.TempDir(), "set*.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	orig := os.Stdin
	os.Stdin = f
	defer func() {
		os.Stdin = orig
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}()
	s, err := LoadSetFile("-")
	if err != nil {
		t.Fatalf("LoadSetFile(-): %v", err)
	}
	want, err := LoadSet(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks) != len(want.Tasks) {
		t.Fatalf("stdin set has %d tasks, want %d", len(s.Tasks), len(want.Tasks))
	}
	for i := range s.Tasks {
		if s.Tasks[i] != want.Tasks[i] {
			t.Errorf("task %d = %+v, want %+v", i, s.Tasks[i], want.Tasks[i])
		}
	}
}
