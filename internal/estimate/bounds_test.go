package estimate

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"testing"

	"repro"
)

// -update-bounds regenerates results/twin_error_bounds.json from the
// corpus measured here (see EXPERIMENTS.md for the recipe). The corpus
// is fully deterministic, so the committed bounds reproduce bit-for-bit
// on every machine; a model change that moves an error past its bound
// fails this test until the bounds are deliberately regenerated and the
// change reviewed.
var updateBounds = flag.Bool("update-bounds", false,
	"rewrite results/twin_error_bounds.json from the measured corpus errors")

const boundsPath = "../../results/twin_error_bounds.json"

// The committed corpus: the reduced Figure-6 workload (the same
// utilization band the CI benchmarks sweep) across all three fault
// scenarios of the paper's Figure 6. Changing any of these constants
// invalidates the committed bounds — regenerate them in the same change.
const (
	corpusLoUtil   = 0.2
	corpusHiUtil   = 0.7
	corpusStep     = 0.1
	corpusSets     = 3    // sets per utilization interval
	corpusGenSeed  = 2020 // + interval index → workload generator seed
	corpusRunSeedK = 1000 // run seed = K*interval + set index
)

func corpusScenarios() []repro.Scenario {
	return []repro.Scenario{repro.NoFault, repro.PermanentOnly, repro.PermanentAndTransient}
}

func corpusApproaches() []repro.Approach {
	return []repro.Approach{repro.ST, repro.DP, repro.Selective}
}

// boundsDoc is the committed artifact: per-scenario, per-approach upper
// bounds on the twin's relative energy error over the corpus.
type boundsDoc struct {
	Schema string `json:"schema"` // "mkss-twin-bounds/v1"
	Corpus struct {
		LoUtil          float64  `json:"lo_util"`
		HiUtil          float64  `json:"hi_util"`
		Step            float64  `json:"step"`
		SetsPerInterval int      `json:"sets_per_interval"`
		GenSeed         uint64   `json:"gen_seed"`
		RunSeedStride   uint64   `json:"run_seed_stride"`
		Scenarios       []string `json:"scenarios"`
		Approaches      []string `json:"approaches"`
	} `json:"corpus"`
	// Bounds[scenario][policy] bounds the relative |twin−sim|/sim error.
	Bounds map[string]map[string]errBound `json:"bounds"`
}

type errBound struct {
	ActiveRelErr float64 `json:"active_rel_err"`
	TotalRelErr  float64 `json:"total_rel_err"`
}

// TestTwinErrorBounds cross-validates the analytical twin against the
// simulator over the full corpus and enforces the committed bounds:
//   - schedulability verdicts match the public Theorem-1 test AND the
//     sim backend exactly (they are not estimates);
//   - the (m,k) prediction matches the simulated outcome on every run;
//   - per-scenario, per-approach relative energy error stays within
//     results/twin_error_bounds.json.
func TestTwinErrorBounds(t *testing.T) {
	r := repro.NewRunner(repro.RunnerConfig{})
	tw, err := New("twin", r)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New("sim", r)
	if err != nil {
		t.Fatal(err)
	}

	measured := map[string]map[string]errBound{}
	runs := 0
	for i := 0; math.Abs(corpusLoUtil+float64(i)*corpusStep-corpusHiUtil) > 1e-9; i++ {
		lo := corpusLoUtil + float64(i)*corpusStep
		sets := repro.GenerateTaskSets(lo, lo+corpusStep, corpusSets, corpusGenSeed+uint64(i))
		if len(sets) == 0 {
			t.Fatalf("interval [%.1f,%.1f): generator produced no sets", lo, lo+corpusStep)
		}
		for si, set := range sets {
			for _, a := range corpusApproaches() {
				for _, sc := range corpusScenarios() {
					runs++
					req := Request{
						Set: set, Approach: a, Scenario: sc,
						Seed: corpusRunSeedK*uint64(i) + uint64(si),
					}
					at, err := tw.Estimate(context.Background(), req)
					if err != nil {
						t.Fatalf("%v/%v twin: %v", a, sc, err)
					}
					as, err := sm.Estimate(context.Background(), req)
					if err != nil {
						t.Fatalf("%v/%v sim: %v", a, sc, err)
					}
					if want := repro.RPatternSchedulable(set); at.Schedulable != want || as.Schedulable != want {
						t.Errorf("%v/%v interval %d set %d: verdicts twin=%v sim=%v public=%v",
							a, sc, i, si, at.Schedulable, as.Schedulable, want)
					}
					if at.MKPredicted != as.MKPredicted {
						t.Errorf("%v/%v interval %d set %d: (m,k) predicted %v, simulated %v",
							a, sc, i, si, at.MKPredicted, as.MKPredicted)
					}
					if as.ActiveEnergy <= 0 || as.TotalEnergy <= 0 {
						t.Fatalf("%v/%v interval %d set %d: degenerate sim energy %v/%v",
							a, sc, i, si, as.ActiveEnergy, as.TotalEnergy)
					}
					m := measured[sc.String()]
					if m == nil {
						m = map[string]errBound{}
						measured[sc.String()] = m
					}
					b := m[at.Policy]
					if e := math.Abs(at.ActiveEnergy-as.ActiveEnergy) / as.ActiveEnergy; e > b.ActiveRelErr {
						b.ActiveRelErr = e
					}
					if e := math.Abs(at.TotalEnergy-as.TotalEnergy) / as.TotalEnergy; e > b.TotalRelErr {
						b.TotalRelErr = e
					}
					m[at.Policy] = b
				}
			}
		}
	}
	t.Logf("corpus: %d twin/sim run pairs", runs)

	if *updateBounds {
		writeBounds(t, measured)
		return
	}

	data, err := os.ReadFile(boundsPath)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/estimate -run TestTwinErrorBounds -update-bounds)", err)
	}
	var committed boundsDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&committed); err != nil {
		t.Fatal(err)
	}
	if committed.Schema != "mkss-twin-bounds/v1" {
		t.Fatalf("bounds schema %q", committed.Schema)
	}
	if committed.Corpus.GenSeed != corpusGenSeed || committed.Corpus.SetsPerInterval != corpusSets ||
		committed.Corpus.LoUtil != corpusLoUtil || committed.Corpus.HiUtil != corpusHiUtil {
		t.Fatalf("committed corpus %+v does not match the test's constants — regenerate the bounds", committed.Corpus)
	}
	for sc, byPolicy := range measured {
		for policy, m := range byPolicy {
			b, ok := committed.Bounds[sc][policy]
			if !ok {
				t.Errorf("%s/%s: no committed bound — regenerate results/twin_error_bounds.json", sc, policy)
				continue
			}
			if m.ActiveRelErr > b.ActiveRelErr {
				t.Errorf("%s/%s: active energy error %.4f exceeds committed bound %.4f",
					sc, policy, m.ActiveRelErr, b.ActiveRelErr)
			}
			if m.TotalRelErr > b.TotalRelErr {
				t.Errorf("%s/%s: total energy error %.4f exceeds committed bound %.4f",
					sc, policy, m.TotalRelErr, b.TotalRelErr)
			}
		}
	}
}

// writeBounds commits the measured maxima, rounded up to the next 0.005
// so innocuous float jitter in future toolchains cannot flip the test.
func writeBounds(t *testing.T, measured map[string]map[string]errBound) {
	t.Helper()
	var doc boundsDoc
	doc.Schema = "mkss-twin-bounds/v1"
	doc.Corpus.LoUtil = corpusLoUtil
	doc.Corpus.HiUtil = corpusHiUtil
	doc.Corpus.Step = corpusStep
	doc.Corpus.SetsPerInterval = corpusSets
	doc.Corpus.GenSeed = corpusGenSeed
	doc.Corpus.RunSeedStride = corpusRunSeedK
	for _, sc := range corpusScenarios() {
		doc.Corpus.Scenarios = append(doc.Corpus.Scenarios, sc.String())
	}
	for _, a := range corpusApproaches() {
		doc.Corpus.Approaches = append(doc.Corpus.Approaches, a.String())
	}
	up := func(v float64) float64 { return math.Ceil(v*200) / 200 }
	doc.Bounds = map[string]map[string]errBound{}
	for sc, byPolicy := range measured {
		doc.Bounds[sc] = map[string]errBound{}
		for policy, m := range byPolicy {
			doc.Bounds[sc][policy] = errBound{
				ActiveRelErr: up(m.ActiveRelErr),
				TotalRelErr:  up(m.TotalRelErr),
			}
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(boundsPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", boundsPath)
}
