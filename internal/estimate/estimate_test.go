package estimate

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro"
	"repro/internal/timeu"
)

func paperSet() *repro.Set {
	return repro.NewSet(repro.NewTask(5, 4, 3, 2, 4), repro.NewTask(10, 10, 3, 1, 2))
}

func TestRegistry(t *testing.T) {
	got := Backends()
	want := []string{"sim", "twin"}
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}

	r := repro.NewRunner(repro.RunnerConfig{})
	def, err := New("", r)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != DefaultBackend {
		t.Errorf("New(\"\") built %q, want default %q", def.Name(), DefaultBackend)
	}
	if _, err := New("oracle", r); err == nil {
		t.Error("New(oracle) must fail")
	} else if !strings.Contains(err.Error(), "twin") || !strings.Contains(err.Error(), "sim") {
		t.Errorf("unknown-backend error should list the registry, got %v", err)
	}
}

// The twin's verdicts must be simulation-exact and its energy figures
// close on the paper's running example, for every approach and both
// deterministic fault scenarios. The committed per-scenario bounds over
// the Fig-6 corpus are enforced separately (TestTwinErrorBounds); this
// pins the model on the one set we can reason about by hand.
func TestTwinMatchesSimOnPaperSet(t *testing.T) {
	r := repro.NewRunner(repro.RunnerConfig{})
	set := paperSet()

	// Greedy's optionals can expire mid-schedule in ways no closed form
	// sees, so its tolerance is looser.
	tol := map[repro.Approach]float64{
		repro.ST:           0.05,
		repro.DP:           0.05,
		repro.DPBackground: 0.15,
		repro.Selective:    0.05,
		repro.Greedy:       0.25,
	}

	for _, a := range []repro.Approach{repro.ST, repro.DP, repro.DPBackground, repro.Selective, repro.Greedy} {
		for _, sc := range []repro.Scenario{repro.NoFault, repro.PermanentOnly} {
			req := Request{Set: set, Approach: a, Scenario: sc, Seed: 42, HorizonMS: 100}
			tw, err := New("twin", r)
			if err != nil {
				t.Fatal(err)
			}
			sm, err := New("sim", r)
			if err != nil {
				t.Fatal(err)
			}
			at, err := tw.Estimate(context.Background(), req)
			if err != nil {
				t.Fatalf("%v/%v twin: %v", a, sc, err)
			}
			as, err := sm.Estimate(context.Background(), req)
			if err != nil {
				t.Fatalf("%v/%v sim: %v", a, sc, err)
			}
			if at.Exact || !as.Exact {
				t.Errorf("%v/%v: Exact flags twin=%v sim=%v", a, sc, at.Exact, as.Exact)
			}
			if at.Policy != as.Policy {
				t.Errorf("%v/%v: policy %q vs %q", a, sc, at.Policy, as.Policy)
			}
			if at.Horizon != as.Horizon {
				t.Errorf("%v/%v: horizon %v vs %v", a, sc, at.Horizon, as.Horizon)
			}
			if at.Schedulable != as.Schedulable {
				t.Errorf("%v/%v: schedulable %v vs %v", a, sc, at.Schedulable, as.Schedulable)
			}
			if at.MKPredicted != as.MKPredicted {
				t.Errorf("%v/%v: mk %v vs %v", a, sc, at.MKPredicted, as.MKPredicted)
			}
			for _, e := range []struct {
				name       string
				twin, real float64
			}{
				{"active", at.ActiveEnergy, as.ActiveEnergy},
				{"total", at.TotalEnergy, as.TotalEnergy},
			} {
				rel := math.Abs(e.twin-e.real) / e.real
				if rel > tol[a] {
					t.Errorf("%v/%v: %s energy twin=%.2f sim=%.2f (rel err %.3f > %.2f)",
						a, sc, e.name, e.twin, e.real, rel, tol[a])
				}
			}
		}
	}
}

// A zero horizon must resolve exactly as Runner.Simulate resolves it.
func TestTwinDefaultHorizon(t *testing.T) {
	r := repro.NewRunner(repro.RunnerConfig{})
	set := paperSet()
	tw := NewTwin(r)
	a, err := tw.Estimate(context.Background(), Request{Set: set, Approach: repro.ST})
	if err != nil {
		t.Fatal(err)
	}
	if want := set.MKHyperperiod(2000 * timeu.Millisecond); a.Horizon != want {
		t.Errorf("default horizon %v, want %v", a.Horizon, want)
	}
}

// The twin's schedulability verdict is the public Theorem-1 test, not an
// approximation of it.
func TestTwinSchedulableIsExact(t *testing.T) {
	r := repro.NewRunner(repro.RunnerConfig{})
	set := paperSet()
	a, err := NewTwin(r).Estimate(context.Background(), Request{Set: set, Approach: repro.DP, HorizonMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable != repro.RPatternSchedulable(set) {
		t.Errorf("twin schedulable %v, public verdict %v", a.Schedulable, repro.RPatternSchedulable(set))
	}
}

// Steady-state execution fractions of the selective policy's FD
// automaton. (2,4) orbits skip/exec/exec → 2/3; (1,2) never reaches
// FD ≥ 2 → every job; m = k degenerates to FD = 0 forever.
func TestExecFraction(t *testing.T) {
	cases := []struct {
		m, k int
		want float64
	}{
		{2, 4, 2.0 / 3.0},
		{1, 2, 1.0},
		{4, 4, 1.0},
		{3, 4, 1.0},
	}
	for _, c := range cases {
		if got := execFraction(c.m, c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("execFraction(%d,%d) = %v, want %v", c.m, c.k, got, c.want)
		}
	}
	// Never below the mandatory ratio, never above one.
	for k := 2; k <= 8; k++ {
		for m := 1; m <= k; m++ {
			f := execFraction(m, k)
			if f < float64(m)/float64(k)-1e-12 || f > 1+1e-12 {
				t.Errorf("execFraction(%d,%d) = %v out of [m/k, 1]", m, k, f)
			}
		}
	}
}

// The twin must refuse policies its closed forms do not model — a typed
// UnsupportedError, never a zero-activity estimate that looks plausible.
func TestTwinUnsupportedDBP(t *testing.T) {
	r := repro.NewRunner(repro.RunnerConfig{})
	twin := NewTwin(r)
	_, err := twin.Estimate(context.Background(), Request{
		Set: paperSet(), Approach: repro.DBP, HorizonMS: 100,
	})
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("twin answered for DBP with err=%v; want UnsupportedError", err)
	}
	if ue.Backend != "twin" || ue.Policy != "MKSS-DBP" {
		t.Errorf("error identifies %q/%q, want twin/MKSS-DBP", ue.Backend, ue.Policy)
	}
	// Every modeled approach still answers.
	for _, a := range append(repro.Approaches(), repro.DPBackground) {
		if _, err := twin.Estimate(context.Background(), Request{Set: paperSet(), Approach: a, HorizonMS: 100}); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}
