// Package estimate answers the paper's two production questions — "is
// this task set (m,k)-schedulable under R-pattern enforcement, and
// roughly what energy does each approach spend?" — behind one Estimator
// interface with two registered backends:
//
//   - "twin": the analytical twin. Closed-form answers composed from the
//     memoized offline products (Theorem-1 schedulability, the
//     mandatory-schedule profile, promotion/θ intervals) in microseconds,
//     with no discrete-event run. The schedulability verdict is exact;
//     the energy figures are estimates whose per-scenario error against
//     the simulator is measured over the Fig-6 corpus and committed in
//     results/twin_error_bounds.json.
//   - "sim": the empirical backend — an adapter over repro.Runner that
//     runs the real simulation and repackages its result. Same answer
//     vocabulary, exact by construction.
//
// Both backends are constructed around a shared *repro.Runner, so the
// twin's per-set products live in the same fingerprint-keyed analysis
// LRU the simulations use: an estimate warms the cache for a later
// refining simulation and vice versa.
package estimate

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro"
	"repro/internal/timeu"
)

// Request is one estimation query. The fields mirror repro.RunConfig's
// simulation-relevant subset, so any Request can be refined into the
// simulation it approximates without translation.
type Request struct {
	Set      *repro.Set
	Approach repro.Approach
	// Scenario, Seed select the fault realization. The twin draws the
	// same fault plan the simulator would (identical RNG stream), so a
	// permanent fault's instant and processor match the refining run
	// exactly.
	Scenario repro.Scenario
	Seed     uint64
	// HorizonMS is the estimated duration in ms; zero means the set's
	// (m,k)-hyperperiod capped at 2000 ms (the Simulate default).
	HorizonMS float64
	// TransientRate overrides the transient fault rate when non-zero.
	TransientRate float64
	// Power overrides the energy model; the zero value is the paper's.
	Power repro.PowerModel
}

// Answer is one backend's verdict.
type Answer struct {
	// Backend names the estimator that produced the answer.
	Backend string
	// Policy is the canonical approach name ("MKSS-selective", ...).
	Policy string
	// Horizon is the effective estimated window.
	Horizon timeu.Time
	// Schedulable is the Theorem-1 R-pattern verdict — exact for both
	// backends (the twin computes the same memoized test the simulation
	// reports).
	Schedulable bool
	// ActiveEnergy and TotalEnergy estimate the run's energy figures.
	ActiveEnergy float64
	TotalEnergy  float64
	// MKPredicted predicts whether the run satisfies every (m,k)
	// constraint.
	MKPredicted bool
	// Exact reports whether the answer came from a real simulation.
	Exact bool
}

// UnsupportedError reports that a backend has no model for the requested
// policy. It exists so an approximate backend can refuse honestly rather
// than answer from a model that does not describe the policy at all: the
// twin's closed forms are built on the static-pattern premise and cannot
// speak for a dynamically promoted schedule like MKSS-DBP. Serving maps
// it to a structured 501 so clients can branch to refine=true (the
// simulator handles every registered policy).
type UnsupportedError struct {
	Backend string
	Policy  string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("estimate: backend %q has no model for policy %q; refine with the simulator", e.Backend, e.Policy)
}

// Estimator is one backend. Implementations must be safe for concurrent
// use; serving fans estimate traffic out over one shared instance.
type Estimator interface {
	// Name is the registry name the backend answers to.
	Name() string
	// Exact reports whether Estimate's answers are simulation-exact.
	Exact() bool
	// Estimate answers one query.
	Estimate(ctx context.Context, req Request) (*Answer, error)
}

// DefaultBackend is the backend used when a request names none.
const DefaultBackend = "twin"

var (
	regMu    sync.RWMutex
	registry = map[string]func(*repro.Runner) Estimator{}
)

// Register installs a backend constructor under name. Backends register
// themselves from init; a duplicate name panics (it is a programming
// error, not a runtime condition).
func Register(name string, build func(*repro.Runner) Estimator) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("estimate: duplicate backend " + name)
	}
	registry[name] = build
}

// New constructs the named backend ("" means DefaultBackend) around the
// given session. The runner's analysis LRU memoizes the twin's per-set
// products and the simulation's offline analyses alike.
func New(name string, r *repro.Runner) (Estimator, error) {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	build, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("estimate: unknown backend %q (want one of %s)",
			name, strings.Join(Backends(), ", "))
	}
	return build(r), nil
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// horizon resolves a request's effective window with the exact
// convention of Runner.Simulate, so the twin and a refining run agree on
// what they are estimating.
func (req Request) horizon() timeu.Time {
	h := timeu.FromMillis(req.HorizonMS)
	if h <= 0 {
		h = req.Set.MKHyperperiod(2000 * timeu.Millisecond)
	}
	return h
}

// power resolves the effective energy model (zero value → the paper's).
func (req Request) power() repro.PowerModel {
	if req.Power == (repro.PowerModel{}) {
		return defaultPower()
	}
	return req.Power
}
