package estimate

import (
	"context"

	"repro"
)

func init() {
	Register("sim", func(r *repro.Runner) Estimator { return &SimBackend{runner: r} })
}

// SimBackend is the empirical estimator: an adapter that runs the real
// discrete-event simulation through the shared session and repackages
// its result as an Answer. It exists so callers can swap exactness for
// latency behind one interface — and so the cross-validation tests can
// drive both backends through the same code path.
type SimBackend struct {
	runner *repro.Runner
}

// NewSim builds the empirical backend around a session.
func NewSim(r *repro.Runner) *SimBackend { return &SimBackend{runner: r} }

func (b *SimBackend) Name() string { return "sim" }
func (b *SimBackend) Exact() bool  { return true }

// Estimate runs the simulation the request describes.
func (b *SimBackend) Estimate(ctx context.Context, req Request) (*Answer, error) {
	res, err := b.runner.Simulate(ctx, req.Set, req.Approach, repro.RunConfig{
		HorizonMS:     req.HorizonMS,
		Scenario:      req.Scenario,
		Seed:          req.Seed,
		TransientRate: req.TransientRate,
		Power:         req.Power,
	})
	if err != nil {
		return nil, err
	}
	return &Answer{
		Backend:      b.Name(),
		Policy:       res.Policy,
		Horizon:      res.Horizon,
		Schedulable:  b.runner.Analysis(req.Set).Schedulable(),
		ActiveEnergy: res.ActiveEnergy(),
		TotalEnergy:  res.TotalEnergy(),
		MKPredicted:  res.MKSatisfied(),
		Exact:        true,
	}, nil
}
