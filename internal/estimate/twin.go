package estimate

import (
	"context"
	"strings"

	"repro"
	"repro/internal/fault"
	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timeu"
)

func init() {
	Register("twin", func(r *repro.Runner) Estimator { return &Twin{runner: r} })
}

func defaultPower() repro.PowerModel { return sim.DefaultPower() }

// Twin is the analytical twin: a closed-form model of the simulator
// built from the memoized offline products of the session's analysis
// LRU. One estimate costs a cache lookup plus O(n) arithmetic; the walk
// behind the products (rta.MandatoryProfile) is paid once per distinct
// set, like every other offline product.
//
// # Model
//
// Everything is derived from the mandatory-schedule profile over one
// (m,k)-hyperperiod Hm (busy time B, idle gaps, per-task mandatory job
// counts n_i and worst responses R̃i), linearly scaled to the requested
// horizon H by f = H/Hm — exact for the synchronous, offset-free sets
// this repository simulates, where the schedule repeats every Hm.
//
// Per-approach fault-free active time per processor over Hm:
//
//	ST        both processors execute the full mandatory schedule:
//	          A_0 = A_1 = B (the backup schedule mirrors the mains, so
//	          cancellation saves nearly nothing — the paper's point).
//	DP        mains alternate by task parity: A_p gets Σ n_i·Ci over
//	          tasks with i mod 2 = p; each backup on the other processor
//	          runs only the typical-case procrastination overlap
//	          clamp(Ci − Yi, 0, Ci) before the main's completion cancels
//	          it (with the mains split across two processors a main
//	          usually completes about one WCET after its start, so
//	          worst-case-response overlaps overshoot real cancellations
//	          by 4-5× across the corpus).
//	DP-bg     background backups start at release and are cancelled at
//	          the main's completion, so the overlap is min(R̂i, Ci) with
//	          R̂i a parity-aware busy-period bound: the main contends
//	          only with the mandatory demand of higher-priority tasks on
//	          its own processor.
//	Selective in dynamic steady state the demand executes as FD = 1
//	          optionals alternating across processors with no backups.
//	          The per-task execution fraction is NOT mi/ki: iterating
//	          the flexibility-degree automaton (skip while FD ≥ 2,
//	          execute at FD ≤ 1, every execution succeeding) over its
//	          deterministic orbit gives the exact steady-state fraction
//	          — e.g. (2,4) executes 2 of every 3 jobs, (1,2) every job.
//	Greedy    every job executes on the primary while the system keeps
//	          succeeding: A_0 = min(total demand, Hm), A_1 = 0; once the
//	          primary saturates, mandatory jobs (and their Yi-postponed
//	          backups) reappear on the spare.
//
// A permanent fault (At, proc) — drawn from the same RNG stream the
// simulator uses, so the realization matches the refining run exactly —
// splits the horizon: before At each processor runs at its fault-free
// rate A_p/Hm; after At the survivor runs the single-copy mandatory
// schedule at rate B/Hm and the dead processor contributes dead time.
//
// Idle time splits into sleep and idle by the DPD break-even rule
// applied to the profile's gap distribution: the fraction of gap time
// in gaps longer than T_be sleeps, the remainder idles. Transient
// faults (λ = 1e-6/ms of execution) perturb energy only through lost
// backup cancellations, a O(λ·Ci) relative effect far below the
// committed bounds; the twin ignores them.
//
// The schedulability and (m,k) verdicts are not estimates: they are the
// memoized Theorem-1 test itself, identical to what a simulation run's
// document reports.
type Twin struct {
	runner *repro.Runner
}

// NewTwin builds the twin around a session.
func NewTwin(r *repro.Runner) *Twin { return &Twin{runner: r} }

func (t *Twin) Name() string { return "twin" }
func (t *Twin) Exact() bool  { return false }

// modeled reports whether the twin's closed forms cover the approach.
// The switch mirrors activePerProc exactly: an approach absent from both
// must fail loudly, never fall through to a zero-active estimate.
func (t *Twin) modeled(a repro.Approach) bool {
	switch a {
	case repro.ST, repro.DP, repro.DPBackground, repro.Selective, repro.Greedy:
		return true
	}
	return false
}

// Estimate answers one query in closed form.
func (t *Twin) Estimate(_ context.Context, req Request) (*Answer, error) {
	if !t.modeled(req.Approach) {
		// MKSS-DBP (and any future dynamic policy) schedules from the
		// realized k-sequences; the static-pattern profile underneath the
		// closed forms says nothing about it.
		return nil, &UnsupportedError{Backend: t.Name(), Policy: req.Approach.String()}
	}
	s := req.Set
	if err := s.Validate(); err != nil {
		return nil, err
	}
	prods := t.runner.Analysis(s)
	prof := prods.MandatoryProfile()
	power := req.power()
	H := req.horizon()
	hMS := H.Millis()
	hmMS := prof.Horizon.Millis()
	if hmMS <= 0 {
		return nil, &rta.ErrUnschedulable{TaskID: 0, Detail: "empty hyperperiod"}
	}

	// Fault-free per-processor active time over one profile window.
	act := t.activePerProc(req.Approach, prods.Set(), prof, prods.PromotionTimes())

	// Fault realization: the same first draws the simulator makes.
	plan := fault.NewPlan(req.Scenario, H, stats.NewRand(req.Seed))

	// Compose per-processor active/dead time over the horizon.
	var activeMS, deadMS [sim.NumProcs]float64
	busyRate := prof.Busy.Millis() / hmMS
	for p := 0; p < sim.NumProcs; p++ {
		rate := act[p] / hmMS
		if pf := plan.Permanent; pf != nil {
			atMS := pf.At.Millis()
			if p == pf.Proc {
				activeMS[p] = rate * atMS
				deadMS[p] = hMS - atMS
			} else {
				// Survivor: fault-free rate before At, the single-copy
				// mandatory schedule after.
				activeMS[p] = rate*atMS + busyRate*(hMS-atMS)
			}
		} else {
			activeMS[p] = rate * hMS
		}
		if max := hMS - deadMS[p]; activeMS[p] > max {
			activeMS[p] = max
		}
	}

	// DPD split of the idle remainder, from the profile's gap
	// distribution.
	var gapMS, sleepableMS float64
	for _, g := range prof.Gaps {
		gapMS += g.Millis()
		if g > power.BreakEven {
			sleepableMS += g.Millis()
		}
	}
	sleepFrac := 0.0
	if gapMS > 0 {
		sleepFrac = sleepableMS / gapMS
	}

	var activeE, totalE float64
	for p := 0; p < sim.NumProcs; p++ {
		idleMS := hMS - activeMS[p] - deadMS[p]
		if idleMS < 0 {
			idleMS = 0
		}
		sleepMS := sleepFrac * idleMS
		activeE += activeMS[p] * power.Active
		totalE += activeMS[p]*power.Active + (idleMS-sleepMS)*power.Idle + sleepMS*power.Sleep
	}

	sched := prods.Schedulable()
	return &Answer{
		Backend:      t.Name(),
		Policy:       req.Approach.String(),
		Horizon:      H,
		Schedulable:  sched,
		ActiveEnergy: activeE,
		TotalEnergy:  totalE,
		MKPredicted:  sched,
		Exact:        false,
	}, nil
}

// activePerProc computes the per-approach fault-free active time (ms)
// of each processor over one profile window, per the model above.
func (t *Twin) activePerProc(a repro.Approach, s *repro.Set, prof rta.Profile, ys []timeu.Time) [sim.NumProcs]float64 {
	var act [sim.NumProcs]float64
	busyMS := prof.Busy.Millis()
	switch a {
	case repro.ST:
		act[sim.Primary] = busyMS
		act[sim.Spare] = busyMS
	case repro.DP, repro.DPBackground:
		for i := range s.Tasks {
			tk := &s.Tasks[i]
			n := float64(prof.Count[i])
			mp := i % sim.NumProcs
			act[mp] += n * tk.WCET.Millis()
			// Typical-case cancellation: with the mains split across two
			// processors a main usually completes about one WCET after it
			// starts, so a backup postponed by Yi runs ~max(0, Ci − Yi)
			// before the cancellation (not the worst-case-response overlap,
			// which overshoots the corpus by 4-5×). Background backups run
			// from release and are cancelled at the main's completion — the
			// parity-aware response bounds that window.
			overlap := tk.WCET - ys[i]
			if a == repro.DPBackground {
				overlap = parityResponse(s, i)
			}
			act[1-mp] += n * clampMS(overlap, tk.WCET)
		}
	case repro.Selective:
		// Steady-state optional demand, split evenly by alternation.
		var execMS float64
		for i := range s.Tasks {
			tk := &s.Tasks[i]
			releases := float64(timeu.CeilDiv(prof.Horizon, tk.Period))
			execMS += execFraction(tk.M, tk.K) * releases * tk.WCET.Millis()
		}
		act[sim.Primary] = execMS / 2
		act[sim.Spare] = execMS / 2
	case repro.Greedy:
		var demandMS float64
		for i := range s.Tasks {
			tk := &s.Tasks[i]
			releases := float64(timeu.CeilDiv(prof.Horizon, tk.Period))
			demandMS += releases * tk.WCET.Millis()
		}
		hmMS := prof.Horizon.Millis()
		if demandMS <= hmMS {
			act[sim.Primary] = demandMS
		} else {
			// Saturated primary: optionals expire, mandatory jobs (and
			// their Yi-postponed backups) reappear.
			act[sim.Primary] = hmMS
			for i := range s.Tasks {
				tk := &s.Tasks[i]
				act[sim.Spare] += float64(prof.Count[i]) *
					clampMS(prof.MaxResponse[i]-ys[i], tk.WCET)
			}
		}
	}
	return act
}

// clampMS clamps v to [0, hi] and returns milliseconds.
func clampMS(v, hi timeu.Time) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		v = hi
	}
	return v.Millis()
}

// parityResponse bounds the worst response time of task i's DP main
// copy: a busy-period fixed point whose interference counts only the
// mandatory demand of higher-priority tasks hosted on the same processor
// (mains alternate by task parity), capped at the deadline.
func parityResponse(s *repro.Set, i int) timeu.Time {
	t := &s.Tasks[i]
	f := t.WCET
	for {
		next := t.WCET
		for j := 0; j < i; j++ {
			if j%sim.NumProcs != i%sim.NumProcs {
				continue
			}
			next += rta.MandatoryDemand(s.Tasks[j], pattern.RPattern, f)
		}
		if next <= f {
			return f
		}
		if next > t.Deadline {
			return t.Deadline
		}
		f = next
	}
}

// execFraction iterates the flexibility-degree automaton of one (m,k)
// task under the selective policy's steady-state assumptions — skip
// while FD ≥ 2, execute at FD ≤ 1, every execution succeeds — until the
// deterministic orbit repeats, and returns the executed fraction over
// one cycle. The state space is the k-window of outcomes, so the loop
// terminates within 2^k + k steps; in practice orbits are a handful of
// states.
func execFraction(m, k int) float64 {
	h := pattern.NewHistory(m, k)
	type visit struct{ step, exec int }
	seen := make(map[string]visit, 16)
	step, exec := 0, 0
	for {
		key := historyKey(h)
		if v, ok := seen[key]; ok {
			return float64(exec-v.exec) / float64(step-v.step)
		}
		seen[key] = visit{step: step, exec: exec}
		e := h.FlexibilityDegree() <= 1
		h.Record(e)
		step++
		if e {
			exec++
		}
	}
}

// historyKey renders the automaton state — the k-window of outcomes,
// oldest to newest — as a map key.
func historyKey(h *pattern.History) string {
	var b strings.Builder
	b.Grow(h.K())
	for _, o := range h.Snapshot() {
		if o {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
