// Package metrics is the simulator's observability layer: cheap run
// counters the engine maintains unconditionally, and an optional
// structured-event sink it emits into at every dispatch, settlement,
// cancellation, takeover and power-state transition.
//
// The two halves serve different consumers. Counters are a flat,
// comparable struct aggregated across runs by the experiment harness and
// exported in the machine-readable BENCH_*.json documents that CI tracks
// across PRs. Events are a high-resolution trace for debugging a single
// run ("why was this backup cancelled at t=14ms?"); when no Sink is
// attached the engine's hot path performs no event work and no
// allocations.
package metrics

import (
	"fmt"

	"repro/internal/timeu"
)

// NumProcs mirrors the standby-sparing architecture (primary + spare).
// sim.NumProcs asserts equality at compile time.
const NumProcs = 2

// ProcTime partitions one processor's accounted time over a run. The four
// states are mutually exclusive, so Busy+Idle+Sleep+Dead equals the run's
// horizon for every processor.
type ProcTime struct {
	Busy  timeu.Time `json:"busy_us"`
	Idle  timeu.Time `json:"idle_us"`
	Sleep timeu.Time `json:"sleep_us"`
	Dead  timeu.Time `json:"dead_us"`
}

// Add accumulates another breakdown (aggregation across runs).
func (p ProcTime) Add(o ProcTime) ProcTime {
	return ProcTime{
		Busy:  p.Busy + o.Busy,
		Idle:  p.Idle + o.Idle,
		Sleep: p.Sleep + o.Sleep,
		Dead:  p.Dead + o.Dead,
	}
}

// Span returns the total accounted time.
func (p ProcTime) Span() timeu.Time { return p.Busy + p.Idle + p.Sleep + p.Dead }

// Counters aggregates one run's statistics (or, via Add, many runs').
// The struct stays comparable (no slices/maps) so results can be checked
// with == in tests; the JSON tags are the stable names used by the
// BENCH_*.json schema.
type Counters struct {
	// Job accounting: every released job is classified exactly once
	// (mandatory, selected optional, or skipped optional) and settled
	// exactly once (effective or miss).
	Released         int `json:"released"`
	MandatoryJobs    int `json:"mandatory_jobs"`
	OptionalSelected int `json:"optional_selected"`
	OptionalSkipped  int `json:"optional_skipped"`
	// Demotions counts would-be mandatory jobs (per the static pattern)
	// the dynamic schemes demoted to optional/skipped after a successful
	// optional execution (Algorithm 1's dynamic-pattern play).
	Demotions int `json:"demotions"`
	Effective int `json:"effective"`
	Misses    int `json:"misses"`

	// Standby-sparing accounting: backups created on the spare, backups
	// cancelled before running a single tick (clean — the θ-postponement
	// payoff of Defs. 2–5) or mid-execution (partial), and jobs rescued
	// by a backup after the main copy failed.
	BackupsCreated         int `json:"backups_created"`
	BackupsCanceledClean   int `json:"backups_canceled_clean"`
	BackupsCanceledPartial int `json:"backups_canceled_partial"`
	BackupRecoveries       int `json:"backup_recoveries"`

	// Scheduler mechanics: copy dispatches (start or resume on a
	// processor), preemptions of partially executed copies, and copy
	// completions (including faulty ones).
	Dispatches  int `json:"dispatches"`
	Preemptions int `json:"preemptions"`
	Completions int `json:"completions"`

	// Power management: DPD transitions into the low-power state and
	// wake-ups out of it.
	SleepEntries int `json:"sleep_entries"`
	Wakeups      int `json:"wakeups"`

	// Fault accounting.
	TransientFaults int `json:"transient_faults"`
	PermanentFaults int `json:"permanent_faults"`

	// Proc is the per-processor time partition ([0] primary, [1] spare).
	Proc [NumProcs]ProcTime `json:"proc"`
}

// Add accumulates another run's counters (aggregation in the experiment
// harness).
func (c Counters) Add(o Counters) Counters {
	c.Released += o.Released
	c.MandatoryJobs += o.MandatoryJobs
	c.OptionalSelected += o.OptionalSelected
	c.OptionalSkipped += o.OptionalSkipped
	c.Demotions += o.Demotions
	c.Effective += o.Effective
	c.Misses += o.Misses
	c.BackupsCreated += o.BackupsCreated
	c.BackupsCanceledClean += o.BackupsCanceledClean
	c.BackupsCanceledPartial += o.BackupsCanceledPartial
	c.BackupRecoveries += o.BackupRecoveries
	c.Dispatches += o.Dispatches
	c.Preemptions += o.Preemptions
	c.Completions += o.Completions
	c.SleepEntries += o.SleepEntries
	c.Wakeups += o.Wakeups
	c.TransientFaults += o.TransientFaults
	c.PermanentFaults += o.PermanentFaults
	for p := range c.Proc {
		c.Proc[p] = c.Proc[p].Add(o.Proc[p])
	}
	return c
}

// CheckInvariants verifies the structural identities every run (or sum of
// runs) under the paper's policies must satisfy, given the total simulated
// horizon (summed across runs when c is an aggregate). It returns
// human-readable violations; nil means the counters are consistent.
//
// The classification identity (mandatory + selected + skipped = released)
// assumes the policy classifies every release through the engine's
// documented calls, which all four paper approaches do.
func (c Counters) CheckInvariants(horizon timeu.Time) []string {
	var out []string
	bad := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }

	if got := c.Effective + c.Misses; got != c.Released {
		bad("settlement: effective(%d) + misses(%d) = %d, want released(%d)", c.Effective, c.Misses, got, c.Released)
	}
	if got := c.MandatoryJobs + c.OptionalSelected + c.OptionalSkipped; got != c.Released {
		bad("classification: mandatory(%d) + selected(%d) + skipped(%d) = %d, want released(%d)",
			c.MandatoryJobs, c.OptionalSelected, c.OptionalSkipped, got, c.Released)
	}
	if canceled := c.BackupsCanceledClean + c.BackupsCanceledPartial; canceled > c.BackupsCreated {
		bad("backups: canceled(%d) > created(%d)", canceled, c.BackupsCreated)
	}
	if c.BackupsCreated > c.MandatoryJobs {
		bad("backups: created(%d) > mandatory releases(%d)", c.BackupsCreated, c.MandatoryJobs)
	}
	if c.BackupRecoveries > c.Effective {
		bad("backups: recoveries(%d) > effective(%d)", c.BackupRecoveries, c.Effective)
	}
	if c.TransientFaults > c.Completions {
		bad("faults: transient(%d) > completions(%d)", c.TransientFaults, c.Completions)
	}
	if c.Preemptions > c.Dispatches {
		bad("dispatch: preemptions(%d) > dispatches(%d)", c.Preemptions, c.Dispatches)
	}
	if c.Wakeups > c.SleepEntries {
		bad("power: wakeups(%d) > sleep entries(%d)", c.Wakeups, c.SleepEntries)
	}
	for p, pt := range c.Proc {
		if pt.Span() != horizon {
			bad("proc %d: busy(%v) + idle(%v) + sleep(%v) + dead(%v) = %v, want horizon(%v)",
				p, pt.Busy, pt.Idle, pt.Sleep, pt.Dead, pt.Span(), horizon)
		}
	}
	return out
}
