package metrics

import (
	"strconv"

	"repro/internal/timeu"
)

// EventKind enumerates the engine's observable transitions.
type EventKind uint8

const (
	// EvRelease: a logical job J_ij released (before classification).
	EvRelease EventKind = iota
	// EvAdmit: a job copy entered a processor's queue.
	EvAdmit
	// EvSkip: the policy skipped an optional job at release.
	EvSkip
	// EvDispatch: a copy started or resumed executing on a processor.
	EvDispatch
	// EvPreempt: a partially executed copy was displaced.
	EvPreempt
	// EvComplete: a copy ran its demand to zero (note "faulty" when a
	// transient fault struck it).
	EvComplete
	// EvCancel: a pending/running copy was removed (note says why:
	// "sibling-effective", "deadline", or "permanent-fault").
	EvCancel
	// EvSettle: a logical job's outcome entered the (m,k) history.
	EvSettle
	// EvSleep: a processor entered the DPD low-power state.
	EvSleep
	// EvWake: a processor left the DPD low-power state.
	EvWake
	// EvPermanentFault: a processor died; the survivor takes over.
	EvPermanentFault
)

var eventKindNames = [...]string{
	EvRelease:        "release",
	EvAdmit:          "admit",
	EvSkip:           "skip",
	EvDispatch:       "dispatch",
	EvPreempt:        "preempt",
	EvComplete:       "complete",
	EvCancel:         "cancel",
	EvSettle:         "settle",
	EvSleep:          "sleep",
	EvWake:           "wake",
	EvPermanentFault: "permanent-fault",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	// String sits on the JSONL emit path, which the engine reaches per
	// event: plain concatenation instead of fmt keeps it reflection-free.
	return "EventKind(" + strconv.Itoa(int(k)) + ")"
}

// Copy codes for Event.Copy (the engine converts from task.Copy).
const (
	CopyNone   = -1
	CopyMain   = 0
	CopyBackup = 1
)

// Event is one structured observation. Fields that do not apply to a
// kind carry -1 (Proc, TaskID, Copy) or zero (Index) and are omitted
// from the JSONL encoding. Events are passed by value so that emitting
// with no sink attached allocates nothing.
type Event struct {
	// T is the simulation instant in microsecond ticks.
	T timeu.Time
	// Kind is the transition observed.
	Kind EventKind
	// Proc is the processor involved (-1 when not processor-scoped).
	Proc int
	// TaskID and Index identify the logical job J_ij (TaskID is 0-based,
	// Index 1-based, matching the engine's convention).
	TaskID int
	Index  int
	// Copy is CopyMain/CopyBackup, or CopyNone for job-level events.
	Copy int
	// OK is the settlement outcome (EvSettle only).
	OK bool
	// Note is a short static annotation (e.g. a cancellation reason).
	// Implementations may assume it needs no JSON escaping.
	Note string
}

// appendJSON encodes ev as one JSON object (no trailing newline) into b,
// hand-rolled so the JSONL sink does not allocate per event.
func (ev Event) appendJSON(b []byte) []byte {
	b = append(b, `{"t_us":`...)
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Proc >= 0 {
		b = append(b, `,"proc":`...)
		b = strconv.AppendInt(b, int64(ev.Proc), 10)
	}
	if ev.TaskID >= 0 {
		b = append(b, `,"task":`...)
		b = strconv.AppendInt(b, int64(ev.TaskID), 10)
	}
	if ev.Index > 0 {
		b = append(b, `,"index":`...)
		b = strconv.AppendInt(b, int64(ev.Index), 10)
	}
	switch ev.Copy {
	case CopyMain:
		b = append(b, `,"copy":"main"`...)
	case CopyBackup:
		b = append(b, `,"copy":"backup"`...)
	}
	if ev.Kind == EvSettle {
		if ev.OK {
			b = append(b, `,"ok":true`...)
		} else {
			b = append(b, `,"ok":false`...)
		}
	}
	if ev.Note != "" {
		b = append(b, `,"note":"`...)
		b = append(b, ev.Note...)
		b = append(b, '"')
	}
	return append(b, '}')
}

// Sink receives the engine's structured events. Emit is called on the
// simulator's hot path: implementations should buffer and must not retain
// references derived from the event beyond the call.
type Sink interface {
	Emit(Event)
	// Flush forces buffered events out (end of run).
	Flush() error
}

// Collector is a Sink that retains every event in memory, for tests and
// small interactive runs.
type Collector struct {
	Events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) { c.Events = append(c.Events, ev) }

// Flush implements Sink.
func (c *Collector) Flush() error { return nil }

// Count returns how many collected events have the given kind.
func (c *Collector) Count(kind EventKind) int {
	n := 0
	for _, ev := range c.Events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
