package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// StoreCounters tracks the persistent result store's traffic: lookups
// that found a record (hits), lookups that did not (misses), records
// appended (writes), and corrupt segment tails dropped during recovery
// (corrupt-recovered). The counters are atomics so the store can bump
// them from concurrent readers without taking its write lock, and the
// serving layer snapshots them for /healthz and the JSONL event stream.
type StoreCounters struct {
	hits    atomic.Uint64
	misses  atomic.Uint64
	writes  atomic.Uint64
	corrupt atomic.Uint64
}

// Hit records one successful lookup.
func (c *StoreCounters) Hit() { c.hits.Add(1) }

// Miss records one lookup that found nothing.
func (c *StoreCounters) Miss() { c.misses.Add(1) }

// Write records one appended record.
func (c *StoreCounters) Write() { c.writes.Add(1) }

// CorruptRecovered records n corrupt-tail recoveries (records or
// truncation events dropped while reopening a damaged segment).
func (c *StoreCounters) CorruptRecovered(n uint64) { c.corrupt.Add(n) }

// Snapshot returns a consistent-enough copy for reporting (each field is
// read atomically; the set is not a transaction, which reporting does
// not need).
func (c *StoreCounters) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Writes:           c.writes.Load(),
		CorruptRecovered: c.corrupt.Load(),
	}
}

// StoreSnapshot is a point-in-time copy of StoreCounters, shaped for
// JSON reporting (BENCH documents, /healthz, the event stream).
type StoreSnapshot struct {
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	Writes           uint64 `json:"writes"`
	CorruptRecovered uint64 `json:"corrupt_recovered"`
}

// TenantCounter is a concurrency-safe string-keyed counter — the serving
// layer's per-tenant quota-rejection accounting. Keys are created on
// first use.
type TenantCounter struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Add increments key's count by one.
func (t *TenantCounter) Add(key string) {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[string]uint64)
	}
	t.m[key]++
	t.mu.Unlock()
}

// Snapshot returns a copy of the counts; nil when nothing was counted.
func (t *TenantCounter) Snapshot() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

// Keys returns the counted keys in sorted order (deterministic output
// for logs and tests).
func (t *TenantCounter) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
