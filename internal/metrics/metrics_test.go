package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/timeu"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{Released: 3, Effective: 2, Misses: 1, MandatoryJobs: 2, OptionalSkipped: 1}
	a.Proc[0] = ProcTime{Busy: 10, Idle: 5}
	b := Counters{Released: 1, Effective: 1, MandatoryJobs: 1, BackupsCreated: 1}
	b.Proc[0] = ProcTime{Sleep: 7}
	b.Proc[1] = ProcTime{Dead: 2}

	sum := a.Add(b)
	if sum.Released != 4 || sum.Effective != 3 || sum.Misses != 1 {
		t.Errorf("Add: got %+v", sum)
	}
	if sum.Proc[0] != (ProcTime{Busy: 10, Idle: 5, Sleep: 7}) {
		t.Errorf("Proc[0] = %+v", sum.Proc[0])
	}
	if sum.Proc[1] != (ProcTime{Dead: 2}) {
		t.Errorf("Proc[1] = %+v", sum.Proc[1])
	}
}

func TestCheckInvariantsClean(t *testing.T) {
	c := Counters{
		Released: 5, MandatoryJobs: 3, OptionalSelected: 1, OptionalSkipped: 1,
		Effective: 4, Misses: 1,
		BackupsCreated: 3, BackupsCanceledClean: 2, BackupsCanceledPartial: 1,
		Dispatches: 8, Preemptions: 2, Completions: 6,
		SleepEntries: 3, Wakeups: 3,
		TransientFaults: 1,
	}
	c.Proc[0] = ProcTime{Busy: 60, Idle: 40}
	c.Proc[1] = ProcTime{Busy: 20, Idle: 30, Sleep: 50}
	if problems := c.CheckInvariants(100); len(problems) != 0 {
		t.Errorf("clean counters reported problems: %v", problems)
	}
}

func TestCheckInvariantsViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Counters)
		want string
	}{
		{"settlement", func(c *Counters) { c.Effective++ }, "settlement"},
		{"classification", func(c *Counters) { c.MandatoryJobs-- }, "classification"},
		{"backup-cancel", func(c *Counters) { c.BackupsCanceledClean = 99 }, "canceled"},
		{"backup-vs-mandatory", func(c *Counters) { c.BackupsCreated = 99 }, "mandatory releases"},
		{"transient", func(c *Counters) { c.TransientFaults = 99 }, "transient"},
		{"wakeups", func(c *Counters) { c.Wakeups = 99 }, "wakeups"},
		{"span", func(c *Counters) { c.Proc[1].Idle++ }, "proc 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Counters{
				Released: 2, MandatoryJobs: 2, Effective: 2,
				BackupsCreated: 2, Dispatches: 4, Completions: 4,
			}
			c.Proc[0] = ProcTime{Busy: 100}
			c.Proc[1] = ProcTime{Busy: 40, Sleep: 60}
			tc.mut(&c)
			problems := c.CheckInvariants(100)
			if len(problems) == 0 {
				t.Fatalf("expected a violation")
			}
			if !strings.Contains(strings.Join(problems, "\n"), tc.want) {
				t.Errorf("problems %v do not mention %q", problems, tc.want)
			}
		})
	}
}

func TestJSONLEncoding(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.Emit(Event{T: 1500, Kind: EvDispatch, Proc: 0, TaskID: 1, Index: 3, Copy: CopyMain})
	sink.Emit(Event{T: 2500, Kind: EvSettle, Proc: -1, TaskID: 1, Index: 3, Copy: CopyNone, OK: true})
	sink.Emit(Event{T: 4000, Kind: EvCancel, Proc: 1, TaskID: 0, Index: 2, Copy: CopyBackup, Note: "sibling-effective"})
	sink.Emit(Event{T: 5000, Kind: EvSleep, Proc: 1, TaskID: -1, Copy: CopyNone})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	// Every line must be valid standalone JSON with the expected fields.
	type line struct {
		T     int64  `json:"t_us"`
		Kind  string `json:"kind"`
		Proc  *int   `json:"proc"`
		Task  *int   `json:"task"`
		Index *int   `json:"index"`
		Copy  string `json:"copy"`
		OK    *bool  `json:"ok"`
		Note  string `json:"note"`
	}
	var got []line
	for i, l := range lines {
		var v line
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, l)
		}
		got = append(got, v)
	}
	if got[0].Kind != "dispatch" || got[0].T != 1500 || got[0].Copy != "main" || got[0].Proc == nil || *got[0].Proc != 0 {
		t.Errorf("dispatch line wrong: %s", lines[0])
	}
	if got[1].Kind != "settle" || got[1].OK == nil || !*got[1].OK || got[1].Proc != nil {
		t.Errorf("settle line wrong: %s", lines[1])
	}
	if got[2].Note != "sibling-effective" || got[2].Copy != "backup" {
		t.Errorf("cancel line wrong: %s", lines[2])
	}
	if got[3].Kind != "sleep" || got[3].Task != nil || got[3].OK != nil {
		t.Errorf("sleep line wrong: %s", lines[3])
	}
}

func TestJSONLEmitDoesNotAllocate(t *testing.T) {
	sink := NewJSONL(discard{})
	ev := Event{T: 123456, Kind: EvDispatch, Proc: 1, TaskID: 4, Index: 99, Copy: CopyBackup, Note: "x"}
	allocs := testing.AllocsPerRun(1000, func() { sink.Emit(ev) })
	if allocs > 0 {
		t.Errorf("Emit allocates %.1f objects/op, want 0", allocs)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestCollector(t *testing.T) {
	var c Collector
	c.Emit(Event{Kind: EvSleep})
	c.Emit(Event{Kind: EvWake})
	c.Emit(Event{Kind: EvSleep})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Count(EvSleep) != 2 || c.Count(EvWake) != 1 {
		t.Errorf("counts wrong: %+v", c.Events)
	}
}

func TestProcTimeSpan(t *testing.T) {
	pt := ProcTime{Busy: timeu.Millisecond, Idle: 2, Sleep: 3, Dead: 4}
	if pt.Span() != timeu.Millisecond+9 {
		t.Errorf("Span = %v", pt.Span())
	}
}
