package metrics

import (
	"bufio"
	"io"
)

// JSONL is a buffered Sink that writes one JSON object per line. The
// line buffer is reused across events, so steady-state emission does not
// allocate; errors are sticky and surfaced by Flush.
//
//	f, _ := os.Create("events.jsonl")
//	sink := metrics.NewJSONL(f)
//	... run the simulation with Config.Sink = sink ...
//	err := sink.Flush()
type JSONL struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONL wraps w in a buffered JSONL sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// Emit implements Sink.
func (s *JSONL) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.buf = ev.appendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Flush implements Sink, draining the buffer and reporting the first
// write error encountered.
func (s *JSONL) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
