package store

import (
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/task"
)

// TestRunKeyNoCollisions proves the key covers every field that can
// change a result document: varying any one of fingerprint (which
// covers θ — θ is derived from the set's periods/deadlines/m/k),
// approach, scenario, seed, horizon or transient rate must change the
// key. A collision here would serve one request another request's bytes.
func TestRunKeyNoCollisions(t *testing.T) {
	base := func() string { return RunKey("fp-A", "MKSS-DP", "both", 2020, 100000, 1e-5) }
	variants := map[string]string{
		"fingerprint":    RunKey("fp-B", "MKSS-DP", "both", 2020, 100000, 1e-5),
		"approach":       RunKey("fp-A", "MKSS-ST", "both", 2020, 100000, 1e-5),
		"scenario":       RunKey("fp-A", "MKSS-DP", "transient", 2020, 100000, 1e-5),
		"seed":           RunKey("fp-A", "MKSS-DP", "both", 2021, 100000, 1e-5),
		"horizon":        RunKey("fp-A", "MKSS-DP", "both", 2020, 200000, 1e-5),
		"transient rate": RunKey("fp-A", "MKSS-DP", "both", 2020, 100000, 2e-5),
	}
	seen := map[string]string{base(): "base"}
	for what, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collided with %s: key %q", what, prev, k)
		}
		seen[k] = what
	}
	if base() != RunKey("fp-A", "MKSS-DP", "both", 2020, 100000, 1e-5) {
		t.Error("RunKey is not deterministic")
	}
}

// TestRunKeyDistinguishesAllApproaches locks the approach dimension
// against the live registry: every pair of canonical policy names —
// including the registered extensions like MKSS-DBP — must key
// differently with all other fields equal.
func TestRunKeyDistinguishesAllApproaches(t *testing.T) {
	names := append(repro.Approaches(), repro.Extensions()...)
	if len(names) < 6 {
		t.Fatalf("expected at least 6 registered approaches, got %v", names)
	}
	seen := map[string]repro.Approach{}
	for _, a := range names {
		k := RunKey("fp-A", a.String(), "both", 2020, 100000, 1e-5)
		if prev, dup := seen[k]; dup {
			t.Errorf("approaches %v and %v collide: key %q", prev, a, k)
		}
		seen[k] = a
	}
	if _, ok := seen[RunKey("fp-A", "MKSS-DBP", "both", 2020, 100000, 1e-5)]; !ok {
		t.Error("MKSS-DBP missing from the approach key corpus")
	}
}

// TestRunKeyThetaSensitivity closes the θ loop concretely: two sets that
// differ only in one deadline (which changes the derived θ postponement
// intervals) must fingerprint differently, hence key differently.
func TestRunKeyThetaSensitivity(t *testing.T) {
	setA := task.NewSet(
		task.New(0, 5, 4, 3, 2, 4),
		task.New(1, 10, 10, 3, 1, 2),
	)
	setB := task.NewSet(
		task.New(0, 5, 5, 3, 2, 4), // deadline 4 -> 5: different θ
		task.New(1, 10, 10, 3, 1, 2),
	)
	fpA, fpB := analysis.Fingerprint(setA), analysis.Fingerprint(setB)
	if fpA == fpB {
		t.Fatalf("fingerprints collide across a deadline change: %q", fpA)
	}
	if RunKey(fpA, "MKSS-DP", "both", 2020, 100000, 0) == RunKey(fpB, "MKSS-DP", "both", 2020, 100000, 0) {
		t.Fatal("RunKey collides across a θ-changing set edit")
	}
}

// TestSweepUnitKeyNoCollisions does the same for sweep units: every
// config field, the interval bounds, and — critically — the interval's
// global offset (which pins the per-interval RNG sub-stream) must be
// key-distinguishing.
func TestSweepUnitKeyNoCollisions(t *testing.T) {
	as := []string{"MKSS-ST", "MKSS-DP"}
	base := SweepUnitKey("both", 2020, 3, 500, 0.3, 0.4, 2, as)
	variants := map[string]string{
		"scenario":   SweepUnitKey("transient", 2020, 3, 500, 0.3, 0.4, 2, as),
		"seed":       SweepUnitKey("both", 2021, 3, 500, 0.3, 0.4, 2, as),
		"sets":       SweepUnitKey("both", 2020, 4, 500, 0.3, 0.4, 2, as),
		"candidates": SweepUnitKey("both", 2020, 3, 800, 0.3, 0.4, 2, as),
		"lo":         SweepUnitKey("both", 2020, 3, 500, 0.2, 0.4, 2, as),
		"hi":         SweepUnitKey("both", 2020, 3, 500, 0.3, 0.5, 2, as),
		"offset":     SweepUnitKey("both", 2020, 3, 500, 0.3, 0.4, 3, as),
		"approaches": SweepUnitKey("both", 2020, 3, 500, 0.3, 0.4, 2, []string{"MKSS-ST"}),
		"approach swapped for DBP": SweepUnitKey("both", 2020, 3, 500, 0.3, 0.4, 2,
			[]string{"MKSS-ST", "MKSS-DBP"}),
	}
	seen := map[string]string{base: "base"}
	for what, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collided with %s: key %q", what, prev, k)
		}
		seen[k] = what
	}
}

// TestKeySpacesDisjoint: a run record and a sweep record can never
// shadow each other, whatever their fields.
func TestKeySpacesDisjoint(t *testing.T) {
	run := RunKey("x", "a", "s", 1, 2, 3)
	sweep := SweepUnitKey("s", 1, 2, 3, 0.1, 0.2, 0, []string{"a"})
	if run == sweep {
		t.Fatalf("run and sweep key spaces overlap: %q", run)
	}
}
