package store

import (
	"strconv"
	"strings"
)

// Key derivation. A store key is the canonical identity of one result
// document: the content address (the set fingerprint from
// internal/analysis, which hashes period/deadline/wcet/m/k/offset per
// task — θ is derived from the set, so the fingerprint covers it) joined
// with every run-config field that can change a byte of the output. Two
// requests share a key iff a correct server would answer them with
// byte-identical documents, which is exactly the property that lets the
// serving layer return stored bytes in place of a live run.
//
// The field order and formatting below are frozen: a formatting change
// would orphan every record already on disk. Floats use
// strconv.FormatFloat(x, 'g', -1, 64) — the shortest exact
// representation, so equal float64s always key equally.

// RunKey is the key of one /v1/simulate result (an mkss-run/v1
// document): fingerprint + approach + scenario + fault-plan seed +
// horizon + transient rate.
func RunKey(fingerprint, approach, scenario string, seed uint64, horizonUS int64, transientRate float64) string {
	return strings.Join([]string{
		"run",
		fingerprint,
		approach,
		scenario,
		strconv.FormatUint(seed, 10),
		strconv.FormatInt(horizonUS, 10),
		strconv.FormatFloat(transientRate, 'g', -1, 64),
	}, "|")
}

// SweepUnitKey is the key of one sweep interval's row line — the unit of
// work both the streaming /v1/sweep handler and the fleet coordinator
// compute. offset is the interval's global IntervalOffset (its index in
// the full logical sweep), which pins the per-interval seed derivation;
// lo/hi are the interval's own bounds, not the enclosing request's.
// approaches must already be canonical (repro.ParseApproach output), as
// both producers' are.
func SweepUnitKey(scenario string, seed uint64, setsPerInterval, maxCandidates int, lo, hi float64, offset int, approaches []string) string {
	return strings.Join([]string{
		"sweep",
		scenario,
		strconv.FormatUint(seed, 10),
		strconv.Itoa(setsPerInterval),
		strconv.Itoa(maxCandidates),
		strconv.FormatFloat(lo, 'g', -1, 64),
		strconv.FormatFloat(hi, 'g', -1, 64),
		strconv.Itoa(offset),
		strings.Join(approaches, ","),
	}, "|")
}
