package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(key, val); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key string, want []byte) {
	t.Helper()
	got, ok := s.Get(key)
	if !ok {
		t.Fatalf("Get(%s): miss, want hit", key)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get(%s) = %q, want %q", key, got, want)
	}
}

func segFile(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segment files in %s (err=%v)", dir, err)
	}
	if len(names) > 1 {
		t.Fatalf("expected one segment, found %v", names)
	}
	return names[0]
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	vals := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("run|fp%d|dp|both|2020|100000|0", i)
		v := []byte(fmt.Sprintf(`{"schema":"mkss-run/v1","n":%d}`, i))
		vals[k] = v
		mustPut(t, s, k, v)
	}
	for k, v := range vals {
		mustGet(t, s, k, v)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A second process lifetime over the same directory serves the same
	// bytes — the cross-restart dedupe the store exists for.
	s2 := openT(t, dir, Options{})
	defer s2.Close() //mklint:allow errdrop — read-only reopen in a test
	for k, v := range vals {
		mustGet(t, s2, k, v)
	}
	if st := s2.Stats(); st.Keys != len(vals) {
		t.Fatalf("Stats.Keys = %d, want %d", st.Keys, len(vals))
	}
}

func TestGetMissAndCounters(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	defer s.Close() //mklint:allow errdrop — test cleanup
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	mustPut(t, s, "k", []byte("v"))
	mustGet(t, s, "k", []byte("v"))
	snap := s.Counters().Snapshot()
	if snap.Hits != 1 || snap.Misses != 1 || snap.Writes != 1 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss / 1 write", snap)
	}
}

// TestCrashRecoveryTornTail is the kill-9 scenario: the process dies
// mid-append, leaving a torn frame at the segment tail. Reopen must
// truncate the tear, count the recovery, and keep serving every record
// before it — and the store must accept new writes afterwards.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	mustPut(t, s, "keep-1", []byte("value-one"))
	mustPut(t, s, "keep-2", []byte("value-two"))
	mustPut(t, s, "torn", []byte("this record will be half-written"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate the torn append: chop bytes off the tail, mid-record.
	seg := segFile(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	s2 := openT(t, dir, Options{Log: &log})
	mustGet(t, s2, "keep-1", []byte("value-one"))
	mustGet(t, s2, "keep-2", []byte("value-two"))
	if _, ok := s2.Get("torn"); ok {
		t.Fatal("torn record served after recovery")
	}
	if snap := s2.Counters().Snapshot(); snap.CorruptRecovered != 1 {
		t.Fatalf("CorruptRecovered = %d, want 1", snap.CorruptRecovered)
	}
	if !bytes.Contains(log.Bytes(), []byte("recovered")) {
		t.Fatalf("recovery not logged; log = %q", log.String())
	}

	// The truncated store is append-able again, and the re-put survives
	// a further clean reopen.
	mustPut(t, s2, "torn", []byte("rewritten"))
	mustGet(t, s2, "torn", []byte("rewritten"))
	if err := s2.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	s3 := openT(t, dir, Options{})
	defer s3.Close() //mklint:allow errdrop — test cleanup
	mustGet(t, s3, "torn", []byte("rewritten"))
	if snap := s3.Counters().Snapshot(); snap.CorruptRecovered != 0 {
		t.Fatalf("clean reopen reported %d recoveries", snap.CorruptRecovered)
	}
}

// TestCrashRecoveryFlippedByte corrupts a record body (bit rot rather
// than a torn tail): the scan must stop at the bad CRC and drop
// everything from there.
func TestCrashRecoveryFlippedByte(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	mustPut(t, s, "first", []byte("intact"))
	mustPut(t, s, "second", []byte("to be corrupted"))
	mustPut(t, s, "third", []byte("after the corruption"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := segFile(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Values are base64 in the record payload; keys are plain JSON, so
	// the second record's key is a findable corruption target.
	at := bytes.Index(buf, []byte(`"key":"second"`))
	if at < 0 {
		t.Fatal("corruption target not found in segment")
	}
	buf[at] ^= 0xFF
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the sidecar: its size still matches, and a matching sidecar
	// skips the verifying scan (bit rot under an intact sidecar is caught
	// lazily, at Get). The scan path is what this test pins.
	idxs, _ := filepath.Glob(filepath.Join(dir, "*.idx"))
	for _, idx := range idxs {
		if err := os.Remove(idx); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openT(t, dir, Options{})
	defer s2.Close() //mklint:allow errdrop — test cleanup
	mustGet(t, s2, "first", []byte("intact"))
	for _, k := range []string{"second", "third"} {
		if _, ok := s2.Get(k); ok {
			t.Fatalf("Get(%s) hit after mid-file corruption", k)
		}
	}
	if snap := s2.Counters().Snapshot(); snap.CorruptRecovered != 1 {
		t.Fatalf("CorruptRecovered = %d, want 1", snap.CorruptRecovered)
	}
}

func TestSegmentRollAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 256})
	want := map[string][]byte{}
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("key-%02d", i)
		want[k] = []byte(fmt.Sprintf("value-%02d-padding-padding-padding", i))
		mustPut(t, s, k, want[k])
	}
	// Overwrites supersede, growing dead weight for compaction to drop.
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("key-%02d", i)
		want[k] = []byte(fmt.Sprintf("value-%02d-v2", i))
		mustPut(t, s, k, want[k])
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2 after rolling at 256 bytes", st.Segments)
	}
	if st.Superseded != 6 {
		t.Fatalf("Superseded = %d, want 6", st.Superseded)
	}
	before := st.DiskBytes

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st = s.Stats()
	if st.Segments != 1 || st.Superseded != 0 {
		t.Fatalf("after compact: %+v, want 1 segment, 0 superseded", st)
	}
	if st.DiskBytes >= before {
		t.Fatalf("compaction did not shrink the store: %d -> %d bytes", before, st.DiskBytes)
	}
	if st.Keys != len(want) {
		t.Fatalf("Keys = %d, want %d", st.Keys, len(want))
	}
	for k, v := range want {
		mustGet(t, s, k, v)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(names) != 1 {
		t.Fatalf("superseded segments not deleted: %v", names)
	}

	// The compacted store keeps working: appends, close, reopen.
	mustPut(t, s, "post-compact", []byte("appended"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, dir, Options{MaxSegmentBytes: 256})
	defer s2.Close() //mklint:allow errdrop — test cleanup
	for k, v := range want {
		mustGet(t, s2, k, v)
	}
	mustGet(t, s2, "post-compact", []byte("appended"))
}

// TestIndexSidecarRebuilt: a stale or damaged .idx sidecar must never
// poison the store — it is ignored and the segment rescanned.
func TestIndexSidecarRebuilt(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	mustPut(t, s, "a", []byte("1"))
	mustPut(t, s, "b", []byte("2"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	idxs, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil || len(idxs) == 0 {
		t.Fatalf("Close wrote no index sidecar (err=%v)", err)
	}
	if werr := os.WriteFile(idxs[0], []byte("not json"), 0o644); werr != nil {
		t.Fatal(werr)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close() //mklint:allow errdrop — test cleanup
	mustGet(t, s2, "a", []byte("1"))
	mustGet(t, s2, "b", []byte("2"))
}

func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	mustPut(t, s, "k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Put("k2", []byte("v2")); err != ErrClosed {
		t.Fatalf("Put on closed store: err = %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact on closed store: err = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
