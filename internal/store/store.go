// Package store is the persistent, content-addressed result store —
// the dedupe layer that survives restarts. The analysis LRU (PR 2) and
// request coalescing (PR 4) collapse identical work within one process
// lifetime; this store collapses it across processes: mkservd consults
// it before admission (a hit returns stored bytes with no execution
// slot, byte-identical to a live run), and the fleet coordinator uses it
// as a cross-run sweep cache shared by every worker.
//
// On-disk layout: a directory of append-only segment files
// (000001.seg, 000002.seg, ...), each a sequence of length-prefixed
// frames
//
//	[4B little-endian payload length][4B little-endian CRC32(payload)][payload]
//
// where the payload is one mkss-store/v1 JSON record — a header record
// opening every segment, then one "put" record per stored result (key +
// base64 value). The JSON-in-frame layout keeps the file greppable and
// schema-versioned; the frame layer gives exact corruption detection.
//
// Durability model: appends go straight to the segment file, so a
// process crash can leave at most one torn frame at the tail. Open
// scans every segment, verifies each frame's length and CRC, and
// truncates the file at the first bad frame — dropping the torn tail,
// counting the recovery, and logging it. Everything before the tear is
// served normally. Index sidecars (000001.idx) are a pure optimization:
// a sorted key→offset table written via tmp-then-rename on seal/close,
// loaded only when its recorded size matches the segment (otherwise the
// segment is rescanned), and rebuildable from the segment at any time.
//
// A re-Put of an existing key appends a new record and supersedes the
// old one (last write wins); Compact rewrites the live records into a
// single fresh segment — sorted by key, written tmp-then-rename — and
// deletes the superseded ones.
//
// Concurrency: one Store is safe for concurrent use within a process
// (RWMutex: concurrent Gets, exclusive Puts/Compact). Concurrent
// *processes* on one directory are not coordinated — the intended
// topology is one writer process at a time (sequential server restarts,
// or one fleet coordinator whose in-process workers share the same
// *Store value).
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Schema tags of the on-disk documents.
const (
	Schema      = "mkss-store/v1"
	IndexSchema = "mkss-store-idx/v1"
)

const (
	frameHeader = 8 // 4B length + 4B CRC32
	// maxFrameBytes bounds one record; a length prefix beyond it is
	// corruption, not a huge record.
	maxFrameBytes          = 16 << 20
	defaultMaxSegmentBytes = 4 << 20
)

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("store: closed")

// Options tunes Open. Zero values pick the documented defaults.
type Options struct {
	// MaxSegmentBytes rolls the active segment once it exceeds this size
	// (default 4 MiB). Compaction may produce one larger segment.
	MaxSegmentBytes int64
	// Log receives recovery and maintenance lines; nil discards them.
	Log io.Writer
	// Counters receives hit/miss/write/corrupt-recovered accounting;
	// nil allocates a private set (readable via Counters()).
	Counters *metrics.StoreCounters
}

// record is one frame's JSON payload.
type record struct {
	Schema  string `json:"schema,omitempty"` // header records carry the store schema
	Type    string `json:"type"`             // "header" or "put"
	Segment int    `json:"segment,omitempty"`
	Key     string `json:"key,omitempty"`
	Val     []byte `json:"val,omitempty"` // encoding/json base64s []byte
}

// segment is one on-disk segment file.
type segment struct {
	id   int
	path string
	read *os.File
	size int64 // verified-valid length
	live int   // index entries pointing into this segment
}

// entry locates one live record.
type entry struct {
	seg *segment
	off int64 // frame offset
	n   int   // full frame length
}

// Store is an open result store. Create with Open; always Close.
type Store struct {
	dir      string
	opts     Options
	counters *metrics.StoreCounters

	mu         sync.RWMutex
	index      map[string]entry
	segs       []*segment // ascending id; last is active
	w          *os.File   // append handle on the active segment; nil once closed
	superseded int
}

// Open opens (or creates) the store directory, recovering every segment:
// frames are length- and CRC-verified, and a segment with a torn or
// corrupt tail is truncated at the first bad frame — the recovery is
// counted and logged, everything before it is served.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultMaxSegmentBytes
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if opts.Counters == nil {
		opts.Counters = &metrics.StoreCounters{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, counters: opts.Counters, index: map[string]entry{}}

	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Interrupted tmp-then-rename writes leave stray .tmp files; they
	// were never part of the store.
	if tmps, terr := filepath.Glob(filepath.Join(dir, "*.tmp")); terr == nil {
		for _, t := range tmps {
			if rerr := os.Remove(t); rerr != nil {
				fmt.Fprintf(opts.Log, "store: remove stale %s: %v\n", t, rerr)
			}
		}
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		id, perr := segmentID(name)
		if perr != nil {
			fmt.Fprintf(opts.Log, "store: ignoring %s: %v\n", name, perr)
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		seg, oerr := s.openSegment(id)
		if oerr != nil {
			s.closeFiles()
			return nil, oerr
		}
		s.segs = append(s.segs, seg)
	}
	if len(s.segs) == 0 {
		seg, cerr := s.createSegment(1)
		if cerr != nil {
			return nil, cerr
		}
		s.segs = append(s.segs, seg)
	}
	active := s.segs[len(s.segs)-1]
	w, werr := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if werr != nil {
		s.closeFiles()
		return nil, fmt.Errorf("store: %w", werr)
	}
	s.w = w
	return s, nil
}

// segmentID parses the numeric id out of a NNNNNN.seg path.
func segmentID(path string) (int, error) {
	base := strings.TrimSuffix(filepath.Base(path), ".seg")
	var id int
	if _, err := fmt.Sscanf(base, "%d", &id); err != nil || id <= 0 {
		return 0, fmt.Errorf("not a segment file name")
	}
	return id, nil
}

func segmentPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.seg", id))
}

func indexPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.idx", id))
}

// openSegment loads one existing segment: from its index sidecar when
// the sidecar matches the file size, by a full verifying scan otherwise,
// truncating a corrupt tail in the scan case.
func (s *Store) openSegment(id int) (*segment, error) {
	path := segmentPath(s.dir, id)
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, path: path}
	if ents, ok := s.loadIndexSidecar(id, int64(len(buf))); ok {
		seg.size = int64(len(buf))
		for _, e := range ents {
			s.link(seg, e.Key, e.Off, e.N)
		}
	} else {
		ents, valid, serr := scanFrames(buf)
		if serr != nil {
			return nil, fmt.Errorf("store: segment %s: %w", path, serr)
		}
		if valid < int64(len(buf)) {
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, fmt.Errorf("store: truncate corrupt tail of %s: %w", path, terr)
			}
			s.counters.CorruptRecovered(1)
			fmt.Fprintf(s.opts.Log, "store: recovered %s: dropped %d corrupt tail bytes at offset %d\n",
				path, int64(len(buf))-valid, valid)
		}
		seg.size = valid
		for _, e := range ents {
			s.link(seg, e.Key, e.Off, e.N)
		}
	}
	f, ferr := os.Open(path)
	if ferr != nil {
		return nil, fmt.Errorf("store: %w", ferr)
	}
	seg.read = f
	return seg, nil
}

// link installs one scanned record into the index (last write wins).
func (s *Store) link(seg *segment, key string, off int64, n int) {
	if old, ok := s.index[key]; ok {
		old.seg.live--
		s.superseded++
	}
	s.index[key] = entry{seg: seg, off: off, n: n}
	seg.live++
}

// createSegment writes a fresh segment (header frame only) via
// tmp-then-rename and opens its read handle.
func (s *Store) createSegment(id int) (*segment, error) {
	frame, err := encodeFrame(record{Schema: Schema, Type: "header", Segment: id})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := segmentPath(s.dir, id)
	tmp := path + ".tmp"
	if werr := writeFileSync(tmp, frame); werr != nil {
		return nil, fmt.Errorf("store: %w", werr)
	}
	if rerr := os.Rename(tmp, path); rerr != nil {
		return nil, fmt.Errorf("store: %w", rerr)
	}
	f, ferr := os.Open(path)
	if ferr != nil {
		return nil, fmt.Errorf("store: %w", ferr)
	}
	return &segment{id: id, path: path, read: f, size: int64(len(frame))}, nil
}

// writeFileSync writes data and syncs it before closing — the write half
// of every tmp-then-rename.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		f.Close() //mklint:allow errdrop — the write error is the failure being reported
		return werr
	}
	if serr := f.Sync(); serr != nil {
		f.Close() //mklint:allow errdrop — the sync error is the failure being reported
		return serr
	}
	return f.Close()
}

// Put appends one result under key. An existing key is superseded (the
// new record wins; compaction reclaims the old bytes).
func (s *Store) Put(key string, val []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	frame, err := encodeFrame(record{Type: "put", Key: key, Val: val})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return ErrClosed
	}
	active := s.segs[len(s.segs)-1]
	if active.size+int64(len(frame)) > s.opts.MaxSegmentBytes && active.size > 0 {
		rolled, rerr := s.rollLocked()
		if rerr != nil {
			return rerr
		}
		active = rolled
	}
	off := active.size
	if _, werr := s.w.Write(frame); werr != nil {
		return fmt.Errorf("store: append: %w", werr)
	}
	active.size += int64(len(frame))
	s.link(active, key, off, len(frame))
	s.counters.Write()
	return nil
}

// rollLocked seals the active segment (writing its index sidecar) and
// starts the next one. Caller holds mu.
func (s *Store) rollLocked() (*segment, error) {
	active := s.segs[len(s.segs)-1]
	if err := s.w.Close(); err != nil {
		return nil, fmt.Errorf("store: seal %s: %w", active.path, err)
	}
	s.w = nil
	if err := s.writeIndexSidecarLocked(active); err != nil {
		fmt.Fprintf(s.opts.Log, "store: index sidecar for %s: %v (segment remains scannable)\n", active.path, err)
	}
	next, err := s.createSegment(active.id + 1)
	if err != nil {
		return nil, err
	}
	w, werr := os.OpenFile(next.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if werr != nil {
		return nil, fmt.Errorf("store: %w", werr)
	}
	s.segs = append(s.segs, next)
	s.w = w
	return next, nil
}

// Get returns the stored bytes for key. The returned slice is freshly
// read from disk and owned by the caller.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.index[key]
	if !ok {
		s.counters.Miss()
		return nil, false
	}
	buf := make([]byte, e.n)
	if _, err := e.seg.read.ReadAt(buf, e.off); err != nil {
		fmt.Fprintf(s.opts.Log, "store: read %s@%d: %v\n", e.seg.path, e.off, err)
		s.counters.Miss()
		return nil, false
	}
	rec, n, err := decodeFrame(buf)
	if err != nil || n != e.n || rec.Type != "put" || rec.Key != key {
		fmt.Fprintf(s.opts.Log, "store: record %s@%d failed verification (err=%v)\n", e.seg.path, e.off, err)
		s.counters.Miss()
		return nil, false
	}
	s.counters.Hit()
	return rec.Val, true
}

// Compact rewrites every live record, sorted by key, into one fresh
// segment (tmp-then-rename, with its index sidecar) and deletes the
// superseded segments. The store stays usable throughout; concurrent
// Gets simply wait out the rewrite.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return ErrClosed
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	id := s.segs[len(s.segs)-1].id + 1
	header, err := encodeFrame(record{Schema: Schema, Type: "header", Segment: id})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data := append([]byte(nil), header...)
	type pending struct {
		key string
		off int64
		n   int
	}
	rewritten := make([]pending, 0, len(keys))
	for _, k := range keys {
		e := s.index[k]
		buf := make([]byte, e.n)
		if _, rerr := e.seg.read.ReadAt(buf, e.off); rerr != nil {
			return fmt.Errorf("store: compact read %s@%d: %w", e.seg.path, e.off, rerr)
		}
		rewritten = append(rewritten, pending{key: k, off: int64(len(data)), n: e.n})
		data = append(data, buf...)
	}
	path := segmentPath(s.dir, id)
	tmp := path + ".tmp"
	if werr := writeFileSync(tmp, data); werr != nil {
		return fmt.Errorf("store: %w", werr)
	}
	if rerr := os.Rename(tmp, path); rerr != nil {
		return fmt.Errorf("store: %w", rerr)
	}
	read, ferr := os.Open(path)
	if ferr != nil {
		return fmt.Errorf("store: %w", ferr)
	}
	w, werr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if werr != nil {
		read.Close() //mklint:allow errdrop — the open error is the failure being reported
		return fmt.Errorf("store: %w", werr)
	}

	// Swap: new index over the compacted segment, then drop the old files.
	old := s.segs
	if cerr := s.w.Close(); cerr != nil {
		fmt.Fprintf(s.opts.Log, "store: close superseded append handle: %v\n", cerr)
	}
	seg := &segment{id: id, path: path, read: read, size: int64(len(data)), live: len(rewritten)}
	s.index = make(map[string]entry, len(rewritten))
	for _, p := range rewritten {
		s.index[p.key] = entry{seg: seg, off: p.off, n: p.n}
	}
	s.segs = []*segment{seg}
	s.w = w
	s.superseded = 0
	if ierr := s.writeIndexSidecarLocked(seg); ierr != nil {
		fmt.Fprintf(s.opts.Log, "store: index sidecar for %s: %v (segment remains scannable)\n", path, ierr)
	}
	for _, o := range old {
		if cerr := o.read.Close(); cerr != nil {
			fmt.Fprintf(s.opts.Log, "store: close %s: %v\n", o.path, cerr)
		}
		if rerr := os.Remove(o.path); rerr != nil {
			fmt.Fprintf(s.opts.Log, "store: remove superseded %s: %v\n", o.path, rerr)
		}
		if rerr := os.Remove(indexPath(s.dir, o.id)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			fmt.Fprintf(s.opts.Log, "store: remove superseded %s: %v\n", indexPath(s.dir, o.id), rerr)
		}
	}
	fmt.Fprintf(s.opts.Log, "store: compacted %d segments into %s (%d live records, %d bytes)\n",
		len(old), filepath.Base(path), len(rewritten), len(data))
	return nil
}

// Close seals the store: index sidecars are written for every segment,
// handles are closed. Further operations return ErrClosed (Get reports
// a miss).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	var first error
	for _, seg := range s.segs {
		if err := s.writeIndexSidecarLocked(seg); err != nil && first == nil {
			first = err
		}
	}
	if err := s.w.Sync(); err != nil && first == nil {
		first = err
	}
	if err := s.w.Close(); err != nil && first == nil {
		first = err
	}
	s.w = nil
	s.closeFiles()
	return first
}

// closeFiles closes every read handle (Open failure path and Close).
func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.read != nil {
			if err := seg.read.Close(); err != nil {
				fmt.Fprintf(s.opts.Log, "store: close %s: %v\n", seg.path, err)
			}
			seg.read = nil
		}
	}
}

// Counters exposes the hit/miss/write/recovery accounting.
func (s *Store) Counters() *metrics.StoreCounters { return s.counters }

// Stats is a point-in-time store summary for /healthz and artifacts.
type Stats struct {
	metrics.StoreSnapshot
	Segments   int   `json:"segments"`
	Keys       int   `json:"keys"`
	Superseded int   `json:"superseded"`
	DiskBytes  int64 `json:"disk_bytes"`
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		StoreSnapshot: s.counters.Snapshot(),
		Segments:      len(s.segs),
		Keys:          len(s.index),
		Superseded:    s.superseded,
	}
	for _, seg := range s.segs {
		st.DiskBytes += seg.size
	}
	return st
}

// ---- frame encoding ----

var errPartialFrame = errors.New("partial frame")

// encodeFrame wraps rec's JSON in the length+CRC frame.
func encodeFrame(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// decodeFrame verifies and decodes the frame at the head of buf,
// returning the record and the frame's total length.
func decodeFrame(buf []byte) (record, int, error) {
	var rec record
	if len(buf) < frameHeader {
		return rec, 0, errPartialFrame
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	if n <= 0 || n > maxFrameBytes {
		return rec, 0, fmt.Errorf("implausible frame length %d", n)
	}
	if len(buf) < frameHeader+n {
		return rec, 0, errPartialFrame
	}
	payload := buf[frameHeader : frameHeader+n]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(buf[4:8]) {
		return rec, 0, errors.New("CRC mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, fmt.Errorf("decode record: %w", err)
	}
	return rec, frameHeader + n, nil
}

// scanEntry is one live record found by a scan.
type scanEntry struct {
	Key string `json:"k"`
	Off int64  `json:"o"`
	N   int    `json:"n"`
}

// scanFrames walks buf frame by frame, returning the put records and the
// length of the valid prefix. A torn or corrupt frame ends the scan (its
// offset is the truncation point); a header carrying a foreign schema is
// a hard error — that is a format we must not rewrite.
func scanFrames(buf []byte) ([]scanEntry, int64, error) {
	var ents []scanEntry
	off := 0
	for off < len(buf) {
		rec, n, err := decodeFrame(buf[off:])
		if err != nil {
			return ents, int64(off), nil
		}
		switch rec.Type {
		case "header":
			if rec.Schema != Schema {
				return nil, 0, fmt.Errorf("unsupported store schema %q (want %s)", rec.Schema, Schema)
			}
		case "put":
			ents = append(ents, scanEntry{Key: rec.Key, Off: int64(off), N: n})
		}
		off += n
	}
	return ents, int64(off), nil
}

// ---- index sidecars ----

// indexDoc is the NNNNNN.idx sidecar: the segment's live records sorted
// by key, valid only while the segment is exactly Size bytes.
type indexDoc struct {
	Schema  string      `json:"schema"`
	Segment int         `json:"segment"`
	Size    int64       `json:"size"`
	Entries []scanEntry `json:"entries"`
}

// loadIndexSidecar loads NNNNNN.idx when it matches the segment size.
func (s *Store) loadIndexSidecar(id int, size int64) ([]scanEntry, bool) {
	buf, err := os.ReadFile(indexPath(s.dir, id))
	if err != nil {
		return nil, false
	}
	var doc indexDoc
	if jerr := json.Unmarshal(buf, &doc); jerr != nil || doc.Schema != IndexSchema || doc.Segment != id || doc.Size != size {
		return nil, false
	}
	return doc.Entries, true
}

// writeIndexSidecarLocked writes seg's sorted key→offset sidecar via
// tmp-then-rename. Caller holds mu.
func (s *Store) writeIndexSidecarLocked(seg *segment) error {
	ents := make([]scanEntry, 0, seg.live)
	for k, e := range s.index {
		if e.seg == seg {
			ents = append(ents, scanEntry{Key: k, Off: e.off, N: e.n})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Key < ents[j].Key })
	buf, err := json.Marshal(indexDoc{Schema: IndexSchema, Segment: seg.id, Size: seg.size, Entries: ents})
	if err != nil {
		return err
	}
	path := indexPath(s.dir, seg.id)
	tmp := path + ".tmp"
	if werr := writeFileSync(tmp, buf); werr != nil {
		return werr
	}
	return os.Rename(tmp, path)
}
