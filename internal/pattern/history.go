package pattern

import "fmt"

// History is the sliding outcome window of one task's most recent k jobs,
// used to compute the flexibility degree (Definition 1) at each release.
//
// The window starts as all-effective: a freshly started task has no
// pending misses to amortize, which is exactly how the paper's examples
// behave (τ1=(5,4,3,2,4) starts with FD 2, τ2=(10,10,3,1,2) with FD 1 —
// footnote 1 and Figure 2).
type History struct {
	m, k int
	// ring holds the last k outcomes; ring[(head-1) mod k] is the most
	// recent. true = effective (successfully completed by its deadline).
	ring []bool
	head int
	// recorded counts total outcomes ever recorded (diagnostics only).
	recorded int
}

// NewHistory builds an all-effective history for constraint (m,k).
func NewHistory(m, k int) *History {
	if k < 1 || m < 1 || m > k {
		panic(fmt.Sprintf("pattern: invalid (m,k) = (%d,%d)", m, k))
	}
	h := &History{m: m, k: k, ring: make([]bool, k)}
	for i := range h.ring {
		h.ring[i] = true
	}
	return h
}

// M and K expose the constraint.
func (h *History) M() int { return h.m }
func (h *History) K() int { return h.k }

// Record appends one job outcome (true = effective).
func (h *History) Record(effective bool) {
	h.ring[h.head] = effective
	h.head = (h.head + 1) % h.k
	h.recorded++
}

// Recorded returns how many outcomes have ever been recorded.
func (h *History) Recorded() int { return h.recorded }

// Meets returns the number of effective outcomes in the window.
func (h *History) Meets() int {
	c := 0
	for _, b := range h.ring {
		if b {
			c++
		}
	}
	return c
}

// Violated reports whether the current window already breaks (m,k).
func (h *History) Violated() bool { return h.Meets() < h.m }

// outcome returns the outcome at position pos, where pos = 1 is the most
// recent.
func (h *History) outcome(pos int) bool {
	idx := (h.head - pos + 2*h.k) % h.k
	return h.ring[idx]
}

// FlexibilityDegree implements Definition 1: the number of consecutive
// deadline misses the task can still tolerate starting from the *next*
// job. With l_m = position (1 = most recent) of the m-th most recent
// effective outcome, FD = k − l_m; if fewer than m effective outcomes
// remain in the window the task is already in violation and FD is 0 (the
// next job is unconditionally mandatory — the scheme's best effort).
//
// Derivation: after x consecutive future misses, the window of the last k
// outcomes retains the current effective outcomes shifted x positions
// older; the constraint survives iff the m-th most recent effective
// outcome is still inside the window, i.e. l_m + x <= k.
func (h *History) FlexibilityDegree() int {
	seen := 0
	for pos := 1; pos <= h.k; pos++ {
		if h.outcome(pos) {
			seen++
			if seen == h.m {
				return h.k - pos
			}
		}
	}
	return 0
}

// NextMandatory reports whether the next job must be mandatory (FD == 0).
func (h *History) NextMandatory() bool { return h.FlexibilityDegree() == 0 }

// Snapshot returns the window ordered oldest -> newest (for tests and
// trace output).
func (h *History) Snapshot() []bool {
	out := make([]bool, h.k)
	for pos := 1; pos <= h.k; pos++ {
		out[h.k-pos] = h.outcome(pos)
	}
	return out
}

// Clone returns an independent copy.
func (h *History) Clone() *History {
	c := &History{m: h.m, k: h.k, ring: make([]bool, h.k), head: h.head, recorded: h.recorded}
	copy(c.ring, h.ring)
	return c
}

// String renders the window oldest->newest as 1/0 digits plus the FD, e.g.
// "1101 (m=2,k=4, FD=1)".
func (h *History) String() string {
	s := make([]byte, h.k)
	for i, b := range h.Snapshot() {
		if b {
			s[i] = '1'
		} else {
			s[i] = '0'
		}
	}
	return fmt.Sprintf("%s (m=%d,k=%d, FD=%d)", s, h.m, h.k, h.FlexibilityDegree())
}
