package pattern

import (
	"testing"
	"testing/quick"
)

func TestRPatternEq1(t *testing.T) {
	// Eq. (1): pi_ij = 1 iff 1 <= j mod k <= m, for (m,k) = (2,4):
	// jobs 1,2 mandatory; 3,4 optional; repeats.
	want := []bool{true, true, false, false, true, true, false, false}
	got := MandatorySlice(RPattern, 8, 2, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("R(2,4) job %d = %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestRPatternFig5(t *testing.T) {
	// tau1=(10,10,3,2,3): jobs 1,2 mandatory, 3 optional (paper Fig. 5:
	// backups at t=0 and t=10 only within [0,30)).
	got := MandatorySlice(RPattern, 3, 2, 3)
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("R(2,3) job %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	// tau2=(15,15,8,1,2): job 1 mandatory, job 2 optional.
	if !Mandatory(RPattern, 1, 1, 2) || Mandatory(RPattern, 2, 1, 2) {
		t.Error("R(1,2) wrong")
	}
}

func TestRPatternCounts(t *testing.T) {
	// Over any k consecutive jobs, the R-pattern marks exactly m mandatory.
	for _, mk := range [][2]int{{1, 2}, {2, 3}, {2, 4}, {3, 7}, {19, 20}} {
		m, k := mk[0], mk[1]
		if got := CountMandatory(RPattern, k, m, k); got != m {
			t.Errorf("R(%d,%d): %d mandatory in one window, want %d", m, k, got, m)
		}
	}
}

func TestMHardEqualsAllMandatory(t *testing.T) {
	for j := 1; j <= 10; j++ {
		if !Mandatory(RPattern, j, 3, 3) || !Mandatory(EPattern, j, 3, 3) {
			t.Errorf("m==k job %d must be mandatory", j)
		}
	}
}

func TestEPatternSpread(t *testing.T) {
	// E(2,4) should mark jobs 1 and 3 (spread), not 1 and 2 (deeply red).
	got := MandatorySlice(EPattern, 8, 2, 4)
	want := []bool{true, false, true, false, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("E(2,4) job %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	// Each window of k jobs still contains exactly m mandatory ones.
	for _, mk := range [][2]int{{1, 2}, {2, 3}, {2, 4}, {3, 7}, {5, 9}} {
		m, k := mk[0], mk[1]
		if got := CountMandatory(EPattern, k, m, k); got != m {
			t.Errorf("E(%d,%d): %d mandatory per window, want %d", m, k, got, m)
		}
	}
}

func TestPatternSatisfiesMK(t *testing.T) {
	// Executing exactly the pattern's mandatory jobs satisfies (m,k).
	for _, kind := range []Kind{RPattern, EPattern} {
		for m := 1; m < 6; m++ {
			for k := m + 1; k <= 8; k++ {
				seq := MandatorySlice(kind, 5*k, m, k)
				if !Satisfies(seq, m, k) {
					t.Errorf("%v(%d,%d) does not satisfy its own constraint", kind, m, k)
				}
			}
		}
	}
}

func TestMandatoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for job index 0")
		}
	}()
	Mandatory(RPattern, 0, 1, 2)
}

func TestKindString(t *testing.T) {
	if RPattern.String() != "R-pattern" || EPattern.String() != "E-pattern" {
		t.Error("Kind strings")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestFirstViolation(t *testing.T) {
	cases := []struct {
		seq  []bool
		m, k int
		want int
	}{
		{[]bool{true, true, false, false}, 2, 4, -1},
		{[]bool{false, false}, 2, 4, -1},       // implicit effective prefix
		{[]bool{false, false, false}, 2, 4, 2}, // third miss kills (2,4)
		{[]bool{true, false, true, false}, 1, 2, -1},
		{[]bool{false, false}, 1, 2, 1},
		{[]bool{}, 1, 2, -1},
	}
	for i, c := range cases {
		if got := FirstViolation(c.seq, c.m, c.k); got != c.want {
			t.Errorf("case %d: FirstViolation = %d, want %d", i, got, c.want)
		}
	}
}

func TestSatisfiesMatchesNaive(t *testing.T) {
	naive := func(seq []bool, m, k int) bool {
		for end := 0; end < len(seq); end++ {
			meets := 0
			for p := end - k + 1; p <= end; p++ {
				if p < 0 || seq[p] {
					meets++
				}
			}
			if meets < m {
				return false
			}
		}
		return true
	}
	f := func(bits []bool, mr, kr uint8) bool {
		k := int(kr%8) + 1
		m := int(mr)%k + 1
		return Satisfies(bits, m, k) == naive(bits, m, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
