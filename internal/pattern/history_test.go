package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestInitialFDMatchesPaper(t *testing.T) {
	// Footnote 1 / Fig. 2 of the paper: with fresh (all-effective)
	// history, tau1 with (2,4) can tolerate two more misses, tau2 with
	// (1,2) can tolerate one.
	if fd := NewHistory(2, 4).FlexibilityDegree(); fd != 2 {
		t.Errorf("FD(2,4 fresh) = %d, want 2", fd)
	}
	if fd := NewHistory(1, 2).FlexibilityDegree(); fd != 1 {
		t.Errorf("FD(1,2 fresh) = %d, want 1", fd)
	}
}

func TestFDHardTask(t *testing.T) {
	// m == k leaves no slack ever.
	h := NewHistory(3, 3)
	if fd := h.FlexibilityDegree(); fd != 0 {
		t.Errorf("FD(3,3) = %d, want 0", fd)
	}
	if !h.NextMandatory() {
		t.Error("hard task's next job must be mandatory")
	}
}

func TestFDAfterMisses(t *testing.T) {
	h := NewHistory(2, 4) // fresh: 1111, FD=2
	h.Record(false)       // 1110
	if fd := h.FlexibilityDegree(); fd != 1 {
		t.Errorf("after 1 miss FD = %d, want 1", fd)
	}
	h.Record(false) // 1100
	if fd := h.FlexibilityDegree(); fd != 0 {
		t.Errorf("after 2 misses FD = %d, want 0", fd)
	}
	h.Record(true) // 1001
	if fd := h.FlexibilityDegree(); fd != 0 {
		t.Errorf("1001 FD = %d, want 0 (second meet is 4 back)", fd)
	}
	h.Record(true) // 0011
	if fd := h.FlexibilityDegree(); fd != 2 {
		t.Errorf("0011 FD = %d, want 2", fd)
	}
}

func TestFDSteadyStateSkipExecute(t *testing.T) {
	// The selective policy for (1,2): skip (FD 1), execute, skip, ... —
	// FD must alternate 1,0? No: executing only FD==1 jobs means we skip
	// when FD>=2 — for (1,2) FD is never 2; at FD==1 the job is eligible
	// and executed, keeping FD at 1 forever.
	h := NewHistory(1, 2)
	for i := 0; i < 10; i++ {
		if fd := h.FlexibilityDegree(); fd != 1 {
			t.Fatalf("step %d: FD = %d, want 1", i, fd)
		}
		h.Record(true) // eligible job executed successfully
	}
}

func TestFDSelectivePatternFor24(t *testing.T) {
	// (2,4) under the paper's policy: fresh FD=2 -> skip; then FD=1 ->
	// execute; if successful the next FD is 1 again (window 1101 ->
	// l_2 = 3), execute; then FD=2 -> skip. Pattern: skip,exec,exec,skip...
	h := NewHistory(2, 4)
	var got []int
	for i := 0; i < 8; i++ {
		fd := h.FlexibilityDegree()
		got = append(got, fd)
		if fd >= 2 {
			h.Record(false) // skipped
		} else {
			h.Record(true) // executed successfully (FD==1 or mandatory)
		}
	}
	want := []int{2, 1, 1, 2, 1, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FD sequence %v, want %v", got, want)
		}
	}
}

func TestViolatedAndMeets(t *testing.T) {
	h := NewHistory(2, 3)
	if h.Violated() || h.Meets() != 3 {
		t.Error("fresh history wrong")
	}
	h.Record(false)
	h.Record(false)
	if !h.Violated() {
		t.Error("2 misses in (2,3) window must violate")
	}
	if h.Meets() != 1 {
		t.Errorf("Meets = %d, want 1", h.Meets())
	}
	if h.FlexibilityDegree() != 0 {
		t.Error("violated history must force mandatory")
	}
}

func TestSnapshotAndString(t *testing.T) {
	h := NewHistory(2, 4)
	h.Record(false)
	h.Record(true)
	snap := h.Snapshot()
	want := []bool{true, true, false, true} // oldest -> newest
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", snap, want)
		}
	}
	if s := h.String(); !strings.HasPrefix(s, "1101") {
		t.Errorf("String = %q", s)
	}
	if h.Recorded() != 2 {
		t.Errorf("Recorded = %d", h.Recorded())
	}
}

func TestCloneIndependent(t *testing.T) {
	h := NewHistory(1, 3)
	c := h.Clone()
	c.Record(false)
	if h.FlexibilityDegree() != c.FlexibilityDegree()+0 && h.Recorded() != 0 {
		t.Error("clone mutated original")
	}
	if h.Recorded() != 0 || c.Recorded() != 1 {
		t.Error("clone shares state")
	}
}

func TestNewHistoryPanics(t *testing.T) {
	for _, mk := range [][2]int{{0, 2}, {3, 2}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistory(%d,%d) must panic", mk[0], mk[1])
				}
			}()
			NewHistory(mk[0], mk[1])
		}()
	}
}

// Property: obeying the FD rule — execute whenever FD == 0, free choice
// otherwise — never violates the (m,k) constraint.
func TestFDPolicyNeverViolates(t *testing.T) {
	f := func(choices []bool, mr, kr uint8) bool {
		k := int(kr%8) + 2
		m := int(mr)%(k-1) + 1
		h := NewHistory(m, k)
		var outcomes []bool
		for _, c := range choices {
			exec := h.NextMandatory() || c
			h.Record(exec)
			outcomes = append(outcomes, exec)
			if h.Violated() {
				return false
			}
		}
		return Satisfies(outcomes, m, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: FD equals the largest x such that recording x misses does not
// violate the constraint (brute-force cross-check of Definition 1).
func TestFDMatchesBruteForce(t *testing.T) {
	f := func(seed []bool, mr, kr uint8) bool {
		k := int(kr%6) + 2
		m := int(mr)%(k-1) + 1
		h := NewHistory(m, k)
		for _, b := range seed {
			// Keep history valid: record a meet when mandatory.
			h.Record(h.NextMandatory() || b)
		}
		fd := h.FlexibilityDegree()
		// Brute force: misses until violation.
		bf := 0
		probe := h.Clone()
		for bf <= k {
			probe.Record(false)
			if probe.Violated() {
				break
			}
			bf++
		}
		return fd == bf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
