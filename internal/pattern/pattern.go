// Package pattern implements the (m,k)-firm machinery: static
// mandatory/optional partitions (the deeply-red R-pattern of Eq. (1) and
// the evenly-distributed E-pattern used as an ablation), the per-task
// outcome history window, and the flexibility degree of Definition 1 that
// drives the paper's selective scheme.
package pattern

import "fmt"

// Kind selects a static partitioning pattern.
type Kind int

const (
	// RPattern is the deeply-red pattern of Koren & Shasha (Eq. (1)):
	// job j is mandatory iff 1 <= j mod k <= m.
	RPattern Kind = iota
	// EPattern is Ramanathan's evenly-distributed pattern:
	// job j is mandatory iff j == ceil(ceil((j-1)*m/k) * k/m) ... i.e. the
	// mandatory jobs are spread uniformly. Used for ablation benches.
	EPattern
)

func (k Kind) String() string {
	switch k {
	case RPattern:
		return "R-pattern"
	case EPattern:
		return "E-pattern"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Mandatory reports whether the j-th job (1-based, as in the paper) of a
// task with constraint (m,k) is mandatory under the pattern.
func Mandatory(kind Kind, j, m, k int) bool {
	if j < 1 {
		panic("pattern: job index must be >= 1")
	}
	if m >= k {
		return true
	}
	switch kind {
	case RPattern:
		// Eq. (1): pi_ij = 1 iff 1 <= j mod k <= m. Note j mod k == 0
		// (j a multiple of k) is optional because m < k.
		r := j % k
		return 1 <= r && r <= m
	case EPattern:
		// Job j (1-based) is mandatory iff
		// j-1 == ceil(floor((j-1)*m/k) * k/m)  (Ramanathan's spread rule).
		x := (j - 1) % k // pattern repeats every k jobs
		fl := x * m / k
		ce := (fl*k + m - 1) / m
		return x == ce
	default:
		panic("pattern: unknown kind")
	}
}

// MandatorySlice returns the first n pattern bits (index 0 = job 1).
func MandatorySlice(kind Kind, n, m, k int) []bool {
	out := make([]bool, n)
	for j := 1; j <= n; j++ {
		out[j-1] = Mandatory(kind, j, m, k)
	}
	return out
}

// CountMandatory returns how many of the first n jobs are mandatory.
func CountMandatory(kind Kind, n, m, k int) int {
	c := 0
	for j := 1; j <= n; j++ {
		if Mandatory(kind, j, m, k) {
			c++
		}
	}
	return c
}

// Satisfies reports whether a 0/1 outcome sequence (true = effective)
// satisfies the (m,k) constraint: every window of k consecutive outcomes
// contains at least m trues. Windows are only checked once full, matching
// the paper's "any k_i consecutive jobs" over the realized sequence with
// an implicit all-effective prefix (a prefix of fewer than k jobs cannot
// violate the constraint when preceded by effective history).
func Satisfies(outcomes []bool, m, k int) bool {
	return FirstViolation(outcomes, m, k) < 0
}

// FirstViolation returns the index (0-based) of the last job of the first
// violating k-window, or -1 if the sequence satisfies (m,k). The sequence
// is treated as preceded by an infinite all-effective history, so windows
// that begin before index 0 count their missing prefix as effective.
func FirstViolation(outcomes []bool, m, k int) int {
	meets := 0 // number of trues in the current window
	for i, ok := range outcomes {
		if ok {
			meets++
		}
		if i >= k {
			if outcomes[i-k] {
				meets--
			}
		}
		// Window covering positions (i-k+1 .. i); positions < 0 are
		// implicit effective history.
		implicit := k - 1 - i
		if implicit < 0 {
			implicit = 0
		}
		if meets+implicit < m {
			return i
		}
	}
	return -1
}
