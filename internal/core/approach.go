// Package core implements the paper's scheduling approaches as sim.Policy
// plug-ins:
//
//   - MKSS_ST: static R-pattern, main and backup copies of every mandatory
//     job run concurrently without procrastination — the evaluation's
//     energy reference (§V).
//   - MKSS_DP: static R-pattern with the dual-priority/preference-oriented
//     procrastination of Haque et al. [7] and Begam et al. [8]: mains
//     alternate across the two processors, each backup runs on the other
//     processor postponed by the promotion interval Yi = Di − Ri, and a
//     completed main cancels its backup (§III, Figure 1).
//   - Greedy: the §III straw-man — dynamic (m,k) patterns with *all*
//     optional jobs executed greedily on the primary processor (Figure 3).
//   - MKSS_selective: the paper's contribution (Algorithm 1) — dynamic
//     patterns where only optional jobs with flexibility degree 1 are
//     selected, alternating between the processors, with backups postponed
//     by the offline release-postponement intervals θi (§IV).
package core

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/timeu"
)

// Approach enumerates the schemes compared in Figure 6 (plus the §III
// greedy straw-man used in the motivation and our ablations).
type Approach int

const (
	// ST is MKSS_ST, the static reference.
	ST Approach = iota
	// DP is MKSS_DP, static pattern + dual-priority procrastination.
	DP
	// Greedy is the §III dynamic-pattern straw-man.
	Greedy
	// Selective is MKSS_selective, Algorithm 1.
	Selective
	// DPBackground is an extension beyond the paper: classic dual-
	// priority in which backups also execute in a background band
	// *before* their promotion instant, soaking up idle time. It
	// quantifies how much energy the ALAP-procrastination reading of the
	// DP baseline (which Figure 1's 15-unit schedule confirms) saves
	// over textbook dual-priority.
	DPBackground
)

// approachNames is the one canonical table behind String, ParseApproach
// and the text (un)marshalers: the canonical report name first, then the
// accepted aliases. Matching is case-insensitive; every cmd/ flag parser
// goes through ParseApproach rather than keeping its own switch.
var approachNames = []struct {
	a         Approach
	canonical string
	aliases   []string
}{
	{ST, "MKSS-ST", []string{"st"}},
	{DP, "MKSS-DP", []string{"dp"}},
	{Greedy, "MKSS-greedy", []string{"greedy"}},
	{Selective, "MKSS-selective", []string{"selective", "sel"}},
	{DPBackground, "MKSS-DP-background", []string{"dp-background", "dpbg"}},
}

func (a Approach) String() string {
	for _, row := range approachNames {
		if row.a == a {
			return row.canonical
		}
	}
	return fmt.Sprintf("Approach(%d)", int(a))
}

// MarshalText renders the canonical name, so Approach round-trips through
// JSON and flag values.
func (a Approach) MarshalText() ([]byte, error) {
	for _, row := range approachNames {
		if row.a == a {
			return []byte(row.canonical), nil
		}
	}
	return nil, fmt.Errorf("core: unknown approach %d", int(a))
}

// UnmarshalText parses an approach name via ParseApproach.
func (a *Approach) UnmarshalText(text []byte) error {
	parsed, err := ParseApproach(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// ParseApproach maps a name — canonical, alias, or underscore variant, in
// any case — to its Approach. It is the inverse of String.
func ParseApproach(s string) (Approach, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	name = strings.ReplaceAll(name, "_", "-")
	for _, row := range approachNames {
		if name == strings.ToLower(row.canonical) {
			return row.a, nil
		}
		for _, al := range row.aliases {
			if name == al {
				return row.a, nil
			}
		}
	}
	return 0, fmt.Errorf("core: unknown approach %q (want one of %s)", s, strings.Join(ApproachNames(), ", "))
}

// ApproachNames lists the canonical approach names in table order, for
// flag usage strings and error messages.
func ApproachNames() []string {
	out := make([]string, len(approachNames))
	for i, row := range approachNames {
		out[i] = row.canonical
	}
	return out
}

// Approaches lists the paper's approaches in presentation order.
func Approaches() []Approach { return []Approach{ST, DP, Greedy, Selective} }

// Extensions lists the approaches this repository adds beyond the paper.
func Extensions() []Approach { return []Approach{DPBackground} }

// Options tunes policy construction; the zero value reproduces the paper.
type Options struct {
	// Pattern is the static partition used by ST/DP and for the θ
	// analysis; the paper uses the R-pattern.
	Pattern pattern.Kind
	// HyperperiodCap bounds the θ analysis (see postpone.Options).
	HyperperiodCap timeu.Time
	// NoAlternation disables the selective scheme's primary/spare
	// alternation of eligible optional jobs (ablation: everything goes to
	// the primary's OJQ).
	NoAlternation bool
	// FDThreshold is the flexibility-degree eligibility threshold of the
	// selective scheme; optional jobs with 1 <= FD <= FDThreshold are
	// selected. Zero means the paper's value, 1. (Ablation knob.)
	FDThreshold int
	// UsePromotionForTheta makes the selective scheme postpone backups by
	// Yi instead of θi (ablation: isolates the benefit of Defs. 2–5).
	UsePromotionForTheta bool
	// Offline, when non-nil, supplies memoized offline analyses (promotion
	// intervals, θ, pattern tables) for the set under simulation, so
	// repeated runs of the same set skip the per-Init recomputation. The
	// products must have been derived with the same Pattern and
	// HyperperiodCap, from a set fingerprint-identical to the one
	// simulated; repro.Runner guarantees both.
	Offline *analysis.Products
}

// New constructs the sim.Policy for an approach.
func New(a Approach, opts Options) (sim.Policy, error) {
	if opts.FDThreshold == 0 {
		opts.FDThreshold = 1
	}
	switch a {
	case ST:
		return &stPolicy{opts: opts}, nil
	case DP:
		return &dpPolicy{opts: opts}, nil
	case Greedy:
		return &greedyPolicy{opts: opts}, nil
	case Selective:
		return &selectivePolicy{opts: opts}, nil
	case DPBackground:
		return &dpPolicy{opts: opts, background: true}, nil
	default:
		return nil, fmt.Errorf("core: unknown approach %d", int(a))
	}
}

// MustNew is New for approaches known at compile time.
func MustNew(a Approach, opts Options) sim.Policy {
	p, err := New(a, opts)
	if err != nil {
		panic(err)
	}
	return p
}
