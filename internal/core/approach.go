// Package core names the paper's scheduling approaches and glues them to
// the policy registry. The concrete sim.Policy implementations live under
// internal/sim/policy ({static, dynamic, dbp} — see that package's doc
// for the plug-in contract); core owns the Approach enum, the canonical
// name table behind every flag parser and report, and the Options pass-
// through, so callers keep one stable construction surface while policies
// come and go underneath by registration:
//
//   - MKSS_ST: static R-pattern, main and backup copies of every mandatory
//     job run concurrently without procrastination — the evaluation's
//     energy reference (§V).
//   - MKSS_DP: static R-pattern with the dual-priority/preference-oriented
//     procrastination of Haque et al. [7] and Begam et al. [8] (§III,
//     Figure 1).
//   - Greedy: the §III straw-man — dynamic (m,k) patterns with *all*
//     optional jobs executed greedily on the primary processor (Figure 3).
//   - MKSS_selective: the paper's contribution (Algorithm 1) — dynamic
//     patterns where only optional jobs with flexibility degree 1 are
//     selected, alternating between the processors, with backups postponed
//     by the offline release-postponement intervals θi (§IV).
//   - MKSS_DP-background and MKSS-DBP: extensions beyond the paper (see
//     the constants below).
package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/sim/policy"
	"repro/internal/sim/policy/dbp"
	"repro/internal/sim/policy/dynamic"
	"repro/internal/sim/policy/static"
)

// Approach enumerates the schemes compared in Figure 6 (plus the §III
// greedy straw-man used in the motivation and our ablations).
type Approach int

const (
	// ST is MKSS_ST, the static reference.
	ST Approach = iota
	// DP is MKSS_DP, static pattern + dual-priority procrastination.
	DP
	// Greedy is the §III dynamic-pattern straw-man.
	Greedy
	// Selective is MKSS_selective, Algorithm 1.
	Selective
	// DPBackground is an extension beyond the paper: classic dual-
	// priority in which backups also execute in a background band
	// *before* their promotion instant, soaking up idle time. It
	// quantifies how much energy the ALAP-procrastination reading of the
	// DP baseline (which Figure 1's 15-unit schedule confirms) saves
	// over textbook dual-priority.
	DPBackground
	// DBP is distance-based priority, the canonical dynamic (m,k)
	// policy (Hamdaoui & Ramanathan; Goossens arXiv:0805.0200) the paper
	// never compares against: every job is prioritized by its distance
	// to failure, jobs one miss from violation are promoted to
	// standby-sparing mandatory pairs, and nothing is skipped outright.
	DBP
)

// approachNames is the one canonical table behind String, ParseApproach
// and the text (un)marshalers: the canonical report name first, then the
// accepted aliases. Matching is case-insensitive; every cmd/ flag parser
// goes through ParseApproach rather than keeping its own switch. The
// canonical names are the policy registry's registration names, so an
// Approach is constructible iff it is parseable.
var approachNames = []struct {
	a         Approach
	canonical string
	aliases   []string
}{
	{ST, static.NameST, []string{"st"}},
	{DP, static.NameDP, []string{"dp"}},
	{Greedy, dynamic.NameGreedy, []string{"greedy"}},
	{Selective, dynamic.NameSelective, []string{"selective", "sel"}},
	{DPBackground, static.NameDPBackground, []string{"dp-background", "dpbg"}},
	{DBP, dbp.Name, []string{"dbp", "distance"}},
}

func (a Approach) String() string {
	for _, row := range approachNames {
		if row.a == a {
			return row.canonical
		}
	}
	return fmt.Sprintf("Approach(%d)", int(a))
}

// MarshalText renders the canonical name, so Approach round-trips through
// JSON and flag values.
func (a Approach) MarshalText() ([]byte, error) {
	for _, row := range approachNames {
		if row.a == a {
			return []byte(row.canonical), nil
		}
	}
	return nil, fmt.Errorf("core: unknown approach %d", int(a))
}

// UnmarshalText parses an approach name via ParseApproach.
func (a *Approach) UnmarshalText(text []byte) error {
	parsed, err := ParseApproach(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// ParseApproach maps a name — canonical, alias, or underscore variant, in
// any case — to its Approach. It is the inverse of String.
func ParseApproach(s string) (Approach, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	name = strings.ReplaceAll(name, "_", "-")
	for _, row := range approachNames {
		if name == strings.ToLower(row.canonical) {
			return row.a, nil
		}
		for _, al := range row.aliases {
			if name == al {
				return row.a, nil
			}
		}
	}
	return 0, fmt.Errorf("core: unknown approach %q (want one of %s)", s, strings.Join(ApproachNames(), ", "))
}

// ApproachNames lists the canonical approach names in table order, for
// flag usage strings and error messages.
func ApproachNames() []string {
	out := make([]string, len(approachNames))
	for i, row := range approachNames {
		out[i] = row.canonical
	}
	return out
}

// Approaches lists the paper's approaches in presentation order.
func Approaches() []Approach { return []Approach{ST, DP, Greedy, Selective} }

// Extensions lists the approaches this repository adds beyond the paper.
func Extensions() []Approach { return []Approach{DPBackground, DBP} }

// Options tunes policy construction; the zero value reproduces the paper.
// The struct is defined by the policy registry (internal/sim/policy) and
// aliased here so existing call sites keep compiling.
type Options = policy.Options

// New constructs the sim.Policy for an approach, by canonical name, from
// the policy registry.
func New(a Approach, opts Options) (sim.Policy, error) {
	for _, row := range approachNames {
		if row.a == a {
			return policy.New(row.canonical, opts)
		}
	}
	return nil, fmt.Errorf("core: unknown approach %d", int(a))
}

// MustNew is New for approaches known at compile time.
func MustNew(a Approach, opts Options) sim.Policy {
	p, err := New(a, opts)
	if err != nil {
		panic(err)
	}
	return p
}
