package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/task"
)

// Golden schedule tests: beyond matching the paper's energy totals, these
// pin the exact execution segments of the motivation figures so any
// change to dispatch order, postponement or cancellation semantics shows
// up as a diff, not just as a coincidentally-equal energy sum.

// segString renders segments sorted by (start, proc) in a compact,
// diff-friendly form: "proc:Jt,i[start,end)c" with c marking cancellation.
func segString(segs []sim.Segment) string {
	sorted := append([]sim.Segment(nil), segs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0; j-- {
			a, b := sorted[j-1], sorted[j]
			if b.Start < a.Start || (b.Start == a.Start && b.Proc < a.Proc) {
				sorted[j-1], sorted[j] = b, a
			} else {
				break
			}
		}
	}
	var parts []string
	for _, s := range sorted {
		prime := ""
		if s.Copy == task.Backup {
			prime = "'"
		}
		c := ""
		if s.Canceled {
			c = "x"
		}
		parts = append(parts, fmt.Sprintf("P%d:J%s%d,%d[%v,%v)%s",
			s.Proc, prime, s.TaskID+1, s.Index, s.Start, s.End, c))
	}
	return strings.Join(parts, " ")
}

func TestGoldenFig1Schedule(t *testing.T) {
	r := runApproach(t, fig1Set(), DP, 20)
	want := strings.Join([]string{
		"P0:J1,1[0ms,3ms)",   // main τ1 job 1
		"P1:J2,1[0ms,1ms)",   // main τ2 starts on the spare
		"P1:J'1,1[1ms,3ms)x", // backup τ'1 promoted at 1, canceled at 3
		"P0:J'2,1[3ms,5ms)x", // backup τ'2 runs after J11, canceled at 5
		"P1:J2,1[3ms,5ms)",   // main τ2 resumes and completes
		"P0:J1,2[5ms,8ms)",   // main τ1 job 2
		"P1:J'1,2[6ms,8ms)x", // backup τ'1 job 2, canceled at 8
	}, " ")
	if got := segString(r.Trace); got != want {
		t.Errorf("Fig.1 schedule drifted:\n got  %s\n want %s", got, want)
	}
}

func TestGoldenFig2Schedule(t *testing.T) {
	r := runApproach(t, fig1Set(), Selective, 20)
	want := strings.Join([]string{
		"P0:J2,1[0ms,3ms)",   // O21 (FD 1), τ2's 1st selection -> primary
		"P0:J1,2[5ms,8ms)",   // O12, τ1's 1st selection -> primary
		"P1:J1,3[10ms,13ms)", // J13 re-selected, τ1's 2nd -> spare
		"P1:J2,2[13ms,16ms)", // J22 re-selected, τ2's 2nd -> spare
	}, " ")
	if got := segString(r.Trace); got != want {
		t.Errorf("Fig.2 schedule drifted:\n got  %s\n want %s", got, want)
	}
}

func TestGoldenFig4Schedule(t *testing.T) {
	r := runApproach(t, fig3Set(), Selective, 25)
	want := strings.Join([]string{
		"P0:J2,2[4ms,5ms)",   // O22 starts on the primary...
		"P0:J1,2[5ms,7ms)",   // ...preempted by O12 (FP within the OJQ)
		"P0:J2,2[7ms,8ms)",   // O22 completes by its deadline 8
		"P1:J2,3[8ms,10ms)",  // J'23, τ2's 2nd selection -> spare (idle at 8)
		"P1:J1,3[10ms,12ms)", // J13, τ1's 2nd selection -> spare
		"P0:J2,5[16ms,18ms)", // J25, τ2's 3rd -> primary
		"P0:J1,5[20ms,22ms)", // J15, τ1's 3rd -> primary
		"P1:J2,6[20ms,22ms)", // J26, τ2's 4th -> spare
	}, " ")
	if got := segString(r.Trace); got != want {
		t.Errorf("Fig.4 schedule drifted:\n got  %s\n want %s", got, want)
	}
}

func TestGoldenFig3GreedySchedule(t *testing.T) {
	r := runApproach(t, fig3Set(), Greedy, 25)
	// The §III narrative, reconstructed: O11 runs first (FP tie-break at
	// FD 2), J12 expires behind O22 (FIFO within equal FD), J13/J14
	// become FD-1 jobs and preempt, four τ1 jobs total.
	got := segString(r.Trace)
	for _, must := range []string{
		"P0:J1,1[0ms,2ms)",   // O11 executed (it causes J13's demotion)
		"P0:J2,1[2ms,4ms)",   // O21 follows
		"P0:J1,3[10ms,12ms)", // J13 re-selected as optional
		"P0:J1,4[15ms,17ms)", // J14 (fourth τ1 job: 1,3,4 plus J15)
		"P0:J1,5[20ms,22ms)", // J15
	} {
		if !strings.Contains(got, must) {
			t.Errorf("Fig.3 greedy schedule missing %q:\n%s", must, got)
		}
	}
	// J12 must never execute (expired behind O22).
	if strings.Contains(got, "J1,2[") {
		t.Errorf("J12 executed but the narrative says it expires:\n%s", got)
	}
	// Everything greedy does happens on the primary.
	if strings.Contains(got, "P1:") {
		t.Errorf("greedy used the spare for optionals:\n%s", got)
	}
}

// The Fig. 5 runtime-postponement check (selective θ application) lives
// with the implementation, in internal/sim/policy/dynamic/theta_test.go.
