package core

import (
	"repro/internal/pattern"
)

// patternMandatory is a tiny indirection so policy files read uniformly.
func patternMandatory(kind pattern.Kind, index, m, k int) bool {
	return pattern.Mandatory(kind, index, m, k)
}

// histories builds one fresh (all-effective) outcome window per task of a
// set with the given constraints; used by the dynamic policies.
func histories(ms, ks []int) []*pattern.History {
	hs := make([]*pattern.History, len(ms))
	for i := range ms {
		hs[i] = pattern.NewHistory(ms[i], ks[i])
	}
	return hs
}
