package core

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/timeu"
)

// The two task sets used in the paper's motivation (§III).
func fig1Set() *task.Set {
	return task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
}

func fig3Set() *task.Set {
	return task.NewSet(task.New(0, 5, 2.5, 2, 2, 4), task.New(1, 4, 4, 2, 2, 4))
}

func runApproach(t *testing.T, s *task.Set, a Approach, horizonMS float64) *sim.Result {
	t.Helper()
	eng, err := sim.New(s, MustNew(a, Options{}), sim.Config{
		Horizon:     timeu.FromMillis(horizonMS),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func wantEnergy(t *testing.T, r *sim.Result, want float64) {
	t.Helper()
	if got := r.ActiveEnergy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("%s: active energy = %v, want %v", r.Policy, got, want)
	}
}

// TestPaperFig1 reproduces Figure 1: the preference-oriented dual-priority
// baseline on τ1=(5,4,3,2,4), τ2=(10,10,3,1,2) consumes 15 energy units
// in the hyper period [0,20].
func TestPaperFig1(t *testing.T) {
	r := runApproach(t, fig1Set(), DP, 20)
	wantEnergy(t, r, 15)
	if !r.MKSatisfied() {
		t.Error("(m,k) constraints violated")
	}
}

// TestPaperFig1Reference: the same set under MKSS_ST runs both copies in
// full (three mandatory jobs × 3 ms × 2 processors = 18 units).
func TestPaperFig1Reference(t *testing.T) {
	r := runApproach(t, fig1Set(), ST, 20)
	wantEnergy(t, r, 18)
	if !r.MKSatisfied() {
		t.Error("(m,k) constraints violated")
	}
}

// TestPaperFig2 reproduces Figure 2: dynamic patterns on the Figure 1 set
// drop every backup and finish the hyper period with 12 units — "20%
// lower than that in Figure 1". The executed set is O21, O12, J13 (re-
// selected), J22 (re-selected); J11 and J14 are skipped.
func TestPaperFig2(t *testing.T) {
	r := runApproach(t, fig1Set(), Selective, 20)
	wantEnergy(t, r, 12)
	if !r.MKSatisfied() {
		t.Error("(m,k) constraints violated")
	}
	if r.Counters.MandatoryJobs != 0 {
		t.Errorf("mandatory jobs = %d, want 0 (all demoted)", r.Counters.MandatoryJobs)
	}
	if r.Counters.BackupsCreated != 0 {
		t.Errorf("backups created = %d, want 0", r.Counters.BackupsCreated)
	}
	if r.Counters.OptionalSelected != 4 {
		t.Errorf("optional selected = %d, want 4", r.Counters.OptionalSelected)
	}
	// Outcome sequences: τ1 = skip, hit, hit, skip; τ2 = hit, hit.
	want1 := []bool{false, true, true, false}
	for i, w := range want1 {
		if r.Outcomes[0][i] != w {
			t.Errorf("tau1 outcomes = %v, want %v", r.Outcomes[0], want1)
			break
		}
	}
	want2 := []bool{true, true}
	for i, w := range want2 {
		if r.Outcomes[1][i] != w {
			t.Errorf("tau2 outcomes = %v, want %v", r.Outcomes[1], want2)
			break
		}
	}
}

// TestPaperFig3 reproduces Figure 3: the greedy scheme on
// τ1=(5,2.5,2,2,4), τ2=(4,4,2,2,4) executes four τ1 jobs and six τ2 jobs
// before t=25 — 20 energy units.
func TestPaperFig3(t *testing.T) {
	r := runApproach(t, fig3Set(), Greedy, 25)
	wantEnergy(t, r, 20)
	if !r.MKSatisfied() {
		t.Error("(m,k) constraints violated")
	}
	// "four jobs in total were executed for task τ1 before time t=25"
	exec1 := 0
	for _, ok := range r.Outcomes[0] {
		if ok {
			exec1++
		}
	}
	if exec1 != 4 {
		t.Errorf("tau1 effective jobs = %d (outcomes %v), want 4", exec1, r.Outcomes[0])
	}
}

// TestPaperFig4 reproduces Figure 4: the selective scheme on the Figure 3
// set consumes 14 units before t=25 — "30% lower than that in Figure 3".
// τ1 executes J12 (primary), J13 (spare), J15 (primary); τ2 executes J22
// (primary), J23 (spare), J25 (primary), J26 (spare).
func TestPaperFig4(t *testing.T) {
	r := runApproach(t, fig3Set(), Selective, 25)
	wantEnergy(t, r, 14)
	if !r.MKSatisfied() {
		t.Error("(m,k) constraints violated")
	}
	if r.Counters.MandatoryJobs != 0 {
		t.Errorf("mandatory jobs = %d, want 0", r.Counters.MandatoryJobs)
	}
	// Alternation: τ2's selected jobs J22, J23, J25, J26 go primary,
	// spare, primary, spare — verify via the trace.
	procOf := map[[2]int]int{}
	for _, seg := range r.Trace {
		procOf[[2]int{seg.TaskID, seg.Index}] = seg.Proc
	}
	wantProc := map[[2]int]int{
		{1, 2}: sim.Primary,
		{1, 3}: sim.Spare,
		{1, 5}: sim.Primary,
		{1, 6}: sim.Spare,
		{0, 2}: sim.Primary,
		{0, 3}: sim.Spare,
		{0, 5}: sim.Primary,
	}
	for key, wp := range wantProc {
		if got, ok := procOf[key]; !ok || got != wp {
			t.Errorf("job (task %d, index %d): proc = %d (present %v), want %d",
				key[0]+1, key[1], got, ok, wp)
		}
	}
}

// TestFig3GreedyVsSelective checks the §III headline: selective is 30%
// cheaper than greedy on the Figure 3 set.
func TestFig3GreedyVsSelective(t *testing.T) {
	g := runApproach(t, fig3Set(), Greedy, 25)
	s := runApproach(t, fig3Set(), Selective, 25)
	if g.ActiveEnergy() <= s.ActiveEnergy() {
		t.Errorf("greedy (%v) must exceed selective (%v)", g.ActiveEnergy(), s.ActiveEnergy())
	}
	saving := 1 - s.ActiveEnergy()/g.ActiveEnergy()
	if math.Abs(saving-0.30) > 1e-9 {
		t.Errorf("saving = %v, want 0.30", saving)
	}
}

// TestFig2SelectiveVsDP checks the §III headline: 20% saving over the
// Figure 1 schedule.
func TestFig2SelectiveVsDP(t *testing.T) {
	dp := runApproach(t, fig1Set(), DP, 20)
	sel := runApproach(t, fig1Set(), Selective, 20)
	saving := 1 - sel.ActiveEnergy()/dp.ActiveEnergy()
	if math.Abs(saving-0.20) > 1e-9 {
		t.Errorf("saving = %v, want 0.20", saving)
	}
}
