package core

import (
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/timeu"
)

// fpLess is plain fixed-priority ordering: lower task index first, then
// earlier job, then mains before backups (the last tie can only occur
// after a permanent fault migrates both copies onto one processor).
func fpLess(a, b *task.Job) bool {
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	return a.Copy == task.Main && b.Copy == task.Backup
}

// stPolicy is MKSS_ST: static pattern, both copies of every mandatory job
// released concurrently (main on the primary, backup on the spare), plain
// FP on each processor, optional jobs never executed. It is the energy
// reference of §V: the two processors run near-identical schedules, so
// backup cancellation saves almost nothing.
type stPolicy struct {
	opts Options
	dead [sim.NumProcs]bool
}

func (p *stPolicy) Name() string { return ST.String() }

func (p *stPolicy) Init(e *sim.Engine) error { return nil }

func (p *stPolicy) Release(e *sim.Engine, t task.Task, index int) {
	if !staticMandatory(p.opts, t, index) {
		e.SettleSkip(t.ID, index)
		return
	}
	e.Counters().MandatoryJobs++
	main := e.NewJob(t, index, task.Mandatory)
	if p.dead[sim.Primary] || p.dead[sim.Spare] {
		// Single survivor: one copy only.
		e.Admit(main, e.Survivor())
		return
	}
	e.Admit(main, sim.Primary)
	e.Admit(e.NewBackup(t, index, 0), sim.Spare)
}

func (p *stPolicy) Less(now timeu.Time, a, b *task.Job) bool { return fpLess(a, b) }

func (p *stPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }

func (p *stPolicy) OnSettled(e *sim.Engine, taskID, index int, effective bool) {}

func (p *stPolicy) OnPermanentFault(e *sim.Engine, dead int) { p.dead[dead] = true }

// dpPolicy is MKSS_DP: the preference-oriented dual-priority baseline
// reconstructed from Figure 1. Main copies alternate across the two
// processors by task index (τ1 main on the primary, τ2 main on the spare,
// ...); each backup runs on the opposite processor with its release
// procrastinated by the promotion interval Yi = Di − Ri (Eq. 2), after
// which it competes at its regular fixed priority. A main that completes
// successfully cancels its backup, which is the entire energy play.
type dpPolicy struct {
	opts Options
	ys   []timeu.Time
	dead [sim.NumProcs]bool
	// background switches to textbook dual-priority (the DPBackground
	// extension): backups are eligible from their nominal release but run
	// in a background band until promotion at r + Yi, instead of being
	// absent until r + Yi.
	background bool
}

func (p *dpPolicy) Name() string {
	if p.background {
		return DPBackground.String()
	}
	return DP.String()
}

func (p *dpPolicy) Init(e *sim.Engine) error {
	if off := p.opts.Offline; off != nil {
		p.ys = off.PromotionTimes()
	} else {
		p.ys = rta.PromotionTimesSafe(e.Set())
	}
	return nil
}

// mainProc returns the processor hosting task i's main copies (Figure 1's
// alternating assignment).
func (p *dpPolicy) mainProc(taskID int) int { return taskID % sim.NumProcs }

func (p *dpPolicy) Release(e *sim.Engine, t task.Task, index int) {
	if !staticMandatory(p.opts, t, index) {
		e.SettleSkip(t.ID, index)
		return
	}
	e.Counters().MandatoryJobs++
	main := e.NewJob(t, index, task.Mandatory)
	if p.dead[sim.Primary] || p.dead[sim.Spare] {
		e.Admit(main, e.Survivor())
		return
	}
	mp := p.mainProc(t.ID)
	e.Admit(main, mp)
	if p.background {
		backup := e.NewBackup(t, index, 0)
		backup.Promote = backup.BaseRelease + p.ys[t.ID]
		e.Admit(backup, 1-mp)
	} else {
		e.Admit(e.NewBackup(t, index, p.ys[t.ID]), 1-mp)
	}
}

// dpBand returns 0 (regular) or 1 (background). Only DPBackground's
// pre-promotion backups ever sit in the background band.
func dpBand(now timeu.Time, j *task.Job) int {
	if j.Promote > now {
		return 1
	}
	return 0
}

func (p *dpPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	if p.background {
		ba, bb := dpBand(now, a), dpBand(now, b)
		if ba != bb {
			return ba < bb
		}
	}
	return fpLess(a, b)
}

func (p *dpPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }

func (p *dpPolicy) OnSettled(e *sim.Engine, taskID, index int, effective bool) {}

func (p *dpPolicy) OnPermanentFault(e *sim.Engine, dead int) { p.dead[dead] = true }

// staticMandatory applies the static pattern classification shared by the
// ST and DP baselines, via the memoized table when offline products are
// attached.
func staticMandatory(opts Options, t task.Task, index int) bool {
	if opts.Offline != nil {
		return opts.Offline.Mandatory(t.ID, index)
	}
	return patternMandatory(opts.Pattern, index, t.M, t.K)
}
