package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeu"
)

func TestApproachStrings(t *testing.T) {
	want := map[Approach]string{
		ST: "MKSS-ST", DP: "MKSS-DP", Greedy: "MKSS-greedy", Selective: "MKSS-selective",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if Approach(99).String() == "" {
		t.Error("unknown approach must render")
	}
	if len(Approaches()) != 4 {
		t.Error("Approaches() incomplete")
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New(Approach(99), Options{}); err == nil {
		t.Error("unknown approach accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on unknown approach")
		}
	}()
	MustNew(Approach(99), Options{})
}

func TestPolicyNames(t *testing.T) {
	for _, a := range Approaches() {
		p := MustNew(a, Options{})
		if p.Name() != a.String() {
			t.Errorf("policy name %q != %q", p.Name(), a.String())
		}
	}
}

// The FP tie-break ordering test of the shared FPLess helper lives with
// the helper, in internal/sim/policy/registry_test.go.

func run(t *testing.T, s *task.Set, p sim.Policy, horizonMS float64, faults *fault.Plan) *sim.Result {
	t.Helper()
	eng, err := sim.New(s, p, sim.Config{
		Horizon:     timeu.FromMillis(horizonMS),
		Faults:      faults,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSTConcurrentCopies: under ST both copies of each mandatory job run
// to completion simultaneously, so active energy is exactly twice the
// mandatory demand.
func TestSTConcurrentCopies(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3))
	r := run(t, s, MustNew(ST, Options{}), 30, nil)
	// R-pattern (2,3): jobs 1,2 mandatory -> 2 jobs * 3ms * 2 copies.
	if got := r.ActiveEnergy(); got != 12 {
		t.Errorf("energy = %v, want 12", got)
	}
	if r.Counters.BackupsCreated != 2 {
		t.Errorf("backups = %d, want 2", r.Counters.BackupsCreated)
	}
	// Job 3 is optional and skipped: outcomes 1,1,0.
	want := []bool{true, true, false}
	for i, w := range want {
		if r.Outcomes[0][i] != w {
			t.Errorf("outcomes = %v, want %v", r.Outcomes[0], want)
			break
		}
	}
}

// TestDPCancelsBackups: with ample slack the DP backups never run at all
// (postponed past the main's completion and canceled cleanly).
func TestDPCancelsBackups(t *testing.T) {
	s := task.NewSet(task.New(0, 20, 20, 2, 1, 2))
	r := run(t, s, MustNew(DP, Options{}), 40, nil)
	// Y = D - R = 18; main done at 2 << 18.
	if r.Counters.BackupsCanceledClean != r.Counters.BackupsCreated {
		t.Errorf("clean cancels %d of %d backups",
			r.Counters.BackupsCanceledClean, r.Counters.BackupsCreated)
	}
	if got := r.ActiveEnergy(); got != 2 {
		t.Errorf("energy = %v, want 2 (single job, no backup execution)", got)
	}
}

// TestDPAlternatesMains: Figure 1's preference-oriented assignment puts
// τ1 mains on the primary and τ2 mains on the spare.
func TestDPAlternatesMains(t *testing.T) {
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	r := run(t, s, MustNew(DP, Options{}), 20, nil)
	for _, seg := range r.Trace {
		if seg.Copy != task.Main {
			continue
		}
		wantProc := seg.TaskID % 2
		if seg.Proc != wantProc {
			t.Errorf("main of task %d ran on proc %d, want %d", seg.TaskID+1, seg.Proc, wantProc)
		}
	}
}

// TestSelectiveSkipsHighFD: a (1,5) task has initial FD 4; the selective
// scheme skips jobs until FD reaches 1, then executes: pattern
// skip,skip,skip,exec repeating.
func TestSelectiveSkipsHighFD(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 5))
	r := run(t, s, MustNew(Selective, Options{}), 200, nil)
	want := []bool{false, false, false, true} // repeating
	for i, got := range r.Outcomes[0] {
		if got != want[i%4] {
			t.Errorf("outcome[%d] = %v, want %v (seq %v)", i, got, want[i%4], r.Outcomes[0])
			break
		}
	}
	if !r.MKSatisfied() {
		t.Error("(m,k) violated")
	}
	if r.Counters.MandatoryJobs != 0 {
		t.Errorf("mandatory jobs = %d, want 0", r.Counters.MandatoryJobs)
	}
}

// TestSelectiveOneTwoTaskExecutesEverything: for (1,2) the FD never
// exceeds 1, so every job is an eligible optional — the paper's own
// Figure 2 behavior for τ2.
func TestSelectiveOneTwoTaskExecutesEverything(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2))
	r := run(t, s, MustNew(Selective, Options{}), 100, nil)
	for i, got := range r.Outcomes[0] {
		if !got {
			t.Errorf("outcome[%d] = miss; (1,2) under selective executes every job", i)
		}
	}
	if r.Counters.OptionalSelected != 10 {
		t.Errorf("selected = %d, want 10", r.Counters.OptionalSelected)
	}
}

// TestSelectiveFailedOptionalForcesMandatory: when an eligible optional
// cannot complete (deliberate overload on its processor), the task's next
// job must be released mandatory with a backup.
func TestSelectiveFailedOptionalForcesMandatory(t *testing.T) {
	// tau1 hogs the primary (mandatory every job: m=k would do, but keep
	// 0<m<k: use (3,4) with heavy C); tau2's optional (FD1, alternation
	// start: primary) gets starved.
	s := task.NewSet(task.New(0, 10, 10, 9, 3, 4), task.New(1, 20, 20, 8, 1, 2))
	r := run(t, s, MustNew(Selective, Options{}), 200, nil)
	if r.Counters.MandatoryJobs == 0 {
		t.Skip("no mandatory jobs materialized; premise broken")
	}
	// tau2 must still satisfy (1,2) thanks to the mandatory fallback.
	if r.ViolationAt[1] >= 0 {
		t.Errorf("tau2 violated (1,2) at job %d; outcomes %v", r.ViolationAt[1]+1, r.Outcomes[1])
	}
}

// TestSelectiveAlternationDisabled: the NoAlternation ablation keeps all
// optional jobs on the primary.
func TestSelectiveAlternationDisabled(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2))
	r := run(t, s, MustNew(Selective, Options{NoAlternation: true}), 100, nil)
	for _, seg := range r.Trace {
		if seg.Proc != sim.Primary {
			t.Errorf("segment on spare despite NoAlternation: %+v", seg)
		}
	}
}

// TestSelectiveAlternationEnabled: with alternation the same workload
// spreads across both processors.
func TestSelectiveAlternationEnabled(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2))
	r := run(t, s, MustNew(Selective, Options{}), 100, nil)
	seen := map[int]bool{}
	for _, seg := range r.Trace {
		seen[seg.Proc] = true
	}
	if !seen[sim.Primary] || !seen[sim.Spare] {
		t.Error("alternation did not use both processors")
	}
}

// TestGreedyExecutesAllOptionals: greedy admits every optional; on an
// uncontended set every job of a (1,4) task runs.
func TestGreedyExecutesAllOptionals(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 4))
	r := run(t, s, MustNew(Greedy, Options{}), 100, nil)
	for i, got := range r.Outcomes[0] {
		if !got {
			t.Errorf("outcome[%d] = miss; greedy executes everything when possible", i)
		}
	}
	// All on the primary.
	for _, seg := range r.Trace {
		if seg.Proc != sim.Primary {
			t.Errorf("greedy optional ran on the spare: %+v", seg)
		}
	}
}

// TestGreedyOrdersByFlexibility: footnote 1 — the less flexible optional
// job runs first even if released simultaneously by a lower-priority
// task.
func TestGreedyOrdersByFlexibility(t *testing.T) {
	// tau1 (2,4): FD 2 at start; tau2 (1,2): FD 1 at start. Both release
	// at 0; tau2's optional must run first despite lower FP priority.
	s := task.NewSet(task.New(0, 20, 20, 3, 2, 4), task.New(1, 20, 20, 3, 1, 2))
	r := run(t, s, MustNew(Greedy, Options{}), 20, nil)
	var first sim.Segment
	for _, seg := range r.Trace {
		if seg.Start == 0 {
			first = seg
		}
	}
	if first.TaskID != 1 {
		t.Errorf("first executed task = %d, want tau2 (FD 1 beats FD 2)", first.TaskID+1)
	}
}

// TestPoliciesSurvivePermanentFaultAtZero: the degenerate case of a
// processor dead from the very first instant.
func TestPoliciesSurvivePermanentFaultAtZero(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 4, 1, 2))
	for _, a := range Approaches() {
		for proc := 0; proc < sim.NumProcs; proc++ {
			plan := &fault.Plan{Permanent: &fault.Permanent{At: 0, Proc: proc}}
			r := run(t, s, MustNew(a, Options{}), 120, plan)
			if !r.MKSatisfied() {
				t.Errorf("%v, proc %d dead at 0: (m,k) violated (outcomes %v)", a, proc, r.Outcomes)
			}
			// The dead processor must consume nothing.
			if r.PerProc[proc].ActiveTime != 0 {
				t.Errorf("%v: dead proc %d executed %v", a, proc, r.PerProc[proc].ActiveTime)
			}
		}
	}
}

// TestFDThresholdZeroDefaultsToOne: Options normalization.
func TestFDThresholdZeroDefaultsToOne(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 5))
	r0 := run(t, s, MustNew(Selective, Options{}), 200, nil)
	r1 := run(t, s, MustNew(Selective, Options{FDThreshold: 1}), 200, nil)
	if r0.ActiveEnergy() != r1.ActiveEnergy() {
		t.Error("zero FDThreshold must equal threshold 1")
	}
}

// TestFDThresholdTwoExecutesMore: raising the eligibility threshold makes
// the scheme execute more optional jobs (the ablation's point).
func TestFDThresholdTwoExecutesMore(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 5))
	r1 := run(t, s, MustNew(Selective, Options{FDThreshold: 1}), 400, nil)
	r2 := run(t, s, MustNew(Selective, Options{FDThreshold: 2}), 400, nil)
	if r2.Counters.OptionalSelected <= r1.Counters.OptionalSelected {
		t.Errorf("threshold 2 selected %d <= threshold 1 selected %d",
			r2.Counters.OptionalSelected, r1.Counters.OptionalSelected)
	}
}

// TestThetaVsYAblation: with UsePromotionForTheta the backups are
// postponed less (or equally), so backup overlap can only grow.
func TestThetaVsYAblation(t *testing.T) {
	// Use the Figure 5 set where theta2=4 > Y2=1.
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	rTheta := run(t, s, MustNew(Selective, Options{}), 300, nil)
	rY := run(t, s, MustNew(Selective, Options{UsePromotionForTheta: true}), 300, nil)
	if rY.ActiveEnergy() < rTheta.ActiveEnergy() {
		t.Errorf("Y-postponement (%v) beat theta-postponement (%v)",
			rY.ActiveEnergy(), rTheta.ActiveEnergy())
	}
}

// TestEPatternOption: the E-pattern ablation still satisfies (m,k) under
// the static approaches.
func TestEPatternOption(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 4), task.New(1, 15, 15, 4, 1, 3))
	for _, a := range []Approach{ST, DP} {
		r := run(t, s, MustNew(a, Options{Pattern: pattern.EPattern}), 300, nil)
		if !r.MKSatisfied() {
			t.Errorf("%v with E-pattern violated (m,k)", a)
		}
	}
}

// TestTransientFaultOnOptionalRecordsMiss: a faulty optional job settles
// as a miss and pushes the next job toward mandatory.
func TestTransientFaultOnOptionalRecordsMiss(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2))
	plan := fault.NoFaults().WithTransientRate(10) // every job faults
	r := run(t, s, MustNew(Selective, Options{}), 100, plan)
	if r.Counters.TransientFaults == 0 {
		t.Fatal("no transient faults at huge rate")
	}
	// With every execution faulting, optional jobs miss, so mandatory
	// jobs (with backups) must appear.
	if r.Counters.MandatoryJobs == 0 {
		t.Error("no mandatory fallback despite persistent optional failures")
	}
}

func TestDeterministicPolicies(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 4, 1, 2))
	for _, a := range Approaches() {
		plan1 := fault.NewPlan(fault.PermanentAndTransient, timeu.FromMillis(300), stats.NewRand(5))
		plan2 := fault.NewPlan(fault.PermanentAndTransient, timeu.FromMillis(300), stats.NewRand(5))
		r1 := run(t, s, MustNew(a, Options{}), 300, plan1)
		r2 := run(t, s, MustNew(a, Options{}), 300, plan2)
		if r1.ActiveEnergy() != r2.ActiveEnergy() || r1.Counters != r2.Counters {
			t.Errorf("%v not deterministic", a)
		}
	}
}

// TestDPBackgroundRunsBackupsEarly: the extension's backups soak idle
// time before promotion, so its energy is at least the ALAP DP variant's
// and its schedule still keeps (m,k).
func TestDPBackgroundRunsBackupsEarly(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 4, 1, 2))
	alap := run(t, s, MustNew(DP, Options{}), 300, nil)
	bg := run(t, s, MustNew(DPBackground, Options{}), 300, nil)
	if bg.ActiveEnergy() < alap.ActiveEnergy() {
		t.Errorf("background DP (%v) cheaper than ALAP DP (%v)", bg.ActiveEnergy(), alap.ActiveEnergy())
	}
	if !bg.MKSatisfied() {
		t.Error("background DP violated (m,k)")
	}
	// At least one backup segment must start before its promotion would
	// have allowed under ALAP (i.e. earlier than release + Y).
	ys := rta.PromotionTimesSafe(s)
	early := false
	for _, seg := range bg.Trace {
		if seg.Copy != task.Backup {
			continue
		}
		rel := s.Tasks[seg.TaskID].Release(seg.Index)
		if seg.Start < rel+ys[seg.TaskID] {
			early = true
		}
	}
	if !early {
		t.Error("no backup ran in the background band")
	}
}

// TestDPBackgroundPromotionPreempts: after promotion a backup outranks a
// lower-priority main on the same processor.
func TestDPBackgroundPromotionPreempts(t *testing.T) {
	// tau1 main on primary, backup on spare; tau2 main on spare. With a
	// long tau2 main and a short tau1 Y, the promoted backup J'1 must
	// preempt the running tau2 main on the spare.
	s := task.NewSet(task.New(0, 20, 8, 3, 1, 2), task.New(1, 20, 20, 10, 1, 2))
	r := run(t, s, MustNew(DPBackground, Options{}), 20, nil)
	if !r.MKSatisfied() {
		t.Fatalf("(m,k) violated; outcomes %v", r.Outcomes)
	}
}

func TestExtensionsList(t *testing.T) {
	exts := Extensions()
	if len(exts) != 2 || exts[0] != DPBackground || exts[1] != DBP {
		t.Errorf("Extensions() = %v", exts)
	}
	if DPBackground.String() != "MKSS-DP-background" {
		t.Errorf("DPBackground string = %q", DPBackground.String())
	}
	if DBP.String() != "MKSS-DBP" {
		t.Errorf("DBP string = %q", DBP.String())
	}
	for _, a := range exts {
		p := MustNew(a, Options{})
		if p.Name() != a.String() {
			t.Errorf("policy name = %q, want %q", p.Name(), a)
		}
	}
}

// TestGreedyUnderPermanentFault covers the dynamic policies' fault
// rerouting: after either processor dies mid-run, greedy routes all work
// to the survivor and the (m,k) guarantees hold on a light set.
func TestGreedyUnderPermanentFault(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 2, 3), task.New(1, 15, 15, 3, 1, 2))
	for proc := 0; proc < sim.NumProcs; proc++ {
		plan := &fault.Plan{Permanent: &fault.Permanent{At: timeu.FromMillis(47), Proc: proc}}
		r := run(t, s, MustNew(Greedy, Options{}), 300, plan)
		if !r.MKSatisfied() {
			t.Errorf("greedy, proc %d dead: (m,k) violated", proc)
		}
		for _, seg := range r.Trace {
			if seg.Proc == proc && seg.Start >= timeu.FromMillis(47) {
				t.Errorf("greedy executed on dead proc %d at %v", proc, seg.Start)
			}
		}
	}
}

// The MJQ/OJQ band-ordering tests of the selective and greedy Less
// methods live with the implementations, in
// internal/sim/policy/dynamic/bands_test.go.
