// Package postpone implements the paper's offline backup-release
// postponement analysis (Definitions 2–5, Equations 3–5).
//
// In a standby-sparing system the spare processor should start backup
// jobs as late as safely possible so that, when the main copy succeeds,
// the backup is cancelled before consuming energy. The dual-priority
// baseline postpones each backup by the promotion interval Yi = Di − Ri
// (Eq. 2). The paper's analysis instead computes a per-task *release
// postponement interval* θi that exploits the sparse mandatory pattern:
//
//	r̃i = ri + θi                                         (Eq. 3)
//	θij = max{ t̄ − (cij + Σ ckl) − rij : t̄ ∈ IP(J'ij) }   (Eq. 4)
//	θi  = min{ θij : j ≤ LCM_{q≤i}(kq·Pq)/Pi }            (Eq. 5)
//
// where the inspecting points IP(J'ij) are the job's own deadline dij and
// every postponed release r̃kl of a higher-priority backup job falling in
// (rij, dij) (Definition 3), and the interference sum counts every
// higher-priority backup job with dkl > rij and r̃kl < t̄. Levels are
// processed in descending priority order, revising release times level by
// level, exactly as prescribed after Definition 5.
//
// The worked example of Figure 5 — τ1=(10,10,3,2,3), τ2=(15,15,8,1,2)
// giving θ1 = 7 and θ2 = 4 — is reproduced in the package tests.
package postpone

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Analysis is the result of the offline postponement computation.
type Analysis struct {
	// Theta[i] is the release postponement interval θi of task i's
	// backups (already floored at the promotion interval Y[i]).
	Theta []timeu.Time
	// RawTheta[i] is θi as computed by Eqs. (4)–(5) before the Yi floor;
	// kept for diagnostics and the ablation benches.
	RawTheta []timeu.Time
	// Y[i] is the dual-priority promotion interval Yi = Di − Ri (Eq. 2).
	Y []timeu.Time
	// Exact[i] reports whether θi came from the full hyperperiod
	// analysis (true) or fell back to Yi because the level-i hyperperiod
	// saturated the cap (false).
	Exact []bool
}

// Options tunes the analysis.
type Options struct {
	// Pattern selects the static mandatory/optional partition; the paper
	// uses the R-pattern.
	Pattern pattern.Kind
	// HyperperiodCap bounds the per-level analysis horizon. Levels whose
	// LCM_{q≤i}(kq·Pq) exceeds the cap fall back to θi = Yi (safe by
	// dual-priority theory). Zero means DefaultHyperperiodCap.
	HyperperiodCap timeu.Time
	// Promotion, when non-nil and of length s.N(), supplies precomputed
	// promotion intervals Yi (as from rta.PromotionTimesSafe) so the
	// analysis skips re-running the RTA fixed point. Ignored otherwise.
	Promotion []timeu.Time
}

// DefaultHyperperiodCap bounds the exact analysis to hyperperiods of at
// most 10 seconds (2,000 jobs of the shortest paper-scale period); beyond
// that the Yi fallback is used.
const DefaultHyperperiodCap = 10 * timeu.Second

// Compute runs the postponement analysis on set s. The set must be fully
// FP-schedulable (rta.PromotionTimes must succeed) so that the Yi floor
// and fallback exist; the paper's workload generator guarantees this.
func Compute(s *task.Set, opts Options) (*Analysis, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("postpone: %w", err)
	}
	cap := opts.HyperperiodCap
	if cap <= 0 {
		cap = DefaultHyperperiodCap
	}
	// Safe promotion intervals: tasks whose full-interference RTA
	// diverges get Y = 0, so the floor below never hurts correctness on
	// sets that are only R-pattern-schedulable.
	n := s.N()
	ys := opts.Promotion
	if len(ys) != n {
		ys = rta.PromotionTimesSafe(s)
	}
	an := &Analysis{
		Theta:    make([]timeu.Time, n),
		RawTheta: make([]timeu.Time, n),
		Y:        ys,
		Exact:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t := s.Tasks[i]
		hyper := s.MKHyperperiodLevel(i, cap)
		if hyper >= cap {
			// Hyperperiod too large for exact analysis: fall back to the
			// dual-priority promotion interval, which is always safe.
			an.RawTheta[i] = ys[i]
			an.Theta[i] = ys[i]
			an.Exact[i] = false
			continue
		}
		theta := timeu.Infinity
		found := false
		for j := 1; t.Release(j) < hyper; j++ {
			if !pattern.Mandatory(opts.Pattern, j, t.M, t.K) {
				continue
			}
			found = true
			th := thetaJob(s, an, opts.Pattern, i, j)
			if th < theta {
				theta = th
			}
		}
		if !found {
			theta = ys[i]
		}
		an.RawTheta[i] = theta
		an.Exact[i] = true
		// The paper's closing remark (§IV): a θi below the promotion
		// interval can always be raised to it safely, and Eq. (4) can go
		// negative under pessimistic interference — floor at Yi.
		if theta < ys[i] {
			theta = ys[i]
		}
		an.Theta[i] = theta
	}
	return an, nil
}

// hpJob is one higher-priority backup job relevant to an Eq. (4) window.
type hpJob struct {
	posted timeu.Time // r̃kl
	dl     timeu.Time // dkl
	wcet   timeu.Time // ckl
}

// relevantHP enumerates the higher-priority backup jobs that can appear
// in Eq. (4) for a window [r, d): those with deadline after r (dkl > r)
// or postponed release inside (r, d). Both conditions bound the nominal
// release to (r − Dk, d − θk), a window of at most Dk + Pi per task, so
// the enumeration is O(jobs near the window), not O(jobs in the
// hyperperiod).
func relevantHP(s *task.Set, an *Analysis, kind pattern.Kind, i int, r, d timeu.Time) []hpJob {
	var out []hpJob
	for k := 0; k < i; k++ {
		tk := s.Tasks[k]
		thetaK := an.Theta[k]
		// First candidate: release > r − Dk  =>  l > (r − Dk − offset)/Pk.
		lo := tk.JobIndexAt(r-tk.Deadline) + 1
		if lo < 1 {
			lo = 1
		}
		for l := lo; ; l++ {
			rel := tk.Release(l)
			if rel+thetaK >= d {
				// Posted at or after every inspecting point: such a job
				// can neither interfere (needs r̃kl < t̄ ≤ d) nor be an
				// inspecting point itself; later jobs only more so.
				break
			}
			if !pattern.Mandatory(kind, l, tk.M, tk.K) {
				continue
			}
			dl := rel + tk.Deadline
			if dl > r {
				out = append(out, hpJob{posted: rel + thetaK, dl: dl, wcet: tk.WCET})
			}
		}
	}
	return out
}

// thetaJob evaluates Eq. (4) for backup job J'_ij.
func thetaJob(s *task.Set, an *Analysis, kind pattern.Kind, i, j int) timeu.Time {
	t := s.Tasks[i]
	r := t.Release(j)
	d := t.AbsDeadline(j)
	hp := relevantHP(s, an, kind, i, r, d)
	// Inspecting points (Definition 3): dij plus every r̃kl in (rij, dij).
	points := []timeu.Time{d}
	for _, b := range hp {
		if b.posted > r && b.posted < d {
			points = append(points, b.posted)
		}
	}
	best := -timeu.Infinity // Eq. (4) may be negative
	for _, tb := range points {
		// Interference: higher-priority backup jobs with dkl > rij and
		// r̃kl < t̄ contribute their whole WCET.
		var inter timeu.Time
		for _, b := range hp {
			if b.dl > r && b.posted < tb {
				inter += b.wcet
			}
		}
		v := tb - (t.WCET + inter) - r
		if v > best {
			best = v
		}
	}
	return best
}

// PostponedReleases returns the postponed release instants r̃ of task i's
// mandatory backup jobs in [0, horizon), for trace output and tests.
func (a *Analysis) PostponedReleases(s *task.Set, i int, kind pattern.Kind, horizon timeu.Time) []timeu.Time {
	t := s.Tasks[i]
	var out []timeu.Time
	for j := 1; t.Release(j) < horizon; j++ {
		if pattern.Mandatory(kind, j, t.M, t.K) {
			out = append(out, t.Release(j)+a.Theta[i])
		}
	}
	return out
}
