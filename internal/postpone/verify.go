package postpone

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Violation describes one backup job that would miss its deadline under
// the postponed releases.
type Violation struct {
	TaskID     int
	Index      int
	Completion timeu.Time
	Deadline   timeu.Time
}

func (v Violation) String() string {
	return fmt.Sprintf("backup J'%d,%d completes at %v past deadline %v",
		v.TaskID+1, v.Index, v.Completion, v.Deadline)
}

// Verify simulates the spare processor's mandatory backup schedule with
// the analysis' postponed releases over [0, horizon) under preemptive FP
// and returns every deadline violation (nil = the Theorem 1 backup
// guarantee holds over the horizon). It is the runtime cross-check of the
// offline analysis: callers who override θ values can use it to confirm
// safety before deployment.
func (a *Analysis) Verify(s *task.Set, kind pattern.Kind, horizon timeu.Time) []Violation {
	jobs := rta.MandatoryJobs(s, kind, horizon)
	for i := range jobs {
		jobs[i].Release += a.Theta[jobs[i].TaskID]
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].Release != jobs[j].Release {
			return jobs[i].Release < jobs[j].Release
		}
		return jobs[i].TaskID < jobs[j].TaskID
	})
	type act struct {
		j   rta.MandatoryJob
		rem timeu.Time
	}
	var (
		ready      []act
		violations []Violation
		now        timeu.Time
		next       int
	)
	insert := func(a act) {
		pos := len(ready)
		for pos > 0 && ready[pos-1].j.TaskID > a.j.TaskID {
			pos--
		}
		ready = append(ready, act{})
		copy(ready[pos+1:], ready[pos:])
		ready[pos] = a
	}
	for next < len(jobs) || len(ready) > 0 {
		if len(ready) == 0 {
			if next >= len(jobs) {
				break
			}
			now = timeu.Max(now, jobs[next].Release)
		}
		for next < len(jobs) && jobs[next].Release <= now {
			insert(act{j: jobs[next], rem: jobs[next].WCET})
			next++
		}
		cur := &ready[0]
		until := now + cur.rem
		if next < len(jobs) && jobs[next].Release < until {
			until = jobs[next].Release
		}
		cur.rem -= until - now
		now = until
		if cur.rem == 0 {
			if now > cur.j.Deadline {
				violations = append(violations, Violation{
					TaskID:     cur.j.TaskID,
					Index:      cur.j.Index,
					Completion: now,
					Deadline:   cur.j.Deadline,
				})
			}
			ready = ready[1:]
		}
	}
	return violations
}
