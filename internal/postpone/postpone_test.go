package postpone

import (
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/task"
	"repro/internal/timeu"
)

func ms(v float64) timeu.Time { return timeu.FromMillis(v) }

// TestPaperFig5Postponement reproduces the paper's worked example:
// tau1=(10,10,3,2,3), tau2=(15,15,8,1,2) yield theta1 = 7, theta2 = 4, and
// theta2 far exceeds the promotion interval Y2 = 1.
func TestPaperFig5Postponement(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	if an.Theta[0] != ms(7) {
		t.Errorf("theta1 = %v, want 7ms", an.Theta[0])
	}
	if an.Theta[1] != ms(4) {
		t.Errorf("theta2 = %v, want 4ms", an.Theta[1])
	}
	if !an.Exact[0] || !an.Exact[1] {
		t.Error("both levels must be exact (hyperperiod 30ms)")
	}
	// The paper notes Y2 = 1 for this set: R2 = 8 + 2*3 = 14, Y2 = 1.
	if an.Y[1] != ms(1) {
		t.Errorf("Y2 = %v, want 1ms", an.Y[1])
	}
	// Postponed releases per Fig. 5(b): tau1 backups at 7 and 17; tau2
	// backup at 4.
	r1 := an.PostponedReleases(s, 0, pattern.RPattern, ms(30))
	if len(r1) != 2 || r1[0] != ms(7) || r1[1] != ms(17) {
		t.Errorf("tau1 postponed releases = %v", r1)
	}
	r2 := an.PostponedReleases(s, 1, pattern.RPattern, ms(30))
	if len(r2) != 1 || r2[0] != ms(4) {
		t.Errorf("tau2 postponed releases = %v", r2)
	}
}

// The §III example set: tau1=(5,4,3,2,4), tau2=(10,10,3,1,2). Y1=Y2=1.
// Theta must be at least Y.
func TestThetaAtLeastPromotion(t *testing.T) {
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	for i := range an.Theta {
		if an.Theta[i] < an.Y[i] {
			t.Errorf("theta%d = %v below Y%d = %v", i+1, an.Theta[i], i+1, an.Y[i])
		}
	}
	// tau1: jobs 1,2 mandatory per 4. theta11: window [0,4), no HP.
	// IP = {4}; theta = 4 - 3 - 0 = 1. So theta1 = 1.
	if an.Theta[0] != ms(1) {
		t.Errorf("theta1 = %v, want 1ms", an.Theta[0])
	}
}

func TestHighestPriorityTheta(t *testing.T) {
	// For the highest-priority task theta = D - C always (no
	// interference, single inspecting point at the deadline).
	s := task.NewSet(task.New(0, 20, 12, 5, 1, 3))
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	if an.Theta[0] != ms(7) {
		t.Errorf("theta = %v, want 7ms", an.Theta[0])
	}
}

func TestFallbackOnHugeHyperperiod(t *testing.T) {
	// Coprime k*P products blow past a tiny cap -> Yi fallback.
	s := task.NewSet(task.New(0, 7, 7, 1, 2, 11), task.New(1, 13, 13, 1, 3, 17))
	an, err := Compute(s, Options{Pattern: pattern.RPattern, HyperperiodCap: ms(50)})
	if err != nil {
		t.Fatal(err)
	}
	if an.Exact[0] || an.Exact[1] {
		t.Error("expected fallback on both levels")
	}
	for i := range an.Theta {
		if an.Theta[i] != an.Y[i] {
			t.Errorf("fallback theta%d = %v, want Y = %v", i+1, an.Theta[i], an.Y[i])
		}
	}
}

func TestComputeRejectsInvalidSet(t *testing.T) {
	s := &task.Set{Tasks: []task.Task{{ID: 0, Period: -1}}}
	if _, err := Compute(s, Options{}); err == nil {
		t.Error("invalid set must error")
	}
}

func TestComputeUnschedulableFallsBackToZeroFloor(t *testing.T) {
	// Not fully schedulable (two tasks at 60% each) but R-pattern
	// schedulable with (1,2): alternating mandatory jobs fit. The
	// diverging task gets Y = 0 and theta must still be non-negative.
	s := task.NewSet(task.New(0, 10, 10, 6, 1, 2), task.New(1, 10, 10, 6, 1, 2))
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	if an.Y[1] != 0 {
		t.Errorf("Y2 = %v, want 0 (RTA diverges)", an.Y[1])
	}
	for i, th := range an.Theta {
		if th < 0 {
			t.Errorf("theta%d = %v negative", i+1, th)
		}
	}
}

// simulatePostponed runs the mandatory backup jobs with postponed releases
// under FP and reports whether all meet their deadlines.
func simulatePostponed(s *task.Set, an *Analysis, horizon timeu.Time) bool {
	jobs := rta.MandatoryJobs(s, pattern.RPattern, horizon)
	for idx := range jobs {
		jobs[idx].Release += an.Theta[jobs[idx].TaskID]
	}
	// Re-sort by postponed release.
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && (jobs[j].Release < jobs[j-1].Release ||
			(jobs[j].Release == jobs[j-1].Release && jobs[j].TaskID < jobs[j-1].TaskID)); j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
	type act struct {
		j   rta.MandatoryJob
		rem timeu.Time
	}
	var ready []act
	now := timeu.Time(0)
	next := 0
	for next < len(jobs) || len(ready) > 0 {
		if len(ready) == 0 {
			if next >= len(jobs) {
				break
			}
			if jobs[next].Release > now {
				now = jobs[next].Release
			}
		}
		for next < len(jobs) && jobs[next].Release <= now {
			a := act{j: jobs[next], rem: jobs[next].WCET}
			pos := len(ready)
			for pos > 0 && ready[pos-1].j.TaskID > a.j.TaskID {
				pos--
			}
			ready = append(ready, act{})
			copy(ready[pos+1:], ready[pos:])
			ready[pos] = a
			next++
		}
		cur := &ready[0]
		until := now + cur.rem
		if next < len(jobs) && jobs[next].Release < until {
			until = jobs[next].Release
		}
		cur.rem -= until - now
		now = until
		if cur.rem == 0 {
			if now > cur.j.Deadline {
				return false
			}
			ready = ready[1:]
		}
	}
	return true
}

// TestPostponedScheduleMeetsDeadlinesFig5 verifies the Fig. 5(b) claim:
// under the postponed releases all backup jobs still meet deadlines.
func TestPostponedScheduleMeetsDeadlinesFig5(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	if !simulatePostponed(s, an, ms(300)) {
		t.Error("postponed schedule misses a deadline")
	}
}

// Property: for random small schedulable sets, the postponed mandatory
// schedule never misses a deadline (Theorem 1's backup half).
func TestPostponedScheduleProperty(t *testing.T) {
	f := func(p1, p2, p3, c1, c2, c3, k1, k2, k3 uint8) bool {
		mkTask := func(id int, pr, cr, kr uint8) task.Task {
			period := timeu.Time(pr%5+1) * 5 * timeu.Millisecond // 5..25ms
			k := int(kr%4) + 2
			m := k - 1 - int(kr%2)
			if m < 1 {
				m = 1
			}
			wcet := timeu.Time(cr%5+1) * period / 12
			if wcet < 1 {
				wcet = 1
			}
			return task.Task{ID: id, Period: period, Deadline: period, WCET: wcet, M: m, K: k}
		}
		s := task.NewSet(mkTask(0, p1, c1, k1), mkTask(1, p2, c2, k2), mkTask(2, p3, c3, k3))
		if s.Validate() != nil || !rta.SchedulableRTA(s) {
			return true
		}
		an, err := Compute(s, Options{Pattern: pattern.RPattern})
		if err != nil {
			return false
		}
		return simulatePostponed(s, an, 2*s.MKHyperperiod(timeu.Second))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerifyCleanOnFig5(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	if v := an.Verify(s, pattern.RPattern, ms(3000)); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestVerifyCatchesExcessivePostponement(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: postpone tau2's backups by far too much.
	an.Theta[1] = ms(12) // release+12+8 = 20 > deadline 15
	v := an.Verify(s, pattern.RPattern, ms(300))
	if len(v) == 0 {
		t.Fatal("excessive theta not caught")
	}
	if v[0].TaskID != 1 {
		t.Errorf("violation attributed to tau%d, want tau2", v[0].TaskID+1)
	}
	if v[0].String() == "" {
		t.Error("violation must render")
	}
}

// TestThreeTaskWorkedExample pins a hand-computed three-task analysis.
// tau1=(8,8,2,1,2): mandatory job 1 per 2; theta1 = 8-2 = 6.
// tau2=(8,8,2,1,2): mandatory job 1 per 2 (r=0,d=8).
//
//	IP(J'21): d=8, r̃11=6 in (0,8). At 8: 8-(2+2)-0 = 4 (J'11: d=8>0, r̃=6<8).
//	At 6: 6-(2+0)-0 = 4 (r̃11=6 not < 6). theta21 = 4; hyperperiod level2
//	= 16; J23 at r=16 outside [0,16). theta2 = 4.
//
// tau3=(16,16,4,1,2): mandatory job 1 (r=0,d=16).
//
//	HP postponed: r̃11=6, r̃21=4 (within (0,16)); also r̃12? tau1 job 3 at
//	r=16 -> outside. IP = {16, 6, 4}.
//	At 16: 16-(4+2+2)-0 = 8. At 6: 6-(4+2[J'21 r̃=4<6])-0 = 0.
//	At 4: 4-(4+0)-0 = 0. theta3 = min over jobs {max{8,0,0}} = 8.
func TestThreeTaskWorkedExample(t *testing.T) {
	s := task.NewSet(
		task.New(0, 8, 8, 2, 1, 2),
		task.New(1, 8, 8, 2, 1, 2),
		task.New(2, 16, 16, 4, 1, 2),
	)
	an, err := Compute(s, Options{Pattern: pattern.RPattern})
	if err != nil {
		t.Fatal(err)
	}
	if an.Theta[0] != ms(6) {
		t.Errorf("theta1 = %v, want 6ms", an.Theta[0])
	}
	if an.Theta[1] != ms(4) {
		t.Errorf("theta2 = %v, want 4ms", an.Theta[1])
	}
	if an.Theta[2] != ms(8) {
		t.Errorf("theta3 = %v, want 8ms", an.Theta[2])
	}
	if v := an.Verify(s, pattern.RPattern, ms(1600)); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
