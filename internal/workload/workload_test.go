package workload

import (
	"math"
	"testing"

	"repro/internal/timeu"
)

func TestCandidateRespectsConfig(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 1)
	for i := 0; i < 200; i++ {
		s, err := g.Candidate(0.4)
		if err != nil {
			continue // infeasible draws are expected occasionally
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generated set invalid: %v", err)
		}
		if n := s.N(); n < 5 || n > 10 {
			t.Fatalf("set size %d outside [5,10]", n)
		}
		for _, tk := range s.Tasks {
			if tk.Period < 5*timeu.Millisecond || tk.Period > 50*timeu.Millisecond {
				t.Fatalf("period %v outside [5,50]ms", tk.Period)
			}
			if tk.Period%timeu.Millisecond != 0 {
				t.Fatalf("period %v not whole ms", tk.Period)
			}
			if tk.K < 2 || tk.K > 20 {
				t.Fatalf("k = %d outside [2,20]", tk.K)
			}
			if tk.M < 1 || tk.M >= tk.K {
				t.Fatalf("(m,k) = (%d,%d) violates 0<m<k", tk.M, tk.K)
			}
			if tk.Deadline != tk.Period {
				t.Fatalf("deadline != period")
			}
		}
	}
}

func TestCandidateHitsUtilizationTarget(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 2)
	var sum float64
	n := 0
	for i := 0; i < 200; i++ {
		s, err := g.Candidate(0.5)
		if err != nil {
			continue
		}
		sum += s.MKUtilization()
		n++
	}
	if n == 0 {
		t.Fatal("no feasible candidates at U=0.5")
	}
	// Rounding and the WCET floor perturb each set slightly; the mean
	// must track the target closely.
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean (m,k)-utilization %v, want ~0.5", mean)
	}
}

func TestCandidateRejectsBadTarget(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 3)
	if _, err := g.Candidate(0); err == nil {
		t.Error("zero target must error")
	}
	if _, err := g.Candidate(-1); err == nil {
		t.Error("negative target must error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(DefaultConfig(), 42)
	b := NewGenerator(DefaultConfig(), 42)
	sa, ea := a.Candidate(0.3)
	sb, eb := b.Candidate(0.3)
	if (ea == nil) != (eb == nil) {
		t.Fatal("determinism broken (error)")
	}
	if ea == nil && sa.String() != sb.String() {
		t.Fatal("determinism broken (content)")
	}
}

func TestIntervals(t *testing.T) {
	ivs := Intervals(0.1, 1.0, 0.1)
	if len(ivs) != 9 {
		t.Fatalf("got %d intervals, want 9", len(ivs))
	}
	if ivs[0].Lo != 0.1 || math.Abs(ivs[8].Hi-1.0) > 1e-9 {
		t.Errorf("bounds wrong: %v .. %v", ivs[0], ivs[8])
	}
	if math.Abs(ivs[0].Mid()-0.15) > 1e-9 {
		t.Errorf("Mid = %v", ivs[0].Mid())
	}
	if ivs[0].String() != "[0.10,0.20)" {
		t.Errorf("String = %q", ivs[0].String())
	}
}

func TestGenerateIntervalLowUtil(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 7)
	res := g.GenerateInterval(Interval{0.2, 0.3}, 5, 2000)
	if len(res.Sets) != 5 {
		t.Fatalf("got %d sets (candidates %d), want 5", len(res.Sets), res.Candidates)
	}
	for _, s := range res.Sets {
		u := s.MKUtilization()
		if u < 0.2 || u >= 0.3 {
			t.Errorf("set utilization %v outside bucket", u)
		}
		if !g.Schedulable(s) {
			t.Error("unschedulable set accepted")
		}
	}
}

func TestGenerateIntervalGivesUp(t *testing.T) {
	// Absurd bucket: utilization near 2 cannot be R-pattern schedulable
	// (mandatory bursts exceed the processor); the generator must stop at
	// the candidate cap, not loop forever.
	g := NewGenerator(DefaultConfig(), 8)
	res := g.GenerateInterval(Interval{1.9, 2.0}, 5, 50)
	if res.Candidates != 50 {
		t.Errorf("candidates = %d, want cap 50", res.Candidates)
	}
	if len(res.Sets) != 0 {
		t.Errorf("got %d sets at U≈2, want 0", len(res.Sets))
	}
}

func TestSchedulableFilterMatters(t *testing.T) {
	// At high utilization most candidates are rejected; verify the filter
	// is actually doing work (acceptance strictly below 100%).
	g := NewGenerator(DefaultConfig(), 9)
	res := g.GenerateInterval(Interval{0.7, 0.8}, 3, 3000)
	if res.Candidates == len(res.Sets) {
		t.Errorf("filter accepted everything at U=0.7 (%d sets)", len(res.Sets))
	}
}

func TestHarmonicPeriods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HarmonicPeriods = true
	g := NewGenerator(cfg, 4)
	menuP := map[timeu.Time]bool{}
	for _, p := range harmonicPeriodMenu {
		menuP[p] = true
	}
	menuK := map[int]bool{}
	for _, k := range harmonicKMenu {
		menuK[k] = true
	}
	for i := 0; i < 100; i++ {
		s, err := g.Candidate(0.4)
		if err != nil {
			continue
		}
		for _, tk := range s.Tasks {
			if !menuP[tk.Period] {
				t.Fatalf("period %v not in harmonic menu", tk.Period)
			}
			if !menuK[tk.K] {
				t.Fatalf("k %d not in harmonic menu", tk.K)
			}
		}
		// The whole point: the (m,k)-hyperperiod stays tractable.
		if h := s.MKHyperperiod(10 * timeu.Second); h >= 10*timeu.Second {
			t.Fatalf("harmonic hyperperiod saturated: %v", h)
		}
	}
}
