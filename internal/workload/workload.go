// Package workload generates the random periodic task sets of the
// paper's evaluation (§V): five to ten tasks per set, periods uniform in
// [5,50] ms, ki uniform in [2,20] with 0 < mi < ki, WCETs drawn so the
// total (m,k)-utilization Σ mi·Ci/(ki·Pi) hits a target drawn from the
// current 0.1-wide utilization interval, and a schedulability filter that
// keeps only sets satisfying the premise of Theorem 1 (mandatory jobs
// schedulable under the static R-pattern). Each interval collects at
// least 20 schedulable sets or gives up after 5000 candidates, exactly as
// in the paper.
package workload

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Config parameterizes generation; DefaultConfig reproduces §V.
type Config struct {
	// NTasksMin..NTasksMax bound the set size (paper: 5..10).
	NTasksMin, NTasksMax int
	// PeriodMin..PeriodMax bound the periods (paper: 5..50 ms), drawn as
	// whole milliseconds.
	PeriodMin, PeriodMax timeu.Time
	// KMin..KMax bound ki (paper: 2..20); mi is uniform in [1, ki-1].
	KMin, KMax int
	// MinWCET floors the execution times so numerical dust cannot create
	// degenerate jobs (50 µs by default; the paper does not specify).
	MinWCET timeu.Time
	// Pattern is the static partition used by the schedulability filter.
	Pattern pattern.Kind
	// SchedCap bounds the R-pattern schedulability simulation horizon.
	SchedCap timeu.Time
	// RequireFullRTA additionally demands full FP schedulability (every
	// job, not just mandatory ones) — OFF by default; the paper's premise
	// is R-pattern schedulability.
	RequireFullRTA bool
	// HarmonicPeriods restricts periods to a divisor-friendly menu
	// ({5,10,20,25,40,50} ms) and k to {2,4,5,8,10}, keeping the
	// (m,k)-hyperperiods small enough that the θ analysis of Defs. 2–5
	// stays exact instead of falling back to Yi. Off by default (the
	// paper draws periods uniformly).
	HarmonicPeriods bool
}

// harmonicPeriodMenu and harmonicKMenu keep LCM(ki·Pi) within 1 s.
var (
	harmonicPeriodMenu = []timeu.Time{
		5 * timeu.Millisecond, 10 * timeu.Millisecond, 20 * timeu.Millisecond,
		25 * timeu.Millisecond, 40 * timeu.Millisecond, 50 * timeu.Millisecond,
	}
	harmonicKMenu = []int{2, 4, 5, 8, 10}
)

// DefaultConfig returns the paper's §V parameters.
func DefaultConfig() Config {
	return Config{
		NTasksMin: 5,
		NTasksMax: 10,
		PeriodMin: 5 * timeu.Millisecond,
		PeriodMax: 50 * timeu.Millisecond,
		KMin:      2,
		KMax:      20,
		MinWCET:   50 * timeu.Microsecond,
		Pattern:   pattern.RPattern,
		SchedCap:  10 * timeu.Second,
	}
}

// Generator draws task sets from its own deterministic stream.
type Generator struct {
	cfg Config
	rng *stats.Rand
}

// NewGenerator builds a generator with the given config and seed.
func NewGenerator(cfg Config, seed uint64) *Generator {
	return &Generator{cfg: cfg, rng: stats.NewRand(seed)}
}

// uunifast splits total utilization across n tasks uniformly at random
// (Bini & Buttazzo's UUniFast), the standard unbiased splitter.
func (g *Generator) uunifast(n int, total float64) []float64 {
	us := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(g.rng.Float64(), 1/float64(n-1-i))
		us[i] = sum - next
		sum = next
	}
	us[n-1] = sum
	return us
}

// Candidate draws one random task set with total (m,k)-utilization
// targetU (no schedulability filtering). It errors only when the target
// is infeasible for the drawn structure (some Ci would exceed its
// deadline even after clamping, or fall below MinWCET).
func (g *Generator) Candidate(targetU float64) (*task.Set, error) {
	if targetU <= 0 {
		return nil, errors.New("workload: non-positive utilization target")
	}
	n := g.cfg.NTasksMin
	if g.cfg.NTasksMax > g.cfg.NTasksMin {
		n += g.rng.Intn(g.cfg.NTasksMax - g.cfg.NTasksMin + 1)
	}
	us := g.uunifast(n, targetU)
	tasks := make([]task.Task, n)
	for i := 0; i < n; i++ {
		var period timeu.Time
		var k int
		if g.cfg.HarmonicPeriods {
			period = harmonicPeriodMenu[g.rng.Intn(len(harmonicPeriodMenu))]
			k = harmonicKMenu[g.rng.Intn(len(harmonicKMenu))]
		} else {
			periodMS := int64(g.cfg.PeriodMin/timeu.Millisecond) +
				g.rng.Int64n(int64((g.cfg.PeriodMax-g.cfg.PeriodMin)/timeu.Millisecond)+1)
			period = timeu.Time(periodMS) * timeu.Millisecond
			k = g.cfg.KMin + g.rng.Intn(g.cfg.KMax-g.cfg.KMin+1)
		}
		m := 1 + g.rng.Intn(k-1)
		// Ci = ui · ki · Pi / mi  (inverting the (m,k)-utilization).
		wcet := timeu.Time(math.Round(us[i] * float64(k) * float64(period) / float64(m)))
		if wcet < g.cfg.MinWCET {
			wcet = g.cfg.MinWCET
		}
		if wcet > period {
			return nil, fmt.Errorf("workload: task %d infeasible (C=%v > D=%v)", i+1, wcet, period)
		}
		tasks[i] = task.Task{
			ID:       i,
			Period:   period,
			Deadline: period,
			WCET:     wcet,
			M:        m,
			K:        k,
		}
	}
	s := task.NewSet(tasks...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Schedulable reports whether s passes the evaluation's filter.
func (g *Generator) Schedulable(s *task.Set) bool {
	if g.cfg.RequireFullRTA && !rta.SchedulableRTA(s) {
		return false
	}
	return rta.SchedulableRPattern(s, g.cfg.Pattern, g.cfg.SchedCap)
}

// Interval is one (m,k)-utilization bucket [Lo, Hi).
type Interval struct{ Lo, Hi float64 }

func (iv Interval) String() string { return fmt.Sprintf("[%.2f,%.2f)", iv.Lo, iv.Hi) }

// Mid returns the interval midpoint (Figure 6's x coordinate).
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Intervals builds the sweep buckets: [lo, lo+step), ..., up to hi.
func Intervals(lo, hi, step float64) []Interval {
	var out []Interval
	for x := lo; x < hi-1e-9; x += step {
		out = append(out, Interval{Lo: x, Hi: math.Min(x+step, hi)})
	}
	return out
}

// IntervalResult reports one bucket's generation statistics.
type IntervalResult struct {
	Interval   Interval
	Sets       []*task.Set
	Candidates int // candidates drawn (including infeasible/unschedulable)
}

// GenerateInterval rejection-samples schedulable sets whose total
// (m,k)-utilization lies in iv, stopping at want sets or maxCandidates
// attempts (paper: 20 and 5000).
func (g *Generator) GenerateInterval(iv Interval, want, maxCandidates int) IntervalResult {
	res := IntervalResult{Interval: iv}
	for res.Candidates < maxCandidates && len(res.Sets) < want {
		res.Candidates++
		target := iv.Lo + g.rng.Float64()*(iv.Hi-iv.Lo)
		s, err := g.Candidate(target)
		if err != nil {
			continue
		}
		// The WCET floor can push the realized utilization out of the
		// bucket; keep the buckets honest.
		if u := s.MKUtilization(); u < iv.Lo || u >= iv.Hi {
			continue
		}
		if !g.Schedulable(s) {
			continue
		}
		res.Sets = append(res.Sets, s)
	}
	return res
}
