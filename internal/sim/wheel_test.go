package sim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeu"
	"repro/internal/workload"
)

func wheelFor(set *task.Set) *timeWheel {
	w := &timeWheel{}
	w.sizeFor(set)
	return w
}

func TestWheelSizeForGCD(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 8, 1, 1, 2), task.New(1, 25, 20, 1, 1, 2))
	w := wheelFor(s)
	// GCD(10ms, 8ms, 25ms, 20ms) = 1ms.
	if want := timeu.Millisecond; w.delta != want {
		t.Fatalf("delta = %v, want %v", w.delta, want)
	}
	s2 := task.NewSet(task.New(0, 20, 20, 1, 1, 2), task.New(1, 40, 40, 1, 1, 2))
	if w2 := wheelFor(s2); w2.delta != 20*timeu.Millisecond {
		t.Fatalf("harmonic delta = %v, want 20ms", w2.delta)
	}
}

func TestWheelScheduleNextAfter(t *testing.T) {
	w := wheelFor(oneTask())
	for _, x := range []timeu.Time{ms(7), ms(3), ms(3), ms(11), ms(5000)} {
		w.schedule(x)
	}
	// nextAfter is strictly-after: advancing past an instant consumes it,
	// duplicates included.
	now := timeu.Time(0)
	for _, want := range []timeu.Time{ms(3), ms(7), ms(11), ms(5000), timeu.Infinity} {
		if got := w.nextAfter(now); got != want {
			t.Fatalf("nextAfter(%v) = %v, want %v", now, got, want)
		}
		now = want
	}
	if w.count != 0 {
		t.Fatalf("count = %d after draining, want 0", w.count)
	}
}

func TestWheelDuplicatesAndUnschedule(t *testing.T) {
	w := wheelFor(oneTask())
	w.schedule(ms(4))
	w.schedule(ms(4))
	w.unschedule(ms(4))
	if got := w.nextAfter(0); got != ms(4) {
		t.Fatalf("one duplicate must survive unschedule, got next %v", got)
	}
	w.unschedule(ms(4))
	// Unscheduling an absent instant must be a tolerated no-op.
	w.unschedule(ms(4))
	if got := w.nextAfter(0); got != timeu.Infinity {
		t.Fatalf("wheel should be empty, got next %v", got)
	}
	if w.count != 0 {
		t.Fatalf("count = %d, want 0", w.count)
	}
}

func TestWheelLapSeparation(t *testing.T) {
	w := wheelFor(oneTask()) // delta = 10ms for the (10,10) task
	// Same bucket, one lap apart: the windowed walk must return the
	// near instant, never the far lap.
	near, far := ms(30), ms(30)+wheelBuckets*w.delta
	w.schedule(far)
	w.schedule(near)
	if got := w.nextAfter(0); got != near {
		t.Fatalf("nextAfter(0) = %v, want near lap %v", got, near)
	}
	if got := w.nextAfter(near); got != far {
		t.Fatalf("nextAfter(near) = %v, want far lap %v", got, far)
	}
}

func TestWheelSparseTailFallback(t *testing.T) {
	w := wheelFor(oneTask())
	// Farther than wheelScanLimit windows away: only scanAll can find it.
	lone := (wheelScanLimit + 50) * w.delta
	w.schedule(lone)
	if got := w.nextAfter(0); got != lone {
		t.Fatalf("sparse tail: nextAfter(0) = %v, want %v", got, lone)
	}
}

// linearNextEvent re-implements the pre-wheel linear scan over the
// engine's state: next task release, running-copy completions, open pair
// deadlines, pending activations and promotions, and the permanent fault.
// The wheel must reproduce it instant for instant — the engine's stop set
// decides the DPD sleep/idle split, so a single spurious or missing stop
// changes energy accounting.
func linearNextEvent(e *Engine) timeu.Time {
	next := e.cfg.Horizon
	add := func(t timeu.Time) {
		if t > e.now && t < next {
			next = t
		}
	}
	for i, t := range e.set.Tasks {
		add(t.Release(e.scr.nextIdx[i]))
	}
	for pid := range e.procs {
		if cur := e.procs[pid].cur; cur != nil {
			add(e.now + cur.Remaining)
		}
	}
	for _, p := range e.scr.open {
		add(p.dl)
	}
	for pid := 0; pid < NumProcs; pid++ {
		for _, j := range e.scr.live[pid] {
			if j.Done || j.Canceled {
				continue
			}
			add(j.Release)
			if j.Promote > e.now && j.Promote < j.Deadline {
				add(j.Promote)
			}
		}
	}
	if pf := e.cfg.Faults.Permanent; pf != nil && e.permHit == nil {
		add(pf.At)
	}
	return next
}

// wheelPolicy stresses every class of wheel-scheduled instant: postponed
// backup activations (theta), dual-priority-style promotions, and
// settle-skips, with single-processor routing after a permanent fault.
type wheelPolicy struct {
	theta     []timeu.Time
	promote   []timeu.Time // Promote = Release + promote[id] when positive
	skipEvery int
	dead      bool
}

func (p *wheelPolicy) Name() string                              { return "test-wheel" }
func (p *wheelPolicy) Init(e *Engine) error                      { return nil }
func (p *wheelPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }
func (p *wheelPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Index < b.Index
}
func (p *wheelPolicy) OnSettled(e *Engine, taskID, index int, effective bool) {}
func (p *wheelPolicy) OnPermanentFault(e *Engine, dead int)                   { p.dead = true }

func (p *wheelPolicy) Release(e *Engine, t task.Task, index int) {
	if p.skipEvery > 0 && (index+t.ID)%p.skipEvery == 0 {
		e.SettleSkip(t.ID, index)
		return
	}
	main := e.NewJob(t, index, task.Mandatory)
	if p.promote != nil && p.promote[t.ID] > 0 {
		main.Promote = main.Release + p.promote[t.ID]
	}
	if p.dead {
		e.Admit(main, e.Survivor())
		return
	}
	e.Admit(main, Primary)
	var th timeu.Time
	if p.theta != nil {
		th = p.theta[t.ID]
	}
	e.Admit(e.NewBackup(t, index, th), Spare)
}

// runCrossChecked runs one simulation comparing the wheel's nextEventTime
// against linearNextEvent at every iteration.
func runCrossChecked(t *testing.T, s *task.Set, pol Policy, plan *fault.Plan, scr *Scratch) *Result {
	t.Helper()
	horizon := 200 * timeu.Millisecond
	eng, err := New(s, pol, Config{Horizon: horizon, Faults: plan, RecordTrace: true, Scratch: scr})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.checkNext = func(next timeu.Time) {
		if ref := linearNextEvent(eng); next != ref {
			t.Fatalf("wheel next %v != linear-scan next %v at now=%v (set %v)", next, ref, eng.now, s)
		}
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestWheelMatchesLinearScanProperty is the randomized dispatch-order
// property: across random task sets, thetas, promotions, skips and fault
// plans, every wheel-produced event instant equals the old linear scan's.
func TestWheelMatchesLinearScanProperty(t *testing.T) {
	gen := workload.NewGenerator(workload.DefaultConfig(), 0xCA1E)
	rng := stats.NewRand(0x0DD5)
	scr := NewScratch() // reused across runs: warm-scratch runs must match too
	sets := 0
	for draw := 0; sets < 30 && draw < 300; draw++ {
		target := 0.2 + 0.6*rng.Float64()
		s, err := gen.Candidate(target)
		if err != nil {
			continue
		}
		sets++
		pol := &wheelPolicy{
			theta:   make([]timeu.Time, s.N()),
			promote: make([]timeu.Time, s.N()),
		}
		if sets%3 == 0 {
			pol.skipEvery = 3
		}
		for i := range s.Tasks {
			// Random off-grid instants exercise the non-divisible bucket
			// hashing paths.
			pol.theta[i] = timeu.Time(rng.Int64n(int64(s.Tasks[i].Deadline)))
			if rng.Intn(2) == 0 {
				pol.promote[i] = timeu.Time(1 + rng.Int64n(int64(s.Tasks[i].Deadline)))
			}
		}
		scenario := fault.Scenario(sets % 3)
		faultSeed := rng.Uint64()
		// Same seed → same fault realization: a fresh-scratch run and a
		// warm-scratch rerun must produce identical traces.
		fresh := runCrossChecked(t, s, pol,
			fault.NewPlan(scenario, 200*timeu.Millisecond, stats.NewRand(faultSeed)), nil)
		pol.dead = false
		warm := runCrossChecked(t, s, pol,
			fault.NewPlan(scenario, 200*timeu.Millisecond, stats.NewRand(faultSeed)), scr)
		if len(fresh.Trace) != len(warm.Trace) {
			t.Fatalf("set %d: fresh trace has %d segments, warm %d", sets, len(fresh.Trace), len(warm.Trace))
		}
		for i := range fresh.Trace {
			if fresh.Trace[i] != warm.Trace[i] {
				t.Fatalf("set %d segment %d: fresh %+v != warm %+v", sets, i, fresh.Trace[i], warm.Trace[i])
			}
		}
	}
	if sets < 10 {
		t.Fatalf("only %d candidate sets drawn — generator config drifted?", sets)
	}
}

func TestWheelSameInstantBatching(t *testing.T) {
	// Engineered coincidence at t=20ms:
	//   - τ0 (period 10ms) releases job 3 at 20,
	//   - τ1 job 1 (release 4ms, deadline 16ms) cannot finish by 20 and
	//     settles as a miss exactly there, cancelling its backup whose
	//     postponed activation also lands on 20,
	//   - the spare — asleep since 11ms — wakes at 20 when the new τ0
	//     backup is admitted.
	// One wheel advance must drain all of it: a single stop at 20ms.
	t0 := task.New(0, 10, 10, 1, 1, 2)
	t1 := task.New(1, 20, 16, 16, 1, 2)
	t1.Offset = ms(4)
	s := task.NewSet(t0, t1)
	col := &metrics.Collector{}
	eng, err := New(s, &wheelPolicy{theta: []timeu.Time{ms(2), ms(16)}}, Config{
		Horizon: ms(30),
		Sink:    col,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var stops []timeu.Time
	eng.checkNext = func(next timeu.Time) {
		if ref := linearNextEvent(eng); next != ref {
			t.Fatalf("wheel next %v != linear-scan next %v at now=%v", next, ref, eng.now)
		}
		stops = append(stops, next)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	at20 := 0
	for i, st := range stops {
		if st == ms(20) {
			at20++
		}
		if i > 0 && st <= stops[i-1] {
			t.Fatalf("stops not strictly increasing: %v after %v", st, stops[i-1])
		}
	}
	if at20 != 1 {
		t.Fatalf("expected exactly one stop at 20ms (same-instant batching), got %d in %v", at20, stops)
	}
	kinds := map[metrics.EventKind]bool{}
	for _, ev := range col.Events {
		if ev.T == ms(20) {
			kinds[ev.Kind] = true
		}
	}
	for _, want := range []metrics.EventKind{metrics.EvRelease, metrics.EvSettle, metrics.EvCancel, metrics.EvWake, metrics.EvAdmit} {
		if !kinds[want] {
			t.Errorf("no %v event at the coincident instant 20ms (got kinds %v)", want, kinds)
		}
	}
}
