// Package static implements the statically partitioned baselines of the
// paper: MKSS_ST (concurrent main+backup execution of every R-pattern
// mandatory job) and MKSS_DP (dual-priority procrastination), plus the
// MKSS-DP-background extension. All three classify jobs offline from the
// static (m,k) pattern; the dynamic schemes live in the sibling dynamic
// and dbp packages.
package static

import (
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/sim/policy"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Canonical policy names, as registered and reported.
const (
	NameST           = "MKSS-ST"
	NameDP           = "MKSS-DP"
	NameDPBackground = "MKSS-DP-background"
)

func init() {
	policy.Register(NameST, func(opts policy.Options) sim.Policy {
		return &stPolicy{opts: opts}
	})
	policy.Register(NameDP, func(opts policy.Options) sim.Policy {
		return &dpPolicy{opts: opts}
	})
	policy.Register(NameDPBackground, func(opts policy.Options) sim.Policy {
		return &dpPolicy{opts: opts, background: true}
	})
}

// stPolicy is MKSS_ST: static pattern, both copies of every mandatory job
// released concurrently (main on the primary, backup on the spare), plain
// FP on each processor, optional jobs never executed. It is the energy
// reference of §V: the two processors run near-identical schedules, so
// backup cancellation saves almost nothing.
type stPolicy struct {
	opts policy.Options
	dead [sim.NumProcs]bool
}

func (p *stPolicy) Name() string { return NameST }

func (p *stPolicy) Init(e *sim.Engine) error { return nil }

func (p *stPolicy) Release(e *sim.Engine, t task.Task, index int) {
	if !policy.StaticMandatory(p.opts, t, index) {
		e.SettleSkip(t.ID, index)
		return
	}
	e.Counters().MandatoryJobs++
	main := e.NewJob(t, index, task.Mandatory)
	if p.dead[sim.Primary] || p.dead[sim.Spare] {
		// Single survivor: one copy only.
		e.Admit(main, e.Survivor())
		return
	}
	e.Admit(main, sim.Primary)
	e.Admit(e.NewBackup(t, index, 0), sim.Spare)
}

func (p *stPolicy) Less(now timeu.Time, a, b *task.Job) bool { return policy.FPLess(a, b) }

func (p *stPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }

func (p *stPolicy) OnSettled(e *sim.Engine, taskID, index int, effective bool) {}

func (p *stPolicy) OnPermanentFault(e *sim.Engine, dead int) { p.dead[dead] = true }

// dpPolicy is MKSS_DP: the preference-oriented dual-priority baseline
// reconstructed from Figure 1. Main copies alternate across the two
// processors by task index (τ1 main on the primary, τ2 main on the spare,
// ...); each backup runs on the opposite processor with its release
// procrastinated by the promotion interval Yi = Di − Ri (Eq. 2), after
// which it competes at its regular fixed priority. A main that completes
// successfully cancels its backup, which is the entire energy play.
type dpPolicy struct {
	opts policy.Options
	ys   []timeu.Time
	dead [sim.NumProcs]bool
	// background switches to textbook dual-priority (the DPBackground
	// extension): backups are eligible from their nominal release but run
	// in a background band until promotion at r + Yi, instead of being
	// absent until r + Yi.
	background bool
}

func (p *dpPolicy) Name() string {
	if p.background {
		return NameDPBackground
	}
	return NameDP
}

func (p *dpPolicy) Init(e *sim.Engine) error {
	if off := p.opts.Offline; off != nil {
		p.ys = off.PromotionTimes()
	} else {
		p.ys = rta.PromotionTimesSafe(e.Set())
	}
	return nil
}

// mainProc returns the processor hosting task i's main copies (Figure 1's
// alternating assignment).
func (p *dpPolicy) mainProc(taskID int) int { return taskID % sim.NumProcs }

func (p *dpPolicy) Release(e *sim.Engine, t task.Task, index int) {
	if !policy.StaticMandatory(p.opts, t, index) {
		e.SettleSkip(t.ID, index)
		return
	}
	e.Counters().MandatoryJobs++
	main := e.NewJob(t, index, task.Mandatory)
	if p.dead[sim.Primary] || p.dead[sim.Spare] {
		e.Admit(main, e.Survivor())
		return
	}
	mp := p.mainProc(t.ID)
	e.Admit(main, mp)
	if p.background {
		backup := e.NewBackup(t, index, 0)
		backup.Promote = backup.BaseRelease + p.ys[t.ID]
		e.Admit(backup, 1-mp)
	} else {
		e.Admit(e.NewBackup(t, index, p.ys[t.ID]), 1-mp)
	}
}

// dpBand returns 0 (regular) or 1 (background). Only DPBackground's
// pre-promotion backups ever sit in the background band.
func dpBand(now timeu.Time, j *task.Job) int {
	if j.Promote > now {
		return 1
	}
	return 0
}

func (p *dpPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	if p.background {
		ba, bb := dpBand(now, a), dpBand(now, b)
		if ba != bb {
			return ba < bb
		}
	}
	return policy.FPLess(a, b)
}

func (p *dpPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }

func (p *dpPolicy) OnSettled(e *sim.Engine, taskID, index int, effective bool) {}

func (p *dpPolicy) OnPermanentFault(e *sim.Engine, dead int) { p.dead[dead] = true }
