package policy

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/timeu"
)

// fakePolicy is a registry-only stand-in; none of its hooks run.
type fakePolicy struct{ name string }

func (p *fakePolicy) Name() string                                        { return p.name }
func (p *fakePolicy) Init(e *sim.Engine) error                            { return nil }
func (p *fakePolicy) Release(e *sim.Engine, t task.Task, index int)       {}
func (p *fakePolicy) Less(now timeu.Time, a, b *task.Job) bool            { return false }
func (p *fakePolicy) Runnable(now timeu.Time, j *task.Job) bool           { return true }
func (p *fakePolicy) OnSettled(e *sim.Engine, taskID, index int, ok bool) {}
func (p *fakePolicy) OnPermanentFault(e *sim.Engine, dead int)            {}

func TestRegisterAndNew(t *testing.T) {
	Register("test-fake", func(opts Options) sim.Policy {
		if opts.FDThreshold != 1 {
			t.Errorf("FDThreshold default not applied: %d", opts.FDThreshold)
		}
		return &fakePolicy{name: "test-fake"}
	})
	// Case-insensitive lookup.
	for _, name := range []string{"test-fake", "TEST-FAKE", "Test-Fake"} {
		p, err := New(name, Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != "test-fake" {
			t.Errorf("Name() = %q", p.Name())
		}
	}
	found := false
	for _, n := range Names() {
		if n == "test-fake" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v, missing test-fake", Names())
	}
}

func TestNewUnknownNamesRegistered(t *testing.T) {
	_, err := New("no-such-policy", Options{})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("error does not list registered policies: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	Register("test-dup", func(Options) sim.Policy { return &fakePolicy{name: "test-dup"} })
	for _, c := range []struct {
		name  string
		build Builder
	}{
		{"test-dup", func(Options) sim.Policy { return nil }}, // exact dup
		{"TEST-DUP", func(Options) sim.Policy { return nil }}, // case-folded dup
		{"", func(Options) sim.Policy { return nil }},         // empty name
		{"test-nil", nil}, // nil builder
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", c.name)
				}
			}()
			Register(c.name, c.build)
		}()
	}
}

func TestFPLess(t *testing.T) {
	tk := task.New(0, 10, 10, 2, 1, 2)
	tk2 := task.New(1, 10, 10, 2, 1, 2)
	a := task.NewJob(tk, 1, task.Mandatory)
	b := task.NewJob(tk2, 1, task.Mandatory)
	if !FPLess(a, b) || FPLess(b, a) {
		t.Error("task priority ordering wrong")
	}
	c := task.NewJob(tk, 2, task.Mandatory)
	if !FPLess(a, c) {
		t.Error("index ordering wrong")
	}
	bk := task.NewBackup(tk, 1, 0)
	if !FPLess(a, bk) || FPLess(bk, a) {
		t.Error("main-before-backup tiebreak wrong")
	}
}
