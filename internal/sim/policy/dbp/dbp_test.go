package dbp

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/pattern"
	"repro/internal/postpone"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/sim/policy"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeu"
)

// randomSet draws a small task set from a harmonic-ish period pool so the
// hyperperiod stays tiny (≤ 40ms) and the exact walk closes its cycle
// fast. WCETs are kept light enough that θ analysis usually converges;
// sets it rejects are simply skipped by the callers.
func randomSet(rng *stats.Rand) *task.Set {
	periods := []float64{5, 10, 20, 40}
	n := 2 + rng.Intn(3)
	tasks := make([]task.Task, n)
	for i := range tasks {
		p := periods[rng.Intn(len(periods))]
		k := 2 + rng.Intn(4)
		m := 1 + rng.Intn(k-1)
		c := 1 + rng.Intn(3)
		d := p - float64(rng.Intn(2))
		tasks[i] = task.New(i, p, d, float64(c), m, k)
	}
	return task.NewSet(tasks...)
}

// bruteDistance recomputes a job's distance to failure from first
// principles: seed a fresh window with the task's realized outcome prefix,
// then count how many consecutive misses it absorbs before Violated()
// flips. It deliberately avoids FlexibilityDegree, which is what the
// policy uses — the two must agree by Definition 1.
func bruteDistance(m, k int, prefix []bool) int {
	h := pattern.NewHistory(m, k)
	for _, eff := range prefix {
		h.Record(eff)
	}
	for d := 1; ; d++ {
		h.Record(false)
		if h.Violated() {
			return d
		}
	}
}

type classification struct{ taskID, index, dist int }

// TestDistanceBookkeeping is the satellite property test: across random
// sets, fault scenarios and a warm reused Scratch, every distance the
// policy assigns at release equals the brute-force recount from the run's
// own realized outcome prefix. This pins the constrained-deadline
// argument in the dbpPolicy doc comment — the distance recorded at
// release is the exact dynamic value, under faults too.
func TestDistanceBookkeeping(t *testing.T) {
	rng := stats.NewRand(0xdbf)
	scratch := sim.NewScratch()
	scenarios := []fault.Scenario{fault.NoFault, fault.PermanentOnly, fault.PermanentAndTransient}
	runs := 0
	for trial := 0; trial < 60; trial++ {
		s := randomSet(rng)
		horizon := 8 * s.Hyperperiod(timeu.Second)
		var got []classification
		p := &dbpPolicy{
			opts: policy.Options{FDThreshold: 1},
			onClassify: func(taskID, index, dist int) {
				got = append(got, classification{taskID, index, dist})
			},
		}
		plan := fault.NewPlan(scenarios[trial%len(scenarios)], horizon, stats.NewRand(rng.Uint64()))
		cfg := sim.Config{Horizon: horizon, Faults: plan}
		if trial%2 == 1 {
			cfg.Scratch = scratch // warm path: reused arenas must not leak state
		}
		eng, err := sim.New(s, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.Run()
		if err != nil {
			// θ analysis can reject a set whose mandatory load diverges.
			continue
		}
		runs++
		for _, c := range got {
			tk := s.Tasks[c.taskID]
			prefix := r.Outcomes[c.taskID]
			if c.index-1 > len(prefix) {
				t.Fatalf("trial %d: task %d job %d classified but only %d outcomes settled",
					trial, c.taskID, c.index, len(prefix))
			}
			// Constrained deadlines: jobs 1..index-1 settled strictly
			// before this release, so the window at release is exactly
			// the realized prefix.
			want := bruteDistance(tk.M, tk.K, prefix[:c.index-1])
			if c.dist != want {
				t.Errorf("trial %d: task %d job %d classified at distance %d, brute-force recount says %d (prefix %v)",
					trial, c.taskID, c.index, c.dist, want, prefix[:c.index-1])
			}
		}
	}
	if runs < 30 {
		t.Fatalf("only %d/60 trials ran; generator or θ analysis too restrictive", runs)
	}
}

// heavySet biases toward (m,k)-overload: tight constraints (m close to
// k) on heavy WCETs, so the static mandatory set often stays θ-feasible
// while DBP's dynamic promotions pile up and violate. This is the
// refutation half of the agreement corpus — randomSet alone almost never
// produces unschedulable-yet-θ-feasible sets.
func heavySet(rng *stats.Rand) *task.Set {
	periods := []float64{10, 20, 40}
	n := 2 + rng.Intn(2)
	tasks := make([]task.Task, n)
	for i := range tasks {
		p := periods[rng.Intn(len(periods))]
		k := 2 + rng.Intn(3)
		m := k - 1
		c := p/float64(n) + 1 + float64(rng.Intn(4))
		tasks[i] = task.New(i, p, p, c, m, k)
	}
	return task.NewSet(tasks...)
}

// TestExactAgreesWithSimulation pins the acceptance criterion: whenever
// rta.DBPExact returns an exact verdict, a fault-free engine run of the
// MKSS-DBP policy over the proven transient+cycle horizon agrees on
// (m,k)-violation-freedom. Walker and policy are mirror images; any drift
// in dispatch order, θ application or settlement shows up here.
func TestExactAgreesWithSimulation(t *testing.T) {
	rng := stats.NewRand(0x90055)
	exactCount, refuted := 0, 0
	for trial := 0; trial < 120; trial++ {
		s := randomSet(rng)
		if trial%3 == 2 {
			s = heavySet(rng)
		}
		an, err := postpone.Compute(s, postpone.Options{})
		if err != nil {
			continue
		}
		v := rta.DBPExact(s, rta.DBPConfig{Theta: an.Theta})
		if !v.Exact {
			continue
		}
		exactCount++
		if !v.Schedulable {
			refuted++
		}
		h := s.Hyperperiod(rta.DefaultDBPCap)
		spans := v.Transient + v.Cycle
		if spans == 0 {
			// Refutations carry no cycle; cover the walk's full budget.
			spans = rta.DefaultDBPMaxHyperperiods
		}
		horizon := timeu.Time(spans+1) * h
		eng, err := sim.New(s, &dbpPolicy{opts: policy.Options{FDThreshold: 1}}, sim.Config{
			Horizon: horizon,
			Faults:  fault.NoFaults(),
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := r.MKSatisfied(); got != v.Schedulable {
			t.Errorf("trial %d: exact test says schedulable=%v but simulation MKSatisfied=%v\nset: %v\nverdict: %+v\nviolations: %v",
				trial, v.Schedulable, got, s, v, r.ViolationAt)
		}
	}
	if exactCount < 60 || refuted < 5 {
		t.Fatalf("corpus too weak to pin agreement: %d/120 exact verdicts, %d refutations", exactCount, refuted)
	}
}

// TestReleaseClassification pins the two tiers on the paper's Fig. 1 set:
// a fresh window starts every task at its maximal distance, and after
// enough consecutive misses the distance walks down to the promoted tier.
func TestReleaseClassification(t *testing.T) {
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	var first []classification
	p := &dbpPolicy{
		opts: policy.Options{FDThreshold: 1},
		onClassify: func(taskID, index, dist int) {
			if index == 1 {
				first = append(first, classification{taskID, index, dist})
			}
		},
	}
	eng, err := sim.New(s, p, sim.Config{Horizon: timeu.FromMillis(20)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Fresh windows: τ1 (2,4) absorbs 2 misses → distance 3; τ2 (1,2)
	// absorbs 1 → distance 2.
	want := []classification{{0, 1, 3}, {1, 1, 2}}
	if fmt.Sprint(first) != fmt.Sprint(want) {
		t.Errorf("first-job classifications %v, want %v", first, want)
	}
}

// TestRegistryConstructible pins the policy's registry wiring: MKSS-DBP
// is constructible by name and reports its canonical name.
func TestRegistryConstructible(t *testing.T) {
	p, err := policy.New(Name, policy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != Name {
		t.Errorf("Name() = %q, want %q", p.Name(), Name)
	}
	if _, err := policy.New("mkss-dbp", policy.Options{}); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}
