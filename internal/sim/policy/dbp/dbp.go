// Package dbp implements DBP (distance-based priority), the canonical
// dynamic (m,k) scheduling policy of Hamdaoui & Ramanathan, adapted to
// the paper's two-processor standby-sparing system. Goossens
// (arXiv:0805.0200) gives the matching exact schedulability test, ported
// in internal/rta as DBPExact; the test and this policy are deliberately
// mirror images of one another, pinned together by the agreement tests in
// this package.
package dbp

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/postpone"
	"repro/internal/sim"
	"repro/internal/sim/policy"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Name is the canonical policy name, as registered and reported.
const Name = "MKSS-DBP"

func init() {
	policy.Register(Name, func(opts policy.Options) sim.Policy {
		return &dbpPolicy{opts: opts}
	})
}

// dbpPolicy schedules every job by its distance to failure: the number of
// consecutive future deadline misses the task can absorb before its
// (m,k) constraint breaks, computed from the sliding outcome window at
// release (distance = FlexibilityDegree + 1, Definition 1). Smaller
// distance means closer to failure means higher priority.
//
// Jobs at distance 1 are the promoted tier — one more miss is a
// violation — and run as mandatory standby-sparing pairs: main on the
// primary, backup on the spare postponed by θi (Eq. 3), exactly like the
// selective scheme's FD = 0 jobs. Jobs at distance ≥ 2 run as single
// optional copies on the primary, ordered among themselves by distance;
// unlike the selective scheme, DBP admits them all (DBP never skips — it
// de-prioritizes), and an optional copy that can no longer finish by its
// deadline is simply never dispatched, settling as a miss at the
// deadline.
//
// Classic DBP re-evaluates priorities whenever a window slides. Under
// this repository's constrained-deadline task model (D ≤ P) each task has
// at most one unsettled job at any release instant — the previous job
// settles at its deadline at the latest, and the engine processes
// completions and deadlines before releases at the same instant — so a
// job's distance cannot change between its release and its settlement.
// Recording the distance once at release is therefore the exact dynamic
// promotion rule, not an approximation; TestDistanceBookkeeping pins this
// against a brute-force window recount.
type dbpPolicy struct {
	opts policy.Options
	an   *postpone.Analysis
	hist []*pattern.History
	dead [sim.NumProcs]bool

	// onClassify, when non-nil, observes every release classification
	// (task, 1-based job index, distance). Tests hook it to audit the
	// distance bookkeeping; it is never set in production.
	onClassify func(taskID, index, dist int)
}

func (p *dbpPolicy) Name() string { return Name }

func (p *dbpPolicy) Init(e *sim.Engine) error {
	set := e.Set()
	var an *postpone.Analysis
	var err error
	if off := p.opts.Offline; off != nil {
		an, err = off.Postponement()
	} else {
		an, err = postpone.Compute(set, postpone.Options{
			Pattern:        p.opts.Pattern,
			HyperperiodCap: p.opts.HyperperiodCap,
		})
	}
	if err != nil {
		return fmt.Errorf("dbp: %w", err)
	}
	p.an = an
	p.hist = policy.Histories(set)
	return nil
}

func (p *dbpPolicy) Release(e *sim.Engine, t task.Task, index int) {
	dist := p.hist[t.ID].FlexibilityDegree() + 1
	if p.onClassify != nil {
		p.onClassify(t.ID, index, dist)
	}
	if dist == 1 {
		e.Counters().MandatoryJobs++
		main := e.NewJob(t, index, task.Mandatory)
		main.FD = dist
		if p.dead[sim.Primary] || p.dead[sim.Spare] {
			e.Admit(main, e.Survivor())
			return
		}
		e.Admit(main, sim.Primary)
		backup := e.NewBackup(t, index, p.an.Theta[t.ID])
		backup.FD = dist
		e.Admit(backup, sim.Spare)
		return
	}
	if policy.StaticMandatory(p.opts, t, index) {
		e.Counters().Demotions++
	}
	e.Counters().OptionalSelected++
	j := e.NewJob(t, index, task.Optional)
	j.FD = dist
	e.Admit(j, sim.Primary)
}

func (p *dbpPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	// Distance first (the DBP rule); the promoted distance-1 tier is
	// exactly the mandatory class, so class never disagrees with FD here
	// — the explicit check only breaks FD ties after a permanent fault
	// migrates mixed copies onto the survivor.
	if a.FD != b.FD {
		return a.FD < b.FD
	}
	if a.Class != b.Class {
		return a.Class == task.Mandatory
	}
	return policy.FPLess(a, b)
}

func (p *dbpPolicy) Runnable(now timeu.Time, j *task.Job) bool {
	return j.Class == task.Mandatory || !j.Expired(now)
}

func (p *dbpPolicy) OnSettled(e *sim.Engine, taskID, index int, effective bool) {
	p.hist[taskID].Record(effective)
}

func (p *dbpPolicy) OnPermanentFault(e *sim.Engine, dead int) { p.dead[dead] = true }
