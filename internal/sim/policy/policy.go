// Package policy is the plug-in layer between the simulation kernel and
// the concrete scheduling schemes. The engine (internal/sim) owns time,
// processors, energy and settlement; everything approach-specific — which
// job copy goes where, in which priority band, when backups become
// eligible — lives in a sim.Policy implementation registered here by
// name.
//
// Implementations live in sub-packages (static, dynamic, dbp) and
// register themselves from init, so adding a scheme never touches the
// kernel: a new policy package imports sim and this registry, calls
// Register, and becomes selectable by name from every cmd/ binary. The
// one-way dependency (policy packages import sim, never the reverse) is
// enforced by the depdag lint table.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Options tunes policy construction; the zero value reproduces the paper.
type Options struct {
	// Pattern is the static partition used by ST/DP and for the θ
	// analysis; the paper uses the R-pattern.
	Pattern pattern.Kind
	// HyperperiodCap bounds the θ analysis (see postpone.Options).
	HyperperiodCap timeu.Time
	// NoAlternation disables the selective scheme's primary/spare
	// alternation of eligible optional jobs (ablation: everything goes to
	// the primary's OJQ).
	NoAlternation bool
	// FDThreshold is the flexibility-degree eligibility threshold of the
	// selective scheme; optional jobs with 1 <= FD <= FDThreshold are
	// selected. Zero means the paper's value, 1. (Ablation knob.)
	FDThreshold int
	// UsePromotionForTheta makes the selective scheme postpone backups by
	// Yi instead of θi (ablation: isolates the benefit of Defs. 2–5).
	UsePromotionForTheta bool
	// Offline, when non-nil, supplies memoized offline analyses (promotion
	// intervals, θ, pattern tables) for the set under simulation, so
	// repeated runs of the same set skip the per-Init recomputation. The
	// products must have been derived with the same Pattern and
	// HyperperiodCap, from a set fingerprint-identical to the one
	// simulated; repro.Runner guarantees both.
	Offline *analysis.Products
}

// Builder constructs one policy instance from options. Builders must be
// cheap: per-set analysis belongs in the policy's Init, where the engine
// and its memoized offline products are available.
type Builder func(Options) sim.Policy

// registry maps lower-cased policy names to builders; names keeps the
// canonical spellings in registration order so listings never iterate
// the map. Registration runs from package inits (serialized by the
// runtime); lookups afterwards are read-only, so no lock is needed.
var (
	registry = map[string]Builder{}
	names    []string
)

// Register adds a policy under its canonical name. It panics on a
// duplicate or empty registration — both are programmer errors caught at
// process start by any test that imports the implementation packages.
func Register(name string, build Builder) {
	if name == "" || build == nil {
		panic("policy: Register with empty name or nil builder")
	}
	key := strings.ToLower(name)
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[key] = build
	names = append(names, name)
}

// New builds the named policy (case-insensitive). The FDThreshold default
// is applied here so every construction path sees the paper's value.
func New(name string, opts Options) (sim.Policy, error) {
	if opts.FDThreshold == 0 {
		opts.FDThreshold = 1
	}
	build, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return build(opts), nil
}

// Names lists the registered canonical names, sorted.
func Names() []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

// FPLess is plain fixed-priority ordering: lower task index first, then
// earlier job, then mains before backups (the last tie can only occur
// after a permanent fault migrates both copies onto one processor).
func FPLess(a, b *task.Job) bool {
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	return a.Copy == task.Main && b.Copy == task.Backup
}

// Histories builds one fresh (all-effective) outcome window per task of a
// set; used by the dynamic policies.
func Histories(s *task.Set) []*pattern.History {
	hs := make([]*pattern.History, s.N())
	for i, t := range s.Tasks {
		hs[i] = pattern.NewHistory(t.M, t.K)
	}
	return hs
}

// StaticMandatory applies the static pattern classification shared by the
// ST and DP baselines, via the memoized table when offline products are
// attached.
func StaticMandatory(opts Options, t task.Task, index int) bool {
	if opts.Offline != nil {
		return opts.Offline.Mandatory(t.ID, index)
	}
	return pattern.Mandatory(opts.Pattern, index, t.M, t.K)
}
