package dynamic

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/postpone"
	"repro/internal/sim"
	"repro/internal/sim/policy"
	"repro/internal/task"
	"repro/internal/timeu"
)

// selectivePolicy is MKSS_selective, the paper's Algorithm 1.
//
// Each processor conceptually keeps a mandatory job queue (MJQ) and an
// optional job queue (OJQ); MJQ jobs always beat OJQ jobs, and each queue
// is served in fixed-priority order. At every release the job is
// classified by its flexibility degree (Definition 1):
//
//	FD = 0  → mandatory: the main copy joins the primary's MJQ and a
//	          backup copy joins the spare's MJQ with its release revised
//	          to r̃ = r + θi (Eq. 3); a successfully completed main
//	          cancels the backup immediately (Algorithm 1 line 3).
//	FD = 1  → eligible optional: admitted to the OJQ of the primary and
//	          the spare alternately (per task), so the optional workload
//	          spreads evenly across the two processors (principle (ii)).
//	FD ≥ 2  → skipped: recorded as a miss, costing nothing now while the
//	          task can still absorb it (principle (i)).
//
// A successful optional execution makes the task's next job optional
// again (the history update raises its FD), which is exactly how dynamic
// patterns demote would-be mandatory jobs and drop their backups.
// Optional jobs that can no longer finish by their deadline are never
// dispatched. When a processor dies, every subsequent job — mandatory or
// selected optional — routes to the survivor, and single mandatory copies
// are no longer postponed (they are the only copy left).
type selectivePolicy struct {
	opts policy.Options
	an   *postpone.Analysis
	hist []*pattern.History
	// alt[i] counts task i's selected optional jobs; even → primary,
	// odd → spare (Figure 4's alternation).
	alt  []int
	dead [sim.NumProcs]bool
}

func (p *selectivePolicy) Name() string { return NameSelective }

func (p *selectivePolicy) Init(e *sim.Engine) error {
	set := e.Set()
	var an *postpone.Analysis
	var err error
	if off := p.opts.Offline; off != nil {
		an, err = off.Postponement()
	} else {
		an, err = postpone.Compute(set, postpone.Options{
			Pattern:        p.opts.Pattern,
			HyperperiodCap: p.opts.HyperperiodCap,
		})
	}
	if err != nil {
		return fmt.Errorf("selective: %w", err)
	}
	p.an = an
	p.hist = policy.Histories(set)
	p.alt = make([]int, set.N())
	return nil
}

// theta returns the postponement used for task i's backups: θi, or Yi
// under the UsePromotionForTheta ablation.
func (p *selectivePolicy) theta(taskID int) timeu.Time {
	if p.opts.UsePromotionForTheta {
		return p.an.Y[taskID]
	}
	return p.an.Theta[taskID]
}

func (p *selectivePolicy) Release(e *sim.Engine, t task.Task, index int) {
	fd := p.hist[t.ID].FlexibilityDegree()
	switch {
	case fd == 0:
		e.Counters().MandatoryJobs++
		main := e.NewJob(t, index, task.Mandatory)
		if p.dead[sim.Primary] || p.dead[sim.Spare] {
			e.Admit(main, e.Survivor())
			return
		}
		e.Admit(main, sim.Primary)
		e.Admit(e.NewBackup(t, index, p.theta(t.ID)), sim.Spare)
	case fd <= p.opts.FDThreshold:
		if policy.StaticMandatory(p.opts, t, index) {
			e.Counters().Demotions++
		}
		e.Counters().OptionalSelected++
		j := e.NewJob(t, index, task.Optional)
		j.FD = fd
		proc := sim.Primary
		if !p.opts.NoAlternation && p.alt[t.ID]%2 == 1 {
			proc = sim.Spare
		}
		p.alt[t.ID]++
		e.Admit(j, proc)
	default:
		if policy.StaticMandatory(p.opts, t, index) {
			e.Counters().Demotions++
		}
		e.SettleSkip(t.ID, index)
	}
}

func (p *selectivePolicy) Less(now timeu.Time, a, b *task.Job) bool {
	// MJQ before OJQ (Algorithm 1: "jobs in MJQ always have higher
	// priorities than those in OJQ"), plain FP within each queue.
	if a.Class != b.Class {
		return a.Class == task.Mandatory
	}
	return policy.FPLess(a, b)
}

func (p *selectivePolicy) Runnable(now timeu.Time, j *task.Job) bool {
	return j.Class == task.Mandatory || !j.Expired(now)
}

func (p *selectivePolicy) OnSettled(e *sim.Engine, taskID, index int, effective bool) {
	p.hist[taskID].Record(effective)
}

func (p *selectivePolicy) OnPermanentFault(e *sim.Engine, dead int) { p.dead[dead] = true }
