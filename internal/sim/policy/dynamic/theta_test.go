package dynamic

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/policy"
	"repro/internal/task"
	"repro/internal/timeu"
)

// TestGoldenFig5PostponedBackups verifies the selective policy actually
// *applies* the Fig. 5 postponement intervals at runtime (the numeric θ
// derivation itself is covered in internal/postpone): on the Fig. 5 set
// the policy must postpone τ1 backups by 7 ms and τ2 backups by 4 ms,
// and by only Y2 = 1 ms under the θ=Y ablation.
func TestGoldenFig5PostponedBackups(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	p := &selectivePolicy{opts: policy.Options{FDThreshold: 1}}
	eng, err := sim.New(s, p, sim.Config{Horizon: timeu.FromMillis(30)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if p.theta(0) != timeu.FromMillis(7) || p.theta(1) != timeu.FromMillis(4) {
		t.Errorf("policy thetas = %v, %v; want 7ms, 4ms", p.theta(0), p.theta(1))
	}
	// Under the theta=Y ablation the same policy must postpone τ2 by
	// only 1ms.
	py := &selectivePolicy{opts: policy.Options{FDThreshold: 1, UsePromotionForTheta: true}}
	eng2, err := sim.New(s, py, sim.Config{Horizon: timeu.FromMillis(30)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if py.theta(1) != timeu.FromMillis(1) {
		t.Errorf("Y-ablation theta2 = %v, want 1ms", py.theta(1))
	}
}
