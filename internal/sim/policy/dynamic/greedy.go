// Package dynamic implements the dynamic-pattern schemes of the paper:
// the §III greedy straw-man and MKSS_selective (Algorithm 1). Both
// classify each job at release from the task's sliding outcome window
// (pattern.History) instead of a static pattern; the distance-based DBP
// scheme lives in the sibling dbp package.
package dynamic

import (
	"repro/internal/pattern"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/sim/policy"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Canonical policy names, as registered and reported.
const (
	NameGreedy    = "MKSS-greedy"
	NameSelective = "MKSS-selective"
)

func init() {
	policy.Register(NameGreedy, func(opts policy.Options) sim.Policy {
		return &greedyPolicy{opts: opts}
	})
	policy.Register(NameSelective, func(opts policy.Options) sim.Policy {
		return &selectivePolicy{opts: opts}
	})
}

// greedyPolicy is the §III straw-man: dynamic (m,k) patterns with *every*
// optional job admitted for execution, greedily, on the primary processor
// only. Mandatory jobs (flexibility degree 0) run as in the DP baseline —
// main on the primary, backup on the spare postponed by Yi. The paper
// shows (Figure 3) that this over-executes optional jobs on systems with
// modest workload: an executed optional keeps future jobs optional, which
// greedy then also executes, so the task ends up running (almost) every
// job on one processor instead of m-of-k.
//
// Queue discipline, reconstructed from the figures: mandatory jobs always
// beat optional ones; among optional jobs the *least flexible* (smallest
// FD at release) goes first (footnote 1: O21 with FD 1 is "less flexible,
// more urgent" than O11 with FD 2), ties broken by release order then
// task index. An optional job that can no longer complete by its deadline
// is never dispatched (O11 in Figure 2 "will not be invoked at all").
type greedyPolicy struct {
	opts policy.Options
	ys   []timeu.Time
	hist []*pattern.History
	dead [sim.NumProcs]bool
}

func (p *greedyPolicy) Name() string { return NameGreedy }

func (p *greedyPolicy) Init(e *sim.Engine) error {
	set := e.Set()
	if off := p.opts.Offline; off != nil {
		p.ys = off.PromotionTimes()
	} else {
		p.ys = rta.PromotionTimesSafe(set)
	}
	p.hist = policy.Histories(set)
	return nil
}

func (p *greedyPolicy) Release(e *sim.Engine, t task.Task, index int) {
	fd := p.hist[t.ID].FlexibilityDegree()
	if fd == 0 {
		e.Counters().MandatoryJobs++
		main := e.NewJob(t, index, task.Mandatory)
		if p.dead[sim.Primary] || p.dead[sim.Spare] {
			e.Admit(main, e.Survivor())
			return
		}
		e.Admit(main, sim.Primary)
		e.Admit(e.NewBackup(t, index, p.ys[t.ID]), sim.Spare)
		return
	}
	if policy.StaticMandatory(p.opts, t, index) {
		e.Counters().Demotions++
	}
	e.Counters().OptionalSelected++
	j := e.NewJob(t, index, task.Optional)
	j.FD = fd
	e.Admit(j, sim.Primary)
}

func (p *greedyPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	if a.Class != b.Class {
		return a.Class == task.Mandatory
	}
	if a.Class == task.Mandatory {
		return policy.FPLess(a, b)
	}
	if a.FD != b.FD {
		return a.FD < b.FD
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	return policy.FPLess(a, b)
}

func (p *greedyPolicy) Runnable(now timeu.Time, j *task.Job) bool {
	return j.Class == task.Mandatory || !j.Expired(now)
}

func (p *greedyPolicy) OnSettled(e *sim.Engine, taskID, index int, effective bool) {
	p.hist[taskID].Record(effective)
}

func (p *greedyPolicy) OnPermanentFault(e *sim.Engine, dead int) { p.dead[dead] = true }
