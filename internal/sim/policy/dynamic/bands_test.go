package dynamic

import (
	"testing"

	"repro/internal/sim/policy"
	"repro/internal/task"
)

// TestSelectiveLessBands: the MJQ/OJQ band ordering of Algorithm 1,
// exercised directly.
func TestSelectiveLessBands(t *testing.T) {
	p := &selectivePolicy{}
	tk0 := task.New(0, 10, 10, 2, 1, 2)
	tk1 := task.New(1, 10, 10, 2, 1, 2)
	mand := task.NewJob(tk1, 1, task.Mandatory) // lower FP priority but MJQ
	opt := task.NewJob(tk0, 1, task.Optional)   // higher FP priority but OJQ
	if !p.Less(0, mand, opt) {
		t.Error("MJQ job must beat OJQ job regardless of task priority")
	}
	if p.Less(0, opt, mand) {
		t.Error("OJQ job must not beat MJQ job")
	}
	opt2 := task.NewJob(tk1, 1, task.Optional)
	if !p.Less(0, opt, opt2) {
		t.Error("within the OJQ, FP order must hold")
	}
}

// TestGreedyLessBands: mandatory band, then (FD, release, FP).
func TestGreedyLessBands(t *testing.T) {
	p := &greedyPolicy{}
	tk0 := task.New(0, 10, 10, 2, 1, 2)
	tk1 := task.New(1, 10, 10, 2, 1, 2)
	mand := task.NewJob(tk1, 1, task.Mandatory)
	opt := task.NewJob(tk0, 1, task.Optional)
	opt.FD = 1
	if !p.Less(0, mand, opt) || p.Less(0, opt, mand) {
		t.Error("mandatory band ordering wrong")
	}
	// Same FD: earlier release first.
	lateOpt := task.NewJob(tk0, 2, task.Optional)
	lateOpt.FD = 1
	if !p.Less(0, opt, lateOpt) {
		t.Error("FIFO within equal FD wrong")
	}
	// Same FD and release: FP tiebreak.
	opt2 := task.NewJob(tk1, 1, task.Optional)
	opt2.FD = 1
	if !p.Less(0, opt, opt2) {
		t.Error("FP tiebreak within OJQ wrong")
	}
}

// TestRegistryNames pins that both dynamic policies are registered and
// constructible by canonical name.
func TestRegistryNames(t *testing.T) {
	for _, name := range []string{NameGreedy, NameSelective} {
		p, err := policy.New(name, policy.Options{})
		if err != nil {
			t.Fatalf("policy.New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
	}
}
