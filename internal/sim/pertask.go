package sim

import (
	"fmt"
	"strings"

	"repro/internal/task"
	"repro/internal/timeu"
)

// TaskStats attributes a run's work and outcomes to one task.
type TaskStats struct {
	TaskID int
	// Released counts the task's jobs released within the horizon;
	// Effective/Misses partition their settled outcomes.
	Released  int
	Effective int
	Misses    int
	// MainTime/BackupTime are the execution time consumed by the task's
	// main and backup copies (including canceled partial executions).
	MainTime   timeu.Time
	BackupTime timeu.Time
	// MKViolatedAt is the 0-based index of the first (m,k) violation, or
	// -1.
	MKViolatedAt int
}

// Energy returns the task's total active energy under power model p.
func (ts TaskStats) Energy(p PowerModel) float64 {
	return (ts.MainTime + ts.BackupTime).Millis() * p.Active
}

// PerTask recomputes per-task statistics from a traced run. It requires
// the run to have been simulated with Config.RecordTrace; without a trace
// the execution-time fields are zero and only the outcome counts are
// filled.
func (r *Result) PerTask() []TaskStats {
	n := len(r.Outcomes)
	out := make([]TaskStats, n)
	for i := range out {
		out[i].TaskID = i
		out[i].Released = len(r.Outcomes[i])
		for _, ok := range r.Outcomes[i] {
			if ok {
				out[i].Effective++
			} else {
				out[i].Misses++
			}
		}
		out[i].MKViolatedAt = -1
		if i < len(r.ViolationAt) {
			out[i].MKViolatedAt = r.ViolationAt[i]
		}
	}
	for _, seg := range r.Trace {
		d := seg.End - seg.Start
		if seg.Copy == task.Main {
			out[seg.TaskID].MainTime += d
		} else {
			out[seg.TaskID].BackupTime += d
		}
	}
	return out
}

// PerTaskTable renders the attribution as a fixed-width table.
func (r *Result) PerTaskTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %9s %6s %10s %11s %8s\n",
		"task", "released", "effective", "misses", "main-exec", "backup-exec", "energy")
	for _, ts := range r.PerTask() {
		fmt.Fprintf(&b, "tau%-3d %8d %9d %6d %10v %11v %8.1f\n",
			ts.TaskID+1, ts.Released, ts.Effective, ts.Misses,
			ts.MainTime, ts.BackupTime, ts.Energy(r.Power))
	}
	return b.String()
}
