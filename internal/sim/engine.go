// Package sim is the discrete-event simulator for the paper's two-
// processor standby-sparing system. It owns time, the two processors,
// energy accounting with dynamic power-down, job-copy pairing (main on
// the primary, backup on the spare), outcome settlement against the
// (m,k) history, and fault injection. Scheduling decisions — which job
// copy goes where, in which priority band, and when backups become
// eligible — are delegated to a Policy; concrete implementations (the
// paper's four approaches plus extensions) live in the internal/sim/policy
// registry tree and are constructed by name, so the kernel never imports
// a policy.
//
// The engine is event-driven: between consecutive events (job releases,
// completions, deadlines, postponed-release/promotion activations, the
// permanent fault, and the horizon) the system state is constant, so the
// simulation advances in exact closed-form steps with no quantization
// error — all times are integer microseconds (see internal/timeu).
package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

// NumProcs is fixed by the architecture: a primary and a spare.
const NumProcs = 2

// The observability layer hard-codes the same processor count.
var _ = [1]struct{}{}[NumProcs-metrics.NumProcs]

// Processor indices.
const (
	Primary = 0
	Spare   = 1
)

// Policy is the scheduling brain plugged into the engine. All hooks run
// at the engine's current time; policies must not mutate job fields other
// than through the documented engine calls.
type Policy interface {
	// Name identifies the approach in reports ("MKSS-selective", ...).
	Name() string
	// Init is called once, after the engine is constructed and before
	// time starts; policies typically run offline analyses here.
	Init(e *Engine) error
	// Release is called at each job release instant r_ij, in priority
	// order. The policy classifies the job and calls e.Admit for every
	// copy it wants scheduled (or e.SettleSkip to skip an optional job).
	Release(e *Engine, t task.Task, index int)
	// Less orders two eligible job copies competing for the same
	// processor; true means a runs before b.
	Less(now timeu.Time, a, b *task.Job) bool
	// Runnable reports whether j may be dispatched at now (policies use
	// this to avoid starting optional jobs that can no longer finish).
	Runnable(now timeu.Time, j *task.Job) bool
	// OnSettled reports the final outcome of job index of task taskID
	// (true = effective). Outcomes arrive in strictly increasing index
	// order per task.
	OnSettled(e *Engine, taskID, index int, effective bool)
	// OnPermanentFault tells the policy processor dead has failed; the
	// engine has already migrated/cancelled copies. Subsequent Release
	// calls must route everything to the survivor.
	OnPermanentFault(e *Engine, dead int)
}

// Config parameterizes one run.
type Config struct {
	// Power is the energy model; zero value means DefaultPower().
	Power PowerModel
	// Horizon is the simulated duration (must be positive). Jobs
	// releasing at or after the horizon do not exist; the run's energy
	// accounts exactly [0, Horizon).
	Horizon timeu.Time
	// Faults is the fault realization; nil means fault-free.
	Faults *fault.Plan
	// RecordTrace enables segment recording for Gantt output.
	RecordTrace bool
	// MaxEvents guards against runaway simulations; zero means a
	// generous default derived from the horizon.
	MaxEvents int
	// PreemptionOverhead models cache-related preemption delay: every
	// time a partially executed copy is preempted, this much execution
	// demand is added to it (charged on resumption). The paper folds all
	// overheads into the WCET (zero here reproduces it); the knob exists
	// for sensitivity studies.
	PreemptionOverhead timeu.Time
	// Sink, when non-nil, receives a structured event at every release,
	// admission, dispatch, preemption, completion, cancellation,
	// settlement, power-state transition and permanent fault. The nil
	// default costs the hot path nothing.
	Sink metrics.Sink
	// Scratch, when non-nil, supplies reusable working state (job records,
	// queues, buffers) so batch runs avoid per-run allocations; nil means
	// a private fresh Scratch. A Scratch must not be shared by two engines
	// at once.
	Scratch *Scratch
}

// Segment is one contiguous execution interval of a job copy on a
// processor, for trace rendering.
type Segment struct {
	Proc     int
	TaskID   int
	Index    int
	Copy     task.Copy
	Class    task.Class
	Start    timeu.Time
	End      timeu.Time
	Canceled bool // segment ended by cancellation/kill rather than preemption/completion
}

// Counters aggregates run statistics; the struct itself (field meanings,
// JSON names, invariants) is defined by the observability layer in
// internal/metrics.
type Counters = metrics.Counters

// Result is the outcome of one run.
type Result struct {
	Policy  string
	Horizon timeu.Time
	Power   PowerModel
	// PerProc energy breakdowns, and their sum.
	PerProc [NumProcs]Energy
	Totals  Energy
	// Outcomes[i] is task i's realized 0/1 sequence over the run.
	Outcomes [][]bool
	// ViolationAt[i] is the 0-based index of the first (m,k) violation
	// of task i, or -1.
	ViolationAt []int
	Counters    Counters
	// Trace is non-nil when Config.RecordTrace was set.
	Trace []Segment
	// PermanentFault echoes the injected permanent fault, if any fired.
	PermanentFault *fault.Permanent
}

// ActiveEnergy returns the total active energy — the paper's metric.
func (r *Result) ActiveEnergy() float64 { return r.Totals.Active(r.Power) }

// TotalEnergy returns active+idle+sleep energy.
func (r *Result) TotalEnergy() float64 { return r.Totals.Total(r.Power) }

// MKSatisfied reports whether no task violated its (m,k) constraint.
func (r *Result) MKSatisfied() bool {
	for _, v := range r.ViolationAt {
		if v >= 0 {
			return false
		}
	}
	return true
}

// pairKey identifies a logical job J_ij.
type pairKey struct {
	taskID int
	index  int
}

// jobPair tracks the copies and settlement state of one logical job. In a
// standby-sparing system a job has at most one copy per processor (main on
// the primary, backup on the spare), so the copies array is fixed-size —
// no per-pair slice allocation.
type jobPair struct {
	key     pairKey
	class   task.Class
	copies  [NumProcs]*task.Job
	ncopies int
	dl      timeu.Time
	settled bool
}

type processor struct {
	id       int
	dead     bool
	asleep   bool
	cur      *task.Job
	curStart timeu.Time
	energy   Energy
}

// Engine runs one simulation. Construct with New, run with Run. All
// mutable run state lives in the Scratch (owned or borrowed), so a warm
// Scratch makes repeated runs nearly allocation-free.
type Engine struct {
	set    *task.Set
	policy Policy
	cfg    Config
	scr    *Scratch

	now      timeu.Time
	procs    [NumProcs]processor
	counters Counters
	sink     metrics.Sink
	permHit  *fault.Permanent
	events   int

	// checkNext, when non-nil, is called with every nextEventTime result
	// before the engine advances. Tests use it to cross-check the wheel
	// against a reference scan; the nil check is the hot path's only cost.
	checkNext func(next timeu.Time)
}

// New constructs an engine; call Run (or RunContext) exactly once.
func New(set *task.Set, policy Policy, cfg Config) (*Engine, error) {
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("sim: non-positive horizon")
	}
	if cfg.Power == (PowerModel{}) {
		cfg.Power = DefaultPower()
	}
	if cfg.Faults == nil {
		cfg.Faults = fault.NoFaults()
	}
	if cfg.MaxEvents == 0 {
		// Each job contributes a bounded number of events; 64 per
		// released job copy is far beyond any legitimate schedule.
		jobs := 0
		for _, t := range set.Tasks {
			jobs += int(cfg.Horizon/t.Period) + 2
		}
		cfg.MaxEvents = 64 * (jobs + 16) * NumProcs
	}
	scr := cfg.Scratch
	if scr == nil {
		scr = NewScratch()
	}
	scr.prepare(set.N())
	scr.wheel.sizeFor(set)
	for i := range set.Tasks {
		if r := set.Tasks[i].Release(1); r < scr.minRel {
			scr.minRel = r
		}
	}
	if scr.minRel > 0 && scr.minRel < cfg.Horizon {
		scr.wheel.schedule(scr.minRel)
	}
	e := &Engine{
		set:    set,
		policy: policy,
		cfg:    cfg,
		scr:    scr,
		sink:   cfg.Sink,
	}
	for p := 0; p < NumProcs; p++ {
		e.procs[p] = processor{id: p}
	}
	return e, nil
}

// NewJob allocates the main copy of J_ij from the run's scratch arena.
// Policies must build copies through NewJob/NewBackup (not task.NewJob)
// so batch runs reuse job records.
//
//mklint:hotpath
func (e *Engine) NewJob(t task.Task, index int, class task.Class) *task.Job {
	j := e.scr.jobs.get()
	task.InitJob(j, t, index, class)
	return j
}

// NewBackup allocates the backup copy of a mandatory job from the run's
// scratch arena, postponed by theta (Eq. 3).
//
//mklint:hotpath
func (e *Engine) NewBackup(t task.Task, index int, theta timeu.Time) *task.Job {
	j := e.scr.jobs.get()
	task.InitBackup(j, t, index, theta)
	return j
}

// Now returns the current simulation time (valid inside policy hooks).
func (e *Engine) Now() timeu.Time { return e.now }

// Set returns the task set under simulation.
func (e *Engine) Set() *task.Set { return e.set }

// Horizon returns the configured horizon.
func (e *Engine) Horizon() timeu.Time { return e.cfg.Horizon }

// ProcDead reports whether processor p has suffered the permanent fault.
func (e *Engine) ProcDead(p int) bool { return e.procs[p].dead }

// Survivor returns the index of a live processor (the survivor after a
// permanent fault; Primary when both are alive).
func (e *Engine) Survivor() int {
	for p := 0; p < NumProcs; p++ {
		if !e.procs[p].dead {
			return p
		}
	}
	return Primary // unreachable: at most one permanent fault
}

// Counters gives policies access to the run counters (e.g. Demotions).
func (e *Engine) Counters() *Counters { return &e.counters }

// emitJob sends a job-copy event to the sink, if one is attached. The
// nil-sink check keeps the hot path allocation- and work-free when the
// run is not being observed.
//
//mklint:hotpath
func (e *Engine) emitJob(kind metrics.EventKind, proc int, j *task.Job, note string) {
	if e.sink == nil {
		return
	}
	e.sink.Emit(metrics.Event{
		T:      e.now,
		Kind:   kind,
		Proc:   proc,
		TaskID: j.TaskID,
		Index:  j.Index,
		Copy:   int(j.Copy),
		Note:   note,
	})
}

// emitProc sends a processor-scoped event (sleep/wake/permanent fault).
//
//mklint:hotpath
func (e *Engine) emitProc(kind metrics.EventKind, proc int) {
	if e.sink == nil {
		return
	}
	e.sink.Emit(metrics.Event{T: e.now, Kind: kind, Proc: proc, TaskID: -1, Copy: metrics.CopyNone})
}

// setSleep flips a processor's DPD state, counting and reporting the
// transition. Entering the low-power state and waking out of it are the
// two power-state transitions of the paper's DPD model.
//
//mklint:hotpath
func (e *Engine) setSleep(p *processor, asleep bool) {
	if p.asleep == asleep {
		return
	}
	p.asleep = asleep
	if asleep {
		e.counters.SleepEntries++
		e.emitProc(metrics.EvSleep, p.id)
	} else {
		e.counters.Wakeups++
		e.emitProc(metrics.EvWake, p.id)
	}
}

// Admit registers a job copy for scheduling on processor proc. Copies of
// the same logical job (same task and index) are paired automatically:
// the first successful completion settles the job effective and cancels
// the other copies. If proc is dead the copy is routed to the survivor.
//
//mklint:hotpath
func (e *Engine) Admit(j *task.Job, proc int) {
	if e.procs[proc].dead {
		proc = e.Survivor()
	}
	slot := e.scr.pairSlot(j.TaskID, j.Index)
	p := *slot
	if p == nil {
		p = e.scr.jobPairs.get()
		*p = jobPair{key: pairKey{j.TaskID, j.Index}, class: j.Class, dl: j.Deadline}
		*slot = p
		e.scr.open = append(e.scr.open, p)
		// The pair settles at its deadline at the latest: make that
		// instant a scheduled stop and keep the due-scan lower bound
		// current.
		e.scr.wheel.schedule(p.dl)
		if p.dl < e.scr.dueAt {
			e.scr.dueAt = p.dl
		}
	}
	// Postponed activations (backup r̃ = r + θ) and dual-priority
	// promotions are the two future instants at which this copy changes
	// the schedule without any other event firing.
	if j.Release > e.now {
		e.scr.wheel.schedule(j.Release)
	}
	if j.Promote > e.now && j.Promote < j.Deadline {
		e.scr.wheel.schedule(j.Promote)
	}
	if p.ncopies == len(p.copies) {
		panic(fmt.Sprintf("sim: more than %d copies admitted for task %d job %d", len(p.copies), j.TaskID+1, j.Index))
	}
	p.copies[p.ncopies] = j
	p.ncopies++
	e.scr.live[proc] = append(e.scr.live[proc], j)
	if j.Copy == task.Backup {
		e.counters.BackupsCreated++
	}
	e.emitJob(metrics.EvAdmit, proc, j, "")
	// New work may wake a sleeping processor (event wake; see DESIGN.md
	// on the DPD model).
	e.setSleep(&e.procs[proc], false)
}

// SettleSkip records a skipped optional job (never admitted) as a miss in
// the (m,k) history. Policies call it at release time.
//
//mklint:hotpath
func (e *Engine) SettleSkip(taskID, index int) {
	slot := e.scr.pairSlot(taskID, index)
	if *slot != nil {
		panic("sim: SettleSkip on an admitted job")
	}
	p := e.scr.jobPairs.get()
	*p = jobPair{key: pairKey{taskID, index}, class: task.Optional, settled: true}
	*slot = p
	e.counters.OptionalSkipped++
	if e.sink != nil {
		e.sink.Emit(metrics.Event{T: e.now, Kind: metrics.EvSkip, Proc: -1, TaskID: taskID, Index: index, Copy: metrics.CopyNone})
	}
	e.recordOutcome(taskID, index, false)
}

// recordOutcome appends the outcome of job index of task taskID, checking
// the strictly-increasing-index invariant, and notifies the policy.
//
//mklint:hotpath
func (e *Engine) recordOutcome(taskID, index int, effective bool) {
	if got := len(e.scr.outcomes[taskID]) + 1; got != index {
		panic(fmt.Sprintf("sim: outcome for %d-th job of task %d recorded out of order (expected %d)", index, taskID+1, got))
	}
	e.scr.outcomes[taskID] = append(e.scr.outcomes[taskID], effective)
	if effective {
		e.counters.Effective++
	} else {
		e.counters.Misses++
	}
	if e.sink != nil {
		e.sink.Emit(metrics.Event{T: e.now, Kind: metrics.EvSettle, Proc: -1, TaskID: taskID, Index: index, Copy: metrics.CopyNone, OK: effective})
	}
	e.policy.OnSettled(e, taskID, index, effective)
}

// Run executes the simulation and returns the result.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// ctxCheckStride is how many event-loop iterations pass between context
// polls: frequent enough that cancellation lands within microseconds of
// simulated work, rare enough that the select never shows in profiles.
const ctxCheckStride = 64

// RunContext executes the simulation, honoring ctx at event-loop
// granularity: a canceled context aborts the run within ctxCheckStride
// events and returns ctx.Err() (wrapped), so batch drivers can tear down
// promptly on SIGINT or deadline.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	if err := e.policy.Init(e); err != nil {
		return nil, fmt.Errorf("sim: policy init: %w", err)
	}
	done := ctx.Done()
	if done != nil {
		// Short runs can finish inside one check stride; a context that
		// is dead on arrival must still abort.
		select {
		case <-done:
			return nil, fmt.Errorf("sim: run aborted at %v: %w", e.now, ctx.Err())
		default:
		}
	}
	for {
		e.processCompletions()
		e.processDeadlines()
		e.processPermanentFault()
		if e.now >= e.cfg.Horizon {
			break
		}
		e.processReleases()
		e.dispatch()
		next, err := e.nextEventTime()
		if err != nil {
			return nil, err
		}
		if next > e.cfg.Horizon {
			next = e.cfg.Horizon
		}
		e.advance(next)
		e.events++
		if e.events > e.cfg.MaxEvents {
			return nil, fmt.Errorf("sim: event budget exceeded (%d) — runaway simulation", e.cfg.MaxEvents)
		}
		if done != nil && e.events%ctxCheckStride == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("sim: run aborted at %v: %w", e.now, ctx.Err())
			default:
			}
		}
	}
	e.finish()
	return e.result(), nil
}

// processReleases fires Policy.Release for every job releasing now. Jobs
// whose deadline falls beyond the horizon are never released: the run
// accounts whole jobs only, matching how the paper counts energy "within
// the hyper period" in its worked examples (e.g. the last τ2 job of
// Figure 3, released at 24 with deadline 28, does not execute before 25).
//
// The scan is guarded by the cached minimum next release: between release
// instants it costs one comparison. One firing drains every task
// releasing at this instant (in priority order — same-instant batching),
// then re-arms the wheel with the single next release instant.
//
//mklint:hotpath
func (e *Engine) processReleases() {
	if e.scr.minRel != e.now {
		return
	}
	idx := e.scr.nextIdx
	minRel := timeu.Infinity
	for i := range e.set.Tasks {
		t := e.set.Tasks[i]
		for t.Release(idx[i]) == e.now && t.Release(idx[i]) < e.cfg.Horizon {
			if t.AbsDeadline(idx[i]) <= e.cfg.Horizon {
				e.counters.Released++
				if e.sink != nil {
					e.sink.Emit(metrics.Event{T: e.now, Kind: metrics.EvRelease, Proc: -1, TaskID: i, Index: idx[i], Copy: metrics.CopyNone})
				}
				e.policy.Release(e, t, idx[i])
			}
			idx[i]++
		}
		if r := t.Release(idx[i]); r < minRel {
			minRel = r
		}
	}
	e.scr.minRel = minRel
	if minRel < e.cfg.Horizon {
		e.scr.wheel.schedule(minRel)
	}
}

// processCompletions finishes job copies whose demand reached zero.
//
//mklint:hotpath
func (e *Engine) processCompletions() {
	for pid := range e.procs {
		p := &e.procs[pid]
		j := p.cur
		if j == nil || j.Remaining > 0 {
			continue
		}
		e.closeSegment(p, false)
		p.cur = nil
		j.Done = true
		j.FinishTime = e.now
		e.counters.Completions++
		// Transient faults strike during execution and are detected by
		// the end-of-job sanity check (§II-B).
		note := ""
		if e.cfg.Faults.TransientDuring(j.WCET) {
			j.Faulty = true
			e.counters.TransientFaults++
			note = "faulty"
		}
		e.emitJob(metrics.EvComplete, p.id, j, note)
		e.removeLive(p.id, j)
		e.unschedJob(j)
		if j.Completed() {
			e.settleEffective(j)
		} else {
			e.copyFailed(j)
		}
	}
}

// settleEffective marks the logical job effective and cancels sibling
// copies (the standby-sparing cancellation that saves spare energy).
//
//mklint:hotpath
func (e *Engine) settleEffective(j *task.Job) {
	p := e.scr.pairAt(j.TaskID, j.Index)
	if p.settled {
		return
	}
	p.settled = true
	e.dropOpen(p)
	if p.dl > e.now {
		e.scr.wheel.unschedule(p.dl)
	}
	if j.Copy == task.Backup {
		// The spare carried the job after the main copy was lost or
		// faulty — the standby-sparing recovery actually paying off.
		e.counters.BackupRecoveries++
	}
	for _, c := range p.copies[:p.ncopies] {
		if c == j || c.Done || c.Canceled {
			continue
		}
		e.cancelCopy(c, "sibling-effective")
	}
	e.recordOutcome(j.TaskID, j.Index, true)
}

// copyFailed handles a copy that completed faulty: if no other copy can
// still succeed, the job is settled as a miss immediately.
//
//mklint:hotpath
func (e *Engine) copyFailed(j *task.Job) {
	p := e.scr.pairAt(j.TaskID, j.Index)
	if p.settled {
		return
	}
	for _, c := range p.copies[:p.ncopies] {
		if !c.Done && !c.Canceled {
			return // a sibling copy may still complete
		}
	}
	p.settled = true
	e.dropOpen(p)
	if p.dl > e.now {
		e.scr.wheel.unschedule(p.dl)
	}
	e.recordOutcome(j.TaskID, j.Index, false)
}

// unschedJob drops a copy's still-pending future instants (postponed
// activation, dual-priority promotion) from the wheel once the copy can
// no longer change the schedule. Instants already reached were consumed
// by the wheel itself and need no removal.
//
//mklint:hotpath
func (e *Engine) unschedJob(j *task.Job) {
	if j.Release > e.now {
		e.scr.wheel.unschedule(j.Release)
	}
	if j.Promote > e.now && j.Promote < j.Deadline {
		e.scr.wheel.unschedule(j.Promote)
	}
}

// cancelCopy removes a pending/running copy from the system; reason is a
// static annotation for the event stream ("sibling-effective",
// "deadline", "permanent-fault").
//
//mklint:hotpath
func (e *Engine) cancelCopy(c *task.Job, reason string) {
	c.Canceled = true
	c.FinishTime = e.now
	e.unschedJob(c)
	proc := -1
	for pid := 0; pid < NumProcs; pid++ {
		p := &e.procs[pid]
		if p.cur == c {
			e.closeSegment(p, true)
			p.cur = nil
			proc = pid
		}
		e.removeLive(pid, c)
	}
	if c.Copy == task.Backup {
		if c.Started {
			e.counters.BackupsCanceledPartial++
		} else {
			e.counters.BackupsCanceledClean++
		}
	}
	e.emitJob(metrics.EvCancel, proc, c, reason)
}

// processDeadlines settles every open pair whose deadline has arrived and
// aborts its unfinished copies.
//
// The scan is guarded by dueAt, a lower bound on the earliest open
// deadline (lowered on admission, recomputed exactly after each scan;
// early settlement may leave it conservatively low, costing at worst one
// empty scan at an already-scheduled stop).
//
//mklint:hotpath
func (e *Engine) processDeadlines() {
	if e.scr.dueAt > e.now {
		return
	}
	// Iterate over a snapshot: settlement mutates e.scr.open. The snapshot
	// buffer lives in the scratch so steady-state runs don't allocate.
	due := e.scr.due[:0]
	for _, p := range e.scr.open {
		if !p.settled && p.dl <= e.now {
			due = append(due, p)
		}
	}
	e.scr.due = due
	for _, p := range due {
		p.settled = true
		e.dropOpen(p)
		for _, c := range p.copies[:p.ncopies] {
			if !c.Done && !c.Canceled {
				e.cancelCopy(c, "deadline")
			}
		}
		e.recordOutcome(p.key.taskID, p.key.index, false)
	}
	dueAt := timeu.Infinity
	for _, p := range e.scr.open {
		if p.dl < dueAt {
			dueAt = p.dl
		}
	}
	e.scr.dueAt = dueAt
}

// processPermanentFault kills the faulted processor when its time comes.
func (e *Engine) processPermanentFault() {
	pf := e.cfg.Faults.Permanent
	if pf == nil || e.permHit != nil || pf.At > e.now {
		return
	}
	e.permHit = pf
	e.counters.PermanentFaults++
	e.emitProc(metrics.EvPermanentFault, pf.Proc)
	p := &e.procs[pf.Proc]
	if p.cur != nil {
		e.closeSegment(p, true)
	}
	// Every copy on the dead processor is lost. Siblings on the survivor
	// become the job's only chance; jobs with no surviving copy settle as
	// misses at their deadline.
	for _, c := range e.scr.live[pf.Proc] {
		c.Canceled = true
		c.FinishTime = e.now
		e.unschedJob(c)
		if c.Copy == task.Backup {
			if c.Started {
				e.counters.BackupsCanceledPartial++
			} else {
				e.counters.BackupsCanceledClean++
			}
		}
		e.emitJob(metrics.EvCancel, pf.Proc, c, "permanent-fault")
	}
	e.scr.live[pf.Proc] = e.scr.live[pf.Proc][:0]
	p.cur = nil
	p.dead = true
	// The dead processor leaves the power-state machine entirely; this is
	// not a DPD wake-up, so clear the flag without counting a transition.
	p.asleep = false
	e.policy.OnPermanentFault(e, pf.Proc)
}

// dispatch re-evaluates, on each live processor, which eligible copy runs,
// handling preemption, and decides idle-vs-sleep for empty processors.
//
//mklint:hotpath
func (e *Engine) dispatch() {
	for pid := range e.procs {
		p := &e.procs[pid]
		if p.dead {
			continue
		}
		pick := e.pick(p.id)
		if pick != p.cur {
			if p.cur != nil {
				e.closeSegment(p, false)
				// The displaced copy is preempted (it is neither done nor
				// canceled — those paths clear cur before dispatch runs).
				e.counters.Preemptions++
				e.emitJob(metrics.EvPreempt, p.id, p.cur, "")
				p.cur.Remaining += e.cfg.PreemptionOverhead
			}
			p.cur = pick
			if pick != nil {
				e.setSleep(p, false)
				if !pick.Started {
					pick.Started = true
					pick.StartTime = e.now
				}
				p.curStart = e.now
				e.counters.Dispatches++
				e.emitJob(metrics.EvDispatch, p.id, pick, "")
			}
		}
		if p.cur == nil {
			// DPD decision (Algorithm 1 lines 10–15): sleep through the
			// gap to the next known activation if it exceeds T_be.
			gap := e.nextWork(p.id) - e.now
			e.setSleep(p, gap > e.cfg.Power.BreakEven)
		}
	}
}

// pick returns the policy's highest-priority runnable copy on proc.
//
//mklint:hotpath
func (e *Engine) pick(proc int) *task.Job {
	var best *task.Job
	for _, j := range e.scr.live[proc] {
		if j.Done || j.Canceled || j.Release > e.now {
			continue
		}
		if !e.policy.Runnable(e.now, j) {
			continue
		}
		if best == nil || e.policy.Less(e.now, j, best) {
			best = j
		}
	}
	return best
}

// nextWork returns the earliest future instant at which proc could get
// work: the earliest pending activation among copies already assigned to
// it (Algorithm 1's wake timer consults the earliest arrival among queued
// jobs) or the next release of any task (a release may route a new copy
// here — the scheduler knows periodic release times in advance). Should
// work still arrive earlier (e.g. a job migrated after a permanent
// fault), the processor wakes at assignment.
//
//mklint:hotpath
func (e *Engine) nextWork(proc int) timeu.Time {
	next := timeu.Infinity
	for _, j := range e.scr.live[proc] {
		if j.Done || j.Canceled {
			continue
		}
		if j.Release > e.now && j.Release < next {
			next = j.Release
		}
	}
	// The cached minimum next release stands in for the per-task scan: the
	// processReleases guard keeps it exact between release instants.
	if r := e.scr.minRel; r < e.cfg.Horizon && r < next {
		next = r
	}
	return next
}

// nextEventTime computes the next instant anything can change. The wheel
// holds every time-triggered instant (the next task release, open-pair
// deadlines, postponed activations, promotions); only state-dependent
// instants — the completion of whatever runs now and the permanent fault
// — are computed directly.
//
//mklint:hotpath
func (e *Engine) nextEventTime() (timeu.Time, error) {
	next := e.cfg.Horizon
	if w := e.scr.wheel.nextAfter(e.now); w < next {
		next = w
	}
	for pid := range e.procs {
		if cur := e.procs[pid].cur; cur != nil {
			if t := e.now + cur.Remaining; t > e.now && t < next {
				next = t
			}
		}
	}
	if pf := e.cfg.Faults.Permanent; pf != nil && e.permHit == nil && pf.At > e.now && pf.At < next {
		next = pf.At
	}
	if next <= e.now && e.now < e.cfg.Horizon {
		//mklint:allow hotpath — stall diagnostic on a should-never-happen error path
		return 0, fmt.Errorf("sim: stalled at %v (no future event)", e.now)
	}
	if e.checkNext != nil {
		e.checkNext(next)
	}
	return next, nil
}

// advance moves time to t, accruing energy and execution progress.
//
//mklint:hotpath
func (e *Engine) advance(t timeu.Time) {
	delta := t - e.now
	if delta < 0 {
		panic("sim: time went backwards")
	}
	for pid := range e.procs {
		p := &e.procs[pid]
		switch {
		case p.dead:
			p.energy.DeadTime += delta
		case p.cur != nil:
			p.energy.ActiveTime += delta
			p.cur.Remaining -= delta
		case p.asleep:
			p.energy.SleepTime += delta
		default:
			p.energy.IdleTime += delta
		}
	}
	e.now = t
}

// finish closes accounting at the horizon: running segments are closed,
// still-open pairs settle by their deadline rule only if the deadline is
// within the horizon (it always is for constrained-deadline tasks released
// before Horizon−P, and edge jobs settle here conservatively as misses
// only when their deadline has passed).
func (e *Engine) finish() {
	for pid := range e.procs {
		p := &e.procs[pid]
		if p.cur != nil {
			e.closeSegment(p, false)
			p.cur = nil
		}
	}
	// Settle pairs whose deadline is exactly at the horizon or whose
	// copies all finished; anything still genuinely in flight (deadline
	// beyond horizon) is dropped from the outcome sequences — it is not
	// a miss, the simulation simply ended first.
	e.processDeadlines()
}

// closeSegment records the current execution segment of processor p
// (no-op unless tracing is enabled and the segment has positive length).
//
//mklint:hotpath
func (e *Engine) closeSegment(p *processor, canceled bool) {
	if !e.cfg.RecordTrace || p.cur == nil || p.curStart == e.now {
		return
	}
	j := p.cur
	e.scr.trace = append(e.scr.trace, Segment{
		Proc:     p.id,
		TaskID:   j.TaskID,
		Index:    j.Index,
		Copy:     j.Copy,
		Class:    j.Class,
		Start:    p.curStart,
		End:      e.now,
		Canceled: canceled,
	})
}

// removeLive deletes j from proc's live list.
//
//mklint:hotpath
func (e *Engine) removeLive(proc int, j *task.Job) {
	l := e.scr.live[proc]
	for i, x := range l {
		if x == j {
			l[i] = l[len(l)-1]
			e.scr.live[proc] = l[:len(l)-1]
			return
		}
	}
}

// dropOpen removes a settled pair from the open list.
//
//mklint:hotpath
func (e *Engine) dropOpen(p *jobPair) {
	open := e.scr.open
	for i, x := range open {
		if x == p {
			open[i] = open[len(open)-1]
			e.scr.open = open[:len(open)-1]
			return
		}
	}
}

// result assembles the Result.
func (e *Engine) result() *Result {
	for p := 0; p < NumProcs; p++ {
		en := e.procs[p].energy
		e.counters.Proc[p] = metrics.ProcTime{
			Busy:  en.ActiveTime,
			Idle:  en.IdleTime,
			Sleep: en.SleepTime,
			Dead:  en.DeadTime,
		}
	}
	if e.sink != nil {
		// Best effort: a sink error is an observability problem, not a
		// simulation failure.
		_ = e.sink.Flush()
	}
	// Outcomes and Trace are copied out of the scratch: the Result outlives
	// this run, while the scratch buffers are rewound for the next one.
	outcomes := make([][]bool, e.set.N())
	for i, row := range e.scr.outcomes {
		outcomes[i] = append([]bool(nil), row...)
	}
	r := &Result{
		Policy:         e.policy.Name(),
		Horizon:        e.cfg.Horizon,
		Power:          e.cfg.Power,
		Outcomes:       outcomes,
		ViolationAt:    make([]int, e.set.N()),
		Counters:       e.counters,
		Trace:          append([]Segment(nil), e.scr.trace...),
		PermanentFault: e.permHit,
	}
	for p := 0; p < NumProcs; p++ {
		r.PerProc[p] = e.procs[p].energy
		r.Totals = r.Totals.Add(e.procs[p].energy)
	}
	for i, t := range e.set.Tasks {
		r.ViolationAt[i] = pattern.FirstViolation(outcomes[i], t.M, t.K)
	}
	return r
}
