package sim

import (
	"fmt"

	"repro/internal/timeu"
)

// PowerModel captures the paper's energy model (§II-A): a busy processor
// always consumes the active power P_act (normalized to 1, so one unit of
// energy per unit of busy time); when no job is pending the processor can
// be put into a low-power state by dynamic power-down (DPD) provided the
// idle interval exceeds the break-even time T_be.
type PowerModel struct {
	// Active is P_act, the power while executing (paper: 1, normalized).
	Active float64
	// Idle is the power while awake but not executing. The paper reports
	// *active* energy only; a small non-zero default keeps total-energy
	// comparisons honest without affecting the headline metric.
	Idle float64
	// Sleep is the power in the DPD low-power state.
	Sleep float64
	// BreakEven is T_be: an idle gap is slept through only if it is
	// strictly longer than this (paper: T_be = 1 ms).
	BreakEven timeu.Time
}

// DefaultPower returns the paper's model: P_act = 1, T_be = 1 ms, with
// idle power 0.05 and sleep power 0 as documented substitutions.
func DefaultPower() PowerModel {
	return PowerModel{Active: 1, Idle: 0.05, Sleep: 0, BreakEven: timeu.Millisecond}
}

func (p PowerModel) String() string {
	return fmt.Sprintf("power{act=%g idle=%g sleep=%g Tbe=%v}", p.Active, p.Idle, p.Sleep, p.BreakEven)
}

// Energy is the per-processor energy breakdown of one run.
type Energy struct {
	// ActiveTime, IdleTime, SleepTime, DeadTime partition the horizon.
	ActiveTime timeu.Time
	IdleTime   timeu.Time
	SleepTime  timeu.Time
	DeadTime   timeu.Time
}

// Active returns the active energy (busy time × P_act) — the paper's
// headline metric.
func (e Energy) Active(p PowerModel) float64 {
	return e.ActiveTime.Millis() * p.Active
}

// Total returns active + idle + sleep energy (dead time consumes none).
func (e Energy) Total(p PowerModel) float64 {
	return e.ActiveTime.Millis()*p.Active +
		e.IdleTime.Millis()*p.Idle +
		e.SleepTime.Millis()*p.Sleep
}

// Span returns the accounted time (must equal the horizon after a run).
func (e Energy) Span() timeu.Time {
	return e.ActiveTime + e.IdleTime + e.SleepTime + e.DeadTime
}

// Add accumulates another breakdown (used when aggregating processors).
func (e Energy) Add(o Energy) Energy {
	return Energy{
		ActiveTime: e.ActiveTime + o.ActiveTime,
		IdleTime:   e.IdleTime + o.IdleTime,
		SleepTime:  e.SleepTime + o.SleepTime,
		DeadTime:   e.DeadTime + o.DeadTime,
	}
}
