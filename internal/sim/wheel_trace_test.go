package sim_test

// External-package test: drives the wheel-based engine through the real
// policies of internal/core and verifies, via internal/trace, that the
// same seed yields an identical execution trace whether the scratch (and
// its wheel) is fresh or warm from previous runs, and that the traces
// pass the trace-level invariants.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeu"
	"repro/internal/trace"
	"repro/internal/workload"
)

func runTraced(t *testing.T, s *task.Set, a core.Approach, scenario fault.Scenario, seed uint64, scr *sim.Scratch) *sim.Result {
	t.Helper()
	horizon := 100 * timeu.Millisecond
	policy, err := core.New(a, core.Options{})
	if err != nil {
		t.Fatalf("core.New(%v): %v", a, err)
	}
	eng, err := sim.New(s, policy, sim.Config{
		Horizon:     horizon,
		Faults:      fault.NewPlan(scenario, horizon, stats.NewRand(seed)),
		RecordTrace: true,
		Scratch:     scr,
	})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestWheelTraceIdenticalFreshVsWarm(t *testing.T) {
	paperSet := task.NewSet(
		task.New(0, 5, 4, 3, 2, 4),
		task.New(1, 10, 10, 3, 1, 2),
	)
	gen := workload.NewGenerator(workload.DefaultConfig(), 7)
	sets := []*task.Set{paperSet}
	for len(sets) < 4 {
		if s, err := gen.Candidate(0.5); err == nil {
			sets = append(sets, s)
		}
	}
	scr := sim.NewScratch()
	for si, s := range sets {
		for _, a := range []core.Approach{core.ST, core.DP, core.Selective} {
			for _, scenario := range []fault.Scenario{fault.NoFault, fault.PermanentOnly} {
				seed := uint64(si)*100 + uint64(scenario)
				fresh := runTraced(t, s, a, scenario, seed, nil)
				warm := runTraced(t, s, a, scenario, seed, scr)
				g := trace.Gantt{}
				fg, wg := g.Render(fresh), g.Render(warm)
				if fg != wg {
					t.Fatalf("set %d %v %v: fresh and warm traces differ\nfresh:\n%s\nwarm:\n%s", si, a, scenario, fg, wg)
				}
				if bad := trace.Check(s, warm); len(bad) > 0 {
					t.Errorf("set %d %v %v: trace invariants violated: %v", si, a, scenario, bad)
				}
			}
		}
	}
}
