package sim

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeu"
)

func ms(v float64) timeu.Time { return timeu.FromMillis(v) }

// fpPolicy is a minimal test policy: every job is mandatory, main on the
// primary and backup on the spare (optionally postponed), plain FP.
type fpPolicy struct {
	theta     []timeu.Time
	skipEvery int // settle-skip every n-th job of task 0 (0 = never)
	single    bool
	deadProcs [NumProcs]bool
}

func (p *fpPolicy) Name() string                              { return "test-fp" }
func (p *fpPolicy) Init(e *Engine) error                      { return nil }
func (p *fpPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }
func (p *fpPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Index < b.Index
}
func (p *fpPolicy) OnSettled(e *Engine, taskID, index int, effective bool) {}
func (p *fpPolicy) OnPermanentFault(e *Engine, dead int)                   { p.deadProcs[dead] = true }

func (p *fpPolicy) Release(e *Engine, t task.Task, index int) {
	if p.skipEvery > 0 && t.ID == 0 && index%p.skipEvery == 0 {
		e.SettleSkip(t.ID, index)
		return
	}
	main := task.NewJob(t, index, task.Mandatory)
	if p.single || p.deadProcs[Primary] || p.deadProcs[Spare] {
		e.Admit(main, e.Survivor())
		return
	}
	e.Admit(main, Primary)
	var th timeu.Time
	if p.theta != nil {
		th = p.theta[t.ID]
	}
	e.Admit(task.NewBackup(t, index, th), Spare)
}

func oneTask() *task.Set { return task.NewSet(task.New(0, 10, 10, 3, 1, 2)) }

func TestEngineRejectsBadConfig(t *testing.T) {
	if _, err := New(oneTask(), &fpPolicy{}, Config{Horizon: 0}); err == nil {
		t.Error("zero horizon must be rejected")
	}
	bad := &task.Set{Tasks: []task.Task{{ID: 0, Period: -1}}}
	if _, err := New(bad, &fpPolicy{}, Config{Horizon: ms(10)}); err == nil {
		t.Error("invalid set must be rejected")
	}
}

func TestSingleTaskEnergyAndAccounting(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{}, Config{Horizon: ms(100)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 jobs, both copies run fully (they finish simultaneously):
	// 10 * 3 * 2 = 60 units.
	if got := r.ActiveEnergy(); got != 60 {
		t.Errorf("active energy = %v, want 60", got)
	}
	// Accounting closes: each processor accounts exactly the horizon.
	for pid, en := range r.PerProc {
		if en.Span() != ms(100) {
			t.Errorf("proc %d span = %v, want 100ms", pid, en.Span())
		}
	}
	// All jobs effective.
	if r.Counters.Effective != 10 || r.Counters.Misses != 0 {
		t.Errorf("effective/misses = %d/%d", r.Counters.Effective, r.Counters.Misses)
	}
	if !r.MKSatisfied() {
		t.Error("MK violated")
	}
}

func TestDPDSleepVsIdle(t *testing.T) {
	// One job of 3ms per 10ms: the 7ms gap exceeds Tbe=1ms, so the
	// primary must sleep through it (with postponement the spare too).
	e, err := New(oneTask(), &fpPolicy{theta: []timeu.Time{ms(7)}}, Config{Horizon: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Primary: runs [0,3], then idle-or-sleep [3,10]. No more live jobs
	// on the primary -> nextWork = Infinity -> sleeps.
	if r.PerProc[Primary].SleepTime != ms(7) {
		t.Errorf("primary sleep = %v, want 7ms", r.PerProc[Primary].SleepTime)
	}
	// Spare: backup postponed to 7, canceled at 3 when the main
	// completes. [0,3] it waits for release 7 (gap 7 > 1 -> asleep);
	// cancellation leaves nothing -> stays asleep to horizon.
	if r.PerProc[Spare].ActiveTime != 0 {
		t.Errorf("spare active = %v, want 0", r.PerProc[Spare].ActiveTime)
	}
	if r.PerProc[Spare].SleepTime != ms(10) {
		t.Errorf("spare sleep = %v, want 10ms", r.PerProc[Spare].SleepTime)
	}
	if r.Counters.BackupsCanceledClean != 1 {
		t.Errorf("clean cancels = %d, want 1", r.Counters.BackupsCanceledClean)
	}
}

func TestShortGapStaysIdle(t *testing.T) {
	// Task with 9.5ms WCET per 10ms: gap 0.5ms < Tbe -> idle, not sleep.
	s := task.NewSet(task.New(0, 10, 10, 9.5, 1, 2))
	e, err := New(s, &fpPolicy{single: true}, Config{Horizon: ms(20)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Gap [9.5,10) precedes a known release 0.5ms away (< Tbe): idle.
	// Gap [19.5,20) has no future work at all: the processor powers down.
	if r.PerProc[Primary].IdleTime != ms(0.5) {
		t.Errorf("idle = %v, want 0.5ms", r.PerProc[Primary].IdleTime)
	}
	if r.PerProc[Primary].SleepTime != ms(0.5) {
		t.Errorf("sleep = %v, want 0.5ms", r.PerProc[Primary].SleepTime)
	}
}

func TestPreemptionByHigherPriority(t *testing.T) {
	// tau1=(10,10,2), tau2=(10,10,6) single-proc: tau2 starts after tau1.
	// Releases at 0: J11 [0,2], J21 [2,8].
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2), task.New(1, 10, 10, 6, 1, 2))
	e, err := New(s, &fpPolicy{single: true}, Config{Horizon: ms(10), RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != 2 {
		t.Fatalf("trace = %+v", r.Trace)
	}
	if r.Trace[0].TaskID != 0 || r.Trace[0].End != ms(2) {
		t.Errorf("segment 0 = %+v", r.Trace[0])
	}
	if r.Trace[1].TaskID != 1 || r.Trace[1].Start != ms(2) || r.Trace[1].End != ms(8) {
		t.Errorf("segment 1 = %+v", r.Trace[1])
	}
}

func TestDeadlineMissRecorded(t *testing.T) {
	// Overload: two tasks of 6ms each per 10ms on one processor; tau2
	// misses every deadline.
	s := task.NewSet(task.New(0, 10, 10, 6, 1, 2), task.New(1, 10, 10, 6, 1, 2))
	e, err := New(s, &fpPolicy{single: true}, Config{Horizon: ms(20)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Misses == 0 {
		t.Error("expected misses under overload")
	}
	if r.ViolationAt[1] < 0 {
		t.Error("tau2 must violate (1,2) after consecutive misses")
	}
	if r.MKSatisfied() {
		t.Error("MKSatisfied must be false")
	}
}

func TestSettleSkipOrdering(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{skipEvery: 2, single: true}, Config{Horizon: ms(100)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 2,4,6,8,10 skipped; outcomes alternate hit/miss.
	if len(r.Outcomes[0]) != 10 {
		t.Fatalf("outcomes = %v", r.Outcomes[0])
	}
	for i, ok := range r.Outcomes[0] {
		want := (i+1)%2 == 1
		if ok != want {
			t.Errorf("outcome[%d] = %v, want %v", i, ok, want)
		}
	}
	if r.Counters.OptionalSkipped != 5 {
		t.Errorf("skipped = %d, want 5", r.Counters.OptionalSkipped)
	}
}

func TestPermanentFaultOnSpare(t *testing.T) {
	pf := &fault.Plan{Permanent: &fault.Permanent{At: ms(15), Proc: Spare}}
	e, err := New(oneTask(), &fpPolicy{theta: []timeu.Time{ms(7)}}, Config{Horizon: ms(50), Faults: pf})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.PermanentFault == nil {
		t.Fatal("permanent fault not recorded")
	}
	// Spare dead from 15 on: 35ms dead time.
	if r.PerProc[Spare].DeadTime != ms(35) {
		t.Errorf("spare dead time = %v, want 35ms", r.PerProc[Spare].DeadTime)
	}
	// All 5 jobs still effective (mains unaffected).
	if r.Counters.Effective != 5 || !r.MKSatisfied() {
		t.Errorf("effective = %d, mk = %v", r.Counters.Effective, r.MKSatisfied())
	}
}

func TestPermanentFaultOnPrimaryBackupTakesOver(t *testing.T) {
	// Kill the primary at t=1, mid-execution of the main (job [0,3]).
	// The backup (postponed to 7) must complete the job on the spare.
	pf := &fault.Plan{Permanent: &fault.Permanent{At: ms(1), Proc: Primary}}
	e, err := New(oneTask(), &fpPolicy{theta: []timeu.Time{ms(7)}}, Config{Horizon: ms(20), Faults: pf, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Effective != 2 || !r.MKSatisfied() {
		t.Errorf("effective = %d, want 2 (both jobs recovered); outcomes %v", r.Counters.Effective, r.Outcomes[0])
	}
	// The backup of job 1 must have executed on the spare from t=7.
	var sawBackup bool
	for _, seg := range r.Trace {
		if seg.Proc == Spare && seg.Copy == task.Backup && seg.Index == 1 {
			sawBackup = true
			if seg.Start != ms(7) {
				t.Errorf("backup started at %v, want 7ms", seg.Start)
			}
		}
	}
	if !sawBackup {
		t.Error("backup never ran on the spare")
	}
	// Primary accounting: 1ms of activity then dead.
	if r.PerProc[Primary].ActiveTime != ms(1) || r.PerProc[Primary].DeadTime != ms(19) {
		t.Errorf("primary energy = %+v", r.PerProc[Primary])
	}
}

func TestTransientFaultForcesBackup(t *testing.T) {
	// Rate high enough that the main essentially always faults; the
	// backup then runs to completion. Both copies may fault — outcomes
	// can be misses, but energy must show backups running.
	plan := fault.NoFaults().WithTransientRate(10) // ~1 per 0.1ms: certain fault
	e, err := New(oneTask(), &fpPolicy{theta: []timeu.Time{ms(7)}}, Config{Horizon: ms(10), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.TransientFaults == 0 {
		t.Error("expected transient faults at huge rate")
	}
	// Main [0,3] faults; backup [7,10] must run fully: active = 6.
	if got := r.ActiveEnergy(); got != 6 {
		t.Errorf("active energy = %v, want 6", got)
	}
}

func TestTransientFaultStatistics(t *testing.T) {
	// At the paper's rate 1e-6/ms and 3ms jobs, faults are ~3-in-a-
	// million; over 1000 jobs expect almost surely zero.
	plan := fault.NewPlan(fault.PermanentAndTransient, ms(10000), stats.NewRand(1))
	plan.Permanent = nil // transients only for this test
	e, err := New(oneTask(), &fpPolicy{single: true}, Config{Horizon: ms(10000), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.TransientFaults > 2 {
		t.Errorf("transient faults = %d, expected ~0 at 1e-6", r.Counters.TransientFaults)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		plan := fault.NewPlan(fault.PermanentAndTransient, ms(500), stats.NewRand(99))
		e, err := New(oneTask(), &fpPolicy{theta: []timeu.Time{ms(7)}}, Config{Horizon: ms(500), Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.ActiveEnergy() != b.ActiveEnergy() || a.Counters != b.Counters {
		t.Error("same seed must give identical results")
	}
}

func TestBoundaryJobNotReleased(t *testing.T) {
	// Horizon 15: job 2 releases at 10 with deadline 20 > 15 — must not
	// be released at all.
	e, err := New(oneTask(), &fpPolicy{single: true}, Config{Horizon: ms(15)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes[0]) != 1 {
		t.Errorf("outcomes = %v, want exactly 1", r.Outcomes[0])
	}
	if got := r.ActiveEnergy(); got != 3 {
		t.Errorf("energy = %v, want 3", got)
	}
}

func TestResultStrings(t *testing.T) {
	if !strings.Contains(DefaultPower().String(), "Tbe") {
		t.Error("power String")
	}
}

func TestEnergyHelpers(t *testing.T) {
	e := Energy{ActiveTime: ms(10), IdleTime: ms(5), SleepTime: ms(3), DeadTime: ms(2)}
	p := PowerModel{Active: 1, Idle: 0.1, Sleep: 0.01, BreakEven: ms(1)}
	if got := e.Active(p); got != 10 {
		t.Errorf("Active = %v", got)
	}
	want := 10 + 0.5 + 0.03
	if got := e.Total(p); got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if e.Span() != ms(20) {
		t.Errorf("Span = %v", e.Span())
	}
	sum := e.Add(e)
	if sum.ActiveTime != ms(20) || sum.DeadTime != ms(4) {
		t.Errorf("Add = %+v", sum)
	}
}

func TestPreemptionCounterAndOverhead(t *testing.T) {
	// tau2 starts at 0, tau1 preempts at 5 (release of its job 1 with
	// offset): use offset via a long-WCET low-priority task instead:
	// tau1=(10,10,2) releases at 0 and 10; tau2=(20,20,12) runs in
	// between and is preempted once at t=10.
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2), task.New(1, 20, 20, 12, 1, 2))
	e, err := New(s, &fpPolicy{single: true}, Config{Horizon: ms(20)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// J11 [0,2], J21 [2,10], preempted by J12 [10,12], J21 [12,16].
	if r.Counters.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", r.Counters.Preemptions)
	}
	if got := r.ActiveEnergy(); got != 16 {
		t.Errorf("energy = %v, want 16", got)
	}

	// With 1ms preemption overhead J21 needs one extra ms: energy 17.
	e2, err := New(s, &fpPolicy{single: true}, Config{Horizon: ms(20), PreemptionOverhead: ms(1)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.ActiveEnergy(); got != 17 {
		t.Errorf("energy with overhead = %v, want 17", got)
	}
	if r2.Counters.Misses != 0 {
		t.Errorf("misses = %d", r2.Counters.Misses)
	}
}

func TestPreemptionOverheadCanCauseMiss(t *testing.T) {
	// tau2 fits exactly without overhead (completes at its deadline);
	// any preemption overhead pushes it over.
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2), task.New(1, 20, 20, 16, 1, 2))
	run := func(overhead timeu.Time) *Result {
		e, err := New(s, &fpPolicy{single: true}, Config{Horizon: ms(20), PreemptionOverhead: overhead})
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if r := run(0); r.Counters.Misses != 0 {
		t.Fatalf("baseline must fit exactly: %+v", r.Counters)
	}
	if r := run(ms(0.5)); r.Counters.Misses == 0 {
		t.Error("overhead must push tau2 past its deadline")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{single: true}, Config{Horizon: ms(1000), MaxEvents: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Error("tiny MaxEvents must trip the runaway guard")
	}
}

func TestBackupCompletingBeforeMain(t *testing.T) {
	// Force the main to be delayed by a higher-priority hog on the
	// primary while the spare runs the backup immediately: the backup
	// completes first and must cancel the *main*.
	hog := task.New(0, 20, 20, 10, 1, 2)
	tk := task.New(1, 20, 20, 3, 1, 2)
	s := task.NewSet(hog, tk)
	p := &splitPolicy{}
	e, err := New(s, p, Config{Horizon: ms(20), RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// tau2's backup runs [0,3] on the spare; its main never starts on
	// the primary (hog runs [0,10], main canceled at 3).
	if r.Counters.Effective != 2 {
		t.Errorf("effective = %d, want 2", r.Counters.Effective)
	}
	for _, seg := range r.Trace {
		if seg.Proc == Primary && seg.TaskID == 1 {
			t.Errorf("tau2 main executed despite backup finishing first: %+v", seg)
		}
	}
	if got := r.ActiveEnergy(); got != 13 {
		t.Errorf("energy = %v, want 13 (hog 10 + backup 3)", got)
	}
}

// splitPolicy: task 0 main-only on the primary; task 1 main on primary
// plus an immediate backup on the spare (no postponement).
type splitPolicy struct{}

func (p *splitPolicy) Name() string                              { return "test-split" }
func (p *splitPolicy) Init(e *Engine) error                      { return nil }
func (p *splitPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }
func (p *splitPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Index < b.Index
}
func (p *splitPolicy) OnSettled(e *Engine, taskID, index int, effective bool) {}
func (p *splitPolicy) OnPermanentFault(e *Engine, dead int)                   {}
func (p *splitPolicy) Release(e *Engine, t task.Task, index int) {
	e.Admit(task.NewJob(t, index, task.Mandatory), Primary)
	if t.ID == 1 {
		e.Admit(task.NewBackup(t, index, 0), Spare)
	}
}

func TestAdmitToDeadProcReroutes(t *testing.T) {
	// Kill the spare at 0; a policy that still admits backups to the
	// spare must see them rerouted to the primary (the survivor).
	pf := &fault.Plan{Permanent: &fault.Permanent{At: 0, Proc: Spare}}
	// fpPolicy without the deadProcs shortcut: force dual admission by
	// leaving single=false and ignoring OnPermanentFault via a wrapper.
	p := &stubbornPolicy{}
	e, err := New(oneTask(), p, Config{Horizon: ms(20), RecordTrace: true})
	_ = pf
	if err != nil {
		t.Fatal(err)
	}
	e.cfg.Faults = pf
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range r.Trace {
		if seg.Proc == Spare {
			t.Errorf("segment on dead spare: %+v", seg)
		}
	}
	// Both jobs still effective via the primary copies.
	if r.Counters.Effective != 2 {
		t.Errorf("effective = %d, want 2; outcomes %v", r.Counters.Effective, r.Outcomes)
	}
}

// stubbornPolicy keeps admitting backups to the spare even after it dies.
type stubbornPolicy struct{}

func (p *stubbornPolicy) Name() string                              { return "test-stubborn" }
func (p *stubbornPolicy) Init(e *Engine) error                      { return nil }
func (p *stubbornPolicy) Runnable(now timeu.Time, j *task.Job) bool { return true }
func (p *stubbornPolicy) Less(now timeu.Time, a, b *task.Job) bool {
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	return a.Copy == task.Main && b.Copy == task.Backup
}
func (p *stubbornPolicy) OnSettled(e *Engine, taskID, index int, effective bool) {}
func (p *stubbornPolicy) OnPermanentFault(e *Engine, dead int)                   {}
func (p *stubbornPolicy) Release(e *Engine, t task.Task, index int) {
	e.Admit(task.NewJob(t, index, task.Mandatory), Primary)
	e.Admit(task.NewBackup(t, index, 0), Spare)
}

func TestSurvivor(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{}, Config{Horizon: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	if e.Survivor() != Primary {
		t.Error("with both alive, Survivor should report the primary")
	}
	e.procs[Primary].dead = true
	if e.Survivor() != Spare {
		t.Error("with the primary dead, Survivor must be the spare")
	}
}

func TestSettleSkipPanicsOnAdmittedJob(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{}, Config{Horizon: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	tk := e.Set().Tasks[0]
	e.Admit(task.NewJob(tk, 1, task.Mandatory), Primary)
	defer func() {
		if recover() == nil {
			t.Error("SettleSkip on an admitted job must panic")
		}
	}()
	e.SettleSkip(0, 1)
}

func TestOutcomeOrderInvariantPanics(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{}, Config{Horizon: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order outcome must panic")
		}
	}()
	e.recordOutcome(0, 3, true) // job 1 not settled yet
}

func TestSimultaneousCompletionBothCopies(t *testing.T) {
	// ST-style: main and backup of the same job complete at the same
	// instant. Exactly one outcome must be recorded and it must be
	// effective.
	e, err := New(oneTask(), &fpPolicy{}, Config{Horizon: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes[0]) != 1 || !r.Outcomes[0][0] {
		t.Errorf("outcomes = %v, want [true]", r.Outcomes[0])
	}
	// Both copies ran fully: 6 units.
	if got := r.ActiveEnergy(); got != 6 {
		t.Errorf("energy = %v, want 6", got)
	}
}

func TestPerTaskAttribution(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{theta: []timeu.Time{ms(7)}}, Config{Horizon: ms(20), RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats := r.PerTask()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	ts := stats[0]
	if ts.Released != 2 || ts.Effective != 2 || ts.Misses != 0 {
		t.Errorf("outcome counts wrong: %+v", ts)
	}
	// Two mains of 3ms each; backups canceled cleanly (postponed to 7,
	// mains finish at 3 and 13).
	if ts.MainTime != ms(6) {
		t.Errorf("MainTime = %v, want 6ms", ts.MainTime)
	}
	if ts.BackupTime != 0 {
		t.Errorf("BackupTime = %v, want 0", ts.BackupTime)
	}
	if ts.MKViolatedAt != -1 {
		t.Errorf("MKViolatedAt = %d", ts.MKViolatedAt)
	}
	if got := ts.Energy(r.Power); got != 6 {
		t.Errorf("Energy = %v, want 6", got)
	}
	tbl := r.PerTaskTable()
	if !strings.Contains(tbl, "tau1") || !strings.Contains(tbl, "6ms") {
		t.Errorf("table:\n%s", tbl)
	}
}

func TestPerTaskWithoutTrace(t *testing.T) {
	e, err := New(oneTask(), &fpPolicy{}, Config{Horizon: ms(20)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	ts := r.PerTask()[0]
	if ts.MainTime != 0 || ts.Released != 2 {
		t.Errorf("untraced attribution wrong: %+v", ts)
	}
}
