package sim

// The calendar queue behind the engine's event loop. Every function here
// runs once or more per simulated event; keep it allocation-free.
//mklint:hotpath file

import (
	"repro/internal/task"
	"repro/internal/timeu"
)

const (
	// wheelBuckets is the fixed bucket count of the calendar queue. A
	// power of two keeps the bucket map a mask; a fixed count (rather
	// than one derived from the task set) lets a pooled Scratch reuse
	// the bucket storage across runs of different sets.
	wheelBuckets = 256
	wheelMask    = wheelBuckets - 1
	// wheelScanLimit bounds the empty-bucket walk of nextAfter. Event
	// instants in a periodic schedule land within a few buckets of each
	// other when delta divides the periods; a sparse tail (e.g. only a
	// far-away deadline left near the horizon) falls back to one global
	// scan instead of walking laps of empty windows.
	wheelScanLimit = 64
	// wheelBucketCap is the initial capacity carved out for each bucket
	// from one shared backing array, so a cold wheel costs one allocation
	// instead of one per touched bucket. Buckets outgrowing it reallocate
	// individually (the full-slice expressions below forbid overlap).
	wheelBucketCap = 4
)

// timeWheel is a calendar queue of future event instants: a fixed ring of
// buckets, each an unsorted multiset of times, with bucket width delta
// sized from the GCD of the task periods so periodic instants (releases,
// deadlines) hash into dense, short buckets. Times are exact — the wheel
// never quantizes; delta only chooses the hashing, so off-grid instants
// (θ-postponed activations, promotions, completions) are merely less
// evenly spread, never misplaced.
//
// The multiset supports O(1) schedule, O(bucket) unschedule, and an
// amortized O(1) nextAfter that lazily drops instants at or before now —
// an instant that has been reached has, by construction of the event
// loop, already been fully processed.
type timeWheel struct {
	delta   timeu.Time
	count   int
	buckets [wheelBuckets][]timeu.Time
}

// sizeFor picks the bucket width for a task set: the GCD of every period,
// deadline and nonzero offset, clamped to at least one tick. Release and
// deadline instants are then exact multiples of delta, so consecutive
// events sit a handful of buckets apart and nextAfter's walk is short.
func (w *timeWheel) sizeFor(set *task.Set) {
	var g timeu.Time
	for i := range set.Tasks {
		t := &set.Tasks[i]
		g = timeu.GCD(g, t.Period)
		g = timeu.GCD(g, t.Deadline)
		if t.Offset != 0 {
			g = timeu.GCD(g, t.Offset)
		}
	}
	if g < 1 {
		g = 1
	}
	w.delta = g
	if w.buckets[0] == nil {
		backing := make([]timeu.Time, wheelBuckets*wheelBucketCap)
		for b := range w.buckets {
			w.buckets[b] = backing[b*wheelBucketCap : b*wheelBucketCap : (b+1)*wheelBucketCap]
		}
	}
}

// reset empties every bucket, retaining capacity.
func (w *timeWheel) reset() {
	for b := range w.buckets {
		w.buckets[b] = w.buckets[b][:0]
	}
	w.count = 0
}

// schedule records a future instant. Duplicates are kept: each scheduled
// occurrence is owned by whoever scheduled it and unscheduled (or simply
// consumed by time passing it) independently.
func (w *timeWheel) schedule(t timeu.Time) {
	b := int(t/w.delta) & wheelMask
	w.buckets[b] = append(w.buckets[b], t)
	w.count++
}

// unschedule removes one occurrence of a future instant, if present. The
// engine unschedules exactly what it scheduled, but an occurrence may
// already have been consumed by nextAfter once now passed it — absence is
// not an error.
func (w *timeWheel) unschedule(t timeu.Time) {
	b := int(t/w.delta) & wheelMask
	bk := w.buckets[b]
	for i, v := range bk {
		if v == t {
			bk[i] = bk[len(bk)-1]
			w.buckets[b] = bk[:len(bk)-1]
			w.count--
			return
		}
	}
}

// nextAfter returns the earliest scheduled instant strictly after now, or
// timeu.Infinity when none remains. Instants at or before now are dropped
// as they are encountered. The walk visits bucket windows in time order
// starting at now's window; a window's in-window minimum, when one
// exists, is the global minimum because every earlier window has already
// been exhausted. Entries from later laps hash into the same buckets but
// fall outside the current window and are skipped, not returned early.
func (w *timeWheel) nextAfter(now timeu.Time) timeu.Time {
	if w.count == 0 {
		return timeu.Infinity
	}
	ord := now / w.delta
	for i := timeu.Time(0); i <= wheelScanLimit; i++ {
		o := ord + i
		hi := (o + 1) * w.delta
		best := timeu.Infinity
		bk := w.buckets[int(o)&wheelMask]
		for k := 0; k < len(bk); {
			v := bk[k]
			if v <= now {
				bk[k] = bk[len(bk)-1]
				bk = bk[:len(bk)-1]
				w.count--
				continue
			}
			if v < hi && v < best {
				best = v
			}
			k++
		}
		w.buckets[int(o)&wheelMask] = bk
		if best != timeu.Infinity {
			return best
		}
		if w.count == 0 {
			return timeu.Infinity
		}
	}
	return w.scanAll(now)
}

// scanAll is the sparse-tail fallback: one pass over every bucket,
// dropping stale entries and returning the global minimum after now.
func (w *timeWheel) scanAll(now timeu.Time) timeu.Time {
	best := timeu.Infinity
	for b := range w.buckets {
		bk := w.buckets[b]
		for k := 0; k < len(bk); {
			v := bk[k]
			if v <= now {
				bk[k] = bk[len(bk)-1]
				bk = bk[:len(bk)-1]
				w.count--
				continue
			}
			if v < best {
				best = v
			}
			k++
		}
		w.buckets[b] = bk
	}
	return best
}
