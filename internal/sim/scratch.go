package sim

// Every function in this file is per-run working-state machinery reused
// across batch runs; keep it allocation-free.
//mklint:hotpath file

import (
	"sync"

	"repro/internal/task"
	"repro/internal/timeu"
)

// arenaChunk is the allocation granularity of an arena. Chunking keeps
// pointers stable (no reallocation moves a handed-out record) while a
// batch of simulations amortizes each make to 64 records.
const arenaChunk = 64

// arena is a reusable bump allocator for per-run records. get hands out a
// pointer into a chunk; the record may hold stale data from a previous
// run, so callers must fully overwrite it. reset recycles every record
// while retaining the chunks.
type arena[T any] struct {
	chunks [][]T
	n      int
}

func (a *arena[T]) get() *T {
	ci, off := a.n/arenaChunk, a.n%arenaChunk
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, arenaChunk))
	}
	a.n++
	return &a.chunks[ci][off]
}

func (a *arena[T]) reset() { a.n = 0 }

// Scratch is the reusable working state of one engine run: job and pair
// records, per-processor ready queues, the settlement table, the timing
// wheel, outcome rows and the trace buffer. A fresh engine with a warm
// Scratch allocates (almost) nothing; Result values copy out of it, so
// reusing a Scratch never corrupts previously returned results.
//
// A Scratch serves one engine at a time — share across concurrent runs
// through a ScratchPool, never directly. A sweep hands one Scratch to
// each worker for its whole lifetime (see experiment.RunContext), so the
// arenas, the pair table rows and the wheel buckets amortize across every
// interval of the sweep, not just across the approaches of one set.
type Scratch struct {
	nextIdx []int
	// pairTab is the settlement table: pairTab[taskID][index-1] is the
	// jobPair of J_(taskID,index), nil until the job is admitted or
	// skipped. Job indices are dense and released in order, so a slice
	// row beats a map: no hashing on the admit/settle path.
	pairTab  [][]*jobPair
	open     []*jobPair
	due      []*jobPair
	live     [NumProcs][]*task.Job
	outcomes [][]bool
	trace    []Segment
	jobs     arena[task.Job]
	jobPairs arena[jobPair]
	// wheel holds every scheduled future instant (releases, deadlines,
	// postponed activations, promotions); minRel caches the next task
	// release and dueAt a lower bound on the earliest open deadline, so
	// the per-event release and settlement scans run only when due.
	wheel  timeWheel
	minRel timeu.Time
	dueAt  timeu.Time
}

// NewScratch builds an empty Scratch; it warms up over its first run.
func NewScratch() *Scratch {
	return &Scratch{}
}

// prepare readies the scratch for a run over n tasks: every container is
// emptied (capacity retained) and the arenas are rewound.
func (s *Scratch) prepare(n int) {
	if cap(s.nextIdx) < n {
		s.nextIdx = make([]int, n)
	}
	s.nextIdx = s.nextIdx[:n]
	for i := range s.nextIdx {
		s.nextIdx[i] = 1
	}
	if cap(s.pairTab) < n {
		s.pairTab = make([][]*jobPair, n)
	}
	s.pairTab = s.pairTab[:n]
	for i := range s.pairTab {
		s.pairTab[i] = s.pairTab[i][:0]
	}
	s.open = s.open[:0]
	s.due = s.due[:0]
	for p := 0; p < NumProcs; p++ {
		s.live[p] = s.live[p][:0]
	}
	if cap(s.outcomes) < n {
		s.outcomes = make([][]bool, n)
	}
	s.outcomes = s.outcomes[:n]
	for i := range s.outcomes {
		s.outcomes[i] = s.outcomes[i][:0]
	}
	s.trace = s.trace[:0]
	s.jobs.reset()
	s.jobPairs.reset()
	s.wheel.reset()
	s.minRel = timeu.Infinity
	s.dueAt = timeu.Infinity
}

// pairSlot returns the settlement-table slot of J_(taskID,index), growing
// the task's row on first touch. Rows grow by at most one live window per
// admit (indices arrive in release order), so growth is amortized O(1)
// and the capacity is retained across runs.
func (s *Scratch) pairSlot(taskID, index int) **jobPair {
	row := s.pairTab[taskID]
	for len(row) < index {
		row = append(row, nil)
	}
	s.pairTab[taskID] = row
	return &row[index-1]
}

// pairAt returns the jobPair of an admitted or skipped job; the job must
// have a slot (callers only look up jobs that went through Admit).
func (s *Scratch) pairAt(taskID, index int) *jobPair {
	return s.pairTab[taskID][index-1]
}

// ScratchPool shares Scratch values between concurrent workers via a
// sync.Pool. The zero value is unusable; use NewScratchPool.
type ScratchPool struct {
	pool sync.Pool
}

// NewScratchPool builds a pool that mints a fresh Scratch on demand.
func NewScratchPool() *ScratchPool {
	sp := &ScratchPool{}
	sp.pool.New = func() any { return NewScratch() }
	return sp
}

// Get borrows a Scratch; return it with Put once the run's Result has
// been assembled. Safe on a nil pool (returns a fresh Scratch).
func (sp *ScratchPool) Get() *Scratch {
	if sp == nil {
		return NewScratch()
	}
	return sp.pool.Get().(*Scratch)
}

// Put returns a Scratch to the pool. Safe on a nil pool (drops it).
func (sp *ScratchPool) Put(s *Scratch) {
	if sp == nil || s == nil {
		return
	}
	sp.pool.Put(s)
}
