// Package experiment regenerates the paper's evaluation (Figure 6): a
// sweep over total (m,k)-utilization intervals, with 20 schedulable task
// sets per interval, comparing the active energy of MKSS_ST (the
// reference), MKSS_DP and MKSS_selective under three fault scenarios —
// no faults (6a), one permanent fault (6b), and permanent plus Poisson
// transient faults (6c). Energies are reported normalized to MKSS_ST per
// set and averaged per interval, which is how the figure presents them.
package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeu"
	"repro/internal/workload"
)

// Config parameterizes a sweep; DefaultConfig reproduces Figure 6.
type Config struct {
	// Seed makes the whole sweep reproducible: task-set generation and
	// fault injection derive independent sub-streams from it.
	Seed uint64
	// Intervals are the (m,k)-utilization buckets (paper: width 0.1).
	Intervals []workload.Interval
	// SetsPerInterval and MaxCandidates implement the paper's "at least
	// 20 task sets schedulable or at least 5000 task sets generated".
	SetsPerInterval int
	MaxCandidates   int
	// Scenario selects the fault setting (Figure 6a/b/c).
	Scenario fault.Scenario
	// Approaches to compare; ST is always run (it is the normalizer).
	Approaches []core.Approach
	// Workload generation parameters (zero value → workload.DefaultConfig).
	Workload workload.Config
	// CoreOpts tune the policies (ablations); zero value is the paper.
	CoreOpts core.Options
	// Power is the energy model (zero value → sim.DefaultPower()).
	Power sim.PowerModel
	// MinHorizon and HorizonCap bound the per-set simulation horizon: the
	// (m,k)-hyperperiod extended to at least MinHorizon, capped at
	// HorizonCap. Defaults: 500 ms and 2 s.
	MinHorizon timeu.Time
	HorizonCap timeu.Time
	// IntervalOffset shifts the per-interval seed derivation: interval i
	// of this sweep draws the generation and fault sub-streams interval
	// IntervalOffset+i of a whole sweep with the same Seed would draw. It
	// lets a caller split one logical sweep into per-interval runs (the
	// streaming /v1/sweep endpoint) whose rows match the batch run bit
	// for bit. Zero — the default — leaves the derivation unchanged.
	IntervalOffset int
	// Workers bounds simulation parallelism (0 = runtime.NumCPU()).
	Workers int
	// Progress, when non-nil, receives one line per finished interval.
	// Intervals run concurrently, so lines may arrive out of interval
	// order.
	Progress io.Writer
	// Cache, when non-nil, memoizes per-set offline analyses across the
	// sweep (shared by all workers); nil means a sweep-private cache.
	Cache *analysis.Cache
	// ScratchPool, when non-nil, recycles engine working state between
	// runs; nil means a sweep-private pool.
	ScratchPool *sim.ScratchPool
}

// DefaultConfig returns the paper's Figure 6 setup for a scenario.
func DefaultConfig(sc fault.Scenario) Config {
	return Config{
		Seed:            2020,
		Intervals:       workload.Intervals(0.1, 1.0, 0.1),
		SetsPerInterval: 20,
		MaxCandidates:   5000,
		Scenario:        sc,
		Approaches:      []core.Approach{core.ST, core.DP, core.Selective},
		Workload:        workload.DefaultConfig(),
		MinHorizon:      500 * timeu.Millisecond,
		HorizonCap:      2 * timeu.Second,
	}
}

// SetResult is one task set's outcome across approaches.
type SetResult struct {
	Set     *task.Set
	Horizon timeu.Time
	// Active[a] is the absolute active energy of approach a; Norm[a] is
	// Active[a]/Active[ST].
	Active map[core.Approach]float64
	Norm   map[core.Approach]float64
	// Violated[a] reports an (m,k) violation under approach a.
	Violated map[core.Approach]bool
	// Counters[a] is the run's observability counters under approach a
	// (the per-mechanism accounting behind the energy number: backup
	// cancellations, demotions, DPD sleeps, ...).
	Counters map[core.Approach]metrics.Counters
}

// Row aggregates one utilization interval.
type Row struct {
	Interval   workload.Interval
	Candidates int
	Sets       []SetResult
	// NormMean[a] is the interval's mean normalized energy; NormCI the
	// 95% half-width.
	NormMean map[core.Approach]float64
	NormCI   map[core.Approach]float64
	// Violations[a] counts sets with (m,k) violations.
	Violations map[core.Approach]int
	// Counters[a] sums the interval's run counters per approach, and
	// HorizonTotal the corresponding simulated horizons, so invariants
	// like busy+idle+sleep+dead = horizon × processors stay checkable on
	// the aggregate.
	Counters     map[core.Approach]metrics.Counters
	HorizonTotal timeu.Time
}

// Report is a full sweep.
type Report struct {
	Scenario   fault.Scenario
	Approaches []core.Approach
	Rows       []Row
}

// Run executes the sweep without cancellation support; see RunContext.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the sweep, sharding whole intervals across the
// worker budget: each interval generates its task sets and fans the
// per-set simulations out over a semaphore shared by every interval, so
// the sweep keeps all workers busy across interval boundaries. Per-set
// offline analyses are memoized in cfg.Cache and derived once per set,
// not once per approach.
//
// On cancellation RunContext returns the partial Report — the intervals
// that completed, in interval order — together with a non-nil error
// wrapping ctx.Err() (test with errors.Is). All workers are drained
// before it returns; no goroutines leak.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.SetsPerInterval <= 0 {
		cfg.SetsPerInterval = 20
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 5000
	}
	if len(cfg.Intervals) == 0 {
		cfg.Intervals = workload.Intervals(0.1, 1.0, 0.1)
	}
	if cfg.Workload == (workload.Config{}) {
		cfg.Workload = workload.DefaultConfig()
	}
	if cfg.Power == (sim.PowerModel{}) {
		cfg.Power = sim.DefaultPower()
	}
	if cfg.MinHorizon <= 0 {
		cfg.MinHorizon = 500 * timeu.Millisecond
	}
	if cfg.HorizonCap <= 0 {
		cfg.HorizonCap = 2 * timeu.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Cache == nil {
		cfg.Cache = analysis.NewCache(0)
	}
	if cfg.ScratchPool == nil {
		cfg.ScratchPool = sim.NewScratchPool()
	}
	approaches := ensureST(cfg.Approaches)

	// A fixed roster of scratches — one per worker slot — lives for the
	// whole sweep: the arenas, pair-table rows and wheel buckets warm up
	// during the first runs and then amortize across every interval,
	// immune to sync.Pool's GC-cycle clearing. The roster is borrowed from
	// (and returned to) cfg.ScratchPool so a caller-held pool still reuses
	// the same scratches across sweeps (the mkservd server does).
	scratches := make(chan *sim.Scratch, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		scratches <- cfg.ScratchPool.Get()
	}
	defer func() {
		close(scratches)
		for scr := range scratches {
			cfg.ScratchPool.Put(scr)
		}
	}()

	rows := make([]Row, len(cfg.Intervals))
	done := make([]bool, len(cfg.Intervals))
	// sem gates both set generation and simulation work across all
	// intervals. Interval goroutines release it before waiting on their
	// set workers, so the two uses cannot deadlock.
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards firstErr, done, Progress
	var firstErr error
	for ivIdx, iv := range cfg.Intervals {
		wg.Add(1)
		go func(ivIdx int, iv workload.Interval) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			sem <- struct{}{}
			gen := workload.NewGenerator(cfg.Workload, stats.DeriveSeed(cfg.Seed, uint64(cfg.IntervalOffset+ivIdx)))
			batch := gen.GenerateInterval(iv, cfg.SetsPerInterval, cfg.MaxCandidates)
			<-sem
			row := Row{
				Interval:   iv,
				Candidates: batch.Candidates,
				NormMean:   map[core.Approach]float64{},
				NormCI:     map[core.Approach]float64{},
				Violations: map[core.Approach]int{},
				Counters:   map[core.Approach]metrics.Counters{},
			}
			results := make([]SetResult, len(batch.Sets))
			var iwg sync.WaitGroup
			failed := false
			for si, s := range batch.Sets {
				iwg.Add(1)
				go func(si int, s *task.Set) {
					defer iwg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					if ctx.Err() != nil {
						return
					}
					faultSeed := stats.DeriveSeed(cfg.Seed, uint64(1_000_000+(cfg.IntervalOffset+ivIdx)*10_000+si))
					sr, err := runSet(ctx, s, approaches, cfg, faultSeed, scratches)
					if err != nil {
						mu.Lock()
						if firstErr == nil && !isCtxErr(ctx, err) {
							firstErr = fmt.Errorf("interval %v set %d: %w", iv, si, err)
						}
						mu.Unlock()
						return
					}
					results[si] = sr
				}(si, s)
			}
			iwg.Wait()
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			failed = firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			row.Sets = results
			aggregate(&row, approaches)
			rows[ivIdx] = row
			mu.Lock()
			done[ivIdx] = true
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "interval %v: %d sets (%d candidates) %s\n",
					iv, len(row.Sets), row.Candidates, row.summary(approaches))
			}
			mu.Unlock()
		}(ivIdx, iv)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rep := &Report{Scenario: cfg.Scenario, Approaches: approaches}
	if err := ctx.Err(); err != nil {
		// Partial report: the completed intervals, in interval order.
		for ivIdx := range rows {
			if done[ivIdx] {
				rep.Rows = append(rep.Rows, rows[ivIdx])
			}
		}
		return rep, fmt.Errorf("experiment: sweep interrupted (%d/%d intervals complete): %w",
			len(rep.Rows), len(cfg.Intervals), err)
	}
	rep.Rows = rows
	return rep, nil
}

// isCtxErr reports whether err is just the context's cancellation
// surfacing through a worker, as opposed to a real simulation failure.
func isCtxErr(ctx context.Context, err error) bool {
	cause := ctx.Err()
	return cause != nil && errors.Is(err, cause)
}

// RunSet simulates one task set under every approach with an identical
// fault realization and returns the per-approach energies.
func RunSet(s *task.Set, approaches []core.Approach, cfg Config, faultSeed uint64) (SetResult, error) {
	return runSet(context.Background(), s, approaches, cfg, faultSeed, nil)
}

// runSet borrows engine working state from scratches (the sweep's
// per-worker roster) when non-nil, else from cfg.ScratchPool (nil-safe: a
// nil pool mints a fresh Scratch).
func runSet(ctx context.Context, s *task.Set, approaches []core.Approach, cfg Config, faultSeed uint64, scratches chan *sim.Scratch) (SetResult, error) {
	horizon := simHorizon(s, cfg.MinHorizon, cfg.HorizonCap)
	sr := SetResult{
		Set:      s,
		Horizon:  horizon,
		Active:   map[core.Approach]float64{},
		Norm:     map[core.Approach]float64{},
		Violated: map[core.Approach]bool{},
		Counters: map[core.Approach]metrics.Counters{},
	}
	opts := cfg.CoreOpts
	if opts.Offline == nil && cfg.Cache != nil {
		// One offline analysis per set, shared by every approach below
		// (and by any other run of a fingerprint-identical set).
		opts.Offline = cfg.Cache.Get(s, analysis.Options{
			Pattern:        opts.Pattern,
			HyperperiodCap: opts.HyperperiodCap,
		})
	}
	var scr *sim.Scratch
	if scratches != nil {
		scr = <-scratches
		defer func() { scratches <- scr }()
	} else {
		scr = cfg.ScratchPool.Get()
		defer cfg.ScratchPool.Put(scr)
	}
	for _, a := range approaches {
		// Each approach re-draws the same plan from the same seed, so the
		// permanent fault instant/processor are identical across
		// approaches (fair comparison); transient draws consume the
		// stream per executed job.
		plan := fault.NewPlan(cfg.Scenario, horizon, stats.NewRand(faultSeed))
		policy, err := core.New(a, opts)
		if err != nil {
			return sr, err
		}
		eng, err := sim.New(s, policy, sim.Config{
			Power:   cfg.Power,
			Horizon: horizon,
			Faults:  plan,
			Scratch: scr,
		})
		if err != nil {
			return sr, err
		}
		res, err := eng.RunContext(ctx)
		if err != nil {
			return sr, err
		}
		sr.Active[a] = res.ActiveEnergy()
		sr.Violated[a] = !res.MKSatisfied()
		sr.Counters[a] = res.Counters
	}
	ref := sr.Active[core.ST]
	for _, a := range approaches {
		if ref > 0 {
			sr.Norm[a] = sr.Active[a] / ref
		} else {
			sr.Norm[a] = 1
		}
	}
	return sr, nil
}

// simHorizon extends the (m,k)-hyperperiod to at least minH, capping at
// capH: whole hyperperiods keep the static patterns periodic, the floor
// keeps short-hyperperiod sets statistically meaningful, and the cap
// keeps astronomically long hyperperiods tractable.
func simHorizon(s *task.Set, minH, capH timeu.Time) timeu.Time {
	h := s.MKHyperperiod(capH)
	if h >= capH {
		return capH
	}
	n := timeu.CeilDiv(minH, h)
	if n < 1 {
		n = 1
	}
	total := n * h
	if total > capH {
		total = capH
	}
	return total
}

func aggregate(row *Row, approaches []core.Approach) {
	for _, a := range approaches {
		var sample stats.Sample
		var sum metrics.Counters
		for _, sr := range row.Sets {
			sample.Add(sr.Norm[a])
			if sr.Violated[a] {
				row.Violations[a]++
			}
			sum = sum.Add(sr.Counters[a])
		}
		row.NormMean[a] = sample.Mean()
		row.NormCI[a] = sample.CI95()
		row.Counters[a] = sum
	}
	for _, sr := range row.Sets {
		row.HorizonTotal += sr.Horizon
	}
}

func (row Row) summary(approaches []core.Approach) string {
	parts := make([]string, 0, len(approaches))
	for _, a := range approaches {
		parts = append(parts, fmt.Sprintf("%s=%.3f", a, row.NormMean[a]))
	}
	return strings.Join(parts, " ")
}

func ensureST(as []core.Approach) []core.Approach {
	for _, a := range as {
		if a == core.ST {
			return as
		}
	}
	return append([]core.Approach{core.ST}, as...)
}

// MaxGain returns the largest interval-mean energy reduction of approach
// a over approach b (1 − mean_a/mean_b) and the interval where it occurs
// — the paper's "maximal energy reduction by MKSS_selective over MKSS_DP"
// headline.
func (r *Report) MaxGain(a, b core.Approach) (float64, workload.Interval) {
	best := 0.0
	var at workload.Interval
	for _, row := range r.Rows {
		if len(row.Sets) == 0 || timeu.ApproxZero(row.NormMean[b]) {
			continue
		}
		g := 1 - row.NormMean[a]/row.NormMean[b]
		if g > best {
			best = g
			at = row.Interval
		}
	}
	return best, at
}

// Table renders the report as a fixed-width ASCII table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure-6 sweep — scenario: %s\n", r.Scenario)
	fmt.Fprintf(&b, "%-12s %5s %10s", "(m,k)-util", "sets", "candidates")
	for _, a := range r.Approaches {
		fmt.Fprintf(&b, " %16s", a)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %5d %10d", row.Interval, len(row.Sets), row.Candidates)
		for _, a := range r.Approaches {
			if len(row.Sets) == 0 {
				fmt.Fprintf(&b, " %16s", "-")
				continue
			}
			fmt.Fprintf(&b, "    %.3f ±%.3f", row.NormMean[a], row.NormCI[a])
		}
		b.WriteString("\n")
	}
	if gain, at := r.MaxGain(core.Selective, core.DP); gain > 0 {
		fmt.Fprintf(&b, "max energy reduction of %s over %s: %.1f%% (at %v)\n",
			core.Selective, core.DP, 100*gain, at)
	}
	return b.String()
}

// CSV renders the per-interval means as comma-separated series (one row
// per interval; columns: util_mid, sets, then one normalized-energy
// column per approach), for plotting.
func (r *Report) CSV() string {
	var b strings.Builder
	cols := []string{"util_mid", "sets"}
	for _, a := range r.Approaches {
		cols = append(cols, strings.ReplaceAll(strings.ToLower(a.String()), "-", "_"))
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.2f,%d", row.Interval.Mid(), len(row.Sets))
		for _, a := range r.Approaches {
			fmt.Fprintf(&b, ",%.4f", row.NormMean[a])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// jsonReport mirrors Report with plain-JSON-friendly fields.
type jsonReport struct {
	Scenario   string    `json:"scenario"`
	Approaches []string  `json:"approaches"`
	Rows       []jsonRow `json:"rows"`
}

type jsonRow struct {
	UtilLo     float64            `json:"util_lo"`
	UtilHi     float64            `json:"util_hi"`
	Sets       int                `json:"sets"`
	Candidates int                `json:"candidates"`
	NormMean   map[string]float64 `json:"norm_mean"`
	NormCI95   map[string]float64 `json:"norm_ci95"`
	Violations map[string]int     `json:"violations"`
}

// JSON renders the per-interval aggregates as a machine-readable
// document (for external plotting/tooling).
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{Scenario: r.Scenario.String()}
	for _, a := range r.Approaches {
		out.Approaches = append(out.Approaches, a.String())
	}
	for _, row := range r.Rows {
		jr := jsonRow{
			UtilLo:     row.Interval.Lo,
			UtilHi:     row.Interval.Hi,
			Sets:       len(row.Sets),
			Candidates: row.Candidates,
			NormMean:   map[string]float64{},
			NormCI95:   map[string]float64{},
			Violations: map[string]int{},
		}
		for _, a := range r.Approaches {
			jr.NormMean[a.String()] = row.NormMean[a]
			jr.NormCI95[a.String()] = row.NormCI[a]
			jr.Violations[a.String()] = row.Violations[a]
		}
		out.Rows = append(out.Rows, jr)
	}
	return json.MarshalIndent(out, "", "  ")
}
