package experiment

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/timeu"
)

// BenchSchema versions the BENCH_*.json documents emitted by mkbench
// -json (and consumed by the CI bench-smoke job for trajectory tracking).
// Bump the suffix on any backwards-incompatible change to the layout or
// to a field's meaning; additive changes keep the version.
const BenchSchema = "mkss-bench/v1"

// BenchDoc is the machine-readable form of one figure's sweep: the
// per-interval series the paper plots plus the observability counters
// behind them and the wall-clock cost of producing them.
type BenchDoc struct {
	Schema   string `json:"schema"`
	Figure   string `json:"figure"`
	Scenario string `json:"scenario"`
	// The sweep parameters that determine the series (everything needed
	// to judge whether two documents are comparable).
	Seed            uint64   `json:"seed"`
	SetsPerInterval int      `json:"sets_per_interval"`
	MaxCandidates   int      `json:"max_candidates"`
	MinHorizonUS    int64    `json:"min_horizon_us"`
	HorizonCapUS    int64    `json:"horizon_cap_us"`
	Approaches      []string `json:"approaches"`
	// WallClockMS is the host-dependent cost of the sweep — the perf
	// trajectory datum; everything else in the document is deterministic
	// for a given seed and schema version.
	WallClockMS float64    `json:"wall_clock_ms"`
	Rows        []BenchRow `json:"rows"`
}

// BenchRow is one utilization interval of the series.
type BenchRow struct {
	UtilLo     float64 `json:"util_lo"`
	UtilHi     float64 `json:"util_hi"`
	Sets       int     `json:"sets"`
	Candidates int     `json:"candidates"`
	// HorizonTotalUS sums the interval's per-set simulated horizons; the
	// counters' processor-time partition must add up to it × NumProcs.
	HorizonTotalUS int64                       `json:"horizon_total_us"`
	NormMean       map[string]float64          `json:"norm_mean"`
	NormCI95       map[string]float64          `json:"norm_ci95"`
	Violations     map[string]int              `json:"violations"`
	Counters       map[string]metrics.Counters `json:"counters"`
}

// BenchDoc assembles the versioned document for a finished sweep.
// figure names the series ("6a", "6b", "6c"); wall is the measured sweep
// duration.
func (r *Report) BenchDoc(figure string, cfg Config, wall time.Duration) BenchDoc {
	doc := BenchDoc{
		Schema:          BenchSchema,
		Figure:          figure,
		Scenario:        r.Scenario.String(),
		Seed:            cfg.Seed,
		SetsPerInterval: cfg.SetsPerInterval,
		MaxCandidates:   cfg.MaxCandidates,
		MinHorizonUS:    int64(cfg.MinHorizon),
		HorizonCapUS:    int64(cfg.HorizonCap),
		WallClockMS:     float64(wall) / float64(time.Millisecond),
	}
	for _, a := range r.Approaches {
		doc.Approaches = append(doc.Approaches, a.String())
	}
	for _, row := range r.Rows {
		br := BenchRow{
			UtilLo:         row.Interval.Lo,
			UtilHi:         row.Interval.Hi,
			Sets:           len(row.Sets),
			Candidates:     row.Candidates,
			HorizonTotalUS: int64(row.HorizonTotal),
			NormMean:       map[string]float64{},
			NormCI95:       map[string]float64{},
			Violations:     map[string]int{},
			Counters:       map[string]metrics.Counters{},
		}
		for _, a := range r.Approaches {
			br.NormMean[a.String()] = row.NormMean[a]
			br.NormCI95[a.String()] = row.NormCI[a]
			br.Violations[a.String()] = row.Violations[a]
			br.Counters[a.String()] = row.Counters[a]
		}
		doc.Rows = append(doc.Rows, br)
	}
	return doc
}

// BenchJSON renders the versioned document; see BenchDoc.
func (r *Report) BenchJSON(figure string, cfg Config, wall time.Duration) ([]byte, error) {
	data, err := json.MarshalIndent(r.BenchDoc(figure, cfg, wall), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiment: bench json: %w", err)
	}
	return append(data, '\n'), nil
}

// CheckInvariants validates every row's aggregated counters against the
// structural identities of the simulator (see metrics.CheckInvariants).
// It returns human-readable violations; nil means the document is
// internally consistent.
func (d BenchDoc) CheckInvariants() []string {
	var out []string
	for _, row := range d.Rows {
		for _, a := range d.Approaches {
			c, ok := row.Counters[a]
			if !ok {
				out = append(out, fmt.Sprintf("interval [%g,%g): no counters for %s", row.UtilLo, row.UtilHi, a))
				continue
			}
			for _, p := range c.CheckInvariants(timeu.Time(row.HorizonTotalUS)) {
				out = append(out, fmt.Sprintf("interval [%g,%g) %s: %s", row.UtilLo, row.UtilHi, a, p))
			}
		}
	}
	return out
}
