package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/task"
	"repro/internal/timeu"
	"repro/internal/workload"
)

func smallConfig(sc fault.Scenario) Config {
	cfg := DefaultConfig(sc)
	cfg.SetsPerInterval = 2
	cfg.MaxCandidates = 400
	cfg.Intervals = workload.Intervals(0.3, 0.5, 0.1)
	cfg.Workers = 2
	return cfg
}

func TestRunProducesRows(t *testing.T) {
	var progress bytes.Buffer
	cfg := smallConfig(fault.NoFault)
	cfg.Progress = &progress
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row.Sets) != 2 {
			t.Errorf("interval %v: %d sets", row.Interval, len(row.Sets))
		}
		for _, sr := range row.Sets {
			if sr.Active[core.ST] <= 0 {
				t.Error("ST active energy must be positive")
			}
			if math.Abs(sr.Norm[core.ST]-1) > 1e-12 {
				t.Errorf("ST norm = %v", sr.Norm[core.ST])
			}
		}
	}
	if !strings.Contains(progress.String(), "interval") {
		t.Error("progress output missing")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(smallConfig(fault.PermanentOnly))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(fault.PermanentOnly))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for _, ap := range a.Approaches {
			if a.Rows[i].NormMean[ap] != b.Rows[i].NormMean[ap] {
				t.Fatalf("interval %d approach %v: %v != %v",
					i, ap, a.Rows[i].NormMean[ap], b.Rows[i].NormMean[ap])
			}
		}
	}
}

// TestWorkersDefaultNumCPU pins the Workers=0 default to the machine's
// core count (the hardcoded 4 it replaced under-used larger hosts).
func TestWorkersDefaultNumCPU(t *testing.T) {
	cfg := DefaultConfig(fault.NoFault)
	if cfg.Workers != 0 {
		t.Fatalf("DefaultConfig.Workers = %d, want 0 (auto)", cfg.Workers)
	}
	// Run normalizes in place on its copy; verify via the observable
	// behavior instead: a zero-Workers sweep must succeed and match an
	// explicit runtime.NumCPU() sweep exactly.
	auto := smallConfig(fault.NoFault)
	auto.Workers = 0
	explicit := smallConfig(fault.NoFault)
	explicit.Workers = runtime.NumCPU()
	a, err := Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if aj, bj := mustJSON(t, a), mustJSON(t, b); aj != bj {
		t.Errorf("Workers=0 sweep differs from Workers=NumCPU sweep:\n%s\n---\n%s", aj, bj)
	}
}

// TestWorkersInvariance is the satellite gate for the Workers fix: the
// sweep result (series and counters) must be identical for one worker
// and many, given the same seed — parallelism must never leak into the
// numbers.
func TestWorkersInvariance(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		cfg := smallConfig(fault.PermanentAndTransient)
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(8)
	if a, b := mustJSON(t, serial), mustJSON(t, parallel); a != b {
		t.Fatalf("aggregates differ between Workers=1 and Workers=8:\n%s\n---\n%s", a, b)
	}
	for i := range serial.Rows {
		for _, ap := range serial.Approaches {
			if serial.Rows[i].Counters[ap] != parallel.Rows[i].Counters[ap] {
				t.Errorf("interval %d approach %v: counters differ:\n%+v\n%+v",
					i, ap, serial.Rows[i].Counters[ap], parallel.Rows[i].Counters[ap])
			}
		}
	}
}

func mustJSON(t *testing.T, r *Report) string {
	t.Helper()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestEnsureST(t *testing.T) {
	got := ensureST([]core.Approach{core.DP, core.Selective})
	if got[0] != core.ST {
		t.Errorf("ST not prepended: %v", got)
	}
	same := []core.Approach{core.Selective, core.ST}
	if len(ensureST(same)) != 2 {
		t.Error("ST duplicated")
	}
}

func TestSimHorizon(t *testing.T) {
	// Hyperperiod 20ms, min 500ms -> 25 hyperperiods = 500ms.
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	h := simHorizon(s, 500*timeu.Millisecond, 2*timeu.Second)
	if h != 500*timeu.Millisecond {
		t.Errorf("horizon = %v, want 500ms", h)
	}
	if h%timeu.FromMillis(20) != 0 {
		t.Errorf("horizon %v not a multiple of the hyperperiod", h)
	}
	// Cap binds.
	h = simHorizon(s, 3*timeu.Second, 2*timeu.Second)
	if h != 2*timeu.Second {
		t.Errorf("capped horizon = %v", h)
	}
	// Saturated hyperperiod -> cap.
	big := task.NewSet(task.New(0, 7, 7, 1, 2, 11), task.New(1, 13, 13, 1, 3, 17), task.New(2, 23, 23, 1, 4, 19))
	h = simHorizon(big, 500*timeu.Millisecond, 2*timeu.Second)
	if h != 2*timeu.Second {
		t.Errorf("saturated horizon = %v, want cap", h)
	}
}

func TestMaxGain(t *testing.T) {
	rep := &Report{
		Approaches: []core.Approach{core.ST, core.DP, core.Selective},
		Rows: []Row{
			{
				Interval: workload.Interval{Lo: 0.2, Hi: 0.3},
				Sets:     make([]SetResult, 1),
				NormMean: map[core.Approach]float64{core.ST: 1, core.DP: 0.8, core.Selective: 0.6},
			},
			{
				Interval: workload.Interval{Lo: 0.3, Hi: 0.4},
				Sets:     make([]SetResult, 1),
				NormMean: map[core.Approach]float64{core.ST: 1, core.DP: 0.5, core.Selective: 0.45},
			},
		},
	}
	gain, at := rep.MaxGain(core.Selective, core.DP)
	if math.Abs(gain-0.25) > 1e-12 {
		t.Errorf("gain = %v, want 0.25", gain)
	}
	if at.Lo != 0.2 {
		t.Errorf("at = %v", at)
	}
}

func TestTableAndCSVFormat(t *testing.T) {
	rep, err := Run(smallConfig(fault.NoFault))
	if err != nil {
		t.Fatal(err)
	}
	table := rep.Table()
	for _, want := range []string{"MKSS-ST", "MKSS-DP", "MKSS-selective", "[0.30,0.40)", "no-fault"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "util_mid,sets,mkss_st,mkss_dp,mkss_selective" {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestFaultScenarioIncreasesNothingWeird(t *testing.T) {
	// Under a permanent fault the normalized energies must stay in (0,
	// 1.05] — the survivor can't consume more than both processors did.
	rep, err := Run(smallConfig(fault.PermanentOnly))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		for _, sr := range row.Sets {
			for a, norm := range sr.Norm {
				if norm <= 0 || norm > 1.6 {
					t.Errorf("approach %v: suspicious normalized energy %v", a, norm)
				}
			}
		}
	}
}

func TestRunSetSharesPermanentFault(t *testing.T) {
	// The same fault seed must give every approach the same permanent
	// fault instant — verified indirectly: RunSet is deterministic and
	// ST/DP/selective all see a fault (their energies differ from the
	// fault-free run).
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 4, 1, 2))
	cfg := smallConfig(fault.PermanentOnly)
	apps := []core.Approach{core.ST, core.DP, core.Selective}
	a, err := RunSet(s, apps, cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSet(s, apps, cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range apps {
		if a.Active[ap] != b.Active[ap] {
			t.Errorf("%v: %v != %v", ap, a.Active[ap], b.Active[ap])
		}
	}
}

func TestReportJSON(t *testing.T) {
	rep, err := Run(smallConfig(fault.NoFault))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["scenario"] != "no-fault" {
		t.Errorf("scenario = %v", decoded["scenario"])
	}
	rows, ok := decoded["rows"].([]any)
	if !ok || len(rows) != 2 {
		t.Fatalf("rows = %v", decoded["rows"])
	}
	row0 := rows[0].(map[string]any)
	nm := row0["norm_mean"].(map[string]any)
	if v, ok := nm["MKSS-ST"].(float64); !ok || math.Abs(v-1) > 1e-9 {
		t.Errorf("ST norm mean in JSON = %v", nm["MKSS-ST"])
	}
}
