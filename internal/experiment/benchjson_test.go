package experiment

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

// benchConfig is a reduced sweep (the CI bench-smoke shape) that still
// exercises every approach and, for fault scenarios, the takeover path.
func benchConfig(sc fault.Scenario) Config {
	cfg := DefaultConfig(sc)
	cfg.SetsPerInterval = 3
	cfg.MaxCandidates = 800
	cfg.Intervals = workload.Intervals(0.2, 0.5, 0.1)
	cfg.Approaches = []core.Approach{core.ST, core.DP, core.Greedy, core.Selective}
	return cfg
}

// TestBenchJSONCountersInvariants is the acceptance gate for the
// observability layer: the versioned BENCH document must round-trip
// through JSON and its aggregated counters must satisfy the simulator's
// structural identities (e.g. backup cancellations ≤ mandatory releases,
// busy+idle+sleep+dead = horizon × processors) in every scenario.
func TestBenchJSONCountersInvariants(t *testing.T) {
	for _, sc := range []fault.Scenario{fault.NoFault, fault.PermanentOnly, fault.PermanentAndTransient} {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			cfg := benchConfig(sc)
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			data, err := rep.BenchJSON("6x", cfg, 1500*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}

			var doc BenchDoc
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatalf("BENCH document is not valid JSON: %v", err)
			}
			if doc.Schema != BenchSchema {
				t.Errorf("schema = %q, want %q", doc.Schema, BenchSchema)
			}
			if doc.Figure != "6x" || doc.Scenario != sc.String() {
				t.Errorf("figure/scenario = %q/%q", doc.Figure, doc.Scenario)
			}
			if doc.WallClockMS != 1500 {
				t.Errorf("wall_clock_ms = %v, want 1500", doc.WallClockMS)
			}
			if len(doc.Rows) != len(cfg.Intervals) {
				t.Fatalf("rows = %d, want %d", len(doc.Rows), len(cfg.Intervals))
			}

			// The invariants must hold on the parsed document (i.e. after a
			// JSON round-trip, proving no counter is lost in serialization).
			if problems := doc.CheckInvariants(); len(problems) > 0 {
				t.Errorf("counter invariants violated:\n%s", problems)
			}

			// Spot-check the fault accounting against the scenario.
			perm := 0
			for _, row := range doc.Rows {
				for _, a := range doc.Approaches {
					perm += row.Counters[a].PermanentFaults
				}
			}
			if sc == fault.NoFault && perm != 0 {
				t.Errorf("no-fault sweep recorded %d permanent faults", perm)
			}
			if sc != fault.NoFault && perm == 0 {
				t.Errorf("fault sweep recorded no permanent faults")
			}
		})
	}
}

// TestBenchJSONNormalizedEnergyConsistency cross-checks the series
// against the counters: the reference approach normalizes to 1, and the
// busy time in the counters is what the energy figure is made of.
func TestBenchJSONNormalizedEnergyConsistency(t *testing.T) {
	cfg := benchConfig(fault.NoFault)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc := rep.BenchDoc("6a", cfg, 0)
	for _, row := range doc.Rows {
		if row.Sets == 0 {
			continue
		}
		if got := row.NormMean[core.ST.String()]; got != 1 {
			t.Errorf("interval [%g,%g): ST norm mean = %v, want 1", row.UtilLo, row.UtilHi, got)
		}
		// The selective scheme saves energy by executing less: its busy
		// time must not exceed the reference's.
		st := row.Counters[core.ST.String()]
		sel := row.Counters[core.Selective.String()]
		stBusy := st.Proc[0].Busy + st.Proc[1].Busy
		selBusy := sel.Proc[0].Busy + sel.Proc[1].Busy
		if selBusy > stBusy {
			t.Errorf("interval [%g,%g): selective busy %v > ST busy %v", row.UtilLo, row.UtilHi, selBusy, stBusy)
		}
	}
}
