package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/timeu"
)

func TestScenarioString(t *testing.T) {
	if NoFault.String() != "no-fault" ||
		PermanentOnly.String() != "permanent" ||
		PermanentAndTransient.String() != "permanent+transient" {
		t.Error("scenario strings wrong")
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario must render")
	}
}

func TestNoFaultPlan(t *testing.T) {
	p := NewPlan(NoFault, timeu.Second, stats.NewRand(1))
	if p.Permanent != nil || p.TransientRate != 0 {
		t.Error("no-fault plan must be inert")
	}
	if p.TransientDuring(timeu.Second) {
		t.Error("inert plan must never fault")
	}
}

func TestPermanentPlanInHorizon(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := NewPlan(PermanentOnly, timeu.Second, stats.NewRand(seed))
		if p.Permanent == nil {
			t.Fatal("permanent plan missing fault")
		}
		if p.Permanent.At < 0 || p.Permanent.At >= timeu.Second {
			t.Errorf("fault time %v outside horizon", p.Permanent.At)
		}
		if p.Permanent.Proc != 0 && p.Permanent.Proc != 1 {
			t.Errorf("bad proc %d", p.Permanent.Proc)
		}
		if p.TransientRate != 0 {
			t.Error("permanent-only plan must not set transient rate")
		}
	}
}

func TestPermanentAndTransientPlan(t *testing.T) {
	p := NewPlan(PermanentAndTransient, timeu.Second, stats.NewRand(7))
	if p.TransientRate != DefaultTransientRate {
		t.Errorf("rate = %v, want %v", p.TransientRate, DefaultTransientRate)
	}
}

func TestPermanentProcCoversBoth(t *testing.T) {
	procs := map[int]bool{}
	for seed := uint64(0); seed < 100; seed++ {
		p := NewPlan(PermanentOnly, timeu.Second, stats.NewRand(seed))
		procs[p.Permanent.Proc] = true
	}
	if !procs[0] || !procs[1] {
		t.Error("permanent faults must hit both processors across seeds")
	}
}

func TestTransientDuringRate(t *testing.T) {
	// With a large rate the empirical fault fraction must track
	// 1 - exp(-lambda * d).
	p := NoFaults().WithTransientRate(0.01)
	p.rng = stats.NewRand(99)
	d := 50 * timeu.Millisecond
	want := 1 - math.Exp(-0.01*50)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.TransientDuring(d) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical fault rate %v, want ~%v", got, want)
	}
}

func TestTransientDuringZeroDuration(t *testing.T) {
	p := NoFaults().WithTransientRate(1)
	if p.TransientDuring(0) {
		t.Error("zero-duration execution cannot fault")
	}
}

func TestPermanentAt(t *testing.T) {
	p := &Plan{Permanent: &Permanent{At: 100, Proc: 1}}
	if !p.PermanentAt(1, 50, 100) {
		t.Error("boundary (from,to] must include At == to")
	}
	if p.PermanentAt(1, 100, 150) {
		t.Error("(from,to] must exclude At == from")
	}
	if p.PermanentAt(0, 50, 150) {
		t.Error("wrong processor matched")
	}
	if NoFaults().PermanentAt(0, 0, timeu.Second) {
		t.Error("no permanent fault must never match")
	}
}

func TestPlanString(t *testing.T) {
	p := NewPlan(PermanentAndTransient, timeu.Second, stats.NewRand(3))
	s := p.String()
	if !strings.Contains(s, "permanent@") || !strings.Contains(s, "transient") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(NoFaults().String(), "no-permanent") {
		t.Error("inert plan string wrong")
	}
}
