// Package fault models the paper's fault hypotheses (§II-B, §V):
//
//   - Permanent faults: hardware failure of one processor. The
//     standby-sparing architecture tolerates at most one; the evaluation's
//     second and third scenarios inject a single permanent fault at a
//     uniformly random instant on a uniformly random processor.
//   - Transient faults: soft errors striking during job execution,
//     detected by a sanity/consistency check at the end of the job (whose
//     overhead is folded into the WCET). The evaluation assumes Poisson
//     arrivals with average rate 10⁻⁶ per millisecond.
//
// A Plan is drawn once per simulation run from its own RNG stream so the
// schedule and the faults are independently reproducible.
package fault

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
	"repro/internal/timeu"
)

// DefaultTransientRate is the paper's average transient fault rate of
// 10⁻⁶, interpreted per millisecond of execution.
const DefaultTransientRate = 1e-6

// Scenario names the three evaluation settings of Figure 6.
type Scenario int

const (
	// NoFault (Fig. 6a): fault-free operation.
	NoFault Scenario = iota
	// PermanentOnly (Fig. 6b): at most one permanent fault.
	PermanentOnly
	// PermanentAndTransient (Fig. 6c): one permanent fault plus Poisson
	// transient faults.
	PermanentAndTransient
)

func (s Scenario) String() string {
	switch s {
	case NoFault:
		return "no-fault"
	case PermanentOnly:
		return "permanent"
	case PermanentAndTransient:
		return "permanent+transient"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ParseScenario maps a scenario name, case-insensitively, to its value:
// "none", "no-fault" or "" → NoFault; "permanent" → PermanentOnly;
// "permanent+transient" or "both" → PermanentAndTransient. It is the one
// table every command-line flag parser shares.
func ParseScenario(s string) (Scenario, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none", "no-fault", "nofault":
		return NoFault, nil
	case "permanent":
		return PermanentOnly, nil
	case "permanent+transient", "both":
		return PermanentAndTransient, nil
	default:
		return 0, fmt.Errorf("fault: unknown scenario %q (want none, permanent, or permanent+transient)", s)
	}
}

// Permanent describes one injected permanent fault.
type Permanent struct {
	// At is the failure instant.
	At timeu.Time
	// Proc is the failing processor (0 = primary, 1 = spare).
	Proc int
}

// Plan is the drawn fault realization for one simulation run.
type Plan struct {
	// Permanent is nil when no permanent fault occurs in this run.
	Permanent *Permanent
	// TransientRate is the Poisson rate per millisecond of execution;
	// zero disables transient faults.
	TransientRate float64

	rng *stats.Rand
}

// NewPlan draws a fault plan for the given scenario over [0, horizon).
// rng must be a dedicated stream; the plan keeps it for per-job transient
// draws during simulation.
func NewPlan(sc Scenario, horizon timeu.Time, rng *stats.Rand) *Plan {
	p := &Plan{rng: rng}
	switch sc {
	case NoFault:
	case PermanentOnly, PermanentAndTransient:
		p.Permanent = &Permanent{
			At:   timeu.Time(rng.Int64n(int64(horizon))),
			Proc: rng.Intn(2),
		}
		if sc == PermanentAndTransient {
			p.TransientRate = DefaultTransientRate
		}
	}
	return p
}

// NoFaults returns an inert plan (useful for tests and the Fig. 6a runs).
func NoFaults() *Plan { return &Plan{rng: stats.NewRand(0)} }

// WithTransientRate overrides the transient rate (for sensitivity
// ablations) and returns the plan for chaining.
func (p *Plan) WithTransientRate(rate float64) *Plan {
	p.TransientRate = rate
	return p
}

// TransientDuring reports whether a transient fault strikes an execution
// of the given *cumulative* duration. With Poisson arrivals at rate λ per
// ms, the probability of at least one arrival in d ms is 1 − e^(−λd);
// because detection happens only at the end of the job (§II-B), sampling
// a single Bernoulli at completion is distributionally equivalent to
// sampling arrival instants.
func (p *Plan) TransientDuring(d timeu.Time) bool {
	if p.TransientRate <= 0 || d <= 0 {
		return false
	}
	prob := 1 - math.Exp(-p.TransientRate*d.Millis())
	return p.rng.Float64() < prob
}

// PermanentAt reports whether the permanent fault strikes processor proc
// at a time in (from, to].
func (p *Plan) PermanentAt(proc int, from, to timeu.Time) bool {
	return p.Permanent != nil && p.Permanent.Proc == proc &&
		p.Permanent.At > from && p.Permanent.At <= to
}

func (p *Plan) String() string {
	s := "faults{"
	if p.Permanent != nil {
		s += fmt.Sprintf("permanent@%v proc%d", p.Permanent.At, p.Permanent.Proc)
	} else {
		s += "no-permanent"
	}
	if p.TransientRate > 0 {
		s += fmt.Sprintf(", transient λ=%g/ms", p.TransientRate)
	}
	return s + "}"
}
