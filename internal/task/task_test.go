package task

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/timeu"
)

func validTask() Task { return New(0, 10, 10, 3, 2, 3) }

func TestValidateOK(t *testing.T) {
	if err := validTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Task)
	}{
		{"zero period", func(x *Task) { x.Period = 0 }},
		{"negative period", func(x *Task) { x.Period = -1 }},
		{"zero wcet", func(x *Task) { x.WCET = 0 }},
		{"zero deadline", func(x *Task) { x.Deadline = 0 }},
		{"deadline > period", func(x *Task) { x.Deadline = x.Period + 1 }},
		{"wcet > deadline", func(x *Task) { x.WCET = x.Deadline + 1 }},
		{"k zero", func(x *Task) { x.K = 0 }},
		{"m zero", func(x *Task) { x.M = 0 }},
		{"m > k", func(x *Task) { x.M = x.K + 1 }},
		{"negative offset", func(x *Task) { x.Offset = -5 }},
	}
	for _, c := range cases {
		x := validTask()
		c.mut(&x)
		if err := x.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestUtilizations(t *testing.T) {
	x := New(0, 10, 10, 3, 2, 4)
	if got := x.Utilization(); got != 0.3 {
		t.Errorf("Utilization = %v, want 0.3", got)
	}
	if got := x.MKUtilization(); got != 0.15 {
		t.Errorf("MKUtilization = %v, want 0.15", got)
	}
}

func TestReleaseDeadline(t *testing.T) {
	x := New(0, 5, 4, 3, 2, 4)
	if x.Release(1) != 0 || x.Release(3) != timeu.FromMillis(10) {
		t.Error("Release wrong")
	}
	if x.AbsDeadline(1) != timeu.FromMillis(4) || x.AbsDeadline(2) != timeu.FromMillis(9) {
		t.Error("AbsDeadline wrong")
	}
	x.Offset = timeu.FromMillis(2)
	if x.Release(1) != timeu.FromMillis(2) {
		t.Error("offset Release wrong")
	}
}

func TestJobIndexAt(t *testing.T) {
	x := New(0, 5, 5, 1, 1, 2)
	cases := []struct {
		at   float64
		want int
	}{{0, 1}, {4.9, 1}, {5, 2}, {12, 3}}
	for _, c := range cases {
		if got := x.JobIndexAt(timeu.FromMillis(c.at)); got != c.want {
			t.Errorf("JobIndexAt(%v) = %d, want %d", c.at, got, c.want)
		}
	}
	x.Offset = timeu.FromMillis(3)
	if got := x.JobIndexAt(timeu.FromMillis(1)); got != 0 {
		t.Errorf("before offset: got %d, want 0", got)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(New(7, 5, 4, 3, 2, 4), New(9, 10, 10, 3, 1, 2))
	if s.N() != 2 {
		t.Fatal("N wrong")
	}
	// NewSet must reassign IDs by position.
	if s.Tasks[0].ID != 0 || s.Tasks[1].ID != 1 {
		t.Error("IDs not reassigned")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	wantU := 3.0/5 + 3.0/10
	if got := s.Utilization(); math.Abs(got-wantU) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, wantU)
	}
	wantMK := 2.0 * 3 / (4 * 5) // 0.3
	wantMK += 1.0 * 3 / (2 * 10)
	if got := s.MKUtilization(); math.Abs(got-wantMK) > 1e-12 {
		t.Errorf("MKUtilization = %v, want %v", got, wantMK)
	}
}

func TestSetValidateEmpty(t *testing.T) {
	s := &Set{}
	if err := s.Validate(); err == nil {
		t.Error("empty set must be invalid")
	}
}

func TestHyperperiods(t *testing.T) {
	const cap = timeu.Time(1 << 50)
	s := NewSet(New(0, 5, 4, 3, 2, 4), New(1, 10, 10, 3, 1, 2))
	if got := s.Hyperperiod(cap); got != timeu.FromMillis(10) {
		t.Errorf("Hyperperiod = %v", got)
	}
	// k1*P1 = 20ms, k2*P2 = 20ms -> LCM 20ms.
	if got := s.MKHyperperiod(cap); got != timeu.FromMillis(20) {
		t.Errorf("MKHyperperiod = %v", got)
	}
	// Level 0 only: 20ms.
	if got := s.MKHyperperiodLevel(0, cap); got != timeu.FromMillis(20) {
		t.Errorf("MKHyperperiodLevel(0) = %v", got)
	}
}

func TestMKHyperperiodFig5(t *testing.T) {
	// Paper Fig. 5: tau1=(10,10,3,2,3), tau2=(15,15,8,1,2):
	// LCM(3*10, 2*15) = 30ms.
	s := NewSet(New(0, 10, 10, 3, 2, 3), New(1, 15, 15, 8, 1, 2))
	if got := s.MKHyperperiod(1 << 50); got != timeu.FromMillis(30) {
		t.Errorf("MKHyperperiod = %v, want 30ms", got)
	}
}

func TestStringFormats(t *testing.T) {
	x := New(0, 5, 4, 3, 2, 4)
	if got := x.String(); got != "tau1=(5ms,4ms,3ms,2,4)" {
		t.Errorf("Task.String() = %q", got)
	}
	x.Name = "video"
	if !strings.HasPrefix(x.String(), "video=") {
		t.Errorf("named Task.String() = %q", x.String())
	}
	s := NewSet(New(0, 5, 4, 3, 2, 4), New(1, 10, 10, 3, 1, 2))
	if lines := strings.Split(s.String(), "\n"); len(lines) != 2 {
		t.Errorf("Set.String() lines = %d", len(lines))
	}
}

func TestClone(t *testing.T) {
	s := NewSet(New(0, 5, 4, 3, 2, 4))
	c := s.Clone()
	c.Tasks[0].WCET = 1
	if s.Tasks[0].WCET == 1 {
		t.Error("Clone is shallow")
	}
}

func TestJobLifecycle(t *testing.T) {
	tk := New(2, 5, 4, 3, 2, 4)
	j := NewJob(tk, 3, Optional)
	if j.Release != timeu.FromMillis(10) || j.Deadline != timeu.FromMillis(14) {
		t.Errorf("job times wrong: %v", j)
	}
	if j.Name() != "J3,3" {
		t.Errorf("Name = %q", j.Name())
	}
	if j.Completed() {
		t.Error("fresh job reports completed")
	}
	j.Remaining = 0
	j.Done = true
	if !j.Completed() {
		t.Error("done job not completed")
	}
	j.Faulty = true
	if j.Completed() {
		t.Error("faulty job reports completed")
	}
}

func TestBackupPostponement(t *testing.T) {
	tk := New(0, 10, 10, 3, 2, 3)
	b := NewBackup(tk, 2, timeu.FromMillis(7))
	if b.Copy != Backup {
		t.Error("copy kind wrong")
	}
	if b.BaseRelease != timeu.FromMillis(10) {
		t.Errorf("BaseRelease = %v", b.BaseRelease)
	}
	if b.Release != timeu.FromMillis(17) {
		t.Errorf("Release = %v", b.Release)
	}
	if b.Deadline != timeu.FromMillis(20) {
		t.Errorf("Deadline = %v", b.Deadline)
	}
	if b.Name() != "J'1,2" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestExpired(t *testing.T) {
	tk := New(0, 10, 10, 3, 2, 3)
	j := NewJob(tk, 1, Mandatory)
	if j.Expired(timeu.FromMillis(7)) {
		t.Error("job with exactly enough time must not be expired")
	}
	if !j.Expired(timeu.FromMillis(7) + 1) {
		t.Error("job without enough time must be expired")
	}
}

func TestClassCopyStrings(t *testing.T) {
	if Mandatory.String() != "mandatory" || Optional.String() != "optional" {
		t.Error("Class strings")
	}
	if Main.String() != "main" || Backup.String() != "backup" {
		t.Error("Copy strings")
	}
	if Class(9).String() == "" {
		t.Error("unknown class must still render")
	}
}

// Property: for any valid task, releases are strictly increasing and
// deadlines stay within the next release (constrained deadlines).
func TestReleaseMonotone(t *testing.T) {
	f := func(p, c uint8, m, k uint8, j uint8) bool {
		period := timeu.Time(p%50+1) * timeu.Millisecond
		wcet := timeu.Time(c%10+1) * timeu.Millisecond / 4
		if wcet == 0 {
			wcet = 1
		}
		if wcet > period {
			wcet = period
		}
		kk := int(k%19) + 2
		mm := int(m)%(kk-1) + 1
		x := Task{ID: 0, Period: period, Deadline: period, WCET: wcet, M: mm, K: kk}
		if err := x.Validate(); err != nil {
			return false
		}
		idx := int(j%20) + 1
		return x.Release(idx+1)-x.Release(idx) == period &&
			x.AbsDeadline(idx) <= x.Release(idx+1) &&
			x.JobIndexAt(x.Release(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
