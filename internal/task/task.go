// Package task defines the periodic task model of the paper (§II-A): a
// system of n independent periodic tasks T = {τ1..τn} scheduled under
// fixed priorities, each characterized by (Pi, Di, Ci, mi, ki) — period,
// relative deadline (≤ period), worst-case execution time, and the
// (m,k)-firm constraint requiring that at least mi of any ki consecutive
// jobs complete successfully.
//
// Tasks are index-priority ordered: a task with a smaller index has higher
// priority (τj has lower priority than τi when j > i), matching the
// paper's convention.
package task

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/timeu"
)

// Task is one periodic task. Fields mirror the 5-tuple of §II-A.
type Task struct {
	// ID is the task's index in its set, starting at 0. Priority is the
	// inverse of ID: task 0 has the highest priority.
	ID int
	// Name is an optional human-readable label ("tau1"); generated sets
	// leave it empty and String() synthesizes one.
	Name string
	// Period Pi between consecutive releases.
	Period timeu.Time
	// Deadline Di relative to release, with Di ≤ Pi (constrained deadline).
	Deadline timeu.Time
	// WCET Ci, the worst-case execution time of every job.
	WCET timeu.Time
	// M and K encode the (m,k)-constraint. The paper requires 0 < M < K;
	// we additionally allow M == K to model hard real-time tasks that
	// tolerate no misses (the workload generator of §V always keeps
	// M < K).
	M, K int
	// Offset is the release time of the first job. The paper's model is
	// synchronous (offset 0); the field exists so tests can explore
	// asynchronous releases.
	Offset timeu.Time
}

// New constructs a task from millisecond-valued parameters. It is the
// convenience constructor used by examples and tests; generated workloads
// build Task values directly in ticks.
func New(id int, periodMS, deadlineMS, wcetMS float64, m, k int) Task {
	return Task{
		ID:       id,
		Period:   timeu.FromMillis(periodMS),
		Deadline: timeu.FromMillis(deadlineMS),
		WCET:     timeu.FromMillis(wcetMS),
		M:        m,
		K:        k,
	}
}

// Validate reports whether the task parameters are internally consistent.
func (t Task) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("task %s: period %v must be positive", t.Label(), t.Period)
	case t.WCET <= 0:
		return fmt.Errorf("task %s: WCET %v must be positive", t.Label(), t.WCET)
	case t.Deadline <= 0:
		return fmt.Errorf("task %s: deadline %v must be positive", t.Label(), t.Deadline)
	case t.Deadline > t.Period:
		return fmt.Errorf("task %s: deadline %v exceeds period %v (constrained-deadline model)", t.Label(), t.Deadline, t.Period)
	case t.WCET > t.Deadline:
		return fmt.Errorf("task %s: WCET %v exceeds deadline %v", t.Label(), t.WCET, t.Deadline)
	case t.K < 1:
		return fmt.Errorf("task %s: k = %d must be at least 1", t.Label(), t.K)
	case t.M < 1 || t.M > t.K:
		return fmt.Errorf("task %s: require 0 < m <= k, got (m,k) = (%d,%d)", t.Label(), t.M, t.K)
	case t.Offset < 0:
		return fmt.Errorf("task %s: negative offset %v", t.Label(), t.Offset)
	}
	return nil
}

// Label returns the task's display name.
func (t Task) Label() string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("tau%d", t.ID+1)
}

// String renders the 5-tuple the way the paper writes it, e.g.
// "tau1=(5ms,4ms,3ms,2,4)".
func (t Task) String() string {
	return fmt.Sprintf("%s=(%v,%v,%v,%d,%d)", t.Label(), t.Period, t.Deadline, t.WCET, t.M, t.K)
}

// Utilization is the classical utilization Ci/Pi.
func (t Task) Utilization() float64 {
	return float64(t.WCET) / float64(t.Period)
}

// MKUtilization is the (m,k)-utilization mi·Ci/(ki·Pi), the load of the
// task if exactly the mandatory fraction of its jobs executes. Figure 6's
// x-axis sweeps the sum of this quantity over the task set.
func (t Task) MKUtilization() float64 {
	return float64(t.M) * float64(t.WCET) / (float64(t.K) * float64(t.Period))
}

// IsHard reports whether the task tolerates no misses at all (m == k).
func (t Task) IsHard() bool { return t.M == t.K }

// Release returns the release time of the j-th job (j counting from 1, as
// in the paper's J_ij notation).
func (t Task) Release(j int) timeu.Time {
	return t.Offset + timeu.Time(j-1)*t.Period
}

// AbsDeadline returns the absolute deadline d_ij of the j-th job.
func (t Task) AbsDeadline(j int) timeu.Time {
	return t.Release(j) + t.Deadline
}

// JobIndexAt returns the index (1-based) of the job whose period window
// contains time x, i.e. the latest j with Release(j) <= x.
func (t Task) JobIndexAt(x timeu.Time) int {
	if x < t.Offset {
		return 0
	}
	return int((x-t.Offset)/t.Period) + 1
}

// Set is an ordered task set; index order is priority order.
type Set struct {
	Tasks []Task
}

// NewSet builds a set from tasks, assigning IDs by position. It copies the
// slice so callers may reuse theirs.
func NewSet(tasks ...Task) *Set {
	ts := make([]Task, len(tasks))
	copy(ts, tasks)
	for i := range ts {
		ts[i].ID = i
	}
	return &Set{Tasks: ts}
}

// Validate checks every task and the set-level invariants.
func (s *Set) Validate() error {
	if len(s.Tasks) == 0 {
		return errors.New("task set: empty")
	}
	for i, t := range s.Tasks {
		if t.ID != i {
			return fmt.Errorf("task set: task at position %d has ID %d", i, t.ID)
		}
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// N returns the number of tasks.
func (s *Set) N() int { return len(s.Tasks) }

// Utilization is the total classical utilization Σ Ci/Pi.
func (s *Set) Utilization() float64 {
	var u float64
	for _, t := range s.Tasks {
		u += t.Utilization()
	}
	return u
}

// MKUtilization is the total (m,k)-utilization Σ mi·Ci/(ki·Pi) — the
// paper's x-axis quantity.
func (s *Set) MKUtilization() float64 {
	var u float64
	for _, t := range s.Tasks {
		u += t.MKUtilization()
	}
	return u
}

// Hyperperiod returns LCM of the periods, saturating at cap.
func (s *Set) Hyperperiod(cap timeu.Time) timeu.Time {
	ps := make([]timeu.Time, len(s.Tasks))
	for i, t := range s.Tasks {
		ps[i] = t.Period
	}
	return timeu.LCMAll(ps, cap)
}

// MKHyperperiod returns LCM of ki·Pi over the whole set — the horizon over
// which the static R-pattern repeats — saturating at cap. Equation (5)
// uses the level-i prefix version, see MKHyperperiodLevel.
func (s *Set) MKHyperperiod(cap timeu.Time) timeu.Time {
	return s.MKHyperperiodLevel(len(s.Tasks)-1, cap)
}

// MKHyperperiodLevel returns LCM_{q<=level}(k_q · P_q), the level-i
// (m,k)-hyperperiod of Eq. (5), saturating at cap. level is a task index.
func (s *Set) MKHyperperiodLevel(level int, cap timeu.Time) timeu.Time {
	vs := make([]timeu.Time, 0, level+1)
	for q := 0; q <= level && q < len(s.Tasks); q++ {
		t := s.Tasks[q]
		kp := timeu.Time(t.K) * t.Period
		if kp > cap || kp/t.Period != timeu.Time(t.K) {
			return cap
		}
		vs = append(vs, kp)
	}
	return timeu.LCMAll(vs, cap)
}

// String renders the set one task per line.
func (s *Set) String() string {
	var b strings.Builder
	for i, t := range s.Tasks {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	ts := make([]Task, len(s.Tasks))
	copy(ts, s.Tasks)
	return &Set{Tasks: ts}
}
