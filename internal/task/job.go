package task

import (
	"fmt"

	"repro/internal/timeu"
)

// Class is the (m,k) classification of a job at release time.
type Class int

const (
	// Mandatory jobs must complete; they get a backup copy on the spare
	// processor ("1" in the R-pattern of Eq. (1)).
	Mandatory Class = iota
	// Optional jobs may execute when beneficial and never have backups
	// ("0" in the R-pattern).
	Optional
)

func (c Class) String() string {
	switch c {
	case Mandatory:
		return "mandatory"
	case Optional:
		return "optional"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Copy distinguishes the two duplicates of a mandatory job in a
// standby-sparing system (§II-A): the main copy on the primary processor
// and the backup copy on the spare. Optional jobs only ever have a main
// copy.
type Copy int

const (
	Main Copy = iota
	Backup
)

func (c Copy) String() string {
	if c == Backup {
		return "backup"
	}
	return "main"
}

// Job is one released instance J_ij of a task, or one copy of it. The
// scheduler owns Jobs; they are mutable records of execution progress.
type Job struct {
	// TaskID and Index identify J_ij: the Index-th job (1-based) of task
	// TaskID.
	TaskID int
	Index  int
	// Copy says whether this record is the main or the backup copy.
	Copy Copy
	// Class at release time. A job released Mandatory may later be
	// demoted (its Demoted flag set) when the selective scheme learns the
	// preceding optional job succeeded; see core.
	Class Class

	// Release is the time the copy becomes eligible: r_ij for mains,
	// r̃_ij = r_ij + θ_i for postponed backups (Eq. 3).
	Release timeu.Time
	// BaseRelease is always the nominal r_ij, regardless of postponement.
	BaseRelease timeu.Time
	// Deadline is the absolute deadline d_ij.
	Deadline timeu.Time
	// WCET is c_ij (= Ci in the paper's model).
	WCET timeu.Time
	// Promote is the dual-priority promotion instant (release + Yi) at
	// which a backup job leaves the background band and assumes its
	// regular fixed priority. Zero means the job never runs in the
	// background band (always at regular priority).
	Promote timeu.Time
	// FD is the flexibility degree (Definition 1) of the job at release
	// time, recorded by the dynamic policies for queue ordering and
	// diagnostics; zero for statically classified jobs.
	FD int

	// Remaining execution demand; initialized to WCET.
	Remaining timeu.Time
	// Started reports whether the copy has ever run.
	Started bool
	// StartTime is the first dispatch instant (valid when Started).
	StartTime timeu.Time
	// FinishTime is the completion or cancellation instant.
	FinishTime timeu.Time

	// Faulty marks a copy hit by a transient fault during execution; the
	// sanity check at end of execution (§II-B) detects it, so the copy
	// completes without effect.
	Faulty bool
	// Canceled marks a backup whose main copy succeeded (or a job whose
	// processor suffered the permanent fault before it could matter).
	Canceled bool
	// Done marks the copy as finished executing (successfully or not).
	Done bool
}

// InitJob (re)initializes j in place as the main copy of J_ij for task t
// with the given class, overwriting any previous state — the pooled engine
// scratch reuses Job records across runs through this entry point.
func InitJob(j *Job, t Task, index int, class Class) {
	r := t.Release(index)
	*j = Job{
		TaskID:      t.ID,
		Index:       index,
		Copy:        Main,
		Class:       class,
		Release:     r,
		BaseRelease: r,
		Deadline:    t.AbsDeadline(index),
		WCET:        t.WCET,
		Remaining:   t.WCET,
	}
}

// InitBackup (re)initializes j in place as the backup copy of a mandatory
// job, postponed by theta (Eq. 3: r̃_i = r_i + θ_i).
func InitBackup(j *Job, t Task, index int, theta timeu.Time) {
	InitJob(j, t, index, Mandatory)
	j.Copy = Backup
	j.Release = j.BaseRelease + theta
}

// NewJob builds the main copy of J_ij for task t with the given class.
func NewJob(t Task, index int, class Class) *Job {
	j := new(Job)
	InitJob(j, t, index, class)
	return j
}

// NewBackup builds the backup copy of a mandatory job, postponed by theta
// (Eq. 3: r̃_i = r_i + θ_i).
func NewBackup(t Task, index int, theta timeu.Time) *Job {
	j := new(Job)
	InitBackup(j, t, index, theta)
	return j
}

// Name renders "J23" style identifiers; backups get a prime suffix to
// match the paper's J'_ij.
func (j *Job) Name() string {
	p := ""
	if j.Copy == Backup {
		p = "'"
	}
	return fmt.Sprintf("J%s%d,%d", p, j.TaskID+1, j.Index)
}

func (j *Job) String() string {
	return fmt.Sprintf("%s[%s %s r=%v d=%v rem=%v]", j.Name(), j.Class, j.Copy, j.Release, j.Deadline, j.Remaining)
}

// Completed reports whether the copy ran to completion without a transient
// fault — the paper's notion of "executed successfully".
func (j *Job) Completed() bool {
	return j.Done && !j.Faulty && !j.Canceled && j.Remaining == 0
}

// Expired reports whether the copy can no longer complete by its deadline
// if dispatched at time now.
func (j *Job) Expired(now timeu.Time) bool {
	return now+j.Remaining > j.Deadline
}
