package timeu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromMillis(t *testing.T) {
	cases := []struct {
		ms   float64
		want Time
	}{
		{0, 0},
		{1, 1000},
		{2.5, 2500},
		{0.001, 1},
		{50, 50000},
		{0.0004, 0}, // rounds down
		{0.0006, 1}, // rounds up
	}
	for _, c := range cases {
		if got := FromMillis(c.ms); got != c.want {
			t.Errorf("FromMillis(%v) = %d, want %d", c.ms, got, c.want)
		}
	}
}

func TestMillisRoundTrip(t *testing.T) {
	for _, ms := range []float64{0, 1, 2.5, 49.999, 1000} {
		if got := FromMillis(ms).Millis(); math.Abs(got-ms) > 1e-9 {
			t.Errorf("round trip %v -> %v", ms, got)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ms"},
		{2500, "2.5ms"},
		{1000, "1ms"},
		{1234, "1.234ms"},
		{50000, "50ms"},
		{Infinity, "inf"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{12, 8, 4},
		{8, 12, 4},
		{0, 7, 7},
		{7, 0, 7},
		{-12, 8, 4},
		{1, 1, 1},
		{30, 30, 30},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	const cap = 1 << 40
	cases := []struct{ a, b, want Time }{
		{4, 6, 12},
		{30, 30, 30},
		{5, 7, 35},
		{0, 5, 0},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b, cap); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCMSaturates(t *testing.T) {
	// Two large coprime values whose product overflows the cap.
	a, b := Time(1e9+7), Time(1e9+9)
	if got := LCM(a, b, 1<<40); got != 1<<40 {
		t.Errorf("expected saturation at cap, got %d", got)
	}
	// Saturation must not overflow even near MaxInt64.
	if got := LCM(math.MaxInt64/2, math.MaxInt64/3, math.MaxInt64/4); got != math.MaxInt64/4 {
		t.Errorf("expected saturation at cap, got %d", got)
	}
}

func TestLCMAll(t *testing.T) {
	const cap = 1 << 40
	if got := LCMAll([]Time{4, 6, 10}, cap); got != 60 {
		t.Errorf("LCMAll = %d, want 60", got)
	}
	if got := LCMAll(nil, cap); got != 0 {
		t.Errorf("LCMAll(nil) = %d, want 0", got)
	}
	if got := LCMAll([]Time{2 * cap}, cap); got != cap {
		t.Errorf("LCMAll over cap = %d, want cap", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{0, 5, 0},
		{-3, 5, 0},
		{1, 5, 1},
		{5, 5, 1},
		{6, 5, 2},
		{10, 5, 2},
		{11, 5, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero divisor")
		}
	}()
	CeilDiv(1, 0)
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Time(a), Time(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		ax, ay := x, y
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		return ax%g == 0 && ay%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCMProperties(t *testing.T) {
	const cap = Time(1 << 50)
	f := func(a, b uint16) bool {
		x, y := Time(a)+1, Time(b)+1
		l := LCM(x, y, cap)
		return l%x == 0 && l%y == 0 && l >= Max(x, y) && l <= x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDivProperty(t *testing.T) {
	f := func(a uint16, b uint16) bool {
		x, y := Time(a), Time(b)+1
		q := CeilDiv(x, y)
		return q*y >= x && (q-1)*y < x || (x == 0 && q == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{0.1 + 0.2, 0.3, true},         // the canonical rounding case
		{1e9 + 0.5, 1e9 + 0.5, true},   // relative tolerance at large scale
		{1e9, 1e9 * (1 + 1e-12), true}, // within relative tolerance
		{1, 1 + 1e-6, false},           // outside tolerance
		{0, 1e-8, false},               // absolute tolerance near zero
		{0, FloatTol / 2, true},
		{-1, 1, false},
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b); got != c.want {
			t.Errorf("ApproxEq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestApproxZero(t *testing.T) {
	for _, c := range []struct {
		x    float64
		want bool
	}{
		{0, true}, {FloatTol / 2, true}, {-FloatTol / 2, true},
		{1e-8, false}, {-1e-8, false}, {1, false},
	} {
		if got := ApproxZero(c.x); got != c.want {
			t.Errorf("ApproxZero(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
