// Package timeu provides the fixed-point time arithmetic used throughout
// the simulator.
//
// The paper specifies task parameters in milliseconds but its worked
// examples use fractional values (e.g. a deadline of 2.5 ms in Figure 3),
// so floating point is tempting — and wrong: a discrete-event scheduler
// needs exact comparisons between release times, deadlines and completion
// instants. We therefore represent every instant and duration as an int64
// count of microseconds. One millisecond is Millisecond = 1000 ticks,
// which exactly represents every value the paper uses and leaves headroom
// of ~292,000 years before overflow.
package timeu

import (
	"fmt"
	"math"
)

// Time is an instant or duration in microsecond ticks.
type Time int64

// Common units, expressed in ticks.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// Infinity is a sentinel "never" instant. It is far enough in the future
// that no simulation horizon reaches it, yet small enough that adding a
// bounded duration to it does not overflow.
const Infinity Time = math.MaxInt64 / 4

// FromMillis converts a (possibly fractional) millisecond quantity to
// ticks, rounding to the nearest microsecond.
func FromMillis(ms float64) Time {
	return Time(math.Round(ms * float64(Millisecond)))
}

// Millis converts t to floating-point milliseconds (for reporting only;
// never use the result in scheduling decisions).
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time as a millisecond quantity, trimming trailing
// zeros, e.g. "2.5ms".
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	whole := t / Millisecond
	frac := t % Millisecond
	if frac < 0 {
		frac = -frac
	}
	if frac == 0 {
		return fmt.Sprintf("%dms", whole)
	}
	s := fmt.Sprintf("%d.%03d", whole, frac)
	for s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	return s + "ms"
}

// FloatTol is the default tolerance of the floating-point comparison
// helpers: fine enough to distinguish any two distinct paper quantities
// (which are multiples of 1 µs = 1e-3 ms), coarse enough to absorb the
// rounding error of the reporting-side float arithmetic.
const FloatTol = 1e-9

// ApproxEq reports whether two float64 quantities are equal within
// FloatTol, scaled by magnitude for large values. It is the sanctioned
// float comparison: the floateq lint rule flags raw == / != on floats
// everywhere outside this package.
func ApproxEq(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= FloatTol*scale
}

// ApproxZero reports whether x is zero within FloatTol — the tolerance-
// safe form of the "field missing or zero" sentinel checks on float
// inputs.
func ApproxZero(x float64) bool { return math.Abs(x) <= FloatTol }

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// GCD returns the greatest common divisor of a and b. GCD(0, x) = x.
func GCD(a, b Time) Time {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, saturating at cap.
// The level-i hyperperiods of Eq. (5) multiply k·P terms whose LCM can
// explode combinatorially; callers pass a cap (typically the simulation
// horizon) and treat a saturated result as "longer than I care about".
func LCM(a, b, cap Time) Time {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	q := a / g
	// Saturate instead of overflowing: q * b > cap  <=>  q > cap/b.
	if q > cap/b {
		return cap
	}
	l := q * b
	if l > cap {
		return cap
	}
	return l
}

// LCMAll folds LCM over a slice, saturating at cap. An empty slice yields 0.
func LCMAll(vs []Time, cap Time) Time {
	var l Time
	for i, v := range vs {
		if i == 0 {
			l = v
			if l > cap {
				return cap
			}
			continue
		}
		l = LCM(l, v, cap)
		if l == cap {
			return cap
		}
	}
	return l
}

// CeilDiv returns ⌈a / b⌉ for positive b, the workhorse of response-time
// analysis interference terms.
func CeilDiv(a, b Time) Time {
	if b <= 0 {
		panic("timeu: CeilDiv by non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
