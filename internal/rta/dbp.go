package rta

import (
	"strings"

	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

// This file implements Goossens' exact schedulability test for DBP
// (distance-based priority) scheduling of (m,k)-firm task sets
// (arXiv:0805.0200), extended to the paper's two-processor
// standby-sparing arrangement: a deterministic fault-free walk of the
// DBP schedule whose state — the concatenation of every task's sliding
// k-window of outcomes — is sampled at hyperperiod boundaries. Because
// the walk is deterministic and the per-boundary state space is finite
// (∏ 2^ki), the trajectory must eventually revisit a state; if no (m,k)
// violation occurred before the cycle closes, none ever will, and the
// verdict is exact. Goossens' key observation carries over unchanged:
// the verdict depends on the *initial* k-sequences, not just the task
// parameters, which is what `mkablate -ksweep` measures.
//
// The walk is a deliberate mirror of the engine running the MKSS-DBP
// policy (internal/sim/policy/dbp) with no faults injected: the same
// same-instant ordering (completions, then deadlines, then releases,
// then dispatch), the same distance rule (FlexibilityDegree + 1 at
// release), the same promoted distance-1 tier running as main+θ-postponed
// backup pairs, and the same rule that an optional copy unable to finish
// by its deadline is never dispatched. The agreement is pinned by
// randomized tests in the dbp policy package.

// DBPConfig parameterizes DBPExact.
type DBPConfig struct {
	// Theta postpones task i's backup copies by Theta[i] (Eq. 3), as the
	// MKSS-DBP policy does. Nil runs without backup copies — plain
	// uniprocessor DBP, Goossens' original setting.
	Theta []timeu.Time
	// Init seeds task i's outcome window with Init[i], oldest to newest,
	// recorded onto an all-effective window (so a row shorter than ki
	// leaves the oldest positions effective). Nil rows (or a nil slice)
	// mean the all-effective fresh start the simulator uses.
	Init [][]bool
	// Cap saturates the hyperperiod (see task.Set.Hyperperiod); zero
	// means DefaultDBPCap. A saturated hyperperiod disables cycle
	// detection: the verdict degrades to a bounded-horizon check.
	Cap timeu.Time
	// MaxHyperperiods bounds the walk when no cycle closes earlier; zero
	// means DefaultDBPMaxHyperperiods.
	MaxHyperperiods int
}

// DefaultDBPCap bounds the hyperperiod of the exact DBP walk; it matches
// the θ analysis cap (postpone.DefaultHyperperiodCap).
const DefaultDBPCap = 10 * timeu.Second

// DefaultDBPMaxHyperperiods bounds the walk length. The reachable
// k-window states of real task sets are a tiny fraction of the 2^Σki
// worst case; across the randomized corpus cycles close within a handful
// of hyperperiods.
const DefaultDBPMaxHyperperiods = 64

// DBPVerdict is the outcome of the exact test.
type DBPVerdict struct {
	// Schedulable reports that no task violates its (m,k) constraint —
	// ever, when Exact; within the walked horizon otherwise.
	Schedulable bool
	// ViolationTask is the task whose window broke first, or -1.
	ViolationTask int
	// ViolationIndex is the 1-based job index whose outcome broke the
	// window, or 0.
	ViolationIndex int
	// Transient and Cycle describe the reached orbit in hyperperiods:
	// the walk enters a cycle of length Cycle after Transient boundary
	// states. Zero when no cycle closed (violation found first, or the
	// walk was inexact).
	Transient, Cycle int
	// Exact reports whether the verdict is a proof (a violation was
	// found, or a violation-free cycle closed) rather than a
	// bounded-horizon check (saturated hyperperiod, nonzero offsets, or
	// exhausted walk budget).
	Exact bool
}

// dbpJob is one job copy inside the walk.
type dbpJob struct {
	taskID, index  int
	backup         bool
	mandatory      bool
	dist           int
	release        timeu.Time
	deadline       timeu.Time
	remaining      timeu.Time
	done, canceled bool
}

// dbpPair tracks settlement of one logical job.
type dbpPair struct {
	taskID, index int
	dl            timeu.Time
	copies        [2]*dbpJob
	n             int
	settled       bool
}

// dbpWalk is the mutable state of one exact-test run.
type dbpWalk struct {
	s       *task.Set
	theta   []timeu.Time
	hist    []*pattern.History
	nextIdx []int // next release index per task, 1-based

	now   timeu.Time
	live  [2][]*dbpJob
	cur   [2]*dbpJob
	open  []*dbpPair
	pairs map[[2]int]*dbpPair

	violated  bool
	violTask  int
	violIndex int
}

// DBPExact runs the exact DBP schedulability test. See the file comment
// for semantics.
func DBPExact(s *task.Set, cfg DBPConfig) DBPVerdict {
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultDBPCap
	}
	if cfg.MaxHyperperiods <= 0 {
		cfg.MaxHyperperiods = DefaultDBPMaxHyperperiods
	}
	h := s.Hyperperiod(cfg.Cap)
	verdict := DBPVerdict{ViolationTask: -1}
	if h <= 0 {
		return verdict
	}
	// Cycle detection needs boundary states to be comparable: every job
	// released in [nH, (n+1)H) must settle by (n+1)H, which holds exactly
	// for zero offsets with constrained deadlines and an unsaturated
	// hyperperiod (each period divides h).
	cyclic := true
	for _, t := range s.Tasks {
		if t.Offset != 0 || h%t.Period != 0 {
			cyclic = false
			break
		}
	}

	w := &dbpWalk{
		s:        s,
		theta:    cfg.Theta,
		hist:     make([]*pattern.History, s.N()),
		nextIdx:  make([]int, s.N()),
		pairs:    make(map[[2]int]*dbpPair),
		violTask: -1,
	}
	for i, t := range s.Tasks {
		hi := pattern.NewHistory(t.M, t.K)
		if cfg.Init != nil && i < len(cfg.Init) {
			for _, eff := range cfg.Init[i] {
				hi.Record(eff)
			}
		}
		w.hist[i] = hi
		w.nextIdx[i] = 1
	}

	seen := map[string]int{w.stateKey(): 0}
	for n := 1; n <= cfg.MaxHyperperiods; n++ {
		if !w.runHyperperiod(timeu.Time(n) * h) {
			// A window broke mid-hyperperiod: the verdict is an exact
			// refutation regardless of cycles.
			verdict.Schedulable = false
			verdict.ViolationTask = w.violTask
			verdict.ViolationIndex = w.violIndex
			verdict.Exact = true
			return verdict
		}
		if !cyclic {
			continue
		}
		key := w.stateKey()
		if at, ok := seen[key]; ok {
			verdict.Schedulable = true
			verdict.Transient = at
			verdict.Cycle = n - at
			verdict.Exact = true
			return verdict
		}
		seen[key] = n
	}
	// Budget exhausted (or non-cyclic set): everything checked so far
	// passed, but the verdict is not a proof.
	verdict.Schedulable = true
	return verdict
}

// stateKey renders the concatenated k-windows, the Goossens state.
func (w *dbpWalk) stateKey() string {
	var b strings.Builder
	for _, h := range w.hist {
		b.Grow(h.K() + 1)
		for _, eff := range h.Snapshot() {
			if eff {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('|')
	}
	return b.String()
}

// runHyperperiod advances the walk to the boundary instant `until`,
// processing the boundary's completions and deadlines but not its
// releases (they belong to the next hyperperiod). Returns false as soon
// as a window breaks.
func (w *dbpWalk) runHyperperiod(until timeu.Time) bool {
	for {
		w.completions()
		w.deadlines()
		if w.violated {
			return false
		}
		if w.now >= until {
			return true
		}
		w.releases()
		w.dispatch()
		next := w.nextEvent(until)
		w.advance(next)
	}
}

// completions settles pairs whose running copy finished. Fault-free walk:
// every completion is effective and cancels the sibling copy.
func (w *dbpWalk) completions() {
	for p := 0; p < 2; p++ {
		j := w.cur[p]
		if j == nil || j.remaining > 0 {
			continue
		}
		w.cur[p] = nil
		j.done = true
		w.removeLive(p, j)
		pair := w.pairs[[2]int{j.taskID, j.index}]
		if pair.settled {
			continue
		}
		pair.settled = true
		w.dropOpen(pair)
		for _, c := range pair.copies[:pair.n] {
			if c == j || c.done || c.canceled {
				continue
			}
			c.canceled = true
			for q := 0; q < 2; q++ {
				if w.cur[q] == c {
					w.cur[q] = nil
				}
				w.removeLive(q, c)
			}
		}
		w.record(j.taskID, j.index, true)
	}
}

// deadlines settles every open pair whose deadline has arrived as a miss.
func (w *dbpWalk) deadlines() {
	for i := 0; i < len(w.open); {
		pair := w.open[i]
		if pair.dl > w.now {
			i++
			continue
		}
		pair.settled = true
		w.dropOpen(pair) // swaps the tail into position i; re-examine it
		for _, c := range pair.copies[:pair.n] {
			if c.done || c.canceled {
				continue
			}
			c.canceled = true
			for q := 0; q < 2; q++ {
				if w.cur[q] == c {
					w.cur[q] = nil
				}
				w.removeLive(q, c)
			}
		}
		w.record(pair.taskID, pair.index, false)
	}
}

// record mirrors the engine's settlement notification: the outcome enters
// the task's window, and a broken window ends the walk.
func (w *dbpWalk) record(taskID, index int, effective bool) {
	w.hist[taskID].Record(effective)
	if !effective && w.hist[taskID].Violated() && !w.violated {
		w.violated = true
		w.violTask = taskID
		w.violIndex = index
	}
}

// releases classifies and admits every job releasing now, in task order
// (the engine's same-instant batching).
func (w *dbpWalk) releases() {
	for i := range w.s.Tasks {
		t := w.s.Tasks[i]
		for t.Release(w.nextIdx[i]) == w.now {
			idx := w.nextIdx[i]
			w.nextIdx[i]++
			dist := w.hist[i].FlexibilityDegree() + 1
			r := w.now
			dl := t.AbsDeadline(idx)
			pair := &dbpPair{taskID: i, index: idx, dl: dl}
			w.pairs[[2]int{i, idx}] = pair
			w.open = append(w.open, pair)
			main := &dbpJob{
				taskID: i, index: idx, dist: dist, mandatory: dist == 1,
				release: r, deadline: dl, remaining: t.WCET,
			}
			pair.copies[pair.n] = main
			pair.n++
			w.live[0] = append(w.live[0], main)
			if dist == 1 && w.theta != nil {
				backup := &dbpJob{
					taskID: i, index: idx, backup: true, dist: dist, mandatory: true,
					release: r + w.theta[i], deadline: dl, remaining: t.WCET,
				}
				pair.copies[pair.n] = backup
				pair.n++
				w.live[1] = append(w.live[1], backup)
			}
		}
	}
}

// less mirrors the MKSS-DBP policy's Less plus FP tie-breaks.
func dbpLess(a, b *dbpJob) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.mandatory != b.mandatory {
		return a.mandatory
	}
	if a.taskID != b.taskID {
		return a.taskID < b.taskID
	}
	if a.index != b.index {
		return a.index < b.index
	}
	return !a.backup && b.backup
}

// dispatch picks, per processor, the best eligible runnable copy.
func (w *dbpWalk) dispatch() {
	for p := 0; p < 2; p++ {
		var best *dbpJob
		for _, j := range w.live[p] {
			if j.done || j.canceled || j.release > w.now {
				continue
			}
			// An optional copy that can no longer finish is never
			// dispatched (it settles as a miss at its deadline).
			if !j.mandatory && w.now+j.remaining > j.deadline {
				continue
			}
			if best == nil || dbpLess(j, best) {
				best = j
			}
		}
		w.cur[p] = best
	}
}

// nextEvent returns the next instant anything can change, capped at the
// hyperperiod boundary.
func (w *dbpWalk) nextEvent(until timeu.Time) timeu.Time {
	next := until
	for i := range w.s.Tasks {
		if r := w.s.Tasks[i].Release(w.nextIdx[i]); r < next {
			next = r
		}
	}
	for p := 0; p < 2; p++ {
		if j := w.cur[p]; j != nil {
			if t := w.now + j.remaining; t < next {
				next = t
			}
		}
		// Postponed backups (and any copy not yet eligible) activate at
		// their revised release.
		for _, j := range w.live[p] {
			if !j.done && !j.canceled && j.release > w.now && j.release < next {
				next = j.release
			}
		}
	}
	for _, pair := range w.open {
		if pair.dl < next {
			next = pair.dl
		}
	}
	return next
}

// advance moves time forward, burning demand on the running copies.
func (w *dbpWalk) advance(t timeu.Time) {
	delta := t - w.now
	for p := 0; p < 2; p++ {
		if j := w.cur[p]; j != nil {
			j.remaining -= delta
		}
	}
	w.now = t
}

func (w *dbpWalk) removeLive(p int, j *dbpJob) {
	l := w.live[p]
	for i, x := range l {
		if x == j {
			l[i] = l[len(l)-1]
			w.live[p] = l[:len(l)-1]
			return
		}
	}
}

func (w *dbpWalk) dropOpen(pair *dbpPair) {
	for i, x := range w.open {
		if x == pair {
			w.open[i] = w.open[len(w.open)-1]
			w.open = w.open[:len(w.open)-1]
			return
		}
	}
}
