// Package rta implements fixed-priority response-time analysis and the
// derived quantities the paper needs: the worst-case response time Ri of
// each task, the dual-priority promotion time Yi = Di − Ri (Eq. (2)), and
// schedulability tests — the classic exact RTA test over full periodic
// interference, plus an R-pattern-aware test that simulates the
// synchronous mandatory-only schedule over the (m,k)-hyperperiod (the
// premise of Theorem 1).
package rta

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

// ErrUnschedulable is wrapped by analysis errors when a task cannot meet
// its deadline.
type ErrUnschedulable struct {
	TaskID int
	Detail string
}

func (e *ErrUnschedulable) Error() string {
	return fmt.Sprintf("rta: task %d unschedulable: %s", e.TaskID+1, e.Detail)
}

// ResponseTime computes the worst-case response time of task i in set s
// under preemptive fixed-priority scheduling with full periodic
// interference from all higher-priority tasks (each task treated as
// strictly periodic — the paper's Eq. (2) uses this standard analysis;
// its example set τ1=(5,4,3,2,4), τ2=(10,10,3,1,2) yields R1=3, R2=9 and
// hence Y1=Y2=1, matching §III).
//
// The fixed-point iteration R = Ci + Σ_{j<i} ⌈R/Pj⌉·Cj starts from Ci and
// stops when it converges or exceeds the deadline, in which case an
// *ErrUnschedulable is returned.
func ResponseTime(s *task.Set, i int) (timeu.Time, error) {
	t := s.Tasks[i]
	r := t.WCET
	for iter := 0; ; iter++ {
		next := t.WCET
		for j := 0; j < i; j++ {
			hp := s.Tasks[j]
			next += timeu.CeilDiv(r, hp.Period) * hp.WCET
		}
		if next == r {
			return r, nil
		}
		if next > t.Deadline {
			return next, &ErrUnschedulable{TaskID: i, Detail: fmt.Sprintf("response time exceeds deadline %v", t.Deadline)}
		}
		r = next
	}
}

// ResponseTimes computes all response times; it fails on the first
// unschedulable task.
func ResponseTimes(s *task.Set) ([]timeu.Time, error) {
	out := make([]timeu.Time, s.N())
	for i := range s.Tasks {
		r, err := ResponseTime(s, i)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// PromotionTimes computes Yi = Di − Ri (Eq. (2)) for every task: the
// amount by which a backup job may be procrastinated under the
// dual-priority scheme while still meeting its deadline.
func PromotionTimes(s *task.Set) ([]timeu.Time, error) {
	rs, err := ResponseTimes(s)
	if err != nil {
		return nil, err
	}
	ys := make([]timeu.Time, len(rs))
	for i, r := range rs {
		ys[i] = s.Tasks[i].Deadline - r
	}
	return ys, nil
}

// ResponseTimesSafe computes every task's worst-case response time with a
// divergence fallback instead of an error: converged[i] reports whether
// the fixed point settled within the deadline; when it did not, rs[i] is
// the first iterate past the deadline (an under-approximation of the true,
// possibly unbounded, response time). The pair is the memoizable "RTA
// response times" product consumed by internal/analysis.
func ResponseTimesSafe(s *task.Set) (rs []timeu.Time, converged []bool) {
	rs = make([]timeu.Time, s.N())
	converged = make([]bool, s.N())
	for i := range s.Tasks {
		r, err := ResponseTime(s, i)
		rs[i] = r
		converged[i] = err == nil
	}
	return rs, converged
}

// PromotionTimesSafe computes Yi = Di − Ri like PromotionTimes but never
// fails: tasks whose full-interference response time diverges past the
// deadline get Yi = 0 (no procrastination — the dual-priority baseline
// degenerates to concurrent execution for them). This matters for (m,k)
// workloads that are R-pattern-schedulable without being fully
// schedulable: the baselines still need *some* promotion interval.
func PromotionTimesSafe(s *task.Set) []timeu.Time {
	rs, converged := ResponseTimesSafe(s)
	return PromotionFromResponse(s, rs, converged)
}

// PromotionFromResponse derives the promotion intervals Yi = Di − Ri from
// already-computed response times (Eq. 2 with the divergence fallback of
// PromotionTimesSafe). It lets callers holding memoized response times
// avoid re-running the fixed-point iteration.
func PromotionFromResponse(s *task.Set, rs []timeu.Time, converged []bool) []timeu.Time {
	ys := make([]timeu.Time, s.N())
	for i := range s.Tasks {
		if !converged[i] {
			ys[i] = 0
			continue
		}
		ys[i] = s.Tasks[i].Deadline - rs[i]
	}
	return ys
}

// SchedulableRTA reports whether the full task set (every job of every
// task, ignoring (m,k) slack) is FP-schedulable by exact response-time
// analysis. This is sufficient but pessimistic for (m,k) systems.
func SchedulableRTA(s *task.Set) bool {
	_, err := ResponseTimes(s)
	return err == nil
}

// MandatoryJob identifies one mandatory job within the pattern horizon.
type MandatoryJob struct {
	TaskID   int
	Index    int // 1-based job index
	Release  timeu.Time
	Deadline timeu.Time
	WCET     timeu.Time
}

// MandatoryJobs enumerates the mandatory jobs of every task (per the given
// static pattern) released in [0, horizon). Jobs are returned sorted by
// release time, then by priority (task index).
//
// Each task's mandatory jobs are already in release order, so the sorted
// output is a k-way merge of per-task streams rather than a sort of their
// concatenation — the generator's schedulability filter calls this once
// per candidate and the sort used to dominate whole-sweep profiles.
//
//mklint:hotpath
func MandatoryJobs(s *task.Set, kind pattern.Kind, horizon timeu.Time) []MandatoryJob {
	type cursor struct {
		j       int // next mandatory job index (1-based); 0 = exhausted
		release timeu.Time
	}
	cur := make([]cursor, len(s.Tasks))
	// advance moves task i's cursor to its next mandatory release in
	// [0, horizon), starting after job index from.
	advance := func(i, from int) {
		t := &s.Tasks[i]
		for j := from + 1; ; j++ {
			r := t.Release(j)
			if r >= horizon {
				cur[i] = cursor{}
				return
			}
			if pattern.Mandatory(kind, j, t.M, t.K) {
				cur[i] = cursor{j: j, release: r}
				return
			}
		}
	}
	total := 0
	for i, t := range s.Tasks {
		if n := int((horizon-t.Offset)/t.Period) + 1; n > 0 {
			total += n
		}
		advance(i, 0)
	}
	jobs := make([]MandatoryJob, 0, total)
	for {
		// Lowest release wins; the scan order breaks ties by priority.
		best := -1
		for i := range cur {
			if cur[i].j > 0 && (best < 0 || cur[i].release < cur[best].release) {
				best = i
			}
		}
		if best < 0 {
			return jobs
		}
		t := &s.Tasks[best]
		j := cur[best].j
		jobs = append(jobs, MandatoryJob{
			TaskID:   t.ID,
			Index:    j,
			Release:  cur[best].release,
			Deadline: t.AbsDeadline(j),
			WCET:     t.WCET,
		})
		advance(best, j)
	}
}

// SchedulableRPattern reports whether the mandatory jobs under the static
// pattern, released synchronously at time 0, all meet their deadlines
// under preemptive FP scheduling — the schedulability premise of
// Theorem 1. It simulates the mandatory-only schedule over the
// (m,k)-hyperperiod (saturating at cap). The synchronous release is the
// critical instant for the shifted argument in the paper's proof, so a
// pass here certifies the (m,k)-deadlines under Algorithm 1.
//
// When the hyperperiod saturates at cap the test is still meaningful (it
// checked every job in [0,cap)) but no longer exact; callers choosing a
// generous cap (many times max ki·Pi) get a high-confidence filter, and
// the workload generator additionally requires SchedulableRTA for a safe
// sufficient condition.
func SchedulableRPattern(s *task.Set, kind pattern.Kind, cap timeu.Time) bool {
	horizon := s.MKHyperperiod(cap)
	if horizon <= 0 {
		return false
	}
	jobs := MandatoryJobs(s, kind, horizon)
	return simulateFP(s, jobs, horizon)
}

// simulateFP runs a fast priority-queue-free FP simulation of the given
// jobs and reports whether all deadlines are met. Jobs must be sorted by
// release time. The simulation walks release/completion events; at each
// instant the highest-priority (lowest TaskID, then earliest index)
// pending job runs.
//
//mklint:hotpath
func simulateFP(s *task.Set, jobs []MandatoryJob, horizon timeu.Time) bool {
	type active struct {
		j         MandatoryJob
		remaining timeu.Time
	}
	// ready, kept sorted by priority (TaskID asc, Index asc).
	var ready []active
	insert := func(a active) {
		pos := len(ready)
		for pos > 0 {
			p := ready[pos-1]
			if p.j.TaskID < a.j.TaskID || (p.j.TaskID == a.j.TaskID && p.j.Index < a.j.Index) {
				break
			}
			pos--
		}
		ready = append(ready, active{})
		copy(ready[pos+1:], ready[pos:])
		ready[pos] = a
	}
	now := timeu.Time(0)
	next := 0
	for next < len(jobs) || len(ready) > 0 {
		if len(ready) == 0 {
			// Idle until the next release.
			if next >= len(jobs) {
				break
			}
			now = timeu.Max(now, jobs[next].Release)
		}
		for next < len(jobs) && jobs[next].Release <= now {
			insert(active{j: jobs[next], remaining: jobs[next].WCET})
			next++
		}
		if len(ready) == 0 {
			continue
		}
		cur := &ready[0]
		// Run until completion or the next release, whichever first.
		until := now + cur.remaining
		if next < len(jobs) && jobs[next].Release < until {
			until = jobs[next].Release
		}
		cur.remaining -= until - now
		now = until
		if cur.remaining == 0 {
			if now > cur.j.Deadline {
				return false
			}
			ready = ready[1:]
		} else if now+cur.remaining > cur.j.Deadline {
			// Even with the processor to itself it will miss; fail early.
			return false
		}
		if now >= horizon+maxDeadline(s) {
			break
		}
	}
	return true
}

// maxDeadline bounds how far past the horizon the simulation may need to
// run to drain jobs released just before it.
//
//mklint:hotpath
func maxDeadline(s *task.Set) timeu.Time {
	var d timeu.Time
	for _, t := range s.Tasks {
		d = timeu.Max(d, t.Deadline)
	}
	return d
}
