// Package rta implements fixed-priority response-time analysis and the
// derived quantities the paper needs: the worst-case response time Ri of
// each task, the dual-priority promotion time Yi = Di − Ri (Eq. (2)), and
// schedulability tests — the classic exact RTA test over full periodic
// interference, plus an R-pattern-aware test that simulates the
// synchronous mandatory-only schedule over the (m,k)-hyperperiod (the
// premise of Theorem 1).
package rta

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

// ErrUnschedulable is wrapped by analysis errors when a task cannot meet
// its deadline.
type ErrUnschedulable struct {
	TaskID int
	Detail string
}

func (e *ErrUnschedulable) Error() string {
	return fmt.Sprintf("rta: task %d unschedulable: %s", e.TaskID+1, e.Detail)
}

// ResponseTime computes the worst-case response time of task i in set s
// under preemptive fixed-priority scheduling with full periodic
// interference from all higher-priority tasks (each task treated as
// strictly periodic — the paper's Eq. (2) uses this standard analysis;
// its example set τ1=(5,4,3,2,4), τ2=(10,10,3,1,2) yields R1=3, R2=9 and
// hence Y1=Y2=1, matching §III).
//
// The fixed-point iteration R = Ci + Σ_{j<i} ⌈R/Pj⌉·Cj starts from Ci and
// stops when it converges or exceeds the deadline, in which case an
// *ErrUnschedulable is returned.
func ResponseTime(s *task.Set, i int) (timeu.Time, error) {
	t := s.Tasks[i]
	r := t.WCET
	for iter := 0; ; iter++ {
		next := t.WCET
		for j := 0; j < i; j++ {
			hp := s.Tasks[j]
			next += timeu.CeilDiv(r, hp.Period) * hp.WCET
		}
		if next == r {
			return r, nil
		}
		if next > t.Deadline {
			return next, &ErrUnschedulable{TaskID: i, Detail: fmt.Sprintf("response time exceeds deadline %v", t.Deadline)}
		}
		r = next
	}
}

// ResponseTimes computes all response times; it fails on the first
// unschedulable task.
func ResponseTimes(s *task.Set) ([]timeu.Time, error) {
	out := make([]timeu.Time, s.N())
	for i := range s.Tasks {
		r, err := ResponseTime(s, i)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// PromotionTimes computes Yi = Di − Ri (Eq. (2)) for every task: the
// amount by which a backup job may be procrastinated under the
// dual-priority scheme while still meeting its deadline.
func PromotionTimes(s *task.Set) ([]timeu.Time, error) {
	rs, err := ResponseTimes(s)
	if err != nil {
		return nil, err
	}
	ys := make([]timeu.Time, len(rs))
	for i, r := range rs {
		ys[i] = s.Tasks[i].Deadline - r
	}
	return ys, nil
}

// ResponseTimesSafe computes every task's worst-case response time with a
// divergence fallback instead of an error: converged[i] reports whether
// the fixed point settled within the deadline; when it did not, rs[i] is
// the first iterate past the deadline (an under-approximation of the true,
// possibly unbounded, response time). The pair is the memoizable "RTA
// response times" product consumed by internal/analysis.
func ResponseTimesSafe(s *task.Set) (rs []timeu.Time, converged []bool) {
	rs = make([]timeu.Time, s.N())
	converged = make([]bool, s.N())
	for i := range s.Tasks {
		r, err := ResponseTime(s, i)
		rs[i] = r
		converged[i] = err == nil
	}
	return rs, converged
}

// PromotionTimesSafe computes Yi = Di − Ri like PromotionTimes but never
// fails: tasks whose full-interference response time diverges past the
// deadline get Yi = 0 (no procrastination — the dual-priority baseline
// degenerates to concurrent execution for them). This matters for (m,k)
// workloads that are R-pattern-schedulable without being fully
// schedulable: the baselines still need *some* promotion interval.
func PromotionTimesSafe(s *task.Set) []timeu.Time {
	rs, converged := ResponseTimesSafe(s)
	return PromotionFromResponse(s, rs, converged)
}

// PromotionFromResponse derives the promotion intervals Yi = Di − Ri from
// already-computed response times (Eq. 2 with the divergence fallback of
// PromotionTimesSafe). It lets callers holding memoized response times
// avoid re-running the fixed-point iteration.
func PromotionFromResponse(s *task.Set, rs []timeu.Time, converged []bool) []timeu.Time {
	ys := make([]timeu.Time, s.N())
	for i := range s.Tasks {
		if !converged[i] {
			ys[i] = 0
			continue
		}
		ys[i] = s.Tasks[i].Deadline - rs[i]
	}
	return ys
}

// SchedulableRTA reports whether the full task set (every job of every
// task, ignoring (m,k) slack) is FP-schedulable by exact response-time
// analysis. This is sufficient but pessimistic for (m,k) systems.
func SchedulableRTA(s *task.Set) bool {
	_, err := ResponseTimes(s)
	return err == nil
}

// MandatoryJob identifies one mandatory job within the pattern horizon.
type MandatoryJob struct {
	TaskID   int
	Index    int // 1-based job index
	Release  timeu.Time
	Deadline timeu.Time
	WCET     timeu.Time
}

// mandCursor tracks one task's next mandatory release during the k-way
// merge of the per-task mandatory-job streams.
type mandCursor struct {
	j       int // next mandatory job index (1-based); 0 = exhausted
	release timeu.Time
}

// mandIter streams the mandatory jobs of a set in (release, priority)
// order — the k-way merge behind MandatoryJobs, exposed as an iterator so
// the schedulability filter can consume jobs without materializing a
// hyperperiod-sized slice per candidate (the allocation used to dominate
// whole-sweep profiles).
type mandIter struct {
	s       *task.Set
	kind    pattern.Kind
	horizon timeu.Time
	cur     []mandCursor
}

//mklint:hotpath
func (it *mandIter) init(s *task.Set, kind pattern.Kind, horizon timeu.Time) {
	it.s, it.kind, it.horizon = s, kind, horizon
	it.cur = make([]mandCursor, len(s.Tasks))
	for i := range s.Tasks {
		it.advance(i, 0)
	}
}

// advance moves task i's cursor to its next mandatory release in
// [0, horizon), starting after job index from.
//
//mklint:hotpath
func (it *mandIter) advance(i, from int) {
	t := &it.s.Tasks[i]
	for j := from + 1; ; j++ {
		r := t.Release(j)
		if r >= it.horizon {
			it.cur[i] = mandCursor{}
			return
		}
		if pattern.Mandatory(it.kind, j, t.M, t.K) {
			it.cur[i] = mandCursor{j: j, release: r}
			return
		}
	}
}

// next returns the next mandatory job in (release, priority) order; ok is
// false once the streams are exhausted.
//
//mklint:hotpath
func (it *mandIter) next() (mj MandatoryJob, ok bool) {
	// Lowest release wins; the scan order breaks ties by priority.
	best := -1
	for i := range it.cur {
		if it.cur[i].j > 0 && (best < 0 || it.cur[i].release < it.cur[best].release) {
			best = i
		}
	}
	if best < 0 {
		return MandatoryJob{}, false
	}
	t := &it.s.Tasks[best]
	j := it.cur[best].j
	mj = MandatoryJob{
		TaskID:   t.ID,
		Index:    j,
		Release:  it.cur[best].release,
		Deadline: t.AbsDeadline(j),
		WCET:     t.WCET,
	}
	it.advance(best, j)
	return mj, true
}

// MandatoryJobs enumerates the mandatory jobs of every task (per the given
// static pattern) released in [0, horizon). Jobs are returned sorted by
// release time, then by priority (task index).
//
// Each task's mandatory jobs are already in release order, so the sorted
// output is a k-way merge of per-task streams rather than a sort of their
// concatenation. Callers that only consume the stream once (the
// schedulability filter) use mandIter directly and skip this slice.
func MandatoryJobs(s *task.Set, kind pattern.Kind, horizon timeu.Time) []MandatoryJob {
	var it mandIter
	it.init(s, kind, horizon)
	total := 0
	for _, t := range s.Tasks {
		if n := int((horizon-t.Offset)/t.Period) + 1; n > 0 {
			total += n
		}
	}
	jobs := make([]MandatoryJob, 0, total)
	for {
		mj, ok := it.next()
		if !ok {
			return jobs
		}
		jobs = append(jobs, mj)
	}
}

// SchedulableRPattern reports whether the mandatory jobs under the static
// pattern, released synchronously at time 0, all meet their deadlines
// under preemptive FP scheduling — the schedulability premise of
// Theorem 1. It simulates the mandatory-only schedule over the
// (m,k)-hyperperiod (saturating at cap). The synchronous release is the
// critical instant for the shifted argument in the paper's proof, so a
// pass here certifies the (m,k)-deadlines under Algorithm 1.
//
// When the hyperperiod saturates at cap the test is still meaningful (it
// checked every job in [0,cap)) but no longer exact; callers choosing a
// generous cap (many times max ki·Pi) get a high-confidence filter, and
// the workload generator additionally requires SchedulableRTA for a safe
// sufficient condition.
func SchedulableRPattern(s *task.Set, kind pattern.Kind, cap timeu.Time) bool {
	horizon := s.MKHyperperiod(cap)
	if horizon <= 0 {
		return false
	}
	var it mandIter
	it.init(s, kind, horizon)
	return simulateFP(s, &it, horizon)
}

// simulateFP runs a fast priority-queue-free FP simulation of the jobs
// streamed by src (sorted by release time) and reports whether all
// deadlines are met. The simulation walks release/completion events; at
// each instant the highest-priority (lowest TaskID, then earliest index)
// pending job runs. Consuming the stream with a one-job lookahead instead
// of a materialized slice keeps the per-candidate filter allocation-light
// regardless of the hyperperiod.
//
//mklint:hotpath
func simulateFP(s *task.Set, src *mandIter, horizon timeu.Time) bool {
	type active struct {
		j         MandatoryJob
		remaining timeu.Time
	}
	// ready, kept sorted by priority (TaskID asc, Index asc).
	var ready []active
	insert := func(a active) {
		pos := len(ready)
		for pos > 0 {
			p := ready[pos-1]
			if p.j.TaskID < a.j.TaskID || (p.j.TaskID == a.j.TaskID && p.j.Index < a.j.Index) {
				break
			}
			pos--
		}
		ready = append(ready, active{})
		copy(ready[pos+1:], ready[pos:])
		ready[pos] = a
	}
	now := timeu.Time(0)
	pend, havePend := src.next()
	for havePend || len(ready) > 0 {
		if len(ready) == 0 {
			// Idle until the next release.
			if !havePend {
				break
			}
			now = timeu.Max(now, pend.Release)
		}
		for havePend && pend.Release <= now {
			insert(active{j: pend, remaining: pend.WCET})
			pend, havePend = src.next()
		}
		if len(ready) == 0 {
			continue
		}
		cur := &ready[0]
		// Run until completion or the next release, whichever first.
		until := now + cur.remaining
		if havePend && pend.Release < until {
			until = pend.Release
		}
		cur.remaining -= until - now
		now = until
		if cur.remaining == 0 {
			if now > cur.j.Deadline {
				return false
			}
			ready = ready[1:]
		} else if now+cur.remaining > cur.j.Deadline {
			// Even with the processor to itself it will miss; fail early.
			return false
		}
		if now >= horizon+maxDeadline(s) {
			break
		}
	}
	return true
}

// maxDeadline bounds how far past the horizon the simulation may need to
// run to drain jobs released just before it.
//
//mklint:hotpath
func maxDeadline(s *task.Set) timeu.Time {
	var d timeu.Time
	for _, t := range s.Tasks {
		d = timeu.Max(d, t.Deadline)
	}
	return d
}
