package rta

import (
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

func TestMandatoryDemandBasics(t *testing.T) {
	// (2,3) task, P=10, C=3: mandatory jobs 1,2 of every 3.
	tk := task.New(0, 10, 10, 3, 2, 3)
	cases := []struct {
		atMS float64
		want float64 // ms of demand
	}{
		{0, 0},
		{0.5, 3},  // job 1 released at 0
		{10, 3},   // job 2 releases exactly at 10: [0,10) has 1 release
		{10.5, 6}, // jobs 1,2
		{20.5, 6}, // job 3 optional
		{30.5, 9}, // job 4 (next cycle) mandatory
		{60, 12},  // two full cycles [0,60): 2*2 jobs
	}
	for _, c := range cases {
		got := MandatoryDemand(tk, pattern.RPattern, timeu.FromMillis(c.atMS))
		if got != timeu.FromMillis(c.want) {
			t.Errorf("demand(%vms) = %v, want %vms", c.atMS, got, c.want)
		}
	}
}

func TestMandatoryDemandMatchesEnumeration(t *testing.T) {
	f := func(pMS, cQ, mr, kr uint8, xMS uint16) bool {
		period := timeu.Time(pMS%46+5) * timeu.Millisecond
		k := int(kr%19) + 2
		m := int(mr)%(k-1) + 1
		wcet := timeu.Time(cQ%10+1) * period / 12
		if wcet < 1 {
			wcet = 1
		}
		tk := task.Task{ID: 0, Period: period, Deadline: period, WCET: wcet, M: m, K: k}
		x := timeu.Time(xMS) * timeu.Millisecond / 4
		got := MandatoryDemand(tk, pattern.RPattern, x)
		// Brute force.
		var want timeu.Time
		for j := 1; tk.Release(j) < x; j++ {
			if pattern.Mandatory(pattern.RPattern, j, m, k) {
				want += wcet
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMandatoryResponseTimeSimple(t *testing.T) {
	// Fig. 5 set: tau2's first backup-equivalent job: own demand 8,
	// higher-priority mandatory demand in [0,f): tau1 jobs 1 (0) and 2
	// (10): f = 8+3 = 11 -> includes release 10 -> f = 8+6 = 14 ->
	// converged (next release 20 > 14). R = 14.
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	r, ok := MandatoryResponseTime(s, pattern.RPattern, 1, 1)
	if !ok {
		t.Fatal("job must be schedulable")
	}
	if r != timeu.FromMillis(14) {
		t.Errorf("response = %v, want 14ms", r)
	}
}

func TestMandatoryResponseTimeUnschedulable(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 8, 1, 2), task.New(1, 10, 10, 8, 1, 2))
	if _, ok := MandatoryResponseTime(s, pattern.RPattern, 1, 1); ok {
		t.Error("overloaded job reported schedulable")
	}
	if SchedulableRPatternAnalytic(s, pattern.RPattern, timeu.Second) {
		t.Error("overloaded set reported schedulable")
	}
}

func TestAnalyticAgreesOnPaperSets(t *testing.T) {
	sets := []*task.Set{
		task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2)),
		task.NewSet(task.New(0, 5, 2.5, 2, 2, 4), task.New(1, 4, 4, 2, 2, 4)),
		task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2)),
	}
	for i, s := range sets {
		an := SchedulableRPatternAnalytic(s, pattern.RPattern, 10*timeu.Second)
		si := SchedulableRPattern(s, pattern.RPattern, 10*timeu.Second)
		if an != si {
			t.Errorf("set %d: analytic %v != simulated %v", i, an, si)
		}
	}
}

// The core safety property: the analytic test never accepts a set the
// exact synchronous simulation rejects.
func TestAnalyticNeverUnsafe(t *testing.T) {
	f := func(p1, p2, p3, c1, c2, c3, k1, k2, k3 uint8) bool {
		mkTask := func(id int, pr, cr, kr uint8) task.Task {
			period := timeu.Time(pr%5+1) * 5 * timeu.Millisecond
			k := int(kr%5) + 2
			m := int(cr)%(k-1) + 1
			wcet := timeu.Time(cr%6+1) * period / 8
			if wcet < 1 {
				wcet = 1
			}
			return task.Task{ID: id, Period: period, Deadline: period, WCET: wcet, M: m, K: k}
		}
		s := task.NewSet(mkTask(0, p1, c1, k1), mkTask(1, p2, c2, k2), mkTask(2, p3, c3, k3))
		if s.Validate() != nil {
			return true
		}
		const cap = 5 * timeu.Second
		an := SchedulableRPatternAnalytic(s, pattern.RPattern, cap)
		if !an {
			return true // conservative rejection is always fine
		}
		return SchedulableRPattern(s, pattern.RPattern, cap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMKUtilizationBound(t *testing.T) {
	ok := task.NewSet(task.New(0, 10, 10, 3, 2, 3))
	if !MKUtilizationBound(ok) {
		t.Error("light set rejected")
	}
	heavy := task.NewSet(
		task.New(0, 10, 10, 8, 3, 4),
		task.New(1, 10, 10, 8, 3, 4),
	)
	if MKUtilizationBound(heavy) {
		t.Error("overloaded set accepted")
	}
}
