package rta

import (
	"testing"

	"repro/internal/task"
	"repro/internal/timeu"
)

// A single light task is trivially schedulable under DBP and the walk
// must prove it with a cycle of length 1 starting immediately: every
// hyperperiod ends in the all-effective state.
func TestDBPExactTrivial(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 4))
	v := DBPExact(s, DBPConfig{})
	if !v.Schedulable || !v.Exact {
		t.Fatalf("trivial set not proven schedulable: %+v", v)
	}
	if v.Transient != 0 || v.Cycle != 1 {
		t.Errorf("expected immediate length-1 cycle, got transient=%d cycle=%d", v.Transient, v.Cycle)
	}
	if v.ViolationTask != -1 {
		t.Errorf("ViolationTask = %d, want -1", v.ViolationTask)
	}
}

// Two tasks that each need the whole processor cannot both hold m == k;
// the walk must refute with an exact verdict and name a culprit.
func TestDBPExactOverload(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 8, 2, 2), task.New(1, 10, 10, 8, 2, 2))
	v := DBPExact(s, DBPConfig{})
	if v.Schedulable {
		t.Fatalf("overloaded hard set declared schedulable: %+v", v)
	}
	if !v.Exact {
		t.Errorf("a found violation is always exact: %+v", v)
	}
	if v.ViolationTask < 0 || v.ViolationIndex < 1 {
		t.Errorf("violation not attributed: %+v", v)
	}
}

// The same overload becomes feasible once the (m,k) constraints slacken:
// DBP alternates the distance-1 promotions so each task meets 1-in-2.
func TestDBPExactDegradedFeasible(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 8, 1, 2), task.New(1, 10, 10, 8, 1, 2))
	v := DBPExact(s, DBPConfig{})
	if !v.Schedulable || !v.Exact {
		t.Fatalf("1-in-2 overload share should be DBP-schedulable: %+v", v)
	}
	if v.Cycle < 1 {
		t.Errorf("exact schedulable verdict must report a cycle: %+v", v)
	}
}

// Goossens' central point: the verdict depends on the initial
// k-sequences, not just the task parameters. This set is schedulable
// from the fresh all-effective start but a hostile seed — every window
// already at its miss budget — pushes both tasks to distance 1
// simultaneously and one of them must break.
func TestDBPExactInitSensitivity(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 8, 1, 2), task.New(1, 10, 10, 8, 1, 2))
	fresh := DBPExact(s, DBPConfig{})
	if !fresh.Schedulable || !fresh.Exact {
		t.Fatalf("fresh start should be schedulable: %+v", fresh)
	}
	hostile := DBPExact(s, DBPConfig{Init: [][]bool{{true, false}, {true, false}}})
	if hostile.Schedulable {
		t.Fatalf("hostile seed (both windows one miss from violation) should refute: %+v", hostile)
	}
	if !hostile.Exact {
		t.Errorf("refutation must be exact: %+v", hostile)
	}
}

// With θ postponement the spare runs backup copies for distance-1 jobs;
// in the fault-free walk the main always completes first and cancels the
// backup, so backups must never change the verdict — only the load they
// would have imposed is modeled, and mains still own the primary.
func TestDBPExactThetaBackupsPreserveVerdict(t *testing.T) {
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	plain := DBPExact(s, DBPConfig{})
	theta := DBPExact(s, DBPConfig{Theta: []timeu.Time{timeu.FromMillis(1), timeu.FromMillis(4)}})
	if plain.Schedulable != theta.Schedulable {
		t.Fatalf("backup copies flipped the fault-free verdict: plain=%+v theta=%+v", plain, theta)
	}
	if !theta.Exact {
		t.Errorf("theta walk should still close a cycle: %+v", theta)
	}
}

// Nonzero offsets disable cycle detection; the walk degrades to a
// bounded-horizon check and must say so via Exact=false (when it finds
// no violation).
func TestDBPExactOffsetsInexact(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 4))
	s.Tasks[0].Offset = timeu.FromMillis(1)
	v := DBPExact(s, DBPConfig{MaxHyperperiods: 4})
	if !v.Schedulable {
		t.Fatalf("light offset set reported violation: %+v", v)
	}
	if v.Exact {
		t.Errorf("offset walk cannot be exact without boundary states: %+v", v)
	}
}

// A saturated hyperperiod (co-prime ms-scale periods under a tiny cap)
// likewise forces the bounded-horizon fallback.
func TestDBPExactSaturatedCapInexact(t *testing.T) {
	s := task.NewSet(task.New(0, 7, 7, 1, 1, 2), task.New(1, 11, 11, 1, 1, 2))
	v := DBPExact(s, DBPConfig{Cap: timeu.FromMillis(20), MaxHyperperiods: 3})
	if !v.Schedulable {
		t.Fatalf("light co-prime set reported violation: %+v", v)
	}
	if v.Exact {
		t.Errorf("saturated-cap walk must not claim exactness: %+v", v)
	}
}

// The walk is deterministic: same inputs, same verdict, byte for byte.
func TestDBPExactDeterministic(t *testing.T) {
	s := task.NewSet(
		task.New(0, 5, 4, 3, 2, 4),
		task.New(1, 10, 10, 3, 1, 2),
		task.New(2, 20, 15, 4, 1, 3),
	)
	cfg := DBPConfig{Init: [][]bool{{false}, nil, {true, false, true}}}
	a := DBPExact(s, cfg)
	for i := 0; i < 5; i++ {
		if b := DBPExact(s, cfg); b != a {
			t.Fatalf("verdict drifted on rerun %d: %+v vs %+v", i, b, a)
		}
	}
}
