package rta

import (
	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

// This file provides the *analytical* counterpart to SchedulableRPattern:
// a pattern-aware response-time analysis in the spirit of Quan & Hu's
// enhanced fixed-priority (m,k) analysis [13]. Instead of simulating the
// synchronous mandatory schedule, it bounds each mandatory job's response
// time with a busy-period fixed point whose interference term counts only
// the *mandatory* jobs of higher-priority tasks under the static pattern.
// It is exact for the synchronous release case it analyzes (which is the
// critical instant per the paper's Theorem 1 shifting argument), and the
// package tests cross-validate it against the simulation-based test.

// MandatoryDemand returns the cumulative WCET of task t's mandatory jobs
// (per the pattern) released in [0, x) — the pattern-aware request-bound
// function RBF_t(x).
func MandatoryDemand(t task.Task, kind pattern.Kind, x timeu.Time) timeu.Time {
	if x <= t.Offset {
		return 0
	}
	span := x - t.Offset
	// Whole pattern periods of k jobs contribute m executions each.
	patternSpan := timeu.Time(t.K) * t.Period
	whole := span / patternSpan
	demand := whole * timeu.Time(t.M) * t.WCET
	// Remaining partial window: count mandatory jobs one by one.
	rem := span % patternSpan
	jobs := int(timeu.CeilDiv(rem, t.Period)) // releases in [0, rem)
	base := int(whole) * t.K
	for j := 1; j <= jobs; j++ {
		if pattern.Mandatory(kind, base+j, t.M, t.K) {
			demand += t.WCET
		}
	}
	return demand
}

// mandatoryHigherDemand sums MandatoryDemand over tasks with priority
// above level i.
func mandatoryHigherDemand(s *task.Set, kind pattern.Kind, i int, x timeu.Time) timeu.Time {
	var d timeu.Time
	for k := 0; k < i; k++ {
		d += MandatoryDemand(s.Tasks[k], kind, x)
	}
	return d
}

// MandatoryResponseTime bounds the response time of the j-th job of task
// i in the synchronous mandatory-only schedule under the static pattern,
// via the level-i busy-period fixed point
//
//	F = demand_i(jobs 1..j) + Σ_{k<i} RBF_k(F)
//
// solved for the completion time F of job j; the response time is
// F − r_ij. Returns (response, true) on convergence within the deadline
// horizon, or (last iterate, false) if the job provably misses.
func MandatoryResponseTime(s *task.Set, kind pattern.Kind, i, j int) (timeu.Time, bool) {
	t := s.Tasks[i]
	// Own demand: mandatory jobs of task i among 1..j (job j included).
	var own timeu.Time
	for q := 1; q <= j; q++ {
		if pattern.Mandatory(kind, q, t.M, t.K) {
			own += t.WCET
		}
	}
	r := t.Release(j)
	dl := t.AbsDeadline(j)
	// Fixed point starting at own demand.
	f := own
	for {
		next := own + mandatoryHigherDemand(s, kind, i, f)
		if next == f {
			break
		}
		if next > dl {
			return next - r, false
		}
		f = next
	}
	if f <= r {
		// Completed before its own release is impossible; the fixed
		// point counts all earlier jobs, so f > r whenever job j is
		// mandatory. A non-mandatory query returns trivially.
		return 0, true
	}
	return f - r, f <= dl
}

// SchedulableRPatternAnalytic is the analytical sufficient-and-exact (for
// synchronous release) schedulability test: every mandatory job of every
// task within the level-i (m,k)-hyperperiod meets its deadline, with
// response times bounded by MandatoryResponseTime. Levels whose
// hyperperiod saturates cap are checked over [0, cap) only (same caveat
// as the simulation test).
//
// Limitation (documented, matching the busy-period formulation): the
// analysis assumes the level-i busy period does not extend across idle
// time in a way the fixed point misses; because the fixed point includes
// the full demand prefix up to each job, the bound is safe for the
// deeply-red patterns used here, and the property tests cross-validate it
// against the simulation test on random workloads.
func SchedulableRPatternAnalytic(s *task.Set, kind pattern.Kind, cap timeu.Time) bool {
	for i, t := range s.Tasks {
		horizon := s.MKHyperperiodLevel(i, cap)
		for j := 1; t.Release(j) < horizon; j++ {
			if !pattern.Mandatory(kind, j, t.M, t.K) {
				continue
			}
			if _, ok := MandatoryResponseTime(s, kind, i, j); !ok {
				return false
			}
		}
	}
	return true
}

// MKUtilizationBound is the trivial necessary condition: the total
// mandatory utilization Σ mi·Ci/(ki·Pi) of a feasible set cannot exceed
// 1 per processor. Useful as a cheap pre-filter before the exact tests.
func MKUtilizationBound(s *task.Set) bool {
	return s.MKUtilization() <= 1.0
}
