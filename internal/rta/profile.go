package rta

import (
	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Profile summarizes the synchronous mandatory-only FP schedule over one
// (m,k)-hyperperiod — the Theorem-1 schedule — in the aggregate terms
// the analytical twin's closed-form energy model consumes. It is the
// recording counterpart of the boolean SchedulableRPattern filter:
// same mandIter stream, same FP walk, but it keeps what the filter
// discards (busy time, idle-gap lengths, per-task job counts and
// response times) and never exits early, so an unschedulable set still
// yields a complete profile with Schedulable=false.
//
// This is deliberately a separate walk from simulateFP: the filter is a
// //mklint:hotpath function on the sweep's candidate-rejection path and
// must stay allocation-light, while the profile is computed once per set
// and memoized in the analysis LRU.
type Profile struct {
	// Horizon is the profiled window: the (m,k)-hyperperiod, saturated
	// at the cap passed to MandatoryProfile.
	Horizon timeu.Time
	// Busy is the total mandatory execution demand released in
	// [0, Horizon): Σ_i Count[i]·Ci. When Horizon is an exact
	// (m,k)-hyperperiod (not saturated at the cap) the constrained-
	// deadline synchronous schedule drains within the window when
	// schedulable, so Busy + ΣGaps == Horizon; a saturated horizon can
	// cut through a busy interval, leaving Busy + ΣGaps slightly above
	// Horizon as the walk lets the released jobs finish.
	Busy timeu.Time
	// Gaps are the idle intervals of the mandatory-only schedule, in
	// order. The twin splits them into sleepable (≥ the DPD break-even
	// time) and idle remainder.
	Gaps []timeu.Time
	// Count is the number of mandatory jobs of each task in the window.
	Count []int
	// MaxResponse is each task's worst observed mandatory-job response
	// time in the walk (0 for tasks with no mandatory job in the
	// window). Under the R-pattern premise this bounds the paper's R̃i
	// used by the θ/Yi overlap terms.
	MaxResponse []timeu.Time
	// Schedulable reports whether every mandatory job met its deadline —
	// identical to SchedulableRPattern over the same horizon.
	Schedulable bool
}

// MandatoryProfile runs the recording walk over the synchronous
// mandatory-only schedule of s under the given static pattern, with the
// hyperperiod saturated at cap (same convention as SchedulableRPattern).
func MandatoryProfile(s *task.Set, kind pattern.Kind, cap timeu.Time) Profile {
	p := Profile{
		Count:       make([]int, s.N()),
		MaxResponse: make([]timeu.Time, s.N()),
		Schedulable: true,
	}
	p.Horizon = s.MKHyperperiod(cap)
	if p.Horizon <= 0 {
		p.Schedulable = false
		return p
	}
	var it mandIter
	it.init(s, kind, p.Horizon)

	type active struct {
		j         MandatoryJob
		remaining timeu.Time
	}
	var ready []active
	insert := func(a active) {
		pos := len(ready)
		for pos > 0 {
			q := ready[pos-1]
			if q.j.TaskID < a.j.TaskID || (q.j.TaskID == a.j.TaskID && q.j.Index < a.j.Index) {
				break
			}
			pos--
		}
		ready = append(ready, active{})
		copy(ready[pos+1:], ready[pos:])
		ready[pos] = a
	}

	now := timeu.Time(0)
	pend, havePend := it.next()
	for havePend || len(ready) > 0 {
		if len(ready) == 0 {
			if !havePend {
				break
			}
			if pend.Release > now {
				p.Gaps = append(p.Gaps, pend.Release-now)
				now = pend.Release
			}
		}
		for havePend && pend.Release <= now {
			p.Count[pend.TaskID]++
			p.Busy += pend.WCET
			insert(active{j: pend, remaining: pend.WCET})
			pend, havePend = it.next()
		}
		if len(ready) == 0 {
			continue
		}
		cur := &ready[0]
		until := now + cur.remaining
		if havePend && pend.Release < until {
			until = pend.Release
		}
		cur.remaining -= until - now
		now = until
		if cur.remaining == 0 {
			if now > cur.j.Deadline {
				p.Schedulable = false
			}
			if resp := now - cur.j.Release; resp > p.MaxResponse[cur.j.TaskID] {
				p.MaxResponse[cur.j.TaskID] = resp
			}
			ready = ready[1:]
		}
	}
	if now < p.Horizon {
		p.Gaps = append(p.Gaps, p.Horizon-now)
	}
	return p
}
