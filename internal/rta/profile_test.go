package rta

import (
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

// The paper's §III example: both tasks' first jobs are mandatory, the
// R-pattern schedule over the (m,k)-hyperperiod (20ms) is known by hand.
func TestMandatoryProfilePaperExample(t *testing.T) {
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	p := MandatoryProfile(s, pattern.RPattern, 10*timeu.Second)
	if p.Horizon != ms(20) {
		t.Fatalf("horizon %v, want 20ms", p.Horizon)
	}
	// τ1: jobs 1,2 of every 4 mandatory → 2 per pattern period (20ms).
	// τ2: job 1 of every 2 mandatory → 1 per pattern period (20ms).
	if p.Count[0] != 2 || p.Count[1] != 1 {
		t.Errorf("counts %v, want [2 1]", p.Count)
	}
	if want := ms(2*3 + 1*3); p.Busy != want {
		t.Errorf("busy %v, want %v", p.Busy, want)
	}
	if !p.Schedulable {
		t.Error("paper set must be R-pattern schedulable")
	}
	// Busy + idle gaps tile the hyperperiod exactly.
	total := p.Busy
	for _, g := range p.Gaps {
		total += g
	}
	if total != p.Horizon {
		t.Errorf("busy+gaps = %v, want horizon %v", total, p.Horizon)
	}
	// τ1's first job runs [0,3): response 3ms. τ2's first job preempted
	// until 3, then [3,6) — but job 2 of τ1 releases at 5 and is
	// mandatory, so τ2 finishes after it: the walk records the truth.
	if p.MaxResponse[0] != ms(3) {
		t.Errorf("τ1 max response %v, want 3ms", p.MaxResponse[0])
	}
}

// Property: the recording walk and the boolean filter are the same
// schedule — identical verdicts, demand identical to the RBF at the
// horizon, and (for schedulable constrained-deadline sets) busy+gaps
// tiling the horizon.
func TestMandatoryProfileMatchesFilter(t *testing.T) {
	f := func(p1, p2, p3, c1, c2, c3, k1, k2, k3 uint8) bool {
		mkTask := func(id int, pr, cr, kr uint8) task.Task {
			period := timeu.Time(pr%5+1) * 5 * timeu.Millisecond
			k := int(kr%5) + 2
			m := int(cr)%(k-1) + 1
			wcet := timeu.Time(cr%6+1) * period / 8
			if wcet < 1 {
				wcet = 1
			}
			return task.Task{ID: id, Period: period, Deadline: period, WCET: wcet, M: m, K: k}
		}
		s := task.NewSet(mkTask(0, p1, c1, k1), mkTask(1, p2, c2, k2), mkTask(2, p3, c3, k3))
		if s.Validate() != nil {
			return true
		}
		const cap = 5 * timeu.Second
		prof := MandatoryProfile(s, pattern.RPattern, cap)
		if prof.Schedulable != SchedulableRPattern(s, pattern.RPattern, cap) {
			return false
		}
		var demand, count timeu.Time
		for i, t := range s.Tasks {
			demand += MandatoryDemand(t, pattern.RPattern, prof.Horizon)
			count += timeu.Time(prof.Count[i]) * t.WCET
		}
		if prof.Busy != demand || count != demand {
			return false
		}
		// The tiling identity needs an exact hyperperiod: a horizon
		// saturated at the cap can cut through a busy interval, and the
		// walk lets released jobs drain past it.
		exact := true
		for _, t := range s.Tasks {
			if prof.Horizon%(timeu.Time(t.K)*t.Period) != 0 {
				exact = false
			}
		}
		if prof.Schedulable && exact {
			total := prof.Busy
			for _, g := range prof.Gaps {
				total += g
			}
			if total != prof.Horizon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
