package rta

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/task"
	"repro/internal/timeu"
)

func ms(v float64) timeu.Time { return timeu.FromMillis(v) }

// The paper's §III example: tau1=(5,4,3,2,4), tau2=(10,10,3,1,2) gives
// Y1 = Y2 = 1.
func TestPromotionTimesPaperExample(t *testing.T) {
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	rs, err := ResponseTimes(s)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] != ms(3) {
		t.Errorf("R1 = %v, want 3ms", rs[0])
	}
	if rs[1] != ms(9) {
		t.Errorf("R2 = %v, want 9ms", rs[1])
	}
	ys, err := PromotionTimes(s)
	if err != nil {
		t.Fatal(err)
	}
	if ys[0] != ms(1) || ys[1] != ms(1) {
		t.Errorf("Y = %v,%v, want 1ms,1ms", ys[0], ys[1])
	}
}

func TestResponseTimeConverges(t *testing.T) {
	// Classic example: C=(1,2,3), P=(4,8,16) -> R = 1, 3, 9... compute:
	// R3 = 3 + ceil(R/4)*1 + ceil(R/8)*2; R=3: 3+1+2=6; R=6: 3+2+2=7;
	// R=7: 3+2+2=7 converged.
	s := task.NewSet(task.New(0, 4, 4, 1, 1, 2), task.New(1, 8, 8, 2, 1, 2), task.New(2, 16, 16, 3, 1, 2))
	rs, err := ResponseTimes(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []timeu.Time{ms(1), ms(3), ms(7)}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("R%d = %v, want %v", i+1, rs[i], want[i])
		}
	}
}

func TestResponseTimeUnschedulable(t *testing.T) {
	// Two tasks each needing 60% of the processor.
	s := task.NewSet(task.New(0, 10, 10, 6, 1, 2), task.New(1, 10, 10, 6, 1, 2))
	_, err := ResponseTime(s, 1)
	if err == nil {
		t.Fatal("expected unschedulability")
	}
	var ue *ErrUnschedulable
	if !errors.As(err, &ue) {
		t.Fatalf("error type = %T", err)
	}
	if ue.TaskID != 1 {
		t.Errorf("TaskID = %d", ue.TaskID)
	}
	if SchedulableRTA(s) {
		t.Error("SchedulableRTA must be false")
	}
}

func TestMandatoryJobsEnumeration(t *testing.T) {
	// Fig. 5 set: tau1=(10,10,3,2,3) -> jobs 1,2 mandatory per 3;
	// tau2=(15,15,8,1,2) -> job 1 mandatory per 2. Horizon 30ms.
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	jobs := MandatoryJobs(s, pattern.RPattern, ms(30))
	// Expected: J11(r=0), J'21(r=0), J12(r=10). Sorted by release/priority.
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs: %+v", len(jobs), jobs)
	}
	if jobs[0].TaskID != 0 || jobs[0].Release != 0 {
		t.Errorf("jobs[0] = %+v", jobs[0])
	}
	if jobs[1].TaskID != 1 || jobs[1].Release != 0 {
		t.Errorf("jobs[1] = %+v", jobs[1])
	}
	if jobs[2].TaskID != 0 || jobs[2].Release != ms(10) || jobs[2].Index != 2 {
		t.Errorf("jobs[2] = %+v", jobs[2])
	}
}

func TestSchedulableRPattern(t *testing.T) {
	// The Fig. 5 set is R-pattern schedulable (all backups meet deadlines
	// in Fig. 5(a)): total mandatory demand fits.
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))
	if !SchedulableRPattern(s, pattern.RPattern, ms(100000)) {
		t.Error("Fig. 5 set must be R-pattern schedulable")
	}
	// Note: this set is NOT fully schedulable (U = 0.3 + 8/15 = 0.83,
	// R2 = 8+3 = 11 < 15 fine actually). Construct an unschedulable
	// mandatory load: two tasks with heavy mandatory demand.
	bad := task.NewSet(task.New(0, 10, 10, 8, 1, 2), task.New(1, 10, 10, 8, 1, 2))
	if SchedulableRPattern(bad, pattern.RPattern, ms(100000)) {
		t.Error("overloaded mandatory pattern must fail")
	}
}

func TestSchedulableRPatternTight(t *testing.T) {
	// A set that is R-pattern schedulable but not fully schedulable:
	// three tasks with C=P/2 and (1,2) constraints: mandatory-only load
	// is 0.75 with alternating releases.
	s := task.NewSet(task.New(0, 10, 10, 5, 1, 2), task.New(1, 20, 20, 10, 1, 2))
	if SchedulableRTA(s) {
		t.Skip("set unexpectedly fully schedulable; test premise broken")
	}
	if !SchedulableRPattern(s, pattern.RPattern, ms(100000)) {
		t.Error("mandatory-only load must be schedulable")
	}
}

func TestSchedulableRPatternEmptyHorizon(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 2, 3))
	if !SchedulableRPattern(s, pattern.RPattern, ms(100000)) {
		t.Error("single light task must pass")
	}
}

// Property: response times are monotone in WCET and at least Ci.
func TestResponseTimeProperties(t *testing.T) {
	f := func(c1, c2 uint8) bool {
		w1 := timeu.Time(c1%4) + 1
		w2 := timeu.Time(c2%8) + 1
		s := task.NewSet(
			task.Task{ID: 0, Period: 10, Deadline: 10, WCET: w1, M: 1, K: 2},
			task.Task{ID: 1, Period: 40, Deadline: 40, WCET: w2, M: 1, K: 2},
		)
		rs, err := ResponseTimes(s)
		if err != nil {
			return true // unschedulable is acceptable here
		}
		if rs[0] != w1 {
			return false
		}
		return rs[1] >= w2 && rs[1] >= rs[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a set that passes full RTA always passes the R-pattern test
// (mandatory jobs are a subset of all jobs).
func TestRTAImpliesRPattern(t *testing.T) {
	f := func(c1, c2, c3 uint8, k1, k2, k3 uint8) bool {
		mk := func(kr uint8) (int, int) {
			k := int(kr%5) + 2
			return k - 1, k
		}
		m1, kk1 := mk(k1)
		m2, kk2 := mk(k2)
		m3, kk3 := mk(k3)
		s := task.NewSet(
			task.Task{ID: 0, Period: 5000, Deadline: 5000, WCET: timeu.Time(c1%15)*100 + 100, M: m1, K: kk1},
			task.Task{ID: 1, Period: 8000, Deadline: 8000, WCET: timeu.Time(c2%20)*100 + 100, M: m2, K: kk2},
			task.Task{ID: 2, Period: 20000, Deadline: 20000, WCET: timeu.Time(c3%40)*100 + 100, M: m3, K: kk3},
		)
		if !SchedulableRTA(s) {
			return true
		}
		return SchedulableRPattern(s, pattern.RPattern, timeu.Time(10_000_000))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
