package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/timeu"
)

func fig1Run(t *testing.T, a core.Approach) (*task.Set, *sim.Result) {
	t.Helper()
	s := task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
	eng, err := sim.New(s, core.MustNew(a, core.Options{}), sim.Config{
		Horizon:     timeu.FromMillis(20),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestGanttRender(t *testing.T) {
	_, r := fig1Run(t, core.DP)
	out := Gantt{}.Render(r)
	if !strings.Contains(out, "primary") || !strings.Contains(out, "spare") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("missing task glyphs:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Errorf("expected a cancellation marker in the DP schedule:\n%s", out)
	}
	if !strings.Contains(out, "MKSS-DP") {
		t.Errorf("missing policy name:\n%s", out)
	}
}

func TestGanttWidthCap(t *testing.T) {
	_, r := fig1Run(t, core.ST)
	out := Gantt{Width: 10}.Render(r)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "primary") && len(line) > 8+1+10+1 {
			t.Errorf("lane too wide: %q", line)
		}
	}
}

func TestGanttExplicitQuantum(t *testing.T) {
	_, r := fig1Run(t, core.ST)
	out := Gantt{Quantum: timeu.FromMillis(2)}.Render(r)
	if !strings.Contains(out, "quantum 2ms") {
		t.Errorf("quantum not honored:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	_, r := fig1Run(t, core.DP)
	out := Summarize(r)
	// Figure 1: main J1,1 on the primary at [0,3).
	if !strings.Contains(out, "[0ms,3ms) primary J1,1") {
		t.Errorf("missing J1,1 segment:\n%s", out)
	}
	// Backup J'1,1 on the spare, canceled at 3.
	if !strings.Contains(out, "J'1,1") || !strings.Contains(out, "(canceled)") {
		t.Errorf("missing canceled backup:\n%s", out)
	}
}

func TestCheckCleanOnPaperSchedules(t *testing.T) {
	for _, a := range core.Approaches() {
		s, r := fig1Run(t, a)
		if problems := Check(s, r); len(problems) != 0 {
			t.Errorf("%v: trace problems: %v", a, problems)
		}
	}
}

func TestCheckCatchesOverlap(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 3, 1, 2))
	r := &sim.Result{
		Horizon: timeu.FromMillis(10),
		Trace: []sim.Segment{
			{Proc: 0, TaskID: 0, Index: 1, Start: 0, End: timeu.FromMillis(3)},
			{Proc: 0, TaskID: 0, Index: 1, Start: timeu.FromMillis(2), End: timeu.FromMillis(3)},
		},
	}
	problems := Check(s, r)
	if len(problems) == 0 {
		t.Error("overlap not detected")
	}
}

func TestCheckCatchesDeadlineOverrun(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 5, 3, 1, 2))
	r := &sim.Result{
		Horizon: timeu.FromMillis(10),
		Trace: []sim.Segment{
			{Proc: 0, TaskID: 0, Index: 1, Start: timeu.FromMillis(4), End: timeu.FromMillis(6)},
		},
	}
	problems := Check(s, r)
	if len(problems) == 0 {
		t.Error("deadline overrun not detected")
	}
}

func TestCheckCatchesWCETOverrun(t *testing.T) {
	s := task.NewSet(task.New(0, 10, 10, 2, 1, 2))
	r := &sim.Result{
		Horizon: timeu.FromMillis(10),
		Trace: []sim.Segment{
			{Proc: 0, TaskID: 0, Index: 1, Start: 0, End: timeu.FromMillis(1)},
			{Proc: 1, TaskID: 0, Index: 1, Start: timeu.FromMillis(2), End: timeu.FromMillis(4)},
		},
	}
	problems := Check(s, r)
	if len(problems) == 0 {
		t.Error("WCET overrun not detected")
	}
}

func TestTaskGlyphs(t *testing.T) {
	if taskGlyph(0) != '1' || taskGlyph(8) != '9' {
		t.Error("digit glyphs wrong")
	}
	if taskGlyph(9) != 'a' || taskGlyph(34) != 'z' {
		t.Error("letter glyphs wrong")
	}
	if taskGlyph(35) != '#' {
		t.Error("overflow glyph wrong")
	}
}
