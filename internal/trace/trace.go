// Package trace renders simulation traces as ASCII Gantt charts (the
// format of the paper's Figures 1–5) and provides trace-level
// verification helpers used by the integration tests: deadline compliance
// and execution-interval sanity.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Gantt renders the segments of a run as one ASCII lane per processor.
// Each column is quantum wide (default: the GCD of all segment bounds,
// floored at 100 µs). Executing segments print the task number, canceled
// segments print 'x' on their final column, idle prints '.', and a lane
// header labels the processor, e.g.:
//
//	primary |111222...111|
//	spare   |..11x...222.|
type Gantt struct {
	// Quantum is the column width; zero picks one automatically.
	Quantum timeu.Time
	// Width caps the number of columns (0 = unlimited).
	Width int
}

// Render draws the trace of r.
func (g Gantt) Render(r *sim.Result) string {
	quantum := g.Quantum
	if quantum <= 0 {
		quantum = autoQuantum(r)
	}
	cols := int(r.Horizon / quantum)
	if r.Horizon%quantum != 0 {
		cols++
	}
	if g.Width > 0 && cols > g.Width {
		cols = g.Width
	}
	lanes := make([][]byte, sim.NumProcs)
	for p := range lanes {
		lanes[p] = []byte(strings.Repeat(".", cols))
	}
	for _, seg := range r.Trace {
		lo := int(seg.Start / quantum)
		hi := int(seg.End / quantum)
		if seg.End%quantum != 0 {
			hi++
		}
		for c := lo; c < hi && c < cols; c++ {
			lanes[seg.Proc][c] = taskGlyph(seg.TaskID)
		}
		if seg.Canceled && hi-1 < cols && hi-1 >= 0 {
			lanes[seg.Proc][hi-1] = 'x'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — horizon %v, quantum %v\n", r.Policy, r.Horizon, quantum)
	names := [sim.NumProcs]string{"primary", "spare"}
	for p := range lanes {
		fmt.Fprintf(&b, "%-8s|%s|\n", names[p], lanes[p])
	}
	b.WriteString(axis(cols, quantum))
	return b.String()
}

// taskGlyph maps task IDs to printable glyphs: 1-9 then a-z then '#'.
func taskGlyph(id int) byte {
	switch {
	case id < 9:
		return byte('1' + id)
	case id < 9+26:
		return byte('a' + id - 9)
	default:
		return '#'
	}
}

// axis renders a sparse "column:time" tick line under the lanes.
func axis(cols int, quantum timeu.Time) string {
	step := cols / 8
	if step < 1 {
		step = 1
	}
	var marks []string
	for c := 0; c <= cols; c += step {
		t := timeu.Time(c) * quantum
		marks = append(marks, fmt.Sprintf("%d:%v", c, t))
	}
	return "ticks: " + strings.Join(marks, "  ") + "\n"
}

// autoQuantum picks the largest quantum that aligns every segment
// boundary, floored at 100 µs and capped at 1 ms for readability.
func autoQuantum(r *sim.Result) timeu.Time {
	q := timeu.Time(0)
	for _, seg := range r.Trace {
		q = timeu.GCD(q, seg.Start)
		q = timeu.GCD(q, seg.End)
	}
	q = timeu.GCD(q, r.Horizon)
	if q <= 0 {
		return timeu.Millisecond
	}
	if q < 100*timeu.Microsecond {
		q = 100 * timeu.Microsecond
	}
	if q > timeu.Millisecond {
		q = timeu.Millisecond
	}
	return q
}

// Summarize prints one line per segment, ordered by start time then
// processor — a compact textual alternative to the Gantt chart.
func Summarize(r *sim.Result) string {
	segs := append([]sim.Segment(nil), r.Trace...)
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		return segs[i].Proc < segs[j].Proc
	})
	names := [sim.NumProcs]string{"primary", "spare"}
	var b strings.Builder
	for _, s := range segs {
		prime := ""
		if s.Copy == task.Backup {
			prime = "'"
		}
		note := ""
		if s.Canceled {
			note = " (canceled)"
		}
		fmt.Fprintf(&b, "[%v,%v) %-7s J%s%d,%d %s%s\n",
			s.Start, s.End, names[s.Proc], prime, s.TaskID+1, s.Index, s.Class, note)
	}
	return b.String()
}

// Check verifies structural trace invariants and returns the violations
// found (empty = clean):
//   - segments on one processor never overlap;
//   - no segment runs outside [release, deadline] of its job;
//   - total executed time per job copy never exceeds its WCET.
func Check(s *task.Set, r *sim.Result) []string {
	var problems []string
	type copyKey struct {
		taskID, index int
		copyKind      task.Copy
	}
	// Indexed by processor (not a map): problems must list in stable
	// processor order run after run.
	perProc := make([][]sim.Segment, sim.NumProcs)
	for _, seg := range r.Trace {
		perProc[seg.Proc] = append(perProc[seg.Proc], seg)
	}
	for p, segs := range perProc {
		sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
		for i := 1; i < len(segs); i++ {
			if segs[i].Start < segs[i-1].End {
				problems = append(problems, fmt.Sprintf(
					"proc %d: segments overlap at %v", p, segs[i].Start))
			}
		}
	}
	exec := map[copyKey]timeu.Time{}
	for _, seg := range r.Trace {
		if seg.End <= seg.Start {
			problems = append(problems, fmt.Sprintf("empty segment %+v", seg))
			continue
		}
		t := s.Tasks[seg.TaskID]
		release := t.Release(seg.Index)
		deadline := t.AbsDeadline(seg.Index)
		if seg.Start < release {
			problems = append(problems, fmt.Sprintf(
				"J%d,%d runs at %v before nominal release %v", seg.TaskID+1, seg.Index, seg.Start, release))
		}
		if seg.End > deadline {
			problems = append(problems, fmt.Sprintf(
				"J%d,%d runs at %v past deadline %v", seg.TaskID+1, seg.Index, seg.End, deadline))
		}
		k := copyKey{seg.TaskID, seg.Index, seg.Copy}
		exec[k] += seg.End - seg.Start
		if exec[k] > t.WCET {
			problems = append(problems, fmt.Sprintf(
				"J%d,%d %v executed %v > WCET %v", seg.TaskID+1, seg.Index, seg.Copy, exec[k], t.WCET))
		}
	}
	return problems
}
