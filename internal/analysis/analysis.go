// Package analysis memoizes the offline products a task set needs before
// simulation: the static (m,k) pattern table (Eq. 1), the RTA response
// times Ri and promotion intervals Yi = Di − Ri (Eq. 2), the θ
// postponement analysis (Defs. 2–5), and the R-pattern schedulability
// verdict of Theorem 1. All of these depend only on the task set and the
// analysis options — not on the fault scenario, power model, or horizon —
// so a sweep that simulates the same set under several approaches and
// scenarios needs each product at most once.
//
// A Products value computes everything lazily (a run of MKSS-ST never
// pays for the θ analysis) and exactly once, and is safe for concurrent
// use by multiple sweep workers. Cache keys Products by a canonical
// fingerprint of the set, so regenerated-but-identical sets (the workload
// generator is deterministic per seed) share one computation.
package analysis

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/pattern"
	"repro/internal/postpone"
	"repro/internal/rta"
	"repro/internal/task"
	"repro/internal/timeu"
)

// Options selects the analysis variant. Two sets with equal fingerprints
// but different Options are distinct cache entries.
type Options struct {
	// Pattern is the static mandatory/optional partition; the paper uses
	// the R-pattern.
	Pattern pattern.Kind
	// HyperperiodCap bounds the θ analysis and the Theorem-1 test horizon.
	// Zero means postpone.DefaultHyperperiodCap.
	HyperperiodCap timeu.Time
}

// cap returns the effective hyperperiod cap.
func (o Options) cap() timeu.Time {
	if o.HyperperiodCap <= 0 {
		return postpone.DefaultHyperperiodCap
	}
	return o.HyperperiodCap
}

// key renders the options half of a cache key.
func (o Options) key() string {
	return strconv.Itoa(int(o.Pattern)) + "/" + strconv.FormatInt(int64(o.cap()), 10)
}

// Fingerprint returns a canonical, collision-free identifier for the
// simulation-relevant content of s: the ordered list of each task's
// period, deadline, WCET, (m,k) parameters and offset. Task names are
// excluded — they never influence scheduling. Two sets fingerprint
// equally iff a simulation cannot tell them apart.
func Fingerprint(s *task.Set) string {
	var b strings.Builder
	b.Grow(32 * s.N())
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if i > 0 {
			b.WriteByte('|')
		}
		writeTime(&b, t.Period)
		b.WriteByte(':')
		writeTime(&b, t.Deadline)
		b.WriteByte(':')
		writeTime(&b, t.WCET)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(t.M))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(t.K))
		b.WriteByte(':')
		writeTime(&b, t.Offset)
	}
	return b.String()
}

func writeTime(b *strings.Builder, t timeu.Time) {
	b.WriteString(strconv.FormatInt(int64(t), 10))
}

// Products holds the lazily computed offline analyses of one task set.
// Every accessor computes its product on first use (guarded by a
// sync.Once, so concurrent workers wait rather than duplicate work) and
// returns shared read-only values afterwards: callers must not mutate the
// returned slices or the postponement Analysis.
type Products struct {
	set  *task.Set
	opts Options

	respOnce  sync.Once
	resp      []timeu.Time
	converged []bool

	promoOnce sync.Once
	promo     []timeu.Time

	postOnce sync.Once
	post     *postpone.Analysis
	postErr  error

	mandOnce  sync.Once
	mandReady atomic.Bool
	mand      [][]bool

	schedOnce   sync.Once
	schedulable bool

	profOnce sync.Once
	prof     rta.Profile

	dbpOnce sync.Once
	dbpV    rta.DBPVerdict
	dbpErr  error
}

// New builds the Products for s without caching. The set is retained by
// reference and must not be mutated afterwards.
func New(s *task.Set, opts Options) *Products {
	return &Products{set: s, opts: opts}
}

// Set returns the task set the products were derived from.
func (p *Products) Set() *task.Set { return p.set }

// Options returns the analysis options the products were derived with.
func (p *Products) Options() Options { return p.opts }

// ResponseTimes returns the memoized RTA response times (with the
// divergence fallback of rta.ResponseTimesSafe) and per-task convergence
// flags. The returned slices are shared; do not mutate.
func (p *Products) ResponseTimes() ([]timeu.Time, []bool) {
	p.respOnce.Do(func() {
		p.resp, p.converged = rta.ResponseTimesSafe(p.set)
	})
	return p.resp, p.converged
}

// PromotionTimes returns the memoized promotion intervals Yi = Di − Ri
// (Eq. 2, with the Y=0 divergence fallback of rta.PromotionTimesSafe).
// The returned slice is shared; do not mutate.
func (p *Products) PromotionTimes() []timeu.Time {
	p.promoOnce.Do(func() {
		rs, conv := p.ResponseTimes()
		p.promo = rta.PromotionFromResponse(p.set, rs, conv)
	})
	return p.promo
}

// Postponement returns the memoized θ analysis (Defs. 2–5), feeding the
// already-computed promotion intervals into postpone.Compute. The
// returned Analysis is shared; do not mutate.
func (p *Products) Postponement() (*postpone.Analysis, error) {
	p.postOnce.Do(func() {
		p.post, p.postErr = postpone.Compute(p.set, postpone.Options{
			Pattern:        p.opts.Pattern,
			HyperperiodCap: p.opts.HyperperiodCap,
			Promotion:      p.PromotionTimes(),
		})
	})
	return p.post, p.postErr
}

// Mandatory reports whether job index (1-based) of task taskID is
// mandatory under the static pattern, via a memoized k-periodic table
// instead of re-evaluating pattern.Mandatory per release.
func (p *Products) Mandatory(taskID, index int) bool {
	// The engine asks this per release, so the fast path must not
	// allocate: a sync.Once closure here would be rebuilt on every call.
	// The atomic flag is published after the table is complete, so a true
	// load guarantees the table below is visible.
	if !p.mandReady.Load() {
		p.buildMandatory()
	}
	row := p.mand[taskID]
	return row[(index-1)%len(row)]
}

// buildMandatory is Mandatory's cold path, entered at most once per
// caller before the ready flag flips.
func (p *Products) buildMandatory() {
	p.mandOnce.Do(func() { //mklint:allow hotprop — once-per-Products cold path; Mandatory's per-release fast path is the atomic load above
		mand := make([][]bool, p.set.N())
		for i := range p.set.Tasks {
			t := &p.set.Tasks[i]
			row := make([]bool, t.K)
			for j := 1; j <= t.K; j++ {
				row[j-1] = pattern.Mandatory(p.opts.Pattern, j, t.M, t.K)
			}
			mand[i] = row
		}
		p.mand = mand
		p.mandReady.Store(true)
	})
}

// Schedulable reports the memoized Theorem-1 verdict: whether the
// mandatory jobs under the static pattern are FP-schedulable over the
// (m,k)-hyperperiod (capped at the options' hyperperiod cap).
func (p *Products) Schedulable() bool {
	p.schedOnce.Do(func() {
		p.schedulable = rta.SchedulableRPattern(p.set, p.opts.Pattern, p.opts.cap())
	})
	return p.schedulable
}

// MandatoryProfile returns the memoized recording walk over the
// Theorem-1 mandatory-only schedule (rta.MandatoryProfile over the
// (m,k)-hyperperiod, saturated at the options' cap): aggregate busy
// time, idle-gap lengths, per-task job counts and worst responses. The
// analytical twin (internal/estimate) composes its closed-form energy
// model from these pieces; memoizing them here means an estimate-heavy
// serving workload pays for the walk once per distinct set, exactly
// like the other offline products. The returned Profile shares its
// slices; do not mutate.
func (p *Products) MandatoryProfile() rta.Profile {
	p.profOnce.Do(func() {
		p.prof = rta.MandatoryProfile(p.set, p.opts.Pattern, p.opts.cap())
	})
	return p.prof
}

// DBPExact returns the memoized exact DBP schedulability verdict
// (rta.DBPExact): the fault-free standby-sparing DBP walk from the fresh
// all-effective start, with backups postponed by the θ analysis. The θ
// computation can fail (divergent RTA, unschedulable mandatory set), in
// which case the error is returned exactly as the MKSS-DBP policy's Init
// would report it. Like the other products the verdict depends only on
// the set and options, so a sweep evaluating the same set under several
// initial k-sequences should call rta.DBPExact directly with its own
// DBPConfig.Init instead.
func (p *Products) DBPExact() (rta.DBPVerdict, error) {
	p.dbpOnce.Do(func() {
		an, err := p.Postponement()
		if err != nil {
			p.dbpErr = err
			return
		}
		p.dbpV = rta.DBPExact(p.set, rta.DBPConfig{Theta: an.Theta, Cap: p.opts.cap()})
	})
	return p.dbpV, p.dbpErr
}
