package analysis

import (
	"container/list"
	"sync"

	"repro/internal/task"
)

// DefaultCacheEntries is the cache capacity when NewCache is given a
// non-positive size. A Figure-6 sweep touches (intervals × sets-per-
// interval) distinct sets — 8×100 with the paper's §V parameters — and
// each idle Products entry is small (the heavy slices are lazy), so the
// default comfortably covers a default sweep without rebuilds.
const DefaultCacheEntries = 1024

// Cache is a size-bounded, concurrency-safe LRU of Products keyed by
// (set fingerprint, options). Sweep workers share one Cache so the same
// generated set simulated under several approaches and fault scenarios
// derives its offline analysis once.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are *entry
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key   string
	prods *Products
}

// NewCache builds a Cache holding at most capacity entries. Zero means
// DefaultCacheEntries; a negative capacity disables memoization — Get
// then builds fresh Products on every call (and counts only misses),
// which is the pre-memoization behavior for benchmarking the cache
// itself.
func NewCache(capacity int) *Cache {
	if capacity == 0 {
		capacity = DefaultCacheEntries
	}
	c := &Cache{capacity: capacity, order: list.New()}
	if capacity > 0 {
		c.entries = make(map[string]*list.Element, capacity)
	}
	return c
}

// Get returns the memoized Products for (s, opts), inserting a fresh lazy
// entry on miss and evicting the least recently used entry beyond
// capacity. Distinct *task.Set values with equal fingerprints share one
// entry (the entry retains the set passed at insertion time). The lookup
// itself is cheap — products are computed lazily outside the cache lock,
// so a miss never stalls other workers on analysis work.
func (c *Cache) Get(s *task.Set, opts Options) *Products {
	if c.capacity < 0 { // memoization disabled
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return New(s, opts)
	}
	key := opts.key() + "#" + Fingerprint(s)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*entry).prods
	}
	c.misses++
	prods := New(s, opts)
	c.entries[key] = c.order.PushFront(&entry{key: key, prods: prods})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
	}
	return prods
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Stats returns a consistent snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
	}
}
