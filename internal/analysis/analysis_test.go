package analysis

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/pattern"
	"repro/internal/postpone"
	"repro/internal/rta"
	"repro/internal/task"
)

func paperSet() *task.Set {
	return task.NewSet(task.New(0, 5, 4, 3, 2, 4), task.New(1, 10, 10, 3, 1, 2))
}

func TestFingerprintCanonical(t *testing.T) {
	a := paperSet()
	b := paperSet()
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("identical sets fingerprint differently:\n%s\n%s", Fingerprint(a), Fingerprint(b))
	}
	// Names never influence scheduling and must not split cache entries.
	named := paperSet()
	named.Tasks[0].Name = "tau1"
	if Fingerprint(named) != Fingerprint(a) {
		t.Errorf("task name changed the fingerprint")
	}
	// Every simulation-relevant field must change it.
	mutations := []func(*task.Set){
		func(s *task.Set) { s.Tasks[0].Period++ },
		func(s *task.Set) { s.Tasks[0].Deadline++ },
		func(s *task.Set) { s.Tasks[0].WCET++ },
		func(s *task.Set) { s.Tasks[0].M-- },
		func(s *task.Set) { s.Tasks[0].K++ },
		func(s *task.Set) { s.Tasks[1].Offset++ },
	}
	for i, mutate := range mutations {
		m := paperSet()
		mutate(m)
		if Fingerprint(m) == Fingerprint(a) {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}

func TestProductsMatchDirectComputation(t *testing.T) {
	s := paperSet()
	p := New(s, Options{})

	wantResp, err := rta.ResponseTimes(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, conv := p.ResponseTimes(); !reflect.DeepEqual(got, wantResp) {
		t.Errorf("ResponseTimes = %v, want %v", got, wantResp)
	} else {
		for i, ok := range conv {
			if !ok {
				t.Errorf("task %d reported diverged on a convergent set", i)
			}
		}
	}
	wantPromo := rta.PromotionTimesSafe(s)
	if got := p.PromotionTimes(); !reflect.DeepEqual(got, wantPromo) {
		t.Errorf("PromotionTimes = %v, want %v", got, wantPromo)
	}
	wantPost, err := postpone.Compute(s, postpone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotPost, err := p.Postponement()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPost.Theta, wantPost.Theta) {
		t.Errorf("Postponement theta = %v, want %v", gotPost.Theta, wantPost.Theta)
	}
	if !p.Schedulable() {
		t.Errorf("paper set reported unschedulable")
	}
	// Mandatory must agree with the pattern predicate, cyclically.
	for _, tk := range s.Tasks {
		for j := 1; j <= 2*tk.K; j++ {
			if got, want := p.Mandatory(tk.ID, j), pattern.Mandatory(pattern.RPattern, j, tk.M, tk.K); got != want {
				t.Fatalf("Mandatory(%d,%d) = %v, want %v", tk.ID, j, got, want)
			}
		}
	}
}

func TestProductsConcurrentAccess(t *testing.T) {
	p := New(paperSet(), Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.PromotionTimes()
			_, _ = p.Postponement()
			_ = p.Schedulable()
			_ = p.Mandatory(0, 3)
		}()
	}
	wg.Wait()
}

func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(2)
	setA := paperSet()
	setB := task.NewSet(task.New(0, 5, 2.5, 2, 2, 4), task.New(1, 4, 4, 2, 2, 4))
	setC := task.NewSet(task.New(0, 10, 10, 3, 2, 3), task.New(1, 15, 15, 8, 1, 2))

	pa := c.Get(setA, Options{})
	if pa2 := c.Get(setA, Options{}); pa2 != pa {
		t.Fatalf("second Get of the same set returned a different Products")
	}
	// A regenerated-but-identical set must hit the same entry.
	if pa3 := c.Get(paperSet(), Options{}); pa3 != pa {
		t.Fatalf("identical regenerated set missed the cache")
	}
	c.Get(setB, Options{})
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses, 0 evictions, 2 entries", st)
	}

	// Capacity 2: inserting C evicts the least recently used entry (A).
	c.Get(setC, Options{})
	st = c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after eviction: stats = %+v, want 1 eviction, 2 entries", st)
	}
	if pb := c.Get(setB, Options{}); pb == nil {
		t.Fatalf("B evicted although more recently used than A")
	}
	if st = c.Stats(); st.Hits != 3 {
		t.Fatalf("B should still be cached, stats = %+v", st)
	}
	if pa4 := c.Get(setA, Options{}); pa4 == pa {
		t.Fatalf("A should have been evicted and rebuilt")
	}
}

func TestCacheDistinguishesOptions(t *testing.T) {
	c := NewCache(0)
	s := paperSet()
	p1 := c.Get(s, Options{})
	p2 := c.Get(s, Options{HyperperiodCap: 123456})
	if p1 == p2 {
		t.Fatalf("different options shared one cache entry")
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(4)
	sets := []*task.Set{
		paperSet(),
		task.NewSet(task.New(0, 5, 2.5, 2, 2, 4), task.New(1, 4, 4, 2, 2, 4)),
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := c.Get(sets[i%len(sets)], Options{})
			_ = p.PromotionTimes()
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (%+v)", st.Entries, st)
	}
}

func TestProductsDBPExact(t *testing.T) {
	s := paperSet()
	p := New(s, Options{})
	got, err := p.DBPExact()
	if err != nil {
		t.Fatal(err)
	}
	an, err := postpone.Compute(s, postpone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rta.DBPExact(s, rta.DBPConfig{Theta: an.Theta, Cap: postpone.DefaultHyperperiodCap})
	if got != want {
		t.Errorf("DBPExact = %+v, want %+v", got, want)
	}
	if !got.Schedulable || !got.Exact {
		t.Errorf("paper set should be exactly DBP-schedulable: %+v", got)
	}
	// Memoized: the second call returns the identical verdict.
	if again, _ := p.DBPExact(); again != got {
		t.Errorf("second DBPExact call drifted: %+v vs %+v", again, got)
	}
}
