// Package lint is a small stdlib-only static-analysis framework for this
// repository. It loads every package of the module with go/parser,
// type-checks it with go/types (module-internal imports resolved from the
// parsed tree, standard-library imports through the source importer), and
// runs a registry of project-specific analyzers that encode the
// reproduction's invariants: simulator determinism, tolerance-safe float
// time arithmetic, context plumbing discipline, hot-path hygiene, error
// handling, and debug-print policing. See cmd/mklint for the CLI and
// DESIGN.md for the rule catalogue.
//
// The framework deliberately avoids golang.org/x/tools: the repo is
// stdlib-only, and the subset of the analysis API the rules need (a typed
// AST per package plus positions) is exactly what go/types already
// provides.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/callgraph"
)

// File is one parsed source file of a loaded package.
type File struct {
	Ast *ast.File
	// Name is the absolute filename, Rel the slash-separated path
	// relative to the module root (the form diagnostics print).
	Name string
	Rel  string
}

// Package is one type-checked package of the module.
type Package struct {
	// ImportPath is the full import path, Rel the slash-separated
	// directory relative to the module root ("" for the root package).
	ImportPath string
	Rel        string
	Dir        string
	Files      []*File
	Types      *types.Package
	Info       *types.Info
}

// Program is the loaded module: every non-test package, parsed and
// type-checked against a single FileSet.
type Program struct {
	Fset     *token.FileSet
	Root     string // absolute module root
	Module   string // module path from go.mod
	Packages []*Package
	byPath   map[string]*Package

	// Lazily computed whole-program facts (see facts.go).
	cg         *callgraph.Graph
	cgPkg      map[*callgraph.Package]*Package
	hotFuncs   map[*types.Func]bool
	hotReach   *callgraph.ReachResult
	blockFacts map[*callgraph.Node]*blockFact
}

// Load parses and type-checks every package under root (the directory
// containing go.mod). Test files (_test.go) and testdata directories are
// skipped: the invariants the analyzers enforce are production-code
// invariants, and fixtures under testdata are deliberately violating
// them.
func Load(root string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:   token.NewFileSet(),
		Root:   abs,
		Module: module,
		byPath: make(map[string]*Package),
	}
	if err := prog.discover(); err != nil {
		return nil, err
	}
	c := &checker{
		prog:  prog,
		src:   importer.ForCompiler(prog.Fset, "source", nil),
		state: make(map[string]int),
	}
	for _, p := range prog.Packages {
		if _, err := c.ensure(p); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// discover walks the module tree, parsing every directory that holds
// non-test Go files into a Package (types filled in later).
func (prog *Program) discover() error {
	err := filepath.WalkDir(prog.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != prog.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return prog.parseDir(path)
	})
	if err != nil {
		return err
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].ImportPath < prog.Packages[j].ImportPath
	})
	return nil
}

// parseDir parses dir into a Package if it contains non-test Go files.
func (prog *Program) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(prog.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		rel, err := filepath.Rel(prog.Root, full)
		if err != nil {
			return err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return fmt.Errorf("lint: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, &File{Ast: f, Name: full, Rel: filepath.ToSlash(rel)})
	}
	if len(files) == 0 {
		return nil
	}
	relDir, err := filepath.Rel(prog.Root, dir)
	if err != nil {
		return err
	}
	relDir = filepath.ToSlash(relDir)
	if relDir == "." {
		relDir = ""
	}
	ip := prog.Module
	if relDir != "" {
		ip = prog.Module + "/" + relDir
	}
	p := &Package{ImportPath: ip, Rel: relDir, Dir: dir, Files: files}
	prog.Packages = append(prog.Packages, p)
	prog.byPath[ip] = p
	return nil
}

// checker type-checks module packages in dependency order. It is the
// types.Importer handed to go/types: module-internal import paths resolve
// to the parsed tree, everything else (the standard library) falls back
// to the source importer, which shares the program's FileSet.
type checker struct {
	prog  *Program
	src   types.Importer
	state map[string]int // 0 unvisited, 1 in progress, 2 done
}

func (c *checker) Import(path string) (*types.Package, error) {
	if p, ok := c.prog.byPath[path]; ok {
		return c.ensure(p)
	}
	return c.src.Import(path)
}

func (c *checker) ensure(p *Package) (*types.Package, error) {
	switch c.state[p.ImportPath] {
	case 2:
		return p.Types, nil
	case 1:
		return nil, fmt.Errorf("lint: import cycle through %s", p.ImportPath)
	}
	c.state[p.ImportPath] = 1
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: c}
	asts := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		asts[i] = f.Ast
	}
	tpkg, err := conf.Check(p.ImportPath, c.prog.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	p.Types = tpkg
	p.Info = info
	c.state[p.ImportPath] = 2
	return tpkg, nil
}
