package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests: each directory under testdata/src/ is a tiny module
// (module fx) whose source files carry golden-diagnostic expectations as
// comments:
//
//	code() // want <rule> "substring" [<rule> "substring" ...]
//
// marks diagnostics expected on that line, and
//
//	// want-above <rule> "substring"
//
// marks a diagnostic expected on the line directly above (for lines whose
// trailing-comment slot is already taken by an //mklint: directive).
// Every diagnostic must be expected and every expectation must fire.

type expectation struct {
	rule    string
	substr  string
	matched bool
}

var (
	wantRe   = regexp.MustCompile(`//\s*want(-above)?\s+(.+)$`)
	clauseRe = regexp.MustCompile(`([a-z]+)\s+"([^"]+)"`)
)

// parseWants scans every .go file under root for want comments and
// returns expectations keyed "relpath:line".
func parseWants(t *testing.T, root string) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			if m[1] == "-above" {
				lineNo--
			}
			clauses := clauseRe.FindAllStringSubmatch(m[2], -1)
			if len(clauses) == 0 {
				return fmt.Errorf("%s:%d: unparsable want comment %q", rel, i+1, line)
			}
			key := fmt.Sprintf("%s:%d", rel, lineNo)
			for _, c := range clauses {
				wants[key] = append(wants[key], &expectation{rule: c[1], substr: c[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the given analyzers (nil =
// full registry) and diffs the diagnostics against the want comments.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := Run(prog, Options{Analyzers: analyzers})
	wants := parseWants(t, root)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		found := false
		for _, e := range wants[key] {
			if !e.matched && e.rule == d.Rule && strings.Contains(d.Message, e.substr) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, es := range wants {
		for _, e := range es {
			if !e.matched {
				t.Errorf("missing diagnostic at %s: [%s] with message containing %q", key, e.rule, e.substr)
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, "determinism", []*Analyzer{Determinism}) }
func TestFloatEqFixture(t *testing.T)     { runFixture(t, "floateq", []*Analyzer{FloatEq}) }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, "ctxflow", []*Analyzer{CtxFlow}) }
func TestHotPathFixture(t *testing.T)     { runFixture(t, "hotpath", []*Analyzer{HotPath}) }
func TestErrDropFixture(t *testing.T)     { runFixture(t, "errdrop", []*Analyzer{ErrDrop}) }
func TestPrintDebugFixture(t *testing.T)  { runFixture(t, "printdebug", []*Analyzer{PrintDebug}) }
func TestHotpropFixture(t *testing.T)     { runFixture(t, "hotprop", []*Analyzer{Hotprop}) }
func TestGoleakFixture(t *testing.T)      { runFixture(t, "goleak", []*Analyzer{Goleak}) }
func TestLocksFixture(t *testing.T)       { runFixture(t, "locks", []*Analyzer{Locks}) }
func TestDepdagFixture(t *testing.T)      { runFixture(t, "depdag", []*Analyzer{Depdag}) }

// TestDepdagSeededViolation pins the acceptance case by name: the
// fixture's internal/sim package imports internal/serve, and the DAG
// table rejects it.
func TestDepdagSeededViolation(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "depdag"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, Options{Analyzers: []*Analyzer{Depdag}})
	for _, d := range diags {
		if d.File == "internal/sim/sim.go" && strings.Contains(d.Message, "violates the package DAG") {
			return
		}
	}
	t.Fatalf("seeded internal/sim → internal/serve import was not rejected; got %v", diags)
}

// TestDepdagStoreDenyEdge pins the store's purity rule: the fixture's
// internal/store package sits above the engine by rank, so only the
// explicit deny edge rejects its import of internal/sim.
func TestDepdagStoreDenyEdge(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "depdag"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, Options{Analyzers: []*Analyzer{Depdag}})
	for _, d := range diags {
		if d.File == "internal/store/store.go" && strings.Contains(d.Message, "must not import fx/internal/sim") {
			return
		}
	}
	t.Fatalf("seeded internal/store → internal/sim import was not rejected; got %v", diags)
}

// TestDepdagPolicyDenyEdge pins the policy subsystem's one-way rule by
// name: the fixture's internal/sim package imports its own policy
// subtree, and the explicit kernel→policy deny edge rejects it (on top
// of the rank inversion), while the fixture's policy package itself —
// which sits under internal/sim by path — draws no diagnostic, proving
// the exceptFrom carve-out keeps the edge one-way rather than banning
// the whole subtree.
func TestDepdagPolicyDenyEdge(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "depdag"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, Options{Analyzers: []*Analyzer{Depdag}})
	found := false
	for _, d := range diags {
		if strings.HasPrefix(d.File, "internal/sim/policy/") {
			t.Errorf("policy package drew a diagnostic: %s", d)
		}
		if d.File == "internal/sim/sim.go" && strings.Contains(d.Message, "must not import fx/internal/sim/policy") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded internal/sim → internal/sim/policy import was not rejected; got %v", diags)
	}
}

// TestAllowMetaFixture runs the full registry so the directive machinery
// itself is exercised: unknown rule names, missing reasons, stale allows
// and unknown verbs are all diagnostics under the reserved "allow" rule.
func TestAllowMetaFixture(t *testing.T) { runFixture(t, "allowmeta", nil) }

func TestSplitAllow(t *testing.T) {
	cases := []struct {
		in           string
		rule, reason string
	}{
		{"determinism — wall-clock timer", "determinism", "wall-clock timer"},
		{"determinism -- wall-clock timer", "determinism", "wall-clock timer"},
		{"determinism - wall-clock timer", "determinism", "wall-clock timer"},
		{"determinism : wall-clock timer", "determinism", "wall-clock timer"},
		{"determinism wall-clock timer", "determinism", "wall-clock timer"},
		{"determinism", "determinism", ""},
		{"", "", ""},
	}
	for _, c := range cases {
		rule, reason := splitAllow(c.in)
		if rule != c.rule || reason != c.reason {
			t.Errorf("splitAllow(%q) = %q, %q; want %q, %q", c.in, rule, reason, c.rule, c.reason)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nosuchrule") != nil {
		t.Error("ByName of an unknown rule should be nil")
	}
}
