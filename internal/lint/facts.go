package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
)

// This file holds the whole-program facts the cross-function analyzers
// (hotprop, goleak, locks) share: the module call graph, the transitive
// hot set seeded from //mklint:hotpath tags, and per-function blocking
// facts. Everything is computed lazily on first use and cached on the
// Program, so a run restricted to purely syntactic rules never pays for
// graph construction.

// CallGraph returns the module's CHA call graph, built on first use.
func (prog *Program) CallGraph() *callgraph.Graph {
	if prog.cg == nil {
		pkgs := make([]*callgraph.Package, 0, len(prog.Packages))
		prog.cgPkg = make(map[*callgraph.Package]*Package, len(prog.Packages))
		for _, p := range prog.Packages {
			files := make([]*ast.File, len(p.Files))
			for i, f := range p.Files {
				files[i] = f.Ast
			}
			cp := &callgraph.Package{Types: p.Types, Info: p.Info, Files: files}
			pkgs = append(pkgs, cp)
			prog.cgPkg[cp] = p
		}
		prog.cg = callgraph.Build(pkgs)
	}
	return prog.cg
}

// LintPackage maps a call-graph node back to the lint Package that
// declares it.
func (prog *Program) LintPackage(n *callgraph.Node) *Package {
	prog.CallGraph()
	return prog.cgPkg[n.Pkg]
}

// FuncObj resolves a function declaration to its canonical *types.Func.
func (pkg *Package) FuncObj(decl *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	return fn
}

// hotTagged returns the set of //mklint:hotpath-tagged functions across
// the whole module, keyed by their canonical objects.
func (prog *Program) hotTagged() map[*types.Func]bool {
	if prog.hotFuncs == nil {
		prog.hotFuncs = make(map[*types.Func]bool)
		for _, pkg := range prog.Packages {
			for decl := range hotpathDecls(pkg) {
				if fn := pkg.FuncObj(decl); fn != nil {
					prog.hotFuncs[fn] = true
				}
			}
		}
	}
	return prog.hotFuncs
}

// HotReach returns the forward reachability sweep of the call graph
// from every //mklint:hotpath-tagged root: the transitive hot set the
// hotprop rule enforces, with shortest call chains for diagnostics.
func (prog *Program) HotReach() *callgraph.ReachResult {
	if prog.hotReach == nil {
		g := prog.CallGraph()
		var roots []*callgraph.Node
		for fn := range prog.hotTagged() {
			if n := g.Node(fn); n != nil {
				roots = append(roots, n)
			}
		}
		prog.hotReach = g.Reach(roots)
	}
	return prog.hotReach
}

// blockFact records why a function blocks: the position of the first
// directly blocking operation in its body and a short description of it.
type blockFact struct {
	pos  token.Pos
	what string
}

// blockingFacts computes, per call-graph node, whether the function's
// own body contains a directly blocking operation: a channel send or
// receive, a select without a default clause, a range over a channel,
// time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait, or a call into
// net/http (a network round trip). Code inside nested go statements is
// excluded — a spawned goroutine blocking does not block the spawner.
func (prog *Program) blockingFacts() map[*callgraph.Node]*blockFact {
	if prog.blockFacts != nil {
		return prog.blockFacts
	}
	prog.blockFacts = make(map[*callgraph.Node]*blockFact)
	g := prog.CallGraph()
	for _, n := range g.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		pkg := prog.LintPackage(n)
		if pkg == nil {
			continue
		}
		if f := directBlock(pkg, n.Decl.Body); f != nil {
			prog.blockFacts[n] = f
		}
	}
	return prog.blockFacts
}

// directBlock scans one function body for its first directly blocking
// operation.
func directBlock(pkg *Package, body ast.Node) *blockFact {
	var found *blockFact
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // the goroutine blocks, not this function
		case *ast.SendStmt:
			found = &blockFact{pos: n.Pos(), what: "channel send"}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = &blockFact{pos: n.Pos(), what: "channel receive"}
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = &blockFact{pos: n.Pos(), what: "range over channel"}
				}
			}
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				return true // non-blocking poll
			}
			found = &blockFact{pos: n.Pos(), what: "select"}
		case *ast.CallExpr:
			if what, ok := blockingStdCall(pkg, n); ok {
				found = &blockFact{pos: n.Pos(), what: what}
			}
		}
		return found == nil
	})
	return found
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if comm, ok := c.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// blockingStdCall recognizes the standard-library calls the locks rule
// treats as blocking: time.Sleep, WaitGroup.Wait, Cond.Wait, and
// anything in net/http (a network round trip).
func blockingStdCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if fn.Name() == "Wait" {
			return "sync." + recvTypeName(fn) + ".Wait", true
		}
	case "net/http":
		return "net/http." + fn.Name() + " network call", true
	}
	return "", false
}

// recvTypeName names a method's receiver type ("WaitGroup", "Cond").
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// blocksWithin answers the locks rule's transitive question: starting
// from fn, is a directly blocking operation reachable within maxDepth
// call-graph hops? It returns the call chain (fn → … → blocker) and the
// blocking fact, or ok=false. The search is breadth-first, so the
// reported chain is a shortest one.
func (prog *Program) blocksWithin(fn *types.Func, maxDepth int) (chain []string, fact *blockFact, ok bool) {
	g := prog.CallGraph()
	start := g.Node(fn)
	if start == nil {
		return nil, nil, false
	}
	facts := prog.blockingFacts()
	type item struct {
		n     *callgraph.Node
		depth int
	}
	from := map[*callgraph.Node]*callgraph.Node{start: nil}
	queue := []item{{start, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if f, found := facts[it.n]; found {
			var rev []*callgraph.Node
			for cur := it.n; cur != nil; cur = from[cur] {
				rev = append(rev, cur)
			}
			for i := len(rev) - 1; i >= 0; i-- {
				chain = append(chain, rev[i].Name())
			}
			return chain, f, true
		}
		if it.depth == maxDepth {
			continue
		}
		for _, e := range it.n.Out {
			if e.Go {
				continue // spawned work does not block the caller
			}
			if _, seen := from[e.Callee]; seen {
				continue
			}
			from[e.Callee] = it.n
			queue = append(queue, item{e.Callee, it.depth + 1})
		}
	}
	return nil, nil, false
}
