package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const ruleGoLeak = "goleak"

// Goleak requires every go statement to carry a visible termination
// path. A goroutine with no way to be told to stop outlives its request,
// pins its captures, and — in a server that spawns one per sweep — leaks
// under sustained load. Accepted evidence, scanned over the spawned
// body (or the named callee's body, through the call graph):
//
//   - a context.Context flowing into the goroutine (ctx.Done selects,
//     ctx-aware calls),
//   - a (*sync.WaitGroup).Done, tying the goroutine to a waiter,
//   - a send, receive, close, select case or range on a channel owned by
//     the spawning function (declared among its locals, parameters or
//     receiver), which gives the spawner a handle on the lifetime.
//
// Ownership is judged against the outermost enclosing function
// declaration, not the nearest closure: an event loop that spawns
// workers from a helper closure still owns the result channel they
// drain into.
var Goleak = &Analyzer{
	Name: ruleGoLeak,
	Doc:  "every go statement needs a termination path: a context, a WaitGroup.Done, or a spawner-owned channel operation",
	Run:  runGoleak,
}

func runGoleak(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.checkGoStmt(g, fd)
				}
				return true
			})
		}
	}
}

// checkGoStmt inspects one go statement spawned (possibly via nested
// closures) from decl.
func (p *Pass) checkGoStmt(g *ast.GoStmt, decl *ast.FuncDecl) {
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if p.termEvidence(fl.Body, decl) {
			return
		}
		p.Reportf(ruleGoLeak, g.Pos(),
			"goroutine has no visible termination path: no context, no WaitGroup.Done, and no operation on a channel owned by %s — thread a ctx or a stop/result channel through it", declName(decl))
		return
	}
	// Named call: go worker(ctx, out) or go s.loop().
	for _, arg := range g.Call.Args {
		if p.lifetimeTyped(arg) {
			return // a ctx, channel or WaitGroup crosses the boundary
		}
	}
	fn := p.Callee(g.Call)
	if fn == nil {
		p.Reportf(ruleGoLeak, g.Pos(),
			"goroutine spawns a function value whose body is not visible and no context, channel or WaitGroup crosses the call — termination cannot be audited")
		return
	}
	if node := p.Prog.CallGraph().Node(fn); node != nil && node.Decl != nil && node.Decl.Body != nil {
		if p.calleeEvidence(node.Decl.Body, p.Prog.LintPackage(node)) {
			return
		}
	}
	p.Reportf(ruleGoLeak, g.Pos(),
		"goroutine %s has no visible termination path: no context, channel or WaitGroup argument, and its body shows no Done call, context use or channel operation", fn.Name())
}

// lifetimeTyped reports whether an expression's type can carry a
// goroutine lifetime across a call: a context, any channel, or a
// *sync.WaitGroup.
func (p *Pass) lifetimeTyped(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if isContextType(t) || isWaitGroupPtr(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// termEvidence scans a spawned closure body for termination evidence,
// with channel ownership judged against decl (the outermost enclosing
// function declaration).
func (p *Pass) termEvidence(body ast.Node, decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if t := p.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		case *ast.CallExpr:
			if p.isWaitGroupDone(n) {
				found = true
			}
			if p.IsBuiltin(n, "close") && len(n.Args) == 1 && p.ownedChan(n.Args[0], decl) {
				found = true
			}
		case *ast.SendStmt:
			if p.ownedChan(n.Chan, decl) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && p.ownedChan(n.X, decl) {
				found = true
			}
		case *ast.RangeStmt:
			if p.ownedChan(n.X, decl) {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeEvidence is the looser cross-function form: inside a named
// callee's body, ownership cannot be attributed, so any channel
// operation (alongside context use and WaitGroup.Done) counts.
func (p *Pass) calleeEvidence(body ast.Node, pkg *Package) bool {
	if pkg == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if t := pkg.Info.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := pkg.Info.Uses[id.Sel].(*types.Func); ok && isSyncMethod(fn, "WaitGroup", "Done") {
					found = true
				}
			}
		case *ast.SendStmt, *ast.RangeStmt:
			if isChanOp(pkg, n) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}

func isChanOp(pkg *Package, n ast.Node) bool {
	var x ast.Expr
	switch n := n.(type) {
	case *ast.SendStmt:
		x = n.Chan
	case *ast.RangeStmt:
		x = n.X
	default:
		return false
	}
	t := pkg.Info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// ownedChan reports whether e is a channel whose root identifier is
// declared within decl — a local, parameter or receiver of the spawning
// function, giving the spawner a handle on the goroutine's lifetime.
func (p *Pass) ownedChan(e ast.Expr, decl *ast.FuncDecl) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := p.Pkg.Info.Uses[root]
	if obj == nil {
		return false
	}
	return obj.Pos() >= decl.Pos() && obj.Pos() < decl.End()
}

// rootIdent peels selectors, indexes and parens down to the base
// identifier of an expression (s.results[i] → s).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (p *Pass) isWaitGroupDone(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && isSyncMethod(fn, "WaitGroup", "Done")
}

func isSyncMethod(fn *types.Func, recv, name string) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == name && recvTypeName(fn) == recv
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroupPtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func declName(decl *ast.FuncDecl) string {
	return decl.Name.Name
}
