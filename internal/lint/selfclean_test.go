package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoSelfClean asserts the module mklint ships with is itself clean:
// every analyzer over every package yields zero diagnostics. This is the
// same check CI's lint job runs via `go run ./cmd/mklint ./...`, kept as
// a test so `go test ./...` alone catches regressions.
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("loading module at %s: %v", root, err)
	}
	if len(prog.Packages) == 0 {
		t.Fatalf("no packages loaded from %s", root)
	}
	diags := Run(prog, Options{})
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("  " + d.String() + "\n")
		}
		t.Errorf("repository is not mklint-clean (%d diagnostics):\n%s", len(diags), b.String())
	}
}
