package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoSelfClean asserts the module mklint ships with passes its own
// ratchet: every analyzer (the full registry, including the
// whole-program hotprop/goleak/locks/depdag rules) over every package
// yields no findings beyond the committed baseline, and no baseline
// entry is stale. This is the same check CI's lint job runs via
// `go run ./cmd/mklint -baseline results/lint_baseline.json ./...`,
// kept as a test so `go test ./...` alone catches regressions.
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("loading module at %s: %v", root, err)
	}
	if len(prog.Packages) == 0 {
		t.Fatalf("no packages loaded from %s", root)
	}
	diags := Run(prog, Options{})

	base := &Baseline{Schema: BaselineSchema}
	basePath := filepath.Join(root, "results", "lint_baseline.json")
	if _, statErr := os.Stat(basePath); statErr == nil {
		base, err = LoadBaseline(basePath)
		if err != nil {
			t.Fatalf("committed baseline is unreadable: %v", err)
		}
		if err := base.Validate(); err != nil {
			t.Errorf("committed baseline fails justification validation: %v", err)
		}
	}
	fresh, stale := base.Apply(diags)
	if len(fresh) > 0 {
		var b strings.Builder
		for _, d := range fresh {
			b.WriteString("  " + d.String() + "\n")
		}
		t.Errorf("repository has %d finding(s) beyond the baseline (fix them, or baseline them with a written why):\n%s", len(fresh), b.String())
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (the finding was fixed; refresh with -update-baseline): %s [%s] %q", e.File, e.Rule, e.Message)
	}
}
