package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

const ruleDeterminism = "determinism"

// randPackages are the only packages allowed to hold randomness: they own
// seeded generator streams (stats.Rand and, if ever needed, a seeded
// *math/rand.Rand). Everything else must take drawn values or a stream as
// input so that a single master seed reproduces every run bit-exactly.
var randPackages = map[string]bool{
	"internal/fault":    true,
	"internal/workload": true,
	"internal/stats":    true,
}

// orderedOutputPackages produce deterministic, golden-compared output
// (event streams, Gantt charts, report tables); iterating a map there
// feeds Go's randomized iteration order straight into the goldens.
var orderedOutputPrefixes = []string{
	"internal/sim",
	"internal/trace",
	"internal/experiment",
}

// Determinism enforces seeded-only randomness and wall-clock-free
// simulation code: the paper's Figures 1-5 are golden-compared bit
// exactly, so any hidden entropy source (time.Now, the global math/rand
// state, map iteration order) eventually breaks the reproduction.
var Determinism = &Analyzer{
	Name: ruleDeterminism,
	Doc:  "no wall-clock reads, unseeded randomness, or map-order-dependent output in simulator code",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	rel := p.Pkg.Rel
	randOK := randPackages[rel]
	ordered := false
	for _, prefix := range orderedOutputPrefixes {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			ordered = true
		}
	}
	for _, f := range p.Pkg.Files {
		if !randOK {
			for _, imp := range f.Ast.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(ruleDeterminism, imp.Pos(),
						"import of %s outside the sanctioned randomness packages (internal/fault, internal/workload, internal/stats); take a seeded stream as input instead", path)
				}
			}
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := p.Callee(n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" {
						p.Reportf(ruleDeterminism, n.Pos(),
							"wall-clock time.%s breaks reproducibility; derive instants from simulated time, or annotate an intentional timer with //mklint:allow determinism — <reason>", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					// Sanctioned packages own their streams and may call
					// rand.New/NewSource to build them; everywhere else even
					// the top-level helpers (which share global state) are out.
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randOK {
						p.Reportf(ruleDeterminism, n.Pos(),
							"global %s.%s draws from shared unseeded state; use a seeded stream owned by the component (stats.Rand)", fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				if !ordered || n.X == nil {
					return true
				}
				if t := p.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(ruleDeterminism, n.Pos(),
							"map iteration order is randomized and this package feeds ordered (golden-compared) output; iterate a sorted slice of keys instead")
					}
				}
			}
			return true
		})
	}
}
