// Package goleak exercises the goroutine-termination rule: every go
// statement needs a context, a WaitGroup.Done, or a spawner-owned
// channel operation.
package goleak

import (
	"context"
	"sync"
	"time"
)

// global is package-level, so operating on it is NOT spawner-owned
// evidence: the spawner has no handle on the goroutine's lifetime.
var global = make(chan int)

func ctxEvidence(ctx context.Context) {
	go func() { // ok: selects on ctx.Done
		<-ctx.Done()
	}()
}

func wgEvidence(wg *sync.WaitGroup) {
	go func() { // ok: tied to a waiter
		defer wg.Done()
	}()
}

func ownedChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() { // ok: closes a channel the spawner owns
		defer close(done)
	}()
	return done
}

// nestedOwnership spawns from a helper closure; ownership is judged
// against nestedOwnership itself, so results still counts.
func nestedOwnership() int {
	results := make(chan int, 1)
	dispatch := func() {
		go func() { // ok: sends on the outer function's channel
			results <- 1
		}()
	}
	dispatch()
	return <-results
}

func namedWithCtx(ctx context.Context) {
	go worker(ctx) // ok: a context crosses the call
}

func worker(ctx context.Context) { <-ctx.Done() }

func spinForever() {
	go func() { // want goleak "no visible termination path"
		for {
		}
	}()
}

func sleepForever() {
	go func() { // want goleak "no visible termination path"
		time.Sleep(time.Hour)
	}()
}

func globalNotOwned() {
	go func() { // want goleak "no visible termination path"
		global <- 1
	}()
}

func namedBad() {
	go hotLoop() // want goleak "hotLoop has no visible termination path"
}

func hotLoop() {
	n := 0
	for {
		n++
	}
}
