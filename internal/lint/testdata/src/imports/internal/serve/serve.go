// Package serve sits outside the wire scope: it is the translation layer,
// so importing the engine here is exactly what the rule wants.
package serve

import (
	"fx/internal/serve/wire"
	"fx/internal/sim"
)

// Translate builds the schema document from engine state — allowed.
func Translate() wire.Doc {
	return wire.Doc{HorizonMS: float64(sim.Horizon)}
}
