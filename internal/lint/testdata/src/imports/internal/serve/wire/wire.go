// Package wire mirrors the repository's schema package: the layering rule
// forbids it from importing simulation internals.
package wire

import (
	"time"

	"fx/internal/core" // want imports "must not import fx/internal/core"
	"fx/internal/sim"  // want imports "must not import fx/internal/sim"
	"fx/internal/timeu"
)

// Doc is the kind of pure data type that belongs here.
type Doc struct {
	HorizonMS float64 `json:"horizon_ms"`
}

// Bad reaches into the engine to build a document — the violation.
func Bad() Doc {
	return Doc{HorizonMS: timeu.Millis(int64(sim.Horizon+core.Pad) * int64(time.Millisecond/time.Microsecond))}
}
