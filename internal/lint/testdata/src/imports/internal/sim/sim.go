// Package sim stands in for the simulation engine internals.
package sim

// Horizon is an engine constant a schema package must not reach for.
const Horizon = 2000
