// Package timeu mirrors the real module's tolerance-helper home, which
// the default scope table exempts from floateq: the helpers themselves
// must compare exactly to implement the tolerance.
package timeu

// Eq is a sanctioned exact comparison inside the exempt package.
func Eq(a, b float64) bool {
	return a == b
}
