// Package calc compares float quantities the tolerance-unsafe way.
package calc

// Same compares exactly.
func Same(a, b float64) bool {
	return a == b // want floateq "exact float =="
}

// Diff compares exactly.
func Diff(a, b float64) bool {
	return a != b // want floateq "exact float !="
}

// Folded compares two constants: exact at compile time, not flagged.
func Folded() bool {
	const half = 0.5
	return half == 0.25*2
}

// Sentinel documents an intentional exact zero test.
func Sentinel(x float64) bool {
	return x == 0 //mklint:allow floateq — exact zero is the documented "unset" sentinel
}

// Ints stay exact and are not the rule's business.
func Ints(a, b int) bool {
	return a == b
}
