// Package lib must not print to stdout from library code.
package lib

import "fmt"

// Shout prints from library code.
func Shout() {
	fmt.Println("debug") // want printdebug "fmt.Println"
	print("raw")         // want printdebug "builtin print"
}

// Banner documents intentional stdout output.
func Banner() {
	fmt.Print("banner") //mklint:allow printdebug — one-time banner the operator asked for
}

// Timer carries an allow for a rule outside this run: the single-rule
// harness must not report it stale.
func Timer() int {
	v := 5 //mklint:allow determinism — exercised only when determinism runs
	return v
}
