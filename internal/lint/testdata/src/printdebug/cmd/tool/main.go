// Command tool may print: cmd/ is scoped out by default.
package main

import "fmt"

func main() {
	fmt.Println("hello")
}
