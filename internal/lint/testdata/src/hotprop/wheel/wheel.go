// Package wheel is reached cross-package from engine.Step, including
// through an interface seam the CHA resolution must see through.
package wheel

import (
	"fmt"
	"reflect"
)

type picker interface{ pick(int) int }

type greedy struct{}

// pick is hot only because Scan dispatches to it through the picker
// interface — the CHA edge.
func (greedy) pick(n int) int {
	return int(reflect.ValueOf(n).Int()) // want hotprop "reflect" hotprop "reflect"
}

// Scan is reached from engine.Step (cross-package static edge).
func Scan(n int) int {
	var p picker = greedy{}
	s := fmt.Sprint(n) // want hotprop "fmt.Sprint allocates"
	return p.pick(n) + len(s)
}
