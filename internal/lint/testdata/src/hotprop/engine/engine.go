// Package engine mirrors the simulator: a tagged root whose untagged
// helpers must inherit the hot-path checks through the call graph.
package engine

import (
	"fmt"

	"fx/wheel"
)

// Step is the tagged root. Its own body is the hotpath rule's business;
// hotprop only cares about what it reaches.
//
//mklint:hotpath
func Step(n int) int {
	return helper(n) + wheel.Scan(n)
}

// helper is NOT tagged, but Step calls it: the old per-function rule
// missed it, hotprop must not.
func helper(n int) int {
	s := fmt.Sprintf("n=%d", n) // want hotprop "hot call chain"
	return len(s)
}

// cold is never reached from a tagged root; its formatting is fine.
func cold(n int) string {
	return fmt.Sprintf("cold %d", n)
}
