// Package locks exercises the mutex-discipline rule: no by-value copies,
// dominated unlocks, no held locks across returns or blocking calls.
package locks

import (
	"sync"
	"time"
)

// Box carries a mutex; copying it copies the lock.
type Box struct {
	mu sync.Mutex
	n  int
}

func byValueParam(b Box) int { // want locks "by value, copying the mutex"
	return b.n
}

func (b Box) valueReceiver() int { // want locks "value receiver"
	return b.n
}

func copyAssign(b *Box) int {
	c := *b // want locks "assignment copies"
	return c.n
}

func rangeCopy(boxes []Box) int {
	total := 0
	for _, b := range boxes { // want locks "range copies each"
		total += b.n
	}
	return total
}

func unlockOnly(b *Box) {
	b.mu.Unlock() // want locks "without a dominating Lock"
}

func conditionalLock(b *Box, cond bool) {
	if cond {
		b.mu.Lock()
	}
	b.mu.Unlock() // want locks "without a dominating Lock"
}

func earlyReturnLeak(b *Box, cond bool) int {
	b.mu.Lock()
	if cond {
		return 0 // want locks "leaks the lock"
	}
	b.mu.Unlock()
	return b.n
}

func deferredIsClean(b *Box, cond bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cond {
		return 0
	}
	return b.n
}

// branchUnlockReturn is the coalescing idiom: unlock inside the branch,
// then return — the must-hold merge keeps it clean.
func branchUnlockReturn(b *Box, hit bool) int {
	b.mu.Lock()
	if hit {
		b.mu.Unlock()
		return 1
	}
	b.n = 2
	b.mu.Unlock()
	return 0
}

func sendWhileHeld(b *Box, ch chan int) {
	b.mu.Lock()
	ch <- b.n // want locks "channel send"
	b.mu.Unlock()
}

func transitiveBlock(b *Box) {
	b.mu.Lock()
	slowHelper() // want locks "time.Sleep via"
	b.mu.Unlock()
}

func slowHelper() {
	time.Sleep(10 * time.Millisecond)
}

func pollIsFine(b *Box, ch chan int) {
	b.mu.Lock()
	select {
	case v := <-ch:
		b.n = v
	default:
	}
	b.mu.Unlock()
}
