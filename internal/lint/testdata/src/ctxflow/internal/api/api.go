// Package api exercises the context plumbing conventions.
package api

import "context"

// Lookup takes ctx in the wrong position.
func Lookup(name string, ctx context.Context) error { // want ctxflow "must be the first parameter"
	return ctx.Err()
}

// Holder hides a context inside a struct.
type Holder struct {
	ctx context.Context // want ctxflow "stored in a struct"
}

// RunContext promises a ctx-accepting variant but takes none.
func RunContext(name string) error { // want ctxflow "naming convention"
	return nil
}

// Visit closures follow the same ordering rule.
var Visit = func(n int, ctx context.Context) error { // want ctxflow "must be the first parameter"
	return ctx.Err()
}

// Good is the sanctioned shape.
func Good(ctx context.Context, name string) error {
	return ctx.Err()
}

// LegacyHolder is grandfathered while a migration completes.
type LegacyHolder struct {
	ctx context.Context //mklint:allow ctxflow — legacy carrier until the batch API migration lands
}
