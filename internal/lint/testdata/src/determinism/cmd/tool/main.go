// Command tool times its own work on purpose and says so.
package main

import "time"

func main() {
	t0 := time.Now()   //mklint:allow determinism — operator-facing wall-clock timer
	_ = time.Since(t0) //mklint:allow determinism — operator-facing wall-clock timer
}
