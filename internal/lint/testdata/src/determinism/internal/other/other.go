// Package other is not sanctioned to hold randomness and does not feed
// ordered output.
package other

import "math/rand" // want determinism "sanctioned randomness packages"

// Draw uses the shared global stream.
func Draw() int {
	return rand.Intn(10) // want determinism "global rand.Intn"
}

// Sum is outside the ordered-output packages: map iteration is fine.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
