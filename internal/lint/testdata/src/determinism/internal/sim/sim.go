// Package sim mimics the simulator core: an ordered-output package whose
// results are golden-compared, so hidden entropy sources are diagnostics.
package sim

import "time"

// Stamp reads the wall clock from simulator code.
func Stamp() (time.Time, float64) {
	now := time.Now()                     // want determinism "wall-clock time.Now"
	return now, time.Since(now).Seconds() // want determinism "wall-clock time.Since"
}

// Render feeds map iteration order straight into ordered output.
func Render(m map[int]string) []string {
	var out []string
	for _, v := range m { // want determinism "map iteration order"
		out = append(out, v)
	}
	return out
}

// Total documents an order-insensitive fold over a map.
func Total(m map[int]int) int {
	sum := 0
	//mklint:allow determinism — summation is order-independent
	for _, v := range m {
		sum += v
	}
	return sum
}
