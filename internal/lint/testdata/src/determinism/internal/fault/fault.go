// Package fault is one of the sanctioned randomness owners: it may
// import math/rand and build seeded streams.
package fault

import "math/rand"

// Stream builds the component's seeded generator.
func Stream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw consumes an injected seeded stream.
func Draw(rng *rand.Rand) int {
	return rng.Intn(2)
}
