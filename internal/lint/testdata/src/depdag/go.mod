module fx

go 1.21
