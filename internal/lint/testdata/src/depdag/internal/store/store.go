// Package store stands in for the persistent result store. Its rank
// (75) sits above the engine, so the numbers alone would allow the
// import below — the explicit deny edge is what rejects it: the store
// persists opaque bytes and must never link the engine that produced
// them.
package store

import (
	"fx/internal/sim" // want depdag "must not import fx/internal/sim"
	"fx/internal/timeu"
)

// Record is the kind of opaque payload the store is allowed to hold.
type Record struct {
	Key  string
	Body []byte
}

// Bad derives a stored value from engine internals — the deny edge fires.
func Bad() float64 { return timeu.Millis(int64(sim.Horizon)) }
