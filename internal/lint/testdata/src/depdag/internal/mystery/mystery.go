// Package mystery is deliberately absent from the depdag layer table: a
// new package must take a position in the DAG before it ships.
package mystery // want depdag "not in the depdag layer table"

// X exists so the package is non-empty.
const X = 1
