// Package experiment stands in for the experiment harness.
package experiment

// Grid is a harness constant a schema package must not reach for.
const Grid = 8
