// Package wire mirrors the repository's schema package: its layer sits
// high enough to import the internals by rank alone, so explicit deny
// edges keep it pure.
package wire

import (
	"fx/internal/core"       // want depdag "must not import fx/internal/core"
	"fx/internal/experiment" // want depdag "must not import fx/internal/experiment"
	"fx/internal/timeu"
)

// Doc is the kind of pure data type that belongs here.
type Doc struct {
	HorizonMS float64 `json:"horizon_ms"`
}

// Bad folds internals into a document — the deny edges fire.
func Bad() Doc {
	return Doc{HorizonMS: timeu.Millis(int64(core.Pad + experiment.Grid))}
}
