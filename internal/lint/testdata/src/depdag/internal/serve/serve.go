// Package serve is the translation layer: importing the schema package
// below it is the allowed direction. Its import of mystery shows that an
// importee missing from the layer table is reported at the import site.
package serve

import (
	"fx/internal/mystery" // want depdag "not in the depdag layer table"
	"fx/internal/serve/wire"
)

// Translate builds the schema document — allowed.
func Translate() wire.Doc {
	return wire.Doc{HorizonMS: float64(mystery.X)}
}
