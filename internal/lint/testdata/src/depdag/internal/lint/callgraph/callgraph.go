// Package callgraph stands in for lint's own subpackage, which the lint
// deny edge must not catch.
package callgraph

// Nodes is a placeholder.
const Nodes = 0
