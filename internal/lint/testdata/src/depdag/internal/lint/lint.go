// Package lint mirrors the analyzer framework: it may import its own
// subtree, and nothing else in the module.
package lint

import (
	"fx/internal/lint/callgraph"
	"fx/internal/timeu" // want depdag "must not import fx/internal/timeu"
)

// Count uses both imports.
func Count() float64 { return timeu.Millis(int64(callgraph.Nodes)) }
