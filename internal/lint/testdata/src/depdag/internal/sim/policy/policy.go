// Package policy stands in for the scheduling-policy registry. Its own
// entry (layer 48) sits above the engine, so policy packages may import
// the kernel while the kernel may never import back — the seeded
// violation in internal/sim exercises both the rank check and the
// explicit deny edge.
package policy

import "fx/internal/timeu"

// Cost is a policy constant derived from a leaf utility — a legal
// downward import.
var Cost = timeu.Millis(48)
