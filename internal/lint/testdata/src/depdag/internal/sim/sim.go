// Package sim stands in for the simulation engine. Its import of the
// serving layer is the seeded DAG violation: layer 40 reaching up to
// layer 80. The import of its own policy subtree is the seeded
// kernel→policy inversion: rejected twice, by rank (40 vs 48) and by the
// explicit deny edge that names the one-way rule.
package sim

import (
	"fx/internal/serve"      // want depdag "violates the package DAG"
	"fx/internal/sim/policy" // want depdag "must not import fx/internal/sim/policy" depdag "violates the package DAG"
)

// Horizon is an engine constant.
const Horizon = 2000

// Bad reaches upward into the serving layer — the violation.
func Bad() float64 { return serve.Translate().HorizonMS }

// BadPolicy reaches into the policy subtree — the kernel must stay
// policy-agnostic.
func BadPolicy() float64 { return policy.Cost }
