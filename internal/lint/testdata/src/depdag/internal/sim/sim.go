// Package sim stands in for the simulation engine. Its import of the
// serving layer is the seeded DAG violation: layer 40 reaching up to
// layer 80.
package sim

import "fx/internal/serve" // want depdag "violates the package DAG"

// Horizon is an engine constant.
const Horizon = 2000

// Bad reaches upward into the serving layer — the violation.
func Bad() float64 { return serve.Translate().HorizonMS }
