// Package timeu stands in for a leaf utility package.
package timeu

// Millis converts microseconds to milliseconds.
func Millis(us int64) float64 { return float64(us) / 1000 }
