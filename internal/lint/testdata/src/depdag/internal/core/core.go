// Package core stands in for the scheduling core internals.
package core

// Pad is a core constant a schema package must not reach for.
const Pad = 1
