// Package meta exercises mklint's own directive handling. The fixture is
// run with the full registry so stale detection applies.
package meta // want depdag "not in the depdag layer table"

// Unknown carries an allow naming a rule that does not exist.
func Unknown() int {
	x := 1 //mklint:allow nosuchrule — the rule name is a typo
	// want-above allow "unknown rule"
	return x
}

// NoReason carries an allow without a justification.
func NoReason() int {
	y := 2 //mklint:allow floateq
	// want-above allow "missing a reason"
	return y
}

// Stale carries an allow that suppresses nothing.
func Stale() int {
	z := 3 //mklint:allow determinism — nothing here reads the clock
	// want-above allow "stale allow"
	return z
}

// BadVerb carries a directive mklint does not know.
func BadVerb() int {
	w := 4 //mklint:frobnicate
	// want-above allow "unknown mklint directive"
	return w
}

// BadHotArg passes a bad argument to the hotpath directive.
func BadHotArg() int {
	v := 5 //mklint:hotpath whole
	// want-above allow "takes no argument"
	return v
}
