// Timing-wheel callback fixture: the regression class where a closure
// over engine state escapes into the wheel's callback slot, allocating
// a fresh closure + environment on every (re)registration inside the
// event loop. Mirrors the calendar queue of internal/sim.
package hot

// wheel mimics the calendar queue: buckets of instants and a due
// callback fired while draining a bucket.
type wheel struct {
	buckets [][]int64
	onDue   func(int64)
}

var drained int64

// advance drains due instants through the registered callback.
//
//mklint:hotpath
func (w *wheel) advance(now int64) {
	for _, b := range w.buckets {
		for _, t := range b {
			if t <= now {
				w.onDue(t)
			}
		}
	}
}

// register is the regression: the callback closes over the caller's
// counter and is stored into the wheel, so every registration on the
// advance path allocates the closure and its captured environment.
//
//mklint:hotpath
func (w *wheel) register(cnt *int) {
	w.onDue = func(t int64) { *cnt++ } // want hotpath "escaping closure captures cnt"
}

// registerHoisted is the fix: the callback touches only package state,
// capturing nothing from the enclosing function — nothing to allocate.
//
//mklint:hotpath
func (w *wheel) registerHoisted() {
	w.onDue = func(t int64) { drained = t }
}

// drainInline visits due instants with a non-escaping literal: it never
// leaves the stack, so capturing now/sum is free and not flagged.
//
//mklint:hotpath
func (w *wheel) drainInline(now int64) int64 {
	var sum int64
	visit := func(t int64) {
		if t <= now {
			sum += t
		}
	}
	for _, b := range w.buckets {
		for _, t := range b {
			visit(t)
		}
	}
	return sum
}
