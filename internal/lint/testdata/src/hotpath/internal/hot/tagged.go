// This whole file is hot (Scratch-style arena helpers).
//
//mklint:hotpath file
package hot

import "fmt"

// Wrap formats in a function tagged via the file-wide directive.
func Wrap(n int) string {
	return fmt.Sprint(n) // want hotpath "fmt.Sprint"
}

// Traced documents a deliberate formatting call.
func Traced(n int) string {
	return fmt.Sprint(n) //mklint:allow hotpath — cold debug branch kept for support builds
}
