// Package hot exercises the tagged-function allocation rules.
package hot

import (
	"fmt"
	"reflect"
)

// Format allocates via fmt in the hot path.
//
//mklint:hotpath
func Format(n int) string {
	return fmt.Sprintf("%d", n) // want hotpath "fmt.Sprintf"
}

// Kind reflects in the hot path.
//
//mklint:hotpath
func Kind(v any) reflect.Type {
	return reflect.TypeOf(v) // want hotpath "reflect.TypeOf"
}

// Box boxes ints into an interface slice.
//
//mklint:hotpath
func Box(sink []any, n int) []any {
	return append(sink, n) // want hotpath "append boxes concrete int"
}

// Spread appends an existing interface slice: no boxing.
//
//mklint:hotpath
func Spread(sink []any, more []any) []any {
	return append(sink, more...)
}

// Capture leaks a closure over n to the caller.
//
//mklint:hotpath
func Capture(n int) func() int {
	return func() int { return n } // want hotpath "escaping closure captures n"
}

// Local keeps its closure on the stack: not flagged.
//
//mklint:hotpath
func Local(n int) int {
	add := func(x int) int { return x + n }
	return add(1)
}

// Guard may format inside a panic: the path never runs when healthy.
//
//mklint:hotpath
func Guard(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n))
	}
	return n
}

// Cold is untagged: fmt is fine off the hot path.
func Cold(n int) string {
	return fmt.Sprintf("%d", n)
}
