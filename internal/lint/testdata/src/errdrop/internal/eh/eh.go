// Package eh exercises silent error dropping.
package eh

import (
	"errors"
	"fmt"
	"strings"
)

func work() error { return errors.New("boom") }

// Drop discards the error silently.
func Drop() {
	work() // want errdrop "silently discarded"
}

// DeferDrop discards it in a defer.
func DeferDrop() {
	defer work() // want errdrop "silently discarded"
}

// GoDrop discards it in a goroutine.
func GoDrop() {
	go work() // want errdrop "silently discarded"
}

// Explicit makes the discard visible: not flagged.
func Explicit() {
	_ = work()
}

// Exempt callees never fail by contract: fmt prints and the in-memory
// writers.
func Exempt(sb *strings.Builder) {
	fmt.Println("banner")
	sb.WriteString("x")
}

// Cleanup documents a sanctioned drop.
func Cleanup() {
	work() //mklint:allow errdrop — best-effort cache invalidation; failure only costs a recompute
}
