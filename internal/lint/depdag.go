package lint

import (
	"strconv"
	"strings"
)

const ruleDepDag = "depdag"

// Depdag enforces the module's package DAG from a declarative layer
// table instead of ad-hoc forbidden-import pairs. Every package maps
// (by longest path prefix) to a numbered layer; an import is legal when
// the importer's layer is strictly above the importee's, or when both
// sides fall under the same table entry (a package importing its own
// subpackages, e.g. internal/lint → internal/lint/callgraph). On top of
// the ranks, explicit deny edges carve out imports the numbers alone
// would allow — the wire schema package sits high in the DAG because
// out-of-process clients consume it, yet it must never link the engine.
//
// Packages under internal/ that are missing from the table are reported:
// a new package must take a position in the DAG before it ships.
var Depdag = &Analyzer{
	Name: ruleDepDag,
	Doc:  "package-DAG layering from a declarative table: lower layers never import higher ones; explicit deny edges for schema purity",
	Run:  runDepdag,
}

// depLayer is one row of the DAG table: every package whose
// module-relative path is under prefix sits at the given rank.
type depLayer struct {
	prefix string // module-relative dir prefix ("" = the root package only)
	rank   int
	note   string // short human name for diagnostics
}

// depLayers is the module's layer table, highest layers importing
// downward. Same-rank entries are peers: neither may import the other.
// internal/sim/policy has its own entry above the engine: policy
// packages import the sim kernel (and the memoized analysis products),
// never the reverse — the deny edge below names the rule explicitly.
var depLayers = []depLayer{
	{"internal/timeu", 10, "time utils"},
	{"internal/stats", 10, "statistics"},
	{"internal/pattern", 10, "(m,k) patterns"},
	{"internal/task", 20, "task model"},
	{"internal/fault", 20, "fault model"},
	{"internal/metrics", 20, "metrics"},
	{"internal/rta", 30, "response-time analysis"},
	{"internal/postpone", 35, "postponement policies"},
	{"internal/workload", 40, "workload generation"},
	{"internal/sim", 40, "simulation engine"},
	{"internal/trace", 45, "trace capture"},
	{"internal/analysis", 45, "cached analysis"},
	{"internal/sim/policy", 48, "scheduling policies"},
	{"internal/core", 50, "paper algorithms"},
	{"internal/experiment", 60, "experiment harness"},
	{"", 70, "public repro API"},
	{"internal/estimate", 75, "analytical estimator"},
	{"internal/serve/wire", 75, "HTTP/JSON schema"},
	{"internal/store", 75, "persistent result store"},
	{"internal/serve/client", 78, "HTTP client"},
	{"internal/serve", 80, "HTTP server"},
	{"internal/fleet", 85, "fleet orchestration"},
	{"internal/lint", 90, "static analysis"},
	{"cmd", 100, "binaries"},
	{"examples", 100, "examples"},
}

// depDeny is one explicit deny edge: packages under from must not import
// packages under to, regardless of rank, unless the importee is under
// except or the importer is under exceptFrom.
type depDeny struct {
	from string
	to   string // "" denies every module-internal import
	// except exempts importees; exceptFrom exempts importers (it carves a
	// subtree out of from — e.g. the policy packages under internal/sim
	// are not the kernel the sim→policy edge protects).
	except     string // "" = no exception
	exceptFrom string // "" = no exception
	why        string
}

var depDenies = []depDeny{
	{
		from: "internal/sim", exceptFrom: "internal/sim/policy", to: "internal/sim/policy",
		why: "the engine kernel must not know concrete policies; register new policies from internal/sim/policy sub-packages instead",
	},
	{
		from: "internal/serve/wire", to: "internal/sim",
		why: "wire is a pure schema package; translate engine types in internal/serve instead",
	},
	{
		from: "internal/serve/wire", to: "internal/core",
		why: "wire is a pure schema package; translate engine types in internal/serve instead",
	},
	{
		from: "internal/serve/wire", to: "internal/experiment",
		why: "wire is a pure schema package; translate engine types in internal/serve instead",
	},
	{
		from: "internal/serve/client", to: "internal/sim",
		why: "the out-of-process client must not link the engine",
	},
	{
		from: "internal/serve/client", to: "internal/core",
		why: "the out-of-process client must not link the engine",
	},
	{
		from: "internal/serve/client", to: "internal/experiment",
		why: "the out-of-process client must not link the engine",
	},
	{
		from: "internal/store", to: "internal/sim",
		why: "the store is a durability layer keyed on opaque bytes; it must not know the engine that produced them",
	},
	{
		from: "internal/store", to: "internal/core",
		why: "the store is a durability layer keyed on opaque bytes; it must not know the engine that produced them",
	},
	{
		from: "internal/store", to: "internal/experiment",
		why: "the store is a durability layer keyed on opaque bytes; it must not know the engine that produced them",
	},
	{
		from: "internal/lint", to: "", except: "internal/lint",
		why: "lint stays stdlib-only (plus its own callgraph) so it can load the module without importing what it analyzes",
	},
}

// layerOf resolves a module-relative package path to its longest-prefix
// table entry, or nil if uncovered.
func layerOf(rel string) *depLayer {
	var best *depLayer
	for i := range depLayers {
		l := &depLayers[i]
		if l.prefix == "" {
			if rel == "" && best == nil {
				best = l
			}
			continue
		}
		if underPath(rel, l.prefix) {
			if best == nil || len(l.prefix) > len(best.prefix) {
				best = l
			}
		}
	}
	return best
}

func runDepdag(p *Pass) {
	fromRel := p.Pkg.Rel
	fromLayer := layerOf(fromRel)
	if fromLayer == nil && strings.HasPrefix(fromRel, "internal/") {
		if len(p.Pkg.Files) > 0 {
			p.Reportf(ruleDepDag, p.Pkg.Files[0].Ast.Package,
				"package %s is not in the depdag layer table — add it to depLayers in internal/lint/depdag.go so its position in the DAG is explicit", fromRel)
		}
		return
	}
	module := p.Prog.Module
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Ast.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			var toRel string
			if path == module {
				toRel = ""
			} else if rel, ok := strings.CutPrefix(path, module+"/"); ok {
				toRel = rel
			} else {
				continue // stdlib
			}
			for _, d := range depDenies {
				if !underPath(fromRel, d.from) {
					continue
				}
				if d.exceptFrom != "" && underPath(fromRel, d.exceptFrom) {
					continue
				}
				if d.to != "" && !underPath(toRel, d.to) {
					continue
				}
				if d.except != "" && underPath(toRel, d.except) {
					continue
				}
				p.Reportf(ruleDepDag, imp.Pos(),
					"%s must not import %s — %s", d.from, path, d.why)
			}
			toLayer := layerOf(toRel)
			if toLayer == nil {
				if strings.HasPrefix(toRel, "internal/") {
					p.Reportf(ruleDepDag, imp.Pos(),
						"import of %s, which is not in the depdag layer table — add it to depLayers in internal/lint/depdag.go", path)
				}
				continue
			}
			if fromLayer == nil {
				continue // importer outside the table (non-internal, e.g. scripts)
			}
			if fromLayer == toLayer {
				continue // a package importing its own subtree
			}
			if fromLayer.rank <= toLayer.rank {
				p.Reportf(ruleDepDag, imp.Pos(),
					"import violates the package DAG: %s (layer %d, %s) must not import %s (layer %d, %s); dependencies only point from higher layers to lower ones",
					fromRel, fromLayer.rank, fromLayer.note, toRel, toLayer.rank, toLayer.note)
			}
		}
	}
}

// underPath reports whether rel equals prefix or sits beneath it.
func underPath(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}
