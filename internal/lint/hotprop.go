package lint

import (
	"go/ast"
	"strings"
)

const ruleHotProp = "hotprop"

// Hotprop closes the hole the per-function hotpath rule leaves open: a
// tagged engine function that calls an untagged helper silently moves
// its allocations one frame down, out of the rule's sight. Hotprop walks
// the module call graph forward from every //mklint:hotpath root and
// applies the same construct checks to every function that is reachable
// but not itself tagged, citing the (shortest) call chain that makes it
// hot so the report is auditable: "engine.step → wheel.scan → helper".
//
// Calls spawned with go statements still propagate heat: the engine's
// budget includes work it fans out. Functions behind plain function
// values (stored callbacks) are the one blind spot — tag those directly.
var Hotprop = &Analyzer{
	Name: ruleHotProp,
	Doc:  "hot-path hygiene propagated transitively through the call graph from //mklint:hotpath roots",
	Run:  runHotprop,
}

// hotChainMax bounds the reported chain length; longer chains are
// truncated in the middle ("root → a → … → leaf").
const hotChainMax = 4

func runHotprop(p *Pass) {
	reach := p.Prog.HotReach()
	tagged := p.Prog.hotTagged()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := p.Pkg.FuncObj(fd)
			if fn == nil || tagged[fn] {
				continue // directly tagged functions belong to hotpath
			}
			node := p.Prog.CallGraph().Node(fn)
			if node == nil || !reach.Reached(node) {
				continue
			}
			hc := &hotCheck{
				p:     p,
				rule:  ruleHotProp,
				chain: strings.Join(reach.Chain(node, hotChainMax), " → "),
			}
			hc.checkFunc(fd)
		}
	}
}
