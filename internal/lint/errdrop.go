package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

const ruleErrDrop = "errdrop"

// ErrDrop flags calls whose error result is silently discarded — a bare
// call statement, or a deferred/spawned call dropping its error. An
// explicit `_ = f()` is visible intent and is not flagged. The fmt print
// family and the never-failing in-memory writers (strings.Builder,
// bytes.Buffer) are exempt.
var ErrDrop = &Analyzer{
	Name: ruleErrDrop,
	Doc:  "no silently discarded error returns (use _ = f() to discard on purpose)",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(p, call) || errDropExempt(p, call) {
				return true
			}
			p.Reportf(ruleErrDrop, call.Pos(),
				"error result of %s is silently discarded; handle it or discard explicitly with _ =", callName(p, call))
			return true
		})
	}
}

// returnsError reports whether the call produces at least one error among
// its results.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface) && t.String() == "error"
}

// errDropExempt lists callees whose dropped error is conventional: the
// fmt print family and writers that document they never fail.
func errDropExempt(p *Pass, call *ast.CallExpr) bool {
	fn := p.Callee(call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type().String()
	return recv == "*strings.Builder" || recv == "*bytes.Buffer"
}

// callName renders a readable callee name for the diagnostic.
func callName(p *Pass, call *ast.CallExpr) string {
	if fn := p.Callee(call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + sig.Recv().Type().String() + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "the call"
}
