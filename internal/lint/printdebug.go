package lint

import (
	"go/ast"
)

const rulePrintDebug = "printdebug"

// PrintDebug flags stray fmt.Print/Printf/Println calls and the print /
// println builtins: library code must report through returned values,
// metrics sinks or an injected io.Writer. Command mains, examples and the
// trace renderer are exempt through the default scope table — those are
// the sanctioned places where human-facing output belongs.
var PrintDebug = &Analyzer{
	Name: rulePrintDebug,
	Doc:  "no stray stdout printing outside cmd/, examples/ and internal/trace",
	Run:  runPrintDebug,
}

var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runPrintDebug(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.IsBuiltin(call, "print") || p.IsBuiltin(call, "println") {
				p.Reportf(rulePrintDebug, call.Pos(),
					"builtin print/println writes to stderr and is for bootstrap debugging only; remove it")
				return true
			}
			fn := p.Callee(call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()] {
				p.Reportf(rulePrintDebug, call.Pos(),
					"fmt.%s writes to process stdout from library code; return the value, emit a metrics event, or write to an injected io.Writer", fn.Name())
			}
			return true
		})
	}
}
