package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const ruleFloatEq = "floateq"

// FloatEq flags exact equality comparisons between floating-point values.
// Simulated time is integer microseconds (timeu.Time) precisely so that
// scheduling comparisons are exact; float quantities that remain
// (utilizations, energies, milliseconds for reporting) accumulate
// rounding error, and == / != on them silently becomes
// platform-dependent. internal/timeu owns the tolerance helpers
// (timeu.ApproxEq / timeu.ApproxZero) and is the one package exempt via
// the default scope table.
var FloatEq = &Analyzer{
	Name: ruleFloatEq,
	Doc:  "no exact ==/!= on floating-point values outside internal/timeu's tolerance helpers",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			// Two constants fold exactly at compile time.
			if p.constExpr(be.X) && p.constExpr(be.Y) {
				return true
			}
			p.Reportf(ruleFloatEq, be.OpPos,
				"exact float %s is tolerance-unsafe; compare through timeu.ApproxEq/ApproxZero, or keep the quantity in integer timeu.Time", be.Op)
			return true
		})
	}
}

func (p *Pass) constExpr(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
