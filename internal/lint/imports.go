package lint

import (
	"strconv"
	"strings"
)

const ruleImports = "imports"

// Imports enforces the module's layering rules: schema packages stay pure.
// internal/serve/wire defines the HTTP/JSON contract and is imported by
// out-of-process clients (internal/serve/client, cmd/mkload, cmd/mkfleet);
// if it ever reached into the simulation internals, every wire consumer
// would link the engine. The rule pins the boundary the wire package's doc
// comment promises: wire may import the public repro package, never
// repro/internal/{sim,core,experiment}.
var Imports = &Analyzer{
	Name: ruleImports,
	Doc:  "layering: schema/wire packages must not import simulation internals",
	Run:  runImports,
}

// forbiddenDeps maps a module-relative package-path prefix (the importing
// side) to the module-relative package prefixes it must not import. Paths
// are matched as path prefixes, so a ban on internal/sim also covers any
// future internal/sim/subpackage.
var forbiddenDeps = []struct {
	scope string   // module-relative dir of the constrained packages
	bans  []string // module-relative package prefixes they must not import
	why   string
}{
	{
		scope: "internal/serve/wire",
		bans:  []string{"internal/sim", "internal/core", "internal/experiment"},
		why:   "wire is a pure schema package; translate engine types in internal/serve instead",
	},
}

func runImports(p *Pass) {
	module := p.Prog.Module
	for _, dep := range forbiddenDeps {
		if !underPath(p.Pkg.Rel, dep.scope) {
			continue
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Ast.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				rel, ok := strings.CutPrefix(path, module+"/")
				if !ok {
					continue // stdlib or the module root package
				}
				for _, ban := range dep.bans {
					if underPath(rel, ban) {
						p.Reportf(ruleImports, imp.Pos(),
							"%s must not import %s — %s", dep.scope, path, dep.why)
					}
				}
			}
		}
	}
}

// underPath reports whether rel is the path prefix or equals it.
func underPath(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}
