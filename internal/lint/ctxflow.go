package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

const ruleCtxFlow = "ctxflow"

// CtxFlow enforces the context plumbing conventions the cancellable batch
// API established: context.Context travels as the first parameter of a
// call chain (never inside a struct, which hides lifetimes and defeats
// per-call deadlines), and a function named *Context — the
// SimulateContext/SweepContext/RunContext naming convention for the
// ctx-accepting variant of an API — must actually accept one first.
var CtxFlow = &Analyzer{
	Name: ruleCtxFlow,
	Doc:  "context.Context is a first parameter, never a struct field; *Context functions take one",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				p.checkCtxParams(n.Type, n.Name.Name)
			case *ast.FuncLit:
				p.checkCtxParams(n.Type, "")
			case *ast.StructType:
				if n.Fields == nil {
					return true
				}
				for _, field := range n.Fields.List {
					if p.isCtxExpr(field.Type) {
						p.Reportf(ruleCtxFlow, field.Pos(),
							"context.Context stored in a struct outlives the call it belongs to; pass it as the first parameter instead")
					}
				}
			}
			return true
		})
	}
}

// checkCtxParams verifies ctx-first ordering and, for functions named
// *Context, that a context parameter exists at all.
func (p *Pass) checkCtxParams(ft *ast.FuncType, name string) {
	idx := 0
	firstIsCtx := false
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if p.isCtxExpr(field.Type) {
			if idx == 0 {
				firstIsCtx = true
			} else {
				p.Reportf(ruleCtxFlow, field.Pos(),
					"context.Context must be the first parameter, not parameter %d", idx+1)
			}
		}
		idx += n
	}
	if name != "" && name != "Context" && strings.HasSuffix(name, "Context") && !firstIsCtx {
		p.Reportf(ruleCtxFlow, ft.Pos(),
			"%s follows the *Context naming convention but does not take a context.Context first parameter", name)
	}
}

// isCtxExpr reports whether the type expression denotes context.Context.
func (p *Pass) isCtxExpr(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
