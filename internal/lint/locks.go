package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const ruleLocks = "locks"

// Locks enforces mutex discipline across the whole program:
//
//  1. no sync.Mutex/RWMutex copied by value (value receivers, value
//     parameters, plain assignments, range over a slice of lock-bearing
//     structs) — a copied lock guards nothing;
//  2. no Unlock without a dominating Lock in the same function (a
//     must-hold walk: a Lock that happens on only one branch does not
//     dominate);
//  3. no early return while a lock is held without a deferred unlock —
//     the classic leak when an error path grows after the happy path;
//  4. no blocking operation (channel send/receive, select, time.Sleep,
//     WaitGroup.Wait, net/http round trip) while a lock is held, checked
//     transitively through the call graph a few hops deep, with the call
//     chain in the diagnostic.
//
// The held-set analysis merges branches by intersection and drops
// terminating branches (return/panic/break), so the branch-unlock-return
// idiom — Lock; if hit { Unlock; return }; …; Unlock — is clean.
var Locks = &Analyzer{
	Name: ruleLocks,
	Doc:  "mutex discipline: no by-value copies, dominated unlocks, no held locks across returns or blocking operations",
	Run:  runLocks,
}

// lockBlockDepth bounds the transitive blocking search from a statement
// executed under a lock.
const lockBlockDepth = 3

func runLocks(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Ast.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				p.checkMutexCopyFunc(d)
				if d.Body != nil {
					w := &lockWalker{p: p, reported: make(map[token.Pos]bool)}
					w.stmts(d.Body.List, newHeldSet())
				}
			case *ast.GenDecl:
				// Copies via plain var initialization are caught in the
				// walker's assignment handling; nothing at decl level.
			}
		}
	}
}

// --- check 1: mutex copied by value -----------------------------------

func (p *Pass) checkMutexCopyFunc(decl *ast.FuncDecl) {
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			if t := p.Pkg.Info.TypeOf(field.Type); t != nil && containsMutex(t) {
				p.Reportf(ruleLocks, field.Type.Pos(),
					"method %s has a value receiver of %s which contains a mutex; the copy's lock guards nothing — use a pointer receiver", decl.Name.Name, t)
			}
		}
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			if t := p.Pkg.Info.TypeOf(field.Type); t != nil && containsMutex(t) {
				p.Reportf(ruleLocks, field.Type.Pos(),
					"parameter of %s passes %s by value, copying the mutex inside it — pass a pointer", decl.Name.Name, t)
			}
		}
	}
	if decl.Body == nil {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if copiesMutex(p, rhs) {
					p.Reportf(ruleLocks, rhs.Pos(),
						"assignment copies %s by value, and it contains a mutex — take a pointer instead", p.TypeOf(rhs))
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := p.TypeOf(n.X)
			if t == nil {
				return true
			}
			if s, ok := t.Underlying().(*types.Slice); ok && containsMutex(s.Elem()) {
				p.Reportf(ruleLocks, n.Value.Pos(),
					"range copies each %s element by value, and it contains a mutex — range over indices or a slice of pointers", s.Elem())
			}
		}
		return true
	})
}

// copiesMutex reports whether evaluating rhs copies an existing
// lock-bearing value. Composite literals and calls construct fresh
// values whose zero-value locks have never been used, so they are fine.
func copiesMutex(p *Pass, rhs ast.Expr) bool {
	switch ast.Unparen(rhs).(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.UnaryExpr, *ast.FuncLit:
		return false
	}
	t := p.TypeOf(rhs)
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return containsMutex(t)
}

// containsMutex reports whether t is, or transitively embeds by value,
// a sync.Mutex or sync.RWMutex.
func containsMutex(t types.Type) bool {
	return containsMutex1(t, make(map[types.Type]bool))
}

func containsMutex1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if containsMutex1(st.Field(i).Type(), seen) {
			return true
		}
	}
	return false
}

// --- checks 2–4: the must-hold walker ---------------------------------

// holdInfo tracks one held lock: where it was acquired and whether a
// deferred unlock already covers every exit.
type holdInfo struct {
	pos      token.Pos
	deferred bool
	read     bool // RLock rather than Lock
}

type heldSet map[string]*holdInfo

func newHeldSet() heldSet { return make(heldSet) }

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		cp := *v
		out[k] = &cp
	}
	return out
}

// intersect keeps only locks held in both sets — the must-hold merge.
func (h heldSet) intersect(other heldSet) heldSet {
	out := make(heldSet)
	for k, v := range h {
		if o, ok := other[k]; ok {
			cp := *v
			cp.deferred = v.deferred && o.deferred
			out[k] = &cp
		}
	}
	return out
}

type lockWalker struct {
	p *Pass
	// reported dedupes diagnostics per position so a lock held across a
	// loop body is not flagged once per iteration analysis.
	reported map[token.Pos]bool
}

func (w *lockWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.p.Reportf(ruleLocks, pos, format, args...)
}

// stmts walks a statement list with the incoming held set, returning the
// outgoing set and whether control flow terminates (return/panic/branch)
// inside the list.
func (w *lockWalker) stmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range list {
		var done bool
		held, done = w.stmt(s, held)
		if done {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := w.lockOp(call); ok {
				return w.applyLockOp(held, key, op, call.Pos()), false
			}
		}
		w.checkBlocking(s, held)
		return held, false
	case *ast.DeferStmt:
		if key, op, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			if info, exists := held[key]; exists {
				info.deferred = true
			}
		}
		return held, false
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.checkBlocking(s, held)
		return held, false
	case *ast.ReturnStmt:
		w.checkBlocking(s, held)
		for key, info := range held {
			if !info.deferred {
				w.reportf(s.Pos(),
					"return while %s is still locked (acquired at line %d) with no deferred unlock — this path leaks the lock", key, w.p.Prog.Fset.Position(info.pos).Line)
			}
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto ends this straight-line segment; treat as
		// terminating for merge purposes (conservative, no report).
		return held, true
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.checkBlocking(s.Cond, held)
		thenHeld, thenDone := w.stmts(s.Body.List, held.clone())
		elseHeld, elseDone := held.clone(), false
		if s.Else != nil {
			elseHeld, elseDone = w.stmt(s.Else, held.clone())
		}
		switch {
		case thenDone && elseDone:
			return held, true
		case thenDone:
			return elseHeld, false
		case elseDone:
			return thenHeld, false
		default:
			return thenHeld.intersect(elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkBlocking(s.Cond, held)
		}
		w.stmts(s.Body.List, held.clone())
		return held, false
	case *ast.RangeStmt:
		w.checkBlocking(s.X, held)
		if len(held) > 0 {
			if t := w.p.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.blockingHeld(s.X.Pos(), "range over channel", held)
				}
			}
		}
		w.stmts(s.Body.List, held.clone())
		return held, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				held, _ = w.stmt(sw.Init, held)
			}
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		return w.mergeClauses(body, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.blockingHeld(s.Pos(), "select", held)
		}
		return w.mergeClauses(s.Body, held)
	case *ast.GoStmt:
		// The spawned goroutine runs on its own stack; its blocking does
		// not happen under the spawner's locks.
		return held, false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	default:
		if s != nil {
			w.checkBlocking(s, held)
		}
		return held, false
	}
}

// mergeClauses walks each clause of a switch/select body on a cloned
// held set and intersects the survivors.
func (w *lockWalker) mergeClauses(body *ast.BlockStmt, held heldSet) (heldSet, bool) {
	var merged heldSet
	anyFall := false
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			// The comm operation's blocking-ness is the select's, already
			// judged by the caller; only the clause body is walked.
			list = c.Body
		default:
			continue
		}
		out, done := w.stmts(list, held.clone())
		if done {
			continue
		}
		anyFall = true
		if merged == nil {
			merged = out
		} else {
			merged = merged.intersect(out)
		}
	}
	if !anyFall {
		// Every clause terminated (or the body is empty); fall through
		// with the entry set — a switch without a default still falls out.
		return held, false
	}
	return merged.intersect(held.clone()), false
}

// lockOp recognizes mu.Lock / RLock / Unlock / RUnlock / TryLock calls
// on sync mutexes and returns the lock's key (the rendered receiver
// expression, "s.mu") and the operation name.
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := w.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

func (w *lockWalker) applyLockOp(held heldSet, key, op string, pos token.Pos) heldSet {
	switch op {
	case "Lock", "RLock":
		held[key] = &holdInfo{pos: pos, read: op == "RLock"}
	case "TryLock", "TryRLock":
		// Acquisition is conditional; without modeling the bool result we
		// cannot add it to the must-hold set.
	case "Unlock", "RUnlock":
		if _, ok := held[key]; !ok {
			w.reportf(pos,
				"%s.%s without a dominating %s in this function — either the lock is taken on only some paths or this function unlocks a lock it never acquired", key, op, lockFor(op))
		}
		delete(held, key)
	}
	return held
}

func lockFor(unlock string) string {
	if unlock == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

// checkBlocking scans one statement or expression (excluding nested
// function literals and go statements) for operations that block while a
// lock is held — directly, or transitively through called functions.
func (w *lockWalker) checkBlocking(n ast.Node, held heldSet) {
	if len(held) == 0 || n == nil {
		return
	}
	p := w.p
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			w.blockingHeld(x.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.blockingHeld(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if _, _, isLock := w.lockOp(x); isLock {
				return true
			}
			if what, ok := blockingStdCall(p.Pkg, x); ok {
				w.blockingHeld(x.Pos(), what, held)
				return true
			}
			if fn := p.Callee(x); fn != nil {
				if chain, fact, ok := p.Prog.blocksWithin(fn, lockBlockDepth); ok {
					w.blockingHeld(x.Pos(), fact.what+" via "+strings.Join(chain, " → "), held)
				}
			}
		}
		return true
	})
}

func (w *lockWalker) blockingHeld(pos token.Pos, what string, held heldSet) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	w.reportf(pos,
		"blocking operation (%s) while %s is held — a stalled peer turns into a stalled lock; release before blocking", what, strings.Join(keys, ", "))
}
