package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// BaselineSchema identifies the on-disk baseline format.
const BaselineSchema = "mkss-lint/v1"

// BaselineEntry is one accepted finding. Entries are keyed by
// (rule, file, message) — deliberately line-independent, so unrelated
// edits that shift a finding down the file do not invalidate the
// baseline. Why is the human justification for accepting the finding;
// the ratchet refuses empty or TODO-prefixed justifications, so an
// accepted finding always carries a written reason.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
	Why     string `json:"why"`
}

func (e BaselineEntry) key() string { return e.Rule + "\x00" + e.File + "\x00" + e.Message }

func diagKey(d Diagnostic) string { return d.Rule + "\x00" + d.File + "\x00" + d.Message }

// Baseline is the accepted-findings ratchet: findings present here pass,
// findings absent here fail, and entries that no longer match any
// finding are stale and force a refresh — the baseline only ever
// shrinks unless a human writes down why it must grow.
type Baseline struct {
	Schema  string          `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads and schema-checks a baseline file. Justification
// quality is checked separately by Validate so that refresh flows can
// read a work-in-progress file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("baseline %s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// Validate enforces that every entry carries a real justification: a
// non-empty why that is not a TODO placeholder.
func (b *Baseline) Validate() error {
	var bad []string
	for _, e := range b.Entries {
		why := strings.TrimSpace(e.Why)
		if why == "" || strings.HasPrefix(strings.ToUpper(why), "TODO") {
			bad = append(bad, fmt.Sprintf("%s [%s] %q", e.File, e.Rule, e.Message))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("baseline entries without a written justification (fill in \"why\" or fix the finding):\n  %s",
			strings.Join(bad, "\n  "))
	}
	return nil
}

// Apply splits current findings against the baseline: fresh findings
// (not baselined — these fail the ratchet) and stale entries (baselined
// but no longer firing — the finding was fixed, so the entry must be
// removed via a refresh).
func (b *Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	accepted := make(map[string]bool, len(b.Entries))
	for _, e := range b.Entries {
		accepted[e.key()] = true
	}
	seen := make(map[string]bool, len(diags))
	for _, d := range diags {
		k := diagKey(d)
		seen[k] = true
		if !accepted[k] {
			fresh = append(fresh, d)
		}
	}
	for _, e := range b.Entries {
		if !seen[e.key()] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// RefreshBaseline builds a baseline from the current findings, carrying
// justifications over from prev (nil for none) where the entry survives.
// New entries get a TODO placeholder that Validate rejects, so a refresh
// cannot silently launder a new finding into the accepted set.
func RefreshBaseline(diags []Diagnostic, prev *Baseline) *Baseline {
	whys := make(map[string]string)
	if prev != nil {
		for _, e := range prev.Entries {
			whys[e.key()] = e.Why
		}
	}
	b := &Baseline{Schema: BaselineSchema, Entries: []BaselineEntry{}}
	dedup := make(map[string]bool)
	for _, d := range diags {
		k := diagKey(d)
		if dedup[k] {
			continue
		}
		dedup[k] = true
		why, ok := whys[k]
		if !ok {
			why = "TODO: justify accepting this finding, or fix it"
		}
		b.Entries = append(b.Entries, BaselineEntry{Rule: d.Rule, File: d.File, Message: d.Message, Why: why})
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].key() < b.Entries[j].key() })
	return b
}

// WriteBaseline writes b as indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
