package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one synthetic package per (name, src)
// pair, resolving cross-package imports among the given sources.
func typecheck(t *testing.T, srcs map[string]string, order []string) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	built := map[string]*types.Package{}
	var pkgs []*Package
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := built[path]; ok {
			return p, nil
		}
		t.Fatalf("unexpected import %q", path)
		return nil, nil
	})
	for _, path := range order {
		f, err := parser.ParseFile(fset, path+".go", srcs[path], parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		info := &types.Info{
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Types:      make(map[ast.Expr]types.TypeAndValue),
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		built[path] = tp
		pkgs = append(pkgs, &Package{Types: tp, Info: info, Files: []*ast.File{f}})
	}
	return pkgs
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// find returns the node whose compact name matches, failing the test on
// a miss.
func find(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q in graph", name)
	return nil
}

// calls reports whether the graph has an edge from → to.
func calls(from, to *Node) bool {
	for _, e := range from.Out {
		if e.Callee == to {
			return true
		}
	}
	return false
}

const srcLeaf = `package leaf

func Helper() int { return 1 }
`

const srcMain = `package mainpkg

import "leaf"

type Stepper interface{ Step() int }

type Wheel struct{ n int }

func (w *Wheel) Step() int { return w.n + leaf.Helper() }

type Idle struct{}

func (Idle) Step() int { return 0 }

// Decoy has the same method name but does not implement Stepper.
type Decoy struct{}

func (Decoy) Step(extra int) int { return extra }

func Drive(s Stepper) int { return s.Step() }

func Root() int {
	w := &Wheel{}
	go spin(w)
	return Drive(w) + direct()
}

func direct() int { return leaf.Helper() }

func spin(s Stepper) { s.Step() }

func unreached() int { return leaf.Helper() }
`

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	pkgs := typecheck(t, map[string]string{"leaf": srcLeaf, "mainpkg": srcMain}, []string{"leaf", "mainpkg"})
	return Build(pkgs)
}

func TestStaticAndCrossPackageEdges(t *testing.T) {
	g := buildTestGraph(t)
	root := find(t, g, "mainpkg.Root")
	drive := find(t, g, "mainpkg.Drive")
	direct := find(t, g, "mainpkg.direct")
	helper := find(t, g, "leaf.Helper")
	if !calls(root, drive) {
		t.Error("Root should call Drive (static)")
	}
	if !calls(root, direct) {
		t.Error("Root should call direct (static)")
	}
	if !calls(direct, helper) {
		t.Error("direct should call leaf.Helper (cross-package static)")
	}
}

// TestInterfaceResolution pins the CHA semantics: a call through an
// interface method resolves to every in-module implementer — and only
// to implementers (same-name methods with different signatures are not
// candidates).
func TestInterfaceResolution(t *testing.T) {
	g := buildTestGraph(t)
	drive := find(t, g, "mainpkg.Drive")
	wheelStep := find(t, g, "mainpkg.Wheel.Step")
	idleStep := find(t, g, "mainpkg.Idle.Step")
	decoyStep := find(t, g, "mainpkg.Decoy.Step")
	if !calls(drive, wheelStep) {
		t.Error("Drive's s.Step() should resolve to (*Wheel).Step — pointer-receiver implementer")
	}
	if !calls(drive, idleStep) {
		t.Error("Drive's s.Step() should resolve to Idle.Step — value-receiver implementer")
	}
	if calls(drive, decoyStep) {
		t.Error("Drive's s.Step() must not resolve to Decoy.Step — wrong signature, not an implementer")
	}
	var kinds []EdgeKind
	for _, e := range drive.Out {
		kinds = append(kinds, e.Kind)
	}
	for _, k := range kinds {
		if k != KindInterface {
			t.Errorf("Drive edge kind = %v, want KindInterface", k)
		}
	}
}

func TestGoStatementEdges(t *testing.T) {
	g := buildTestGraph(t)
	root := find(t, g, "mainpkg.Root")
	spin := find(t, g, "mainpkg.spin")
	var goEdge *Edge
	for _, e := range root.Out {
		if e.Callee == spin {
			goEdge = e
		}
	}
	if goEdge == nil {
		t.Fatal("Root should have an edge to spin (go statement)")
	}
	if !goEdge.Go {
		t.Error("Root → spin edge should be marked as a go-statement spawn")
	}
}

func TestReachAndChain(t *testing.T) {
	g := buildTestGraph(t)
	root := find(t, g, "mainpkg.Root")
	helper := find(t, g, "leaf.Helper")
	unreached := find(t, g, "mainpkg.unreached")
	res := g.Reach([]*Node{root})
	if !res.Reached(helper) {
		t.Error("leaf.Helper should be reachable from Root")
	}
	if res.Reached(unreached) {
		t.Error("unreached must not be reachable from Root")
	}
	// The shortest chain to Helper goes through direct (length 3);
	// interface paths are longer.
	chain := res.Chain(helper, 8)
	want := []string{"mainpkg.Root", "mainpkg.direct", "leaf.Helper"}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	// Truncation keeps the root and the target with an ellipsis between.
	short := res.Chain(helper, 3)
	if len(short) != 3 || short[0] != "mainpkg.Root" || short[2] != "leaf.Helper" {
		t.Fatalf("truncated chain = %v, want [mainpkg.Root … leaf.Helper]", short)
	}
}
