// Package callgraph builds a whole-program, CHA-style call graph over a
// type-checked module, using nothing beyond go/ast and go/types. It is
// the substrate of internal/lint's whole-program analyzers: hotprop
// walks it forward from //mklint:hotpath roots, and locks consults the
// per-node blocking facts it derives.
//
// The construction is Class Hierarchy Analysis: a static call resolves
// to its one callee; a call through an interface method resolves to the
// matching method of every in-module named type that implements the
// interface. That over-approximates dynamic dispatch (every implementer
// is assumed callable), which is the right polarity for linting —
// reachability never under-reports. Calls through plain function values
// (fields, parameters, variables of function type) are not resolved;
// analyzers that care (hotprop) tag the functions behind such seams
// explicitly instead.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked package handed to Build — the minimal
// slice of a loader's output the graph needs.
type Package struct {
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// EdgeKind distinguishes how a call site was resolved.
type EdgeKind int

const (
	// KindStatic is a direct call of a package function or a method on
	// a concrete receiver.
	KindStatic EdgeKind = iota
	// KindInterface is a CHA-resolved interface method call: one edge
	// per in-module implementer.
	KindInterface
)

// Edge is one resolved call: Caller invokes Callee at Site.
type Edge struct {
	Caller *Node
	Callee *Node
	Site   *ast.CallExpr
	Kind   EdgeKind
	// Go marks a call spawned by a go statement.
	Go bool
}

// Node is one function of the module. Funcs without a body in the
// module (declared but external, or interface method stubs) still get a
// node so edges have somewhere to land, but their Decl is nil.
type Node struct {
	Func *types.Func
	// Decl is the defining declaration, nil for body-less functions.
	Decl *ast.FuncDecl
	// Pkg is the package the function is declared in.
	Pkg *Package
	Out []*Edge
	In  []*Edge
}

// Name returns a compact human form: "pkg.Func" or "pkg.(Recv).Method".
func (n *Node) Name() string {
	fn := n.Func
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// Graph is the module call graph. Nodes are keyed by *types.Func
// identity (the canonical object go/types assigns each declaration).
type Graph struct {
	nodes map[*types.Func]*Node
	// methodIndex maps a method name to the concrete in-module methods
	// bearing it — the CHA candidate pool.
	methodIndex map[string][]*Node
}

// Node returns the graph node for fn, or nil if fn is not a module
// function.
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every node in deterministic (position) order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func.Pos() < out[j].Func.Pos() })
	return out
}

// Build constructs the call graph of the given packages. Every FuncDecl
// (including methods) becomes a node; edges are added for static calls,
// go/defer statements, and CHA-resolved interface method calls whose
// implementers are in-module.
func Build(pkgs []*Package) *Graph {
	g := &Graph{
		nodes:       make(map[*types.Func]*Node),
		methodIndex: make(map[string][]*Node),
	}
	// Pass 1: nodes for every declared function.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = n
				if fd.Recv != nil {
					g.methodIndex[fn.Name()] = append(g.methodIndex[fn.Name()], n)
				}
			}
		}
	}
	// Pass 2: edges from every call site inside a declared body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.nodes[pkg.Info.Defs[fd.Name].(*types.Func)]
				g.addCallEdges(caller, fd.Body, pkg)
			}
		}
	}
	return g
}

// addCallEdges walks body (which includes any nested function literals —
// a literal's calls are attributed to the declaring function, the
// closest named owner a diagnostic can point at) and records edges.
func (g *Graph) addCallEdges(caller *Node, body ast.Node, pkg *Package) {
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		inGo := false
		switch n := n.(type) {
		case *ast.CallExpr:
			call = n
		case *ast.GoStmt:
			call = n.Call
			inGo = true
		default:
			return true
		}
		if inGo {
			// The CallExpr child will be visited again by Inspect; mark
			// the go-ness here and skip the duplicate plain visit by
			// recording now and pruning below.
			g.resolveCall(caller, call, pkg, true)
			return false
		}
		g.resolveCall(caller, call, pkg, false)
		return true
	})
}

// resolveCall records the edge(s) for one call site.
func (g *Graph) resolveCall(caller *Node, call *ast.CallExpr, pkg *Package, inGo bool) {
	// Arguments and the go-called closure body still carry calls.
	for _, arg := range call.Args {
		if inGo {
			g.addCallEdges(caller, arg, pkg)
		}
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok && inGo {
		g.addCallEdges(caller, fl, pkg)
		return
	}
	var id *ast.Ident
	var sel *ast.SelectorExpr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		sel = fun
	default:
		return
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return // builtin, conversion, or a plain function value
	}
	if sel != nil {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				g.addInterfaceEdges(caller, call, s.Recv(), fn, inGo)
				return
			}
		}
	}
	if callee := g.nodes[origin(fn)]; callee != nil {
		g.link(caller, callee, call, KindStatic, inGo)
	}
}

// addInterfaceEdges resolves an interface method call to every
// in-module implementer (CHA) and records one edge per target.
func (g *Graph) addInterfaceEdges(caller *Node, call *ast.CallExpr, recv types.Type, m *types.Func, inGo bool) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, cand := range g.methodIndex[m.Name()] {
		sig, ok := cand.Func.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		// The method set of T may miss pointer-receiver methods; check
		// both T and *T so every implementer is found.
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			g.link(caller, cand, call, KindInterface, inGo)
		}
	}
}

// link appends one edge, deduplicating repeats of the same
// (caller, callee, site) triple.
func (g *Graph) link(caller, callee *Node, site *ast.CallExpr, kind EdgeKind, inGo bool) {
	if caller == nil || callee == nil {
		return
	}
	for _, e := range caller.Out {
		if e.Callee == callee && e.Site == site {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind, Go: inGo}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// origin maps an instantiated generic function back to its declaration
// object, which is what the node map is keyed by.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// ReachResult is the outcome of a forward reachability sweep: for every
// reached node, the edge it was first discovered through (nil for a
// root), which reconstructs a shortest call chain for diagnostics.
type ReachResult struct {
	From map[*Node]*Edge
}

// Reached reports whether n was reached (roots count).
func (r *ReachResult) Reached(n *Node) bool { _, ok := r.From[n]; return ok }

// Chain reconstructs the call chain root → ... → n as node names,
// truncating in the middle to at most max entries (min 3). The chain is
// the BFS-shortest one, so diagnostics stay readable.
func (r *ReachResult) Chain(n *Node, max int) []string {
	if max < 3 {
		max = 3
	}
	var rev []*Node
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		e := r.From[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	names := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		names = append(names, rev[i].Name())
	}
	if len(names) > max {
		head := names[:max-2]
		out := append(append([]string{}, head...), "…", names[len(names)-1])
		return out
	}
	return names
}

// Reach runs a breadth-first forward sweep from roots. Nodes without a
// declaration (no body in the module) are reached but not expanded.
func (g *Graph) Reach(roots []*Node) *ReachResult {
	res := &ReachResult{From: make(map[*Node]*Edge)}
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := res.From[r]; ok {
			continue
		}
		res.From[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, ok := res.From[e.Callee]; ok {
				continue
			}
			res.From[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return res
}

// SitePos returns the position of the call site an edge was discovered
// through — a convenience for diagnostics.
func (e *Edge) SitePos() token.Pos { return e.Site.Pos() }
