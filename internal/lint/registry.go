package lint

// All returns the full analyzer registry in reporting order. The set is
// the project's invariant catalogue; DESIGN.md documents what each rule
// protects and README.md how to run and suppress them.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		FloatEq,
		CtxFlow,
		HotPath,
		Hotprop,
		Goleak,
		Locks,
		ErrDrop,
		PrintDebug,
		Depdag,
	}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
