package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineApply(t *testing.T) {
	b := &Baseline{Schema: BaselineSchema, Entries: []BaselineEntry{
		{Rule: "hotprop", File: "a.go", Message: "m1", Why: "accepted"},
		{Rule: "locks", File: "b.go", Message: "m2", Why: "accepted"},
	}}
	diags := []Diagnostic{
		{File: "a.go", Line: 7, Rule: "hotprop", Message: "m1"},  // baselined (line ignored)
		{File: "c.go", Line: 1, Rule: "goleak", Message: "new"},  // fresh
		{File: "a.go", Line: 2, Rule: "hotprop", Message: "new"}, // fresh: same rule+file, different message
	}
	fresh, stale := b.Apply(diags)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want 2 entries", fresh)
	}
	if len(stale) != 1 || stale[0].File != "b.go" {
		t.Fatalf("stale = %v, want the b.go entry", stale)
	}
}

func TestBaselineValidate(t *testing.T) {
	bad := &Baseline{Schema: BaselineSchema, Entries: []BaselineEntry{
		{Rule: "locks", File: "a.go", Message: "m", Why: "TODO: justify accepting this finding, or fix it"},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("TODO-prefixed why must fail validation")
	}
	bad.Entries[0].Why = "   "
	if err := bad.Validate(); err == nil {
		t.Error("blank why must fail validation")
	}
	bad.Entries[0].Why = "sync.Once cold path; fast path is atomic"
	if err := bad.Validate(); err != nil {
		t.Errorf("real justification rejected: %v", err)
	}
}

func TestBaselineRefreshAndRoundTrip(t *testing.T) {
	prev := &Baseline{Schema: BaselineSchema, Entries: []BaselineEntry{
		{Rule: "hotprop", File: "a.go", Message: "m1", Why: "hand-written reason"},
	}}
	diags := []Diagnostic{
		{File: "a.go", Line: 3, Rule: "hotprop", Message: "m1"},
		{File: "b.go", Line: 9, Rule: "goleak", Message: "m2"},
	}
	b := RefreshBaseline(diags, prev)
	if len(b.Entries) != 2 {
		t.Fatalf("refreshed entries = %v, want 2", b.Entries)
	}
	byKey := map[string]BaselineEntry{}
	for _, e := range b.Entries {
		byKey[e.Rule] = e
	}
	if byKey["hotprop"].Why != "hand-written reason" {
		t.Errorf("surviving entry lost its why: %q", byKey["hotprop"].Why)
	}
	if !strings.HasPrefix(byKey["goleak"].Why, "TODO") {
		t.Errorf("new entry should get a TODO placeholder, got %q", byKey["goleak"].Why)
	}
	if b.Validate() == nil {
		t.Error("a freshly refreshed baseline with new entries must not validate until the whys are written")
	}

	path := filepath.Join(t.TempDir(), "base.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != BaselineSchema || len(back.Entries) != 2 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
