package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

const ruleHotPath = "hotpath"

// HotPath guards the allocation-free event loop. Functions (or whole
// files) tagged //mklint:hotpath — the sim engine's per-event machinery,
// the Scratch arenas, the rta k-way merge — bought Simulate down to a
// handful of allocs/op; this rule flags the constructs that silently undo
// that: fmt formatting (allocates and reflects), any reflect use,
// appends that box concrete values into interface slices, and escaping
// closures that capture locals. Formatting inside a panic call is exempt:
// a panic path never executes in a healthy run.
//
// The tag is enforced transitively by the companion hotprop rule (see
// hotprop.go), which walks the call graph from the tagged roots so an
// untagged helper cannot bypass the checks.
var HotPath = &Analyzer{
	Name: ruleHotPath,
	Doc:  "no fmt, reflect, interface-boxing appends or escaping capturing closures in //mklint:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !p.Hot(fd) || fd.Body == nil {
				continue
			}
			hc := &hotCheck{p: p, rule: ruleHotPath}
			hc.checkFunc(fd)
		}
	}
}

// hotCheck runs the hot-path construct checks over one function body.
// The hotpath rule uses it on directly tagged functions; hotprop reuses
// it on functions the call graph proves reachable from a tagged root,
// with the reaching chain woven into every diagnostic.
type hotCheck struct {
	p    *Pass
	rule string
	// chain, when non-empty, is the call chain that put the function on
	// the hot path ("engine.step → wheel.scan → helper"); it is appended
	// to diagnostics so the propagation is auditable at a glance.
	chain string
}

// context renders the chain suffix of a diagnostic ("" for hotpath).
func (hc *hotCheck) context() string {
	if hc.chain == "" {
		return ""
	}
	return " (hot call chain: " + hc.chain + ")"
}

func (hc *hotCheck) checkFunc(decl *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			hc.checkCall(n, stack)
		case *ast.FuncLit:
			hc.checkFuncLit(n, stack, decl)
		}
		return true
	})
}

func (hc *hotCheck) checkCall(call *ast.CallExpr, stack []ast.Node) {
	p := hc.p
	if p.IsBuiltin(call, "append") {
		hc.checkBoxingAppend(call)
		return
	}
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if !underPanic(p, stack) {
			p.Reportf(hc.rule, call.Pos(),
				"fmt.%s allocates and reflects inside a hot-path function; precompute the string or move formatting off the hot path%s", fn.Name(), hc.context())
		}
	case "reflect":
		p.Reportf(hc.rule, call.Pos(),
			"reflect.%s inside a hot-path function; hot paths must stay monomorphic%s", fn.Name(), hc.context())
	}
}

// underPanic reports whether the innermost enclosing call chain passes
// through a builtin panic(...) argument.
func underPanic(p *Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok && p.IsBuiltin(call, "panic") {
			return true
		}
	}
	return false
}

// checkBoxingAppend flags append(s, v) where s is an interface slice and
// v a concrete value: each such append heap-boxes v.
func (hc *hotCheck) checkBoxingAppend(call *ast.CallExpr) {
	p := hc.p
	if len(call.Args) < 2 {
		return
	}
	slice, ok := typeAsSlice(p.TypeOf(call.Args[0]))
	if !ok {
		return
	}
	if _, ok := slice.Elem().Underlying().(*types.Interface); !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // s... spread of an existing slice does not box
	}
	for _, arg := range call.Args[1:] {
		t := p.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		p.Reportf(hc.rule, arg.Pos(),
			"append boxes concrete %s into an interface slice inside a hot-path function%s", t, hc.context())
	}
}

func typeAsSlice(t types.Type) (*types.Slice, bool) {
	if t == nil {
		return nil, false
	}
	s, ok := t.Underlying().(*types.Slice)
	return s, ok
}

// checkFuncLit flags closures that both escape (passed, returned,
// stored, deferred) and capture variables of the enclosing function: each
// event-loop pass then allocates a fresh closure + captured environment.
// Non-escaping literals stay on the stack and are free.
func (hc *hotCheck) checkFuncLit(fl *ast.FuncLit, stack []ast.Node, decl *ast.FuncDecl) {
	p := hc.p
	if len(stack) < 2 || !escapingFuncLit(fl, stack) {
		return
	}
	caps := p.captures(fl, decl)
	if len(caps) == 0 {
		return
	}
	p.Reportf(hc.rule, fl.Pos(),
		"escaping closure captures %s inside a hot-path function; it allocates per call — hoist the state or pass it as parameters%s", strings.Join(caps, ", "), hc.context())
}

func escapingFuncLit(fl *ast.FuncLit, stack []ast.Node) bool {
	parent := stack[len(stack)-2]
	switch par := parent.(type) {
	case *ast.CallExpr:
		if par.Fun == fl {
			// Immediately invoked: free unless deferred/spawned.
			if len(stack) >= 3 {
				switch stack[len(stack)-3].(type) {
				case *ast.DeferStmt, *ast.GoStmt:
					return true
				}
			}
			return false
		}
		return true // passed as an argument
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.AssignStmt:
		for _, lhs := range par.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				return true // stored into a field, map or slice element
			}
		}
		return false
	default:
		return false
	}
}

// captures lists variables of the enclosing function the literal closes
// over (parameters, receiver and locals declared outside the literal).
func (p *Pass) captures(fl *ast.FuncLit, decl *ast.FuncDecl) []string {
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		pos := v.Pos()
		if pos >= fl.Pos() && pos < fl.End() {
			return true // declared inside the literal
		}
		if pos < decl.Pos() || pos >= decl.End() {
			return true // package-level or foreign
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
