package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, printed as "file:line: [rule] message".
type Diagnostic struct {
	File    string `json:"file"` // module-relative slash path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, scoping tables
	// and //mklint:allow directives.
	Name string
	// Doc is a one-line description of the invariant the rule protects.
	Doc string
	Run func(*Pass)
}

// MetaRule is the reserved rule name for problems with mklint's own
// directives (unknown rules in an allow, missing reasons, stale allows).
const MetaRule = "allow"

// DefaultScopes lists, per rule, module-relative path prefixes where the
// rule does not apply. This is the framework's per-path scoping: timeu
// owns the float tolerance helpers so it may compare floats, and command
// mains, examples and the trace renderer are the sanctioned homes of
// human-facing printing.
func DefaultScopes() map[string][]string {
	return map[string][]string{
		"floateq":    {"internal/timeu/"},
		"printdebug": {"cmd/", "examples/", "internal/trace/"},
	}
}

// Options configures one Run.
type Options struct {
	// Analyzers to execute; nil means All().
	Analyzers []*Analyzer
	// Scopes maps rule name to disabled path prefixes; nil means
	// DefaultScopes(). Passing a non-nil map replaces the defaults, so
	// callers extending them should start from DefaultScopes().
	Scopes map[string][]string
	// Match filters which packages are analyzed; nil analyzes all.
	Match func(*Package) bool
}

// Pass is the per-package unit of work handed to an Analyzer.
type Pass struct {
	Prog *Program
	Pkg  *Package

	hotDecls map[*ast.FuncDecl]bool
	report   func(rule string, pos token.Pos, msg string)
}

// Reportf records a diagnostic for rule at pos.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	p.report(rule, pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Callee resolves the *types.Func a call statically invokes (package
// functions and methods; nil for builtins, conversions and indirect
// calls through function values).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether the call invokes the named universe builtin.
func (p *Pass) IsBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// Hot reports whether decl is tagged //mklint:hotpath (directly or via a
// file-level "//mklint:hotpath file" tag).
func (p *Pass) Hot(decl *ast.FuncDecl) bool { return p.hotDecls[decl] }

// directive is one parsed //mklint: comment.
type directive struct {
	file   string // module-relative path
	line   int
	pos    token.Pos
	verb   string // "allow" or "hotpath"
	rule   string // allow only
	reason string // allow only
	arg    string // hotpath only ("" or "file")
	used   bool
}

const directivePrefix = "//mklint:"

// parseDirectives extracts every //mklint: directive from f. Malformed
// directives are reported through report under MetaRule; knownRules is
// the full registry (allows naming any registered rule are well-formed
// even when that rule is not part of this run).
func parseDirectives(prog *Program, f *File, knownRules map[string]bool, report func(rule string, pos token.Pos, msg string)) []*directive {
	var out []*directive
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			d := &directive{file: f.Rel, line: pos.Line, pos: c.Pos()}
			verb, rest, _ := strings.Cut(text, " ")
			d.verb = verb
			switch verb {
			case "allow":
				d.rule, d.reason = splitAllow(rest)
				if d.rule == "" {
					report(MetaRule, c.Pos(), "malformed directive: want //mklint:allow <rule> — <reason>")
					continue
				}
				if !knownRules[d.rule] {
					report(MetaRule, c.Pos(), fmt.Sprintf("allow names unknown rule %q", d.rule))
					continue
				}
				if d.reason == "" {
					report(MetaRule, c.Pos(), fmt.Sprintf("allow %s is missing a reason: want //mklint:allow %s — <reason>", d.rule, d.rule))
					continue
				}
			case "hotpath":
				d.arg = strings.TrimSpace(rest)
				if d.arg != "" && d.arg != "file" {
					report(MetaRule, c.Pos(), fmt.Sprintf("malformed directive: //mklint:hotpath takes no argument or \"file\", got %q", d.arg))
					continue
				}
			default:
				report(MetaRule, c.Pos(), fmt.Sprintf("unknown mklint directive %q", verb))
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

// splitAllow parses "rule — reason" (also accepting "--", "-" or ":" as
// the separator, or none at all).
func splitAllow(s string) (rule, reason string) {
	s = strings.TrimSpace(s)
	rule, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	for _, sep := range []string{"—", "--", "-", ":"} {
		if r, ok := strings.CutPrefix(rest, sep); ok {
			rest = strings.TrimSpace(r)
			break
		}
	}
	return rule, rest
}

// hotpathDecls computes the set of function declarations tagged hot in a
// package: a "//mklint:hotpath" line inside a function's doc comment tags
// that function; a standalone "//mklint:hotpath file" comment anywhere in
// a file tags every function in it.
func hotpathDecls(pkg *Package) map[*ast.FuncDecl]bool {
	tagged := make(map[*ast.FuncDecl]bool)
	for _, f := range pkg.Files {
		fileWide := false
		for _, cg := range f.Ast.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == directivePrefix+"hotpath file" {
					fileWide = true
				}
			}
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fileWide {
				tagged[fd] = true
				continue
			}
			if fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) == directivePrefix+"hotpath" {
					tagged[fd] = true
				}
			}
		}
	}
	return tagged
}

// Run executes the configured analyzers over the program and returns the
// surviving diagnostics, sorted by file, line and rule:
//
//   - a diagnostic on line L is suppressed by a matching
//     "//mklint:allow <rule> — reason" on line L (trailing) or L-1
//     (preceding);
//   - allows that suppress nothing — for a rule that is part of this run
//     — are themselves reported as stale;
//   - malformed or unknown-rule directives are reported under MetaRule.
func Run(prog *Program, opts Options) []Diagnostic {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	scopes := opts.Scopes
	if scopes == nil {
		scopes = DefaultScopes()
	}
	knownRules := make(map[string]bool)
	for _, a := range All() {
		knownRules[a.Name] = true
	}
	running := make(map[string]bool)
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var raw []Diagnostic
	var allows []*directive
	for _, pkg := range prog.Packages {
		if opts.Match != nil && !opts.Match(pkg) {
			continue
		}
		report := func(rule string, pos token.Pos, msg string) {
			position := prog.Fset.Position(pos)
			file := relFile(prog, pkg, position.Filename)
			for _, prefix := range scopes[rule] {
				if strings.HasPrefix(file, prefix) {
					return
				}
			}
			raw = append(raw, Diagnostic{
				File: file, Line: position.Line, Col: position.Column,
				Rule: rule, Message: msg,
			})
		}
		for _, f := range pkg.Files {
			allows = append(allows, parseDirectives(prog, f, knownRules, report)...)
		}
		pass := &Pass{Prog: prog, Pkg: pkg, hotDecls: hotpathDecls(pkg), report: report}
		for _, a := range analyzers {
			a.Run(pass)
		}
	}

	allowAt := make(map[string][]*directive) // "file:line" -> allows
	for _, d := range allows {
		if d.verb != "allow" {
			continue
		}
		key := fmt.Sprintf("%s:%d", d.file, d.line)
		allowAt[key] = append(allowAt[key], d)
	}
	var out []Diagnostic
	for _, diag := range raw {
		if diag.Rule != MetaRule && suppress(allowAt, diag) {
			continue
		}
		out = append(out, diag)
	}
	for _, d := range allows {
		if d.verb == "allow" && !d.used && running[d.rule] {
			out = append(out, Diagnostic{
				File: d.file, Line: d.line, Col: 1, Rule: MetaRule,
				Message: fmt.Sprintf("stale allow: no %s diagnostic here anymore — remove the directive", d.rule),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

// suppress marks-and-reports whether an allow on the diagnostic's line or
// the line above covers it.
func suppress(allowAt map[string][]*directive, diag Diagnostic) bool {
	hit := false
	for _, line := range []int{diag.Line, diag.Line - 1} {
		for _, d := range allowAt[fmt.Sprintf("%s:%d", diag.File, line)] {
			if d.rule == diag.Rule {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// relFile maps an absolute position filename back to the module-relative
// path, falling back to the raw name for positions outside the module.
func relFile(prog *Program, pkg *Package, filename string) string {
	for _, f := range pkg.Files {
		if f.Name == filename {
			return f.Rel
		}
	}
	if rel, ok := strings.CutPrefix(filename, prog.Root+"/"); ok {
		return rel
	}
	return filename
}
