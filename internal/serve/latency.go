package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyRing is a fixed-size sliding window of request latencies, the
// source of the p95 gauge in /healthz that the fleet autoscaler reads.
// A ring (rather than a decaying histogram) keeps the math exact over
// the last N requests and the memory constant; 512 samples is plenty of
// resolution for a scale-up/down decision.
type latencyRing struct {
	mu  sync.Mutex
	buf []float64 // milliseconds
	idx int
	n   int
}

func newLatencyRing(size int) *latencyRing {
	return &latencyRing{buf: make([]float64, size)}
}

// observe records one request's latency.
func (l *latencyRing) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	l.buf[l.idx] = ms
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p95 returns the 95th-percentile latency over the window in
// milliseconds; 0 with no samples.
func (l *latencyRing) p95() float64 {
	l.mu.Lock()
	if l.n == 0 {
		l.mu.Unlock()
		return 0
	}
	window := make([]float64, l.n)
	copy(window, l.buf[:l.n])
	l.mu.Unlock()
	sort.Float64s(window)
	i := (len(window) * 95) / 100
	if i >= len(window) {
		i = len(window) - 1
	}
	return window[i]
}
