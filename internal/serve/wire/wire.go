// Package wire is the versioned request/response schema of the mkss
// serving API — the one definition of every JSON document that crosses
// the HTTP boundary, consumed by both the server handlers
// (internal/serve) and the typed client (internal/serve/client). Before
// this package existed each side kept its own copy of the structs and
// they could drift silently; now a field added to a document is added
// exactly once and both sides compile against it.
//
// Layering rule (enforced by mklint's "imports" rule): wire is a pure
// schema package. It may import the public repro package for the shared
// task-set spec and counters vocabulary, but never the simulation
// internals (repro/internal/sim, core, experiment) — a wire type is data
// on the wire, not behavior.
//
// Schema versioning: every top-level document carries its schema tag
// (mkss-run/v1, mkss-sweep/v1, mkss-analyze/v1, mkss-estimate/v1). Bump
// a tag on any backwards-incompatible change; additive changes keep the
// version.
package wire

import "repro"

// Schema version tags of the documents served by the endpoints.
const (
	RunSchema      = "mkss-run/v1"
	SweepSchema    = "mkss-sweep/v1"
	AnalyzeSchema  = "mkss-analyze/v1"
	EstimateSchema = "mkss-estimate/v1"
)

// SimulateRequest is the POST /v1/simulate body. Set shares the CLI
// decode path (repro.SetSpec), so malformed fields come back as the same
// "tasks[2].wcet_ms: ..." errors mksim prints.
type SimulateRequest struct {
	Set           repro.SetSpec `json:"set"`
	Approach      string        `json:"approach"`
	Scenario      string        `json:"scenario,omitempty"`
	Seed          uint64        `json:"seed,omitempty"`
	HorizonMS     float64       `json:"horizon_ms,omitempty"`
	TransientRate float64       `json:"transient_rate,omitempty"`
	// TimeoutMS caps this request's simulation work; zero uses the server
	// default. The deadline propagates as a context into the engine.
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
}

// RunDoc is the /v1/simulate response (schema mkss-run/v1): the same
// shape mksim -json prints, plus the canonical set fingerprint the
// server coalesces on.
type RunDoc struct {
	Schema        string         `json:"schema"`
	Fingerprint   string         `json:"fingerprint"`
	Policy        string         `json:"policy"`
	Scenario      string         `json:"scenario"`
	Seed          uint64         `json:"seed"`
	HorizonUS     int64          `json:"horizon_us"`
	Schedulable   bool           `json:"r_pattern_schedulable"`
	ActiveEnergy  float64        `json:"active_energy"`
	TotalEnergy   float64        `json:"total_energy"`
	MKSatisfied   bool           `json:"mk_satisfied"`
	ViolationAt   []int          `json:"violation_at"`
	Counters      repro.Counters `json:"counters"`
	PermanentAtUS int64          `json:"permanent_fault_at_us,omitempty"`
	PermanentProc int            `json:"permanent_fault_proc,omitempty"`
}

// EstimateRequest is the /v1/estimate body (POST) or its query-parameter
// equivalent (GET). The first six fields mirror SimulateRequest exactly,
// so an estimate can be refined into the simulation it approximates by
// re-sending the same request with Refine set.
type EstimateRequest struct {
	Set           repro.SetSpec `json:"set"`
	Approach      string        `json:"approach"`
	Scenario      string        `json:"scenario,omitempty"`
	Seed          uint64        `json:"seed,omitempty"`
	HorizonMS     float64       `json:"horizon_ms,omitempty"`
	TransientRate float64       `json:"transient_rate,omitempty"`
	// Backend selects the estimator ("twin" by default; "sim" runs the
	// real simulation through the estimator interface — same answer as
	// /v1/simulate, but packaged as an EstimateDoc).
	Backend string `json:"backend,omitempty"`
	// Refine falls through to the real discrete-event simulation under
	// the server's admission path: the response is the byte-identical
	// mkss-run/v1 document /v1/simulate would return for the same
	// parameters (and it consumes an execution slot, unlike the twin).
	Refine bool `json:"refine,omitempty"`
	// TimeoutMS caps the request's work; only meaningful with Refine (a
	// twin answer completes in microseconds).
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
}

// EstimateDoc is the /v1/estimate response (schema mkss-estimate/v1)
// when Refine is false: the analytical twin's closed-form answer.
// Energies are estimates with committed per-scenario error bounds
// (results/twin_error_bounds.json); the schedulability verdict is exact
// (the same Theorem-1 test the simulator's runs report).
type EstimateDoc struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Backend     string `json:"backend"`
	Policy      string `json:"policy"`
	Scenario    string `json:"scenario"`
	Seed        uint64 `json:"seed"`
	HorizonUS   int64  `json:"horizon_us"`
	Schedulable bool   `json:"r_pattern_schedulable"`
	// ActiveEnergy/TotalEnergy are the twin's closed-form estimates of
	// the quantities a simulation run reports.
	ActiveEnergy float64 `json:"active_energy"`
	TotalEnergy  float64 `json:"total_energy"`
	// MKPredicted is the twin's (m,k)-satisfaction prediction: true iff
	// the set is R-pattern schedulable (Theorem 1 then guarantees the
	// (m,k)-deadlines under at most one permanent fault plus transients).
	MKPredicted bool `json:"mk_predicted"`
	// Exact reports whether the answer came from a real simulation (the
	// "sim" backend) rather than the closed-form twin.
	Exact bool `json:"exact"`
	// ElapsedUS is the server-side estimation time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// SweepRequest is the POST /v1/sweep body. The response is a chunked
// JSONL stream: one "start" line, one "row" line per utilization
// interval as it completes, and a terminal "done" (or "error") line.
type SweepRequest struct {
	Scenario        string   `json:"scenario,omitempty"`
	Seed            uint64   `json:"seed,omitempty"`
	SetsPerInterval int      `json:"sets_per_interval,omitempty"`
	MaxCandidates   int      `json:"max_candidates,omitempty"`
	Lo              float64  `json:"lo,omitempty"`
	Hi              float64  `json:"hi,omitempty"`
	Approaches      []string `json:"approaches,omitempty"`
	TimeoutMS       float64  `json:"timeout_ms,omitempty"`
	// IntervalOffset shifts the per-interval seed derivation (see
	// experiment.Config.IntervalOffset): a request for the single
	// interval [lo, lo+0.1) with IntervalOffset i returns the row that
	// interval i of a whole sweep with the same seed would produce, bit
	// for bit. It is how the fleet coordinator shards one logical sweep
	// into per-interval work units across workers.
	IntervalOffset int `json:"interval_offset,omitempty"`
}

// SweepLine is one line of the /v1/sweep JSONL stream. Type is "start",
// "row", "done" or "error"; the other fields are populated per type.
type SweepLine struct {
	Type   string `json:"type"`
	Schema string `json:"schema,omitempty"` // start: SweepSchema
	// start fields
	Scenario  string `json:"scenario,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Intervals int    `json:"intervals,omitempty"`
	// row fields
	UtilLo     float64            `json:"util_lo,omitempty"`
	UtilHi     float64            `json:"util_hi,omitempty"`
	Sets       int                `json:"sets,omitempty"`
	Candidates int                `json:"candidates,omitempty"`
	NormMean   map[string]float64 `json:"norm_mean,omitempty"`
	NormCI95   map[string]float64 `json:"norm_ci95,omitempty"`
	Violations map[string]int     `json:"violations,omitempty"`
	// done/error fields
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// AnalyzeTask is one task's offline products in an AnalyzeDoc.
type AnalyzeTask struct {
	Name         string  `json:"name,omitempty"`
	PeriodUS     int64   `json:"period_us"`
	DeadlineUS   int64   `json:"deadline_us"`
	WCETUS       int64   `json:"wcet_us"`
	M            int     `json:"m"`
	K            int     `json:"k"`
	ResponseUS   int64   `json:"response_us"`
	RTAConverged bool    `json:"rta_converged"`
	PromotionUS  int64   `json:"promotion_us"`
	ThetaUS      *int64  `json:"theta_us,omitempty"`
	MKUtil       float64 `json:"mk_util"`
}

// AnalyzeDoc is the /v1/analyze response (schema mkss-analyze/v1): the
// memoized offline products for a task set, served from the session's
// analysis LRU — R-pattern schedulability, RTA response times and
// promotion intervals Yi (Eq. 2), and the θ postponement intervals of
// Defs. 2–5 when the analysis succeeds.
type AnalyzeDoc struct {
	Schema      string           `json:"schema"`
	Fingerprint string           `json:"fingerprint"`
	Utilization float64          `json:"utilization"`
	MKUtil      float64          `json:"mk_utilization"`
	Schedulable bool             `json:"r_pattern_schedulable"`
	Tasks       []AnalyzeTask    `json:"tasks"`
	ThetaError  string           `json:"theta_error,omitempty"`
	Cache       repro.CacheStats `json:"cache"`
}

// ErrorDoc is the uniform JSON error body of every 4xx/5xx response:
// a human-readable message plus a stable machine-readable code clients
// can branch on without parsing prose (the fleet coordinator classifies
// retryable vs permanent failures through it).
type ErrorDoc struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Error codes carried by ErrorDoc.Code. The code is a function of what
// went wrong, not merely of the HTTP status: both admission rejections
// are 429 but CodeQueueFull means "come back when a slot frees" while
// CodeRateLimited means "slow down".
const (
	CodeBadRequest       = "bad_request"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeRateLimited      = "rate_limited"
	CodeQueueFull        = "queue_full"
	// CodeQuotaExceeded is the third 429 flavor: this tenant's own token
	// bucket is empty (the server as a whole may be idle) — back off for
	// the Retry-After the response carries.
	CodeQuotaExceeded = "quota_exceeded"
	CodeUnprocessable = "unprocessable"
	CodeUnavailable   = "unavailable"
	CodeDeadline      = "deadline"
	CodeInternal      = "internal"
	// CodeUnsupportedBackend is a 501: the requested estimate backend has
	// no model for the requested policy (e.g. the analytical twin asked
	// about MKSS-DBP). Permanent for that (backend, policy) pair — retry
	// with refine=true or another backend, not later.
	CodeUnsupportedBackend = "unsupported_backend"
)

// HealthDoc is the /healthz body: liveness plus the load gauges a fleet
// coordinator or autoscaler uses to pick and size workers. The P95MS,
// QuotaRejected and Store fields are additive (always safe to ignore).
type HealthDoc struct {
	Status   string `json:"status"`
	InFlight int64  `json:"inflight"`
	Queued   int64  `json:"queued"`
	// P95MS is the 95th-percentile latency of recent /v1/* requests in
	// milliseconds (0 until enough samples exist) — the autoscaler's
	// per-worker load signal alongside Queued.
	P95MS float64 `json:"p95_ms"`
	// QuotaRejected counts quota rejections per tenant; only tenants
	// that were actually rejected appear.
	QuotaRejected map[string]uint64 `json:"quota_rejected,omitempty"`
	// Store reports the persistent result store, when one is configured.
	Store *StoreStatsDoc `json:"store,omitempty"`
}

// StoreStatsDoc is the persistent result store's health snapshot
// (internal/store): lookup traffic plus on-disk shape.
type StoreStatsDoc struct {
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	Writes           uint64 `json:"writes"`
	CorruptRecovered uint64 `json:"corrupt_recovered"`
	Segments         int    `json:"segments"`
	Keys             int    `json:"keys"`
	Superseded       int    `json:"superseded"`
	DiskBytes        int64  `json:"disk_bytes"`
}
