package wire

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type,
// and requires the result to be deeply equal — every field survives the
// wire, no field is silently dropped by a tag typo.
func roundTrip(t *testing.T, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v)).Interface()
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	got := reflect.ValueOf(out).Elem().Interface()
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("%T round trip:\n sent %+v\n got  %+v", v, v, got)
	}
}

func sampleSet() repro.SetSpec {
	return repro.SetSpec{Tasks: []repro.TaskSpec{
		{Name: "t1", PeriodMS: 5, DeadlineMS: 4, WCETMS: 3, M: 2, K: 4},
		{Name: "t2", PeriodMS: 10, DeadlineMS: 10, WCETMS: 3, M: 1, K: 2},
	}}
}

// TestRoundTrip populates every field of every wire document with a
// non-zero value and requires an exact JSON round trip.
func TestRoundTrip(t *testing.T) {
	theta := int64(1500)
	docs := []any{
		SimulateRequest{
			Set: sampleSet(), Approach: "selective", Scenario: "both",
			Seed: 7, HorizonMS: 40, TransientRate: 1e-6, TimeoutMS: 250,
		},
		RunDoc{
			Schema: RunSchema, Fingerprint: "fp", Policy: "MKSS-Selective",
			Scenario: "permanent", Seed: 7, HorizonUS: 40000,
			Schedulable: true, ActiveEnergy: 12, TotalEnergy: 13.5,
			MKSatisfied: true, ViolationAt: []int{1},
			Counters:      repro.Counters{},
			PermanentAtUS: 1234, PermanentProc: 1,
		},
		EstimateRequest{
			Set: sampleSet(), Approach: "dp", Scenario: "permanent",
			Seed: 9, HorizonMS: 80, TransientRate: 2e-6,
			Backend: "twin", Refine: true, TimeoutMS: 100,
		},
		EstimateDoc{
			Schema: EstimateSchema, Fingerprint: "fp", Backend: "twin",
			Policy: "MKSS-DP", Scenario: "none", Seed: 9, HorizonUS: 80000,
			Schedulable: true, ActiveEnergy: 11.5, TotalEnergy: 12.25,
			MKPredicted: true, Exact: false, ElapsedUS: 42,
		},
		SweepRequest{
			Scenario: "both", Seed: 2020, SetsPerInterval: 3,
			MaxCandidates: 500, Lo: 0.1, Hi: 0.4,
			Approaches: []string{"st", "dp"}, TimeoutMS: 1000, IntervalOffset: 2,
		},
		SweepLine{
			Type: "row", Schema: SweepSchema, Scenario: "none", Seed: 1,
			Intervals: 9, UtilLo: 0.1, UtilHi: 0.2, Sets: 3, Candidates: 500,
			NormMean:   map[string]float64{"st": 1},
			NormCI95:   map[string]float64{"st": 0.1},
			Violations: map[string]int{"st": 0},
			ElapsedMS:  10.5, Error: "boom",
		},
		AnalyzeTask{
			Name: "t1", PeriodUS: 5000, DeadlineUS: 4000, WCETUS: 3000,
			M: 2, K: 4, ResponseUS: 3000, RTAConverged: true,
			PromotionUS: 1000, ThetaUS: &theta, MKUtil: 0.3,
		},
		AnalyzeDoc{
			Schema: AnalyzeSchema, Fingerprint: "fp", Utilization: 0.9,
			MKUtil: 0.45, Schedulable: true,
			Tasks:      []AnalyzeTask{{PeriodUS: 5000}},
			ThetaError: "theta failed", Cache: repro.CacheStats{},
		},
		ErrorDoc{Error: "queue full", Code: CodeQueueFull},
		HealthDoc{Status: "ok", InFlight: 1, Queued: 2},
	}
	for _, d := range docs {
		roundTrip(t, d)
	}
}

// TestEstimateRequestMirrorsSimulateRequest pins the refine contract:
// every SimulateRequest field exists on EstimateRequest with the same
// type and JSON tag, so an estimate request can be replayed as the
// simulation it approximates without translation.
func TestEstimateRequestMirrorsSimulateRequest(t *testing.T) {
	sim := reflect.TypeOf(SimulateRequest{})
	est := reflect.TypeOf(EstimateRequest{})
	for i := 0; i < sim.NumField(); i++ {
		sf := sim.Field(i)
		ef, ok := est.FieldByName(sf.Name)
		if !ok {
			t.Errorf("EstimateRequest lacks SimulateRequest field %s", sf.Name)
			continue
		}
		if ef.Type != sf.Type {
			t.Errorf("EstimateRequest.%s type %v, SimulateRequest has %v", sf.Name, ef.Type, sf.Type)
		}
		if ef.Tag.Get("json") != sf.Tag.Get("json") {
			t.Errorf("EstimateRequest.%s json tag %q, SimulateRequest has %q",
				sf.Name, ef.Tag.Get("json"), sf.Tag.Get("json"))
		}
	}
}

// TestSchemaTags pins the version strings clients dispatch on.
func TestSchemaTags(t *testing.T) {
	want := map[string]string{
		RunSchema:      "mkss-run/v1",
		SweepSchema:    "mkss-sweep/v1",
		AnalyzeSchema:  "mkss-analyze/v1",
		EstimateSchema: "mkss-estimate/v1",
	}
	for got, exp := range want {
		if got != exp {
			t.Errorf("schema tag %q, want %q", got, exp)
		}
	}
}
