package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/serve/wire"
	"repro/internal/store"
	"repro/internal/timeu"
	"repro/internal/workload"
)

// The request/response documents of every endpoint live in the shared
// internal/serve/wire package — the one schema both this server and
// internal/serve/client compile against. The aliases below keep the
// serve-qualified names (serve.RunDoc, serve.SweepLine, ...) that
// internal/fleet, cmd/mkfleet and existing tests already use.
const (
	RunSchema      = wire.RunSchema
	SweepSchema    = wire.SweepSchema
	AnalyzeSchema  = wire.AnalyzeSchema
	EstimateSchema = wire.EstimateSchema
)

type (
	SimulateRequest = wire.SimulateRequest
	RunDoc          = wire.RunDoc
	EstimateRequest = wire.EstimateRequest
	EstimateDoc     = wire.EstimateDoc
	SweepRequest    = wire.SweepRequest
	SweepLine       = wire.SweepLine
	AnalyzeTask     = wire.AnalyzeTask
	AnalyzeDoc      = wire.AnalyzeDoc
	ErrorDoc        = wire.ErrorDoc
	HealthDoc       = wire.HealthDoc
)

// Error codes carried by ErrorDoc.Code (see wire for the vocabulary).
const (
	CodeBadRequest         = wire.CodeBadRequest
	CodeMethodNotAllowed   = wire.CodeMethodNotAllowed
	CodeRateLimited        = wire.CodeRateLimited
	CodeQueueFull          = wire.CodeQueueFull
	CodeQuotaExceeded      = wire.CodeQuotaExceeded
	CodeUnprocessable      = wire.CodeUnprocessable
	CodeUnavailable        = wire.CodeUnavailable
	CodeDeadline           = wire.CodeDeadline
	CodeInternal           = wire.CodeInternal
	CodeUnsupportedBackend = wire.CodeUnsupportedBackend
)

// codeForStatus maps an HTTP status onto the default error code; paths
// that know better (queue full) pass an explicit code to rejectCode.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusTooManyRequests:
		return CodeRateLimited
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusGatewayTimeout:
		return CodeDeadline
	}
	return CodeInternal
}

// decodeBody strictly decodes the request body into v, bounding its
// size. Unknown fields are rejected so schema typos fail loudly.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// reject writes a JSON error with the given status and the status's
// default error code; retryAfter > 0 adds the Retry-After backpressure
// header (429/503 responses).
func (s *Server) reject(w http.ResponseWriter, status int, retryAfter int, msg string) {
	s.rejectCode(w, status, retryAfter, codeForStatus(status), msg)
}

// rejectCode is reject with an explicit error code for paths where the
// status alone is ambiguous (the two 429 flavors).
func (s *Server) rejectCode(w http.ResponseWriter, status int, retryAfter int, code, msg string) {
	s.failures.Add(1)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(ErrorDoc{Error: msg, Code: code}); err != nil {
		fmt.Fprintf(s.cfg.Log, "mkservd: write error response: %v\n", err)
	}
}

// fail maps a handler error onto the HTTP status vocabulary: admission
// rejections keep their status and Retry-After, deadline expiry is 504,
// cancellation during drain is 503, and everything else is a 422
// configuration/simulation error.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var ae *admitError
	switch {
	case errors.As(err, &ae):
		s.rejected.Add(1)
		s.rejectCode(w, ae.status, ceilSeconds(ae.retryAfter), ae.code, ae.msg)
	case errors.Is(err, errHTTPDeadline):
		s.reject(w, http.StatusGatewayTimeout, 0, err.Error())
	case errors.Is(err, errHTTPCanceled):
		s.reject(w, http.StatusServiceUnavailable, 0, err.Error())
	default:
		s.reject(w, http.StatusUnprocessableEntity, 0, err.Error())
	}
}

// Sentinel wrappers so fail can classify context errors after they have
// been wrapped by the engine ("sim: interrupted: context canceled").
var (
	errHTTPDeadline = errors.New("deadline exceeded")
	errHTTPCanceled = errors.New("canceled")
)

// classifyCtx rewraps an error that carries a context cause into the
// matching sentinel, preserving the original message.
func classifyCtx(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", errHTTPDeadline, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %v", errHTTPCanceled, err)
	}
	return err
}

// writeJSON writes v as the complete JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Fprintf(s.cfg.Log, "mkservd: write response: %v\n", err)
	}
}

// admitRate applies rate admission to one request: the global token
// bucket first (host protection), then the per-tenant bucket (fairness).
// Both 429 flavors carry a Retry-After derived from the rejecting
// bucket's own refill time, so a client's backoff matches the bucket
// that actually stopped it.
func (s *Server) admitRate(w http.ResponseWriter, r *http.Request) bool {
	if s.bucket != nil {
		if ok, retry := s.bucket.take(); !ok {
			s.rejected.Add(1)
			s.reject(w, http.StatusTooManyRequests, ceilSeconds(retry),
				"request rate limit exceeded")
			return false
		}
	}
	if s.tenants != nil {
		tenant := Tenant(r)
		if ok, retry := s.tenants.take(tenant); !ok {
			s.rejected.Add(1)
			s.events.emit(eventQuotaReject, "", tenant)
			s.rejectCode(w, http.StatusTooManyRequests, ceilSeconds(retry), CodeQuotaExceeded,
				fmt.Sprintf("tenant %q quota exceeded", tenant))
			return false
		}
	}
	return true
}

// ceilSeconds rounds a Retry-After hint up to whole seconds (the
// header's resolution); a positive hint never rounds to zero.
func ceilSeconds(d time.Duration) int {
	return int((d + time.Second - 1) / time.Second)
}

// simulateKey canonicalizes the identity of one simulate request: the
// set fingerprint (names excluded — they cannot influence the run) plus
// every config field that can change the result. The same key serves
// both in-process coalescing (flightGroup) and the persistent store, so
// the two dedupe layers agree on what "the same request" means.
func simulateKey(set *repro.Set, a repro.Approach, sc repro.Scenario, req SimulateRequest) string {
	return store.RunKey(
		analysis.Fingerprint(set),
		a.String(),
		sc.String(),
		req.Seed,
		int64(timeu.FromMillis(req.HorizonMS)),
		req.TransientRate,
	)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	if !s.admitRate(w, r) {
		return
	}
	var req SimulateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, 0, "parse request: "+err.Error())
		return
	}
	set, err := req.Set.Set()
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	a, err := repro.ParseApproach(orDefault(req.Approach, "selective"))
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	sc, err := repro.ParseScenario(orDefault(req.Scenario, "none"))
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	s.serveSimulate(w, r, req, set, a, sc)
}

// serveSimulate is the post-parse core of /v1/simulate — coalesced,
// admitted, executed and written. /v1/estimate's refine=true path calls
// it with the translated request, which is what makes a refined estimate
// byte-identical to the simulation it approximates: both producers run
// this one function (and share one coalescing flight when concurrent).
func (s *Server) serveSimulate(w http.ResponseWriter, r *http.Request, req SimulateRequest, set *repro.Set, a repro.Approach, sc repro.Scenario) {
	ctx, cancel := s.workCtx(r, req.TimeoutMS)
	defer cancel()

	key := simulateKey(set, a, sc, req)
	// The persistent store is consulted before admission: a hit is the
	// bytes a live run would produce (the store is keyed on everything
	// that can change them), served without an execution slot, so a warm
	// restart absorbs repeat traffic at disk-read cost.
	if s.cfg.Store != nil {
		if val, ok := s.cfg.Store.Get(key); ok {
			s.events.emit(eventStoreHit, key, Tenant(r))
			w.Header().Set("X-Mkss-Store", "hit")
			s.writeRaw(w, val)
			return
		}
		s.events.emit(eventStoreMiss, key, Tenant(r))
	}

	val, shared, err := s.flights.do(ctx, key, func(lctx context.Context) ([]byte, error) {
		release, err := s.adm.acquire(lctx)
		if err != nil {
			return nil, err
		}
		defer release()
		res, err := s.runner.Simulate(lctx, set, a, repro.RunConfig{
			HorizonMS:     req.HorizonMS,
			Scenario:      sc,
			Seed:          req.Seed,
			TransientRate: req.TransientRate,
		})
		if err != nil {
			return nil, err
		}
		s.recordRun(res)
		doc := RunDoc{
			Schema:       RunSchema,
			Fingerprint:  analysis.Fingerprint(set),
			Policy:       res.Policy,
			Scenario:     sc.String(),
			Seed:         req.Seed,
			HorizonUS:    int64(res.Horizon),
			Schedulable:  s.runner.Analysis(set).Schedulable(),
			ActiveEnergy: res.ActiveEnergy(),
			TotalEnergy:  res.TotalEnergy(),
			MKSatisfied:  res.MKSatisfied(),
			ViolationAt:  res.ViolationAt,
			Counters:     res.Counters,
		}
		if pf := res.PermanentFault; pf != nil {
			doc.PermanentAtUS = int64(pf.At)
			doc.PermanentProc = pf.Proc
		}
		data, merr := json.Marshal(doc)
		if merr != nil {
			return nil, merr
		}
		// Write-back: the next process lifetime (or the next fleet run)
		// serves these bytes without simulating. A store failure costs
		// only future hits, never this response.
		if s.cfg.Store != nil {
			if perr := s.cfg.Store.Put(key, data); perr != nil {
				fmt.Fprintf(s.cfg.Log, "mkservd: store write-back: %v\n", perr)
			} else {
				s.events.emit(eventStoreWrite, key, "")
			}
		}
		return data, nil
	})
	if shared {
		s.coalesced.Add(1)
		w.Header().Set("X-Mkss-Coalesced", "1")
	}
	if err != nil {
		s.fail(w, classifyCtx(err))
		return
	}
	s.writeRaw(w, val)
}

// writeRaw writes a prebuilt JSON document plus the trailing newline.
// val may be shared (a coalesced flight's buffer, the store's copy):
// the newline is written separately, never appended into it.
func (s *Server) writeRaw(w http.ResponseWriter, val []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(val); err == nil {
		if _, err = io.WriteString(w, "\n"); err != nil {
			fmt.Fprintf(s.cfg.Log, "mkservd: write response: %v\n", err)
		}
	} else {
		fmt.Fprintf(s.cfg.Log, "mkservd: write response: %v\n", err)
	}
}

// RowLine builds the "row" stream line for one completed sweep interval.
// It is the single encoding of a sweep row shared by the streaming
// /v1/sweep handler and any client that needs to reproduce the stream
// locally (mkfleet -local): two producers of the same Row marshal to the
// same bytes because they build the same SweepLine here.
func RowLine(approaches []repro.Approach, row experiment.Row) SweepLine {
	line := SweepLine{
		Type:       "row",
		UtilLo:     row.Interval.Lo,
		UtilHi:     row.Interval.Hi,
		Sets:       len(row.Sets),
		Candidates: row.Candidates,
		NormMean:   map[string]float64{},
		NormCI95:   map[string]float64{},
		Violations: map[string]int{},
	}
	for _, a := range approaches {
		line.NormMean[a.String()] = row.NormMean[a]
		line.NormCI95[a.String()] = row.NormCI[a]
		line.Violations[a.String()] = row.Violations[a]
	}
	return line
}

// MarshalLine encodes a stream line exactly as the sweep handler does
// (mustLine), for clients reproducing the stream byte for byte.
func MarshalLine(v SweepLine) []byte { return mustLine(v) }

// sweepUnitKeys derives the persistent-store key of every interval in a
// sweep request. The key space is shared with the fleet coordinator:
// interval i of this request is unit (req.IntervalOffset + i) of the
// logical full-range sweep, so a row computed through either path is a
// store hit for the other.
func sweepUnitKeys(sc repro.Scenario, as []repro.Approach, req SweepRequest, intervals []workload.Interval) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.String()
	}
	keys := make([]string, len(intervals))
	for i, iv := range intervals {
		keys[i] = store.SweepUnitKey(sc.String(), req.Seed, req.SetsPerInterval,
			req.MaxCandidates, iv.Lo, iv.Hi, req.IntervalOffset+i, names)
	}
	return keys
}

// sweepKey canonicalizes the coalescing key of one sweep request.
func sweepKey(sc repro.Scenario, as []repro.Approach, req SweepRequest) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.String()
	}
	return strings.Join([]string{
		sc.String(),
		strconv.FormatUint(req.Seed, 10),
		strconv.Itoa(req.SetsPerInterval),
		strconv.Itoa(req.MaxCandidates),
		strconv.FormatFloat(req.Lo, 'g', -1, 64),
		strconv.FormatFloat(req.Hi, 'g', -1, 64),
		strconv.Itoa(req.IntervalOffset),
		strings.Join(names, ","),
	}, "|")
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	if !s.admitRate(w, r) {
		return
	}
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, 0, "parse request: "+err.Error())
		return
	}
	if req.Seed == 0 {
		req.Seed = 2020
	}
	if req.SetsPerInterval <= 0 {
		req.SetsPerInterval = 3
	}
	if req.MaxCandidates <= 0 {
		req.MaxCandidates = 500
	}
	if req.Lo <= 0 {
		req.Lo = 0.1
	}
	if req.Hi <= 0 {
		req.Hi = 1.0
	}
	if req.Hi <= req.Lo {
		s.reject(w, http.StatusBadRequest, 0, "hi must exceed lo")
		return
	}
	if req.IntervalOffset < 0 {
		s.reject(w, http.StatusBadRequest, 0, "interval_offset must be non-negative")
		return
	}
	sc, err := repro.ParseScenario(orDefault(req.Scenario, "none"))
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	names := req.Approaches
	if len(names) == 0 {
		names = []string{"st", "dp", "selective"}
	}
	as := make([]repro.Approach, len(names))
	for i, n := range names {
		if as[i], err = repro.ParseApproach(n); err != nil {
			s.reject(w, http.StatusBadRequest, 0, err.Error())
			return
		}
	}
	ctx, cancel := s.workCtx(r, req.TimeoutMS)
	defer cancel()

	intervals := workload.Intervals(req.Lo, req.Hi, 0.1)
	job, started := s.sweeps.attach(sweepKey(sc, as, req), func(lctx context.Context, publish func([]byte)) error {
		start := s.now()
		// Probe the store for every interval up front. Rows that hit are
		// streamed from disk; a sweep whose every interval hits never
		// acquires an execution slot at all — a warm re-run of a whole
		// sweep is pure reads.
		var keys []string
		var cached [][]byte
		allHit := false
		if s.cfg.Store != nil {
			keys = sweepUnitKeys(sc, as, req, intervals)
			cached = make([][]byte, len(intervals))
			allHit = true
			for i, k := range keys {
				if val, ok := s.cfg.Store.Get(k); ok {
					cached[i] = val
					s.events.emit(eventStoreHit, k, "")
				} else {
					allHit = false
					s.events.emit(eventStoreMiss, k, "")
				}
			}
		}
		if !allHit {
			release, err := s.adm.acquire(lctx)
			if err != nil {
				return err
			}
			defer release()
		}
		publish(mustLine(SweepLine{
			Type: "start", Schema: SweepSchema, Scenario: sc.String(),
			Seed: req.Seed, Intervals: len(intervals),
		}))
		for i, iv := range intervals {
			if cached != nil && cached[i] != nil {
				publish(cached[i])
				continue
			}
			cfg := repro.DefaultSweepConfig(sc)
			cfg.Seed = req.Seed
			cfg.SetsPerInterval = req.SetsPerInterval
			cfg.MaxCandidates = req.MaxCandidates
			cfg.Approaches = as
			cfg.Intervals = []workload.Interval{iv}
			// IntervalOffset keeps the streamed rows bit-identical to a
			// batch sweep over [lo, hi) with the same seed; the request's
			// own offset stacks on top so a sharded single-interval
			// request lands on the right sub-stream.
			cfg.IntervalOffset = req.IntervalOffset + i
			cfg.Workers = s.cfg.MaxInFlight
			rep, err := s.runner.Sweep(lctx, cfg)
			if err != nil {
				return err
			}
			row := rep.Rows[0]
			line := RowLine(rep.Approaches, row)
			s.aggMu.Lock()
			for _, a := range rep.Approaches {
				s.agg = s.agg.Add(row.Counters[a])
			}
			s.aggRuns += uint64(len(row.Sets) * len(rep.Approaches))
			s.aggMu.Unlock()
			raw := mustLine(line)
			if s.cfg.Store != nil {
				if perr := s.cfg.Store.Put(keys[i], raw); perr != nil {
					fmt.Fprintf(s.cfg.Log, "mkservd: store write-back: %v\n", perr)
				} else {
					s.events.emit(eventStoreWrite, keys[i], "")
				}
			}
			publish(raw)
		}
		publish(mustLine(SweepLine{
			Type:      "done",
			Intervals: len(intervals),
			ElapsedMS: float64(s.now().Sub(start)) / 1e6,
		}))
		return nil
	})
	if !started {
		s.coalesced.Add(1)
		w.Header().Set("X-Mkss-Coalesced", "1")
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	wrote := false
	emit := func(row []byte) error {
		// row is shared across coalesced subscribers: never append into it.
		if _, err := w.Write(row); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		wrote = true
		return nil
	}
	if err := job.stream(ctx, emit); err != nil {
		err = classifyCtx(err)
		if !wrote {
			s.fail(w, err)
			return
		}
		// The stream is already under way: append a terminal error line
		// instead of a status code the client can no longer see.
		s.failures.Add(1)
		if werr := emit(mustLine(SweepLine{Type: "error", Error: err.Error()})); werr != nil {
			fmt.Fprintf(s.cfg.Log, "mkservd: sweep error line: %v\n", werr)
		}
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, 0, "GET or POST required")
		return
	}
	if !s.admitRate(w, r) {
		return
	}
	var spec repro.SetSpec
	if q := r.URL.Query().Get("set"); q != "" {
		dec := json.NewDecoder(strings.NewReader(q))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			s.reject(w, http.StatusBadRequest, 0, "parse set query parameter: "+err.Error())
			return
		}
	} else if err := s.decodeBody(w, r, &spec); err != nil {
		s.reject(w, http.StatusBadRequest, 0,
			"need a task-set spec as the request body or the set query parameter: "+err.Error())
		return
	}
	set, err := spec.Set()
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	// Every product below is memoized in the session LRU (shared with
	// /v1/simulate): repeated queries and identical sets are O(lookup).
	prods := s.runner.Analysis(set)
	resp, conv := prods.ResponseTimes()
	promo := prods.PromotionTimes()
	doc := AnalyzeDoc{
		Schema:      AnalyzeSchema,
		Fingerprint: analysis.Fingerprint(set),
		Utilization: set.Utilization(),
		MKUtil:      set.MKUtilization(),
		Schedulable: prods.Schedulable(),
		Cache:       s.runner.CacheStats(),
	}
	post, perr := prods.Postponement()
	if perr != nil {
		doc.ThetaError = perr.Error()
	}
	for i := range set.Tasks {
		t := &set.Tasks[i]
		at := AnalyzeTask{
			Name:         t.Name,
			PeriodUS:     int64(t.Period),
			DeadlineUS:   int64(t.Deadline),
			WCETUS:       int64(t.WCET),
			M:            t.M,
			K:            t.K,
			ResponseUS:   int64(resp[i]),
			RTAConverged: conv[i],
			PromotionUS:  int64(promo[i]),
			MKUtil:       t.MKUtilization(),
		}
		if perr == nil {
			th := int64(post.Theta[i])
			at.ThetaUS = &th
		}
		doc.Tasks = append(doc.Tasks, at)
	}
	s.writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.reject(w, http.StatusMethodNotAllowed, 0, "GET required")
		return
	}
	doc := HealthDoc{
		Status:        "ok",
		InFlight:      s.inflight.Load() - 1,
		Queued:        s.queued.Load(),
		P95MS:         s.lat.p95(),
		QuotaRejected: s.quotaRejections.Snapshot(),
	}
	if st := s.cfg.Store; st != nil {
		stats := st.Stats()
		doc.Store = &wire.StoreStatsDoc{
			Hits:             stats.Hits,
			Misses:           stats.Misses,
			Writes:           stats.Writes,
			CorruptRecovered: stats.CorruptRecovered,
			Segments:         stats.Segments,
			Keys:             stats.Keys,
			Superseded:       stats.Superseded,
			DiskBytes:        stats.DiskBytes,
		}
	}
	status := http.StatusOK
	if s.draining.Load() {
		doc.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, doc)
}

// orDefault substitutes def for an empty string.
func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// mustLine marshals a stream line; the line types contain nothing that
// can fail to marshal.
func mustLine(v SweepLine) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
