package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// paperSpec is the §III demo set as the JSON the endpoints accept.
func paperSpec() repro.SetSpec {
	return repro.SetSpec{Tasks: []repro.TaskSpec{
		{PeriodMS: 5, DeadlineMS: 4, WCETMS: 3, M: 2, K: 4},
		{PeriodMS: 10, DeadlineMS: 10, WCETMS: 3, M: 1, K: 2},
	}}
}

func paperSet(t *testing.T) *repro.Set {
	t.Helper()
	set, err := paperSpec().Set()
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// newTestServer builds a Server and an httptest front for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post is the goroutine-safe request helper (no testing.T calls).
func post(url string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return http.Post(url, "application/json", bytes.NewReader(data))
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	resp, err := post(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close() //mklint:allow errdrop — test helper, read-only body
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSimulateMatchesLibrary checks that POST /v1/simulate returns the
// identical numbers the library produces for the paper's Figure 2 run.
func TestSimulateMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Set: paperSpec(), Approach: "selective", HorizonMS: 20,
	})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc RunDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, err := repro.Simulate(paperSet(t), repro.Selective, repro.RunConfig{HorizonMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != RunSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, RunSchema)
	}
	if doc.Fingerprint == "" {
		t.Error("empty fingerprint")
	}
	if doc.ActiveEnergy != want.ActiveEnergy() {
		t.Errorf("active energy = %v, want %v", doc.ActiveEnergy, want.ActiveEnergy())
	}
	if doc.TotalEnergy != want.TotalEnergy() {
		t.Errorf("total energy = %v, want %v", doc.TotalEnergy, want.TotalEnergy())
	}
	if doc.MKSatisfied != want.MKSatisfied() {
		t.Errorf("mk_satisfied = %v, want %v", doc.MKSatisfied, want.MKSatisfied())
	}
	if !doc.Schedulable {
		t.Error("the paper's set must be R-pattern schedulable")
	}
}

// TestSimulateBadRequests covers the 400 vocabulary: field-path
// validation errors, unknown approaches, unknown JSON fields.
func TestSimulateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"field path", `{"set":{"tasks":[{"period_ms":5,"deadline_ms":4,"wcet_ms":-3,"m":2,"k":4}]}}`, "tasks[0]"},
		{"unknown approach", `{"set":{"tasks":[{"period_ms":5,"deadline_ms":4,"wcet_ms":3,"m":2,"k":4}]},"approach":"nope"}`, "approach"},
		{"unknown field", `{"sett":{}}`, "sett"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Fatalf("error %s does not mention %q", body, tc.want)
			}
		})
	}
}

// TestSimulateCoalescing holds the server's only execution slot so two
// identical concurrent requests must coalesce: one flight, one leader,
// one follower with the X-Mkss-Coalesced marker and identical bytes.
func TestSimulateCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 8})
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := SimulateRequest{Set: paperSpec(), Approach: "selective", HorizonMS: 20}
	type result struct {
		body      []byte
		coalesced bool
		status    int
		err       error
	}
	results := make(chan result, 2)
	do := func() {
		resp, err := post(ts.URL+"/v1/simulate", req)
		if err != nil {
			results <- result{err: err}
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); rerr == nil {
			rerr = cerr
		}
		results <- result{body, resp.Header.Get("X-Mkss-Coalesced") != "", resp.StatusCode, rerr}
	}
	go do()
	// Wait until the first request's flight is open (its leader is parked
	// on the occupied slot) before firing the second.
	for deadline := 0; ; deadline++ {
		s.flights.mu.Lock()
		open := len(s.flights.calls)
		s.flights.mu.Unlock()
		if open == 1 {
			break
		}
		if deadline > 5000 {
			t.Fatal("first request never opened a flight")
		}
		time.Sleep(time.Millisecond)
	}
	go do()
	for deadline := 0; ; deadline++ {
		s.flights.mu.Lock()
		var waiters int
		for _, c := range s.flights.calls {
			waiters = c.waiters
		}
		s.flights.mu.Unlock()
		if waiters == 2 {
			break
		}
		if deadline > 5000 {
			t.Fatal("second request never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatalf("request errors: %v / %v", a.err, b.err)
	}
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s %s", a.status, b.status, a.body, b.body)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Fatal("coalesced responses differ")
	}
	if a.coalesced == b.coalesced {
		t.Fatalf("want exactly one coalesced follower, got %v/%v", a.coalesced, b.coalesced)
	}
	if got := s.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}
}

// TestAnalyze exercises GET /v1/analyze via both the query parameter and
// the request body, and checks the served products against the library.
func TestAnalyze(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec, err := json.Marshal(paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/analyze?set=" + url.QueryEscape(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc AnalyzeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != AnalyzeSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, AnalyzeSchema)
	}
	if len(doc.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(doc.Tasks))
	}
	set := paperSet(t)
	if !doc.Schedulable || doc.Schedulable != repro.RPatternSchedulable(set) {
		t.Errorf("schedulable = %v, want %v", doc.Schedulable, repro.RPatternSchedulable(set))
	}
	theta, err := repro.PostponementIntervals(set)
	if err != nil {
		t.Fatal(err)
	}
	promo := repro.PromotionTimes(set)
	for i, at := range doc.Tasks {
		if at.ThetaUS == nil || *at.ThetaUS != int64(theta[i]) {
			t.Errorf("task %d theta = %v, want %d", i, at.ThetaUS, theta[i])
		}
		if at.PromotionUS != int64(promo[i]) {
			t.Errorf("task %d promotion = %d, want %d", i, at.PromotionUS, promo[i])
		}
		if !at.RTAConverged {
			t.Errorf("task %d RTA did not converge", i)
		}
	}
	// A second query for the same set must be a cache hit (body form).
	resp2, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, resp2)
	var doc2 AnalyzeDoc
	if err := json.Unmarshal(body2, &doc2); err != nil {
		t.Fatal(err)
	}
	if doc2.Cache.Hits == 0 {
		t.Errorf("repeat analyze missed the cache: %+v", doc2.Cache)
	}
	if st := s.runner.CacheStats(); st.Entries != 1 {
		t.Errorf("cache entries = %d, want 1 (same fingerprint)", st.Entries)
	}
}

// TestHealthzAndDrainGate checks the liveness document and the drain
// gate: once draining, /healthz flips to 503/draining and the work
// endpoints refuse new submissions.
func TestHealthzAndDrainGate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining healthz = %d %s", resp.StatusCode, body)
	}
	resp = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec()})
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining simulate = %d, want 503", resp.StatusCode)
	}
}

// TestMetricsEndpoint runs one simulation and checks the text dump
// carries the server gauges, the cache counters, and the aggregated run
// counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	readAll(t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec(), HorizonMS: 20}))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	for _, want := range []string{
		"mkservd_requests_total 2",
		"mkservd_coalesced_total 0",
		"mkservd_rejected_total 0",
		"mkservd_inflight 0",
		"mkservd_cache_entries 1",
		"mkss_runs_total 1",
		"mkss_dispatches",
		"mkss_proc_0_busy_us",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestRateLimit verifies the token bucket at the HTTP boundary with an
// injected clock: the burst passes, the next request is 429 with a
// Retry-After, and time restores admission.
func TestRateLimit(t *testing.T) {
	clk := &fakeClock{}
	_, ts := newTestServer(t, Config{RatePerSec: 1, Burst: 1, Now: clk.now})
	get := func() *http.Response {
		resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec(), HorizonMS: 20})
		readAll(t, resp)
		return resp
	}
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("burst request = %d, want 200", resp.StatusCode)
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	clk.advance(2 * time.Second)
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill request = %d, want 200", resp.StatusCode)
	}
}

// TestQueueFull fills the single slot and the zero-depth queue so a new
// request is rejected with 429 + Retry-After backpressure.
func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: -1})
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec(), HorizonMS: 20})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("body %s does not mention the queue", body)
	}
	if s.rejected.Load() == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

// TestSimulateDeadline gives a request a 1ms budget on a multi-hour
// simulation: the engine must abort at event-loop granularity and the
// handler must answer 504.
func TestSimulateDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Set: paperSpec(), HorizonMS: 1e8, TimeoutMS: 1,
	})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}

// sweepLines collects the JSONL lines of one /v1/sweep response
// (goroutine-safe).
func sweepLines(resp *http.Response) ([]SweepLine, error) {
	defer resp.Body.Close() //mklint:allow errdrop — test helper, read-only body
	var lines []SweepLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l SweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("parse line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return lines, sc.Err()
}

// TestSweepStreamMatchesBatch asserts the tentpole's determinism
// property: the streamed per-interval rows carry exactly the numbers a
// batch Runner.Sweep over the same range produces.
func TestSweepStreamMatchesBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SweepRequest{
		Seed: 7, SetsPerInterval: 2, MaxCandidates: 100,
		Lo: 0.3, Hi: 0.5, Approaches: []string{"st", "dp"},
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines, err := sweepLines(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 { // start + 2 rows + done
		t.Fatalf("got %d lines, want 4: %+v", len(lines), lines)
	}
	if lines[0].Type != "start" || lines[0].Schema != SweepSchema || lines[0].Intervals != 2 {
		t.Fatalf("start line = %+v", lines[0])
	}
	if lines[3].Type != "done" {
		t.Fatalf("terminal line = %+v", lines[3])
	}

	cfg := repro.DefaultSweepConfig(repro.NoFault)
	cfg.Seed = 7
	cfg.SetsPerInterval = 2
	cfg.MaxCandidates = 100
	cfg.Approaches = []repro.Approach{repro.ST, repro.DP}
	cfg.Intervals = workload.Intervals(0.3, 0.5, 0.1)
	rep, err := repro.NewRunner(repro.RunnerConfig{}).Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rep.Rows {
		got := lines[1+i]
		if got.Type != "row" || got.UtilLo != row.Interval.Lo || got.UtilHi != row.Interval.Hi {
			t.Fatalf("row %d header = %+v, want interval %+v", i, got, row.Interval)
		}
		if got.Sets != len(row.Sets) || got.Candidates != row.Candidates {
			t.Errorf("row %d sets/candidates = %d/%d, want %d/%d",
				i, got.Sets, got.Candidates, len(row.Sets), row.Candidates)
		}
		for _, a := range rep.Approaches {
			if got.NormMean[a.String()] != row.NormMean[a] {
				t.Errorf("row %d %s norm mean = %v, want %v (streamed rows must match batch bit for bit)",
					i, a, got.NormMean[a.String()], row.NormMean[a])
			}
			if got.Violations[a.String()] != row.Violations[a] {
				t.Errorf("row %d %s violations = %d, want %d",
					i, a, got.Violations[a.String()], row.Violations[a])
			}
		}
	}
}

// TestSweepCoalescing runs two identical sweeps where the second
// attaches while the first's leader still holds the only slot: both
// streams must carry identical rows and one must be marked coalesced.
func TestSweepCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 8})
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := SweepRequest{Seed: 7, SetsPerInterval: 1, MaxCandidates: 50, Lo: 0.3, Hi: 0.4, Approaches: []string{"st"}}
	type result struct {
		lines     []SweepLine
		coalesced bool
		err       error
	}
	results := make(chan result, 2)
	do := func() {
		resp, err := post(ts.URL+"/v1/sweep", req)
		if err != nil {
			results <- result{err: err}
			return
		}
		lines, err := sweepLines(resp)
		results <- result{lines, resp.Header.Get("X-Mkss-Coalesced") != "", err}
	}
	go do()
	for deadline := 0; ; deadline++ {
		s.sweeps.mu.Lock()
		open := len(s.sweeps.jobs)
		s.sweeps.mu.Unlock()
		if open == 1 {
			break
		}
		if deadline > 5000 {
			t.Fatal("first sweep never registered")
		}
		time.Sleep(time.Millisecond)
	}
	go do()
	var job *sweepJob
	s.sweeps.mu.Lock()
	for _, j := range s.sweeps.jobs {
		job = j
	}
	s.sweeps.mu.Unlock()
	for deadline := 0; ; deadline++ {
		job.mu.Lock()
		subs := job.subs
		job.mu.Unlock()
		if subs == 2 {
			break
		}
		if deadline > 5000 {
			t.Fatal("second sweep never attached")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatalf("stream errors: %v / %v", a.err, b.err)
	}
	if a.coalesced == b.coalesced {
		t.Fatalf("want exactly one coalesced stream, got %v/%v", a.coalesced, b.coalesced)
	}
	if fmt.Sprintf("%+v", a.lines) != fmt.Sprintf("%+v", b.lines) {
		t.Fatalf("coalesced streams differ:\n%+v\n%+v", a.lines, b.lines)
	}
	if s.coalesced.Load() != 1 {
		t.Fatalf("coalesced counter = %d, want 1", s.coalesced.Load())
	}
}

// TestRunGracefulDrain starts the managed lifecycle, serves a request,
// then cancels the context: Run must drain cleanly with zero aborted
// in-flight requests.
func TestRunGracefulDrain(t *testing.T) {
	var logMu sync.Mutex
	var logBuf bytes.Buffer
	s := NewServer(Config{DrainWindow: 2 * time.Second, Log: &lockedWriter{w: &logBuf, mu: &logMu}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, l) }()
	base := "http://" + l.Addr().String()
	resp := postJSON(t, base+"/v1/simulate", SimulateRequest{Set: paperSpec(), HorizonMS: 20})
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate before drain = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned after cancellation")
	}
	if got := s.aborted.Load(); got != 0 {
		t.Fatalf("aborted = %d in-flight on an idle drain, want 0", got)
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, "drained") {
		t.Fatalf("drain summary missing from log:\n%s", logs)
	}
}

// TestRunDrainAbortsStragglers verifies the hard stop: a simulation that
// cannot finish inside the drain window has its work context canceled
// and is counted as aborted.
func TestRunDrainAbortsStragglers(t *testing.T) {
	s := NewServer(Config{DrainWindow: 50 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, l) }()
	base := "http://" + l.Addr().String()
	type result struct {
		status int
		err    error
	}
	resps := make(chan result, 1)
	go func() {
		// A simulation far larger than the drain window.
		resp, err := post(base+"/v1/simulate", SimulateRequest{Set: paperSpec(), HorizonMS: 1e8})
		if err != nil {
			resps <- result{err: err}
			return
		}
		_, rerr := io.Copy(io.Discard, resp.Body)
		if cerr := resp.Body.Close(); rerr == nil {
			rerr = cerr
		}
		resps <- result{resp.StatusCode, rerr}
	}()
	// Wait until the request is in flight before starting the drain.
	for deadline := 0; ; deadline++ {
		if s.inflight.Load() >= 1 {
			break
		}
		if deadline > 5000 {
			t.Fatal("long request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run never returned; the straggler was not aborted")
	}
	if got := s.aborted.Load(); got == 0 {
		t.Fatal("aborted counter = 0, want the straggler counted")
	}
	select {
	case r := <-resps:
		if r.err == nil && r.status != http.StatusServiceUnavailable && r.status != http.StatusGatewayTimeout {
			t.Fatalf("aborted request status = %d, want 503/504", r.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted request never completed")
	}
}

// lockedWriter serializes concurrent log writes in tests.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
