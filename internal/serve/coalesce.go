package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical unary requests
// (singleflight): the first caller for a key becomes the leader and runs
// the computation on a detached context; every caller that arrives while
// the flight is open waits for the shared result instead of recomputing
// it. The leader's context stays alive while at least one caller is
// still waiting and is canceled when the last caller gives up — a
// thundering herd that disconnects frees its execution slot immediately.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// do returns fn's result for key, computing it at most once among
// concurrent callers. shared reports whether this caller joined an
// already-open flight (the coalescing counter's increment condition).
// The bytes returned are shared across callers and must not be mutated.
func (g *flightGroup) do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		val, err = g.wait(ctx, c)
		return val, true, err
	}
	lctx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		v, ferr := fn(lctx)
		g.mu.Lock()
		c.val, c.err = v, ferr
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	val, err = g.wait(ctx, c)
	return val, false, err
}

// wait blocks until the flight completes or the caller's context dies.
// A caller abandoning the flight decrements the waiter count; the last
// one to leave cancels the leader's context.
func (g *flightGroup) wait(ctx context.Context, c *flightCall) ([]byte, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		g.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, ctx.Err()
	}
}

// sweepJob is one in-flight streaming sweep shared by every client that
// requested an identical sweep while it was running. The leader appends
// encoded JSONL rows as intervals complete; subscribers replay the rows
// from the beginning and then follow live, so a coalesced client sees
// the identical byte stream it would have received as the leader.
type sweepJob struct {
	mu     sync.Mutex
	rows   [][]byte
	done   bool
	err    error
	subs   int
	wake   chan struct{} // closed and replaced on every state change
	cancel context.CancelFunc
}

// publish appends one encoded row and wakes the subscribers.
func (j *sweepJob) publish(row []byte) {
	j.mu.Lock()
	j.rows = append(j.rows, row)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

// finish marks the job complete (err non-nil on failure) and wakes the
// subscribers one last time.
func (j *sweepJob) finish(err error) {
	j.mu.Lock()
	j.done = true
	j.err = err
	close(j.wake)
	j.mu.Unlock()
}

// stream emits every row to emit in order, blocking for new rows until
// the job finishes. It detaches on context cancellation or emit failure;
// when the last subscriber detaches from an unfinished job, the leader's
// context is canceled and the shard freed.
func (j *sweepJob) stream(ctx context.Context, emit func([]byte) error) error {
	i := 0
	for {
		j.mu.Lock()
		pending := j.rows[i:]
		i = len(j.rows)
		done, err := j.done, j.err
		wake := j.wake
		j.mu.Unlock()
		for _, row := range pending {
			if eerr := emit(row); eerr != nil {
				j.detach()
				return eerr
			}
		}
		if done {
			return err
		}
		select {
		case <-wake:
		case <-ctx.Done():
			j.detach()
			return ctx.Err()
		}
	}
}

// detach drops one subscriber, canceling the leader when none remain
// and the sweep has not finished.
func (j *sweepJob) detach() {
	j.mu.Lock()
	j.subs--
	last := j.subs == 0 && !j.done
	j.mu.Unlock()
	if last {
		j.cancel()
	}
}

// sweepRegistry tracks the open sweep jobs by canonical request key.
type sweepRegistry struct {
	mu   sync.Mutex
	jobs map[string]*sweepJob
}

func newSweepRegistry() *sweepRegistry {
	return &sweepRegistry{jobs: map[string]*sweepJob{}}
}

// attach subscribes to the sweep for key, starting a leader goroutine
// running run when no identical sweep is open. started reports whether
// this caller created the job (false = coalesced). run receives the
// leader context and the publish callback and its error becomes the
// job's terminal state.
func (r *sweepRegistry) attach(key string, run func(ctx context.Context, publish func([]byte)) error) (j *sweepJob, started bool) {
	r.mu.Lock()
	if j, ok := r.jobs[key]; ok {
		j.mu.Lock()
		j.subs++
		j.mu.Unlock()
		r.mu.Unlock()
		return j, false
	}
	lctx, cancel := context.WithCancel(context.Background())
	j = &sweepJob{subs: 1, wake: make(chan struct{}), cancel: cancel}
	r.jobs[key] = j
	r.mu.Unlock()
	go func() {
		err := run(lctx, j.publish)
		r.mu.Lock()
		delete(r.jobs, key)
		r.mu.Unlock()
		j.finish(err)
		cancel()
	}()
	return j, true
}
