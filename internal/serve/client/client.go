// Package client is the stdlib HTTP client for the mkss serving API
// (internal/serve): one typed wrapper per endpoint, context deadlines on
// every call, optional transport-level retries with exponential backoff,
// and incremental JSONL decoding of the streaming /v1/sweep endpoint.
//
// It exists so every consumer of the API — the mkload load generator,
// the mkfleet coordinator, scripts — shares one request/decode path and
// one error vocabulary: a non-2xx response surfaces as *HTTPError
// carrying the server's machine-readable error code (wire.ErrorDoc), a
// stream that ends without a terminal "done"/"error" line surfaces as
// ErrTruncated, and everything else is a transport error.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/serve/wire"
)

// Config tunes a Client; the zero value of every field picks a sensible
// default (see New).
type Config struct {
	// Addr is the server address: "host:port" or a full "http://..."
	// base URL.
	Addr string
	// HTTPClient is the underlying transport; nil builds one without a
	// client-level timeout (deadlines come from the per-call context).
	HTTPClient *http.Client
	// Retries is how many times a failed request is retried beyond the
	// first attempt. Only transport errors and retryable statuses
	// (429/502/503/504) are retried, and streaming requests only retry
	// while no stream line has been consumed. Zero disables retries.
	Retries int
	// Backoff is the first retry's delay, doubling per retry (default
	// 100ms). The per-call context keeps the total bounded.
	Backoff time.Duration
	// Tenant, when non-empty, is sent as the X-MK-Tenant header on every
	// request — the identity the server's per-tenant quotas account
	// against. Empty means the server's default tenant.
	Tenant string
}

// Client calls one mkss server. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	cfg  Config
}

// New builds a Client for cfg.Addr, applying the documented defaults.
func New(cfg Config) *Client {
	base := cfg.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	return &Client{base: base, hc: hc, cfg: cfg}
}

// Addr returns the normalized base URL the client talks to.
func (c *Client) Addr() string { return c.base }

// HTTPError is a non-2xx response, carrying the server's structured
// error body (wire.ErrorDoc) when one was present.
type HTTPError struct {
	Status int
	Code   string
	Msg    string
}

func (e *HTTPError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server %d (%s): %s", e.Status, e.Code, e.Msg)
	}
	return fmt.Sprintf("server %d: %s", e.Status, e.Msg)
}

// Retryable reports whether the failure is worth retrying — the request
// was rejected by load shedding or a transient server condition, not by
// its own content.
func (e *HTTPError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return e.Status >= 500
}

// ErrTruncated marks a JSONL stream that ended without a terminal
// "done" or "error" line — the producer died mid-stream.
var ErrTruncated = errors.New("sweep stream truncated before its terminal line")

// Info is per-request metadata alongside a decoded response.
type Info struct {
	// Status is the HTTP status code of the (final) attempt.
	Status int
	// Coalesced reports the X-Mkss-Coalesced marker: the response was
	// shared with a concurrent identical request.
	Coalesced bool
	// StoreHit reports the X-Mkss-Store marker: the response came from
	// the server's persistent result store, not a live run.
	StoreHit bool
	// Attempts counts the requests actually sent (1 = no retry needed).
	Attempts int
}

// Simulate runs POST /v1/simulate.
func (c *Client) Simulate(ctx context.Context, req wire.SimulateRequest) (*wire.RunDoc, Info, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, Info{}, err
	}
	var doc wire.RunDoc
	info, err := c.doJSON(ctx, http.MethodPost, "/v1/simulate", body, &doc)
	if err != nil {
		return nil, info, err
	}
	return &doc, info, nil
}

// Estimate runs POST /v1/estimate. With req.Refine false the server
// answers from the analytical twin (no execution slot) and the decoded
// EstimateDoc is returned; with req.Refine true the server falls through
// to the real simulation and the RunDoc — byte-identical to what
// /v1/simulate returns for the same parameters — is returned instead.
// Exactly one of the two documents is non-nil on success.
func (c *Client) Estimate(ctx context.Context, req wire.EstimateRequest) (*wire.EstimateDoc, *wire.RunDoc, Info, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, Info{}, err
	}
	var info Info
	resp, err := c.doRetry(ctx, &info, http.MethodPost, "/v1/estimate", body)
	if err != nil {
		return nil, nil, info, err
	}
	defer resp.Body.Close() //mklint:allow errdrop — read-only response body
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, nil, info, fmt.Errorf("read /v1/estimate response: %w", err)
	}
	// The schema tag in the body, not the request's Refine flag, decides
	// the decode: the server is the authority on what it answered with.
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, nil, info, fmt.Errorf("decode /v1/estimate response: %w", err)
	}
	switch probe.Schema {
	case wire.RunSchema:
		var doc wire.RunDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, nil, info, fmt.Errorf("decode %s response: %w", probe.Schema, err)
		}
		return nil, &doc, info, nil
	case wire.EstimateSchema:
		var doc wire.EstimateDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, nil, info, fmt.Errorf("decode %s response: %w", probe.Schema, err)
		}
		return &doc, nil, info, nil
	}
	return nil, nil, info, fmt.Errorf("unexpected /v1/estimate schema %q", probe.Schema)
}

// Analyze runs GET /v1/analyze with the set spec as the request body.
func (c *Client) Analyze(ctx context.Context, spec repro.SetSpec) (*wire.AnalyzeDoc, Info, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, Info{}, err
	}
	var doc wire.AnalyzeDoc
	info, err := c.doJSON(ctx, http.MethodGet, "/v1/analyze", body, &doc)
	if err != nil {
		return nil, info, err
	}
	return &doc, info, nil
}

// Healthz runs GET /healthz. A draining server answers 503 with a valid
// body; Healthz returns the decoded body in that case too, alongside
// the *HTTPError, so callers can distinguish "draining" from "dead".
func (c *Client) Healthz(ctx context.Context) (*wire.HealthDoc, error) {
	resp, err := c.send(ctx, http.MethodGet, "/healthz", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //mklint:allow errdrop — read-only response body
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var doc wire.HealthDoc
	if derr := json.Unmarshal(data, &doc); derr == nil && doc.Status != "" {
		if resp.StatusCode == http.StatusOK {
			return &doc, nil
		}
		return &doc, &HTTPError{Status: resp.StatusCode, Msg: doc.Status}
	}
	return nil, httpError(resp.StatusCode, data)
}

// Metrics snapshots the numeric lines of GET /metrics.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	resp, err := c.send(ctx, http.MethodGet, "/metrics", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //mklint:allow errdrop — read-only response body
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) // status carries the failure
		return nil, httpError(resp.StatusCode, data)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if f, err := strconv.ParseFloat(val, 64); err == nil {
			out[name] = f
		}
	}
	return out, sc.Err()
}

// SweepStream runs POST /v1/sweep and feeds every decoded JSONL line —
// with its raw bytes, exactly as the server wrote them — to fn as it
// arrives. It returns after the terminal line: nil on "done", the
// server's message on "error", ErrTruncated if the stream ends without
// either, or fn's error if fn aborts the stream. Retries only apply
// before the first line is consumed, so fn never sees a line twice.
func (c *Client) SweepStream(ctx context.Context, req wire.SweepRequest, fn func(raw []byte, line wire.SweepLine) error) (Info, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Info{}, err
	}
	var info Info
	resp, err := c.doRetry(ctx, &info, http.MethodPost, "/v1/sweep", body)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close() //mklint:allow errdrop — read-only response body
	terminal := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		var line wire.SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return info, fmt.Errorf("parse sweep line %q: %w", raw, err)
		}
		switch line.Type {
		case "done":
			terminal = true
		case "error":
			return info, fmt.Errorf("sweep failed server-side: %s", line.Error)
		}
		if fn != nil {
			if err := fn(raw, line); err != nil {
				return info, err
			}
		}
		if terminal {
			return info, nil
		}
	}
	if err := sc.Err(); err != nil {
		return info, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return info, ErrTruncated
}

// doJSON sends one request with retries and decodes the 2xx body into v.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, v any) (Info, error) {
	var info Info
	resp, err := c.doRetry(ctx, &info, method, path, body)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close() //mklint:allow errdrop — read-only response body
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return info, fmt.Errorf("decode %s response: %w", path, err)
	}
	return info, nil
}

// doRetry sends the request, retrying transport errors and retryable
// statuses with exponential backoff up to cfg.Retries times. On success
// the caller owns the response body.
func (c *Client) doRetry(ctx context.Context, info *Info, method, path string, body []byte) (*http.Response, error) {
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
		info.Attempts = attempt + 1
		resp, err := c.send(ctx, method, path, body, "application/json")
		if err != nil {
			lastErr = err
			if ctx.Err() != nil || attempt >= c.cfg.Retries {
				return nil, err
			}
			continue
		}
		info.Status = resp.StatusCode
		info.Coalesced = resp.Header.Get("X-Mkss-Coalesced") != ""
		info.StoreHit = resp.Header.Get("X-Mkss-Store") == "hit"
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return resp, nil
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) // status carries the failure; body is best-effort detail
		if cerr := resp.Body.Close(); cerr != nil {
			lastErr = cerr
		}
		herr := httpError(resp.StatusCode, data)
		lastErr = herr
		if attempt >= c.cfg.Retries || !herr.Retryable() {
			return nil, herr
		}
	}
}

// send issues one request attempt.
func (c *Client) send(ctx context.Context, method, path string, body []byte, contentType string) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.cfg.Tenant != "" {
		req.Header.Set("X-MK-Tenant", c.cfg.Tenant)
	}
	return c.hc.Do(req)
}

// httpError decodes a non-2xx body into an *HTTPError, falling back to
// the raw text when the body is not a wire.ErrorDoc.
func httpError(status int, body []byte) *HTTPError {
	var doc wire.ErrorDoc
	if err := json.Unmarshal(body, &doc); err == nil && doc.Error != "" {
		return &HTTPError{Status: status, Code: doc.Code, Msg: doc.Error}
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &HTTPError{Status: status, Msg: msg}
}
