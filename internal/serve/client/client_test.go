package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
)

func paperSpec() repro.SetSpec {
	return repro.SetSpec{Tasks: []repro.TaskSpec{
		{PeriodMS: 5, DeadlineMS: 4, WCETMS: 3, M: 2, K: 4},
		{PeriodMS: 10, DeadlineMS: 10, WCETMS: 3, M: 1, K: 2},
	}}
}

// newServer boots a real serving stack and a client against it.
func newServer(t *testing.T, cfg serve.Config) *Client {
	t.Helper()
	ts := httptest.NewServer(serve.NewServer(cfg).Handler())
	t.Cleanup(ts.Close)
	return New(Config{Addr: strings.TrimPrefix(ts.URL, "http://")})
}

func TestSimulate(t *testing.T) {
	cl := newServer(t, serve.Config{})
	doc, info, err := cl.Simulate(context.Background(), serve.SimulateRequest{
		Set: paperSpec(), Approach: "selective", HorizonMS: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != serve.RunSchema || !doc.MKSatisfied {
		t.Errorf("doc = %+v", doc)
	}
	if info.Status != http.StatusOK || info.Attempts != 1 {
		t.Errorf("info = %+v", info)
	}
}

func TestAnalyze(t *testing.T) {
	cl := newServer(t, serve.Config{})
	doc, _, err := cl.Analyze(context.Background(), paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != serve.AnalyzeSchema || len(doc.Tasks) != 2 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestHTTPErrorCarriesServerCode(t *testing.T) {
	cl := newServer(t, serve.Config{})
	// An empty task set is a content error: rejected up front with the
	// machine-readable code, and not worth retrying anywhere.
	_, _, err := cl.Simulate(context.Background(), serve.SimulateRequest{Approach: "selective"})
	var herr *HTTPError
	if !errors.As(err, &herr) {
		t.Fatalf("err = %v, want *HTTPError", err)
	}
	if herr.Status != http.StatusBadRequest || herr.Code != serve.CodeBadRequest {
		t.Errorf("herr = %+v, want 400/%s", herr, serve.CodeBadRequest)
	}
	if herr.Retryable() {
		t.Error("content error marked retryable")
	}
}

func TestHealthz(t *testing.T) {
	cl := newServer(t, serve.Config{})
	doc, err := cl.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" {
		t.Errorf("status = %q", doc.Status)
	}
}

func TestHealthzDraining(t *testing.T) {
	// A draining server answers 503 with a decodable body: the caller
	// gets both the doc and the *HTTPError, distinguishing "draining"
	// from "dead".
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		if _, err := w.Write([]byte(`{"status":"draining","inflight":2,"queued":0}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	cl := New(Config{Addr: ts.URL})
	doc, err := cl.Healthz(context.Background())
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 *HTTPError", err)
	}
	if doc == nil || doc.Status != "draining" || doc.InFlight != 2 {
		t.Errorf("doc = %+v, want the draining body decoded", doc)
	}
}

func TestRetryOnRetryableStatus(t *testing.T) {
	var calls atomic.Int64
	inner := serve.NewServer(serve.Config{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := w.Write([]byte(`{"error":"starting up","code":"unavailable"}`)); err != nil {
				t.Error(err)
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	cl := New(Config{Addr: ts.URL, Retries: 3, Backoff: time.Millisecond})
	_, info, err := cl.Simulate(context.Background(), serve.SimulateRequest{
		Set: paperSpec(), Approach: "selective", HorizonMS: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two 503s then success)", info.Attempts)
	}
}

func TestNoRetryOnContentError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		if _, err := w.Write([]byte(`{"error":"bad","code":"bad_request"}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	cl := New(Config{Addr: ts.URL, Retries: 5, Backoff: time.Millisecond})
	_, _, err := cl.Simulate(context.Background(), serve.SimulateRequest{})
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Code != "bad_request" {
		t.Fatalf("err = %v, want bad_request *HTTPError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (4xx must not retry)", calls.Load())
	}
}

func TestSweepStream(t *testing.T) {
	cl := newServer(t, serve.Config{})
	var types []string
	info, err := cl.SweepStream(context.Background(), serve.SweepRequest{
		Seed: 7, SetsPerInterval: 1, MaxCandidates: 30, Lo: 0.3, Hi: 0.5,
		Approaches: []string{"st"},
	}, func(raw []byte, line serve.SweepLine) error {
		types = append(types, line.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"start", "row", "row", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("line types = %v, want %v", types, want)
	}
	if info.Status != http.StatusOK {
		t.Errorf("info = %+v", info)
	}
}

func TestSweepStreamTruncated(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if _, err := w.Write([]byte(`{"type":"start","schema":"mkss-sweep/v1"}` + "\n")); err != nil {
			t.Error(err)
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // die mid-stream, no terminal line
	}))
	t.Cleanup(ts.Close)
	cl := New(Config{Addr: ts.URL})
	_, err := cl.SweepStream(context.Background(), serve.SweepRequest{Lo: 0.3, Hi: 0.4}, nil)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestSweepStreamServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		lines := `{"type":"start","schema":"mkss-sweep/v1"}` + "\n" +
			`{"type":"error","error":"engine exploded"}` + "\n"
		if _, err := w.Write([]byte(lines)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	cl := New(Config{Addr: ts.URL})
	_, err := cl.SweepStream(context.Background(), serve.SweepRequest{Lo: 0.3, Hi: 0.4}, nil)
	if err == nil || !strings.Contains(err.Error(), "engine exploded") {
		t.Fatalf("err = %v, want the server's error message", err)
	}
}

func TestAddrNormalization(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:8080":          "http://127.0.0.1:8080",
		"http://localhost:1/":     "http://localhost:1",
		"https://mkss.example.io": "https://mkss.example.io",
	} {
		if got := New(Config{Addr: in}).Addr(); got != want {
			t.Errorf("Addr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEstimate(t *testing.T) {
	cl := newServer(t, serve.Config{})
	doc, run, info, err := cl.Estimate(context.Background(), serve.EstimateRequest{
		Set: paperSpec(), Approach: "dp", HorizonMS: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		t.Errorf("unrefined estimate returned a run doc: %+v", run)
	}
	if doc == nil || doc.Schema != serve.EstimateSchema || doc.Backend != "twin" || doc.Exact {
		t.Errorf("doc = %+v", doc)
	}
	if info.Status != http.StatusOK || info.Attempts != 1 {
		t.Errorf("info = %+v", info)
	}
}

// refine=true comes back as the run document; the schema tag in the
// body, not the request flag, decides which pointer is populated.
func TestEstimateRefine(t *testing.T) {
	cl := newServer(t, serve.Config{})
	doc, run, _, err := cl.Estimate(context.Background(), serve.EstimateRequest{
		Set: paperSpec(), Approach: "dp", HorizonMS: 100, Refine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc != nil {
		t.Errorf("refined estimate returned an estimate doc: %+v", doc)
	}
	if run == nil || run.Schema != serve.RunSchema || !run.MKSatisfied {
		t.Errorf("run = %+v", run)
	}
}

func TestEstimateRetriesThenHTTPError(t *testing.T) {
	var calls atomic.Int64
	inner := serve.NewServer(serve.Config{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := w.Write([]byte(`{"error":"starting up","code":"unavailable"}`)); err != nil {
				t.Error(err)
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	cl := New(Config{Addr: ts.URL, Retries: 3, Backoff: time.Millisecond})
	doc, _, info, err := cl.Estimate(context.Background(), serve.EstimateRequest{
		Set: paperSpec(), Approach: "st", HorizonMS: 100,
	})
	if err != nil || doc == nil {
		t.Fatalf("doc %v err %v", doc, err)
	}
	if info.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two 503s then success)", info.Attempts)
	}

	// A 400 must surface as a typed *HTTPError without retrying.
	calls.Store(100)
	_, _, _, err = cl.Estimate(context.Background(), serve.EstimateRequest{
		Set: paperSpec(), Approach: "st", Backend: "oracle",
	})
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != http.StatusBadRequest || herr.Code != "bad_request" {
		t.Fatalf("err = %v, want bad_request *HTTPError", err)
	}
}
