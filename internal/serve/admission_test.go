package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually-advanced wall clock for the token bucket.
type fakeClock struct{ t atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.t.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.t.Add(int64(d)) }

// TestTokenBucket drives the bucket with a fake clock: the burst is
// consumable immediately, an empty bucket rejects with a Retry-After of
// at least one second, and tokens accrue with time at the configured
// rate (capped at the burst).
func TestTokenBucket(t *testing.T) {
	clk := &fakeClock{}
	b := newTokenBucket(2, 2, clk.now) // 2 tokens/s, capacity 2
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d within burst rejected", i)
		}
	}
	ok, retry := b.take()
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if retry < time.Second {
		t.Fatalf("Retry-After %v below the one-second floor", retry)
	}
	clk.advance(500 * time.Millisecond) // one token at 2/s
	if ok, _ := b.take(); !ok {
		t.Fatal("token did not accrue after 500ms at 2/s")
	}
	// A long quiet period must not accumulate beyond the burst.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d after refill rejected", i)
		}
	}
	if ok, _ := b.take(); ok {
		t.Fatal("bucket exceeded its burst capacity")
	}
}

// TestTokenBucketDefaultBurst checks burst <= 0 defaults to max(1, rate).
func TestTokenBucketDefaultBurst(t *testing.T) {
	clk := &fakeClock{}
	if b := newTokenBucket(5, 0, clk.now); b.burst != 5 {
		t.Fatalf("burst = %v, want 5", b.burst)
	}
	if b := newTokenBucket(0.5, 0, clk.now); b.burst != 1 {
		t.Fatalf("burst = %v, want 1 (floor)", b.burst)
	}
}

// TestAdmissionQueueBounds exercises the bounded execution stage: one
// slot, one queue position. The first acquire runs, the second queues,
// the third is rejected with a 429 admitError, and releasing the slot
// admits the queued waiter.
func TestAdmissionQueueBounds(t *testing.T) {
	var gauge atomic.Int64
	a := newAdmission(1, 1, &gauge)
	rel1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	queuedGot := make(chan func(), 1)
	go func() {
		rel2, err := a.acquire(context.Background())
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		queuedGot <- rel2
	}()
	// Wait for the goroutine to occupy the queue position.
	for gauge.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	_, err = a.acquire(context.Background())
	var ae *admitError
	if !errors.As(err, &ae) {
		t.Fatalf("overflow acquire: got %v, want *admitError", err)
	}
	if ae.status != 429 || ae.retryAfter <= 0 {
		t.Fatalf("admitError = {status %d, retryAfter %v}, want 429 with a positive Retry-After", ae.status, ae.retryAfter)
	}
	rel1() // the queued waiter takes the slot
	select {
	case rel2 := <-queuedGot:
		rel2()
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never acquired after release")
	}
	if gauge.Load() != 0 {
		t.Fatalf("queued gauge = %d after drain, want 0", gauge.Load())
	}
}

// TestAdmissionQueuedCancellation verifies a queued waiter honors its
// context and leaves the gauge clean.
func TestAdmissionQueuedCancellation(t *testing.T) {
	var gauge atomic.Int64
	a := newAdmission(1, 4, &gauge)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		done <- err
	}()
	for gauge.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued acquire after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire ignored cancellation")
	}
	if gauge.Load() != 0 {
		t.Fatalf("queued gauge = %d after cancellation, want 0", gauge.Load())
	}
}
