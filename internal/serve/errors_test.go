package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/workload"
)

// decodeError reads a structured error body off a response.
func decodeError(t *testing.T, resp *http.Response) ErrorDoc {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var doc ErrorDoc
	if err := json.Unmarshal(readAll(t, resp), &doc); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if doc.Error == "" {
		t.Error("error body has empty message")
	}
	return doc
}

// TestErrorBodiesAreStructured pins the error contract on every 4xx/5xx
// path a client can hit without load: JSON body, application/json
// Content-Type, machine-readable code.
func TestErrorBodiesAreStructured(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/simulate")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if doc := decodeError(t, resp); doc.Code != CodeMethodNotAllowed {
			t.Errorf("code = %q, want %q", doc.Code, CodeMethodNotAllowed)
		}
	})

	t.Run("malformed body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if doc := decodeError(t, resp); doc.Code != CodeBadRequest {
			t.Errorf("code = %q, want %q", doc.Code, CodeBadRequest)
		}
	})

	t.Run("unknown field", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{"bogus_field":1}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		decodeError(t, resp)
	})

	t.Run("negative interval offset", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Lo: 0.3, Hi: 0.4, IntervalOffset: -1})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if doc := decodeError(t, resp); !strings.Contains(doc.Error, "interval_offset") {
			t.Errorf("message %q does not name the offending field", doc.Error)
		}
	})

	t.Run("bad approach", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec(), Approach: "bogus"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		decodeError(t, resp)
	})
}

// TestRateLimitErrorCode pins the rate-limit flavor of 429: structured
// body with code "rate_limited" and a Retry-After header.
func TestRateLimitErrorCode(t *testing.T) {
	_, ts := newTestServer(t, Config{RatePerSec: 0.001, Burst: 1})
	// Burn the single token, then the next request must be limited.
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec(), Approach: "selective", HorizonMS: 20})
	readAll(t, resp)
	resp = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec(), Approach: "selective", HorizonMS: 20})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if doc := decodeError(t, resp); doc.Code != CodeRateLimited {
		t.Errorf("code = %q, want %q", doc.Code, CodeRateLimited)
	}
}

// TestSweepShardsMatchBatch pins the fleet sharding contract server
// side: N single-interval requests carrying interval_offset i and the
// batch intervals' exact bounds stream row bytes identical to one batch
// request over the full range.
func TestSweepShardsMatchBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SweepRequest{
		Seed: 7, SetsPerInterval: 2, MaxCandidates: 60,
		Lo: 0.3, Hi: 0.6, Approaches: []string{"st", "dp"},
	}

	rowLines := func(body []byte) [][]byte {
		var rows [][]byte
		sc := bufio.NewScanner(bytes.NewReader(body))
		for sc.Scan() {
			if bytes.Contains(sc.Bytes(), []byte(`"type":"row"`)) {
				rows = append(rows, append([]byte(nil), sc.Bytes()...))
			}
		}
		return rows
	}

	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	batch := rowLines(readAll(t, resp))
	intervals := workload.Intervals(req.Lo, req.Hi, 0.1)
	if len(batch) != len(intervals) {
		t.Fatalf("batch rows = %d, want %d", len(batch), len(intervals))
	}

	for i, iv := range intervals {
		shard := req
		shard.Lo, shard.Hi = iv.Lo, iv.Hi
		shard.IntervalOffset = i
		resp := postJSON(t, ts.URL+"/v1/sweep", shard)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d status %d: %s", i, resp.StatusCode, readAll(t, resp))
		}
		rows := rowLines(readAll(t, resp))
		if len(rows) != 1 {
			t.Fatalf("shard %d produced %d rows, want 1", i, len(rows))
		}
		if !bytes.Equal(rows[0], batch[i]) {
			t.Errorf("shard %d differs from batch row:\n got  %s\n want %s", i, rows[0], batch[i])
		}
	}
}
