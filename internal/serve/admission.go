package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// admitError is a rejection by the admission layer, carrying the HTTP
// status, the machine-readable error code, and the Retry-After hint the
// handler should surface.
type admitError struct {
	status     int
	retryAfter time.Duration
	code       string
	msg        string
}

func (e *admitError) Error() string { return e.msg }

// tokenBucket is a classic continuous-refill token bucket over an
// injectable clock: rate tokens per second, capacity burst.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if burst <= 0 {
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   now(),
		now:    now,
	}
}

// take consumes one token if available; otherwise it reports how long
// until the next token accrues (the Retry-After hint).
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += b.rate * t.Sub(b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After has whole-second resolution
	}
	return false, wait
}

// admission is the bounded execution stage: at most slots simulation
// jobs run at once, at most queueDepth more wait for a slot, and
// everything beyond that is rejected immediately with backpressure.
type admission struct {
	sem        chan struct{}
	queueDepth int
	queued     *atomic.Int64
}

func newAdmission(slots, queueDepth int, queued *atomic.Int64) *admission {
	return &admission{
		sem:        make(chan struct{}, slots),
		queueDepth: queueDepth,
		queued:     queued,
	}
}

// acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns the release function on success; an
// *admitError (queue full) or the context's error otherwise.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, nil
	default:
	}
	if n := a.queued.Add(1); n > int64(a.queueDepth) {
		a.queued.Add(-1)
		return nil, &admitError{
			status:     429,
			retryAfter: time.Second,
			code:       CodeQueueFull,
			msg:        fmt.Sprintf("job queue full (%d waiting on %d slots)", a.queueDepth, cap(a.sem)),
		}
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
