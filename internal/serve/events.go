package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// eventLog is mkservd's JSONL event stream (the -events flag): one line
// per store/quota event, for offline analysis of cache efficacy and
// tenant behavior. A nil writer makes every emit a no-op, so handler
// code calls emit unconditionally.
type eventLog struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
	// dropped counts lines lost to write errors (reported once each).
	dropped uint64
	log     io.Writer
}

// serveEvent is one event line. TUS is the emission wall-clock in unix
// microseconds — an absolute timestamp, so streams from sequential
// server lifetimes on one store directory interleave correctly.
type serveEvent struct {
	Schema string `json:"schema"`
	TUS    int64  `json:"t_us"`
	Kind   string `json:"kind"`
	Key    string `json:"key,omitempty"`
	Tenant string `json:"tenant,omitempty"`
}

// EventSchema tags mkservd's JSONL event lines.
const EventSchema = "mkss-serve-event/v1"

// Event kinds emitted on the stream.
const (
	eventStoreHit    = "store-hit"
	eventStoreMiss   = "store-miss"
	eventStoreWrite  = "store-write"
	eventQuotaReject = "quota-reject"
)

func newEventLog(w io.Writer, now func() time.Time, log io.Writer) *eventLog {
	if w == nil {
		return nil
	}
	return &eventLog{w: w, now: now, log: log}
}

// emit writes one event line. Safe on a nil eventLog.
func (e *eventLog) emit(kind, key, tenant string) {
	if e == nil {
		return
	}
	line, err := json.Marshal(serveEvent{
		Schema: EventSchema,
		TUS:    e.now().UnixMicro(),
		Kind:   kind,
		Key:    key,
		Tenant: tenant,
	})
	if err != nil {
		return // the event types contain nothing unmarshalable
	}
	line = append(line, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, werr := e.w.Write(line); werr != nil {
		if e.dropped == 0 {
			fmt.Fprintf(e.log, "mkservd: event stream write failed (further drops silent): %v\n", werr)
		}
		e.dropped++
	}
}
