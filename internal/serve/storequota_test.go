package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
)

// openStore opens (or reopens) a test store at dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// postTenant is post with an X-MK-Tenant header.
func postTenant(t *testing.T, url string, body any, tenant string) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// healthDoc fetches and decodes /healthz.
func healthDoc(t *testing.T, baseURL string) HealthDoc {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var doc HealthDoc
	if err := json.Unmarshal(readAll(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSimulateStoreCrossRestart pins the tentpole property: a result
// computed in one server process is served byte-identically by the next
// process over the same store directory, without consuming an execution
// slot.
func TestSimulateStoreCrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := SimulateRequest{Set: paperSpec(), Approach: "selective", Scenario: "permanent", HorizonMS: 50, Seed: 11}

	st1 := openStore(t, dir)
	_, ts1 := newTestServer(t, Config{Store: st1})
	resp := postJSON(t, ts1.URL+"/v1/simulate", req)
	cold := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Mkss-Store"); got != "" {
		t.Fatalf("cold run marked X-Mkss-Store=%q, want no marker", got)
	}
	// Same process, second ask: already a hit.
	resp = postJSON(t, ts1.URL+"/v1/simulate", req)
	if got := resp.Header.Get("X-Mkss-Store"); got != "hit" {
		t.Fatalf("second ask X-Mkss-Store=%q, want hit", got)
	}
	if warm := readAll(t, resp); !bytes.Equal(cold, warm) {
		t.Fatalf("in-process store hit differs from live run:\n cold %s\n warm %s", cold, warm)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same directory, with its only
	// execution slot held and no queue — live work is impossible, so a
	// 200 proves the store path skipped admission entirely.
	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Store: st2, MaxInFlight: 1, QueueDepth: -1})
	release, err := s2.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp = postTenant(t, ts2.URL+"/v1/simulate", req, "team-a")
	warm := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, warm)
	}
	if got := resp.Header.Get("X-Mkss-Store"); got != "hit" {
		t.Fatalf("restart X-Mkss-Store=%q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cross-restart bytes differ:\n cold %s\n warm %s", cold, warm)
	}
	doc := healthDoc(t, ts2.URL)
	if doc.Store == nil {
		t.Fatal("healthz carries no store stats with a store configured")
	}
	if doc.Store.Hits != 1 || doc.Store.Misses != 0 {
		t.Errorf("warm server store stats = %+v, want 1 hit, 0 misses", doc.Store)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepWarmStoreNeedsNoSlot pins the sweep analogue: a sweep whose
// every interval is stored streams entirely from disk — same row bytes,
// zero execution slots.
func TestSweepWarmStoreNeedsNoSlot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := SweepRequest{
		Seed: 7, SetsPerInterval: 2, MaxCandidates: 40,
		Lo: 0.3, Hi: 0.5, Approaches: []string{"st"},
	}
	rowsOf := func(body []byte) []string {
		var rows []string
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if strings.Contains(line, `"type":"row"`) {
				rows = append(rows, line)
			}
		}
		return rows
	}

	st1 := openStore(t, dir)
	_, ts1 := newTestServer(t, Config{Store: st1})
	resp := postJSON(t, ts1.URL+"/v1/sweep", req)
	cold := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", resp.StatusCode, cold)
	}
	coldRows := rowsOf(cold)
	if len(coldRows) != 2 {
		t.Fatalf("cold sweep produced %d rows, want 2: %s", len(coldRows), cold)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Store: st2, MaxInFlight: 1, QueueDepth: -1})
	release, err := s2.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp = postJSON(t, ts2.URL+"/v1/sweep", req)
	warm := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep status %d with the only slot held: %s — the all-hit path must not need a slot", resp.StatusCode, warm)
	}
	warmRows := rowsOf(warm)
	if len(warmRows) != len(coldRows) {
		t.Fatalf("warm sweep produced %d rows, want %d", len(warmRows), len(coldRows))
	}
	for i := range coldRows {
		if coldRows[i] != warmRows[i] {
			t.Errorf("row %d differs across restart:\n cold %s\n warm %s", i, coldRows[i], warmRows[i])
		}
	}
	if doc := healthDoc(t, ts2.URL); doc.Store == nil || doc.Store.Misses != 0 || doc.Store.Hits != 2 {
		t.Errorf("warm server store stats = %+v, want 2 hits, 0 misses", doc.Store)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantQuotaIsolation pins the fairness property: a tenant burning
// through its quota gets structured 429s while other tenants (and the
// default) stay unaffected.
func TestTenantQuotaIsolation(t *testing.T) {
	// A refill rate of ~0 makes the test deterministic: each tenant has
	// exactly its burst of 2 requests.
	_, ts := newTestServer(t, Config{TenantRatePerSec: 0.001, TenantBurst: 2})
	req := SimulateRequest{Set: paperSpec(), Approach: "st", HorizonMS: 20}

	for i := 0; i < 2; i++ {
		resp := postTenant(t, ts.URL+"/v1/simulate", req, "hot")
		if readAll(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("hot tenant request %d status %d, want 200 within burst", i, resp.StatusCode)
		}
	}
	resp := postTenant(t, ts.URL+"/v1/simulate", req, "hot")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted tenant status %d, want 429", resp.StatusCode)
	}
	retry := resp.Header.Get("Retry-After")
	if sec, err := strconv.Atoi(retry); err != nil || sec < 1 {
		t.Errorf("Retry-After = %q, want a whole second count >= 1", retry)
	}
	if doc := decodeError(t, resp); doc.Code != CodeQuotaExceeded || !strings.Contains(doc.Error, `"hot"`) {
		t.Errorf("error doc = %+v, want code %q naming the tenant", doc, CodeQuotaExceeded)
	}

	// The default tenant has its own untouched bucket.
	resp = postTenant(t, ts.URL+"/v1/simulate", req, "")
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("default tenant status %d after another tenant's exhaustion, want 200", resp.StatusCode)
	}

	doc := healthDoc(t, ts.URL)
	if doc.QuotaRejected["hot"] != 1 {
		t.Errorf("healthz quota_rejected = %v, want hot:1", doc.QuotaRejected)
	}
	if _, ok := doc.QuotaRejected[DefaultTenant]; ok {
		t.Errorf("default tenant appears in quota_rejected %v without any rejection", doc.QuotaRejected)
	}
}

// TestQuotaRetryAfterFromRefill pins the Retry-After arithmetic: the
// hint is the rejecting bucket's own refill time, rounded up to whole
// seconds — not a hardcoded constant.
func TestQuotaRetryAfterFromRefill(t *testing.T) {
	// 0.5 tokens/s, burst 1: after one request the next token is ~2s out.
	_, ts := newTestServer(t, Config{TenantRatePerSec: 0.5, TenantBurst: 1})
	req := SimulateRequest{Set: paperSpec(), Approach: "st", HorizonMS: 20}
	resp := postTenant(t, ts.URL+"/v1/simulate", req, "x")
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d", resp.StatusCode)
	}
	resp = postTenant(t, ts.URL+"/v1/simulate", req, "x")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", resp.StatusCode)
	}
	readAll(t, resp)
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q (one token at 0.5/s, rounded up)", got, "2")
	}
}

// TestServeEventStream pins the JSONL observability satellite: store
// misses, write-backs, hits and quota rejections each emit one schema'd
// line.
func TestServeEventStream(t *testing.T) {
	var events bytes.Buffer
	st := openStore(t, filepath.Join(t.TempDir(), "store"))
	defer st.Close() //mklint:allow errdrop — test cleanup
	_, ts := newTestServer(t, Config{
		Store: st, Events: &events,
		TenantRatePerSec: 0.001, TenantBurst: 2,
	})
	req := SimulateRequest{Set: paperSpec(), Approach: "st", HorizonMS: 20}
	for _, tenant := range []string{"", "", "greedy", "greedy", "greedy"} {
		resp := postTenant(t, ts.URL+"/v1/simulate", req, tenant)
		readAll(t, resp)
	}

	var kinds []string
	for _, line := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var ev struct {
			Schema string `json:"schema"`
			TUS    int64  `json:"t_us"`
			Kind   string `json:"kind"`
			Tenant string `json:"tenant"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable event line %q: %v", line, err)
		}
		if ev.Schema != EventSchema || ev.TUS == 0 {
			t.Errorf("event %q: schema %q t_us %d, want %q and a timestamp", line, ev.Schema, ev.TUS, EventSchema)
		}
		if ev.Kind == "quota-reject" && ev.Tenant != "greedy" {
			t.Errorf("quota-reject attributed to %q, want greedy", ev.Tenant)
		}
		kinds = append(kinds, ev.Kind)
	}
	// default tenant: miss+write, then hit; greedy: two hits, then its
	// burst of 2 is gone and the third request is rejected.
	want := []string{"store-miss", "store-write", "store-hit", "store-hit", "store-hit", "quota-reject"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}
}
