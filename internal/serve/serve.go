// Package serve exposes a repro.Runner session over HTTP/JSON — the
// mkservd daemon's engine room. It layers the serving concerns the
// simulator itself does not have on top of the PR-2 session API:
//
//   - admission control: a token bucket bounds the accepted request
//     rate, and a bounded job queue with backpressure (429 + Retry-After
//     when full) keeps simulation work from oversubscribing the host;
//   - request coalescing: concurrent identical requests — keyed by the
//     canonical set fingerprint plus the run configuration — share one
//     computation (singleflight for /v1/simulate, a row broadcaster for
//     streaming /v1/sweep), so a thundering herd of equal queries costs
//     one simulation;
//   - per-request deadlines: every request's context, bounded by its
//     timeout_ms (or the server default), propagates into
//     SimulateContext/SweepContext, so a disconnecting client frees its
//     shard at event-loop granularity;
//   - graceful drain: on shutdown the server stops accepting, finishes
//     in-flight work within the drain window, and aborts whatever is
//     left when the window expires — counting the aborts it had to do.
//
// The package is stdlib-only (net/http); all wall-clock reads go
// through an injectable clock so tests stay deterministic.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Config tunes a Server. The zero value of every field picks a sensible
// default (see NewServer).
type Config struct {
	// Runner is the simulation session behind every endpoint; nil builds
	// a fresh default session. Sharing one Runner across the server means
	// /v1/analyze queries and /v1/simulate runs warm the same LRU.
	Runner *repro.Runner
	// MaxInFlight bounds concurrently executing simulation jobs
	// (default: 2×GOMAXPROCS via runtime.NumCPU is deliberately NOT used —
	// the sweep endpoint parallelizes internally, so a small number of
	// jobs saturates the host; default 4).
	MaxInFlight int
	// QueueDepth bounds jobs waiting for an execution slot; an admitted
	// request beyond MaxInFlight waits here, and a request arriving with
	// the queue full is rejected with 429 + Retry-After (default 64).
	QueueDepth int
	// RatePerSec, when positive, token-bucket-limits the accepted request
	// rate across all endpoints; zero disables rate limiting.
	RatePerSec float64
	// Burst is the token bucket capacity (default: max(1, RatePerSec)).
	Burst int
	// DefaultTimeout caps a request's simulation work when the request
	// carries no timeout_ms of its own (default 30s).
	DefaultTimeout time.Duration
	// DrainWindow bounds the graceful shutdown: in-flight requests get
	// this long to finish before their contexts are canceled (default 5s).
	DrainWindow time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Store, when non-nil, is the persistent result store consulted
	// before admission: a /v1/simulate or /v1/sweep result whose key is
	// stored is served from disk, byte-identical to a live run, without
	// consuming an execution slot; misses are written back after the run.
	Store *store.Store
	// TenantRatePerSec, when positive, enforces a per-tenant token-bucket
	// quota (tenant from the X-MK-Tenant header, DefaultTenant otherwise)
	// on top of the global rate limit. Zero disables tenant quotas.
	TenantRatePerSec float64
	// TenantBurst is each tenant bucket's capacity (default:
	// max(1, TenantRatePerSec)).
	TenantBurst int
	// Events, when non-nil, receives the JSONL event stream (schema
	// mkss-serve-event/v1): store hits/misses/write-backs and per-tenant
	// quota rejections, one line each.
	Events io.Writer
	// Log receives lifecycle and error lines; nil discards them.
	Log io.Writer
	// Now is the wall clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time
}

// Server is the HTTP serving layer over one Runner session. Create with
// NewServer; serve via Handler (any http.Server) or Run (managed
// lifecycle with graceful drain).
type Server struct {
	cfg    Config
	runner *repro.Runner
	now    func() time.Time

	bucket  *tokenBucket
	adm     *admission
	flights *flightGroup
	sweeps  *sweepRegistry
	tenants *tenantLimiter
	events  *eventLog
	lat     *latencyRing

	// quotaRejections counts per-tenant quota rejections for /healthz
	// and /metrics (fed by tenants, which holds a pointer to it).
	quotaRejections metrics.TenantCounter

	// hardStop is closed when the drain window expires; every in-flight
	// request's work context is canceled through it.
	hardStop  chan struct{}
	stopOnce  sync.Once
	draining  atomic.Bool
	inflight  atomic.Int64
	queued    atomic.Int64
	requests  atomic.Uint64
	rejected  atomic.Uint64
	coalesced atomic.Uint64
	failures  atomic.Uint64
	aborted   atomic.Uint64

	// agg accumulates the run counters of every simulation the server
	// actually executed (coalesced followers share their leader's run and
	// are not double counted).
	aggMu   sync.Mutex
	agg     metrics.Counters
	aggRuns uint64
}

// NewServer builds a Server, applying the documented defaults.
func NewServer(cfg Config) *Server {
	if cfg.Runner == nil {
		cfg.Runner = repro.NewRunner(repro.RunnerConfig{})
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	} else if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.DrainWindow <= 0 {
		cfg.DrainWindow = 5 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.Now == nil {
		cfg.Now = time.Now // the one sanctioned wall-clock source of the package
	}
	s := &Server{
		cfg:      cfg,
		runner:   cfg.Runner,
		now:      cfg.Now,
		flights:  newFlightGroup(),
		sweeps:   newSweepRegistry(),
		lat:      newLatencyRing(512),
		hardStop: make(chan struct{}),
	}
	if cfg.RatePerSec > 0 {
		s.bucket = newTokenBucket(cfg.RatePerSec, cfg.Burst, cfg.Now)
	}
	if cfg.TenantRatePerSec > 0 {
		s.tenants = newTenantLimiter(cfg.TenantRatePerSec, cfg.TenantBurst, cfg.Now, &s.quotaRejections)
	}
	s.events = newEventLog(cfg.Events, cfg.Now, cfg.Log)
	s.adm = newAdmission(cfg.MaxInFlight, cfg.QueueDepth, &s.queued)
	return s
}

// Handler returns the server's route table. Every route is also the
// documentation of the public surface:
//
//	POST /v1/simulate   one run, coalesced and cached
//	POST /v1/sweep      streaming utilization sweep (chunked JSONL)
//	GET  /v1/estimate   analytical-twin answer, no execution slot
//	                    (also POST; refine=true falls through to the
//	                    /v1/simulate path, byte-identical)
//	GET  /v1/analyze    offline products for a task set
//	GET  /healthz       liveness + drain state
//	GET  /metrics       counters and gauges, text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/simulate", s.observe(s.handleSimulate))
	mux.Handle("/v1/estimate", s.observe(s.handleEstimate))
	mux.Handle("/v1/sweep", s.observe(s.handleSweep))
	mux.Handle("/v1/analyze", s.observe(s.handleAnalyze))
	mux.Handle("/healthz", s.observe(s.handleHealthz))
	mux.Handle("/metrics", s.observe(s.handleMetrics))
	return mux
}

// observe wraps a handler with the request gauges and the drain gate:
// once draining, every endpoint but /healthz and /metrics answers 503 so
// lingering keep-alive connections stop submitting work.
func (s *Server) observe(h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.draining.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
			w.Header().Set("Connection", "close")
			s.reject(w, http.StatusServiceUnavailable, 0, "server is draining")
			return
		}
		// Only /v1/* work feeds the p95 gauge: health probes and metrics
		// scrapes are sub-millisecond and frequent, and folding them in
		// would drag the autoscaler's load signal toward zero.
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			start := s.now()
			defer func() { s.lat.observe(s.now().Sub(start)) }()
		}
		h(w, r)
	})
}

// Run serves HTTP on l until ctx is canceled, then drains gracefully:
// stop accepting, let in-flight requests finish within the drain window,
// cancel whatever remains, and report the abort count. It returns nil
// after a clean drain (even if some requests had to be aborted — the
// aborts are visible in the log line and the aborted counter).
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	fmt.Fprintf(s.cfg.Log, "mkservd: draining (window %v, %d in flight)\n",
		s.cfg.DrainWindow, s.inflight.Load())
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainWindow)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		// The window expired with handlers still running: abort their
		// work contexts and give them a moment to unwind before closing
		// the remaining connections outright.
		s.abortInflight()
		fctx, fcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer fcancel()
		if err := hs.Shutdown(fctx); err != nil {
			if cerr := hs.Close(); cerr != nil {
				fmt.Fprintf(s.cfg.Log, "mkservd: close: %v\n", cerr)
			}
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintf(s.cfg.Log, "mkservd: drained (%d requests served, %d in-flight aborted)\n",
		s.requests.Load(), s.aborted.Load())
	return nil
}

// abortInflight cancels every in-flight request's work context, once.
func (s *Server) abortInflight() {
	s.stopOnce.Do(func() { close(s.hardStop) })
}

// workCtx derives the context one request's simulation work runs under:
// the client's context, bounded by the request deadline, and canceled
// early when the drain window expires.
func (s *Server) workCtx(r *http.Request, timeoutMS float64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS * float64(time.Millisecond))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	done := make(chan struct{})
	go func() {
		select {
		case <-s.hardStop:
			s.aborted.Add(1)
			cancel()
		case <-done:
		}
	}()
	return ctx, func() { close(done); cancel() }
}

// recordRun folds one executed simulation's counters into the server
// aggregate surfaced by /metrics.
func (s *Server) recordRun(res *repro.Result) {
	s.aggMu.Lock()
	s.agg = s.agg.Add(res.Counters)
	s.aggRuns++
	s.aggMu.Unlock()
}
