package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// handleMetrics renders the server's observability surface as a plain
// text dump, one "name value" pair per line: the server gauges
// (in-flight, queued, rejected, coalesced, ...), the analysis-cache
// counters, and the internal/metrics run counters aggregated over every
// simulation the server executed. Lines are emitted in sorted order so
// the output is diff-stable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.reject(w, http.StatusMethodNotAllowed, 0, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	b.WriteString("# mkservd server gauges\n")
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	writePairs(&b, "mkservd_", [][2]string{
		{"aborted_total", u(s.aborted.Load())},
		{"coalesced_total", u(s.coalesced.Load())},
		{"draining", strconv.FormatInt(draining, 10)},
		{"failures_total", u(s.failures.Load())},
		{"inflight", strconv.FormatInt(s.inflight.Load()-1, 10)}, // exclude this request
		{"queue_depth", strconv.Itoa(s.cfg.QueueDepth)},
		{"queued", strconv.FormatInt(s.queued.Load(), 10)},
		{"rejected_total", u(s.rejected.Load())},
		{"requests_total", u(s.requests.Load())},
		{"slots", strconv.Itoa(s.cfg.MaxInFlight)},
	})
	fmt.Fprintf(&b, "mkservd_p95_ms %s\n", strconv.FormatFloat(s.lat.p95(), 'f', -1, 64))
	if st := s.cfg.Store; st != nil {
		b.WriteString("# persistent result store\n")
		stats := st.Stats()
		writePairs(&b, "mkservd_store_", [][2]string{
			{"corrupt_recovered_total", u(stats.CorruptRecovered)},
			{"disk_bytes", strconv.FormatInt(stats.DiskBytes, 10)},
			{"hits_total", u(stats.Hits)},
			{"keys", strconv.Itoa(stats.Keys)},
			{"misses_total", u(stats.Misses)},
			{"segments", strconv.Itoa(stats.Segments)},
			{"superseded", strconv.Itoa(stats.Superseded)},
			{"writes_total", u(stats.Writes)},
		})
	}
	if rej := s.quotaRejections.Snapshot(); len(rej) > 0 {
		b.WriteString("# per-tenant quota rejections\n")
		for _, tenant := range s.quotaRejections.Keys() {
			fmt.Fprintf(&b, "mkservd_quota_rejected_total{tenant=%q} %d\n", tenant, rej[tenant])
		}
	}
	b.WriteString("# analysis cache\n")
	st := s.runner.CacheStats()
	writePairs(&b, "mkservd_cache_", [][2]string{
		{"capacity", strconv.Itoa(st.Capacity)},
		{"entries", strconv.Itoa(st.Entries)},
		{"evictions_total", u(st.Evictions)},
		{"hits_total", u(st.Hits)},
		{"misses_total", u(st.Misses)},
	})
	b.WriteString("# run counters (internal/metrics, summed over executed simulations)\n")
	s.aggMu.Lock()
	agg, runs := s.agg, s.aggRuns
	s.aggMu.Unlock()
	fmt.Fprintf(&b, "mkss_runs_total %d\n", runs)
	for _, kv := range flattenJSON("mkss_", agg) {
		fmt.Fprintf(&b, "%s %s\n", kv[0], kv[1])
	}
	if _, err := w.Write([]byte(b.String())); err != nil {
		fmt.Fprintf(s.cfg.Log, "mkservd: write metrics: %v\n", err)
	}
}

func u(v uint64) string { return strconv.FormatUint(v, 10) }

func writePairs(b *strings.Builder, prefix string, pairs [][2]string) {
	for _, kv := range pairs {
		b.WriteString(prefix)
		b.WriteString(kv[0])
		b.WriteByte(' ')
		b.WriteString(kv[1])
		b.WriteByte('\n')
	}
}

// flattenJSON renders any JSON-marshalable value as sorted (name, value)
// pairs, flattening nested objects with '_' and arrays with their index:
// Counters.Proc[0].Busy becomes mkss_proc_0_busy_us.
func flattenJSON(prefix string, v any) [][2]string {
	data, err := json.Marshal(v)
	if err != nil {
		return [][2]string{{prefix + "marshal_error", "1"}}
	}
	var tree any
	if err := json.Unmarshal(data, &tree); err != nil {
		return [][2]string{{prefix + "marshal_error", "1"}}
	}
	var out [][2]string
	flattenInto(&out, strings.TrimSuffix(prefix, "_"), tree)
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func flattenInto(out *[][2]string, name string, v any) {
	switch v := v.(type) {
	case map[string]any:
		// Collect and sort the keys: flattenInto feeds sorted text output.
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenInto(out, name+"_"+k, v[k])
		}
	case []any:
		for i, e := range v {
			flattenInto(out, name+"_"+strconv.Itoa(i), e)
		}
	case float64:
		*out = append(*out, [2]string{name, strconv.FormatFloat(v, 'f', -1, 64)})
	case bool:
		b := "0"
		if v {
			b = "1"
		}
		*out = append(*out, [2]string{name, b})
	case string:
		// Text values do not fit a numeric metrics dump; skip.
	case nil:
	}
}
