package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// estimateURL builds the GET form of an estimate query.
func estimateURL(base string, params map[string]string) string {
	q := url.Values{}
	spec, _ := json.Marshal(paperSpec())
	q.Set("set", string(spec))
	for k, v := range params {
		q.Set(k, v)
	}
	return base + "/v1/estimate?" + q.Encode()
}

func decodeEstimate(t *testing.T, resp *http.Response) EstimateDoc {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var doc EstimateDoc
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //mklint:allow errdrop — test helper, read-only body
	return doc
}

// GET /v1/estimate answers from the analytical twin: exact verdicts,
// sub-millisecond service time once the per-set products are memoized.
func TestEstimateGET(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get := func() EstimateDoc {
		resp, err := http.Get(estimateURL(ts.URL, map[string]string{
			"approach": "dp", "horizon_ms": "100", "seed": "7",
		}))
		if err != nil {
			t.Fatal(err)
		}
		return decodeEstimate(t, resp)
	}
	doc := get()
	if doc.Schema != EstimateSchema {
		t.Errorf("schema %q, want %q", doc.Schema, EstimateSchema)
	}
	if doc.Backend != "twin" || doc.Exact {
		t.Errorf("backend %q exact %v, want default twin/inexact", doc.Backend, doc.Exact)
	}
	if doc.Policy != "MKSS-DP" || doc.Scenario != "no-fault" || doc.Seed != 7 {
		t.Errorf("echoed run identity wrong: %+v", doc)
	}
	if !doc.Schedulable || !doc.MKPredicted {
		t.Error("paper set must be schedulable and (m,k)-satisfying")
	}
	if doc.Fingerprint == "" || doc.HorizonUS != 100_000 {
		t.Errorf("fingerprint %q horizon %d", doc.Fingerprint, doc.HorizonUS)
	}
	if doc.ActiveEnergy != 75 {
		t.Errorf("DP twin active energy %v, want the hand-derived 75", doc.ActiveEnergy)
	}
	// Warm answers must be sub-millisecond (the <1ms serving target): take
	// the fastest of a few to keep scheduler jitter out of the assertion.
	best := get().ElapsedUS
	for i := 0; i < 3; i++ {
		if e := get().ElapsedUS; e < best {
			best = e
		}
	}
	if best >= 1000 {
		t.Errorf("warm estimate took %dµs, want <1000µs", best)
	}
}

// POST with the same parameters answers identically (modulo timing).
func TestEstimatePOSTMatchesGET(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(estimateURL(ts.URL, map[string]string{"approach": "st", "horizon_ms": "100"}))
	if err != nil {
		t.Fatal(err)
	}
	got := decodeEstimate(t, resp)
	want := decodeEstimate(t, postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Set: paperSpec(), Approach: "st", HorizonMS: 100,
	}))
	got.ElapsedUS, want.ElapsedUS = 0, 0
	if got != want {
		t.Errorf("GET %+v != POST %+v", got, want)
	}
}

// refine=true must return the byte-identical mkss-run/v1 document that
// POST /v1/simulate produces for the same parameters.
func TestEstimateRefineByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, scenario := range []string{"none", "permanent"} {
		refined := readAll(t, postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			Set: paperSpec(), Approach: "selective", Scenario: scenario,
			Seed: 42, HorizonMS: 100, Refine: true,
		}))
		direct := readAll(t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
			Set: paperSpec(), Approach: "selective", Scenario: scenario,
			Seed: 42, HorizonMS: 100,
		}))
		if string(refined) != string(direct) {
			t.Errorf("%s: refine=true diverged from /v1/simulate:\n%s\nvs\n%s",
				scenario, refined, direct)
		}
		var doc RunDoc
		if err := json.Unmarshal(refined, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Schema != RunSchema {
			t.Errorf("refined schema %q, want %q", doc.Schema, RunSchema)
		}
	}
}

// The twin path must not consume an execution slot: with every slot held
// and the queue full, estimates still answer while simulations 429.
func TestEstimateNeedsNoExecutionSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: -1})
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Set: paperSpec(), Approach: "st", HorizonMS: 100})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated simulate status %d, want 429", resp.StatusCode)
	}
	readAll(t, resp)

	get, err := http.Get(estimateURL(ts.URL, map[string]string{"approach": "st", "horizon_ms": "100"}))
	if err != nil {
		t.Fatal(err)
	}
	if doc := decodeEstimate(t, get); !doc.Schedulable {
		t.Error("estimate under saturation returned wrong answer")
	}

	// An exact backend runs real simulation work, so it DOES wait for a
	// slot — with none available and no queue, it is rejected.
	resp = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Set: paperSpec(), Approach: "st", HorizonMS: 100, Backend: "sim", TimeoutMS: 50,
	})
	if resp.StatusCode == http.StatusOK {
		t.Error("exact backend must pass through execution-slot admission")
	}
	readAll(t, resp)
}

// The sim backend (a slot being available) answers as an exact
// EstimateDoc whose energies equal the refined run document's.
func TestEstimateSimBackend(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := decodeEstimate(t, postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Set: paperSpec(), Approach: "dp", HorizonMS: 100, Backend: "sim",
	}))
	if !doc.Exact || doc.Backend != "sim" {
		t.Fatalf("backend %q exact %v, want sim/exact", doc.Backend, doc.Exact)
	}
	refined := readAll(t, postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Set: paperSpec(), Approach: "dp", HorizonMS: 100, Refine: true,
	}))
	var run RunDoc
	if err := json.Unmarshal(refined, &run); err != nil {
		t.Fatal(err)
	}
	if doc.ActiveEnergy != run.ActiveEnergy || doc.TotalEnergy != run.TotalEnergy {
		t.Errorf("sim backend energies %v/%v, run doc %v/%v",
			doc.ActiveEnergy, doc.TotalEnergy, run.ActiveEnergy, run.TotalEnergy)
	}
}

// The twin has no model for dynamically promoted policies: asking it
// about MKSS-DBP must be a structured 501 (never a silently wrong
// zero-activity estimate), while refine=true falls through to the
// simulator, which runs DBP like any other registered policy.
func TestEstimateTwinUnsupportedDBP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, backend := range []string{"", "twin"} {
		resp := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			Set: paperSpec(), Approach: "dbp", HorizonMS: 100, Backend: backend,
		})
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("backend %q: status %d, want 501 (%s)", backend, resp.StatusCode, body)
		}
		var doc ErrorDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("backend %q: body %q not an ErrorDoc: %v", backend, body, err)
		}
		if doc.Code != CodeUnsupportedBackend || doc.Error == "" {
			t.Errorf("backend %q: error doc %+v, want code %q", backend, doc, CodeUnsupportedBackend)
		}
	}

	// refine=true short-circuits to the simulation core before any backend
	// is constructed: a full mkss-run/v1 document, byte-identical to
	// /v1/simulate.
	refined := readAll(t, postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Set: paperSpec(), Approach: "dbp", HorizonMS: 100, Refine: true,
	}))
	direct := readAll(t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Set: paperSpec(), Approach: "dbp", HorizonMS: 100,
	}))
	if string(refined) != string(direct) {
		t.Errorf("refine=true for dbp diverged from /v1/simulate:\n%s\nvs\n%s", refined, direct)
	}
	var run RunDoc
	if err := json.Unmarshal(refined, &run); err != nil {
		t.Fatal(err)
	}
	if run.Schema != RunSchema || run.Policy != "MKSS-DBP" {
		t.Errorf("refined doc schema %q policy %q, want %q/MKSS-DBP", run.Schema, run.Policy, RunSchema)
	}

	// The sim backend models every policy; DBP answers exactly.
	doc := decodeEstimate(t, postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Set: paperSpec(), Approach: "dbp", HorizonMS: 100, Backend: "sim",
	}))
	if !doc.Exact || doc.Policy != "MKSS-DBP" {
		t.Errorf("sim backend for dbp: %+v", doc)
	}
}

func TestEstimateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		do   func() (*http.Response, error)
	}{
		{"unknown backend", func() (*http.Response, error) {
			return post(ts.URL+"/v1/estimate", EstimateRequest{Set: paperSpec(), Approach: "st", Backend: "oracle"})
		}},
		{"bad set query", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/estimate?set=notjson")
		}},
		{"bad refine flag", func() (*http.Response, error) {
			return http.Get(estimateURL(ts.URL, map[string]string{"refine": "perhaps"}))
		}},
		{"bad approach", func() (*http.Response, error) {
			return post(ts.URL+"/v1/estimate", EstimateRequest{Set: paperSpec(), Approach: "edf"})
		}},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatal(err)
		}
		var doc ErrorDoc
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
			continue
		}
		if err := json.Unmarshal(body, &doc); err != nil || doc.Code != CodeBadRequest || doc.Error == "" {
			t.Errorf("%s: error doc %s (err %v)", c.name, body, err)
		}
	}
}

// Every route answers a wrong-method request with a structured 405 JSON
// error, not a bare status or an empty body.
func TestWrongMethodAllRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	routes := []struct {
		path   string
		method string // a method the route does not serve
	}{
		{"/v1/simulate", http.MethodGet},
		{"/v1/sweep", http.MethodGet},
		{"/v1/estimate", http.MethodDelete},
		{"/v1/analyze", http.MethodDelete},
		{"/healthz", http.MethodPost},
		{"/metrics", http.MethodPost},
	}
	for _, rt := range routes {
		req, err := http.NewRequest(rt.method, ts.URL+rt.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", rt.method, rt.path, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type %q, want application/json", rt.method, rt.path, ct)
		}
		var doc ErrorDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Errorf("%s %s: body %q not an ErrorDoc: %v", rt.method, rt.path, body, err)
			continue
		}
		if doc.Code != CodeMethodNotAllowed || doc.Error == "" {
			t.Errorf("%s %s: error doc %+v", rt.method, rt.path, doc)
		}
	}
}
