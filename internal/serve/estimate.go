package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/estimate"
)

// handleEstimate serves GET/POST /v1/estimate: the two-tier query path.
//
// The default tier is the analytical twin — a closed-form answer from
// the memoized offline products, served without consuming an execution
// slot (only the token bucket applies), so an estimate-heavy client
// cannot starve the simulation queue and a cached answer returns in
// microseconds. The second tier is refine=true, which falls through to
// the real discrete-event simulation via the exact /v1/simulate core:
// same admission, same coalescing flight, byte-identical mkss-run/v1
// response.
//
// Backend selects among the registered estimators; an exact backend
// ("sim") runs real simulation work and therefore does pass through the
// execution-slot admission even without refine (its answer is still
// packaged as an EstimateDoc, and its run counters are not folded into
// the /metrics aggregate — use refine for the full document).
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, 0, "GET or POST required")
		return
	}
	if !s.admitRate(w, r) {
		return
	}
	var req EstimateRequest
	if r.Method == http.MethodGet {
		if err := decodeEstimateQuery(r, &req); err != nil {
			s.reject(w, http.StatusBadRequest, 0, "parse query: "+err.Error())
			return
		}
	} else if err := s.decodeBody(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, 0, "parse request: "+err.Error())
		return
	}
	set, err := req.Set.Set()
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	a, err := repro.ParseApproach(orDefault(req.Approach, "selective"))
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	sc, err := repro.ParseScenario(orDefault(req.Scenario, "none"))
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	if req.Refine {
		s.serveSimulate(w, r, SimulateRequest{
			Set:           req.Set,
			Approach:      req.Approach,
			Scenario:      req.Scenario,
			Seed:          req.Seed,
			HorizonMS:     req.HorizonMS,
			TransientRate: req.TransientRate,
			TimeoutMS:     req.TimeoutMS,
		}, set, a, sc)
		return
	}
	est, err := estimate.New(req.Backend, s.runner)
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	ctx, cancel := s.workCtx(r, req.TimeoutMS)
	defer cancel()
	if est.Exact() {
		release, err := s.adm.acquire(ctx)
		if err != nil {
			s.fail(w, classifyCtx(err))
			return
		}
		defer release()
	}
	start := s.now()
	ans, err := est.Estimate(ctx, estimate.Request{
		Set:           set,
		Approach:      a,
		Scenario:      sc,
		Seed:          req.Seed,
		HorizonMS:     req.HorizonMS,
		TransientRate: req.TransientRate,
	})
	if err != nil {
		var ue *estimate.UnsupportedError
		if errors.As(err, &ue) {
			// Structured 501: the backend has no model for this policy.
			// Permanent for the pair — the client should refine (the
			// simulator handles every registered policy) rather than retry.
			s.rejectCode(w, http.StatusNotImplemented, 0, CodeUnsupportedBackend, err.Error())
			return
		}
		s.fail(w, classifyCtx(err))
		return
	}
	s.writeJSON(w, http.StatusOK, EstimateDoc{
		Schema:       EstimateSchema,
		Fingerprint:  analysis.Fingerprint(set),
		Backend:      ans.Backend,
		Policy:       ans.Policy,
		Scenario:     sc.String(),
		Seed:         req.Seed,
		HorizonUS:    int64(ans.Horizon),
		Schedulable:  ans.Schedulable,
		ActiveEnergy: ans.ActiveEnergy,
		TotalEnergy:  ans.TotalEnergy,
		MKPredicted:  ans.MKPredicted,
		Exact:        ans.Exact,
		ElapsedUS:    int64(s.now().Sub(start) / time.Microsecond),
	})
}

// decodeEstimateQuery maps GET query parameters onto an EstimateRequest:
// set (the JSON task-set spec), approach, scenario, seed, horizon_ms,
// transient_rate, backend, refine, timeout_ms. Unknown set fields are
// rejected exactly as in a POST body.
func decodeEstimateQuery(r *http.Request, req *EstimateRequest) error {
	q := r.URL.Query()
	dec := json.NewDecoder(strings.NewReader(q.Get("set")))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req.Set); err != nil {
		return &queryError{"set", err.Error()}
	}
	req.Approach = q.Get("approach")
	req.Scenario = q.Get("scenario")
	req.Backend = q.Get("backend")
	var err error
	if v := q.Get("seed"); v != "" {
		if req.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return &queryError{"seed", err.Error()}
		}
	}
	if v := q.Get("horizon_ms"); v != "" {
		if req.HorizonMS, err = strconv.ParseFloat(v, 64); err != nil {
			return &queryError{"horizon_ms", err.Error()}
		}
	}
	if v := q.Get("transient_rate"); v != "" {
		if req.TransientRate, err = strconv.ParseFloat(v, 64); err != nil {
			return &queryError{"transient_rate", err.Error()}
		}
	}
	if v := q.Get("refine"); v != "" {
		if req.Refine, err = strconv.ParseBool(v); err != nil {
			return &queryError{"refine", err.Error()}
		}
	}
	if v := q.Get("timeout_ms"); v != "" {
		if req.TimeoutMS, err = strconv.ParseFloat(v, 64); err != nil {
			return &queryError{"timeout_ms", err.Error()}
		}
	}
	return nil
}

// queryError names the offending query parameter in a decode failure.
type queryError struct{ param, detail string }

func (e *queryError) Error() string { return e.param + " parameter: " + e.detail }
