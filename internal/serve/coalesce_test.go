package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupSingleExecution coalesces N concurrent identical calls
// into exactly one execution of fn, with every caller seeing the shared
// result and all but the leader reporting shared=true.
func TestFlightGroupSingleExecution(t *testing.T) {
	g := newFlightGroup()
	const n = 16
	var calls atomic.Int64
	arrived := make(chan struct{}, n)
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([][]byte, n)
	shareds := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
				calls.Add(1)
				arrived <- struct{}{}
				<-proceed // hold the flight open until every caller joined
				return []byte("result"), nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			vals[i], shareds[i] = v, shared
		}(i)
	}
	<-arrived // the leader is inside fn; followers can only join now
	// Wait for the follower goroutines to have had a chance to enter do;
	// they either joined the open flight (shared) or, by serialization on
	// g.mu, cannot start a second one before the flight completes.
	for deadline := 0; ; deadline++ {
		g.mu.Lock()
		w := g.calls["k"].waiters
		g.mu.Unlock()
		if w == n {
			break
		}
		if deadline > 1000 {
			t.Fatalf("followers never joined: %d/%d waiters", w, n)
		}
		time.Sleep(time.Millisecond)
	}
	close(proceed)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	sharedCount := 0
	for i := range vals {
		if string(vals[i]) != "result" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != n-1 {
		t.Fatalf("shared count = %d, want %d", sharedCount, n-1)
	}
}

// TestFlightGroupLastWaiterCancelsLeader verifies that abandoning every
// waiter cancels the leader's detached context (the shard is freed as
// soon as nobody wants the result).
func TestFlightGroupLastWaiterCancelsLeader(t *testing.T) {
	g := newFlightGroup()
	leaderDone := make(chan error, 1)
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, _, err := g.do(ctx, "k", func(lctx context.Context) ([]byte, error) {
			close(started)
			<-lctx.Done() // simulate work that honors cancellation
			return nil, lctx.Err()
		})
		leaderDone <- err
	}()
	<-started
	cancel() // the only caller gives up
	select {
	case err := <-leaderDone:
		if err == nil {
			t.Fatal("expected a context error after abandoning the flight")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader context was never canceled")
	}
}

// TestFlightGroupSequentialNotShared checks that non-overlapping calls
// each execute fn (coalescing is in-flight only, not a cache).
func TestFlightGroupSequentialNotShared(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		_, shared, err := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
			calls.Add(1)
			return []byte("x"), nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("fn executed %d times, want 3", calls.Load())
	}
}

// TestSweepJobReplayAndFollow streams rows to a subscriber that attaches
// mid-flight: it must replay the published prefix and then follow live,
// seeing the identical full sequence.
func TestSweepJobReplayAndFollow(t *testing.T) {
	reg := newSweepRegistry()
	gate := make(chan struct{})
	j, started := reg.attach("k", func(ctx context.Context, publish func([]byte)) error {
		publish([]byte("row0"))
		publish([]byte("row1"))
		<-gate
		publish([]byte("row2"))
		return nil
	})
	if !started {
		t.Fatal("first attach should start the job")
	}
	// Wait until the first two rows are in.
	for {
		j.mu.Lock()
		n := len(j.rows)
		j.mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	j2, started2 := reg.attach("k", nil)
	if started2 || j2 != j {
		t.Fatal("second attach should coalesce onto the open job")
	}
	close(gate)
	var got []string
	err := j2.stream(context.Background(), func(row []byte) error {
		got = append(got, string(row))
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	want := []string{"row0", "row1", "row2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

// TestSweepJobLastSubscriberCancelsLeader verifies that the leader's
// context dies when its only subscriber disconnects mid-stream.
func TestSweepJobLastSubscriberCancelsLeader(t *testing.T) {
	reg := newSweepRegistry()
	canceled := make(chan struct{})
	j, _ := reg.attach("k", func(ctx context.Context, publish func([]byte)) error {
		publish([]byte("row0"))
		<-ctx.Done()
		close(canceled)
		return ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel the subscriber after it consumed the first row.
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := j.stream(ctx, func([]byte) error { return nil }); err == nil {
		t.Fatal("stream should return the subscriber's context error")
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("leader was never canceled after the last subscriber left")
	}
}
