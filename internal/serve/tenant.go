package serve

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Per-tenant quotas: every tenant gets its own token bucket (uniform
// rate/burst), created on first sight, so one hot client exhausts its
// own bucket while everyone else's stays full. The tenant is whatever
// the TenantHeader carries; requests without the header share the
// default tenant's bucket. This sits beneath the global rate limit (when
// one is configured): the global bucket protects the host, the tenant
// buckets protect the tenants from each other.

// TenantHeader names the request header carrying the tenant identity.
const TenantHeader = "X-MK-Tenant"

// DefaultTenant is the tenant of requests without a TenantHeader.
const DefaultTenant = "default"

// Tenant extracts the request's tenant identity.
func Tenant(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// tenantLimiter lazily maintains one token bucket per tenant.
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   int
	now     func() time.Time
	buckets map[string]*tokenBucket
	// rejected counts quota rejections per tenant, surfaced in /healthz
	// and /metrics.
	rejected *metrics.TenantCounter
}

func newTenantLimiter(rate float64, burst int, now func() time.Time, rejected *metrics.TenantCounter) *tenantLimiter {
	return &tenantLimiter{
		rate:     rate,
		burst:    burst,
		now:      now,
		buckets:  map[string]*tokenBucket{},
		rejected: rejected,
	}
}

// take consumes one token from tenant's bucket; on exhaustion it reports
// the bucket's refill time (the Retry-After hint) and counts the
// rejection against the tenant.
func (l *tenantLimiter) take(tenant string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	b := l.buckets[tenant]
	if b == nil {
		b = newTokenBucket(l.rate, l.burst, l.now)
		l.buckets[tenant] = b
	}
	l.mu.Unlock()
	ok, retryAfter = b.take()
	if !ok {
		l.rejected.Add(tenant)
	}
	return ok, retryAfter
}
