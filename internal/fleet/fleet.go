// Package fleet is the distributed sweep coordinator: it takes one
// logical Figure-6 utilization sweep and fans it out over a pool of
// mkservd workers through the serving API, preserving the repo's core
// determinism property — the merged output rows are bit-identical to a
// single-process batch sweep with the same parameters.
//
// The design follows the replicate/retry/checkpoint pattern of the
// energy-aware reliability literature (Aupy/Benoit/Robert): the sweep is
// embarrassingly parallel over utilization intervals, so each interval
// becomes one work unit, keyed by experiment.IntervalOffset so any
// worker computes exactly the row the batch run would. Units are
// dispatched with bounded in-flight per worker; a unit lost to a worker
// death is retried on another worker; straggler units are hedged
// (duplicated, first result wins, loser cancelled); and every completed
// unit is journaled to a JSONL checkpoint before it counts, so a
// coordinator crash or a clean failure (all workers down) never loses
// finished work — -resume re-runs only the missing intervals.
//
// Determinism argument: a unit's row depends only on (seed, interval
// offset, interval bounds, sets, candidates, approaches, scenario) —
// all carried in the request — and the engine is worker-count invariant,
// so *which* worker computes a unit, in *what order*, with *how many*
// retries, cannot change a byte of it. The coordinator merges rows in
// interval order, which makes the whole stream reproducible.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/store"
	"repro/internal/workload"
)

// intervalStep is the utilization bucket width shared with the serving
// layer and the paper's evaluation (width-0.1 intervals).
const intervalStep = 0.1

// SweepSpec identifies one logical sweep — the same parameters a batch
// /v1/sweep request carries, minus the per-request plumbing.
type SweepSpec struct {
	Scenario        string   `json:"scenario"`
	Seed            uint64   `json:"seed"`
	SetsPerInterval int      `json:"sets_per_interval"`
	MaxCandidates   int      `json:"max_candidates"`
	Lo              float64  `json:"lo"`
	Hi              float64  `json:"hi"`
	Approaches      []string `json:"approaches"`
}

// normalize applies the serving layer's defaults and canonicalizes the
// scenario and approach names, so the checkpoint key and the worker
// requests are stable across spellings ("st" vs "MKSS-ST").
func (sp SweepSpec) normalize() (SweepSpec, error) {
	if sp.Seed == 0 {
		sp.Seed = 2020
	}
	if sp.SetsPerInterval <= 0 {
		sp.SetsPerInterval = 3
	}
	if sp.MaxCandidates <= 0 {
		sp.MaxCandidates = 500
	}
	if sp.Lo <= 0 {
		sp.Lo = 0.1
	}
	if sp.Hi <= 0 {
		sp.Hi = 1.0
	}
	if sp.Hi <= sp.Lo {
		return sp, fmt.Errorf("fleet: hi (%v) must exceed lo (%v)", sp.Hi, sp.Lo)
	}
	sc, err := repro.ParseScenario(orDefault(sp.Scenario, "none"))
	if err != nil {
		return sp, fmt.Errorf("fleet: %w", err)
	}
	sp.Scenario = sc.String()
	if len(sp.Approaches) == 0 {
		sp.Approaches = []string{"st", "dp", "selective"}
	}
	names := make([]string, len(sp.Approaches))
	for i, n := range sp.Approaches {
		a, err := repro.ParseApproach(n)
		if err != nil {
			return sp, fmt.Errorf("fleet: %w", err)
		}
		names[i] = a.String()
	}
	sp.Approaches = names
	return sp, nil
}

// Normalized is the exported normalize: callers that need the exact
// sweep a coordinator would run (e.g. mkfleet -local computing the
// reference stream) share one defaulting/canonicalization path.
func (sp SweepSpec) Normalized() (SweepSpec, error) { return sp.normalize() }

// Key canonicalizes the sweep identity for the checkpoint header: two
// sweeps with the same key produce the same rows.
func (sp SweepSpec) Key() string {
	return strings.Join([]string{
		sp.Scenario,
		strconv.FormatUint(sp.Seed, 10),
		strconv.Itoa(sp.SetsPerInterval),
		strconv.Itoa(sp.MaxCandidates),
		strconv.FormatFloat(sp.Lo, 'g', -1, 64),
		strconv.FormatFloat(sp.Hi, 'g', -1, 64),
		strings.Join(sp.Approaches, ","),
	}, "|")
}

// Intervals returns the sweep's work units — the same width-0.1 buckets
// a batch run iterates, in the same order.
func (sp SweepSpec) Intervals() []workload.Interval {
	return workload.Intervals(sp.Lo, sp.Hi, intervalStep)
}

// Config tunes a Coordinator. Zero values pick the documented defaults.
type Config struct {
	// Workers is the static worker pool (host:port or http:// URLs).
	Workers []string
	// Spec is the sweep to distribute.
	Spec SweepSpec
	// PerWorkerInFlight bounds concurrently dispatched units per worker
	// (default 2 — mkservd parallelizes internally, so a couple of
	// units saturate a worker without queue pile-up).
	PerWorkerInFlight int
	// UnitTimeout bounds one unit attempt end to end and is forwarded
	// as the request's timeout_ms (default 2m).
	UnitTimeout time.Duration
	// MaxUnitFailures is a unit's failure budget across all workers
	// before the sweep aborts (default 6). Cancelled hedge losers do
	// not count.
	MaxUnitFailures int
	// Hedge duplicates a unit that has been in flight this long onto a
	// second worker — first result wins, the loser is cancelled. Zero
	// disables hedging.
	Hedge time.Duration
	// Tick is the event-loop housekeeping cadence: probe scheduling,
	// hedge checks, all-down accounting (default 100ms).
	Tick time.Duration
	// ProbeBackoff/ProbeMax shape the down-worker probe schedule: the
	// first re-probe comes after ProbeBackoff, doubling per consecutive
	// failure up to ProbeMax (defaults 250ms and 5s).
	ProbeBackoff time.Duration
	ProbeMax     time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// AllDownGrace is how long the coordinator keeps probing with every
	// worker down before failing the sweep cleanly (default 15s). The
	// checkpoint stays intact either way.
	AllDownGrace time.Duration
	// CheckpointPath, when set, journals completed units to this JSONL
	// file; with Resume, previously completed units are loaded from it
	// and only missing intervals run.
	CheckpointPath string
	Resume         bool
	// Store, when non-nil, is the persistent cross-run result cache:
	// before dispatching, every pending unit's key is probed and a hit
	// satisfies the unit without any worker traffic; completed units are
	// written back so the next run (or a restarted coordinator) starts
	// warm. The key space is shared with mkservd's own store, so a fleet
	// run can warm a serving store and vice versa.
	Store *store.Store
	// Pool, when non-nil, is an elastic worker pool: the coordinator
	// syncs its registry with Pool.Addrs() every tick, adopting workers
	// the autoscaler spawned and retiring ones it stopped. Workers may
	// be empty when a Pool is configured.
	Pool *Pool
	// Log receives coordinator lifecycle lines; nil discards them.
	Log io.Writer
	// Now is the wall clock (tests inject a fake); nil means time.Now.
	Now func() time.Time
	// NewClient builds the per-worker API client (test seam); nil uses
	// a default client with no client-level retries — the coordinator
	// owns retry policy.
	NewClient func(addr string) *client.Client
}

// Coordinator runs one distributed sweep. Create with New, run with Run.
type Coordinator struct {
	cfg  Config
	spec SweepSpec
	now  func() time.Time
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 && cfg.Pool == nil {
		return nil, errors.New("fleet: no workers configured")
	}
	spec, err := cfg.Spec.normalize()
	if err != nil {
		return nil, err
	}
	if cfg.PerWorkerInFlight <= 0 {
		cfg.PerWorkerInFlight = 2
	}
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = 2 * time.Minute
	}
	if cfg.MaxUnitFailures <= 0 {
		cfg.MaxUnitFailures = 6
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.ProbeBackoff <= 0 {
		cfg.ProbeBackoff = 250 * time.Millisecond
	}
	if cfg.ProbeMax <= 0 {
		cfg.ProbeMax = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.AllDownGrace <= 0 {
		cfg.AllDownGrace = 15 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.Now == nil {
		cfg.Now = time.Now // the one sanctioned wall-clock source of the package
	}
	if cfg.NewClient == nil {
		cfg.NewClient = func(addr string) *client.Client {
			return client.New(client.Config{Addr: addr})
		}
	}
	return &Coordinator{cfg: cfg, spec: spec, now: cfg.Now}, nil
}

// Spec returns the normalized sweep the coordinator will run.
func (c *Coordinator) Spec() SweepSpec { return c.spec }

// unit lifecycle states.
const (
	unitPending = iota
	unitInflight
	unitDone
)

// attempt is one dispatched (unit, worker) pair.
type attempt struct {
	unit    int
	w       *worker
	hedge   bool
	started time.Time
	cancel  context.CancelFunc
}

// unitInfo is the coordinator's per-unit bookkeeping.
type unitInfo struct {
	state    int
	failures int
	hedged   bool
	excluded map[int]bool
	attempts []*attempt
}

// unitResult is one finished attempt.
type unitResult struct {
	at  *attempt
	row []byte
	err error
}

// probeResult is one finished health probe.
type probeResult struct {
	w  *worker
	ok bool
}

// Run executes the distributed sweep, feeding the merged JSONL stream —
// one "start" line, the interval rows in order, a terminal "done" (or
// "error") line, each without the trailing newline — to out. It returns
// the run's accounting alongside any error; on error the checkpoint
// (when configured) retains every unit completed before the failure.
func (c *Coordinator) Run(ctx context.Context, out func(line []byte) error) (*Summary, error) {
	start := c.now()
	intervals := c.spec.Intervals()
	n := len(intervals)
	if n == 0 {
		return nil, fmt.Errorf("fleet: sweep [%v, %v) contains no intervals", c.spec.Lo, c.spec.Hi)
	}

	// Checkpoint: fresh journal, or resume from a previous run's.
	var journal *Journal
	rows := make([][]byte, n)
	units := make([]unitInfo, n)
	for i := range units {
		units[i].excluded = map[int]bool{}
	}
	fromCkpt := 0
	if c.cfg.CheckpointPath != "" {
		if c.cfg.Resume {
			j, prev, oerr := OpenJournal(c.cfg.CheckpointPath, c.spec.Key(), n)
			if oerr != nil {
				return nil, oerr
			}
			journal = j
			for u, raw := range prev {
				rows[u] = append([]byte(nil), raw...)
				units[u].state = unitDone
				fromCkpt++
			}
		} else {
			j, cerr := CreateJournal(c.cfg.CheckpointPath, c.spec.Key(), n)
			if cerr != nil {
				return nil, cerr
			}
			journal = j
		}
		defer func() {
			if cerr := journal.Close(); cerr != nil {
				fmt.Fprintf(c.cfg.Log, "fleet: close checkpoint: %v\n", cerr)
			}
		}()
	}

	// Cross-run store: a pending unit whose row is already stored needs
	// no worker at all — it is journaled like a freshly computed unit so
	// a later -resume run is warm even without the store.
	fromStore := 0
	if c.cfg.Store != nil {
		for u := 0; u < n; u++ {
			if units[u].state == unitDone {
				continue
			}
			raw, ok := c.cfg.Store.Get(c.unitKey(u, intervals[u]))
			if !ok {
				continue
			}
			rows[u] = raw
			units[u].state = unitDone
			if err := journal.Append(u, raw); err != nil {
				return nil, err
			}
			fromStore++
		}
		if fromStore > 0 {
			fmt.Fprintf(c.cfg.Log, "fleet: %d/%d units satisfied by the result store\n", fromStore, n)
		}
	}
	// storePut writes one completed unit back to the store; a write
	// failure costs only warmth, never the run.
	storePut := func(u int, row []byte) {
		if c.cfg.Store == nil {
			return
		}
		if err := c.cfg.Store.Put(c.unitKey(u, intervals[u]), row); err != nil {
			fmt.Fprintf(c.cfg.Log, "fleet: store write-back for unit %d: %v\n", u, err)
		}
	}

	maxWorkers := len(c.cfg.Workers)
	if c.cfg.Pool != nil && c.cfg.Pool.Max() > maxWorkers {
		maxWorkers = c.cfg.Pool.Max()
	}
	reg := newRegistry(c.cfg.Workers, c.cfg.NewClient, c.cfg.ProbeBackoff, c.cfg.ProbeMax)
	if c.cfg.Pool != nil {
		reg.sync(c.cfg.Pool.Addrs(), c.cfg.NewClient)
	}
	maxAttempts := maxWorkers*c.cfg.PerWorkerInFlight + 1
	results := make(chan unitResult, maxAttempts)
	probes := make(chan probeResult, maxWorkers+1)
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	doneCount := fromCkpt + fromStore
	emitted := 0
	activeAttempts, activeProbes := 0, 0
	var fatal error

	// The merged stream opens with the same start line a single batch
	// /v1/sweep over the full range would emit.
	if err := out(serve.MarshalLine(serve.SweepLine{
		Type: "start", Schema: serve.SweepSchema,
		Scenario: c.spec.Scenario, Seed: c.spec.Seed, Intervals: n,
	})); err != nil {
		return nil, fmt.Errorf("fleet: write start line: %w", err)
	}
	// flush emits every contiguous completed row not yet written — the
	// in-order merge point of the whole subsystem.
	flush := func() error {
		for emitted < n && units[emitted].state == unitDone {
			if err := out(rows[emitted]); err != nil {
				return fmt.Errorf("fleet: write row %d: %w", emitted, err)
			}
			emitted++
		}
		return nil
	}
	if err := flush(); err != nil { // resumed prefix, if any
		return nil, err
	}

	dispatch := func(u int, w *worker, hedge bool) {
		ui := &units[u]
		actx, cancel := context.WithTimeout(runCtx, c.cfg.UnitTimeout)
		at := &attempt{unit: u, w: w, hedge: hedge, started: c.now(), cancel: cancel}
		ui.attempts = append(ui.attempts, at)
		ui.state = unitInflight
		w.inflight++
		w.stats.Dispatched++
		if hedge {
			w.stats.Hedged++
		} else if ui.failures > 0 {
			w.stats.Retried++
		}
		activeAttempts++
		go func() {
			row, err := c.runUnit(actx, w.cl, u, intervals[u])
			cancel()
			results <- unitResult{at: at, row: row, err: err}
		}()
	}

	// schedule assigns pending units, in interval order, to available
	// workers. A unit excluded from every live worker has its exclusion
	// reset (better a repeat attempt than a stall).
	schedule := func() {
		for u := 0; u < n; u++ {
			ui := &units[u]
			if ui.state != unitPending {
				continue
			}
			w := reg.pick(ui.excluded, c.cfg.PerWorkerInFlight)
			if w == nil && len(ui.excluded) > 0 {
				if free := reg.pick(nil, c.cfg.PerWorkerInFlight); free != nil {
					ui.excluded = map[int]bool{}
					w = free
				}
			}
			if w == nil {
				continue
			}
			dispatch(u, w, false)
		}
	}

	// removeAttempt drops at from its unit's attempt list.
	removeAttempt := func(at *attempt) {
		ui := &units[at.unit]
		for i, a := range ui.attempts {
			if a == at {
				ui.attempts = append(ui.attempts[:i], ui.attempts[i+1:]...)
				break
			}
		}
	}

	// handleResult folds one finished attempt into the state machine;
	// the returned error is fatal for the whole sweep.
	handleResult := func(r unitResult) error {
		activeAttempts--
		at := r.at
		at.w.inflight--
		removeAttempt(at)
		ui := &units[at.unit]
		if ui.state == unitDone {
			// The unit finished elsewhere first: this is a cancelled
			// hedge loser (or a duplicate racing a checkpoint).
			at.w.stats.Cancelled++
			return nil
		}
		if r.err == nil {
			at.w.stats.Completed++
			if ui.hedged {
				at.w.stats.Won++
			}
			ui.state = unitDone
			doneCount++
			rows[at.unit] = r.row
			if err := journal.Append(at.unit, r.row); err != nil {
				return err
			}
			storePut(at.unit, r.row)
			for _, other := range ui.attempts {
				other.cancel()
			}
			if fatal == nil {
				return flush()
			}
			return nil
		}
		if runCtx.Err() != nil {
			// The run is shutting down; the attempt died of our own
			// cancellation, not of a worker fault.
			at.w.stats.Cancelled++
			return nil
		}
		at.w.stats.Failed++
		ui.failures++
		fmt.Fprintf(c.cfg.Log, "fleet: unit %d (%v) failed on %s: %v\n",
			at.unit, intervals[at.unit], at.w.addr, r.err)
		var herr *client.HTTPError
		isHTTP := errors.As(r.err, &herr)
		if isHTTP && !herr.Retryable() {
			// A 4xx is deterministic: every worker would reject the
			// same request. Retrying elsewhere cannot help.
			return fmt.Errorf("fleet: unit %d rejected permanently by %s: %w", at.unit, at.w.addr, r.err)
		}
		if !isHTTP || herr.Status >= 500 {
			// Transport death, truncated stream or server-side failure:
			// treat the worker as sick until a probe clears it.
			reg.markDown(at.w, c.now())
			fmt.Fprintf(c.cfg.Log, "fleet: worker %s marked down (%d/%d up)\n",
				at.w.addr, reg.upCount(), len(reg.workers))
		}
		ui.excluded[at.w.index] = true
		if ui.failures > c.cfg.MaxUnitFailures {
			return fmt.Errorf("fleet: unit %d exhausted its failure budget (%d attempts, last: %w)",
				at.unit, ui.failures, r.err)
		}
		if len(ui.attempts) == 0 {
			ui.state = unitPending
		}
		return nil
	}

	launchProbe := func(w *worker) {
		activeProbes++
		go func() {
			pctx, cancel := context.WithTimeout(runCtx, c.cfg.ProbeTimeout)
			defer cancel()
			h, err := w.cl.Healthz(pctx)
			probes <- probeResult{w: w, ok: err == nil && h != nil && h.Status == "ok"}
		}()
	}

	handleProbe := func(p probeResult) {
		activeProbes--
		if p.w.state != workerProbing {
			return // state moved on (e.g. shutdown)
		}
		if p.ok {
			reg.markUp(p.w)
			fmt.Fprintf(c.cfg.Log, "fleet: worker %s back up\n", p.w.addr)
		} else {
			reg.markDown(p.w, c.now())
		}
	}

	// hedgeCheck duplicates stragglers: a unit whose single attempt has
	// been running past the hedge threshold gets a second attempt on a
	// different worker. One hedge per unit.
	hedgeCheck := func(now time.Time) {
		if c.cfg.Hedge <= 0 {
			return
		}
		for u := range units {
			ui := &units[u]
			if ui.state != unitInflight || ui.hedged || len(ui.attempts) != 1 {
				continue
			}
			at := ui.attempts[0]
			if now.Sub(at.started) < c.cfg.Hedge {
				continue
			}
			w := reg.pick(map[int]bool{at.w.index: true}, c.cfg.PerWorkerInFlight)
			if w == nil {
				continue
			}
			ui.hedged = true
			fmt.Fprintf(c.cfg.Log, "fleet: hedging straggler unit %d (%s → %s)\n", u, at.w.addr, w.addr)
			dispatch(u, w, true)
		}
	}

	var allDownSince time.Time
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()

	schedule()
	for doneCount < n && fatal == nil {
		select {
		case r := <-results:
			fatal = handleResult(r)
		case p := <-probes:
			handleProbe(p)
		case <-ticker.C:
			t := c.now()
			if c.cfg.Pool != nil {
				reg.sync(c.cfg.Pool.Addrs(), c.cfg.NewClient)
			}
			for _, w := range reg.probeDue(t) {
				launchProbe(w)
			}
			hedgeCheck(t)
			if reg.allDown() {
				if allDownSince.IsZero() {
					allDownSince = t
				} else if t.Sub(allDownSince) >= c.cfg.AllDownGrace {
					fatal = fmt.Errorf("fleet: all %d workers down for %v with %d/%d units incomplete (checkpoint intact)",
						len(reg.workers), c.cfg.AllDownGrace, n-doneCount, n)
				}
			} else {
				allDownSince = time.Time{}
			}
		case <-ctx.Done():
			fatal = fmt.Errorf("fleet: interrupted with %d/%d units complete: %w", doneCount, n, ctx.Err())
		}
		if fatal == nil {
			schedule()
		}
	}

	// Shut down outstanding work and drain every goroutine we started.
	cancelRun()
	for activeAttempts > 0 || activeProbes > 0 {
		select {
		case r := <-results:
			activeAttempts--
			r.at.w.inflight--
			removeAttempt(r.at)
			ui := &units[r.at.unit]
			if r.err == nil && ui.state != unitDone {
				// A row that completed during shutdown is durable
				// progress: journal it so -resume skips the unit, even
				// though the merged stream already carries the error.
				ui.state = unitDone
				rows[r.at.unit] = r.row
				r.at.w.stats.Completed++
				doneCount++
				if err := journal.Append(r.at.unit, r.row); err != nil {
					fmt.Fprintf(c.cfg.Log, "fleet: checkpoint during shutdown: %v\n", err)
				}
				storePut(r.at.unit, r.row)
			} else {
				r.at.w.stats.Cancelled++
			}
		case <-probes:
			activeProbes--
		}
	}

	elapsedMS := float64(c.now().Sub(start)) / 1e6
	sum := summarize(reg, n, fromCkpt, fromStore, elapsedMS)
	if fatal != nil {
		// Best-effort terminal error line, mirroring the serving
		// layer's mid-stream error convention.
		if werr := out(serve.MarshalLine(serve.SweepLine{Type: "error", Error: fatal.Error()})); werr != nil {
			fmt.Fprintf(c.cfg.Log, "fleet: write error line: %v\n", werr)
		}
		return sum, fatal
	}
	if err := out(serve.MarshalLine(serve.SweepLine{
		Type: "done", Intervals: n, ElapsedMS: elapsedMS,
	})); err != nil {
		return sum, fmt.Errorf("fleet: write done line: %w", err)
	}
	fmt.Fprintf(c.cfg.Log, "fleet: sweep complete: %d units (%d from checkpoint, %d from store, %d dispatched, %d retried, %d hedged) in %.0f ms\n",
		n, fromCkpt, fromStore, sum.Dispatched, sum.Retried, sum.Hedged, elapsedMS)
	return sum, nil
}

// unitKey derives a unit's persistent-store key. It is the exact key the
// serving layer computes for the single-interval sweep request runUnit
// sends: workload.Intervals regenerates bit-identical interval bounds
// from (Lo, Hi) on both sides, so a row cached by a worker's own store
// and a row cached by the coordinator are interchangeable.
func (c *Coordinator) unitKey(unit int, iv workload.Interval) string {
	return store.SweepUnitKey(c.spec.Scenario, c.spec.Seed, c.spec.SetsPerInterval,
		c.spec.MaxCandidates, iv.Lo, iv.Hi, unit, c.spec.Approaches)
}

// runUnit executes one work unit on one worker: a single-interval sweep
// request whose IntervalOffset pins it to the batch run's sub-stream.
// It returns the raw row line, byte-exact as the worker streamed it.
func (c *Coordinator) runUnit(ctx context.Context, cl *client.Client, unit int, iv workload.Interval) ([]byte, error) {
	req := serve.SweepRequest{
		Scenario:        c.spec.Scenario,
		Seed:            c.spec.Seed,
		SetsPerInterval: c.spec.SetsPerInterval,
		MaxCandidates:   c.spec.MaxCandidates,
		Lo:              iv.Lo,
		Hi:              iv.Hi,
		Approaches:      c.spec.Approaches,
		IntervalOffset:  unit,
		TimeoutMS:       float64(c.cfg.UnitTimeout) / float64(time.Millisecond),
	}
	var row []byte
	_, err := cl.SweepStream(ctx, req, func(raw []byte, line serve.SweepLine) error {
		if line.Type == "row" {
			if row != nil {
				return fmt.Errorf("unit %d produced more than one row", unit)
			}
			row = append([]byte(nil), raw...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if row == nil {
		return nil, fmt.Errorf("unit %d stream carried no row", unit)
	}
	return row, nil
}

// orDefault substitutes def for an empty string.
func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
