package fleet

// WorkerStats is one worker's counters over a coordinator run. All
// counters are owned by the coordinator's event loop and read via
// Summary after Run returns.
type WorkerStats struct {
	Addr string `json:"addr"`
	// Dispatched counts unit attempts sent to this worker (including
	// hedge duplicates and retries of units that failed elsewhere).
	Dispatched int `json:"dispatched"`
	// Completed counts attempts that returned a usable row.
	Completed int `json:"completed"`
	// Failed counts attempts that errored (transport death, truncated
	// stream, server-side failure) — not cancelled hedge losers.
	Failed int `json:"failed"`
	// Retried counts units re-dispatched to this worker after failing
	// on another worker.
	Retried int `json:"retried"`
	// Hedged counts hedge duplicates launched on this worker because
	// another worker's attempt was straggling.
	Hedged int `json:"hedged"`
	// Won counts races (hedged units) this worker finished first.
	Won int `json:"won"`
	// Cancelled counts attempts cancelled because the unit finished
	// elsewhere first.
	Cancelled int `json:"cancelled"`
	// Markdowns counts up→down transitions; Probes counts health
	// probes sent while the worker was down.
	Markdowns int `json:"markdowns"`
	Probes    int `json:"probes"`
}

// Summary is a finished (or failed) coordinator run's accounting.
type Summary struct {
	// Units is the sweep's interval count; FromCheckpoint of those were
	// satisfied by the resume journal and FromStore by the persistent
	// result store, both without any dispatch.
	Units          int `json:"units"`
	FromCheckpoint int `json:"from_checkpoint"`
	FromStore      int `json:"from_store"`
	// Dispatched/Retried/Hedged/Cancelled/Failed aggregate the
	// per-worker counters of the same name.
	Dispatched int `json:"dispatched"`
	Retried    int `json:"retried"`
	Hedged     int `json:"hedged"`
	Cancelled  int `json:"cancelled"`
	Failed     int `json:"failed"`
	// ElapsedMS is the coordinator wall-clock for the run.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Workers holds the per-worker breakdown, in -workers order.
	Workers []WorkerStats `json:"workers"`
}

// summarize folds the registry's per-worker counters into a Summary.
func summarize(reg *registry, units, fromCheckpoint, fromStore int, elapsedMS float64) *Summary {
	sum := &Summary{Units: units, FromCheckpoint: fromCheckpoint, FromStore: fromStore, ElapsedMS: elapsedMS}
	for _, w := range reg.workers {
		sum.Workers = append(sum.Workers, w.stats)
		sum.Dispatched += w.stats.Dispatched
		sum.Retried += w.stats.Retried
		sum.Hedged += w.stats.Hedged
		sum.Cancelled += w.stats.Cancelled
		sum.Failed += w.stats.Failed
	}
	return sum
}
