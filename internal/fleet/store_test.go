package fleet

import (
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// openStore opens (or reopens) the test store at dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFleetStoreWarmRun pins the cross-run cache property: a sweep run
// against a warm store satisfies every unit from disk — zero dispatches,
// no live worker needed — and the rows are byte-identical to the cold
// run that populated it.
func TestFleetStoreWarmRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	spec := testSpec()

	// Cold run: a real worker computes every unit; the coordinator
	// writes each row back.
	a, _ := newWorker(t)
	cfg := fastConfig([]string{a}, spec)
	cfg.Store = openStore(t, dir)
	cold, sum, err := runFleet(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, cold, referenceRows(t, spec))
	if sum.FromStore != 0 || sum.Dispatched != 3 {
		t.Fatalf("cold run summary = %+v, want 0 from store, 3 dispatched", sum)
	}
	if st := cfg.Store.Stats(); st.Writes != 3 {
		t.Fatalf("cold run wrote %d store records, want 3", st.Writes)
	}
	if err := cfg.Store.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm run, fresh store handle (a different process in real life):
	// the configured worker address is unroutable on purpose — a warm
	// sweep must never touch the network.
	cfg2 := fastConfig([]string{"127.0.0.1:1"}, spec)
	cfg2.Store = openStore(t, dir)
	defer cfg2.Store.Close() //mklint:allow errdrop — test cleanup
	warm, sum2, err := runFleet(t, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, warm, referenceRows(t, spec))
	if sum2.FromStore != 3 || sum2.Dispatched != 0 {
		t.Fatalf("warm run summary = %+v, want 3 from store, 0 dispatched", sum2)
	}
	for i := 1; i <= 3; i++ { // rows (not start/done — done carries wall-clock)
		if string(cold[i]) != string(warm[i]) {
			t.Errorf("row %d differs between cold and warm run:\n cold %s\n warm %s", i-1, cold[i], warm[i])
		}
	}
}

// TestFleetStoreFillsResumeJournal pins the interaction with -resume: a
// store hit is journaled like a computed unit, so a subsequent resume
// run is warm even without the store.
func TestFleetStoreFillsResumeJournal(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	a, _ := newWorker(t)
	cfg := fastConfig([]string{a}, spec)
	cfg.Store = openStore(t, filepath.Join(dir, "store"))
	if _, _, err := runFleet(t, cfg); err != nil {
		t.Fatal(err)
	}

	// Warm run with a checkpoint: every unit comes from the store and
	// lands in the journal.
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	cfg2 := fastConfig([]string{"127.0.0.1:1"}, spec)
	cfg2.Store = cfg.Store
	cfg2.CheckpointPath = ckpt
	if _, sum, err := runFleet(t, cfg2); err != nil || sum.FromStore != 3 {
		t.Fatalf("warm run: err=%v summary=%+v, want 3 from store", err, sum)
	}

	// Resume from that journal with no store at all: still zero
	// dispatches.
	cfg3 := fastConfig([]string{"127.0.0.1:1"}, spec)
	cfg3.CheckpointPath = ckpt
	cfg3.Resume = true
	lines, sum, err := runFleet(t, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, lines, referenceRows(t, spec))
	if sum.FromCheckpoint != 3 || sum.Dispatched != 0 {
		t.Fatalf("resume summary = %+v, want 3 from checkpoint, 0 dispatched", sum)
	}
	if err := cfg.Store.Close(); err != nil {
		t.Fatal(err)
	}
}
