package fleet

import (
	"time"

	"repro/internal/serve/client"
)

// workerState is a worker's availability in the registry.
type workerState int

const (
	workerUp workerState = iota
	workerDown
	workerProbing // down, probe in flight
	workerRetired // removed from an elastic pool; never dispatched or probed again
)

// worker is one mkservd behind the coordinator. All fields are owned by
// the coordinator's event loop — the registry is deliberately lock-free
// because exactly one goroutine mutates it; probe and unit goroutines
// only touch their own *client.Client (which is concurrency-safe) and
// report back over channels.
type worker struct {
	index int
	addr  string
	cl    *client.Client

	state    workerState
	inflight int
	// consecutiveFails drives the probe backoff: a worker that keeps
	// failing probes is probed exponentially less often (capped), so a
	// long-dead machine costs a trickle of probes, not a hammering.
	consecutiveFails int
	nextProbe        time.Time

	stats WorkerStats
}

// registry is the coordinator's worker set: the -workers list (plus any
// elastic-pool members adopted via sync), probed periodically, marked
// down on dispatch/probe failures and back up on a successful probe.
type registry struct {
	workers []*worker

	probeBase time.Duration // first retry probe delay
	probeMax  time.Duration // backoff cap
}

// newRegistry builds the registry over the configured addresses, all
// initially up: the first dispatch doubles as the first health check,
// and a dead worker is discovered exactly as fast as a probe would
// have, without delaying a healthy fleet's start.
func newRegistry(addrs []string, mk func(addr string) *client.Client, probeBase, probeMax time.Duration) *registry {
	r := &registry{probeBase: probeBase, probeMax: probeMax}
	for i, addr := range addrs {
		r.workers = append(r.workers, &worker{
			index: i,
			addr:  addr,
			cl:    mk(addr),
			state: workerUp,
			stats: WorkerStats{Addr: addr},
		})
	}
	return r
}

// pick selects the up worker with capacity (inflight < maxInflight) that
// is not excluded, preferring the least-loaded and breaking ties by
// registry order — a deterministic choice given identical state.
func (r *registry) pick(exclude map[int]bool, maxInflight int) *worker {
	var best *worker
	for _, w := range r.workers {
		if w.state != workerUp || w.inflight >= maxInflight || exclude[w.index] {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
	}
	return best
}

// add appends one worker to the registry, initially up (same rationale
// as newRegistry: the first dispatch doubles as the health check).
func (r *registry) add(addr string, mk func(addr string) *client.Client) *worker {
	w := &worker{
		index: len(r.workers),
		addr:  addr,
		cl:    mk(addr),
		state: workerUp,
		stats: WorkerStats{Addr: addr},
	}
	r.workers = append(r.workers, w)
	return w
}

// sync reconciles the registry with an elastic pool's current member
// addresses: unknown addresses are adopted as fresh up workers, and
// members the pool no longer lists are retired — their in-flight
// attempts finish (or fail and get retried elsewhere), but they are
// never picked or probed again. A retired worker's entry survives for
// the final Summary.
func (r *registry) sync(addrs []string, mk func(addr string) *client.Client) {
	want := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		want[a] = true
	}
	have := make(map[string]bool, len(r.workers))
	for _, w := range r.workers {
		if w.state == workerRetired {
			continue
		}
		if want[w.addr] {
			have[w.addr] = true
			continue
		}
		w.state = workerRetired
	}
	for _, a := range addrs {
		if !have[a] {
			r.add(a, mk)
		}
	}
}

// markDown transitions a worker to down after a dispatch or probe
// failure, scheduling its next probe with exponential backoff. Retired
// workers stay retired: a stopped pool member's dying attempts must not
// resurrect it into the probe loop.
func (r *registry) markDown(w *worker, now time.Time) {
	if w.state == workerRetired {
		return
	}
	if w.state == workerUp {
		w.stats.Markdowns++
	}
	w.state = workerDown
	w.consecutiveFails++
	backoff := r.probeMax
	// Cap the shift well before it can overflow int64 nanoseconds.
	if n := w.consecutiveFails - 1; n < 16 {
		if b := r.probeBase << n; b < r.probeMax {
			backoff = b
		}
	}
	w.nextProbe = now.Add(backoff)
}

// markUp transitions a worker back to up after a successful probe.
func (r *registry) markUp(w *worker) {
	w.state = workerUp
	w.consecutiveFails = 0
}

// probeDue returns the down workers whose next probe time has arrived,
// marking them probing so a slow probe is not duplicated.
func (r *registry) probeDue(now time.Time) []*worker {
	var due []*worker
	for _, w := range r.workers {
		if w.state == workerDown && !now.Before(w.nextProbe) {
			w.state = workerProbing
			w.stats.Probes++
			due = append(due, w)
		}
	}
	return due
}

// allDown reports whether no worker is available or becoming available.
// Retired workers count as gone, not down: a pool that scaled in is not
// an outage.
func (r *registry) allDown() bool {
	for _, w := range r.workers {
		if w.state == workerUp {
			return false
		}
	}
	return true
}

// upCount counts currently-up workers.
func (r *registry) upCount() int {
	n := 0
	for _, w := range r.workers {
		if w.state == workerUp {
			n++
		}
	}
	return n
}
