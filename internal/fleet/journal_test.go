package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := CreateJournal(path, "key-1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, []byte(`{"type":"row","util_lo":0.1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(3, []byte(`{"type":"row","util_lo":0.4}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rows, err := OpenJournal(path, "key-1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || string(rows[0]) != `{"type":"row","util_lo":0.1}` || string(rows[3]) != `{"type":"row","util_lo":0.4}` {
		t.Fatalf("rows = %v", rows)
	}
	// The reopened journal appends without clobbering prior units.
	if err := j2.Append(4, []byte(`{"type":"row","util_lo":0.5}`)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rows, err = OpenJournal(path, "key-1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("after append-reopen: %d rows, want 3", len(rows))
	}
}

func TestJournalMissingFileDegradesToCreate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	j, rows, err := OpenJournal(path, "key-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v, want none", rows)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file not created: %v", err)
	}
}

func TestJournalValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")
	j, err := CreateJournal(path, "key-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		key  string
		n    int
		want string
	}{
		{"foreign key", "key-2", 3, "different sweep"},
		{"interval count", "key-1", 4, "intervals"},
	}
	for _, tc := range cases {
		if _, _, err := OpenJournal(path, tc.key, tc.n); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	for name, content := range map[string]string{
		"empty":          "",
		"no header":      `{"type":"unit","unit":0,"row":{}}` + "\n",
		"bad schema":     `{"type":"header","schema":"bogus/v9","key":"key-1","intervals":3}` + "\n",
		"unit range":     `{"type":"header","schema":"mkss-fleet-ckpt/v1","key":"key-1","intervals":3}` + "\n" + `{"type":"unit","unit":7,"row":{}}` + "\n",
		"malformed unit": `{"type":"header","schema":"mkss-fleet-ckpt/v1","key":"key-1","intervals":3}` + "\n" + "not json\n",
	} {
		p := filepath.Join(dir, strings.ReplaceAll(name, " ", "-")+".jsonl")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenJournal(p, "key-1", 3); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Append(0, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
