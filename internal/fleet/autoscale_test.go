package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeMember is a stub worker for the autoscaler: a /healthz endpoint
// whose load signal the test controls.
type fakeMember struct {
	ts       *httptest.Server
	queued   atomic.Int64
	inflight atomic.Int64
	stopped  atomic.Bool
}

func newFakeMember(t *testing.T) *fakeMember {
	t.Helper()
	m := &fakeMember{}
	m.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if err := json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "queued": m.queued.Load(), "inflight": m.inflight.Load(),
		}); err != nil {
			t.Errorf("fake healthz encode: %v", err)
		}
	}))
	t.Cleanup(m.ts.Close)
	return m
}

func (m *fakeMember) addr() string { return strings.TrimPrefix(m.ts.URL, "http://") }

// fakeSpawner hands out fakeMembers and records them.
type fakeSpawner struct {
	t  *testing.T
	mu sync.Mutex
	ms []*fakeMember
}

func (s *fakeSpawner) spawn(ctx context.Context) (*WorkerHandle, error) {
	m := newFakeMember(s.t)
	s.mu.Lock()
	s.ms = append(s.ms, m)
	s.mu.Unlock()
	return &WorkerHandle{Addr: m.addr(), Stop: func() { m.stopped.Store(true) }}, nil
}

func (s *fakeSpawner) members() []*fakeMember {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*fakeMember(nil), s.ms...)
}

// fastPool returns a PoolConfig tuned for test latencies.
func fastPool(sp *fakeSpawner, min, max int) PoolConfig {
	return PoolConfig{
		Min: min, Max: max, Spawn: sp.spawn,
		Interval:     5 * time.Millisecond,
		ScaleUpQueue: 5,
		UpAfter:      2,
		DownAfter:    3,
		Cooldown:     time.Millisecond,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestPoolScalesUpUnderLoadAndDrainsToMin pins the elastic loop end to
// end: sustained queue pressure grows the pool toward Max, sustained
// idleness shrinks it back to Min, and the retired members are the
// newest ones, actually stopped.
func TestPoolScalesUpUnderLoadAndDrainsToMin(t *testing.T) {
	sp := &fakeSpawner{t: t}
	p, err := NewPool(fastPool(sp, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if got := len(p.Addrs()); got != 1 {
		t.Fatalf("pool started with %d members, want the Min baseline of 1", got)
	}

	// Pressure on the baseline worker: the pool must grow to Max.
	sp.members()[0].queued.Store(10)
	waitFor(t, func() bool { return p.Stats().Size == 3 }, "pool never scaled up to Max under sustained queue pressure")

	// Load vanishes everywhere: the pool must drain back to Min.
	for _, m := range sp.members() {
		m.queued.Store(0)
	}
	waitFor(t, func() bool { return p.Stats().Size == 1 }, "pool never drained back to Min after load vanished")

	st := p.Stats()
	if st.ScaleUps < 2 || st.ScaleDowns < 2 {
		t.Errorf("stats = %+v, want at least 2 scale-ups and 2 scale-downs", st)
	}
	// LIFO retirement: the baseline (first-spawned) member survives.
	ms := sp.members()
	if ms[0].stopped.Load() {
		t.Error("baseline member was stopped; retirement must be newest-first")
	}
	if !ms[len(ms)-1].stopped.Load() {
		t.Error("newest member was not stopped on scale-down")
	}
}

// TestPoolHysteresisIgnoresOneSample pins the streak gate: a single
// busy tick must not grow the pool.
func TestPoolHysteresisIgnoresOneSample(t *testing.T) {
	sp := &fakeSpawner{t: t}
	cfg := fastPool(sp, 1, 3)
	cfg.UpAfter = 1000 // effectively never
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	sp.members()[0].queued.Store(100)
	time.Sleep(100 * time.Millisecond) // many busy ticks, streak below UpAfter
	if got := p.Stats().Size; got != 1 {
		t.Fatalf("pool grew to %d below the UpAfter streak", got)
	}
}

// TestPoolStopStopsEveryMember pins shutdown: Stop retires the whole
// pool, including members added by scale-ups.
func TestPoolStopStopsEveryMember(t *testing.T) {
	sp := &fakeSpawner{t: t}
	p, err := NewPool(fastPool(sp, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop() // idempotent
	for i, m := range sp.members() {
		if !m.stopped.Load() {
			t.Errorf("member %d not stopped by Stop", i)
		}
	}
	if got := p.Stats().Size; got != 0 {
		t.Errorf("stats size = %d after Stop, want 0", got)
	}
}

// TestFleetElasticPoolRunsSweep pins the coordinator/pool integration:
// a coordinator configured with only a Pool (no static workers) adopts
// the pool's members and produces the batch-identical stream.
func TestFleetElasticPoolRunsSweep(t *testing.T) {
	spawn := func(ctx context.Context) (*WorkerHandle, error) {
		addr, _ := newWorker(t)
		return &WorkerHandle{Addr: addr, Stop: func() {}}, nil
	}
	p, err := NewPool(PoolConfig{Min: 2, Max: 2, Spawn: spawn, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	spec := testSpec()
	cfg := fastConfig(nil, spec)
	cfg.Pool = p
	lines, sum, err := runFleet(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, lines, referenceRows(t, spec))
	if sum.Dispatched != 3 || len(sum.Workers) != 2 {
		t.Errorf("summary = %+v, want 3 dispatched over 2 adopted workers", sum)
	}
}
