package fleet

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
)

// testSpec is the small sweep the failure-mode tests distribute: three
// intervals, cheap enough to run many times per test binary.
func testSpec() SweepSpec {
	return SweepSpec{
		Seed: 7, SetsPerInterval: 2, MaxCandidates: 40,
		Lo: 0.3, Hi: 0.6, Approaches: []string{"st", "dp"},
	}
}

// referenceRows computes the batch-run row lines the distributed sweep
// must reproduce byte for byte.
func referenceRows(t *testing.T, spec SweepSpec) [][]byte {
	t.Helper()
	sp, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := repro.ParseScenario(sp.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	as := make([]repro.Approach, len(sp.Approaches))
	for i, n := range sp.Approaches {
		if as[i], err = repro.ParseApproach(n); err != nil {
			t.Fatal(err)
		}
	}
	cfg := repro.DefaultSweepConfig(sc)
	cfg.Seed = sp.Seed
	cfg.SetsPerInterval = sp.SetsPerInterval
	cfg.MaxCandidates = sp.MaxCandidates
	cfg.Approaches = as
	cfg.Intervals = sp.Intervals()
	rep, err := repro.NewRunner(repro.RunnerConfig{}).Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]byte
	for _, row := range rep.Rows {
		rows = append(rows, serve.MarshalLine(serve.RowLine(rep.Approaches, row)))
	}
	return rows
}

// chaos wraps a worker's handler with fault injection: killStreams
// aborts that many sweep responses mid-stream (after the start line, the
// way a killed process looks to the client), and stallNS delays sweep
// work until the request context dies.
type chaos struct {
	inner       http.Handler
	killStreams atomic.Int64
	stallNS     atomic.Int64
}

func (c *chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/sweep" {
		// Consume the body the way a real worker does: with it unread
		// the server never starts the background read that detects a
		// client disconnect, and r.Context() would not fire.
		body, err := io.ReadAll(r.Body)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		if c.killStreams.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			if _, err := w.Write([]byte(`{"type":"start","schema":"mkss-sweep/v1"}` + "\n")); err == nil {
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
			panic(http.ErrAbortHandler) // worker "dies" mid-unit
		}
		if d := c.stallNS.Load(); d > 0 {
			select {
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			case <-time.After(time.Duration(d)):
			}
		}
	}
	c.inner.ServeHTTP(w, r)
}

// newWorker boots one real mkservd worker behind an optional chaos
// wrapper and returns its address (host:port).
func newWorker(t *testing.T) (string, *chaos) {
	t.Helper()
	s := serve.NewServer(serve.Config{})
	c := &chaos{inner: s.Handler()}
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), c
}

// fastConfig returns a Config tuned for test latencies.
func fastConfig(workers []string, spec SweepSpec) Config {
	return Config{
		Workers:      workers,
		Spec:         spec,
		Tick:         10 * time.Millisecond,
		ProbeBackoff: 10 * time.Millisecond,
		ProbeMax:     50 * time.Millisecond,
		AllDownGrace: 2 * time.Second,
	}
}

// runFleet runs a coordinator to completion, returning the emitted
// lines, the summary and the error.
func runFleet(t *testing.T, cfg Config) ([][]byte, *Summary, error) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	sum, err := c.Run(context.Background(), func(line []byte) error {
		lines = append(lines, append([]byte(nil), line...))
		return nil
	})
	return lines, sum, err
}

// checkStream asserts the emitted stream is start + the reference rows
// in interval order + done, byte for byte.
func checkStream(t *testing.T, lines [][]byte, want [][]byte) {
	t.Helper()
	if len(lines) != len(want)+2 {
		t.Fatalf("got %d lines, want %d (start + %d rows + done)", len(lines), len(want)+2, len(want))
	}
	if !strings.Contains(string(lines[0]), `"type":"start"`) {
		t.Fatalf("first line %s is not a start line", lines[0])
	}
	if !strings.Contains(string(lines[len(lines)-1]), `"type":"done"`) {
		t.Fatalf("last line %s is not a done line", lines[len(lines)-1])
	}
	for i, w := range want {
		if got := string(lines[1+i]); got != string(w) {
			t.Errorf("row %d differs from batch run:\n got  %s\n want %s", i, got, w)
		}
	}
}

// TestFleetMatchesBatch pins the headline property: a sweep distributed
// over two workers merges to the exact bytes of a single-process batch
// run.
func TestFleetMatchesBatch(t *testing.T) {
	a, _ := newWorker(t)
	b, _ := newWorker(t)
	spec := testSpec()
	lines, sum, err := runFleet(t, fastConfig([]string{a, b}, spec))
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, lines, referenceRows(t, spec))
	if sum.Units != 3 || sum.Dispatched != 3 || sum.Failed != 0 {
		t.Errorf("summary = %+v, want 3 units, 3 dispatched, 0 failed", sum)
	}
}

// TestFleetWorkerKilledMidUnit pins the retry path: a worker dying
// mid-stream costs a retry on another worker, never a wrong or missing
// row.
func TestFleetWorkerKilledMidUnit(t *testing.T) {
	a, ca := newWorker(t)
	b, _ := newWorker(t)
	ca.killStreams.Store(1) // first sweep unit sent to a dies mid-stream
	spec := testSpec()
	lines, sum, err := runFleet(t, fastConfig([]string{a, b}, spec))
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, lines, referenceRows(t, spec))
	if sum.Failed != 1 || sum.Retried != 1 {
		t.Errorf("summary = %+v, want exactly 1 failed and 1 retried", sum)
	}
	if sum.Workers[0].Markdowns != 1 {
		t.Errorf("worker %s markdowns = %d, want 1 (truncated stream marks it down)", a, sum.Workers[0].Markdowns)
	}
}

// TestFleetAllWorkersDown pins the clean-failure path: with every worker
// unreachable the sweep fails after the grace window with a loud error,
// and the checkpoint survives for -resume.
func TestFleetAllWorkersDown(t *testing.T) {
	// Real listeners, immediately closed: dispatches fail fast with
	// connection-refused, the way a dead machine looks.
	dead := func() string {
		ts := httptest.NewServer(http.NotFoundHandler())
		addr := strings.TrimPrefix(ts.URL, "http://")
		ts.Close()
		return addr
	}
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := fastConfig([]string{dead(), dead()}, spec)
	cfg.AllDownGrace = 100 * time.Millisecond
	cfg.MaxUnitFailures = 1000 // the grace window, not the budget, must fire
	cfg.CheckpointPath = ckpt
	_, sum, err := runFleet(t, cfg)
	if err == nil || !strings.Contains(err.Error(), "all 2 workers down") {
		t.Fatalf("err = %v, want all-workers-down failure", err)
	}
	if sum == nil || sum.Failed == 0 {
		t.Errorf("summary = %+v, want recorded failures", sum)
	}
	// The checkpoint must still open cleanly for the same sweep.
	j, rows, err := OpenJournal(ckpt, spec.mustNormalize(t).Key(), 3)
	if err != nil {
		t.Fatalf("checkpoint corrupted by the failure: %v", err)
	}
	defer j.Close() //mklint:allow errdrop — test cleanup
	if len(rows) != 0 {
		t.Errorf("checkpoint has %d rows, want 0 (nothing completed)", len(rows))
	}
}

func (sp SweepSpec) mustNormalize(t *testing.T) SweepSpec {
	t.Helper()
	n, err := sp.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFleetResume pins checkpoint/resume: a journal holding two of the
// three units makes the resumed run dispatch exactly the missing one,
// with the merged stream still byte-identical to the batch run.
func TestFleetResume(t *testing.T) {
	a, _ := newWorker(t)
	spec := testSpec()
	want := referenceRows(t, spec)
	key := spec.mustNormalize(t).Key()

	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := CreateJournal(ckpt, key, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, want[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, want[2]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := fastConfig([]string{a}, spec)
	cfg.CheckpointPath = ckpt
	cfg.Resume = true
	lines, sum, err := runFleet(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, lines, want)
	if sum.FromCheckpoint != 2 || sum.Dispatched != 1 {
		t.Errorf("summary = %+v, want 2 from checkpoint and exactly 1 dispatched", sum)
	}
	// After the resumed run the journal holds all three units.
	j2, rows, err := OpenJournal(ckpt, key, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //mklint:allow errdrop — test cleanup
	if len(rows) != 3 {
		t.Errorf("journal has %d rows after resume, want 3", len(rows))
	}
	for u, raw := range rows {
		if string(raw) != string(want[u]) {
			t.Errorf("journal row %d differs from batch run", u)
		}
	}
}

// TestFleetResumeRejectsForeignCheckpoint pins the identity check: a
// checkpoint from a different sweep fails loudly instead of merging
// incompatible rows.
func TestFleetResumeRejectsForeignCheckpoint(t *testing.T) {
	a, _ := newWorker(t)
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	other := spec
	other.Seed = 999
	j, err := CreateJournal(ckpt, other.mustNormalize(t).Key(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig([]string{a}, spec)
	cfg.CheckpointPath = ckpt
	cfg.Resume = true
	_, _, err = runFleet(t, cfg)
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("err = %v, want different-sweep rejection", err)
	}
}

// TestFleetHedgedStraggler pins tail-latency hedging: a stalled worker's
// unit is duplicated onto a second worker, the fast copy wins, the
// straggler is cancelled, and the output is still the batch run's.
func TestFleetHedgedStraggler(t *testing.T) {
	a, ca := newWorker(t)
	b, _ := newWorker(t)
	ca.stallNS.Store(int64(10 * time.Second)) // far beyond the test's life
	spec := testSpec()
	spec.Hi = 0.4 // one unit: deterministic dispatch to worker a
	cfg := fastConfig([]string{a, b}, spec)
	cfg.Hedge = 50 * time.Millisecond
	lines, sum, err := runFleet(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, lines, referenceRows(t, spec))
	if sum.Hedged != 1 || sum.Cancelled != 1 {
		t.Errorf("summary = %+v, want exactly 1 hedged and 1 cancelled", sum)
	}
	if sum.Workers[1].Won != 1 {
		t.Errorf("worker %s won = %d, want 1 (hedge copy finished first)", b, sum.Workers[1].Won)
	}
}

// TestFleetInterrupted pins cancellation: aborting the run context fails
// the sweep with an "interrupted" error and leaves the checkpoint
// openable.
func TestFleetInterrupted(t *testing.T) {
	a, ca := newWorker(t)
	ca.stallNS.Store(int64(10 * time.Second))
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := fastConfig([]string{a}, spec)
	cfg.CheckpointPath = ckpt
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	_, err = c.Run(ctx, func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted failure", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing after interrupt: %v", err)
	}
}

// TestSweepSpecNormalize pins defaulting and canonicalization.
func TestSweepSpecNormalize(t *testing.T) {
	sp, err := SweepSpec{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 2020 || sp.SetsPerInterval != 3 || sp.MaxCandidates != 500 ||
		sp.Lo != 0.1 || sp.Hi != 1.0 {
		t.Errorf("defaults = %+v", sp)
	}
	if len(sp.Approaches) != 3 || sp.Approaches[0] != "MKSS-ST" {
		t.Errorf("approaches = %v, want canonical names", sp.Approaches)
	}
	if _, err := (SweepSpec{Lo: 0.5, Hi: 0.4}).Normalized(); err == nil {
		t.Error("hi <= lo accepted")
	}
	if _, err := (SweepSpec{Approaches: []string{"bogus"}}).Normalized(); err == nil {
		t.Error("unknown approach accepted")
	}
	// Spelling variants land on the same checkpoint key.
	k1 := SweepSpec{Approaches: []string{"st"}}.mustNormalize(t).Key()
	k2 := SweepSpec{Approaches: []string{"MKSS-ST"}}.mustNormalize(t).Key()
	if k1 != k2 {
		t.Errorf("keys differ across spellings: %q vs %q", k1, k2)
	}
}
