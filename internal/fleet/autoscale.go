package fleet

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/serve/client"
)

// WorkerHandle is one elastic worker the pool spawned: its serving
// address and the hook that stops it (cancel + wait — Stop must not
// return until the worker's goroutines are done, so the pool never
// leaks a worker it retired).
type WorkerHandle struct {
	Addr string
	Stop func()
}

// SpawnFunc starts one worker and returns its handle. The context is
// the pool's lifetime: implementations should tie the worker's serve
// loop to it so Pool.Stop (or the surrounding run's cancellation)
// tears every worker down even if Stop hooks misbehave.
type SpawnFunc func(ctx context.Context) (*WorkerHandle, error)

// PoolConfig tunes an elastic worker pool. Zero values pick the
// documented defaults.
type PoolConfig struct {
	// Min/Max bound the pool size. Min workers are spawned synchronously
	// by Start and the pool never shrinks below Min nor grows past Max
	// (defaults 1 and 4).
	Min, Max int
	// Spawn starts one worker (required).
	Spawn SpawnFunc
	// Interval is the control-loop cadence: each tick polls every
	// member's /healthz and feeds the scaling decision (default 2s).
	Interval time.Duration
	// ScaleUpQueue is the summed queued-jobs threshold: a tick observing
	// at least this many queued jobs across the pool counts toward
	// scaling up (default 4).
	ScaleUpQueue int64
	// ScaleUpP95MS is the latency threshold: a tick observing any member
	// above this p95 (milliseconds) counts toward scaling up (default
	// 500).
	ScaleUpP95MS float64
	// UpAfter/DownAfter are the hysteresis streaks: only UpAfter
	// consecutive busy ticks grow the pool, and only DownAfter
	// consecutive idle ticks (zero queued AND zero in-flight everywhere)
	// shrink it (defaults 2 and 5). One anomalous sample never flaps the
	// pool.
	UpAfter, DownAfter int
	// Cooldown is the minimum gap between consecutive scaling
	// operations, in either direction (default 30s).
	Cooldown time.Duration
	// ProbeTimeout bounds one health poll (default 2s).
	ProbeTimeout time.Duration
	// NewClient builds the per-member health-poll client (test seam);
	// nil uses a default client without retries.
	NewClient func(addr string) *client.Client
	// Log receives scaling decisions; nil discards them.
	Log io.Writer
	// Now is the wall clock (tests inject a fake); nil means time.Now.
	Now func() time.Time
}

// PoolStats is a snapshot of the pool's state and lifetime counters.
type PoolStats struct {
	Size          int      `json:"size"`
	Min           int      `json:"min"`
	Max           int      `json:"max"`
	ScaleUps      int      `json:"scale_ups"`
	ScaleDowns    int      `json:"scale_downs"`
	SpawnFailures int      `json:"spawn_failures"`
	Addrs         []string `json:"addrs"`
}

// poolMember pairs a spawned worker with the client the control loop
// polls it through.
type poolMember struct {
	handle *WorkerHandle
	cl     *client.Client
}

// Pool is an elastic set of mkservd workers driven by observed load: a
// control loop polls every member's /healthz and scales between Min and
// Max on queue depth and p95 latency, with streak hysteresis and a
// cooldown so the pool reacts to sustained pressure, not noise.
//
// Members are spawned via the configured SpawnFunc — typically an
// in-process serve.Server on a loopback listener (see cmd/mkfleet) —
// and retired newest-first, so the Min baseline workers are the
// longest-lived and their caches the warmest.
type Pool struct {
	cfg PoolConfig

	mu        sync.Mutex
	members   []*poolMember
	stats     PoolStats
	lastScale time.Time
	upStreak  int
	idleStrk  int

	done    chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped bool
}

// NewPool validates cfg and builds a Pool (not yet running — Start it).
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("fleet: pool requires a Spawn function")
	}
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	if cfg.Max <= 0 {
		cfg.Max = 4
	}
	if cfg.Max < cfg.Min {
		return nil, fmt.Errorf("fleet: pool max (%d) below min (%d)", cfg.Max, cfg.Min)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.ScaleUpQueue <= 0 {
		cfg.ScaleUpQueue = 4
	}
	if cfg.ScaleUpP95MS <= 0 {
		cfg.ScaleUpP95MS = 500
	}
	if cfg.UpAfter <= 0 {
		cfg.UpAfter = 2
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.NewClient == nil {
		cfg.NewClient = func(addr string) *client.Client {
			return client.New(client.Config{Addr: addr})
		}
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.Now == nil {
		cfg.Now = time.Now // the one sanctioned wall-clock source of the package
	}
	return &Pool{cfg: cfg, done: make(chan struct{})}, nil
}

// Start spawns the Min baseline workers synchronously — so a caller
// that needs an address immediately after Start has one — and launches
// the control loop. The loop runs until Stop or ctx cancellation.
func (p *Pool) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("fleet: pool already started")
	}
	p.started = true
	p.mu.Unlock()
	for i := 0; i < p.cfg.Min; i++ {
		if err := p.spawnOne(ctx); err != nil {
			p.Stop()
			return fmt.Errorf("fleet: spawn baseline worker %d: %w", i, err)
		}
	}
	p.wg.Add(1)
	go p.loop(ctx)
	return nil
}

// Stop retires every member (newest first) and stops the control loop.
// Safe to call more than once and after a ctx-cancelled loop exit.
func (p *Pool) Stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.done)
	}
	members := p.members
	p.members = nil
	p.stats.Size = 0
	p.mu.Unlock()
	p.wg.Wait()
	for i := len(members) - 1; i >= 0; i-- {
		members[i].handle.Stop()
	}
}

// Addrs returns the current members' serving addresses, oldest first.
func (p *Pool) Addrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	addrs := make([]string, len(p.members))
	for i, m := range p.members {
		addrs[i] = m.handle.Addr
	}
	return addrs
}

// Max returns the pool's configured upper bound.
func (p *Pool) Max() int { return p.cfg.Max }

// Stats snapshots the pool's size and lifetime scaling counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Min = p.cfg.Min
	st.Max = p.cfg.Max
	st.Addrs = make([]string, len(p.members))
	for i, m := range p.members {
		st.Addrs[i] = m.handle.Addr
	}
	return st
}

// spawnOne starts one worker and registers it. Called from Start and
// the control loop only — never concurrently with itself.
func (p *Pool) spawnOne(ctx context.Context) error {
	h, err := p.cfg.Spawn(ctx)
	if err != nil {
		p.mu.Lock()
		p.stats.SpawnFailures++
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	if p.stopped {
		// Lost the race with Stop: undo outside the lock.
		p.mu.Unlock()
		h.Stop()
		return fmt.Errorf("fleet: pool stopped during spawn")
	}
	p.members = append(p.members, &poolMember{handle: h, cl: p.cfg.NewClient(h.Addr)})
	p.stats.Size = len(p.members)
	p.mu.Unlock()
	return nil
}

// loop is the control loop: poll, decide, scale.
func (p *Pool) loop(ctx context.Context) {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			p.tick(ctx)
		}
	}
}

// memberLoad is one health poll's load signal.
type memberLoad struct {
	queued, inflight int64
	p95MS            float64
	ok               bool
}

// tick runs one control-loop iteration. Health polls run outside the
// pool lock (they are network calls); only the membership mutation at
// the end takes it.
func (p *Pool) tick(ctx context.Context) {
	p.mu.Lock()
	members := append([]*poolMember(nil), p.members...)
	p.mu.Unlock()
	if len(members) == 0 {
		return
	}

	loads := make([]memberLoad, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *poolMember) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
			defer cancel()
			h, err := m.cl.Healthz(pctx)
			if err != nil || h == nil {
				return
			}
			loads[i] = memberLoad{queued: h.Queued, inflight: h.InFlight, p95MS: h.P95MS, ok: true}
		}(i, m)
	}
	wg.Wait()

	var queued, inflight int64
	var maxP95 float64
	polled := 0
	for _, l := range loads {
		if !l.ok {
			continue
		}
		polled++
		queued += l.queued
		inflight += l.inflight
		if l.p95MS > maxP95 {
			maxP95 = l.p95MS
		}
	}
	if polled == 0 {
		return // every poll failed; no signal, no decision
	}

	busy := queued >= p.cfg.ScaleUpQueue || maxP95 >= p.cfg.ScaleUpP95MS
	idle := queued == 0 && inflight == 0

	p.mu.Lock()
	size := len(p.members)
	switch {
	case busy:
		p.upStreak++
		p.idleStrk = 0
	case idle:
		p.idleStrk++
		p.upStreak = 0
	default:
		// In between: neither streak survives a mixed sample.
		p.upStreak, p.idleStrk = 0, 0
	}
	now := p.cfg.Now()
	coolingDown := !p.lastScale.IsZero() && now.Sub(p.lastScale) < p.cfg.Cooldown
	grow := p.upStreak >= p.cfg.UpAfter && size < p.cfg.Max && !coolingDown
	var retire *poolMember
	if !grow && p.idleStrk >= p.cfg.DownAfter && size > p.cfg.Min && !coolingDown {
		// Retire the newest member: the baseline Min workers stay the
		// longest-lived (warmest caches), and LIFO makes repeated
		// grow/shrink cycles churn one slot, not the whole pool.
		retire = p.members[size-1]
		p.members = p.members[:size-1]
		p.stats.Size = len(p.members)
		p.stats.ScaleDowns++
		p.lastScale = now
		p.idleStrk = 0
	}
	if grow {
		p.upStreak = 0
		p.lastScale = now
	}
	sizeAfter := len(p.members)
	p.mu.Unlock()

	if retire != nil {
		fmt.Fprintf(p.cfg.Log, "fleet: pool scaling down to %d (idle %d ticks): retiring %s\n",
			sizeAfter, p.cfg.DownAfter, retire.handle.Addr)
		retire.handle.Stop()
		return
	}
	if grow {
		fmt.Fprintf(p.cfg.Log, "fleet: pool scaling up (queued=%d, max p95=%.0f ms over %d workers)\n",
			queued, maxP95, size)
		if err := p.spawnOne(ctx); err != nil {
			fmt.Fprintf(p.cfg.Log, "fleet: pool spawn failed: %v\n", err)
		} else {
			p.mu.Lock()
			p.stats.ScaleUps++
			p.mu.Unlock()
		}
	}
}
