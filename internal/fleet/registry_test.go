package fleet

import (
	"testing"
	"time"

	"repro/internal/serve/client"
)

func testRegistry(addrs ...string) *registry {
	mk := func(addr string) *client.Client { return client.New(client.Config{Addr: addr}) }
	return newRegistry(addrs, mk, 10*time.Millisecond, 80*time.Millisecond)
}

func TestRegistryPickLeastLoadedDeterministic(t *testing.T) {
	r := testRegistry("a:1", "b:1", "c:1")
	// All idle: the lowest index wins the tie, deterministically.
	if w := r.pick(nil, 2); w == nil || w.index != 0 {
		t.Fatalf("pick = %+v, want worker 0", w)
	}
	r.workers[0].inflight = 2 // at capacity
	r.workers[1].inflight = 1
	if w := r.pick(nil, 2); w == nil || w.index != 2 {
		t.Fatalf("pick = %+v, want idle worker 2 over loaded 1", w)
	}
	if w := r.pick(map[int]bool{2: true}, 2); w == nil || w.index != 1 {
		t.Fatalf("pick = %+v, want worker 1 with 2 excluded", w)
	}
	if w := r.pick(map[int]bool{1: true, 2: true}, 2); w != nil {
		t.Fatalf("pick = %+v, want nil (0 full, 1 and 2 excluded)", w)
	}
}

func TestRegistryMarkdownBackoff(t *testing.T) {
	r := testRegistry("a:1")
	w := r.workers[0]
	t0 := time.Unix(1000, 0)
	var waits []time.Duration
	for i := 0; i < 6; i++ {
		r.markDown(w, t0)
		waits = append(waits, w.nextProbe.Sub(t0))
	}
	// 10ms, 20ms, 40ms, then capped at the 80ms maximum.
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, ms := range want {
		if waits[i] != ms*time.Millisecond {
			t.Errorf("markdown %d: backoff %v, want %v", i+1, waits[i], ms*time.Millisecond)
		}
	}
	if w.stats.Markdowns != 1 {
		t.Errorf("markdowns = %d, want 1 (only the up→down transition counts)", w.stats.Markdowns)
	}
	r.markUp(w)
	if w.consecutiveFails != 0 || w.state != workerUp {
		t.Errorf("after markUp: fails=%d state=%v", w.consecutiveFails, w.state)
	}
	r.markDown(w, t0)
	if got := w.nextProbe.Sub(t0); got != 10*time.Millisecond {
		t.Errorf("backoff after recovery = %v, want reset to 10ms", got)
	}
}

func TestRegistryProbeDue(t *testing.T) {
	r := testRegistry("a:1", "b:1")
	t0 := time.Unix(1000, 0)
	r.markDown(r.workers[0], t0)
	if due := r.probeDue(t0); len(due) != 0 {
		t.Fatalf("probe due immediately: %v", due)
	}
	due := r.probeDue(t0.Add(20 * time.Millisecond))
	if len(due) != 1 || due[0].index != 0 {
		t.Fatalf("due = %v, want worker 0", due)
	}
	if due[0].state != workerProbing || due[0].stats.Probes != 1 {
		t.Errorf("worker 0 = %+v, want probing with 1 probe", due[0])
	}
	// Probing workers are not re-issued while the probe is in flight.
	if again := r.probeDue(t0.Add(time.Second)); len(again) != 0 {
		t.Fatalf("probing worker re-issued: %v", again)
	}
	if r.allDown() {
		t.Error("allDown with worker 1 up")
	}
	r.markDown(r.workers[1], t0)
	if !r.allDown() {
		t.Error("not allDown with 0 probing and 1 down")
	}
	if r.upCount() != 0 {
		t.Errorf("upCount = %d, want 0", r.upCount())
	}
}
