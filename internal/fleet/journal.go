package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// JournalSchema versions the checkpoint file format.
const JournalSchema = "mkss-fleet-ckpt/v1"

// journalHeader is the first line of a checkpoint file: it pins the
// sweep identity so a -resume against the journal of a *different*
// sweep (other seed, range, approaches, ...) fails loudly instead of
// silently merging incompatible rows.
type journalHeader struct {
	Type      string `json:"type"` // "header"
	Schema    string `json:"schema"`
	Key       string `json:"key"`
	Intervals int    `json:"intervals"`
}

// journalUnit is one completed work unit: the interval index and the
// raw row line, byte-exact as the worker streamed it, so a resumed run
// re-emits checkpointed rows identical to freshly computed ones.
type journalUnit struct {
	Type string          `json:"type"` // "unit"
	Unit int             `json:"unit"`
	Row  json.RawMessage `json:"row"`
}

// Journal is the crash-safe completed-unit log: one JSONL line per
// finished interval, flushed to disk before the row is considered
// complete, so a coordinator crash never loses more than in-flight
// work. It is single-writer (the coordinator's merge loop).
type Journal struct {
	f *os.File
	w *bufio.Writer
}

// CreateJournal starts a fresh checkpoint at path (truncating any
// previous file) with the sweep-identity header.
func CreateJournal(path, key string, intervals int) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: create checkpoint: %w", err)
	}
	j := &Journal{f: f, w: bufio.NewWriter(f)}
	if err := j.appendLine(journalHeader{Type: "header", Schema: JournalSchema, Key: key, Intervals: intervals}); err != nil {
		_ = f.Close() // best effort; the append error is the one to report
		return nil, err
	}
	return j, nil
}

// OpenJournal loads an existing checkpoint for -resume: it validates
// the header against the sweep identity, returns the rows of every
// completed unit, and reopens the file for appending the rest. A
// missing file degrades to CreateJournal (resuming from nothing).
func OpenJournal(path, key string, intervals int) (*Journal, map[int]json.RawMessage, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		j, cerr := CreateJournal(path, key, intervals)
		return j, map[int]json.RawMessage{}, cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: open checkpoint: %w", err)
	}
	rows, err := readJournal(f, key, intervals)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: reopen checkpoint for append: %w", err)
	}
	return &Journal{f: af, w: bufio.NewWriter(af)}, rows, nil
}

// readJournal parses and validates a checkpoint stream.
func readJournal(r io.Reader, key string, intervals int) (map[int]json.RawMessage, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("fleet: read checkpoint header: %w", err)
		}
		return nil, errors.New("fleet: checkpoint is empty (no header)")
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Type != "header" {
		return nil, fmt.Errorf("fleet: checkpoint header line is malformed: %q", sc.Text())
	}
	if hdr.Schema != JournalSchema {
		return nil, fmt.Errorf("fleet: checkpoint schema %q, want %q", hdr.Schema, JournalSchema)
	}
	if hdr.Key != key {
		return nil, fmt.Errorf("fleet: checkpoint belongs to a different sweep (key %q, this sweep %q); delete it or drop -resume", hdr.Key, key)
	}
	if hdr.Intervals != intervals {
		return nil, fmt.Errorf("fleet: checkpoint has %d intervals, this sweep %d", hdr.Intervals, intervals)
	}
	rows := make(map[int]json.RawMessage)
	for line := 2; sc.Scan(); line++ {
		var u journalUnit
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil || u.Type != "unit" {
			return nil, fmt.Errorf("fleet: checkpoint line %d is malformed: %q", line, sc.Text())
		}
		if u.Unit < 0 || u.Unit >= intervals {
			return nil, fmt.Errorf("fleet: checkpoint line %d: unit %d out of range [0,%d)", line, u.Unit, intervals)
		}
		rows[u.Unit] = u.Row
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: read checkpoint: %w", err)
	}
	return rows, nil
}

// Append records one completed unit and flushes it to the OS before
// returning — the durability point of the checkpoint protocol.
func (j *Journal) Append(unit int, row []byte) error {
	if j == nil {
		return nil
	}
	return j.appendLine(journalUnit{Type: "unit", Unit: unit, Row: json.RawMessage(row)})
}

func (j *Journal) appendLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("fleet: flush checkpoint: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file. Safe on nil.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		_ = j.f.Close() // the flush error is the one to report
		return err
	}
	return j.f.Close()
}
