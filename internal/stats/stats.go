// Package stats provides the deterministic random-number plumbing and the
// small descriptive-statistics helpers the evaluation harness needs.
// Every simulation in this repository is reproducible from a single
// uint64 seed: the harness derives independent sub-streams with SplitMix64
// so that, e.g., task-set generation and fault injection never share a
// stream (adding a fault scenario must not change which task sets are
// generated).
package stats

import (
	"math"
	"sort"
)

// SplitMix64 advances x and returns the next output of the SplitMix64
// generator (Steele, Lea, Flood; the standard seed-expansion PRNG). It is
// used both to derive sub-seeds and as the core of Rand.
func SplitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed produces the i-th independent sub-seed of a master seed.
func DeriveSeed(master uint64, i uint64) uint64 {
	x := master ^ (0x5851f42d4c957f2d * (i + 1))
	SplitMix64(&x)
	return SplitMix64(&x)
}

// Rand is a small deterministic PRNG (SplitMix64 stream). It deliberately
// does not expose global state; every component owns its Rand.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 { return SplitMix64(&r.state) }

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling is overkill here;
	// simple rejection keeps the distribution exact.
	bound := uint64(n)
	limit := (math.MaxUint64 / bound) * bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Int64n returns a uniform int64 in [0,n).
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int64n with non-positive n")
	}
	bound := uint64(n)
	limit := (math.MaxUint64 / bound) * bound
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % bound)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), via inverse transform.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Split derives an independent generator; the parent advances once.
func (r *Rand) Split() *Rand {
	return NewRand(DeriveSeed(r.Uint64(), 0x517cc1b727220a95))
}

// Sample holds observations and computes descriptive statistics.
type Sample struct{ xs []float64 }

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// SE returns the standard error of the mean.
func (s *Sample) SE() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(len(s.xs)))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean.
func (s *Sample) CI95() float64 { return 1.96 * s.SE() }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := make([]float64, len(s.xs))
	copy(xs, s.xs)
	sort.Float64s(xs)
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}
