package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	s1 := DeriveSeed(7, 0)
	s2 := DeriveSeed(7, 1)
	if s1 == s2 {
		t.Error("derived seeds collide")
	}
	if DeriveSeed(7, 0) != s1 {
		t.Error("DeriveSeed not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(2)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestInt64n(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Int64n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int64n out of range: %d", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestUniformMean(t *testing.T) {
	r := NewRand(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(6)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams collide on first draw")
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty sample must be all zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Error("N wrong")
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Known dataset: population stddev 2, sample variance 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, 32.0/7)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if s.SE() <= 0 || s.CI95() <= 0 {
		t.Error("SE/CI must be positive for non-degenerate sample")
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5, 3, 7} {
		s.Add(x)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
}

// Property: mean lies within [min, max]; variance is non-negative.
func TestSampleProperties(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Keep magnitudes sane to avoid float overflow in Var.
			if math.Abs(x) > 1e100 {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
