// Tests for the Runner session API: bit-for-bit equality between the
// cached/pooled path and the standalone path, cancellation behavior, and
// cache accounting through the public surface.
package repro

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// runnerCases spans approaches × scenarios so the equality tests cover
// every policy's use of the memoized products (ST: pattern table only;
// DP/greedy: promotion times; selective: θ analysis).
var runnerCases = []struct {
	a  Approach
	sc Scenario
}{
	{ST, NoFault},
	{DP, NoFault},
	{Greedy, NoFault},
	{Selective, NoFault},
	{DPBackground, NoFault},
	{Selective, PermanentOnly},
	{Selective, PermanentAndTransient},
	{DP, PermanentAndTransient},
}

// TestRunnerMatchesDirect is the PR's core promise: a Runner with the
// cache and scratch pool engaged produces the same Result — outcomes,
// trace, counters, energy, everything — as an uncached session, both on
// the first (cold) and second (warm) use of each entry.
func TestRunnerMatchesDirect(t *testing.T) {
	uncached := NewRunner(RunnerConfig{CacheEntries: -1})
	cached := NewRunner(RunnerConfig{})
	ctx := context.Background()
	for _, tc := range runnerCases {
		for _, s := range []*Set{motivationSet(), selectiveSet()} {
			cfg := RunConfig{HorizonMS: 200, Scenario: tc.sc, Seed: 7, RecordTrace: true}
			want, err := uncached.Simulate(ctx, s, tc.a, cfg)
			if err != nil {
				t.Fatalf("%v/%v uncached: %v", tc.a, tc.sc, err)
			}
			cold, err := cached.Simulate(ctx, s, tc.a, cfg)
			if err != nil {
				t.Fatalf("%v/%v cold: %v", tc.a, tc.sc, err)
			}
			warm, err := cached.Simulate(ctx, s, tc.a, cfg)
			if err != nil {
				t.Fatalf("%v/%v warm: %v", tc.a, tc.sc, err)
			}
			for name, got := range map[string]*Result{"cold": cold, "warm": warm} {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%v/%v %s result differs from uncached run", tc.a, tc.sc, name)
				}
				if got.Counters != want.Counters {
					t.Errorf("%v/%v %s counters = %+v, want %+v", tc.a, tc.sc, name, got.Counters, want.Counters)
				}
				if problems := CheckCounters(got); len(problems) > 0 {
					t.Errorf("%v/%v %s counter invariants: %v", tc.a, tc.sc, name, problems)
				}
			}
		}
	}
	if st := cached.CacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache never exercised: %+v", st)
	}
	if st := uncached.CacheStats(); st.Hits != 0 || st.Entries != 0 || st.Capacity >= 0 {
		t.Errorf("disabled cache memoized something: %+v", st)
	}
}

// TestPackageWrappersMatchRunner pins the free functions to the session
// path: Simulate is SimulateContext(Background) is defaultRunner.
func TestPackageWrappersMatchRunner(t *testing.T) {
	s := motivationSet()
	cfg := RunConfig{HorizonMS: 100, RecordTrace: true}
	a, err := Simulate(s, Selective, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateContext(context.Background(), s, Selective, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Simulate and SimulateContext disagree")
	}
}

func smallSweepConfig(workers int) SweepConfig {
	cfg := DefaultSweepConfig(PermanentOnly)
	cfg.SetsPerInterval = 2
	cfg.MaxCandidates = 200
	cfg.Intervals = workload.Intervals(0.3, 0.6, 0.1)
	cfg.Workers = workers
	return cfg
}

// TestSweepCachedMatchesUncachedAcrossWorkers checks worker-invariance
// and cache-invariance of whole Reports: the same seed must yield
// deep-equal rows whether analyses are memoized or re-derived, and
// whatever the parallelism.
func TestSweepCachedMatchesUncachedAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	want, err := NewRunner(RunnerConfig{CacheEntries: -1}).Sweep(ctx, smallSweepConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		rep, err := NewRunner(RunnerConfig{}).Sweep(ctx, smallSweepConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(rep.Rows, want.Rows) {
			t.Errorf("workers=%d: cached sweep rows differ from uncached single-worker sweep", workers)
		}
	}
}

// TestSweepCancellation interrupts a sweep mid-flight and checks the
// contract: the error wraps ctx.Err(), the partial Report holds only
// completed intervals in interval order, and no workers are leaked.
func TestSweepCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := DefaultSweepConfig(NoFault)
	cfg.SetsPerInterval = 4
	cfg.MaxCandidates = 2000
	cfg.Intervals = workload.Intervals(0.1, 1.0, 0.1)
	cfg.Workers = 2
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	rep, err := SweepContext(ctx, cfg)
	if err == nil {
		t.Skip("sweep finished before cancellation; nothing to assert")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Errorf("error should mention interruption: %v", err)
	}
	if rep == nil {
		t.Fatal("canceled sweep must still return the partial report")
	}
	if len(rep.Rows) >= len(cfg.Intervals) {
		t.Errorf("partial report has %d rows for %d intervals", len(rep.Rows), len(cfg.Intervals))
	}
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].Interval.Lo <= rep.Rows[i-1].Interval.Lo {
			t.Errorf("partial rows out of interval order at %d", i)
		}
	}
	// Workers observe the cancellation and drain.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after drain", before, n)
	}
}

// TestPreCanceledContext: an already-dead context must abort both entry
// points promptly with an error wrapping context.Canceled.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateContext(ctx, motivationSet(), Selective, RunConfig{HorizonMS: 100}); err == nil {
		t.Error("SimulateContext ignored a canceled context")
	} else if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("SimulateContext error does not wrap Canceled: %v", err)
	}
	if _, err := SweepContext(ctx, smallSweepConfig(2)); err == nil {
		t.Error("SweepContext ignored a canceled context")
	}
}

// BenchmarkSimulateSelective measures the allocation win of the session
// path: "direct" is the standalone pre-Runner behavior (fresh analyses,
// fresh engine state per run), "runner" reuses one session's analysis
// cache and scratch pool. The CI benchmark gate watches allocs/op here.
func BenchmarkSimulateSelective(b *testing.B) {
	s := motivationSet()
	cfg := RunConfig{HorizonMS: 500}
	b.Run("direct", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := simulate(ctx, s, Selective, cfg, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("runner", func(b *testing.B) {
		ctx := context.Background()
		r := NewRunner(RunnerConfig{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Simulate(ctx, s, Selective, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulateST is the cheaper-policy companion: ST touches only
// the pattern table, so it shows the scratch pool's contribution alone.
func BenchmarkSimulateST(b *testing.B) {
	s := motivationSet()
	cfg := RunConfig{HorizonMS: 500}
	b.Run("direct", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := simulate(ctx, s, ST, cfg, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("runner", func(b *testing.B) {
		ctx := context.Background()
		r := NewRunner(RunnerConfig{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Simulate(ctx, s, ST, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepReducedFig6a times the reduced Figure-6a sweep through a
// session, end to end — the wall-clock number recorded in BENCH_pr2.json.
func BenchmarkSweepReducedFig6a(b *testing.B) {
	cfg := DefaultSweepConfig(NoFault)
	cfg.SetsPerInterval = 5
	cfg.MaxCandidates = 1000
	ctx := context.Background()
	b.Run("runner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := NewRunner(RunnerConfig{})
			if _, err := r.Sweep(ctx, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := NewRunner(RunnerConfig{CacheEntries: -1})
			if _, err := r.Sweep(ctx, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
