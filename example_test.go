package repro_test

import (
	"fmt"
	"strings"

	"repro"
)

// The paper's §III motivation set under the selective scheme reproduces
// Figure 2's 12 energy units.
func ExampleSimulate() {
	set := repro.NewSet(
		repro.NewTask(5, 4, 3, 2, 4),
		repro.NewTask(10, 10, 3, 1, 2),
	)
	res, err := repro.Simulate(set, repro.Selective, repro.RunConfig{HorizonMS: 20})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.0f energy units, (m,k) ok: %v\n",
		res.Policy, res.ActiveEnergy(), res.MKSatisfied())
	// Output:
	// MKSS-selective: 12 energy units, (m,k) ok: true
}

// Comparing all four approaches on the same workload.
func ExampleSimulate_comparison() {
	set := repro.NewSet(
		repro.NewTask(5, 4, 3, 2, 4),
		repro.NewTask(10, 10, 3, 1, 2),
	)
	for _, a := range repro.Approaches() {
		res, err := repro.Simulate(set, a, repro.RunConfig{HorizonMS: 20})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-15s %4.0f\n", res.Policy, res.ActiveEnergy())
	}
	// Output:
	// MKSS-ST           18
	// MKSS-DP           15
	// MKSS-greedy       15
	// MKSS-selective    12
}

// The offline analyses: promotion intervals (Eq. 2) and the backup
// release postponement (Defs. 2–5) on the paper's Figure 5 set.
func ExamplePostponementIntervals() {
	set := repro.NewSet(
		repro.NewTask(10, 10, 3, 2, 3),
		repro.NewTask(15, 15, 8, 1, 2),
	)
	ys := repro.PromotionTimes(set)
	thetas, err := repro.PostponementIntervals(set)
	if err != nil {
		panic(err)
	}
	for i := range thetas {
		fmt.Printf("tau%d: Y=%v theta=%v\n", i+1, ys[i], thetas[i])
	}
	// Output:
	// tau1: Y=7ms theta=7ms
	// tau2: Y=1ms theta=4ms
}

// Loading a task set from its JSON specification.
func ExampleLoadSet() {
	doc := `{"tasks": [
	  {"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4},
	  {"period_ms": 10, "wcet_ms": 3, "m": 1, "k": 2}
	]}`
	set, err := repro.LoadSet(strings.NewReader(doc))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d tasks, (m,k)-utilization %.2f, schedulable: %v\n",
		set.N(), set.MKUtilization(), repro.RPatternSchedulable(set))
	// Output:
	// 2 tasks, (m,k)-utilization 0.45, schedulable: true
}

// Rendering a schedule as an ASCII Gantt chart (Figure 2's schedule).
func ExampleGanttChart() {
	set := repro.NewSet(
		repro.NewTask(5, 4, 3, 2, 4),
		repro.NewTask(10, 10, 3, 1, 2),
	)
	res, err := repro.Simulate(set, repro.Selective, repro.RunConfig{
		HorizonMS:   20,
		RecordTrace: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(repro.GanttChart(res))
	// Output:
	// MKSS-selective — horizon 20ms, quantum 1ms
	// primary |222..111............|
	// spare   |..........111222....|
	// ticks: 0:0ms  2:2ms  4:4ms  6:6ms  8:8ms  10:10ms  12:12ms  14:14ms  16:16ms  18:18ms  20:20ms
}
