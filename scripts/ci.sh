#!/usr/bin/env bash
# scripts/ci.sh — run the exact checks .github/workflows/ci.yml runs, so a
# green local run means a green CI run.
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh -fast      # skip the race detector and bench smoke
#
# Steps: gofmt -s, go vet, go build, mklint (the project's own static
# analysis, see cmd/mklint; its ratcheted depdag findings double as the
# policy-layering gate), go test, go test -race, golden-figure diff
# (Figures 1-5 vs results/golden/), policy smoke (the full-size DBP
# k-sequence sweep diffed byte-for-byte against
# results/golden/fig7_ksweep.csv), bench smoke (one iteration of every
# benchmark + a reduced mkbench sweep emitting BENCH_ci.json), the perf
# gate (BenchmarkSimulate* allocs/op, >15% fails, plus the
# BenchmarkSimulateSweep* wall clock, >40% fails, both vs the committed
# results/bench_baseline.txt at count=6, then a reduced mkbench sweep
# whose mkss-bench/v1 document feeds the cross-PR trajectory log via
# scripts/trajectory.sh), the serve smoke
# (mkservd on an ephemeral port driven by an mkload burst, with a
# graceful-drain shutdown check), the estimate smoke (the analytical
# twin's GET /v1/estimate fast path under load, p99 asserted
# sub-25ms, and refine=true checked byte-identical to /v1/simulate), the
# fleet smoke (a distributed mkfleet sweep over two workers, one
# killed mid-run, checked byte-identical against the in-process
# reference), the store smoke (a cold mkservd run fills the persistent
# result store, a restarted server re-answers the same requests purely
# from disk — byte-identical, zero misses), and the autoscale smoke (a
# standalone elastic pool grows above its baseline under an mkload
# -distinct burst and drains back to min afterwards). mklint runs even
# in -fast mode: the lint pass is cheap.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "-fast" ] && fast=1

step() { printf '\n== %s ==\n' "$1"; }

step gofmt
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

step "go vet"
go vet ./...

step "go build"
go build ./...

step "mklint (ratcheted against results/lint_baseline.json)"
go run ./cmd/mklint -baseline results/lint_baseline.json ./...

step "go test"
go test ./...

if [ "$fast" = 0 ]; then
  step "go test -race"
  go test -race ./...
fi

step "golden figures (1-5)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
status=0
for fig in 1 2 3 4 5; do
  go run ./cmd/mktrace -fig "$fig" > "$tmp/fig$fig.txt"
  if ! diff -u "results/golden/fig$fig.txt" "$tmp/fig$fig.txt"; then
    echo "figure $fig regressed (regenerate goldens only if the change is intended)" >&2
    status=1
  fi
done
[ "$status" = 0 ]

step "policy smoke (DBP ksweep vs results/golden/fig7_ksweep.csv)"
go run ./cmd/mkablate -ksweep -sets 25 -candidates 5000 -lo 0.2 -hi 1.0 -q \
  > "$tmp/fig7_ksweep.csv"
if ! diff -u results/golden/fig7_ksweep.csv "$tmp/fig7_ksweep.csv"; then
  echo "fig7 ksweep regressed (regenerate the golden only if the change is intended)" >&2
  exit 1
fi

if [ "$fast" = 0 ]; then
  step "bench smoke"
  go test -bench . -benchtime 1x ./...
  go run ./cmd/mkbench -fig 6a -sets 3 -candidates 800 -q -json -jsonout "$tmp/BENCH_ci.json"
  echo "BENCH_ci.json written to $tmp (CI uploads this as an artifact)"

  step "perf gate (allocs/op + sweep wall clock vs results/bench_baseline.txt, count=6)"
  go test -run '^$' -bench 'BenchmarkSimulate' -benchmem -count 6 . > "$tmp/bench_new.txt"
  scripts/benchgate.sh results/bench_baseline.txt "$tmp/bench_new.txt"
  go run ./cmd/mkbench -fig 6a -sets 4 -candidates 1200 -q -json -jsonout "$tmp/BENCH_pr6.json"
  scripts/trajectory.sh "$tmp/BENCH_pr6.json" "$tmp/bench_trajectory.jsonl"
  echo "BENCH_pr6.json written to $tmp (CI uploads it and the trajectory line as artifacts)"

  step "serve smoke (mkservd + mkload)"
  go build -o "$tmp/mkservd" ./cmd/mkservd
  go build -o "$tmp/mkload" ./cmd/mkload
  "$tmp/mkservd" -addr 127.0.0.1:0 -addrfile "$tmp/mkservd.addr" -drain 10s \
    > "$tmp/mkservd.log" 2>&1 &
  servd=$!
  for _ in $(seq 1 100); do [ -s "$tmp/mkservd.addr" ] && break; sleep 0.1; done
  addr=$(cat "$tmp/mkservd.addr")
  curl -sf "http://$addr/healthz" | grep -q '"ok"'
  curl -sf -X POST "http://$addr/v1/simulate" -H 'Content-Type: application/json' \
    -d '{"set":{"tasks":[{"period_ms":5,"deadline_ms":4,"wcet_ms":3,"m":2,"k":4},{"period_ms":10,"deadline_ms":10,"wcet_ms":3,"m":1,"k":2}]},"approach":"selective","horizon_ms":20}' \
    | grep -q '"active_energy":12'
  "$tmp/mkload" -addr "$addr" -duration 2s -c 8 \
    -mix simulate=0.9,analyze=0.08,sweep=0.02 -out "$tmp/BENCH_serve.json" -q
  curl -sf "http://$addr/metrics" | grep -q '^mkservd_requests_total '
  kill -TERM "$servd"
  wait "$servd"   # graceful drain must exit 0
  grep -q '0 in-flight aborted' "$tmp/mkservd.log"
  echo "BENCH_serve.json written to $tmp (CI uploads this as an artifact)"

  step "estimate smoke (twin fast path + refine fallthrough)"
  "$tmp/mkservd" -addr 127.0.0.1:0 -addrfile "$tmp/est.addr" -q > "$tmp/est.log" 2>&1 &
  estd=$!
  for _ in $(seq 1 100); do [ -s "$tmp/est.addr" ] && break; sleep 0.1; done
  eaddr=$(cat "$tmp/est.addr")
  pset='{"tasks":[{"period_ms":5,"deadline_ms":4,"wcet_ms":3,"m":2,"k":4},{"period_ms":10,"deadline_ms":10,"wcet_ms":3,"m":1,"k":2}]}'
  # Closed-form twin answer: no simulation, no execution slot.
  curl -sf --get "http://$eaddr/v1/estimate" --data-urlencode "set=$pset" \
    --data-urlencode approach=dp --data-urlencode horizon_ms=20 \
    | grep -q '"backend":"twin"'
  # refine=true must fall through to the /v1/simulate path byte-identically.
  curl -sf --get "http://$eaddr/v1/estimate" --data-urlencode "set=$pset" \
    --data-urlencode approach=selective --data-urlencode horizon_ms=20 \
    --data-urlencode refine=true > "$tmp/refined.json"
  curl -sf -X POST "http://$eaddr/v1/simulate" -H 'Content-Type: application/json' \
    -d "{\"set\":$pset,\"approach\":\"selective\",\"horizon_ms\":20}" > "$tmp/simulated.json"
  cmp "$tmp/refined.json" "$tmp/simulated.json"
  grep -q '"active_energy":12' "$tmp/refined.json"
  # A pure-estimate burst: the top-level latency summary is then the
  # estimate endpoint's, so the closed-form p99 is assertable directly.
  "$tmp/mkload" -addr "$eaddr" -duration 2s -c 8 \
    -mix estimate=1 -out "$tmp/BENCH_estimate.json" -q
  p99=$(grep -m1 '"p99_ms"' "$tmp/BENCH_estimate.json" | sed -E 's/.*: *([0-9.]+).*/\1/')
  awk -v p="$p99" 'BEGIN { exit !(p < 25) }' || {
    echo "estimate p99 ${p99}ms >= 25ms — the closed-form fast path regressed" >&2
    exit 1
  }
  kill -TERM "$estd"
  wait "$estd"
  echo "BENCH_estimate.json written to $tmp (estimate p99 ${p99}ms)"

  step "fleet smoke (mkfleet over 2 workers, one killed mid-run)"
  go build -o "$tmp/mkfleet" ./cmd/mkfleet
  "$tmp/mkservd" -addr 127.0.0.1:0 -addrfile "$tmp/w1.addr" -q > "$tmp/w1.log" 2>&1 &
  w1=$!
  "$tmp/mkservd" -addr 127.0.0.1:0 -addrfile "$tmp/w2.addr" -q > "$tmp/w2.log" 2>&1 &
  w2=$!
  for _ in $(seq 1 100); do [ -s "$tmp/w1.addr" ] && [ -s "$tmp/w2.addr" ] && break; sleep 0.1; done
  workers="$(cat "$tmp/w1.addr"),$(cat "$tmp/w2.addr")"
  # Kill worker 2 the moment the first row is merged: still mid-run, so
  # the fleet must mark it down and retry its units on the survivor.
  ( for _ in $(seq 1 600); do
      grep -q '"type":"row"' "$tmp/fleet.jsonl" 2>/dev/null && break
      sleep 0.05
    done
    kill -9 "$w2" ) &
  "$tmp/mkfleet" -workers "$workers" -scenario both -seed 2020 -sets 3 \
    -candidates 4000 -checkpoint "$tmp/fleet.ckpt" -out "$tmp/fleet.jsonl" \
    -bench "$tmp/BENCH_fleet.json" 2> "$tmp/fleet.log"
  grep -q 'sweep complete' "$tmp/fleet.log"
  "$tmp/mkfleet" -local -scenario both -seed 2020 -sets 3 \
    -candidates 4000 -out "$tmp/local.jsonl" -q
  grep '"type":"row"' "$tmp/fleet.jsonl" > "$tmp/fleet_rows.jsonl"
  grep '"type":"row"' "$tmp/local.jsonl" > "$tmp/local_rows.jsonl"
  cmp "$tmp/fleet_rows.jsonl" "$tmp/local_rows.jsonl"
  kill "$w1"
  echo "BENCH_fleet.json written to $tmp (CI uploads this as an artifact)"

  step "store smoke (persistent result store across a restart)"
  # Cold run fills the store; the restarted server must answer the same
  # requests purely from disk — byte-identical bodies, zero misses.
  simreq='{"set":{"tasks":[{"period_ms":5,"deadline_ms":4,"wcet_ms":3,"m":2,"k":4},{"period_ms":10,"deadline_ms":10,"wcet_ms":3,"m":1,"k":2}]},"approach":"selective","scenario":"permanent","seed":42,"horizon_ms":20}'
  sweepreq='{"scenario":"both","seed":7,"sets_per_interval":2,"max_candidates":40,"lo":0.3,"hi":0.6,"approaches":["st"]}'
  "$tmp/mkservd" -addr 127.0.0.1:0 -addrfile "$tmp/st1.addr" -store "$tmp/store" -q \
    > "$tmp/st1.log" 2>&1 &
  std=$!
  for _ in $(seq 1 100); do [ -s "$tmp/st1.addr" ] && break; sleep 0.1; done
  saddr=$(cat "$tmp/st1.addr")
  curl -sf -X POST "http://$saddr/v1/simulate" -H 'Content-Type: application/json' \
    -d "$simreq" > "$tmp/cold_sim.json"
  curl -sf -X POST "http://$saddr/v1/sweep" -H 'Content-Type: application/json' \
    -d "$sweepreq" > "$tmp/cold_sweep.jsonl"
  kill -TERM "$std"
  wait "$std"
  "$tmp/mkservd" -addr 127.0.0.1:0 -addrfile "$tmp/st2.addr" -store "$tmp/store" -q \
    > "$tmp/st2.log" 2>&1 &
  std=$!
  for _ in $(seq 1 100); do [ -s "$tmp/st2.addr" ] && break; sleep 0.1; done
  saddr=$(cat "$tmp/st2.addr")
  curl -sf -X POST "http://$saddr/v1/simulate" -H 'Content-Type: application/json' \
    -d "$simreq" > "$tmp/warm_sim.json"
  curl -sf -X POST "http://$saddr/v1/sweep" -H 'Content-Type: application/json' \
    -d "$sweepreq" > "$tmp/warm_sweep.jsonl"
  cmp "$tmp/cold_sim.json" "$tmp/warm_sim.json"
  # The sweep "done" line carries wall-clock timing; rows are the contract.
  grep '"type":"row"' "$tmp/cold_sweep.jsonl" > "$tmp/cold_rows.jsonl"
  grep '"type":"row"' "$tmp/warm_sweep.jsonl" > "$tmp/warm_rows.jsonl"
  cmp "$tmp/cold_rows.jsonl" "$tmp/warm_rows.jsonl"
  curl -sf "http://$saddr/healthz" > "$tmp/STORE_stats.json"
  grep -q '"hits":4' "$tmp/STORE_stats.json"     # 1 simulate + 3 sweep units
  grep -q '"misses":0' "$tmp/STORE_stats.json"   # nothing recomputed
  kill -TERM "$std"
  wait "$std"
  echo "STORE_stats.json written to $tmp (CI uploads this as an artifact)"

  step "autoscale smoke (elastic pool grows under burst, drains to min)"
  "$tmp/mkfleet" -pool -min 1 -max 3 -worker-inflight 1 \
    -scale-interval 200ms -scale-cooldown 500ms \
    -pool-addrfile "$tmp/pool.addr" -pool-status "$tmp/pool.json" \
    2> "$tmp/pool.log" &
  poold=$!
  for _ in $(seq 1 100); do [ -s "$tmp/pool.addr" ] && break; sleep 0.1; done
  paddr=$(cat "$tmp/pool.addr")
  # -distinct defeats coalescing and the store, and the long horizon makes
  # each run tens of milliseconds, so the burst saturates the single-slot
  # baseline worker and builds real queue depth.
  "$tmp/mkload" -addr "$paddr" -duration 3s -c 12 -mix simulate=1 -distinct \
    -horizon 200000 -out "$tmp/BENCH_pool.json" -q &
  loadpid=$!
  grew=0
  for _ in $(seq 1 100); do
    size=$(sed -nE 's/.*"size":([0-9]+).*/\1/p' "$tmp/pool.json" 2>/dev/null || true)
    if [ -n "$size" ] && [ "$size" -gt 1 ]; then grew=1; break; fi
    sleep 0.1
  done
  wait "$loadpid"
  if [ "$grew" = 0 ]; then
    echo "pool never scaled above the baseline under burst" >&2
    cat "$tmp/pool.log" >&2
    exit 1
  fi
  drained=0
  for _ in $(seq 1 200); do
    size=$(sed -nE 's/.*"size":([0-9]+).*/\1/p' "$tmp/pool.json" 2>/dev/null || true)
    if [ "$size" = 1 ]; then drained=1; break; fi
    sleep 0.1
  done
  if [ "$drained" = 0 ]; then
    echo "pool never drained back to min after the burst" >&2
    cat "$tmp/pool.log" >&2
    exit 1
  fi
  grep -q 'pool scaling up' "$tmp/pool.log"
  grep -q 'pool scaling down' "$tmp/pool.log"
  kill -TERM "$poold"
  wait "$poold"
fi

printf '\nall checks passed\n'
