#!/usr/bin/env bash
# scripts/benchgate.sh BASELINE NEW — the allocation-regression gate.
#
# Compares the mean allocs/op of every BenchmarkSimulate* benchmark in NEW
# against the committed BASELINE (results/bench_baseline.txt) and fails if
# any regressed by more than 15%. allocs/op is used because it is nearly
# machine-independent, unlike ns/op on shared CI runners. When benchstat
# is installed it is also run for the full (informational) comparison;
# the gate itself never needs it, so CI works without network installs.
set -euo pipefail

baseline=$1
new=$2

if command -v benchstat >/dev/null 2>&1; then
  benchstat "$baseline" "$new" || true
fi

awk '
  FNR == 1 { file++ }
  /^BenchmarkSimulate/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    v = ""
    for (i = 2; i <= NF; i++) if ($i == "allocs/op") v = $(i - 1)
    if (v == "") next
    if (file == 1) { bsum[name] += v; bn[name]++ }
    else          { nsum[name] += v; nn[name]++ }
  }
  END {
    status = 0
    checked = 0
    for (name in nsum) {
      mean = nsum[name] / nn[name]
      if (!(name in bsum)) {
        printf "%-46s %10.1f allocs/op (new benchmark, no baseline)\n", name, mean
        continue
      }
      base = bsum[name] / bn[name]
      checked++
      printf "%-46s %10.1f -> %8.1f allocs/op (%+.1f%%)\n", name, base, mean, (mean - base) / base * 100
      if (mean > base * 1.15) {
        printf "FAIL: %s allocs/op regressed more than 15%% vs results/bench_baseline.txt\n", name
        status = 1
      }
    }
    if (checked == 0) {
      print "FAIL: no BenchmarkSimulate* results to compare" > "/dev/stderr"
      status = 1
    }
    exit status
  }
' "$baseline" "$new"
