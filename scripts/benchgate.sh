#!/usr/bin/env bash
# scripts/benchgate.sh BASELINE NEW — the perf regression gate.
#
# Compares NEW against the committed BASELINE (results/bench_baseline.txt)
# on two axes:
#   * mean allocs/op of every BenchmarkSimulate* benchmark, margin 15% —
#     allocs/op is nearly machine-independent, so the margin is tight;
#   * mean ns/op of the BenchmarkSimulateSweep* wall-clock benchmarks,
#     margin 40% — generous because shared CI runners are noisy, but tight
#     enough to catch the order-of-magnitude engine regressions that
#     allocs/op cannot see (run these with -count=6 or more).
#
# A NEW file with zero BenchmarkSimulate* lines fails loudly: an empty or
# truncated bench run must never pass the gate silently. When benchstat is
# installed it is also run for the full (informational) comparison; the
# gate itself never needs it, so CI works without network installs.
set -euo pipefail

baseline=$1
new=$2

if ! grep -q '^BenchmarkSimulate' "$new"; then
  echo "FAIL: $new contains no BenchmarkSimulate* results — bench run empty or truncated, nothing to gate" >&2
  exit 1
fi

if command -v benchstat >/dev/null 2>&1; then
  benchstat "$baseline" "$new" || true
fi

awk -v newfile="$new" '
  /^BenchmarkSimulate/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    isnew = (FILENAME == newfile)
    for (i = 2; i <= NF; i++) {
      v = $(i - 1)
      if ($i == "allocs/op") {
        if (isnew) { newAllocSum[name] += v; newAllocN[name]++ }
        else       { baseAllocSum[name] += v; baseAllocN[name]++ }
      } else if ($i == "ns/op") {
        if (isnew) { newNsSum[name] += v; newNsN[name]++ }
        else       { baseNsSum[name] += v; baseNsN[name]++ }
      }
    }
  }
  END {
    status = 0
    checked = 0
    for (name in newAllocN) {
      mean = newAllocSum[name] / newAllocN[name]
      if (!(name in baseAllocN)) {
        printf "%-46s %10.1f allocs/op (new benchmark, no baseline)\n", name, mean
        continue
      }
      base = baseAllocSum[name] / baseAllocN[name]
      checked++
      printf "%-46s %10.1f -> %10.1f allocs/op (%+.1f%%)\n", name, base, mean, (mean - base) / base * 100
      if (mean > base * 1.15) {
        printf "FAIL: %s allocs/op regressed more than 15%% vs results/bench_baseline.txt\n", name
        status = 1
      }
    }
    for (name in newNsN) {
      if (name !~ /^BenchmarkSimulateSweep/) continue
      mean = newNsSum[name] / newNsN[name]
      if (!(name in baseNsN)) {
        printf "%-46s %10.0f ns/op (new benchmark, no baseline)\n", name, mean
        continue
      }
      base = baseNsSum[name] / baseNsN[name]
      checked++
      printf "%-46s %10.0f -> %10.0f ns/op (%+.1f%%)\n", name, base, mean, (mean - base) / base * 100
      if (mean > base * 1.40) {
        printf "FAIL: %s ns/op regressed more than 40%% vs results/bench_baseline.txt\n", name
        status = 1
      }
    }
    if (checked == 0) {
      print "FAIL: no BenchmarkSimulate* results to compare against the baseline" > "/dev/stderr"
      status = 1
    }
    exit status
  }
' "$baseline" "$new"
